package mdseq_test

import (
	"math/rand"
	"testing"

	mdseq "repro"
)

// walk builds a smooth random-walk sequence through the public API.
func walk(rng *rand.Rand, n int) *mdseq.Sequence {
	pts := make([]mdseq.Point, n)
	cur := mdseq.Point{rng.Float64(), rng.Float64(), rng.Float64()}
	for i := range pts {
		next := make(mdseq.Point, 3)
		for k := range next {
			v := cur[k] + (rng.Float64()-0.5)*0.08
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			next[k] = v
		}
		pts[i] = next
		cur = next
	}
	s, _ := mdseq.NewSequence("walk", pts)
	return s
}

func TestPublicAPIEndToEnd(t *testing.T) {
	db, err := mdseq.Open(mdseq.Options{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(1))
	var target *mdseq.Sequence
	for i := 0; i < 25; i++ {
		s := walk(rng, 80+rng.Intn(120))
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
		if i == 10 {
			target = s
		}
	}

	// Query with a stored subsequence: must match its source exactly.
	q, err := mdseq.NewSequence("q", target.Points[20:60])
	if err != nil {
		t.Fatal(err)
	}
	matches, stats, err := db.Search(q, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalSequences != 25 || stats.QueryMBRs < 1 {
		t.Errorf("stats = %+v", stats)
	}
	found := false
	for _, m := range matches {
		if m.SeqID == target.ID {
			found = true
			if !m.Interval.Contains(30) {
				t.Errorf("solution interval %v misses the match core", m.Interval.Ranges())
			}
		}
	}
	if !found {
		t.Fatal("source sequence not found")
	}

	// The sequential baseline agrees on membership.
	exact, err := db.SequentialSearch(q, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	inMatches := make(map[uint32]bool)
	for _, m := range matches {
		inMatches[m.SeqID] = true
	}
	for _, r := range exact {
		if !inMatches[r.SeqID] {
			t.Errorf("exact result %d missing from index search", r.SeqID)
		}
	}
}

func TestPublicMetricHelpers(t *testing.T) {
	a, _ := mdseq.NewSequence("a", []mdseq.Point{{0, 0, 0}, {0.1, 0, 0}})
	b, _ := mdseq.NewSequence("b", []mdseq.Point{{0, 0, 0}, {0.1, 0, 0}, {0.9, 0.9, 0.9}})
	if d := mdseq.D(a, b); d != 0 {
		t.Errorf("D = %g, want 0 (prefix alignment)", d)
	}
	off, dist := mdseq.BestAlignment(a.Points, b.Points)
	if off != 0 || dist != 0 {
		t.Errorf("BestAlignment = (%d, %g)", off, dist)
	}
	if got := mdseq.Dmean(a.Points, a.Points); got != 0 {
		t.Errorf("Dmean = %g", got)
	}
	if s := mdseq.DistToSimilarity(0, 3); s != 1 {
		t.Errorf("similarity of distance 0 = %g", s)
	}

	cfg := mdseq.DefaultPartitionConfig()
	mbrs, err := mdseq.Partition(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(mbrs) < 2 {
		t.Errorf("expected the far point to split the partition, got %d MBRs", len(mbrs))
	}
	if mdseq.Dmbr(mbrs[0].Rect, mbrs[len(mbrs)-1].Rect) <= 0 {
		t.Error("Dmbr of separated MBRs should be positive")
	}
}

func TestPublicDnorm(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := walk(rng, 150)
	g, err := mdseq.Partition(s, mdseq.DefaultPartitionConfig())
	if err != nil {
		t.Fatal(err)
	}
	seg := &mdseq.Segmented{Seq: s, MBRs: g}
	q := walk(rng, 30)
	var qr mdseq.Rect
	for _, p := range q.Points {
		qr.ExtendPoint(p)
	}
	res := mdseq.Dnorm(qr, q.Len(), seg, 0)
	if res.Dist < 0 {
		t.Errorf("Dnorm = %g", res.Dist)
	}
	if mn := mdseq.MinDnorm(qr, q.Len(), seg); mn > res.Dist {
		t.Errorf("MinDnorm %g > Dnorm(0) %g", mn, res.Dist)
	}
}
