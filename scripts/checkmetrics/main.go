// Command checkmetrics freezes the server's metric surface. It boots
// every layer that registers instruments — core search, the shard
// router, a transactional node, the query cache, the HTTP middleware,
// and the runtime collector — into one registry, dumps the registered
// families as "name type help" lines, and diffs them against the
// committed freeze file:
//
//	go run ./scripts/checkmetrics scripts/checkmetrics/metrics.txt
//	go run ./scripts/checkmetrics -write scripts/checkmetrics/metrics.txt
//
// CI runs the diff form. A metric rename, a dropped family, a type
// change, or reworded help text fails the build until the freeze file
// is regenerated with -write and the change reviewed as a deliberate
// break of the dashboard/alerting contract. Exit status is 1 on drift,
// 2 on usage or setup errors.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/txn"
)

func main() {
	write := flag.Bool("write", false, "regenerate the freeze file instead of diffing against it")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: checkmetrics [-write] <metrics.txt>")
		os.Exit(2)
	}
	path := flag.Arg(0)

	got, err := registeredFamilies()
	if err != nil {
		fmt.Fprintf(os.Stderr, "checkmetrics: %v\n", err)
		os.Exit(2)
	}

	if *write {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "checkmetrics: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("checkmetrics: wrote %d families to %s\n", bytes.Count(got, []byte("\n")), path)
		return
	}

	want, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "checkmetrics: %v (regenerate with -write)\n", err)
		os.Exit(2)
	}
	if diff := diffLines(want, got); len(diff) > 0 {
		for _, d := range diff {
			fmt.Println(d)
		}
		fmt.Fprintf(os.Stderr, "checkmetrics: metric families drifted from %s; if intended, regenerate with\n  go run ./scripts/checkmetrics -write %s\n", path, path)
		os.Exit(1)
	}
}

// registeredFamilies boots one instance of every metrics-producing
// layer into a fresh registry and renders the resulting family set,
// one sorted "name type help" line per family.
func registeredFamilies() ([]byte, error) {
	reg := obs.NewRegistry()

	// Core query metrics on a single node.
	cdb, err := core.NewDatabase(core.Options{Dim: 2})
	if err != nil {
		return nil, err
	}
	defer cdb.Close()
	cdb.SetMetrics(reg)

	// Scatter-gather router metrics (per-shard series share families).
	sdb, err := shard.New(core.Options{Dim: 2}, 2)
	if err != nil {
		return nil, err
	}
	defer sdb.Close()
	sdb.SetMetrics(reg)

	// Durable-node WAL and snapshot metrics.
	dir, err := os.MkdirTemp("", "checkmetrics")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	tdb, err := txn.Open(txn.Options{Dir: dir, Dim: 2})
	if err != nil {
		return nil, err
	}
	tdb.SetMetricsShard(reg, 0)
	tdb.Close()

	// Query-result cache metrics.
	cache.New(cache.Config{MaxEntries: 1}).SetMetrics(cache.NewMetrics(reg, "core"))

	// HTTP middleware: the in-flight gauge registers at construction,
	// the request counter/histogram on the first request served.
	h := obs.Middleware(reg, nil, nil, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))

	// Runtime collector gauges and the GC pause histogram.
	obs.NewRuntimeCollector(reg)

	var buf bytes.Buffer
	for _, f := range reg.Families() {
		fmt.Fprintf(&buf, "%s %s %s\n", f.Name, f.Type, f.Help)
	}
	return buf.Bytes(), nil
}

// diffLines reports, in freeze-file order, every line present in one
// set but not the other.
func diffLines(want, got []byte) []string {
	wantSet := lineSet(want)
	gotSet := lineSet(got)
	var out []string
	for _, l := range splitLines(want) {
		if !gotSet[l] {
			out = append(out, "- "+l)
		}
	}
	for _, l := range splitLines(got) {
		if !wantSet[l] {
			out = append(out, "+ "+l)
		}
	}
	return out
}

// splitLines breaks b into non-empty lines.
func splitLines(b []byte) []string {
	var out []string
	for _, l := range bytes.Split(b, []byte("\n")) {
		if len(bytes.TrimSpace(l)) > 0 {
			out = append(out, string(l))
		}
	}
	return out
}

// lineSet indexes the non-empty lines of b for membership tests.
func lineSet(b []byte) map[string]bool {
	set := make(map[string]bool)
	for _, l := range splitLines(b) {
		set[l] = true
	}
	return set
}
