// Command checkdoc verifies that every exported identifier in the given
// package directories carries a doc comment: functions, methods with
// exported receivers, types, exported constants and variables, struct
// fields, and interface methods. CI runs it over the public facade and
// the operator-facing packages (internal/shard, internal/obs) so the
// godoc surface cannot silently regress:
//
//	go run ./scripts/checkdoc . ./internal/shard ./internal/obs
//
// A group doc comment on a const/var block covers every spec in the
// block; a trailing line comment on a spec or field also counts. Test
// files are skipped. Exit status is 1 if any identifier is undocumented,
// with one "file:line: identifier" diagnostic per gap.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: checkdoc <pkgdir> [pkgdir...]")
		os.Exit(2)
	}
	var gaps []string
	for _, dir := range os.Args[1:] {
		g, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkdoc: %s: %v\n", dir, err)
			os.Exit(2)
		}
		gaps = append(gaps, g...)
	}
	for _, g := range gaps {
		fmt.Println(g)
	}
	if len(gaps) > 0 {
		fmt.Fprintf(os.Stderr, "checkdoc: %d exported identifier(s) missing doc comments\n", len(gaps))
		os.Exit(1)
	}
}

// checkDir parses every non-test Go file in dir and returns one
// diagnostic per undocumented exported identifier.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var gaps []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		gaps = append(gaps, fmt.Sprintf("%s:%d: %s", filepath.ToSlash(p.Filename), p.Line, what))
	}
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					checkFunc(d, report)
				case *ast.GenDecl:
					checkGen(d, report)
				}
			}
		}
	}
	return gaps, nil
}

// checkFunc flags exported functions and exported methods on exported
// receiver types that have no doc comment.
func checkFunc(d *ast.FuncDecl, report func(token.Pos, string)) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	name := d.Name.Name
	if d.Recv != nil && len(d.Recv.List) == 1 {
		recv := receiverName(d.Recv.List[0].Type)
		if recv != "" && !ast.IsExported(recv) {
			return // method on an unexported type: not godoc surface
		}
		name = recv + "." + name
	}
	report(d.Pos(), "func "+name)
}

// receiverName unwraps a method receiver type expression to its base
// type name.
func receiverName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverName(t.X)
	case *ast.IndexExpr: // generic receiver
		return receiverName(t.X)
	case *ast.IndexListExpr:
		return receiverName(t.X)
	}
	return ""
}

// checkGen flags undocumented exported types, constants, and variables.
// A doc comment on the grouped declaration covers its specs; a spec's
// own doc or trailing comment also counts.
func checkGen(d *ast.GenDecl, report func(token.Pos, string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type "+s.Name.Name)
			}
			if s.Name.IsExported() {
				checkTypeBody(s.Name.Name, s.Type, report)
			}
		case *ast.ValueSpec:
			for _, n := range s.Names {
				if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(n.Pos(), strings.ToLower(d.Tok.String())+" "+n.Name)
				}
			}
		}
	}
}

// checkTypeBody flags undocumented exported struct fields and interface
// methods of the named exported type.
func checkTypeBody(typeName string, e ast.Expr, report func(token.Pos, string)) {
	switch t := e.(type) {
	case *ast.StructType:
		for _, f := range t.Fields.List {
			if f.Doc != nil || f.Comment != nil {
				continue
			}
			for _, n := range f.Names {
				if n.IsExported() {
					report(n.Pos(), "field "+typeName+"."+n.Name)
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			if m.Doc != nil || m.Comment != nil {
				continue
			}
			for _, n := range m.Names {
				if n.IsExported() {
					report(n.Pos(), "interface method "+typeName+"."+n.Name)
				}
			}
		}
	}
}
