package mdseq_test

import (
	"math/rand"
	"path/filepath"
	"testing"

	mdseq "repro"
)

// TestFacadeLifecycle drives the full public surface: build, append,
// remove, save, load, reattach, knn, parallel search, explain, DTW.
func TestFacadeLifecycle(t *testing.T) {
	dir := t.TempDir()
	db, err := mdseq.Open(mdseq.Options{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(200))
	seqs := make([]*mdseq.Sequence, 20)
	for i := range seqs {
		seqs[i] = walk(rng, 60+rng.Intn(60))
		seqs[i].Label = "s" + string(rune('a'+i))
	}
	if _, err := db.AddAll(seqs); err != nil {
		t.Fatal(err)
	}

	// Streaming append.
	tail := walk(rng, 30)
	if err := db.AppendPoints(3, tail.Points); err != nil {
		t.Fatal(err)
	}
	// Remove one.
	if err := db.Remove(7); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 19 {
		t.Fatalf("Len = %d", db.Len())
	}

	// k-NN through the facade.
	q := &mdseq.Sequence{Points: seqs[5].Points[10:35]}
	nn, err := db.SearchKNN(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 3 || nn[0].SeqID != 5 || nn[0].Dist != 0 {
		t.Fatalf("knn = %+v", nn)
	}

	// Parallel search identical to serial.
	serial, _, err := db.Search(q, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := db.SearchParallel(q, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("serial %d vs parallel %d", len(serial), len(par))
	}

	// Explain agrees on the match count.
	ex, err := db.Explain(q, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	_, _, matched := ex.Counts()
	if matched != len(serial) {
		t.Fatalf("explain matched %d, search %d", matched, len(serial))
	}

	// DTW re-ranking keeps the set.
	ranked := mdseq.RefineDTW(q, serial, -1)
	if len(ranked) != len(serial) {
		t.Fatal("RefineDTW changed the result set size")
	}

	// Save, load, verify.
	store := filepath.Join(dir, "store")
	if err := mdseq.Save(db, store); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := mdseq.Load(store, true)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.Len() != 19 {
		t.Fatalf("loaded Len = %d", loaded.Len())
	}
	m2, _, err := loaded.Search(q, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2) != len(serial) {
		t.Fatalf("loaded search %d vs original %d", len(m2), len(serial))
	}
}

// TestFacadeSharded drives the sharded surface end to end: open, bulk
// load, scatter-gather search and kNN against the single-node answers,
// save, reload, placement check.
func TestFacadeSharded(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	seqs := make([]*mdseq.Sequence, 24)
	for i := range seqs {
		seqs[i] = walk(rng, 60)
		seqs[i].Label = "shard-seq-" + string(rune('a'+i))
	}
	clone := func() []*mdseq.Sequence {
		out := make([]*mdseq.Sequence, len(seqs))
		for i, s := range seqs {
			out[i] = s.Clone()
		}
		return out
	}

	single, err := mdseq.Open(mdseq.Options{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if _, err := single.AddAll(clone()); err != nil {
		t.Fatal(err)
	}

	sdb, err := mdseq.OpenSharded(mdseq.Options{Dim: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()
	if _, err := sdb.AddAll(clone()); err != nil {
		t.Fatal(err)
	}
	if sdb.Shards() != 4 || sdb.Len() != 24 {
		t.Fatalf("sharded shape: %d shards, %d sequences", sdb.Shards(), sdb.Len())
	}

	// Both topologies implement the Store interface.
	for _, db := range []mdseq.Store{single, sdb} {
		if db.Len() != 24 {
			t.Fatalf("Len = %d", db.Len())
		}
	}

	q := &mdseq.Sequence{Points: seqs[9].Points[10:40]}
	wantM, _, err := single.Search(q, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	gotM, _, err := sdb.Search(q, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	label := func(ms []mdseq.Match) map[string]bool {
		out := make(map[string]bool)
		for _, m := range ms {
			out[m.Seq.Label] = true
		}
		return out
	}
	if got, want := label(gotM), label(wantM); len(got) != len(want) {
		t.Fatalf("sharded matches %v, want %v", got, want)
	} else {
		for l := range want {
			if !got[l] {
				t.Fatalf("sharded search missing %q", l)
			}
		}
	}

	nn, err := sdb.SearchKNN(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 3 || nn[0].Seq.Label != seqs[9].Label || nn[0].Dist != 0 {
		t.Fatalf("sharded knn = %+v", nn)
	}

	// Placement rule is exported and must agree with actual placement.
	for _, s := range sdb.Sequences() {
		wantShard := mdseq.ShardFor(s.Label, 4)
		if gotShard := int(s.ID % 4); gotShard != wantShard {
			t.Fatalf("sequence %q on shard %d, placement rule says %d", s.Label, gotShard, wantShard)
		}
	}

	// Save / reload round trip.
	dir := filepath.Join(t.TempDir(), "sharded")
	if err := mdseq.SaveSharded(sdb, dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := mdseq.LoadSharded(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.Shards() != 4 || loaded.Len() != 24 {
		t.Fatalf("reloaded shape: %d shards, %d sequences", loaded.Shards(), loaded.Len())
	}
	reM, _, err := loaded.Search(q, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(reM) != len(gotM) {
		t.Fatalf("reloaded search %d matches, want %d", len(reM), len(gotM))
	}
}

// TestFacadeOpenExisting exercises the reattach path directly.
func TestFacadeOpenExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "idx.db")
	rng := rand.New(rand.NewSource(201))
	seqs := make([]*mdseq.Sequence, 8)
	for i := range seqs {
		seqs[i] = walk(rng, 50)
	}
	db, err := mdseq.Open(mdseq.Options{Dim: 3, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddAll(seqs); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := mdseq.OpenExisting(mdseq.Options{Dim: 3, Path: path}, seqs)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	q := &mdseq.Sequence{Points: seqs[2].Points[:20]}
	matches, _, err := re.Search(q, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.SeqID == 2 {
			found = true
		}
	}
	if !found {
		t.Error("reattached database missing sequence")
	}
}
