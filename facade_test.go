package mdseq_test

import (
	"math/rand"
	"path/filepath"
	"testing"

	mdseq "repro"
)

// TestFacadeLifecycle drives the full public surface: build, append,
// remove, save, load, reattach, knn, parallel search, explain, DTW.
func TestFacadeLifecycle(t *testing.T) {
	dir := t.TempDir()
	db, err := mdseq.Open(mdseq.Options{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(200))
	seqs := make([]*mdseq.Sequence, 20)
	for i := range seqs {
		seqs[i] = walk(rng, 60+rng.Intn(60))
		seqs[i].Label = "s" + string(rune('a'+i))
	}
	if _, err := db.AddAll(seqs); err != nil {
		t.Fatal(err)
	}

	// Streaming append.
	tail := walk(rng, 30)
	if err := db.AppendPoints(3, tail.Points); err != nil {
		t.Fatal(err)
	}
	// Remove one.
	if err := db.Remove(7); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 19 {
		t.Fatalf("Len = %d", db.Len())
	}

	// k-NN through the facade.
	q := &mdseq.Sequence{Points: seqs[5].Points[10:35]}
	nn, err := db.SearchKNN(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 3 || nn[0].SeqID != 5 || nn[0].Dist != 0 {
		t.Fatalf("knn = %+v", nn)
	}

	// Parallel search identical to serial.
	serial, _, err := db.Search(q, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := db.SearchParallel(q, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("serial %d vs parallel %d", len(serial), len(par))
	}

	// Explain agrees on the match count.
	ex, err := db.Explain(q, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	_, _, matched := ex.Counts()
	if matched != len(serial) {
		t.Fatalf("explain matched %d, search %d", matched, len(serial))
	}

	// DTW re-ranking keeps the set.
	ranked := mdseq.RefineDTW(q, serial, -1)
	if len(ranked) != len(serial) {
		t.Fatal("RefineDTW changed the result set size")
	}

	// Save, load, verify.
	store := filepath.Join(dir, "store")
	if err := mdseq.Save(db, store); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := mdseq.Load(store, true)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.Len() != 19 {
		t.Fatalf("loaded Len = %d", loaded.Len())
	}
	m2, _, err := loaded.Search(q, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2) != len(serial) {
		t.Fatalf("loaded search %d vs original %d", len(m2), len(serial))
	}
}

// TestFacadeOpenExisting exercises the reattach path directly.
func TestFacadeOpenExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "idx.db")
	rng := rand.New(rand.NewSource(201))
	seqs := make([]*mdseq.Sequence, 8)
	for i := range seqs {
		seqs[i] = walk(rng, 50)
	}
	db, err := mdseq.Open(mdseq.Options{Dim: 3, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddAll(seqs); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := mdseq.OpenExisting(mdseq.Options{Dim: 3, Path: path}, seqs)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	q := &mdseq.Sequence{Points: seqs[2].Points[:20]}
	matches, _, err := re.Search(q, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.SeqID == 2 {
			found = true
		}
	}
	if !found {
		t.Error("reattached database missing sequence")
	}
}
