// Package mdseq is a similarity-search engine for multidimensional data
// sequences, implementing Lee, Chun, Kim, Lee & Chung, "Similarity Search
// for Multidimensional Data Sequences" (ICDE 2000).
//
// A multidimensional data sequence is an ordered series of n-dimensional
// feature vectors — a video stream with one color point per frame, an
// image's regions in space-filling-curve order, or a sliding-window
// embedding of a time series. mdseq stores such sequences, partitions each
// into minimum bounding rectangles with the paper's marginal-cost rule,
// indexes the MBRs in a disk-backed R*-tree, and answers range queries
// ("find sequences within distance ε of this query, and the sub-ranges
// where they match") with two pruning passes — the MBR distance Dmbr and
// the normalized distance Dnorm — that guarantee no false dismissals for
// sequence selection.
//
// # Quick start
//
//	db, err := mdseq.Open(mdseq.Options{Dim: 3})
//	...
//	id, err := db.Add(seq)                  // seq: *mdseq.Sequence
//	matches, stats, err := db.Search(q, 0.1)
//	for _, m := range matches {
//	    fmt.Println(m.SeqID, m.Interval.Ranges()) // matching sub-ranges
//	}
//
// The subpackages under internal implement the substrates (geometry, page
// store, R*-tree, workload generators); this package is the supported
// surface.
package mdseq

import (
	"net/http"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/store"
)

// Point is an n-dimensional feature vector.
type Point = geom.Point

// Rect is an n-dimensional minimum bounding rectangle.
type Rect = geom.Rect

// Sequence is a multidimensional data sequence (Definition 1 of the
// paper).
type Sequence = core.Sequence

// MBRInfo is one partition of a sequence: its bounding rectangle and the
// half-open point-index range it covers.
type MBRInfo = core.MBRInfo

// Segmented couples a sequence with its MBR partitioning.
type Segmented = core.Segmented

// PartitionConfig tunes the paper's MCOST partitioning algorithm.
type PartitionConfig = core.PartitionConfig

// Match is one search result: a sequence within threshold plus the
// approximated solution interval locating where it matches.
type Match = core.Match

// SearchStats describes the work each phase of a search did.
type SearchStats = core.SearchStats

// ScanResult is one exact result from the sequential-scan baseline.
type ScanResult = core.ScanResult

// PointRange is a half-open range of point indices.
type PointRange = core.PointRange

// IntervalSet is a normalized union of point ranges — a solution interval.
type IntervalSet = core.IntervalSet

// DnormResult carries a normalized distance and the MBR window realizing
// it.
type DnormResult = core.DnormResult

// Options configures a database.
type Options = core.Options

// DB is a sequence database: storage, partitioning, spatial index, and the
// three-phase similarity search.
type DB = core.Database

// Open creates a database. With Options.Path set the index pages live in
// that file; otherwise everything stays in memory.
func Open(opts Options) (*DB, error) { return core.NewDatabase(opts) }

// NewSequence validates points and wraps them into a Sequence.
func NewSequence(label string, points []Point) (*Sequence, error) {
	return core.NewSequence(label, points)
}

// DefaultPartitionConfig returns the paper's partitioning constants
// (Q_k + ε = 0.3, 64-point cap).
func DefaultPartitionConfig() PartitionConfig { return core.DefaultPartitionConfig() }

// Partition segments a sequence with the paper's marginal-cost rule.
func Partition(s *Sequence, cfg PartitionConfig) ([]MBRInfo, error) {
	return core.Partition(s, cfg)
}

// D is the sequence distance of Definitions 2–3: mean point distance for
// equal lengths, minimum sliding mean otherwise.
func D(s1, s2 *Sequence) float64 { return core.D(s1, s2) }

// Dmean is the mean point distance between equal-length point slices.
func Dmean(a, b []Point) float64 { return core.Dmean(a, b) }

// Dmbr is the minimum Euclidean distance between two MBRs (Definition 4).
func Dmbr(a, b Rect) float64 { return a.MinDist(b) }

// Dnorm is the normalized MBR distance (Definition 5) between a query MBR
// (rectangle plus point count) and the j-th MBR of a segmented sequence.
func Dnorm(qRect Rect, qCount int, g *Segmented, j int) DnormResult {
	return core.Dnorm(qRect, qCount, g, j)
}

// MinDnorm is min over targets of Dnorm — the pruning bound of Lemma 3.
func MinDnorm(qRect Rect, qCount int, g *Segmented) float64 {
	return core.MinDnorm(qRect, qCount, g)
}

// BestAlignment returns the offset of the best alignment of the shorter
// point slice inside the longer, with its mean distance.
func BestAlignment(a, b []Point) (offset int, dist float64) {
	return core.BestAlignment(a, b)
}

// DistToSimilarity maps a distance in the n-dimensional unit cube to a
// similarity in [0,1].
func DistToSimilarity(dist float64, n int) float64 { return geom.DistToSimilarity(dist, n) }

// KNNResult is one ranked result of DB.SearchKNN.
type KNNResult = core.KNNResult

// Explanation is the decision record produced by DB.Explain.
type Explanation = core.Explanation

// OpenExisting reattaches to a previously flushed index file, restoring
// the given sequences in their original order (see core.OpenDatabase).
func OpenExisting(opts Options, seqs []*Sequence) (*DB, error) {
	return core.OpenDatabase(opts, seqs)
}

// DTW is the dynamic time warping distance with a Sakoe–Chiba band of the
// given half-width (negative = unconstrained), normalized by the longer
// length. Use it to re-rank Search results when elastic matching matters;
// it does not lower-bound D and cannot replace it inside the index.
func DTW(a, b []Point, window int) (float64, error) { return core.DTW(a, b, window) }

// RefineDTW re-ranks matches by DTW between the query and each match's
// widest solution-interval range.
func RefineDTW(q *Sequence, matches []Match, window int) []Match {
	return core.RefineDTW(q, matches, window)
}

// Metric is a search distance paired with the index lower bounds that
// prune for it without false dismissals. MetricD is the paper's exact
// alignment distance D (the default everywhere a Metric is optional);
// MetricDTW is dynamic time warping served through envelope and
// LB_Keogh pruning. Pass a Metric to DB.SearchMetric / DB.SearchKNNMetric
// (and their sharded counterparts via Store).
type Metric = core.Metric

// MetricD selects the exact alignment distance D — the same result set
// as DB.Search, with exact distances on each match.
type MetricD = core.MetricD

// MetricDTW selects dynamic time warping with a Sakoe–Chiba band of
// Window points (negative = unconstrained), normalized by the longer
// sequence length.
type MetricDTW = core.MetricDTW

// MetricMatch is one result of a metric range search: a sequence within
// the threshold under the chosen metric, with its exact distance.
type MetricMatch = core.MetricMatch

// ParseMetric resolves a metric by name ("", "d", or "dtw") and DTW
// window — the form the CLI and HTTP layers accept.
func ParseMetric(name string, window int) (Metric, error) { return core.ParseMetric(name, window) }

// Save persists db (live sequences + configuration) into a directory that
// Load can restore. Numeric ids are not preserved; labels are.
func Save(db *DB, dir string) error { return store.Save(db, dir) }

// Load restores a database saved with Save, rebuilding its index (in
// <dir>/index.db when fileIndex is set, in memory otherwise).
func Load(dir string, fileIndex bool) (*DB, error) { return store.Load(dir, fileIndex) }

// --- sharding -----------------------------------------------------------

// ShardedDB hash-partitions sequences by label over N independent
// single-node databases — each with its own R*-tree, pager, and lock —
// and answers queries by scatter-gather: every shard runs the unmodified
// three-phase algorithm on its disjoint slice of the corpus, so the
// no-false-dismissal guarantees carry over shard-locally and the merged
// answer set equals the single-node one.
type ShardedDB = shard.ShardedDB

// Store is the database surface shared by *DB and *ShardedDB: writes,
// range search, kNN, explain, and stats. Serving layers program against
// it so topology stays a deployment choice.
type Store = shard.DB

// ShardStats pairs a shard index with its local search statistics.
type ShardStats = shard.ShardStats

// ShardPolicy configures the fault tolerance of the sharded query path:
// per-shard timeouts, bounded retry with backoff, hedged requests for
// stragglers, and graceful degradation to results flagged partial
// (SearchStats.Partial / SearchStats.ShardsAnswered). Install it with
// ShardedDB.SetPolicy; the zero value keeps the original fail-fast
// scatter.
type ShardPolicy = shard.Policy

// OpenSharded creates a database of n hash shards, each configured with
// opts (with Options.Path set, shard i uses "<path>.shard<i>").
func OpenSharded(opts Options, n int) (*ShardedDB, error) { return shard.New(opts, n) }

// ShardFor returns the shard index the stable label-hash placement rule
// assigns to label among n shards.
func ShardFor(label string, n int) int { return shard.ShardFor(label, n) }

// SaveSharded persists a sharded database (one subdirectory per shard
// plus a shard-count record) into a directory LoadSharded can restore.
func SaveSharded(db *ShardedDB, dir string) error { return store.SaveSharded(db, dir) }

// --- caching -------------------------------------------------------------

// QueryCache is a sharded, cost-aware cache of query results. Attach one
// with DB.SetCache (or ShardedDB.SetCache, where the budget also covers
// per-shard caches behind a merged-result front cache): repeated range,
// parallel, kNN, and batch queries are then answered from memory.
// Eviction is by GDSF priority (recomputation cost × hit frequency /
// size, with an aging watermark) or plain LRU; writes invalidate either
// just the entries whose recorded query region (MBR + radius) the
// written sequence's MBR can reach, or — under epoch scope — everything.
// Cached answers are never stale either way, and partial scatter-gather
// results are never cached. See QueryCacheConfig for the knobs.
type QueryCache = cache.Cache

// QueryCacheConfig sizes a QueryCache and selects its policies: entry
// cap, approximate byte cap, lock-shard count, eviction Policy, and
// invalidation Scope. Zero fields take the package defaults (4096
// entries, 64 MiB, 16 shards, CachePolicyGDSF, CacheScopeMBR).
type QueryCacheConfig = cache.Config

// CachePolicy selects a QueryCache's eviction policy.
type CachePolicy = cache.Policy

// The supported eviction policies.
const (
	// CachePolicyLRU evicts the least-recently-used entry first.
	CachePolicyLRU CachePolicy = cache.PolicyLRU
	// CachePolicyGDSF (the default) evicts by Greedy-Dual-Size-Frequency
	// priority, preferring to keep entries that are expensive to
	// recompute and frequently hit.
	CachePolicyGDSF CachePolicy = cache.PolicyGDSF
)

// ParseCachePolicy converts a flag string ("lru", "gdsf", or "" for the
// default) into a CachePolicy.
func ParseCachePolicy(s string) (CachePolicy, error) { return cache.ParsePolicy(s) }

// CacheScope selects how writes invalidate a QueryCache.
type CacheScope = cache.Scope

// The supported invalidation scopes.
const (
	// CacheScopeEpoch flushes every entry on any write.
	CacheScopeEpoch CacheScope = cache.ScopeEpoch
	// CacheScopeMBR (the default) removes only entries whose recorded
	// query region the written sequence's MBR can reach.
	CacheScopeMBR CacheScope = cache.ScopeMBR
)

// ParseCacheScope converts a flag string ("epoch", "mbr", or "" for the
// default) into a CacheScope.
func ParseCacheScope(s string) (CacheScope, error) { return cache.ParseScope(s) }

// NewQueryCache creates a query-result cache sized by cfg.
func NewQueryCache(cfg QueryCacheConfig) *QueryCache { return cache.New(cfg) }

// QueryCacheMetrics is the mdseq_cache_* instrument set a QueryCache
// records into (hits, misses, evictions, invalidations, entry/byte
// gauges, hit ratio). Wire it with QueryCache.SetMetrics.
type QueryCacheMetrics = cache.Metrics

// NewQueryCacheMetrics resolves the mdseq_cache_* instruments in reg
// under a {cache="name"} label — use distinct names when several caches
// share a registry (e.g. "front" and "shard" on a sharded deployment).
func NewQueryCacheMetrics(reg *MetricsRegistry, name string) *QueryCacheMetrics {
	return cache.NewMetrics(reg, name)
}

// --- observability -------------------------------------------------------

// MetricsRegistry is a stdlib-only metrics registry: atomic counters,
// gauges, and fixed-bucket latency histograms with a Prometheus
// text-exposition encoder. Wire it into a database with SetMetrics and
// serve it with MetricsHandler (or mdsserve's built-in GET /metrics).
type MetricsRegistry = obs.Registry

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// MetricsHandler serves reg in Prometheus text exposition format.
func MetricsHandler(reg *MetricsRegistry) http.Handler { return obs.MetricsHandler(reg) }

// LoadSharded restores a database saved with SaveSharded, preserving the
// shard count and placement. A plain Save directory loads as one shard.
func LoadSharded(dir string, fileIndex bool) (*ShardedDB, error) {
	return store.LoadSharded(dir, fileIndex)
}
