package mdseq_test

import (
	"fmt"

	mdseq "repro"
)

// ExampleOpen shows the minimal index-and-search round trip.
func ExampleOpen() {
	db, err := mdseq.Open(mdseq.Options{Dim: 2})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	// A short trail and a query equal to its middle part.
	trail, _ := mdseq.NewSequence("trail", []mdseq.Point{
		{0.10, 0.10}, {0.12, 0.11}, {0.14, 0.13},
		{0.50, 0.52}, {0.52, 0.54}, {0.54, 0.55},
		{0.90, 0.88}, {0.92, 0.90}, {0.94, 0.91},
	})
	if _, err := db.Add(trail); err != nil {
		panic(err)
	}
	query, _ := mdseq.NewSequence("q", trail.Points[3:6])
	matches, _, err := db.Search(query, 0.01)
	if err != nil {
		panic(err)
	}
	for _, m := range matches {
		fmt.Printf("%s matches at %v\n", m.Seq.Label, m.Interval.Ranges())
	}
	// Output:
	// trail matches at [[3,6)]
}

// ExampleQueryCacheConfig selects an eviction policy and invalidation
// scope for the query-result cache, then shows MBR-scoped invalidation
// at work: a write far from a cached query's region keeps the hit alive,
// a write inside it recomputes.
func ExampleQueryCacheConfig() {
	db, err := mdseq.Open(mdseq.Options{Dim: 2})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	db.SetCache(mdseq.NewQueryCache(mdseq.QueryCacheConfig{
		MaxEntries: 1024,
		Policy:     mdseq.CachePolicyGDSF, // cost-aware eviction (the default)
		Scope:      mdseq.CacheScopeMBR,   // region-scoped invalidation (the default)
	}))

	trail, _ := mdseq.NewSequence("trail", []mdseq.Point{
		{0.10, 0.10}, {0.12, 0.11}, {0.14, 0.13}, {0.16, 0.14},
	})
	if _, err := db.Add(trail); err != nil {
		panic(err)
	}
	query, _ := mdseq.NewSequence("q", trail.Points[1:3])
	search := func() {
		_, st, err := db.Search(query, 0.05)
		if err != nil {
			panic(err)
		}
		fmt.Println("cached:", st.CacheHit)
	}
	search() // computes and fills the cache
	search() // served from memory

	// A write far from the query's region cannot change its answer, so
	// the entry keeps serving; a write inside the region invalidates it.
	far, _ := mdseq.NewSequence("far", []mdseq.Point{{0.90, 0.90}, {0.92, 0.91}})
	if _, err := db.Add(far); err != nil {
		panic(err)
	}
	search()
	near, _ := mdseq.NewSequence("near", trail.Points[0:2])
	if _, err := db.Add(near); err != nil {
		panic(err)
	}
	search()
	// Output:
	// cached: false
	// cached: true
	// cached: true
	// cached: false
}

// ExampleD demonstrates the sliding sequence distance of Definitions 2-3.
func ExampleD() {
	long, _ := mdseq.NewSequence("long", []mdseq.Point{
		{0.9}, {0.8}, {0.1}, {0.2}, {0.3}, {0.9},
	})
	short, _ := mdseq.NewSequence("short", []mdseq.Point{
		{0.1}, {0.2}, {0.3},
	})
	fmt.Printf("%.2f\n", mdseq.D(short, long))

	offset, _ := mdseq.BestAlignment(short.Points, long.Points)
	fmt.Println(offset)
	// Output:
	// 0.00
	// 2
}

// ExamplePartition shows the MCOST segmentation splitting at a jump.
func ExamplePartition() {
	seq, _ := mdseq.NewSequence("two-clusters", []mdseq.Point{
		{0.10, 0.10}, {0.11, 0.10}, {0.12, 0.11},
		{0.80, 0.85}, {0.81, 0.86}, {0.82, 0.86},
	})
	mbrs, err := mdseq.Partition(seq, mdseq.DefaultPartitionConfig())
	if err != nil {
		panic(err)
	}
	for _, m := range mbrs {
		fmt.Printf("[%d,%d)\n", m.Start, m.End)
	}
	// Output:
	// [0,3)
	// [3,6)
}

// ExampleDmbr evaluates the paper's Definition 4 on two separated MBRs.
func ExampleDmbr() {
	seqA, _ := mdseq.NewSequence("a", []mdseq.Point{{0.1, 0.1}, {0.2, 0.2}})
	seqB, _ := mdseq.NewSequence("b", []mdseq.Point{{0.5, 0.2}, {0.6, 0.1}})
	cfg := mdseq.DefaultPartitionConfig()
	ma, _ := mdseq.Partition(seqA, cfg)
	mb, _ := mdseq.Partition(seqB, cfg)
	fmt.Printf("%.1f\n", mdseq.Dmbr(ma[0].Rect, mb[0].Rect))
	// Output:
	// 0.3
}
