package txn

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// TestTxnMetricEquivalence drives a randomized op stream into the txn
// layer and a plain core.Database and requires the metric query surface
// — DTW range, DTW kNN, and the exhaustive metric scan — to answer
// byte-identically: with the delta unfolded (indexed base + EvalMetric
// delta scan), after a checkpoint fold, and after a second op wave.
func TestTxnMetricEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	db := newMem(t, 3)
	ref := newRef(t, 3)
	var live []uint32

	wave := func(n int) {
		for i := 0; i < n; i++ {
			switch k := rng.Intn(10); {
			case k < 6 || len(live) == 0: // add
				s := randSeq(rng, 3, 10+rng.Intn(30))
				id, err := db.Add(clonePoints(s))
				if err != nil {
					t.Fatalf("Add: %v", err)
				}
				rid, err := ref.Add(clonePoints(s))
				if err != nil || rid != id {
					t.Fatalf("ref Add: id %d vs %d err=%v", rid, id, err)
				}
				live = append(live, id)
			case k < 8: // append
				id := live[rng.Intn(len(live))]
				ext := randSeq(rng, 3, 1+rng.Intn(6)).Points
				if err := db.AppendPoints(id, ext); err != nil {
					t.Fatalf("AppendPoints(%d): %v", id, err)
				}
				if err := ref.AppendPoints(id, ext); err != nil {
					t.Fatalf("ref AppendPoints(%d): %v", id, err)
				}
			default: // remove
				j := rng.Intn(len(live))
				id := live[j]
				if err := db.Remove(id); err != nil {
					t.Fatalf("Remove(%d): %v", id, err)
				}
				if err := ref.Remove(id); err != nil {
					t.Fatalf("ref Remove(%d): %v", id, err)
				}
				live = append(live[:j], live[j+1:]...)
			}
		}
	}

	var queries []*core.Sequence
	for i := 0; i < 4; i++ {
		queries = append(queries, randSeq(rng, 3, 8+rng.Intn(14)))
	}
	metrics := []core.Metric{core.MetricD{}, core.MetricDTW{Window: -1}, core.MetricDTW{Window: 3}}

	sameMatches := func(stage string, got, want []core.MetricMatch) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d matches, want %d", stage, len(got), len(want))
		}
		for i := range want {
			if got[i].SeqID != want[i].SeqID ||
				math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
				t.Fatalf("%s: match %d = (%d, %v), want (%d, %v)",
					stage, i, got[i].SeqID, got[i].Dist, want[i].SeqID, want[i].Dist)
			}
		}
	}
	check := func(stage string) {
		t.Helper()
		for qi, q := range queries {
			for mi, m := range metrics {
				for _, eps := range []float64{1, 4} {
					label := labelf("%s q=%d m=%d eps=%v", stage, qi, mi, eps)
					got, _, err := db.SearchMetric(q, eps, m)
					if err != nil {
						t.Fatalf("%s: SearchMetric: %v", label, err)
					}
					want, _, err := ref.SearchMetric(q, eps, m)
					if err != nil {
						t.Fatalf("%s: ref SearchMetric: %v", label, err)
					}
					sameMatches(label+" range", got, want)
					scan, err := db.SequentialSearchMetric(q, eps, m)
					if err != nil {
						t.Fatalf("%s: SequentialSearchMetric: %v", label, err)
					}
					sameMatches(label+" scan", scan, want)
				}
				nn, err := db.SearchKNNMetric(q, 5, m)
				if err != nil {
					t.Fatalf("%s: SearchKNNMetric: %v", stage, err)
				}
				rnn, err := ref.SearchKNNMetric(q, 5, m)
				if err != nil {
					t.Fatalf("%s: ref SearchKNNMetric: %v", stage, err)
				}
				if len(nn) != len(rnn) {
					t.Fatalf("%s m=%d: %d neighbors, want %d", stage, mi, len(nn), len(rnn))
				}
				for i := range rnn {
					if nn[i].SeqID != rnn[i].SeqID ||
						math.Float64bits(nn[i].Dist) != math.Float64bits(rnn[i].Dist) {
						t.Fatalf("%s m=%d: neighbor %d = (%d, %v), want (%d, %v)",
							stage, mi, i, nn[i].SeqID, nn[i].Dist, rnn[i].SeqID, rnn[i].Dist)
					}
				}
			}
		}
	}

	wave(40)
	check("delta")
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	check("folded")
	wave(30)
	check("second wave")
}

func labelf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
