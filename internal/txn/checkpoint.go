package txn

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pager"
	"repro/internal/seqio"
	"repro/internal/store"
)

// Durability directory layout:
//
//	<Dir>/txn.wal          record WAL (pager.Log)
//	<Dir>/base-<lsn>/      id-preserving base snapshot at checkpoint lsn
//	<Dir>/CURRENT          name of the live snapshot dir (tmp+rename)
//
// A snapshot directory is meaningful only once CURRENT names it, so a
// crash during checkpointing leaves the previous snapshot + full WAL —
// never a half-promoted state.
const (
	walFile     = "txn.wal"
	currentFile = "CURRENT"
	snapPrefix  = "base-"
	snapSeqFile = "sequences.mds"
	snapSegFile = "segments.sg2"
	snapMeta    = "meta.bin"
)

// ErrBadDir indicates a durability directory with a corrupt CURRENT
// marker or snapshot metadata.
var ErrBadDir = errors.New("txn: bad durability directory")

// drainInterval is how often a draining checkpoint re-polls the old
// generation's pin count.
const drainInterval = 200 * time.Microsecond

// Checkpoint folds the current delta into the base database, persists
// an id-preserving base snapshot (durable mode), compacts the WAL to
// the unfolded tail, and publishes a rebased (empty-delta) state.
// Readers are never blocked: they keep querying throughout — the only
// wait is the checkpoint's own drain of snapshots taken before the fold
// point, which must be released before the base may change under them.
// Concurrent commits keep flowing; they land in the post-fold delta.
func (db *DB) Checkpoint() error {
	return db.CheckpointCtx(context.Background())
}

// CheckpointCtx is Checkpoint recording an observability span when ctx
// carries an obs.Trace: duration, the delta size folded, and the epoch
// the fold cut at. The context does not cancel the checkpoint — a fold
// in progress always runs to completion or failure.
func (db *DB) CheckpointCtx(ctx context.Context) error {
	tr := obs.FromContext(ctx)
	if tr != nil {
		t0 := time.Now()
		cut := db.cur.Load()
		err := db.checkpointLocked()
		tr.RecordSpan(obs.SpanFromContext(ctx), "checkpoint", time.Since(t0),
			obs.Int64("snapshot_epoch", int64(cut.epoch)),
			obs.Int("delta_len", cut.deltaLen()),
			obs.Bool("ok", err == nil))
		return err
	}
	return db.checkpointLocked()
}

// checkpointLocked is the checkpoint body (see Checkpoint for the
// contract).
func (db *DB) checkpointLocked() error {
	if db.closed.Load() {
		return ErrClosed
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	cut := db.cur.Load()
	if cut.deltaLen() == 0 {
		return nil
	}
	t0 := time.Now()

	// Retire every snapshot older than the cut. Snapshots taken from
	// here on observe states ≥ cut, whose overlay/removed sets cover
	// everything this fold changes in the base — their read filters keep
	// them consistent mid-fold (see view.dropBase). Snapshots from
	// before might lack an overlay the fold is about to apply, so they
	// must finish first.
	drainStart := time.Now()
	gen := db.pinGen.Load()
	db.pinGen.Store(gen + 1)
	for db.pins[gen&1].Load() > 0 {
		time.Sleep(drainInterval)
	}
	db.stats.drainNanos.Add(time.Since(drainStart).Nanoseconds())

	if err := db.fold(cut); err != nil {
		db.stats.ckptErrs.Add(1)
		return fmt.Errorf("txn: checkpoint fold: %w", err)
	}
	wantNext := cut.baseNext + uint32(len(cut.adds))
	if got := uint32(db.base.DirLen()); got != wantNext {
		db.stats.ckptErrs.Add(1)
		return fmt.Errorf("txn: checkpoint fold id drift: base next id %d, want %d", got, wantNext)
	}
	if db.log != nil {
		if err := db.persistSnapshot(cut.lastLSN); err != nil {
			db.stats.ckptErrs.Add(1)
			return fmt.Errorf("txn: checkpoint persist: %w", err)
		}
	}

	req := &commitReq{resp: make(chan commitRes, 1), rebase: &rebaseReq{
		cutAdds:     len(cut.adds),
		cutOverlays: len(cut.overlays),
		cutRemoved:  len(cut.removed),
		cutLSN:      cut.lastLSN,
		newBaseNext: wantNext,
	}}
	if err := db.submit(req); err != nil {
		return err
	}
	res := <-req.resp
	db.stats.checkpoints.Add(1)
	db.stats.lastCkptNanos.Store(time.Since(t0).Nanoseconds())
	if m := db.met.Load(); m != nil {
		m.checkpoints.Inc()
		m.ckptSeconds.Observe(time.Since(t0).Seconds())
	}
	if db.log != nil {
		db.pruneSnapshots(cut.lastLSN)
	}
	// A failed WAL compaction (res.err) is reported but not fatal: the
	// promoted snapshot already makes the folded records dead on replay.
	return res.err
}

// fold applies the cut state's delta to the base database, op by op
// (each op takes the base write lock briefly, interleaving with
// readers). Adds are applied in commit order so the base assigns
// exactly the ids the transaction layer already promised; an add that
// was later removed folds as a tombstone so ids after it keep their
// position. The fold is idempotent: a retry after a mid-fold error
// skips the already-applied prefix.
func (db *DB) fold(cut *state) error {
	v := buildView(cut)
	already := db.base.DirLen() - int(cut.baseNext)
	if already < 0 {
		return fmt.Errorf("txn: base shrank below fold point (%d < %d)", db.base.DirLen(), cut.baseNext)
	}
	for i := already; i < len(cut.adds); i++ {
		id := cut.baseNext + uint32(i)
		if _, dead := v.removed[id]; dead {
			tid, err := db.base.AddTombstone()
			if err != nil {
				return err
			}
			if tid != id {
				return fmt.Errorf("txn: fold assigned id %d, want %d", tid, id)
			}
			continue
		}
		g := cut.adds[i]
		if ng, ok := v.overlay[id]; ok {
			g = ng
		}
		gid, err := db.base.AddSegmented(detach(g))
		if err != nil {
			return err
		}
		if gid != id {
			return fmt.Errorf("txn: fold assigned id %d, want %d", gid, id)
		}
	}
	for id, g := range v.overlay {
		if id >= cut.baseNext {
			continue // folded with its add above
		}
		if _, dead := v.removed[id]; dead {
			continue // removal wins
		}
		if err := db.base.ReplaceSegmented(id, detach(g)); err != nil {
			return err
		}
	}
	for _, id := range cut.removed {
		if id >= cut.baseNext {
			continue // tombstoned above
		}
		if err := db.base.Remove(id); err != nil && !errors.Is(err, core.ErrUnknownSequence) {
			// Unknown id here means a retried fold already removed it.
			return err
		}
	}
	return nil
}

// detach returns a shallow copy of g with its own Sequence header. The
// base stamps Seq.ID on whatever it is handed; folding must not let that
// write land in an object that live snapshots and the committer are
// concurrently reading. All slice data (points, MBRs, columnar arrays)
// is immutable after construction and stays shared.
func detach(g *core.Segmented) *core.Segmented {
	gc := *g
	sc := *g.Seq
	gc.Seq = &sc
	return &gc
}

// persistSnapshot writes the post-fold base as snapshot base-<lsn> and
// promotes it via the CURRENT marker. Every file and both directory
// entries are fsynced before promotion; a crash at any point leaves
// either the old CURRENT (snapshot ignored, WAL replays) or the new one
// (complete by construction). The sequence payload is written in
// Options.SnapshotFormat: v2 serializes the base's already-partitioned
// columnar segments (with the packed R*-tree leaf grouping), so the
// next open aliases them back with no re-partitioning; v1 writes seqio
// records. loadBase reads either.
func (db *DB) persistSnapshot(lsn uint64) error {
	name := snapName(lsn)
	dir := filepath.Join(db.opts.Dir, name)
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	format := db.opts.SnapshotFormat
	if format == 0 {
		format = store.DefaultFormat
	}
	var ids []uint32
	if format == store.FormatV2 {
		segs := db.base.LiveSegments()
		ids = make([]uint32, len(segs))
		for i, g := range segs {
			ids[i] = g.Seq.ID
		}
		if len(segs) > 0 {
			if err := store.WriteSegments(filepath.Join(dir, snapSegFile),
				db.base.Dim(), db.base.PartitionConfig(), segs); err != nil {
				return err
			}
		}
	} else {
		seqs := db.base.Sequences()
		ids = make([]uint32, len(seqs))
		for i, s := range seqs {
			ids[i] = s.ID
		}
		if len(seqs) > 0 {
			if err := writeFileSynced(filepath.Join(dir, snapSeqFile), func(f *os.File) error {
				return seqio.Write(f, seqs)
			}); err != nil {
				return err
			}
		}
	}
	meta := encodeSnapMeta(db.base.Dim(), db.base.PartitionConfig(), uint32(db.base.DirLen()), ids)
	if err := writeFileSynced(filepath.Join(dir, snapMeta), func(f *os.File) error {
		_, err := f.Write(meta)
		return err
	}); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	// Promote: CURRENT now names the new snapshot.
	tmp := filepath.Join(db.opts.Dir, currentFile+".tmp")
	if err := writeFileSynced(tmp, func(f *os.File) error {
		_, err := f.Write([]byte(name + "\n"))
		return err
	}); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(db.opts.Dir, currentFile)); err != nil {
		return err
	}
	return syncDir(db.opts.Dir)
}

// pruneSnapshots deletes snapshot directories other than the live one.
func (db *DB) pruneSnapshots(liveLSN uint64) {
	entries, err := os.ReadDir(db.opts.Dir)
	if err != nil {
		return
	}
	live := snapName(liveLSN)
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), snapPrefix) && e.Name() != live {
			os.RemoveAll(filepath.Join(db.opts.Dir, e.Name()))
		}
	}
}

// snapName formats the snapshot directory name for a checkpoint LSN.
func snapName(lsn uint64) string { return fmt.Sprintf("%s%016x", snapPrefix, lsn) }

// --- open / recovery ----------------------------------------------------

// loadBase builds the base database for Open: from the CURRENT snapshot
// when one exists (reproducing the exact id layout, holes included),
// from scratch otherwise. It reconciles opts with the stored metadata.
func loadBase(opts *Options) (*core.Database, uint64, error) {
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, 0, err
	}
	cur, err := os.ReadFile(filepath.Join(opts.Dir, currentFile))
	if err != nil {
		if !os.IsNotExist(err) {
			return nil, 0, err
		}
		if opts.Dim < 1 {
			return nil, 0, errors.New("txn: Dim required to create a new database")
		}
		base, err := core.NewDatabase(core.Options{Dim: opts.Dim, Partition: opts.Partition, QuantizedMBR: opts.QuantizedMBR})
		if err != nil {
			return nil, 0, err
		}
		return base, 0, nil
	}
	name := strings.TrimSpace(string(cur))
	var lsn uint64
	if _, err := fmt.Sscanf(name, snapPrefix+"%016x", &lsn); err != nil || name != snapName(lsn) {
		return nil, 0, fmt.Errorf("%w: CURRENT names %q", ErrBadDir, name)
	}
	dir := filepath.Join(opts.Dir, name)
	meta, err := os.ReadFile(filepath.Join(dir, snapMeta))
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadDir, err)
	}
	dim, cfg, nextID, ids, err := decodeSnapMeta(meta)
	if err != nil {
		return nil, 0, err
	}
	if opts.Dim != 0 && opts.Dim != dim {
		return nil, 0, fmt.Errorf("txn: store has dim %d, options say %d", dim, opts.Dim)
	}
	opts.Dim = dim
	opts.Partition = cfg

	if segPath := filepath.Join(dir, snapSegFile); len(ids) > 0 {
		if _, statErr := os.Stat(segPath); statErr == nil {
			return loadBaseV2(segPath, dim, cfg, opts.QuantizedMBR, nextID, ids, lsn)
		}
	}

	var seqs []*core.Sequence
	if len(ids) > 0 {
		seqs, err = seqio.ReadFile(filepath.Join(dir, snapSeqFile))
		if err != nil {
			return nil, 0, fmt.Errorf("%w: %v", ErrBadDir, err)
		}
		if len(seqs) != len(ids) {
			return nil, 0, fmt.Errorf("%w: %d sequences for %d ids", ErrBadDir, len(seqs), len(ids))
		}
	}
	base, err := core.NewDatabase(core.Options{Dim: dim, Partition: cfg, QuantizedMBR: opts.QuantizedMBR})
	if err != nil {
		return nil, 0, err
	}
	if uint32(len(ids)) == nextID {
		// No holes: ids are 0..n-1 in order, the bulk path applies.
		if len(seqs) > 0 {
			if _, err := base.AddAll(seqs); err != nil {
				base.Close()
				return nil, 0, err
			}
		}
		return base, lsn, nil
	}
	k := 0
	for id := uint32(0); id < nextID; id++ {
		if k < len(ids) && ids[k] == id {
			g, err := core.NewSegmented(seqs[k], cfg)
			if err != nil {
				base.Close()
				return nil, 0, err
			}
			got, err := base.AddSegmented(g)
			if err != nil {
				base.Close()
				return nil, 0, err
			}
			if got != id {
				base.Close()
				return nil, 0, fmt.Errorf("%w: snapshot ids not ascending", ErrBadDir)
			}
			k++
			continue
		}
		if _, err := base.AddTombstone(); err != nil {
			base.Close()
			return nil, 0, err
		}
	}
	if k != len(ids) {
		base.Close()
		return nil, 0, fmt.Errorf("%w: snapshot ids exceed next id", ErrBadDir)
	}
	return base, lsn, nil
}

// loadBaseV2 rebuilds the base from a v2 (columnar segment) snapshot:
// the file's already-partitioned segments are aliased straight into the
// database — no re-partitioning — and, when the id layout has no holes,
// the R*-tree is packed bottom-up from the stored leaf grouping. With
// holes (removed ids), segments and tombstones are interleaved per slot
// to reproduce the exact directory layout; the packed leaves are keyed
// by dense position, so they do not apply there.
func loadBaseV2(path string, dim int, cfg core.PartitionConfig, quant bool, nextID uint32, ids []uint32, lsn uint64) (*core.Database, uint64, error) {
	c, err := store.ReadSegments(path)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadDir, err)
	}
	if c.Dim != dim || c.Config != cfg || len(c.Segs) != len(ids) {
		return nil, 0, fmt.Errorf("%w: snapshot segments disagree with meta", ErrBadDir)
	}
	base, err := core.NewDatabase(core.Options{Dim: dim, Partition: cfg, QuantizedMBR: quant})
	if err != nil {
		return nil, 0, err
	}
	if uint32(len(ids)) == nextID {
		leaves := c.Leaves
		if c.TreeM != base.IndexFanout() {
			leaves = nil
		}
		if _, err := base.AddAllSegmented(c.Segs, leaves); err != nil {
			base.Close()
			return nil, 0, fmt.Errorf("%w: %v", ErrBadDir, err)
		}
		return base, lsn, nil
	}
	k := 0
	for id := uint32(0); id < nextID; id++ {
		if k < len(ids) && ids[k] == id {
			got, err := base.AddSegmented(c.Segs[k])
			if err != nil {
				base.Close()
				return nil, 0, fmt.Errorf("%w: %v", ErrBadDir, err)
			}
			if got != id {
				base.Close()
				return nil, 0, fmt.Errorf("%w: snapshot ids not ascending", ErrBadDir)
			}
			k++
			continue
		}
		if _, err := base.AddTombstone(); err != nil {
			base.Close()
			return nil, 0, err
		}
	}
	if k != len(ids) {
		base.Close()
		return nil, 0, fmt.Errorf("%w: snapshot ids exceed next id", ErrBadDir)
	}
	return base, lsn, nil
}

// openLog opens the WAL and replays the unfolded tail into the delta
// state, restoring every acknowledged commit the snapshot predates.
// Runs before the committer starts, so it may mutate the initial state
// in place.
func (db *DB) openLog() error {
	st := db.cur.Load()
	ckptLSN := db.ckptLSN.Load()
	maxLSN := ckptLSN
	replayed := 0
	log, err := pager.OpenLog(filepath.Join(db.opts.Dir, walFile), func(payload []byte) error {
		lsn, ops, err := decodeRecord(payload, db.base.Dim())
		if err != nil {
			return err
		}
		if lsn <= ckptLSN {
			return nil // already folded into the snapshot
		}
		if lsn <= maxLSN {
			return fmt.Errorf("%w: LSN %d out of order", ErrBadRecord, lsn)
		}
		if _, err := db.applyOps(st, ops); err != nil {
			return fmt.Errorf("txn: replaying record %d: %w", lsn, err)
		}
		st.epoch++
		st.lastLSN = lsn
		maxLSN = lsn
		db.tailRecs = append(db.tailRecs, tailRec{lsn: lsn, payload: payload})
		replayed++
		return nil
	})
	if err != nil {
		return err
	}
	db.log = log
	db.nextLSN = maxLSN + 1
	db.tailLen = len(db.tailRecs)
	if db.tailLen > 0 {
		db.stats.tailSince.Store(time.Now().UnixNano())
	}
	db.stats.recovered.Store(uint64(replayed))
	return nil
}

// writeFileSynced creates path, lets write fill it, and fsyncs before
// closing — nothing above may treat the file as written until it is on
// disk.
func writeFileSynced(path string, write func(*os.File) error) error {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory entry so renames/creates in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	d.Close()
	return err
}

// Snapshot metadata format (meta.bin, little-endian):
//
//	magic "MDSTXN01" | dim u16 | queryExtent f64 | maxPoints u64 |
//	nextID u32 | count u32 | count × id u32 (ascending)
//
// ids map the sequences.mds entries (same order) to their directory
// slots; slots in [0, nextID) not listed are tombstones of removed
// sequences, preserved so replayed WAL records and client-held ids stay
// valid.
const snapMagic = "MDSTXN01"

// encodeSnapMeta serializes snapshot metadata.
func encodeSnapMeta(dim int, cfg core.PartitionConfig, nextID uint32, ids []uint32) []byte {
	buf := make([]byte, 0, 8+2+8+8+4+4+4*len(ids))
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(dim))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(cfg.QueryExtent))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cfg.MaxPoints))
	buf = binary.LittleEndian.AppendUint32(buf, nextID)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ids)))
	for _, id := range ids {
		buf = binary.LittleEndian.AppendUint32(buf, id)
	}
	return buf
}

// decodeSnapMeta parses snapshot metadata, validating id ordering.
func decodeSnapMeta(buf []byte) (dim int, cfg core.PartitionConfig, nextID uint32, ids []uint32, err error) {
	const fixed = 8 + 2 + 8 + 8 + 4 + 4
	if len(buf) < fixed || string(buf[:8]) != snapMagic {
		return 0, cfg, 0, nil, fmt.Errorf("%w: bad snapshot meta", ErrBadDir)
	}
	dim = int(binary.LittleEndian.Uint16(buf[8:10]))
	cfg.QueryExtent = math.Float64frombits(binary.LittleEndian.Uint64(buf[10:18]))
	cfg.MaxPoints = int(binary.LittleEndian.Uint64(buf[18:26]))
	nextID = binary.LittleEndian.Uint32(buf[26:30])
	count := binary.LittleEndian.Uint32(buf[30:34])
	if dim < 1 || count > nextID || len(buf) != fixed+4*int(count) {
		return 0, cfg, 0, nil, fmt.Errorf("%w: bad snapshot meta", ErrBadDir)
	}
	ids = make([]uint32, count)
	for i := range ids {
		ids[i] = binary.LittleEndian.Uint32(buf[fixed+4*i:])
		if ids[i] >= nextID || (i > 0 && ids[i] <= ids[i-1]) {
			return 0, cfg, 0, nil, fmt.Errorf("%w: snapshot ids not ascending", ErrBadDir)
		}
	}
	return dim, cfg, nextID, ids, nil
}
