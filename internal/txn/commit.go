package txn

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/pager"
)

// maxGroup bounds how many requests share one fsync, keeping the encoded
// record memory of a group modest even under a long window.
const maxGroup = 1024

// committer is the single writer goroutine: it serializes all state
// transitions, so the append-only sharing of state slices needs no
// locks. Requests are drained in batches (group commit), each batch
// made durable with one fsync before any of its requests is
// acknowledged.
func (db *DB) committer() {
	for {
		select {
		case req := <-db.commitCh:
			db.processBatch(db.collectBatch(req))
		case <-db.stopCh:
			// Drain: every request that entered the channel gets a
			// definitive, durable answer before shutdown.
			for {
				select {
				case req := <-db.commitCh:
					db.processBatch([]*commitReq{req})
				default:
					return
				}
			}
		}
	}
}

// collectBatch gathers requests to share one fsync: everything already
// queued, plus — when a group-commit window is configured — whatever
// arrives within the window of the first request.
func (db *DB) collectBatch(first *commitReq) []*commitReq {
	batch := []*commitReq{first}
	if db.opts.GroupWindow > 0 && first.rebase == nil {
		timer := time.NewTimer(db.opts.GroupWindow)
		defer timer.Stop()
	window:
		for len(batch) < maxGroup {
			select {
			case req := <-db.commitCh:
				batch = append(batch, req)
				if req.rebase != nil {
					break window // rebase barrier: flush what we have
				}
			case <-timer.C:
				break window
			case <-db.stopCh:
				break window
			}
		}
		return batch
	}
	for len(batch) < maxGroup {
		select {
		case req := <-db.commitCh:
			batch = append(batch, req)
			if req.rebase != nil {
				return batch
			}
		default:
			return batch
		}
	}
	return batch
}

// processBatch validates, applies, logs, fsyncs, publishes, and acks one
// batch. A rebase request inside the batch acts as a barrier: the group
// before it is flushed, then the state is rebased onto the new fold
// point.
func (db *DB) processBatch(reqs []*commitReq) {
	pend := db.beginPending()
	var group []*commitReq
	var recs []tailRec
	for _, req := range reqs {
		if req.rebase != nil {
			pend = db.flushGroup(pend, group, recs)
			group, recs = nil, nil
			db.handleRebase(req)
			pend = db.beginPending()
			continue
		}
		firstID, rec, err := db.applyReq(pend, req)
		if err != nil {
			req.res = commitRes{err: err}
			req.resp <- req.res
			continue
		}
		req.res = commitRes{firstID: firstID}
		group = append(group, req)
		recs = append(recs, rec)
	}
	db.flushGroup(pend, group, recs)
}

// beginPending starts a mutable working copy of the current state and
// points the committer's mirror maps at it.
func (db *DB) beginPending() *state {
	cur := db.cur.Load()
	pend := &state{
		epoch:    cur.epoch,
		lastLSN:  cur.lastLSN,
		baseNext: cur.baseNext,
		live:     cur.live,
		adds:     cur.adds,
		overlays: cur.overlays,
		removed:  cur.removed,
	}
	db.work.st = pend
	return pend
}

// discardPending abandons a pending state whose group could not be made
// durable. Restarting from the published state is not enough on its own:
// the committer's mirror maps still carry the discarded group's
// mutations (an overlayIdx entry pointing past the pending overlays, a
// removedSet entry for a live id), so they are rebuilt from the fresh
// state; and the group's LSNs were never published, so they are returned
// to keep the LSN sequence gap-free (handleRebase sizes the tail by LSN
// arithmetic).
func (db *DB) discardPending(recs []tailRec) *state {
	db.nextLSN -= uint64(len(recs))
	pend := db.beginPending()
	db.work.reset(pend)
	return pend
}

// flushGroup makes the group's records durable, publishes the pending
// state, and acknowledges the requests — in that order, so an
// acknowledged commit is always on disk (unless NoFsync) and always
// readable by its own writer. Returns the state to keep building on.
func (db *DB) flushGroup(pend *state, group []*commitReq, recs []tailRec) *state {
	if len(group) == 0 {
		return pend
	}
	if db.wedged.Load() {
		for _, req := range group {
			req.resp <- commitRes{err: errWedged}
		}
		return db.discardPending(recs)
	}
	if db.log != nil {
		preSize := db.log.Size()
		err := func() error {
			for _, r := range recs {
				if err := db.log.Append(r.payload); err != nil {
					return err
				}
			}
			if !db.opts.NoFsync {
				if err := db.log.Sync(); err != nil {
					return err
				}
				db.stats.fsyncs.Add(1)
			}
			return nil
		}()
		if err != nil {
			// Durability failed: nothing publishes, everyone is told.
			// Cut any half-appended records back out of the log so a
			// later crash cannot resurrect commits that were never
			// acknowledged (replay order assigns add ids — a phantom
			// record would shift every id after it). If even the
			// truncate fails the log contents are unknowable: wedge the
			// database, refusing further commits rather than risk id
			// divergence after a crash.
			if terr := db.log.Truncate(preSize); terr != nil {
				db.wedged.Store(true)
			}
			for _, req := range group {
				req.resp <- commitRes{err: fmt.Errorf("txn: commit not durable: %w", err)}
			}
			return db.discardPending(recs)
		}
		for _, r := range recs {
			db.stats.walBytes.Add(uint64(len(r.payload)))
		}
	}
	pend.epoch++
	pend.lastLSN = recs[len(recs)-1].lsn
	db.cur.Store(pend)
	if db.tailLen == 0 {
		// Tail was empty: this group starts a new unfolded span.
		db.stats.tailSince.Store(time.Now().UnixNano())
	}
	db.tailLen += len(recs)
	if db.log != nil {
		db.tailRecs = append(db.tailRecs, recs...)
	}
	db.stats.commits.Add(uint64(len(group)))
	db.stats.records.Add(uint64(len(recs)))
	db.stats.groups.Add(1)
	if m := db.met.Load(); m != nil {
		m.groupSize.Observe(float64(len(group)))
		m.records.Add(uint64(len(recs)))
		now := time.Now()
		for _, req := range group {
			m.commitLatency.Observe(now.Sub(req.enq).Seconds())
		}
		if db.log != nil {
			if !db.opts.NoFsync {
				m.fsyncs.Inc()
			}
			for _, r := range recs {
				m.walBytes.Add(uint64(len(r.payload)))
			}
		}
	}
	for _, req := range group {
		req.res.group = len(group)
		req.resp <- req.res
	}
	if db.opts.CheckpointEvery > 0 && db.tailLen >= db.opts.CheckpointEvery {
		select {
		case db.ckptKick <- struct{}{}:
		default:
		}
	}
	return db.beginPending()
}

// applyReq validates and applies one request's ops onto pend and encodes
// its WAL record. On error pend (and the mirror maps) are left exactly
// as before the call and no LSN is consumed.
func (db *DB) applyReq(pend *state, req *commitReq) (firstID uint32, rec tailRec, err error) {
	// Reject a commit the record format (or the log) cannot carry before
	// applying anything, so one oversized request fails alone instead of
	// failing its whole group at append time.
	if len(req.ops) > maxRecOps {
		return 0, tailRec{}, fmt.Errorf("txn: commit of %d ops exceeds the %d-op record limit; split the batch", len(req.ops), maxRecOps)
	}
	if db.log != nil {
		if n := recordSize(req.ops, db.base.Dim()); n > pager.MaxLogRecord {
			return 0, tailRec{}, fmt.Errorf("txn: commit encodes to %d bytes, exceeding the %d-byte WAL record limit; split the batch", n, pager.MaxLogRecord)
		}
	}
	firstID, err = db.applyOps(pend, req.ops)
	if err != nil {
		return 0, tailRec{}, err
	}
	lsn := db.nextLSN
	db.nextLSN++
	rec = tailRec{lsn: lsn}
	if db.log != nil {
		rec.payload = encodeRecord(lsn, req.ops, db.base.Dim())
	}
	return firstID, rec, nil
}

// applyOps applies one atomic batch of ops to pend, keeping the
// committer's mirror maps in sync. All-or-nothing: on any failure every
// effect is undone before returning. firstID is the id assigned to the
// first opAdd (adds in a batch get consecutive ids).
func (db *DB) applyOps(pend *state, ops []op) (firstID uint32, err error) {
	undo := reqUndo{
		adds:     len(pend.adds),
		overlays: len(pend.overlays),
		removed:  len(pend.removed),
		live:     pend.live,
	}
	w := &db.work
	firstAdd := true
	for i := range ops {
		o := &ops[i]
		switch o.kind {
		case opAdd:
			g := o.g
			if g == nil {
				// WAL replay: partition the decoded sequence now.
				g, err = core.NewSegmented(o.seqFromLog, db.base.PartitionConfig())
				if err != nil {
					break
				}
				o.g = g
			}
			id := pend.baseNext + uint32(len(pend.adds))
			g.Seq.ID = id
			pend.adds = append(pend.adds, g)
			pend.live++
			if firstAdd {
				firstID = id
				firstAdd = false
			}
		case opAppend:
			eff := w.effective(o.id, db.base)
			if eff == nil {
				err = fmt.Errorf("%w: %d", core.ErrUnknownSequence, o.id)
				break
			}
			var ng *core.Segmented
			ng, err = core.AppendToSegmented(eff, o.pts, db.base.PartitionConfig())
			if err != nil {
				break
			}
			ng.Seq.ID = o.id
			if prev, ok := w.overlayIdx[o.id]; ok {
				undo.prevOverlay = append(undo.prevOverlay, overlayUndo{id: o.id, idx: prev, had: true})
			} else {
				undo.prevOverlay = append(undo.prevOverlay, overlayUndo{id: o.id})
			}
			pend.overlays = append(pend.overlays, overlayEntry{id: o.id, g: ng})
			w.overlayIdx[o.id] = len(pend.overlays) - 1
		case opRemove:
			if w.effective(o.id, db.base) == nil {
				err = fmt.Errorf("%w: %d", core.ErrUnknownSequence, o.id)
				break
			}
			pend.removed = append(pend.removed, o.id)
			w.removedSet[o.id] = struct{}{}
			undo.removedIDs = append(undo.removedIDs, o.id)
			pend.live--
		default:
			err = fmt.Errorf("txn: unknown op kind %#x", o.kind)
		}
		if err != nil {
			undo.apply(pend, w)
			return 0, err
		}
	}
	return firstID, nil
}

// reqUndo records what one request changed, so a mid-request failure can
// restore the pending state exactly.
type reqUndo struct {
	adds, overlays, removed int
	live                    int
	prevOverlay             []overlayUndo
	removedIDs              []uint32
}

// overlayUndo remembers the mirror-map slot an overlay displaced.
type overlayUndo struct {
	id  uint32
	idx int
	had bool
}

// apply rolls pend and the mirror maps back to the recorded marks.
func (u *reqUndo) apply(pend *state, w *workState) {
	pend.adds = pend.adds[:u.adds]
	pend.overlays = pend.overlays[:u.overlays]
	pend.removed = pend.removed[:u.removed]
	pend.live = u.live
	for i := len(u.prevOverlay) - 1; i >= 0; i-- {
		p := u.prevOverlay[i]
		if p.had {
			w.overlayIdx[p.id] = p.idx
		} else {
			delete(w.overlayIdx, p.id)
		}
	}
	for _, id := range u.removedIDs {
		delete(w.removedSet, id)
	}
}

// handleRebase atomically switches the published state to post-fold
// coordinates: the folded delta prefix is dropped (the base now serves
// it), the WAL tail is compacted, and the checkpoint LSN advances. Runs
// in the committer so no commit interleaves with the switch.
func (db *DB) handleRebase(req *commitReq) {
	rb := req.rebase
	cur := db.cur.Load()
	ns := &state{
		epoch:    cur.epoch + 1,
		lastLSN:  cur.lastLSN,
		baseNext: rb.newBaseNext,
		live:     cur.live,
		adds:     append([]*core.Segmented(nil), cur.adds[rb.cutAdds:]...),
		overlays: append([]overlayEntry(nil), cur.overlays[rb.cutOverlays:]...),
		removed:  append([]uint32(nil), cur.removed[rb.cutRemoved:]...),
	}
	db.cur.Store(ns)
	db.work.reset(ns)

	keep := db.tailRecs[:0:0]
	for _, r := range db.tailRecs {
		if r.lsn > rb.cutLSN {
			keep = append(keep, r)
		}
	}
	db.tailRecs = keep
	db.ckptLSN.Store(rb.cutLSN)
	db.tailLen = int(db.nextLSN - 1 - rb.cutLSN)
	if db.tailLen == 0 {
		db.stats.tailSince.Store(0)
	}
	// (A non-empty surviving tail began before this fold; its age
	// carries over.)

	var err error
	if db.log != nil {
		payloads := make([][]byte, len(keep))
		for i, r := range keep {
			payloads[i] = r.payload
		}
		// A failed rewrite is not fatal: the snapshot is already
		// promoted, so recovery skips the folded records by LSN; the log
		// just stays fat until the next checkpoint compacts it.
		err = db.log.Rewrite(payloads)
	}
	req.resp <- commitRes{err: err, tail: keep}
}

// rebaseReq tells the committer where a completed fold cut the delta.
type rebaseReq struct {
	cutAdds     int
	cutOverlays int
	cutRemoved  int
	cutLSN      uint64
	newBaseNext uint32
}
