package txn

import (
	"context"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Metric queries over a snapshot: the indexed base answer merged with a
// linear exact-distance scan of the delta, using the same evaluation
// kernel (core.EvalMetric) as the indexed metric path — so the merged
// result is identical to a fully indexed database holding the
// snapshot's content, under D and DTW alike.

// SearchMetricCtx runs the exact-metric range search against the
// snapshot.
func (s *Snap) SearchMetricCtx(ctx context.Context, q *core.Sequence, eps float64, m core.Metric) ([]core.MetricMatch, core.SearchStats, error) {
	matches, stats, err := s.db.base.SearchMetricCtx(ctx, q, eps, m)
	if err != nil {
		return nil, stats, err
	}
	if s.st.deltaLen() == 0 {
		return matches, stats, nil
	}
	delta, err := s.deltaMetricRange(ctx, q, eps, m, &stats)
	if err != nil {
		return nil, stats, err
	}
	merged := mergeMetricMatches(matches, s.view(), delta)
	s.fixupStats(&stats, len(merged))
	return merged, stats, nil
}

// SearchMetric is SearchMetricCtx without a deadline.
func (s *Snap) SearchMetric(q *core.Sequence, eps float64, m core.Metric) ([]core.MetricMatch, core.SearchStats, error) {
	return s.SearchMetricCtx(context.Background(), q, eps, m)
}

// deltaMetricRange evaluates the exact metric distance over the
// snapshot's delta sequences. No lower-bound pruning: the delta is
// bounded by the checkpoint cadence, so exhaustive exact evaluation
// keeps it trivially identical to the scan baseline.
func (s *Snap) deltaMetricRange(ctx context.Context, q *core.Sequence, eps float64, m core.Metric, st *core.SearchStats) ([]core.MetricMatch, error) {
	v := s.view()
	if len(v.delta) == 0 {
		return nil, nil
	}
	t0 := time.Now()
	qseg, err := s.qseg(q)
	if err != nil {
		return nil, err
	}
	_, isDTW := m.(core.MetricDTW)
	var out []core.MetricMatch
	for i, d := range v.delta {
		if i&31 == 0 {
			if err := searchCanceled(ctx); err != nil {
				return nil, err
			}
		}
		dist := core.EvalMetric(qseg, d.g, m)
		st.CandidatesDmbr++
		if isDTW {
			st.DTWEvals++
		}
		if dist <= eps {
			out = append(out, core.MetricMatch{SeqID: d.id, Seq: d.g.Seq, Dist: dist})
		}
	}
	dur := time.Since(t0)
	st.Phase3 += dur
	st.CPUTime += dur
	if tr := obs.FromContext(ctx); tr != nil {
		tr.RecordSpan(obs.SpanFromContext(ctx), "delta-scan", dur,
			obs.Int64("snapshot_epoch", int64(s.st.epoch)),
			obs.Int("delta_len", s.st.deltaLen()),
			obs.Int("matches", len(out)))
	}
	return out, nil
}

// mergeMetricMatches merges two id-ascending metric match lists,
// dropping base entries the view supersedes.
func mergeMetricMatches(base []core.MetricMatch, v *view, delta []core.MetricMatch) []core.MetricMatch {
	out := make([]core.MetricMatch, 0, len(base)+len(delta))
	i, j := 0, 0
	for i < len(base) || j < len(delta) {
		if i < len(base) && v.dropBase(base[i].SeqID) {
			i++
			continue
		}
		switch {
		case i >= len(base):
			out = append(out, delta[j])
			j++
		case j >= len(delta) || base[i].SeqID < delta[j].SeqID:
			out = append(out, base[i])
			i++
		default:
			out = append(out, delta[j])
			j++
		}
	}
	return out
}

// SearchKNNMetricBoundedCtx returns the k nearest sequences under the
// metric with distance ≤ bound, against the snapshot — the same
// inflated-k' merge as SearchKNNBoundedCtx, with delta candidates
// scored by the exact metric distance.
func (s *Snap) SearchKNNMetricBoundedCtx(ctx context.Context, q *core.Sequence, k int, bound float64, m core.Metric) ([]core.KNNResult, error) {
	if s.st.deltaLen() == 0 {
		return s.db.base.SearchKNNMetricBoundedCtx(ctx, q, k, bound, m)
	}
	v := s.view()
	kPrime := k + len(s.st.adds) + len(v.overlay) + len(s.st.removed)
	base, err := s.db.base.SearchKNNMetricBoundedCtx(ctx, q, kPrime, bound, m)
	if err != nil {
		return nil, err
	}
	out := make([]core.KNNResult, 0, k)
	for _, r := range base {
		if v.dropBase(r.SeqID) {
			continue
		}
		out = insertKNNResult(out, r, k)
	}
	if len(v.delta) > 0 {
		qseg, err := s.qseg(q)
		if err != nil {
			return nil, err
		}
		for i, d := range v.delta {
			if i&31 == 0 {
				if err := searchCanceled(ctx); err != nil {
					return nil, err
				}
			}
			dist := core.EvalMetric(qseg, d.g, m)
			if dist > bound || math.IsInf(dist, 1) {
				continue
			}
			out = insertKNNResult(out, core.KNNResult{SeqID: d.id, Seq: d.g.Seq, Dist: dist}, k)
		}
	}
	return out, nil
}

// SequentialSearchMetric is the exhaustive exact-metric baseline over
// the snapshot's corpus.
func (s *Snap) SequentialSearchMetric(q *core.Sequence, eps float64, m core.Metric) ([]core.MetricMatch, error) {
	base, err := s.db.base.SequentialSearchMetric(q, eps, m)
	if err != nil {
		return nil, err
	}
	if s.st.deltaLen() == 0 {
		return base, nil
	}
	v := s.view()
	qseg, err := s.qseg(q)
	if err != nil {
		return nil, err
	}
	var delta []core.MetricMatch
	for _, d := range v.delta {
		dist := core.EvalMetric(qseg, d.g, m)
		if dist <= eps {
			delta = append(delta, core.MetricMatch{SeqID: d.id, Seq: d.g.Seq, Dist: dist})
		}
	}
	return mergeMetricMatches(base, v, delta), nil
}

// SearchMetric runs the exact-metric range search on a fresh snapshot.
func (db *DB) SearchMetric(q *core.Sequence, eps float64, m core.Metric) ([]core.MetricMatch, core.SearchStats, error) {
	return db.SearchMetricCtx(context.Background(), q, eps, m)
}

// SearchMetricCtx runs the exact-metric range search on a fresh
// snapshot, honoring ctx.
func (db *DB) SearchMetricCtx(ctx context.Context, q *core.Sequence, eps float64, m core.Metric) ([]core.MetricMatch, core.SearchStats, error) {
	s := db.Acquire()
	defer s.Release()
	return s.SearchMetricCtx(ctx, q, eps, m)
}

// SearchKNNMetric returns the metric k nearest on a fresh snapshot.
func (db *DB) SearchKNNMetric(q *core.Sequence, k int, m core.Metric) ([]core.KNNResult, error) {
	return db.SearchKNNMetricCtx(context.Background(), q, k, m)
}

// SearchKNNMetricCtx returns the metric k nearest on a fresh snapshot,
// honoring ctx.
func (db *DB) SearchKNNMetricCtx(ctx context.Context, q *core.Sequence, k int, m core.Metric) ([]core.KNNResult, error) {
	s := db.Acquire()
	defer s.Release()
	return s.SearchKNNMetricBoundedCtx(ctx, q, k, inf(), m)
}

// SearchKNNMetricBoundedCtx is the bounded metric k-nearest query on a
// fresh snapshot.
func (db *DB) SearchKNNMetricBoundedCtx(ctx context.Context, q *core.Sequence, k int, bound float64, m core.Metric) ([]core.KNNResult, error) {
	s := db.Acquire()
	defer s.Release()
	return s.SearchKNNMetricBoundedCtx(ctx, q, k, bound, m)
}

// SequentialSearchMetric is the exhaustive exact-metric baseline on a
// fresh snapshot.
func (db *DB) SequentialSearchMetric(q *core.Sequence, eps float64, m core.Metric) ([]core.MetricMatch, error) {
	s := db.Acquire()
	defer s.Release()
	return s.SequentialSearchMetric(q, eps, m)
}
