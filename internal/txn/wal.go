package txn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
)

// WAL record payload format (the payload of one pager.Log record; the
// log frames it with a length prefix and CRC):
//
//	lsn   u64
//	nops  u32
//	nops × op:
//	  'A'  labelLen u16, label bytes, npts u32, npts × dim × f64
//	  'P'  id u32, npts u32, npts × dim × f64
//	  'R'  id u32
//
// One record is one commit: the log's CRC makes it all-or-nothing, so a
// multi-op transaction is torn-write-proof by construction. Point
// dimensionality is not stored per record — it is a database constant
// recorded in the base snapshot metadata.

// ErrBadRecord indicates a WAL record that passed the log's CRC but does
// not decode — a foreign or version-skewed file.
var ErrBadRecord = errors.New("txn: bad WAL record")

// Format limits. The commit path enforces maxRecOps and maxLabelLen
// before applying a request (see applyReq/partitionFor), so every
// acknowledged commit encodes into a decodable record; the decoder
// re-checks them to guard allocations on corrupt input.
const (
	maxRecOps    = 1 << 20    // ops per commit record
	maxLabelLen  = 1<<16 - 1  // label bytes (stored as u16)
	maxRecPoints = 1 << 28
)

// recordSize computes the encoded payload size of a commit, so the
// committer can reject a record the log would refuse (pager.MaxLogRecord)
// before applying any of its ops. Requires every opAdd to carry a
// partitioned sequence (true on the commit path; replay never re-encodes).
func recordSize(ops []op, dim int) int {
	n := 8 + 4
	for _, o := range ops {
		switch o.kind {
		case opAdd:
			n += 1 + 2 + len(o.g.Seq.Label) + 4 + o.g.Seq.Len()*dim*8
		case opAppend:
			n += 1 + 4 + 4 + len(o.pts)*dim*8
		case opRemove:
			n += 1 + 4
		}
	}
	return n
}

// encodeRecord serializes one commit's ops under the given LSN.
func encodeRecord(lsn uint64, ops []op, dim int) []byte {
	buf := make([]byte, 0, recordSize(ops, dim))
	buf = binary.LittleEndian.AppendUint64(buf, lsn)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ops)))
	for _, o := range ops {
		buf = append(buf, o.kind)
		switch o.kind {
		case opAdd:
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(o.g.Seq.Label)))
			buf = append(buf, o.g.Seq.Label...)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(o.g.Seq.Len()))
			buf = appendPoints(buf, o.g.Seq.Points)
		case opAppend:
			buf = binary.LittleEndian.AppendUint32(buf, o.id)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(o.pts)))
			buf = appendPoints(buf, o.pts)
		case opRemove:
			buf = binary.LittleEndian.AppendUint32(buf, o.id)
		}
	}
	return buf
}

// appendPoints serializes points as packed little-endian float64s.
func appendPoints(buf []byte, pts []geom.Point) []byte {
	for _, p := range pts {
		for _, v := range p {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf
}

// decodeRecord parses a record payload back into its LSN and ops. Adds
// come back unpartitioned (g == nil, seq set in pts/label form via a
// rebuilt core.Sequence); the caller partitions them.
func decodeRecord(payload []byte, dim int) (lsn uint64, ops []op, err error) {
	r := recReader{buf: payload}
	lsn = r.u64()
	nops := int(r.u32())
	if r.err != nil || nops > maxRecOps {
		return 0, nil, ErrBadRecord
	}
	ops = make([]op, 0, nops)
	for i := 0; i < nops; i++ {
		kind := r.u8()
		switch kind {
		case opAdd:
			label := string(r.bytes(int(r.u16())))
			npts := int(r.u32())
			pts := r.points(npts, dim)
			if r.err != nil {
				return 0, nil, r.err
			}
			s, serr := core.NewSequence(label, pts)
			if serr != nil {
				return 0, nil, fmt.Errorf("%w: %v", ErrBadRecord, serr)
			}
			ops = append(ops, op{kind: opAdd, seqFromLog: s})
		case opAppend:
			id := r.u32()
			npts := int(r.u32())
			pts := r.points(npts, dim)
			if r.err != nil {
				return 0, nil, r.err
			}
			ops = append(ops, op{kind: opAppend, id: id, pts: pts})
		case opRemove:
			ops = append(ops, op{kind: opRemove, id: r.u32()})
		default:
			return 0, nil, fmt.Errorf("%w: op kind %#x", ErrBadRecord, kind)
		}
	}
	if r.err != nil || len(r.buf) != r.off {
		return 0, nil, ErrBadRecord
	}
	return lsn, ops, nil
}

// recReader is a bounds-checked little-endian cursor over a payload.
type recReader struct {
	buf []byte
	off int
	err error
}

func (r *recReader) take(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.err = ErrBadRecord
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *recReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *recReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *recReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *recReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *recReader) bytes(n int) []byte { return r.take(n) }

func (r *recReader) points(n, dim int) []geom.Point {
	if n > maxRecPoints || n*dim > maxRecPoints {
		r.err = ErrBadRecord
		return nil
	}
	raw := r.take(n * dim * 8)
	if raw == nil {
		return nil
	}
	flat := make([]float64, n*dim)
	for i := range flat {
		flat[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point(flat[i*dim : (i+1)*dim])
	}
	return pts
}
