package txn

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/obs"
)

// Snap is a pinned MVCC read snapshot: an immutable view of the corpus
// as of one commit. All its query methods answer from exactly that
// version no matter how many commits land meanwhile, and none of them
// takes a lock a writer ever holds — readers never block on writers.
// Release it when done: a pinned snapshot delays the next checkpoint's
// fold (commits themselves are never delayed). A Snap is safe for
// concurrent use.
type Snap struct {
	db       *DB
	st       *state
	slot     uint32
	released atomic.Bool
	once     sync.Once
	v        *view
}

// Acquire pins a read snapshot at the current commit. The pin is a pair
// of atomic ops — no lock is shared with the commit path.
func (db *DB) Acquire() *Snap {
	for {
		gen := db.pinGen.Load()
		db.pins[gen&1].Add(1)
		if db.pinGen.Load() == gen {
			n := db.stats.snapshots.Add(1)
			if m := db.met.Load(); m != nil {
				m.pinned.Set(float64(n))
			}
			return &Snap{db: db, st: db.cur.Load(), slot: uint32(gen & 1)}
		}
		// A checkpoint moved generations between our load and pin;
		// back out and pin the new generation.
		db.pins[gen&1].Add(-1)
	}
}

// Release unpins the snapshot. Idempotent.
func (s *Snap) Release() {
	if s.released.CompareAndSwap(false, true) {
		n := s.db.stats.snapshots.Add(-1)
		s.db.pins[s.slot].Add(-1)
		if m := s.db.met.Load(); m != nil {
			m.pinned.Set(float64(n))
		}
	}
}

// Epoch returns the commit version the snapshot is pinned to.
func (s *Snap) Epoch() uint64 { return s.st.epoch }

// view lazily resolves the pinned state's delta into lookup form, once
// per snapshot.
func (s *Snap) view() *view {
	s.once.Do(func() { s.v = buildView(s.st) })
	return s.v
}

// qseg partitions the query with the database's configuration — the
// same partitioning the indexed search computes, so delta-side kernels
// see identical query MBRs.
func (s *Snap) qseg(q *core.Sequence) (*core.Segmented, error) {
	return core.NewSegmented(q, s.db.base.PartitionConfig())
}

// dmbrQualifies is the linear-scan form of phase 2: a delta sequence
// stays a candidate only if some (query MBR, data MBR) pair is within
// eps. Dmbr lower-bounds Dnorm (Lemma 2), so skipping a non-qualifying
// sequence cannot change results — phase 3 would have reported
// hit=false for it — and the squared-space comparison matches the
// indexed path's kernel (MinDistSq vs eps²) bit for bit.
func dmbrQualifies(qseg *core.Segmented, g *core.Segmented, epsSq float64) bool {
	for _, qm := range qseg.MBRs {
		for _, gm := range g.MBRs {
			if qm.Rect.MinDistSq(gm.Rect) <= epsSq {
				return true
			}
		}
	}
	return false
}

// deltaRange evaluates the range predicate over the snapshot's delta
// sequences: the phase-2 Dmbr prune over each sequence's MBRs, then the
// indexed path's phase-3 kernel for the survivors. Results come back
// in ascending id order.
func (s *Snap) deltaRange(ctx context.Context, q *core.Sequence, eps float64, st *core.SearchStats) ([]core.Match, error) {
	v := s.view()
	if len(v.delta) == 0 {
		return nil, nil
	}
	t0 := time.Now()
	qseg, err := s.qseg(q)
	if err != nil {
		return nil, err
	}
	epsSq := eps * eps
	var out []core.Match
	for i, d := range v.delta {
		if i&31 == 0 {
			if err := searchCanceled(ctx); err != nil {
				return nil, err
			}
		}
		if !dmbrQualifies(qseg, d.g, epsSq) {
			continue
		}
		m, hit, evals := core.EvalRange(qseg, d.g, eps)
		st.DnormEvals += evals
		st.CandidatesDmbr++
		if hit {
			m.SeqID = d.id
			out = append(out, m)
		}
	}
	d := time.Since(t0)
	st.Phase3 += d
	st.CPUTime += d
	if tr := obs.FromContext(ctx); tr != nil {
		tr.RecordSpan(obs.SpanFromContext(ctx), "delta-scan", d,
			obs.Int64("snapshot_epoch", int64(s.st.epoch)),
			obs.Int("delta_len", s.st.deltaLen()),
			obs.Int("matches", len(out)))
	}
	return out, nil
}

// mergeMatches merges two id-ascending match lists, dropping base
// entries the view supersedes.
func mergeMatches(base []core.Match, v *view, delta []core.Match) []core.Match {
	out := make([]core.Match, 0, len(base)+len(delta))
	i, j := 0, 0
	for i < len(base) || j < len(delta) {
		if i < len(base) && v.dropBase(base[i].SeqID) {
			i++
			continue
		}
		switch {
		case i >= len(base):
			out = append(out, delta[j])
			j++
		case j >= len(delta) || base[i].SeqID < delta[j].SeqID:
			out = append(out, base[i])
			i++
		default:
			out = append(out, delta[j])
			j++
		}
	}
	return out
}

// fixupStats rewrites the base search's corpus-level counters to the
// snapshot's view: sequence totals and match counts, with the delta
// scan's work already accumulated by deltaRange.
func (s *Snap) fixupStats(st *core.SearchStats, matches int) {
	st.TotalSequences = s.st.live
	st.MatchesDnorm = matches
	st.CacheHit = false
}

// SearchCtx runs the three-phase range search against the snapshot:
// indexed base result, filtered by the delta, merged with a linear
// delta scan using the same evaluation kernels — identical output to a
// fully indexed database holding this snapshot's content.
func (s *Snap) SearchCtx(ctx context.Context, q *core.Sequence, eps float64) ([]core.Match, core.SearchStats, error) {
	matches, stats, err := s.db.base.SearchCtx(ctx, q, eps)
	if err != nil {
		return nil, stats, err
	}
	if s.st.deltaLen() == 0 {
		return matches, stats, nil
	}
	delta, err := s.deltaRange(ctx, q, eps, &stats)
	if err != nil {
		return nil, stats, err
	}
	merged := mergeMatches(matches, s.view(), delta)
	s.fixupStats(&stats, len(merged))
	return merged, stats, nil
}

// Search is SearchCtx without a deadline.
func (s *Snap) Search(q *core.Sequence, eps float64) ([]core.Match, core.SearchStats, error) {
	return s.SearchCtx(context.Background(), q, eps)
}

// SearchParallelCtx is SearchCtx with the base's phase 3 refined by
// that many workers (the delta scan stays serial — it is bounded by the
// checkpoint cadence, not the corpus).
func (s *Snap) SearchParallelCtx(ctx context.Context, q *core.Sequence, eps float64, workers int) ([]core.Match, core.SearchStats, error) {
	matches, stats, err := s.db.base.SearchParallelCtx(ctx, q, eps, workers)
	if err != nil {
		return nil, stats, err
	}
	if s.st.deltaLen() == 0 {
		return matches, stats, nil
	}
	delta, err := s.deltaRange(ctx, q, eps, &stats)
	if err != nil {
		return nil, stats, err
	}
	merged := mergeMatches(matches, s.view(), delta)
	s.fixupStats(&stats, len(merged))
	return merged, stats, nil
}

// SearchBatchCtx answers several range queries in one pass over the
// snapshot, one result set and stats value per query, in input order.
func (s *Snap) SearchBatchCtx(ctx context.Context, qs []*core.Sequence, eps float64) ([][]core.Match, []core.SearchStats, error) {
	matches, stats, err := s.db.base.SearchBatchCtx(ctx, qs, eps)
	if err != nil {
		return nil, stats, err
	}
	if s.st.deltaLen() == 0 {
		return matches, stats, nil
	}
	for i := range qs {
		delta, err := s.deltaRange(ctx, qs[i], eps, &stats[i])
		if err != nil {
			return nil, stats, err
		}
		matches[i] = mergeMatches(matches[i], s.view(), delta)
		s.fixupStats(&stats[i], len(matches[i]))
	}
	return matches, stats, nil
}

// SearchKNNBoundedCtx returns the k nearest sequences with D ≤ bound.
// The base index answers an inflated k' (covering every base result the
// delta might supersede), the delta contributes exact distances via the
// same alignment kernel, and the merge keeps the true top k.
func (s *Snap) SearchKNNBoundedCtx(ctx context.Context, q *core.Sequence, k int, bound float64) ([]core.KNNResult, error) {
	if s.st.deltaLen() == 0 {
		return s.db.base.SearchKNNBoundedCtx(ctx, q, k, bound)
	}
	v := s.view()
	kPrime := k + len(s.st.adds) + len(v.overlay) + len(s.st.removed)
	base, err := s.db.base.SearchKNNBoundedCtx(ctx, q, kPrime, bound)
	if err != nil {
		return nil, err
	}
	out := make([]core.KNNResult, 0, k)
	for _, r := range base {
		if v.dropBase(r.SeqID) {
			continue
		}
		out = insertKNNResult(out, r, k)
	}
	if len(v.delta) > 0 {
		qseg, err := s.qseg(q)
		if err != nil {
			return nil, err
		}
		for i, d := range v.delta {
			if i&31 == 0 {
				if err := searchCanceled(ctx); err != nil {
					return nil, err
				}
			}
			off, dist := core.EvalAlign(qseg, d.g)
			if dist > bound {
				continue
			}
			out = insertKNNResult(out, core.KNNResult{SeqID: d.id, Seq: d.g.Seq, Dist: dist, Offset: off}, k)
		}
	}
	return out, nil
}

// insertKNNResult mirrors the indexed path's top-k insertion (stable on
// ties), keeping at most k results ordered by distance.
func insertKNNResult(rs []core.KNNResult, r core.KNNResult, k int) []core.KNNResult {
	pos := len(rs)
	for pos > 0 && rs[pos-1].Dist > r.Dist {
		pos--
	}
	rs = append(rs, core.KNNResult{})
	copy(rs[pos+1:], rs[pos:])
	rs[pos] = r
	if len(rs) > k {
		rs = rs[:k]
	}
	return rs
}

// SequentialSearch is the exact linear-scan baseline over the
// snapshot's corpus.
func (s *Snap) SequentialSearch(q *core.Sequence, eps float64) ([]core.ScanResult, error) {
	base, err := s.db.base.SequentialSearch(q, eps)
	if err != nil {
		return nil, err
	}
	if s.st.deltaLen() == 0 {
		return base, nil
	}
	v := s.view()
	var delta []core.ScanResult
	for _, d := range v.delta {
		sq := d.g.Seq
		profile := core.OffsetProfile(q.Points, sq.Points)
		dist := core.MinOfProfile(profile)
		if dist > eps {
			continue
		}
		queryLonger := len(q.Points) > len(sq.Points)
		k := len(q.Points)
		if queryLonger {
			k = len(sq.Points)
		}
		si := core.SolutionIntervalFromProfile(profile, k, len(sq.Points), queryLonger, eps)
		delta = append(delta, core.ScanResult{SeqID: d.id, Seq: sq, Dist: dist, Interval: si})
	}
	out := make([]core.ScanResult, 0, len(base)+len(delta))
	i, j := 0, 0
	for i < len(base) || j < len(delta) {
		if i < len(base) && v.dropBase(base[i].SeqID) {
			i++
			continue
		}
		switch {
		case i >= len(base):
			out = append(out, delta[j])
			j++
		case j >= len(delta) || base[i].SeqID < delta[j].SeqID:
			out = append(out, base[i])
			i++
		default:
			out = append(out, delta[j])
			j++
		}
	}
	return out, nil
}

// Segmented returns the snapshot's visible version of a sequence, or
// nil.
func (s *Snap) Segmented(id uint32) *core.Segmented {
	v := s.view()
	if s.st.deltaLen() == 0 {
		if id >= s.st.baseNext {
			return nil
		}
		return s.db.base.Segmented(id)
	}
	return v.effective(id, s.db.base)
}

// Len reports the number of sequences visible in the snapshot.
func (s *Snap) Len() int { return s.st.live }

// Sequences lists the snapshot's visible sequences in id order.
func (s *Snap) Sequences() []*core.Sequence {
	base := s.db.base.Sequences()
	if s.st.deltaLen() == 0 {
		return base
	}
	v := s.view()
	out := make([]*core.Sequence, 0, s.st.live)
	j := 0
	for _, sq := range base {
		if v.dropBase(sq.ID) {
			continue
		}
		for j < len(v.delta) && v.delta[j].id < sq.ID {
			out = append(out, v.delta[j].g.Seq)
			j++
		}
		out = append(out, sq)
	}
	for ; j < len(v.delta); j++ {
		out = append(out, v.delta[j].g.Seq)
	}
	return out
}

// --- DB-level read methods (ephemeral snapshot per call) ----------------
//
// These complete the shard.DB surface: each pins a snapshot, answers,
// and releases, so the serving layers get MVCC semantics without
// managing snapshot lifetimes. Handlers that want one consistent view
// across several calls use Acquire/Release directly.

// Search runs a range search on a fresh snapshot.
func (db *DB) Search(q *core.Sequence, eps float64) ([]core.Match, core.SearchStats, error) {
	return db.SearchCtx(context.Background(), q, eps)
}

// SearchCtx runs a range search on a fresh snapshot, honoring ctx.
func (db *DB) SearchCtx(ctx context.Context, q *core.Sequence, eps float64) ([]core.Match, core.SearchStats, error) {
	s := db.Acquire()
	defer s.Release()
	return s.SearchCtx(ctx, q, eps)
}

// SearchParallel is the parallel range search on a fresh snapshot.
func (db *DB) SearchParallel(q *core.Sequence, eps float64, workers int) ([]core.Match, core.SearchStats, error) {
	return db.SearchParallelCtx(context.Background(), q, eps, workers)
}

// SearchParallelCtx is the parallel range search on a fresh snapshot,
// honoring ctx.
func (db *DB) SearchParallelCtx(ctx context.Context, q *core.Sequence, eps float64, workers int) ([]core.Match, core.SearchStats, error) {
	s := db.Acquire()
	defer s.Release()
	return s.SearchParallelCtx(ctx, q, eps, workers)
}

// SearchBatch answers several range queries against one snapshot.
func (db *DB) SearchBatch(qs []*core.Sequence, eps float64) ([][]core.Match, []core.SearchStats, error) {
	return db.SearchBatchCtx(context.Background(), qs, eps)
}

// SearchBatchCtx answers several range queries against one snapshot,
// honoring ctx.
func (db *DB) SearchBatchCtx(ctx context.Context, qs []*core.Sequence, eps float64) ([][]core.Match, []core.SearchStats, error) {
	s := db.Acquire()
	defer s.Release()
	return s.SearchBatchCtx(ctx, qs, eps)
}

// SearchKNN returns the k nearest sequences on a fresh snapshot.
func (db *DB) SearchKNN(q *core.Sequence, k int) ([]core.KNNResult, error) {
	return db.SearchKNNCtx(context.Background(), q, k)
}

// SearchKNNCtx returns the k nearest sequences on a fresh snapshot,
// honoring ctx.
func (db *DB) SearchKNNCtx(ctx context.Context, q *core.Sequence, k int) ([]core.KNNResult, error) {
	s := db.Acquire()
	defer s.Release()
	return s.SearchKNNBoundedCtx(ctx, q, k, inf())
}

// SearchKNNBoundedCtx is the bounded k-nearest query on a fresh
// snapshot.
func (db *DB) SearchKNNBoundedCtx(ctx context.Context, q *core.Sequence, k int, bound float64) ([]core.KNNResult, error) {
	s := db.Acquire()
	defer s.Release()
	return s.SearchKNNBoundedCtx(ctx, q, k, bound)
}

// SequentialSearch is the exact linear-scan baseline on a fresh
// snapshot.
func (db *DB) SequentialSearch(q *core.Sequence, eps float64) ([]core.ScanResult, error) {
	s := db.Acquire()
	defer s.Release()
	return s.SequentialSearch(q, eps)
}

// Explain records every pruning decision a search makes. The index only
// covers the base, so Explain first folds the delta (a checkpoint) and
// then explains against the fully indexed corpus.
func (db *DB) Explain(q *core.Sequence, eps float64) (*core.Explanation, error) {
	if db.cur.Load().deltaLen() > 0 {
		if err := db.Checkpoint(); err != nil {
			return nil, err
		}
	}
	return db.base.Explain(q, eps)
}

// Segmented returns the currently visible version of a sequence, or
// nil.
func (db *DB) Segmented(id uint32) *core.Segmented {
	s := db.Acquire()
	defer s.Release()
	return s.Segmented(id)
}

// Sequences lists every visible sequence in id order.
func (db *DB) Sequences() []*core.Sequence {
	s := db.Acquire()
	defer s.Release()
	return s.Sequences()
}

// Len reports the number of visible sequences.
func (db *DB) Len() int { return db.cur.Load().live }

// NumMBRs reports the indexed-plus-delta MBR count of the visible
// corpus: base MBRs, minus entries belonging to removed or superseded
// base sequences, plus the delta versions'.
func (db *DB) NumMBRs() int {
	s := db.Acquire()
	defer s.Release()
	n := db.base.NumMBRs()
	if s.st.deltaLen() == 0 {
		return n
	}
	v := s.view()
	for _, d := range v.delta {
		n += len(d.g.MBRs)
		if d.id < s.st.baseNext {
			if bg := db.base.Segmented(d.id); bg != nil {
				n -= len(bg.MBRs)
			}
		}
	}
	for id := range v.removed {
		if id < s.st.baseNext {
			if bg := db.base.Segmented(id); bg != nil {
				n -= len(bg.MBRs)
			}
		}
	}
	return n
}

// IndexHeight reports the base R*-tree height.
func (db *DB) IndexHeight() int { return db.base.IndexHeight() }

// IndexFanout reports the base R*-tree node capacity.
func (db *DB) IndexFanout() int { return db.base.IndexFanout() }

// Shards reports 1: the transaction layer wraps a single database (a
// sharded deployment wraps one DB per shard).
func (db *DB) Shards() int { return 1 }

// Dim reports the point dimensionality.
func (db *DB) Dim() int { return db.base.Dim() }

// PartitionConfig reports the MCOST segmentation settings in force.
func (db *DB) PartitionConfig() core.PartitionConfig { return db.base.PartitionConfig() }

// CandidatesDmbr runs only phases 1+2 against the current snapshot. The
// delta is not indexed, so its phase 2 is the linear Dmbr prune the
// query path applies (dmbrQualifies) — the returned set is exactly the
// paper's ASmbr over the snapshot's content.
func (db *DB) CandidatesDmbr(q *core.Sequence, eps float64) (map[uint32]bool, error) {
	s := db.Acquire()
	defer s.Release()
	cand, err := db.base.CandidatesDmbr(q, eps)
	if err != nil {
		return nil, err
	}
	if s.st.deltaLen() == 0 {
		return cand, nil
	}
	v := s.view()
	for id := range cand {
		if v.dropBase(id) {
			delete(cand, id)
		}
	}
	qseg, err := s.qseg(q)
	if err != nil {
		return nil, err
	}
	epsSq := eps * eps
	for _, d := range v.delta {
		if dmbrQualifies(qseg, d.g, epsSq) {
			cand[d.id] = true
		}
	}
	return cand, nil
}

// Epoch returns the commit version of the latest published state; it
// changes on every commit, so corpus-version observers above this layer
// see every write.
func (db *DB) Epoch() uint64 { return db.cur.Load().epoch }

// SetCache attaches a query cache to the base database (nil detaches).
// The base only changes at checkpoint folds — commits stream into the
// delta, whose matches are computed fresh on every search — which is the
// point of this layering: base entries stay valid, and keep being
// served, while commits accumulate. A fold replays the delta through the
// base's ordinary write operations, so the cache hears about each folded
// sequence's MBR and (under the default MBR scope) invalidates only the
// entries those regions can affect.
func (db *DB) SetCache(c *cache.Cache) { db.base.SetCache(c) }

// QueryCache returns the attached cache, or nil.
func (db *DB) QueryCache() *cache.Cache { return db.base.QueryCache() }

// inf is the unbounded distance for the unqualified kNN entry point.
func inf() float64 { return math.Inf(1) }
