package txn

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/store"
)

// openFmt opens a durable DB with the given snapshot format and
// quantized-prefilter setting.
func openFmt(t *testing.T, dir string, f store.Format, quant bool) *DB {
	t.Helper()
	db, err := Open(Options{Dir: dir, Dim: 3, NoFsync: true, SnapshotFormat: f, QuantizedMBR: quant})
	if err != nil {
		t.Fatalf("Open(%s, format %d): %v", dir, f, err)
	}
	return db
}

// TestSnapshotFormatsRoundTrip checkpoints a corpus with holes (removed
// ids) under each snapshot format and verifies a reopen — under either
// format setting, with and without the quantized prefilter — restores a
// byte-identical database.
func TestSnapshotFormatsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	seqs := make([]*core.Sequence, 12)
	for i := range seqs {
		seqs[i] = randSeq(rng, 3, 30+rng.Intn(40))
	}
	queries := []*core.Sequence{
		{Points: seqs[3].Points[2:18]},
		{Points: seqs[9].Points[5:25]},
	}

	for _, f := range []store.Format{store.FormatV1, store.FormatV2} {
		dir := t.TempDir()
		db := openFmt(t, dir, f, false)
		ids, err := db.AddAll(seqs)
		if err != nil {
			t.Fatal(err)
		}
		// Punch holes: some removed before the checkpoint (fold as
		// tombstones), so the snapshot id list has gaps.
		for _, victim := range []int{1, 4, 10} {
			if err := db.Remove(ids[victim]); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatalf("format %d: checkpoint: %v", f, err)
		}
		want := fingerprint(t, db, queries, 0.9)
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}

		// The expected payload file must be in the promoted snapshot.
		cur, err := os.ReadFile(filepath.Join(dir, currentFile))
		if err != nil {
			t.Fatal(err)
		}
		snap := filepath.Join(dir, strings.TrimSpace(string(cur)))
		payload := snapSeqFile
		if f == store.FormatV2 {
			payload = snapSegFile
		}
		if _, err := os.Stat(filepath.Join(snap, payload)); err != nil {
			t.Fatalf("format %d: snapshot payload %s missing: %v", f, payload, err)
		}

		// Reopen under every format/quantization setting: the written
		// snapshot decides the read path, the option only future writes.
		for _, reopen := range []store.Format{store.FormatV1, store.FormatV2} {
			for _, quant := range []bool{false, true} {
				db2 := openFmt(t, dir, reopen, quant)
				if got := fingerprint(t, db2, queries, 0.9); got != want {
					t.Fatalf("format %d reopened as %d (quant=%v): fingerprint drifted\nwant %s\ngot  %s",
						f, reopen, quant, want, got)
				}
				if err := db2.Close(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestSnapshotFormatV2NoHolesUsesPackedLeaves is a shape check: a
// checkpoint with no removals reloads through the packed-leaf bulk path
// and still fingerprints identically.
func TestSnapshotFormatV2NoHolesUsesPackedLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	dir := t.TempDir()
	db := openFmt(t, dir, store.FormatV2, false)
	var seqs []*core.Sequence
	for i := 0; i < 9; i++ {
		seqs = append(seqs, randSeq(rng, 3, 40))
	}
	if _, err := db.AddAll(seqs); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	queries := []*core.Sequence{{Points: seqs[2].Points[4:20]}}
	want := fingerprint(t, db, queries, 0.9)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openFmt(t, dir, store.FormatV2, false)
	defer db2.Close()
	if got := fingerprint(t, db2, queries, 0.9); got != want {
		t.Fatalf("fingerprint drifted\nwant %s\ngot  %s", want, got)
	}
}
