package txn

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/pager"
)

// Tests for the commit failure paths: a group whose fsync fails must
// leave the committer exactly as if the group never existed — mirror
// maps, LSN sequence, and published state all rolled back — and commits
// the record format cannot carry must be rejected up front with a clear
// error instead of being acknowledged as undecodable bytes.

// sabotageLog closes the WAL's file handle out from under the database:
// the next append fails, and the cleanup truncate fails too, so the
// group is discarded and the database wedges.
func sabotageLog(t *testing.T, db *DB) {
	t.Helper()
	if err := db.log.Close(); err != nil {
		t.Fatalf("closing log: %v", err)
	}
}

func TestDiscardedAppendResetsMirrorMaps(t *testing.T) {
	db, err := Open(Options{Dir: t.TempDir(), Dim: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	id, err := db.Add(&core.Sequence{Points: []geom.Point{{0, 0}, {1, 1}, {2, 2}}})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	sabotageLog(t, db)
	pts := []geom.Point{{3, 3}}
	if err := db.AppendPoints(id, pts); err == nil {
		t.Fatal("AppendPoints on a broken log succeeded")
	}
	// The discarded group staged an overlay; its overlayIdx entry pointed
	// past the fresh pending state's overlays, so this second op used to
	// panic (index out of range) inside the committer. It must instead be
	// refused by the wedged database.
	if err := db.AppendPoints(id, pts); !errors.Is(err, errWedged) {
		t.Fatalf("AppendPoints after discarded group: %v, want errWedged", err)
	}
}

func TestDiscardedRemoveNotSticky(t *testing.T) {
	db, err := Open(Options{Dir: t.TempDir(), Dim: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	id, err := db.Add(&core.Sequence{Points: []geom.Point{{0, 0}, {1, 1}, {2, 2}}})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	sabotageLog(t, db)
	if err := db.Remove(id); err == nil {
		t.Fatal("Remove on a broken log succeeded")
	}
	// The remove was never committed: the sequence is still live, so the
	// next op on it must fail only because the database is wedged — a
	// leaked removedSet entry would surface as ErrUnknownSequence.
	err = db.AppendPoints(id, []geom.Point{{3, 3}})
	if errors.Is(err, core.ErrUnknownSequence) {
		t.Fatal("discarded remove still hides the sequence")
	}
	if !errors.Is(err, errWedged) {
		t.Fatalf("AppendPoints after discarded remove: %v, want errWedged", err)
	}
}

// TestDiscardedGroupRollsBackLSN drives the committer functions directly
// (no committer goroutine) so the LSN counter is observable: a discarded
// group must return its LSNs, keeping the sequence gap-free for
// handleRebase's tail arithmetic.
func TestDiscardedGroupRollsBackLSN(t *testing.T) {
	base, err := core.NewDatabase(core.Options{Dim: 2})
	if err != nil {
		t.Fatalf("NewDatabase: %v", err)
	}
	defer base.Close()
	db := newDB(base, Options{Dir: t.TempDir(), Dim: 2})
	if err := db.openLog(); err != nil {
		t.Fatalf("openLog: %v", err)
	}

	mkReq := func(ops []op) *commitReq {
		return &commitReq{ops: ops, resp: make(chan commitRes, 1), enq: time.Now()}
	}
	addOp := func() op {
		g, err := core.NewSegmented(&core.Sequence{Points: []geom.Point{{0, 0}, {1, 1}, {2, 2}}}, base.PartitionConfig())
		if err != nil {
			t.Fatalf("NewSegmented: %v", err)
		}
		return op{kind: opAdd, g: g}
	}

	ok := mkReq([]op{addOp()})
	db.processBatch([]*commitReq{ok})
	if res := <-ok.resp; res.err != nil {
		t.Fatalf("seed commit: %v", res.err)
	}
	before := db.nextLSN

	db.log.Close()
	// One request staging all three op kinds: every mirror-map mutation
	// and the request's LSN must be undone when the group is discarded.
	bad := mkReq([]op{addOp(), {kind: opAppend, id: 0, pts: []geom.Point{{3, 3}}}, {kind: opRemove, id: 0}})
	db.processBatch([]*commitReq{bad})
	if res := <-bad.resp; res.err == nil {
		t.Fatal("commit on a closed log succeeded")
	}
	if db.nextLSN != before {
		t.Fatalf("discarded group leaked LSNs: nextLSN %d, want %d", db.nextLSN, before)
	}
	if n := len(db.work.overlayIdx); n != 0 {
		t.Fatalf("discarded group leaked %d overlayIdx entries", n)
	}
	if n := len(db.work.removedSet); n != 0 {
		t.Fatalf("discarded group leaked %d removedSet entries", n)
	}
	if st := db.cur.Load(); st.deltaLen() != 1 {
		t.Fatalf("published delta length %d, want 1 (the seed add)", st.deltaLen())
	}
}

func TestRecordRoundTripManyOps(t *testing.T) {
	ops := make([]op, 70000) // above the old u16 op-count ceiling
	for i := range ops {
		ops[i] = op{kind: opRemove, id: uint32(i)}
	}
	payload := encodeRecord(42, ops, 2)
	lsn, got, err := decodeRecord(payload, 2)
	if err != nil {
		t.Fatalf("decodeRecord: %v", err)
	}
	if lsn != 42 || len(got) != len(ops) {
		t.Fatalf("round trip: lsn=%d nops=%d, want 42/%d", lsn, len(got), len(ops))
	}
	for _, i := range []int{0, 65535, 65536, len(ops) - 1} {
		if got[i].kind != opRemove || got[i].id != uint32(i) {
			t.Fatalf("op %d: kind=%c id=%d", i, got[i].kind, got[i].id)
		}
	}
}

func TestOversizedCommitRejected(t *testing.T) {
	db := newMem(t, 2)
	tx := db.Begin()
	for i := 0; i <= maxRecOps; i++ {
		tx.Remove(uint32(i))
	}
	if _, err := tx.Commit(); err == nil || !strings.Contains(err.Error(), "record limit") {
		t.Fatalf("oversized commit: %v, want op-count rejection", err)
	}
	// The rejection happened before anything was applied: the database
	// keeps working.
	if _, err := db.Add(&core.Sequence{Points: []geom.Point{{0, 0}, {1, 1}}}); err != nil {
		t.Fatalf("Add after rejected commit: %v", err)
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	db, err := Open(Options{Dir: t.TempDir(), Dim: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	id, err := db.Add(&core.Sequence{Points: []geom.Point{{0, 0}, {1, 1}}})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	// Enough points that the encoded record exceeds the log's payload
	// bound; the commit must be refused before it reaches the group, so
	// it neither wedges the database nor fails other commits.
	n := pager.MaxLogRecord/16 + 1
	flat := make([]float64, 2*n)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point(flat[2*i : 2*i+2])
	}
	if err := db.AppendPoints(id, pts); err == nil || !strings.Contains(err.Error(), "WAL record limit") {
		t.Fatalf("oversized record: %v, want size rejection", err)
	}
	if err := db.AppendPoints(id, []geom.Point{{2, 2}}); err != nil {
		t.Fatalf("AppendPoints after rejected record: %v", err)
	}
}

func TestOversizedLabelRejected(t *testing.T) {
	db := newMem(t, 2)
	s := &core.Sequence{
		Label:  strings.Repeat("x", maxLabelLen+1),
		Points: []geom.Point{{0, 0}, {1, 1}},
	}
	if _, err := db.Add(s); err == nil || !strings.Contains(err.Error(), "label") {
		t.Fatalf("oversized label: %v, want label rejection", err)
	}
}
