package txn

// Online-ingest benchmark: reader latency under sustained writes, on
// the two write paths the stack offers. The "locked" path is a plain
// *core.Database — readers and writers contend on the database mutex,
// so every append stalls every concurrent search. The "snapshot" path
// is the same workload through *txn.DB — readers pin an immutable MVCC
// snapshot and never take the write lock, so appends and searches
// proceed independently.
//
// The measured quantity is reader latency (P50/P99) for a fixed query
// stream while writer goroutines append without pause. When
// BENCH_INGEST_OUT is set (CI sets it to BENCH_ingest.json) the test
// writes both paths' numbers as a JSON document.

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
)

const (
	ingestBenchCorpus  = 48
	ingestBenchSeqLen  = 64
	ingestBenchWriters = 2
	// ingestBenchOps is the fixed per-writer write budget. Both paths
	// absorb the identical workload; what differs is how long that takes
	// (writers starve behind the lock on the locked path) and what
	// readers experience meanwhile. A rate pace instead of a budget would
	// make the runs incomparable: the path that starves writers would
	// also end up with a smaller corpus and artificially fast reads.
	ingestBenchOps = 600
	// ingestBenchPace throttles each writer to one operation per tick so
	// the offered load is sustained rather than a burst.
	ingestBenchPace = 300 * time.Microsecond
)

// ingestSearcher is the read/write surface both paths share.
type ingestSearcher interface {
	Add(*core.Sequence) (uint32, error)
	AppendPoints(uint32, []geom.Point) error
	SearchCtx(context.Context, *core.Sequence, float64) ([]core.Match, core.SearchStats, error)
}

// ingestFixture loads the shared corpus and builds the query pool
// (windows of stored sequences, so every query does real phase-3 work).
func ingestFixture(t *testing.T, db ingestSearcher) ([]uint32, []*core.Sequence) {
	t.Helper()
	rng := rand.New(rand.NewSource(71))
	seqs := make([]*core.Sequence, ingestBenchCorpus)
	ids := make([]uint32, ingestBenchCorpus)
	for i := range seqs {
		seqs[i] = randSeq(rng, 3, ingestBenchSeqLen)
		id, err := db.Add(clonePoints(seqs[i]))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	pool := make([]*core.Sequence, 32)
	for i := range pool {
		src := seqs[i%len(seqs)]
		off := (i * 3) % (ingestBenchSeqLen - 24)
		pool[i] = &core.Sequence{Points: src.Points[off : off+24]}
	}
	return ids, pool
}

// runIngestWorkload has each writer land its fixed budget of paced
// operations while the reader queries continuously. It returns the
// latencies of queries issued while writes were in flight, and the wall
// time the path needed to absorb the whole write workload.
func runIngestWorkload(t *testing.T, db ingestSearcher, ids []uint32, pool []*core.Sequence) ([]time.Duration, time.Duration) {
	t.Helper()
	done := make(chan struct{})
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < ingestBenchWriters; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			tick := time.NewTicker(ingestBenchPace)
			defer tick.Stop()
			for n := 0; n < ingestBenchOps; n++ {
				<-tick.C
				if n%4 == 3 {
					if _, err := db.Add(randSeq(rng, 3, 24)); err != nil {
						t.Error(err)
						return
					}
				} else {
					id := ids[rng.Intn(len(ids))]
					if err := db.AppendPoints(id, randSeq(rng, 3, 4).Points); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(int64(w) + 101)
	}
	go func() { wg.Wait(); close(done) }()

	var lat []time.Duration
	ctx := context.Background()
	for i := 0; ; i++ {
		select {
		case <-done:
			return lat, time.Since(t0)
		default:
		}
		q := pool[i%len(pool)]
		q0 := time.Now()
		if _, _, err := db.SearchCtx(ctx, q, 0.25); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		lat = append(lat, time.Since(q0))
	}
}

func percentile(lat []time.Duration, p float64) time.Duration {
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p * float64(len(s)-1))
	return s[idx]
}

// TestIngestReaderLatency measures reader P50/P99 under sustained
// appends on the locked path (plain core.Database) and the snapshot
// path (txn.DB). Both paths must answer every query; the comparison is
// reported, and written as BENCH_ingest.json when BENCH_INGEST_OUT is
// set. No relative-speed assertion is made — CI machines are too noisy
// for that — but the emitted artifact is the acceptance evidence that
// readers keep answering while writers append.
func TestIngestReaderLatency(t *testing.T) {
	type result struct {
		Path       string  `json:"path"`
		Queries    int     `json:"queries"`
		Writes     int     `json:"writes"`
		IngestMs   float64 `json:"ingest_wall_ms"`
		P50Us      float64 `json:"p50_us"`
		P99Us      float64 `json:"p99_us"`
		MaxUs      float64 `json:"max_us"`
		ReaderQPS  float64 `json:"reader_qps"`
		OfferedMs  float64 `json:"offered_ms"`
		WriteStall float64 `json:"write_stall_factor"`
	}
	// offered is the wall time the write workload would take with no
	// contention at all: each writer's ops at its pace, in parallel.
	offered := time.Duration(ingestBenchOps) * ingestBenchPace
	measure := func(name string, db ingestSearcher) result {
		ids, pool := ingestFixture(t, db)
		lat, wall := runIngestWorkload(t, db, ids, pool)
		if len(lat) == 0 {
			t.Fatalf("%s: no queries completed during ingest", name)
		}
		var total time.Duration
		for _, d := range lat {
			total += d
		}
		r := result{
			Path:       name,
			Queries:    len(lat),
			Writes:     ingestBenchWriters * ingestBenchOps,
			IngestMs:   float64(wall) / float64(time.Millisecond),
			P50Us:      float64(percentile(lat, 0.50)) / float64(time.Microsecond),
			P99Us:      float64(percentile(lat, 0.99)) / float64(time.Microsecond),
			MaxUs:      float64(percentile(lat, 1.0)) / float64(time.Microsecond),
			ReaderQPS:  float64(len(lat)) / total.Seconds(),
			OfferedMs:  float64(offered) / float64(time.Millisecond),
			WriteStall: float64(wall) / float64(offered),
		}
		t.Logf("%s: ingest of %d writes took %.0fms (%.1fx offered); readers: %d queries, P50 %.0fµs P99 %.0fµs max %.0fµs, %.0f q/s",
			name, r.Writes, r.IngestMs, r.WriteStall, r.Queries, r.P50Us, r.P99Us, r.MaxUs, r.ReaderQPS)
		return r
	}

	locked, err := core.NewDatabase(core.Options{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer locked.Close()
	rLocked := measure("locked", locked)

	snapBase, err := core.NewDatabase(core.Options{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := Wrap(snapBase, Options{CheckpointEvery: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	rSnap := measure("snapshot", snap)

	if rLocked.Queries == 0 || rSnap.Queries == 0 {
		t.Fatalf("a path answered no queries during ingest (locked=%d snapshot=%d)",
			rLocked.Queries, rSnap.Queries)
	}

	if out := os.Getenv("BENCH_INGEST_OUT"); out != "" {
		doc := map[string]any{
			"name":    "ingest_reader_latency",
			"corpus":  ingestBenchCorpus,
			"seq_len": ingestBenchSeqLen,
			"writers": ingestBenchWriters,
			"results": []result{rLocked, rSnap},
		}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
			t.Fatalf("writing %s: %v", out, err)
		}
		t.Logf("wrote %s", out)
	}
}
