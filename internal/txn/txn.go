// Package txn layers transactions over a core.Database: MVCC snapshot
// reads, WAL-backed group commit, and online ingest.
//
// The design splits the corpus in two. The base is a core.Database —
// R*-tree indexed, query-cached — that is frozen between checkpoints:
// commits never touch it, so readers scan it with an uncontended RLock
// and its epoch-keyed query cache stays warm under sustained ingest. The
// delta is an immutable chain of states, each a copy-on-write extension
// of the previous (appended sequences, replaced versions, removals). A
// reader pins one state and serves every query from base + delta filters
// + a linear delta scan, using the same evaluation kernels as the
// indexed path, so results are identical to a fully indexed database
// holding the same content (phase 2 is pure pruning: Dmbr ≤ Dnorm ≤ D).
//
// A single committer goroutine serializes writes: concurrent commit
// requests are batched within a group-commit window, validated and
// applied to a pending state, encoded into one WAL record each, made
// durable with a single fsync, and only then published and acknowledged
// — an acknowledged commit is on disk. Checkpoints fold the delta into
// the base, persist an id-preserving base snapshot, and compact the WAL
// to the unfolded tail; crash recovery loads the snapshot and replays
// the tail, restoring exactly the acknowledged commits with the same
// sequence ids.
package txn

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/pager"
	"repro/internal/store"
)

// Options configures a transactional database.
type Options struct {
	// Dir is the durability directory: base snapshots, the CURRENT
	// marker, and the write-ahead log live there. Empty means no
	// durability — MVCC and group commit still work, nothing survives a
	// restart.
	Dir string
	// Dim is the dimensionality of all stored sequences. Required unless
	// Dir holds an existing store, whose recorded dimensionality then
	// applies (and must match Dim when both are set).
	Dim int
	// Partition tunes the MCOST segmentation (zero value → paper
	// defaults). Like Dim it must agree with an existing store.
	Partition core.PartitionConfig
	// NoFsync acknowledges commits without waiting for fsync. Commits
	// are still ordered and atomic, but those in the last unsynced
	// window can be lost in a crash. The log is still synced at every
	// checkpoint and on Close.
	NoFsync bool
	// GroupWindow is how long the committer waits, after the first
	// commit of a batch arrives, for more commits to share the fsync.
	// Zero batches only what is already queued (no added latency).
	GroupWindow time.Duration
	// CheckpointEvery folds the delta into the base automatically after
	// that many committed WAL records (0 = checkpoint only on demand).
	// It bounds both recovery replay time and the per-query delta scan.
	CheckpointEvery int
	// SnapshotFormat selects the base-snapshot representation checkpoints
	// write (store.FormatV1 or store.FormatV2; 0 = store.DefaultFormat).
	// Either format is always readable on open regardless of this
	// setting, so it can be changed between restarts.
	SnapshotFormat store.Format
	// QuantizedMBR enables the quantized-MBR phase-3 prefilter on the
	// base database (core.Options.QuantizedMBR). Results are
	// bit-identical either way; the delta scan path is always exact.
	QuantizedMBR bool
}

// DB is a transactional database. It satisfies the same serving surface
// as *core.Database and *shard.ShardedDB (shard.DB), so the layers above
// switch it on with a flag. All methods are safe for concurrent use.
type DB struct {
	base *core.Database
	opts Options
	log  *pager.Log // nil when Dir is empty

	cur atomic.Pointer[state] // latest published state

	// Snapshot pinning: pinGen names the current generation; a snapshot
	// increments pins[pinGen&1]. A checkpoint bumps pinGen and waits for
	// the old generation's pins to drain before mutating the base (see
	// Checkpoint for why draining makes the fold safe).
	pinGen atomic.Uint64
	pins   [2]atomic.Int64

	commitCh chan *commitReq
	ckptKick chan struct{}
	stopCh   chan struct{}
	wg       sync.WaitGroup
	closed   atomic.Bool
	// acceptMu fences commit submission against Close: senders hold the
	// read side across the closed-check + channel send, Close takes the
	// write side before stopping the committer, so every request that
	// enters the channel is drained and answered — an acknowledged
	// commit is never silently dropped at shutdown.
	acceptMu sync.RWMutex

	ckptMu sync.Mutex // serializes Checkpoint; held across fold+persist

	// Committer-owned (only the committer goroutine touches these after
	// Open/Wrap returns): working maps mirroring cur for O(1) effective
	// lookups during validation, the WAL tail retained for compaction,
	// and LSN bookkeeping.
	work     workState
	tailRecs []tailRec // durable mode: unfolded records, for WAL compaction
	tailLen  int       // unfolded record count (both modes), for fold pacing
	nextLSN  uint64
	// ckptLSN is the WAL position folded into the current base snapshot;
	// atomic because Stats reads it outside the committer.
	ckptLSN atomic.Uint64

	// wedged is set when the log reaches an unknowable on-disk state (an
	// append failed and could not be truncated away); further commits
	// are refused to keep replay deterministic.
	wedged atomic.Bool

	stats statsCounters
	met   atomic.Pointer[metrics] // nil until SetMetrics
}

// tailRec is one WAL record not yet folded into a base snapshot, kept in
// memory so checkpoint compaction can rewrite the log without
// re-encoding. Bounded by the checkpoint cadence.
type tailRec struct {
	lsn     uint64
	payload []byte
}

// ErrClosed is returned by operations on a closed database.
var ErrClosed = errors.New("txn: database closed")

// errWedged is returned for commits after an unrecoverable log failure.
var errWedged = errors.New("txn: write-ahead log in unknown state; commits disabled")

// Wrap builds a non-durable transactional layer over an existing base
// database: MVCC snapshots and group commit without a WAL. The caller
// must stop using base directly — all reads and writes go through the
// returned DB.
func Wrap(base *core.Database, opts Options) (*DB, error) {
	if base == nil {
		return nil, errors.New("txn: nil base database")
	}
	if opts.Dir != "" {
		return nil, errors.New("txn: Wrap is non-durable; use Open for a Dir-backed store")
	}
	opts.Dim = base.Dim()
	opts.Partition = base.PartitionConfig()
	db := newDB(base, opts)
	db.start()
	return db, nil
}

// Open opens (or creates) a durable transactional database in
// opts.Dir: the latest base snapshot is loaded, the WAL tail is
// replayed, and every previously acknowledged commit is visible again
// under its original sequence id.
func Open(opts Options) (*DB, error) {
	if opts.Dir == "" {
		return nil, errors.New("txn: Open requires Dir (use Wrap for a non-durable layer)")
	}
	base, ckptLSN, err := loadBase(&opts)
	if err != nil {
		return nil, err
	}
	db := newDB(base, opts)
	db.ckptLSN.Store(ckptLSN)
	db.nextLSN = ckptLSN + 1
	if err := db.openLog(); err != nil {
		base.Close()
		return nil, err
	}
	db.start()
	return db, nil
}

// newDB assembles a DB around base with its initial (empty-delta) state.
func newDB(base *core.Database, opts Options) *DB {
	db := &DB{
		base:     base,
		opts:     opts,
		commitCh: make(chan *commitReq, 64),
		ckptKick: make(chan struct{}, 1),
		stopCh:   make(chan struct{}),
		nextLSN:  1,
	}
	st := &state{
		epoch:    1,
		baseNext: uint32(base.DirLen()),
		live:     base.Len(),
	}
	db.cur.Store(st)
	db.work.reset(st)
	return db
}

// start launches the committer goroutine (and checkpoint pacer).
func (db *DB) start() {
	db.wg.Add(1)
	go func() {
		defer db.wg.Done()
		db.committer()
	}()
	db.wg.Add(1)
	go func() {
		defer db.wg.Done()
		for {
			select {
			case <-db.stopCh:
				return
			case <-db.ckptKick:
				if err := db.Checkpoint(); err != nil {
					db.stats.ckptErrs.Add(1)
				}
			}
		}
	}()
}

// Close stops the committer (letting queued commits finish), syncs the
// log, and closes the base. Acknowledged commits need no checkpoint to
// survive: reopening replays them from the WAL.
func (db *DB) Close() error {
	db.acceptMu.Lock()
	if !db.closed.CompareAndSwap(false, true) {
		db.acceptMu.Unlock()
		return nil
	}
	db.acceptMu.Unlock()
	close(db.stopCh)
	db.wg.Wait()
	var err error
	if db.log != nil {
		if e := db.log.Sync(); e != nil {
			err = e
		}
		if e := db.log.Close(); e != nil && err == nil {
			err = e
		}
	}
	if e := db.base.Close(); e != nil && err == nil {
		err = e
	}
	return err
}

// Flush syncs the WAL and the base's index pages, if file-backed.
func (db *DB) Flush() error {
	if db.log != nil {
		if err := db.log.Sync(); err != nil {
			return err
		}
	}
	return db.base.Flush()
}

// --- write API ----------------------------------------------------------

// Add stores one sequence and returns its id. The write is one commit:
// durable (fsynced, unless NoFsync) before Add returns.
func (db *DB) Add(s *core.Sequence) (uint32, error) {
	return db.AddCtx(context.Background(), s)
}

// AddCtx is Add under a caller context, carried for observability: when
// ctx holds an obs.Trace, the commit is recorded as a span with its op
// count and the WAL group-commit batch size it rode in. The context does
// not cancel a submitted commit — once accepted, a commit is always
// acknowledged (the committer owns durability).
func (db *DB) AddCtx(ctx context.Context, s *core.Sequence) (uint32, error) {
	g, err := db.partitionFor(s)
	if err != nil {
		return 0, err
	}
	res, err := db.commitCtx(ctx, []op{{kind: opAdd, g: g}})
	if err != nil {
		return 0, err
	}
	return res.firstID, nil
}

// AddAll stores a whole batch as one atomic commit: either every
// sequence becomes visible and durable together, or none does. Returned
// ids are dense and in input order.
func (db *DB) AddAll(seqs []*core.Sequence) ([]uint32, error) {
	return db.AddAllCtx(context.Background(), seqs)
}

// AddAllCtx is AddAll under a caller context, carried for observability
// (see AddCtx for the contract).
func (db *DB) AddAllCtx(ctx context.Context, seqs []*core.Sequence) ([]uint32, error) {
	if len(seqs) == 0 {
		return nil, nil
	}
	ops := make([]op, len(seqs))
	for i, s := range seqs {
		g, err := db.partitionFor(s)
		if err != nil {
			return nil, fmt.Errorf("txn: sequence %d: %w", i, err)
		}
		ops[i] = op{kind: opAdd, g: g}
	}
	res, err := db.commitCtx(ctx, ops)
	if err != nil {
		return nil, err
	}
	ids := make([]uint32, len(seqs))
	for i := range ids {
		ids[i] = res.firstID + uint32(i)
	}
	return ids, nil
}

// AppendPoints extends a stored sequence with new points — the online
// ingest path. The extension is committed copy-on-write: pinned
// snapshots keep seeing the previous version.
func (db *DB) AppendPoints(id uint32, pts []geom.Point) error {
	return db.AppendPointsCtx(context.Background(), id, pts)
}

// AppendPointsCtx is AppendPoints under a caller context, carried for
// observability (see AddCtx for the contract).
func (db *DB) AppendPointsCtx(ctx context.Context, id uint32, pts []geom.Point) error {
	if len(pts) == 0 {
		return nil
	}
	dim := db.base.Dim()
	for i, p := range pts {
		if len(p) != dim {
			return fmt.Errorf("txn: appended point %d has dim %d, want %d: %w",
				i, len(p), dim, geom.ErrDimensionMismatch)
		}
	}
	_, err := db.commitCtx(ctx, []op{{kind: opAppend, id: id, pts: pts}})
	return err
}

// Remove deletes the sequence with the given id. The id is never
// reused; pinned snapshots keep seeing the sequence.
func (db *DB) Remove(id uint32) error {
	return db.RemoveCtx(context.Background(), id)
}

// RemoveCtx is Remove under a caller context, carried for observability
// (see AddCtx for the contract).
func (db *DB) RemoveCtx(ctx context.Context, id uint32) error {
	_, err := db.commitCtx(ctx, []op{{kind: opRemove, id: id}})
	return err
}

// partitionFor validates and partitions a sequence for an add, outside
// the committer so the CPU work parallelizes across writers.
func (db *DB) partitionFor(s *core.Sequence) (*core.Segmented, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(s.Label) > maxLabelLen {
		return nil, fmt.Errorf("txn: label of %d bytes exceeds the %d-byte limit", len(s.Label), maxLabelLen)
	}
	if s.Dim() != db.base.Dim() {
		return nil, fmt.Errorf("txn: sequence dim %d, database dim %d: %w",
			s.Dim(), db.base.Dim(), geom.ErrDimensionMismatch)
	}
	return core.NewSegmented(s, db.base.PartitionConfig())
}

// commit submits one atomic batch of ops and waits for the committer's
// acknowledgment (post-fsync when durable).
func (db *DB) commit(ops []op) (commitRes, error) {
	return db.commitCtx(context.Background(), ops)
}

// commitCtx is commit recording an observability span when ctx carries a
// trace: duration enqueue-to-ack, op count, the WAL group size the
// commit was fsynced with, and the outcome. ctx never cancels the
// commit itself.
func (db *DB) commitCtx(ctx context.Context, ops []op) (commitRes, error) {
	tr := obs.FromContext(ctx)
	t0 := time.Now()
	req := &commitReq{ops: ops, resp: make(chan commitRes, 1), enq: t0}
	if err := db.submit(req); err != nil {
		if tr != nil {
			tr.RecordSpan(obs.SpanFromContext(ctx), "commit", time.Since(t0),
				obs.Int("ops", len(ops)), obs.Str("outcome", "rejected"))
		}
		return commitRes{}, err
	}
	// The committer answers every accepted request, draining the queue
	// before it exits, so this wait always resolves.
	res := <-req.resp
	if tr != nil {
		outcome := "ok"
		if res.err != nil {
			outcome = "error"
		}
		tr.RecordSpan(obs.SpanFromContext(ctx), "commit", time.Since(t0),
			obs.Int("ops", len(ops)),
			obs.Int("wal_group", res.group),
			obs.Str("outcome", outcome))
	}
	return res, res.err
}

// submit enqueues a request for the committer under the accept fence.
func (db *DB) submit(req *commitReq) error {
	db.acceptMu.RLock()
	defer db.acceptMu.RUnlock()
	if db.closed.Load() {
		return ErrClosed
	}
	db.commitCh <- req
	return nil
}

// --- transactions -------------------------------------------------------

// Txn stages a multi-operation transaction. Operations are buffered
// locally — nothing is visible or durable until Commit, which applies
// them as one atomic, single-fsync commit. A Txn is not safe for
// concurrent use; discard it after Commit.
type Txn struct {
	db   *DB
	ops  []op
	errs []error
}

// Begin starts an empty transaction.
func (db *DB) Begin() *Txn { return &Txn{db: db} }

// Add stages a sequence insertion. The id it will receive is assigned at
// Commit (ids depend on commit order across writers).
func (t *Txn) Add(s *core.Sequence) {
	g, err := t.db.partitionFor(s)
	if err != nil {
		t.errs = append(t.errs, err)
		return
	}
	t.ops = append(t.ops, op{kind: opAdd, g: g})
}

// AppendPoints stages an extension of an existing sequence.
func (t *Txn) AppendPoints(id uint32, pts []geom.Point) {
	t.ops = append(t.ops, op{kind: opAppend, id: id, pts: pts})
}

// Remove stages a deletion.
func (t *Txn) Remove(id uint32) {
	t.ops = append(t.ops, op{kind: opRemove, id: id})
}

// Commit applies the staged operations atomically and returns the ids
// assigned to staged Adds, in staging order. If any staged operation is
// invalid the whole transaction is rejected and nothing changes.
func (t *Txn) Commit() ([]uint32, error) {
	if len(t.errs) > 0 {
		return nil, t.errs[0]
	}
	if len(t.ops) == 0 {
		return nil, nil
	}
	res, err := t.db.commit(t.ops)
	if err != nil {
		return nil, err
	}
	var ids []uint32
	next := res.firstID
	for _, o := range t.ops {
		if o.kind == opAdd {
			ids = append(ids, next)
			next++
		}
	}
	return ids, nil
}

// searchCanceled mirrors core's context check for the delta scan loops.
func searchCanceled(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}
