package txn

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// copyDir copies a durability directory byte-for-byte — the moral
// equivalent of what the disk holds after a kill -9: everything fsynced
// is there, file by file.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		sp, dp := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			if err := os.MkdirAll(dp, 0o755); err != nil {
				t.Fatal(err)
			}
			sub, err := os.ReadDir(sp)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range sub {
				data, err := os.ReadFile(filepath.Join(sp, f.Name()))
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(dp, f.Name()), data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			continue
		}
		data, err := os.ReadFile(sp)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dp, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// driveOps applies one step of a deterministic mixed op stream to db and
// the shadow reference, keeping their id spaces identical.
func driveOps(t *testing.T, rng *rand.Rand, db *DB, ref *core.Database, live *[]uint32, dim int) {
	t.Helper()
	switch k := rng.Intn(10); {
	case k < 6 || len(*live) == 0:
		s := randSeq(rng, dim, 8+rng.Intn(16))
		id, err := db.Add(clonePoints(s))
		if err != nil {
			t.Fatalf("Add: %v", err)
		}
		rid, err := ref.Add(clonePoints(s))
		if err != nil || rid != id {
			t.Fatalf("ref Add: id %d vs %d, err %v", rid, id, err)
		}
		*live = append(*live, id)
	case k < 8:
		id := (*live)[rng.Intn(len(*live))]
		ext := randSeq(rng, dim, 1+rng.Intn(4)).Points
		if err := db.AppendPoints(id, ext); err != nil {
			t.Fatalf("AppendPoints(%d): %v", id, err)
		}
		if err := ref.AppendPoints(id, ext); err != nil {
			t.Fatalf("ref AppendPoints(%d): %v", id, err)
		}
	default:
		j := rng.Intn(len(*live))
		id := (*live)[j]
		if err := db.Remove(id); err != nil {
			t.Fatalf("Remove(%d): %v", id, err)
		}
		if err := ref.Remove(id); err != nil {
			t.Fatalf("ref Remove(%d): %v", id, err)
		}
		*live = append((*live)[:j], (*live)[j+1:]...)
	}
}

func TestReopenRestoresAckedCommits(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, Dim: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ref := newRef(t, 2)
	queries := []*core.Sequence{randSeq(rng, 2, 8), randSeq(rng, 2, 12)}
	var live []uint32
	for i := 0; i < 40; i++ {
		driveOps(t, rng, db, ref, &live, 2)
	}
	want := fingerprint(t, ref, queries, 3)
	if got := fingerprint(t, db, queries, 3); got != want {
		t.Fatalf("pre-close divergence\n got %s\nwant %s", got, want)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: pure WAL replay (no checkpoint ever ran).
	db2, err := Open(Options{Dir: dir, Dim: 2})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if s := db2.Stats(); s.RecoveredRecords == 0 {
		t.Fatal("reopen replayed nothing")
	}
	if got := fingerprint(t, db2, queries, 3); got != want {
		t.Fatalf("replayed state diverges\n got %s\nwant %s", got, want)
	}

	// Checkpoint, more commits, reopen: snapshot load + tail replay.
	// Dim is omitted — the store's recorded metadata must supply it.
	if err := db2.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for i := 0; i < 20; i++ {
		driveOps(t, rng, db2, ref, &live, 2)
	}
	want2 := fingerprint(t, ref, queries, 3)
	if err := db2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	db3, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after checkpoint: %v", err)
	}
	defer db3.Close()
	if db3.Dim() != 2 {
		t.Fatalf("Dim not adopted from store: %d", db3.Dim())
	}
	s := db3.Stats()
	if s.RecoveredRecords == 0 || s.RecoveredRecords >= 60 {
		t.Fatalf("RecoveredRecords = %d, want only the post-checkpoint tail", s.RecoveredRecords)
	}
	if got := fingerprint(t, db3, queries, 3); got != want2 {
		t.Fatalf("snapshot+tail state diverges\n got %s\nwant %s", got, want2)
	}
}

// TestCrashAfterAck simulates kill -9 at every commit boundary: after
// each acknowledged commit the durability directory is copied (fsynced
// bytes only — the writing process never closes) and reopened elsewhere.
// Every copy must restore exactly the commits acknowledged so far.
func TestCrashAfterAck(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, Dim: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	ref := newRef(t, 2)
	queries := []*core.Sequence{randSeq(rng, 2, 8), randSeq(rng, 2, 10)}
	var live []uint32
	for i := 1; i <= 24; i++ {
		driveOps(t, rng, db, ref, &live, 2)
		if i == 12 {
			// Mid-stream checkpoint: later crashes recover from
			// snapshot + tail instead of a full log replay.
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
		}
		want := fingerprint(t, ref, queries, 3)
		crashed, err := Open(Options{Dir: copyDir(t, dir), Dim: 2})
		if err != nil {
			t.Fatalf("commit %d: reopen after simulated crash: %v", i, err)
		}
		got := fingerprint(t, crashed, queries, 3)
		crashed.Close()
		if got != want {
			t.Fatalf("commit %d: crash recovery lost or invented state\n got %s\nwant %s", i, got, want)
		}
	}
}

// TestWALTortureTruncate chops the WAL at arbitrary byte offsets —
// mid-record, mid-header, mid-CRC — and requires every reopen to come up
// clean with exactly the longest intact prefix of commits: no torn
// record is ever half-applied, nothing intact is dropped.
func TestWALTortureTruncate(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, Dim: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ref := newRef(t, 2)
	queries := []*core.Sequence{randSeq(rng, 2, 8), randSeq(rng, 2, 10)}
	var live []uint32
	// prefix[i] = fingerprint after i commits.
	prefix := []string{fingerprint(t, ref, queries, 3)}
	const commits = 20
	for i := 0; i < commits; i++ {
		driveOps(t, rng, db, ref, &live, 2)
		prefix = append(prefix, fingerprint(t, ref, queries, 3))
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	walSize := int64(0)
	if fi, err := os.Stat(filepath.Join(dir, walFile)); err == nil {
		walSize = fi.Size()
	} else {
		t.Fatal(err)
	}

	sizes := []int64{0, 1, 8, walSize, walSize - 1, walSize - 4}
	for len(sizes) < 36 {
		sizes = append(sizes, rng.Int63n(walSize+1))
	}
	for _, size := range sizes {
		cp := copyDir(t, dir)
		if err := os.Truncate(filepath.Join(cp, walFile), size); err != nil {
			t.Fatal(err)
		}
		tdb, err := Open(Options{Dir: cp, Dim: 2})
		if err != nil {
			t.Fatalf("truncate to %d/%d: reopen failed: %v", size, walSize, err)
		}
		rec := int(tdb.Stats().RecoveredRecords)
		got := fingerprint(t, tdb, queries, 3)
		tdb.Close()
		if rec < 0 || rec > commits {
			t.Fatalf("truncate to %d: replayed %d records", size, rec)
		}
		if got != prefix[rec] {
			t.Fatalf("truncate to %d: state is not the %d-commit prefix\n got %s\nwant %s",
				size, rec, got, prefix[rec])
		}
		if size == walSize && rec != commits {
			t.Fatalf("untouched WAL replayed %d of %d commits", rec, commits)
		}
	}
}

// TestWALTortureCorrupt flips single bytes at random offsets past the
// header. The CRC must stop replay at the corrupted record: recovery
// still succeeds and lands on an exact commit prefix.
func TestWALTortureCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, Dim: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ref := newRef(t, 2)
	queries := []*core.Sequence{randSeq(rng, 2, 9)}
	var live []uint32
	prefix := []string{fingerprint(t, ref, queries, 3)}
	const commits = 16
	for i := 0; i < commits; i++ {
		driveOps(t, rng, db, ref, &live, 2)
		prefix = append(prefix, fingerprint(t, ref, queries, 3))
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wal, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 30; trial++ {
		off := 8 + rng.Intn(len(wal)-8) // past the magic header
		cp := copyDir(t, dir)
		mut := append([]byte(nil), wal...)
		mut[off] ^= 1 << uint(rng.Intn(8))
		if err := os.WriteFile(filepath.Join(cp, walFile), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		tdb, err := Open(Options{Dir: cp, Dim: 2})
		if err != nil {
			t.Fatalf("trial %d (flip at %d): reopen failed: %v", trial, off, err)
		}
		rec := int(tdb.Stats().RecoveredRecords)
		got := fingerprint(t, tdb, queries, 3)
		tdb.Close()
		if rec > commits {
			t.Fatalf("trial %d: replayed %d > %d records", trial, rec, commits)
		}
		if rec == commits {
			t.Fatalf("trial %d (flip at %d): corruption went undetected", trial, off)
		}
		if got != prefix[rec] {
			t.Fatalf("trial %d (flip at %d): state is not the %d-commit prefix\n got %s\nwant %s",
				trial, off, rec, got, prefix[rec])
		}
	}
}

// TestNoFsyncStillOrdered: with NoFsync the same commit stream must stay
// atomic and ordered in memory; a clean Close syncs, so reopen restores
// everything.
func TestNoFsyncStillOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, Dim: 2, NoFsync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ref := newRef(t, 2)
	queries := []*core.Sequence{randSeq(rng, 2, 8)}
	var live []uint32
	for i := 0; i < 20; i++ {
		driveOps(t, rng, db, ref, &live, 2)
	}
	if s := db.Stats(); s.Fsyncs != 0 {
		t.Fatalf("NoFsync mode performed %d fsyncs on the commit path", s.Fsyncs)
	}
	want := fingerprint(t, ref, queries, 3)
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	db2, err := Open(Options{Dir: dir, Dim: 2})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if got := fingerprint(t, db2, queries, 3); got != want {
		t.Fatalf("NoFsync clean-close state diverges\n got %s\nwant %s", got, want)
	}
}
