package txn

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestSearchUnderConcurrentIngest is the MVCC acceptance test: while a
// writer streams commits (with automatic checkpoints folding the delta
// underneath), readers pin snapshots and must get byte-identical answers
// to a quiesced reference database holding the same epoch's content.
//
// The writer maintains the reference: after every few acks it fingerprints
// the reference corpus and publishes epoch → expected under a lock. A
// reader that pins one of those epochs mid-ingest must reproduce the
// fingerprint exactly — range matches, exact distances, solution
// intervals, scan baseline, id list.
func TestSearchUnderConcurrentIngest(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	base, err := core.NewDatabase(core.Options{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Wrap(base, Options{GroupWindow: 0, CheckpointEvery: 25})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ref := newRef(t, 2)
	queries := []*core.Sequence{randSeq(rng, 2, 8), randSeq(rng, 2, 12)}
	const eps = 3.0

	// Seed corpus, identically on both sides.
	var live []uint32
	for i := 0; i < 30; i++ {
		s := randSeq(rng, 2, 8+rng.Intn(16))
		id, err := db.Add(clonePoints(s))
		if err != nil {
			t.Fatal(err)
		}
		if rid, err := ref.Add(clonePoints(s)); err != nil || rid != id {
			t.Fatalf("ref seed: %d vs %d, %v", rid, id, err)
		}
		live = append(live, id)
	}

	var mu sync.Mutex // guards expected
	expected := map[uint64]string{}
	writerDone := make(chan struct{})
	var failed atomic.Bool

	go func() {
		defer close(writerDone)
		wrng := rand.New(rand.NewSource(31))
		for i := 0; i < 240 && !failed.Load(); i++ {
			driveOps(t, wrng, db, ref, &live, 2)
			if i%6 == 0 {
				// Single writer: content only changes at our own commits,
				// and checkpoint rebases preserve content, so whatever
				// epoch is published right now holds exactly ref's corpus.
				fp := fingerprint(t, ref, queries, eps)
				mu.Lock()
				expected[db.Epoch()] = fp
				mu.Unlock()
			}
		}
	}()

	var wg sync.WaitGroup
	var checked atomic.Int64
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for {
				select {
				case <-writerDone:
					return
				default:
				}
				snap := db.Acquire()
				mu.Lock()
				want, ok := expected[snap.Epoch()]
				mu.Unlock()
				if ok {
					got := fingerprint(t, snap, queries, eps)
					if got != want {
						failed.Store(true)
						t.Errorf("epoch %d mid-ingest read diverges from quiesced reference\n got %s\nwant %s",
							snap.Epoch(), got, want)
						snap.Release()
						return
					}
					checked.Add(1)
				}
				snap.Release()
			}
		}(int64(40 + r))
	}
	wg.Wait()
	<-writerDone
	if n := checked.Load(); n < 5 {
		t.Fatalf("readers verified only %d mid-ingest snapshots against the reference", n)
	}

	// Quiesce and compare the final corpus end to end, then once more
	// after folding everything into the base index.
	want := fingerprint(t, ref, queries, eps)
	if got := fingerprint(t, db, queries, eps); got != want {
		t.Fatalf("quiesced state diverges\n got %s\nwant %s", got, want)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	if got := fingerprint(t, db, queries, eps); got != want {
		t.Fatalf("post-fold state diverges\n got %s\nwant %s", got, want)
	}
}

// TestMixedReadWriteSoak hammers the transaction layer from concurrent
// writers (each owning its ids) and readers, with group commit and
// automatic checkpoints on. It asserts only invariants — no operation
// errors, snapshots internally consistent — and exists chiefly to give
// the race detector surface area; CI runs it with -race.
func TestMixedReadWriteSoak(t *testing.T) {
	base, err := core.NewDatabase(core.Options{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Wrap(base, Options{GroupWindow: 100 * time.Microsecond, CheckpointEvery: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const writers, readers, opsPerWriter = 4, 4, 120
	var wWG, rWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wWG.Add(1)
		go func(seed int64) {
			defer wWG.Done()
			rng := rand.New(rand.NewSource(seed))
			var mine []uint32
			for i := 0; i < opsPerWriter; i++ {
				switch k := rng.Intn(10); {
				case k < 6 || len(mine) == 0:
					id, err := db.Add(randSeq(rng, 2, 6+rng.Intn(10)))
					if err != nil {
						t.Errorf("Add: %v", err)
						return
					}
					mine = append(mine, id)
				case k < 8:
					id := mine[rng.Intn(len(mine))]
					if err := db.AppendPoints(id, randSeq(rng, 2, 1+rng.Intn(3)).Points); err != nil {
						t.Errorf("AppendPoints(%d): %v", id, err)
						return
					}
				default:
					j := rng.Intn(len(mine))
					if err := db.Remove(mine[j]); err != nil {
						t.Errorf("Remove(%d): %v", mine[j], err)
						return
					}
					mine = append(mine[:j], mine[j+1:]...)
				}
			}
		}(int64(50 + w))
	}
	for r := 0; r < readers; r++ {
		rWG.Add(1)
		go func(seed int64) {
			defer rWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := randSeq(rng, 2, 6+rng.Intn(6))
				snap := db.Acquire()
				ms, _, err := snap.Search(q, 2)
				if err != nil {
					t.Errorf("Search: %v", err)
					snap.Release()
					return
				}
				for i := 1; i < len(ms); i++ {
					if ms[i-1].SeqID >= ms[i].SeqID {
						t.Errorf("results out of id order: %d then %d", ms[i-1].SeqID, ms[i].SeqID)
						snap.Release()
						return
					}
				}
				if n := snap.Len(); len(ms) > n {
					t.Errorf("%d matches from a %d-sequence snapshot", len(ms), n)
					snap.Release()
					return
				}
				snap.Release()
			}
		}(int64(60 + r))
	}

	wWG.Wait()
	close(stop)
	rWG.Wait()

	s := db.Stats()
	if s.Commits == 0 || s.SnapshotsPinned != 0 {
		t.Fatalf("soak end state: %+v", s)
	}
}
