package txn

import (
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// statsCounters are the committer/checkpoint counters behind Stats,
// kept as atomics so Stats() needs no coordination with the committer.
type statsCounters struct {
	commits     atomic.Uint64
	records     atomic.Uint64
	groups      atomic.Uint64
	fsyncs      atomic.Uint64
	walBytes    atomic.Uint64
	checkpoints atomic.Uint64
	ckptErrs    atomic.Uint64
	recovered   atomic.Uint64
	snapshots   atomic.Int64
	drainNanos  atomic.Int64
	// tailSince is the unix-nano arrival time of the oldest commit not
	// yet folded into the base (0 = delta empty): the age of the work a
	// crash would replay and the staleness of the on-disk base snapshot.
	tailSince     atomic.Int64
	lastCkptNanos atomic.Int64
}

// Stats is a point-in-time summary of the transaction layer, served by
// the /txnz endpoint.
type Stats struct {
	// Epoch is the published MVCC state's version (bumps per commit group).
	Epoch uint64 `json:"epoch"`
	// LastLSN is the WAL position of the newest committed record.
	LastLSN uint64 `json:"last_lsn"`
	// CheckpointLSN is the WAL position folded into the base snapshot.
	CheckpointLSN uint64 `json:"checkpoint_lsn"`
	// Live is the number of visible sequences.
	Live int `json:"live"`
	// DeltaAdds is the number of unfolded added sequences a query's
	// linear scan covers.
	DeltaAdds int `json:"delta_adds"`
	// DeltaOverlays is the number of distinct base sequences the delta
	// supersedes with appended/replaced versions.
	DeltaOverlays int `json:"delta_overlays"`
	// DeltaRemoved is the number of unfolded removals.
	DeltaRemoved int `json:"delta_removed"`
	// Commits counts acknowledged commit requests.
	Commits uint64 `json:"commits"`
	// Records counts the WAL records those commits produced.
	Records uint64 `json:"records"`
	// Groups counts fsync batches (group commits).
	Groups uint64 `json:"groups"`
	// Fsyncs counts actual fsync calls (0 under NoFsync).
	Fsyncs uint64 `json:"fsyncs"`
	// MeanGroupSize is Commits/Groups — how well group commit batches.
	MeanGroupSize float64 `json:"mean_group_size"`
	// WALBytes counts payload bytes appended over the database's life.
	WALBytes uint64 `json:"wal_bytes"`
	// WALSizeBytes is the current log file size (drops at each
	// checkpoint compaction).
	WALSizeBytes int64 `json:"wal_size_bytes"`
	// Checkpoints counts completed delta folds.
	Checkpoints uint64 `json:"checkpoints"`
	// CheckpointErrors counts folds that failed and left the delta
	// unfolded (retried on the next trigger).
	CheckpointErrors uint64 `json:"checkpoint_errors"`
	// LastCheckpoint is the most recent fold's duration.
	LastCheckpoint time.Duration `json:"last_checkpoint_ns"`
	// DrainWait is the total time checkpoints spent waiting for
	// pre-fold snapshots to release.
	DrainWait time.Duration `json:"drain_wait_ns"`
	// RecoveredRecords is how many WAL records Open replayed.
	RecoveredRecords uint64 `json:"recovered_records"`
	// SnapshotsPinned is the number of currently held read snapshots.
	SnapshotsPinned int64 `json:"snapshots_pinned"`
	// TailAge is the age of the oldest unfolded commit (0 = none): the
	// base snapshot's staleness and the bound on recovery replay work.
	TailAge time.Duration `json:"tail_age_ns"`
}

// Stats returns a point-in-time summary of the transaction layer.
func (db *DB) Stats() Stats {
	st := db.cur.Load()
	s := Stats{
		Epoch:            st.epoch,
		LastLSN:          st.lastLSN,
		CheckpointLSN:    db.ckptLSN.Load(),
		Live:             st.live,
		DeltaAdds:        len(st.adds),
		DeltaOverlays:    len(st.overlays),
		DeltaRemoved:     len(st.removed),
		Commits:          db.stats.commits.Load(),
		Records:          db.stats.records.Load(),
		Groups:           db.stats.groups.Load(),
		Fsyncs:           db.stats.fsyncs.Load(),
		WALBytes:         db.stats.walBytes.Load(),
		Checkpoints:      db.stats.checkpoints.Load(),
		CheckpointErrors: db.stats.ckptErrs.Load(),
		LastCheckpoint:   time.Duration(db.stats.lastCkptNanos.Load()),
		DrainWait:        time.Duration(db.stats.drainNanos.Load()),
		RecoveredRecords: db.stats.recovered.Load(),
		SnapshotsPinned:  db.stats.snapshots.Load(),
	}
	if s.Groups > 0 {
		s.MeanGroupSize = float64(s.Commits) / float64(s.Groups)
	}
	if since := db.stats.tailSince.Load(); since != 0 {
		s.TailAge = time.Since(time.Unix(0, since))
	}
	if db.log != nil {
		s.WALSizeBytes = db.log.Size()
	}
	if m := db.met.Load(); m != nil {
		m.tailAge.Set(s.TailAge.Seconds())
	}
	return s
}

// metrics are the obs instruments the transaction layer records into.
type metrics struct {
	commitLatency *obs.Histogram
	groupSize     *obs.Histogram
	ckptSeconds   *obs.Histogram
	records       *obs.Counter
	fsyncs        *obs.Counter
	walBytes      *obs.Counter
	checkpoints   *obs.Counter
	replayed      *obs.Counter
	pinned        *obs.Gauge
	tailAge       *obs.Gauge
}

// commitBuckets span sub-millisecond in-memory commits to multi-second
// stalls.
var commitBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// groupBuckets span single-writer commits to full batches.
var groupBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// SetMetrics registers the transaction layer's instruments in reg (nil
// detaches) and forwards reg to the base database, so one registry
// carries both the mdseq_wal_*/mdseq_snapshot_* families and the core
// query metrics.
func (db *DB) SetMetrics(reg *obs.Registry) {
	db.base.SetMetrics(reg)
	db.register(reg)
}

// SetMetricsShard registers only the mdseq_wal_*/mdseq_snapshot_*
// instruments, each labeled {shard="i"} — for sharded deployments
// (shard.NewWithNodes over transactional nodes), where the router owns
// the query metrics and each shard's committer needs its own series.
func (db *DB) SetMetricsShard(reg *obs.Registry, shard int) {
	db.register(reg, core.ShardLabel(shard))
}

// register builds the instrument set under the given label set (nil reg
// detaches).
func (db *DB) register(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		db.met.Store(nil)
		return
	}
	m := &metrics{
		commitLatency: reg.Histogram("mdseq_wal_commit_seconds",
			"Commit latency from submission to durable acknowledgment.", commitBuckets, labels...),
		groupSize: reg.Histogram("mdseq_wal_group_size",
			"Commits acknowledged per fsync batch.", groupBuckets, labels...),
		ckptSeconds: reg.Histogram("mdseq_wal_checkpoint_seconds",
			"Checkpoint duration: drain, fold, persist, compact.", nil, labels...),
		records: reg.Counter("mdseq_wal_records_total",
			"WAL records appended.", labels...),
		fsyncs: reg.Counter("mdseq_wal_fsyncs_total",
			"WAL fsync calls.", labels...),
		walBytes: reg.Counter("mdseq_wal_bytes_total",
			"WAL payload bytes appended.", labels...),
		checkpoints: reg.Counter("mdseq_wal_checkpoints_total",
			"Completed checkpoints (delta folds).", labels...),
		replayed: reg.Counter("mdseq_wal_recovery_replayed_total",
			"WAL records replayed by crash recovery at open.", labels...),
		pinned: reg.Gauge("mdseq_snapshot_pinned",
			"Read snapshots currently pinned.", labels...),
		tailAge: reg.Gauge("mdseq_snapshot_age_seconds",
			"Age of the oldest commit not yet folded into the base.", labels...),
	}
	m.replayed.Add(db.stats.recovered.Load())
	db.met.Store(m)
}
