package txn

import (
	"time"

	"repro/internal/core"
	"repro/internal/geom"
)

// Operation kinds, also the WAL op codes.
const (
	opAdd    = byte('A')
	opAppend = byte('P')
	opRemove = byte('R')
)

// op is one staged write operation.
type op struct {
	kind byte
	g    *core.Segmented // opAdd: pre-partitioned sequence
	id   uint32          // opAppend, opRemove
	pts  []geom.Point    // opAppend
	// seqFromLog carries a decoded (not yet partitioned) add during WAL
	// replay; the recovery path partitions it before applying.
	seqFromLog *core.Sequence
}

// commitReq is one atomic batch of ops awaiting the committer.
type commitReq struct {
	ops  []op
	resp chan commitRes
	enq  time.Time
	// res is staged by the committer while the request waits for its
	// group's fsync; sent on resp at acknowledgment time.
	res commitRes
	// rebase, when non-nil, makes this a checkpoint's fold-completion
	// request instead of a commit (see Checkpoint); ops is then empty.
	rebase *rebaseReq
}

// commitRes is the committer's acknowledgment.
type commitRes struct {
	err     error
	firstID uint32 // id of the request's first opAdd (adds get consecutive ids)
	tail    []tailRec
	// group is how many requests shared this request's fsync — the WAL
	// group-commit batch size, surfaced as a span attribute so a slow
	// write can be attributed to (or exonerated from) group formation.
	group int
}

// state is one immutable version of the delta. States form a chain:
// each commit publishes a new state whose slices extend the previous
// state's (append-only structural sharing — safe because only the
// committer appends, and a published state's slice headers freeze the
// visible prefix). Readers pin a state and never see it change.
type state struct {
	// epoch increments on every publish; it is the value Epoch()
	// reports, so attached query caches invalidate on every commit.
	epoch uint64
	// lastLSN is the WAL position this state corresponds to: the LSN of
	// the last record applied into it.
	lastLSN uint64
	// baseNext is the id the base would assign next — the boundary
	// between base ids (< baseNext) and delta add ids. Constant between
	// checkpoint folds.
	baseNext uint32
	// live is the number of visible sequences (base + adds − removed).
	live int
	// adds are sequences committed since the last fold; adds[i] has id
	// baseNext + i. A later overlay or removal for that id supersedes
	// the entry here.
	adds []*core.Segmented
	// overlays are replacement versions (from AppendPoints) in commit
	// order; the last entry for an id wins. Ids may be base ids or add
	// ids. Removal is terminal, so the removed set overrides overlays
	// regardless of order.
	overlays []overlayEntry
	// removed lists removed ids (base or add), in commit order.
	removed []uint32
}

// overlayEntry is one committed replacement version.
type overlayEntry struct {
	id uint32
	g  *core.Segmented
}

// deltaLen reports how many committed mutations the state carries — the
// size of the per-query delta scan and the work a checkpoint will fold.
func (st *state) deltaLen() int {
	return len(st.adds) + len(st.overlays) + len(st.removed)
}

// view is the per-snapshot resolved form of a state: set and map lookups
// built once per pinned snapshot (O(delta) — bounded by the checkpoint
// cadence), then shared by every query through that snapshot.
type view struct {
	st        *state
	removed   map[uint32]struct{}
	overlay   map[uint32]*core.Segmented // latest version per overlaid id
	delta     []deltaSeq                 // visible delta sequences, ascending id
	deadBase  int                        // base ids in removed (capacity hint for kNN inflation)
	liveBases int
}

// deltaSeq is one sequence a delta scan must evaluate.
type deltaSeq struct {
	id uint32
	g  *core.Segmented
}

// buildView resolves st into lookup form.
func buildView(st *state) *view {
	v := &view{st: st}
	if st.deltaLen() == 0 {
		return v
	}
	v.removed = make(map[uint32]struct{}, len(st.removed))
	for _, id := range st.removed {
		v.removed[id] = struct{}{}
		if id < st.baseNext {
			v.deadBase++
		}
	}
	v.overlay = make(map[uint32]*core.Segmented, len(st.overlays))
	overlayBase := make([]uint32, 0, len(st.overlays))
	for _, e := range st.overlays {
		if _, seen := v.overlay[e.id]; !seen && e.id < st.baseNext {
			overlayBase = append(overlayBase, e.id)
		}
		v.overlay[e.id] = e.g
	}
	// Visible delta, ascending id: overlaid base sequences first (base
	// ids < any add id), then adds — skipping removed ids either way.
	sortUint32s(overlayBase)
	for _, id := range overlayBase {
		if _, dead := v.removed[id]; dead {
			continue
		}
		v.delta = append(v.delta, deltaSeq{id: id, g: v.overlay[id]})
	}
	for i, g := range st.adds {
		id := st.baseNext + uint32(i)
		if _, dead := v.removed[id]; dead {
			continue
		}
		if ng, ok := v.overlay[id]; ok {
			g = ng
		}
		v.delta = append(v.delta, deltaSeq{id: id, g: g})
	}
	return v
}

// dropBase reports whether a base search result for id must be filtered
// out: the snapshot supersedes it (overlay), deleted it (removed), or
// never contained it (id ≥ baseNext — possible mid-fold, when the base
// already holds adds this snapshot serves from its own delta).
func (v *view) dropBase(id uint32) bool {
	if id >= v.st.baseNext {
		return true
	}
	if _, dead := v.removed[id]; dead {
		return true
	}
	_, overlaid := v.overlay[id]
	return overlaid
}

// effective returns the sequence version visible for id, or nil.
func (v *view) effective(id uint32, base *core.Database) *core.Segmented {
	if _, dead := v.removed[id]; dead {
		return nil
	}
	if g, ok := v.overlay[id]; ok {
		return g
	}
	if id < v.st.baseNext {
		return base.Segmented(id)
	}
	i := int(id - v.st.baseNext)
	if i < len(v.st.adds) {
		return v.st.adds[i]
	}
	return nil
}

// workState is the committer's mutable mirror of the latest state:
// effective-version lookups in O(1) for validating and applying ops.
// Only the committer goroutine touches it.
type workState struct {
	st         *state
	overlayIdx map[uint32]int // id → index in st.overlays of latest version
	removedSet map[uint32]struct{}
}

// reset rebuilds the mirror from st (after open, rebase, or an apply
// error that abandoned a half-applied request).
func (w *workState) reset(st *state) {
	w.st = st
	w.overlayIdx = make(map[uint32]int, len(st.overlays))
	for i, e := range st.overlays {
		w.overlayIdx[e.id] = i
	}
	w.removedSet = make(map[uint32]struct{}, len(st.removed))
	for _, id := range st.removed {
		w.removedSet[id] = struct{}{}
	}
}

// effective returns the visible version of id in the working state, or
// nil (removed or never existed).
func (w *workState) effective(id uint32, base *core.Database) *core.Segmented {
	if _, dead := w.removedSet[id]; dead {
		return nil
	}
	if i, ok := w.overlayIdx[id]; ok {
		return w.st.overlays[i].g
	}
	if id < w.st.baseNext {
		return base.Segmented(id)
	}
	i := int(id - w.st.baseNext)
	if i < len(w.st.adds) {
		return w.st.adds[i]
	}
	return nil
}

// sortUint32s sorts ids ascending (insertion sort; delta-sized inputs).
func sortUint32s(xs []uint32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
