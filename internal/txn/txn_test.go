package txn

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/shard"
)

// The transaction layer is a drop-in shard.DB, so every serving layer
// (server, CLI, sharded scatter-gather) can sit on top of it unchanged.
var _ shard.DB = (*DB)(nil)

func randSeq(rng *rand.Rand, dim, n int) *core.Sequence {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float64() * 10
		}
		pts[i] = p
	}
	return &core.Sequence{Points: pts}
}

func clonePoints(s *core.Sequence) *core.Sequence {
	pts := make([]geom.Point, len(s.Points))
	for i, p := range s.Points {
		pts[i] = append(geom.Point(nil), p...)
	}
	return &core.Sequence{Points: pts}
}

func newMem(t *testing.T, dim int) *DB {
	t.Helper()
	base, err := core.NewDatabase(core.Options{Dim: dim})
	if err != nil {
		t.Fatalf("NewDatabase: %v", err)
	}
	db, err := Wrap(base, Options{})
	if err != nil {
		t.Fatalf("Wrap: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func newRef(t *testing.T, dim int) *core.Database {
	t.Helper()
	ref, err := core.NewDatabase(core.Options{Dim: dim})
	if err != nil {
		t.Fatalf("NewDatabase: %v", err)
	}
	t.Cleanup(func() { ref.Close() })
	return ref
}

// searcher is the read surface shared by *DB, *Snap, and *core.Database,
// letting equivalence checks fingerprint any of them the same way.
type searcher interface {
	Search(*core.Sequence, float64) ([]core.Match, core.SearchStats, error)
	SequentialSearch(*core.Sequence, float64) ([]core.ScanResult, error)
	Sequences() []*core.Sequence
	Len() int
}

// fingerprint reduces a database's full visible content and search
// behavior to a string: sequence ids with lengths, range results with
// exact distances and intervals, and the scan baseline. Two databases
// with equal fingerprints answer these queries byte-identically.
func fingerprint(t *testing.T, db searcher, queries []*core.Sequence, eps float64) string {
	t.Helper()
	var b strings.Builder
	fmtf := func(format string, args ...any) {
		fmt.Fprintf(&b, format, args...)
	}
	fmtf("len=%d;ids=", db.Len())
	for _, s := range db.Sequences() {
		fmtf("%d:%d,", s.ID, len(s.Points))
	}
	for qi, q := range queries {
		ms, _, err := db.Search(q, eps)
		if err != nil {
			t.Fatalf("Search q%d: %v", qi, err)
		}
		fmtf(";q%d=", qi)
		for _, m := range ms {
			fmtf("%d@%x|%v,", m.SeqID, math.Float64bits(m.MinDnorm), m.Interval)
		}
		ss, err := db.SequentialSearch(q, eps)
		if err != nil {
			t.Fatalf("SequentialSearch q%d: %v", qi, err)
		}
		fmtf(";s%d=", qi)
		for _, r := range ss {
			fmtf("%d@%x|%v,", r.SeqID, math.Float64bits(r.Dist), r.Interval)
		}
	}
	return b.String()
}

func TestAddAndSearchMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := newMem(t, 2)
	ref := newRef(t, 2)
	var queries []*core.Sequence
	for i := 0; i < 40; i++ {
		s := randSeq(rng, 2, 8+rng.Intn(20))
		id, err := db.Add(clonePoints(s))
		if err != nil {
			t.Fatalf("Add: %v", err)
		}
		rid, err := ref.Add(clonePoints(s))
		if err != nil {
			t.Fatalf("ref Add: %v", err)
		}
		if id != rid {
			t.Fatalf("id divergence: txn=%d ref=%d", id, rid)
		}
		if i%8 == 0 {
			queries = append(queries, randSeq(rng, 2, 6+rng.Intn(8)))
		}
	}
	for _, eps := range []float64{0.5, 2, 8} {
		if got, want := fingerprint(t, db, queries, eps), fingerprint(t, ref, queries, eps); got != want {
			t.Fatalf("eps=%v: txn DB diverges from reference\n got %s\nwant %s", eps, got, want)
		}
	}
}

// TestMixedOpsEquivalence drives the same randomized op stream (adds,
// appends, removes, batch txns) into the txn layer and a plain
// core.Database and requires byte-identical answers — with the delta
// unfolded, after a checkpoint fold, and after a second op wave.
func TestMixedOpsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := newMem(t, 3)
	ref := newRef(t, 3)
	var live []uint32

	wave := func(n int) {
		for i := 0; i < n; i++ {
			switch k := rng.Intn(10); {
			case k < 5 || len(live) == 0: // add
				s := randSeq(rng, 3, 10+rng.Intn(24))
				id, err := db.Add(clonePoints(s))
				if err != nil {
					t.Fatalf("Add: %v", err)
				}
				rid, err := ref.Add(clonePoints(s))
				if err != nil || rid != id {
					t.Fatalf("ref Add: id %d vs %d err=%v", rid, id, err)
				}
				live = append(live, id)
			case k < 8: // append to a live sequence
				id := live[rng.Intn(len(live))]
				ext := randSeq(rng, 3, 1+rng.Intn(6)).Points
				if err := db.AppendPoints(id, ext); err != nil {
					t.Fatalf("AppendPoints(%d): %v", id, err)
				}
				if err := ref.AppendPoints(id, ext); err != nil {
					t.Fatalf("ref AppendPoints(%d): %v", id, err)
				}
			default: // remove
				j := rng.Intn(len(live))
				id := live[j]
				if err := db.Remove(id); err != nil {
					t.Fatalf("Remove(%d): %v", id, err)
				}
				if err := ref.Remove(id); err != nil {
					t.Fatalf("ref Remove(%d): %v", id, err)
				}
				live = append(live[:j], live[j+1:]...)
			}
		}
	}
	var queries []*core.Sequence
	for i := 0; i < 5; i++ {
		queries = append(queries, randSeq(rng, 3, 8+rng.Intn(10)))
	}
	check := func(stage string) {
		t.Helper()
		for _, eps := range []float64{1, 4} {
			if got, want := fingerprint(t, db, queries, eps), fingerprint(t, ref, queries, eps); got != want {
				t.Fatalf("%s eps=%v: diverged\n got %s\nwant %s", stage, eps, got, want)
			}
		}
	}

	wave(60)
	check("delta")
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if s := db.Stats(); s.DeltaAdds+s.DeltaOverlays+s.DeltaRemoved != 0 {
		t.Fatalf("delta not folded: %+v", s)
	}
	check("folded")
	wave(40)
	check("second wave")
}

func TestTxnBatchAtomic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := newMem(t, 2)
	a, _ := db.Add(randSeq(rng, 2, 10))

	tx := db.Begin()
	tx.Add(randSeq(rng, 2, 12))
	tx.Add(randSeq(rng, 2, 9))
	tx.AppendPoints(a, randSeq(rng, 2, 3).Points)
	ids, err := tx.Commit()
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if len(ids) != 2 || ids[0] != a+1 || ids[1] != a+2 {
		t.Fatalf("batch add ids = %v, want [%d %d]", ids, a+1, a+2)
	}
	if db.Len() != 3 {
		t.Fatalf("Len = %d, want 3", db.Len())
	}

	// A batch containing one invalid op must leave no trace of the rest.
	before := db.Stats()
	bad := db.Begin()
	bad.Add(randSeq(rng, 2, 7))
	bad.Remove(9999)
	if _, err := bad.Commit(); err == nil {
		t.Fatal("Commit of batch with unknown-id remove succeeded")
	}
	if db.Len() != 3 {
		t.Fatalf("failed batch leaked state: Len = %d, want 3", db.Len())
	}
	after := db.Stats()
	if after.LastLSN != before.LastLSN {
		t.Fatalf("failed batch consumed LSN: %d -> %d", before.LastLSN, after.LastLSN)
	}
	// The next add still gets the next dense id.
	id, err := db.Add(randSeq(rng, 2, 5))
	if err != nil || id != a+3 {
		t.Fatalf("post-failure Add = (%d, %v), want id %d", id, err, a+3)
	}
}

func TestAddAllAtomic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := newMem(t, 2)
	seqs := []*core.Sequence{randSeq(rng, 2, 8), randSeq(rng, 2, 12), randSeq(rng, 2, 10)}
	ids, err := db.AddAll(seqs)
	if err != nil {
		t.Fatalf("AddAll: %v", err)
	}
	if len(ids) != 3 || ids[0] != 0 || ids[2] != 2 {
		t.Fatalf("AddAll ids = %v", ids)
	}
	// A batch with an undersized sequence fails whole.
	badSeqs := []*core.Sequence{randSeq(rng, 2, 8), {Points: []geom.Point{}}}
	if _, err := db.AddAll(badSeqs); err == nil {
		t.Fatal("AddAll with empty sequence succeeded")
	}
	if db.Len() != 3 {
		t.Fatalf("failed AddAll leaked: Len = %d, want 3", db.Len())
	}
}

func TestSnapshotIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := newMem(t, 2)
	for i := 0; i < 10; i++ {
		if _, err := db.Add(randSeq(rng, 2, 10)); err != nil {
			t.Fatal(err)
		}
	}
	q := randSeq(rng, 2, 8)
	snap := db.Acquire()
	defer snap.Release()
	epoch := snap.Epoch()
	before, _, err := snap.Search(q, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Commit more writes: the snapshot must not move.
	for i := 0; i < 10; i++ {
		if _, err := db.Add(randSeq(rng, 2, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Remove(0); err != nil {
		t.Fatal(err)
	}
	if snap.Epoch() != epoch || snap.Len() != 10 {
		t.Fatalf("snapshot moved: epoch %d->%d len %d", epoch, snap.Epoch(), snap.Len())
	}
	after, _, err := snap.Search(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("pinned snapshot results changed: %d -> %d matches", len(before), len(after))
	}
	for i := range after {
		if after[i].SeqID != before[i].SeqID || after[i].MinDnorm != before[i].MinDnorm {
			t.Fatalf("pinned snapshot result %d changed", i)
		}
	}
	// The live view does see the writes.
	if db.Len() != 19 {
		t.Fatalf("live Len = %d, want 19", db.Len())
	}
}

// TestCheckpointDrainsPinnedSnapshots: a snapshot pinned before the fold
// cut could see base mutations (its delta filters don't cover commits it
// predates), so the checkpoint must wait for it — without ever blocking
// the snapshot's reads or new commits.
func TestCheckpointDrainsPinnedSnapshots(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	db := newMem(t, 2)
	for i := 0; i < 8; i++ {
		if _, err := db.Add(randSeq(rng, 2, 10)); err != nil {
			t.Fatal(err)
		}
	}
	q := randSeq(rng, 2, 8)
	snap := db.Acquire()
	want, _, err := snap.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- db.Checkpoint() }()
	select {
	case err := <-done:
		t.Fatalf("Checkpoint finished with a pre-cut snapshot pinned: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	// The snapshot still reads, and writers still commit, while the
	// checkpoint waits.
	got, _, err := snap.Search(q, 5)
	if err != nil || len(got) != len(want) {
		t.Fatalf("pinned snapshot read during drain: %d matches, err %v", len(got), err)
	}
	if _, err := db.Add(randSeq(rng, 2, 10)); err != nil {
		t.Fatalf("commit during drain: %v", err)
	}
	snap.Release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Checkpoint did not finish after snapshot release")
	}
}

func TestKNNWithDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	db := newMem(t, 2)
	ref := newRef(t, 2)
	for i := 0; i < 30; i++ {
		s := randSeq(rng, 2, 10+rng.Intn(10))
		if _, err := db.Add(clonePoints(s)); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Add(clonePoints(s)); err != nil {
			t.Fatal(err)
		}
	}
	// Leave half the corpus in the delta.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		s := randSeq(rng, 2, 10+rng.Intn(10))
		if _, err := db.Add(clonePoints(s)); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Add(clonePoints(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Remove(3); err != nil {
		t.Fatal(err)
	}
	if err := ref.Remove(3); err != nil {
		t.Fatal(err)
	}
	q := randSeq(rng, 2, 8)
	for _, k := range []int{1, 5, 12} {
		got, err := db.SearchKNN(q, k)
		if err != nil {
			t.Fatalf("SearchKNN(%d): %v", k, err)
		}
		want, err := ref.SearchKNN(q, k)
		if err != nil {
			t.Fatalf("ref SearchKNN(%d): %v", k, err)
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d results, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i].SeqID != want[i].SeqID || got[i].Dist != want[i].Dist || got[i].Offset != want[i].Offset {
				t.Fatalf("k=%d result %d: got {%d %v %d}, want {%d %v %d}", k, i,
					got[i].SeqID, got[i].Dist, got[i].Offset,
					want[i].SeqID, want[i].Dist, want[i].Offset)
			}
		}
	}
}

func TestExplainFoldsDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db := newMem(t, 2)
	for i := 0; i < 6; i++ {
		if _, err := db.Add(randSeq(rng, 2, 10)); err != nil {
			t.Fatal(err)
		}
	}
	ex, err := db.Explain(randSeq(rng, 2, 8), 3)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if ex == nil {
		t.Fatal("Explain returned nil")
	}
	if s := db.Stats(); s.DeltaAdds != 0 {
		t.Fatalf("Explain left delta unfolded: %+v", s)
	}
}

func TestStatsAndMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	db := newMem(t, 2)
	reg := obs.NewRegistry()
	db.SetMetrics(reg)
	for i := 0; i < 12; i++ {
		if _, err := db.Add(randSeq(rng, 2, 8)); err != nil {
			t.Fatal(err)
		}
	}
	snap := db.Acquire()
	s := db.Stats()
	if s.Commits != 12 || s.Records != 12 {
		t.Fatalf("Commits/Records = %d/%d, want 12/12", s.Commits, s.Records)
	}
	if s.Epoch == 0 || s.Live != 12 || s.DeltaAdds != 12 {
		t.Fatalf("unexpected stats: %+v", s)
	}
	if s.SnapshotsPinned != 1 {
		t.Fatalf("SnapshotsPinned = %d, want 1", s.SnapshotsPinned)
	}
	if s.MeanGroupSize < 1 {
		t.Fatalf("MeanGroupSize = %v", s.MeanGroupSize)
	}
	if s.TailAge <= 0 {
		t.Fatalf("TailAge = %v, want > 0 with unfolded delta", s.TailAge)
	}
	snap.Release()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s := db.Stats(); s.Checkpoints != 1 || s.TailAge != 0 {
		t.Fatalf("post-checkpoint stats: checkpoints=%d tailAge=%v", s.Checkpoints, s.TailAge)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	dump := b.String()
	for _, name := range []string{
		"mdseq_wal_commit_seconds", "mdseq_wal_group_size",
		"mdseq_wal_records_total", "mdseq_wal_checkpoints_total",
		"mdseq_snapshot_pinned", "mdseq_snapshot_age_seconds",
	} {
		if !strings.Contains(dump, name) {
			t.Errorf("metrics dump missing %s", name)
		}
	}
}

func TestClosedDB(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base, _ := core.NewDatabase(core.Options{Dim: 2})
	db, err := Wrap(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Add(randSeq(rng, 2, 8)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := db.Add(randSeq(rng, 2, 8)); err == nil {
		t.Fatal("Add after Close succeeded")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close is idempotent; second call returned %v", err)
	}
}

func TestWrapRejectsDurability(t *testing.T) {
	base, _ := core.NewDatabase(core.Options{Dim: 2})
	defer base.Close()
	db, err := Wrap(base, Options{Dir: t.TempDir()})
	if err == nil {
		db.Close()
		t.Fatal("Wrap accepted a Dir")
	}
}
