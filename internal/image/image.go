// Package image is the image substrate for the paper's second data model
// (Section 1, item 2): "An image is segmented to a number of regions that
// can be ordered appropriately, based on space filling curves … This
// ordering forms a series of regions, each of which is represented by a
// vector of multiple feature values of a region."
//
// It provides an RGB raster type, grid segmentation with per-region mean
// color features, a synthetic image generator (gradients plus colored
// blobs), and the glue that turns a raster into a multidimensional
// sequence in any internal/curve order.
package image

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/geom"
	"repro/internal/video"
)

// Raster is a W×H image of RGB pixels (components in [0,1]), row-major.
// It reuses video.RGB so frame and image tooling compose.
type Raster struct {
	W, H int
	Pix  []video.RGB
}

// NewRaster allocates a zeroed raster.
func NewRaster(w, h int) *Raster {
	return &Raster{W: w, H: h, Pix: make([]video.RGB, w*h)}
}

// At returns the pixel at (x, y).
func (r *Raster) At(x, y int) video.RGB { return r.Pix[y*r.W+x] }

// Set writes the pixel at (x, y).
func (r *Raster) Set(x, y int, c video.RGB) { r.Pix[y*r.W+x] = c }

// GridFeatures segments the raster into a side×side grid of regions and
// returns each region's mean color as a 3-dimensional feature point,
// indexed features[gy][gx]. The raster dimensions must be divisible by
// side.
func GridFeatures(r *Raster, side int) ([][]geom.Point, error) {
	if side < 1 {
		return nil, fmt.Errorf("image: invalid grid side %d", side)
	}
	if r.W%side != 0 || r.H%side != 0 {
		return nil, fmt.Errorf("image: %dx%d raster not divisible into %dx%d grid", r.W, r.H, side, side)
	}
	cw, ch := r.W/side, r.H/side
	out := make([][]geom.Point, side)
	for gy := 0; gy < side; gy++ {
		out[gy] = make([]geom.Point, side)
		for gx := 0; gx < side; gx++ {
			var cr, cg, cb float64
			for y := gy * ch; y < (gy+1)*ch; y++ {
				for x := gx * cw; x < (gx+1)*cw; x++ {
					px := r.At(x, y)
					cr += px.R
					cg += px.G
					cb += px.B
				}
			}
			n := float64(cw * ch)
			out[gy][gx] = geom.Point{cr / n, cg / n, cb / n}
		}
	}
	return out, nil
}

// ToSequence segments the raster into a side×side region grid and orders
// the region features along the given space-filling curve — the complete
// image-to-sequence pipeline of the paper's Section 1.
func ToSequence(r *Raster, side int, order curve.Order) (*core.Sequence, error) {
	features, err := GridFeatures(r, side)
	if err != nil {
		return nil, err
	}
	return curve.LinearizeGrid(features, order)
}

// SynthConfig controls the synthetic image generator.
type SynthConfig struct {
	// W and H size the raster (defaults 64×64).
	W, H int
	// MinBlobs and MaxBlobs bound the number of colored discs
	// (defaults 2 and 5).
	MinBlobs, MaxBlobs int
	// Noise is per-pixel uniform noise (default 0.01).
	Noise float64
}

// DefaultSynthConfig returns the documented defaults.
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{W: 64, H: 64, MinBlobs: 2, MaxBlobs: 5, Noise: 0.01}
}

func (c *SynthConfig) fillDefaults() {
	d := DefaultSynthConfig()
	if c.W == 0 {
		c.W = d.W
	}
	if c.H == 0 {
		c.H = d.H
	}
	if c.MinBlobs == 0 {
		c.MinBlobs = d.MinBlobs
	}
	if c.MaxBlobs == 0 {
		c.MaxBlobs = d.MaxBlobs
	}
	if c.Noise == 0 {
		c.Noise = d.Noise
	}
}

// Synthesize renders a synthetic "photograph": a smooth two-corner color
// gradient background with a few soft-edged colored discs and pixel noise.
func Synthesize(rng *rand.Rand, cfg SynthConfig) (*Raster, error) {
	cfg.fillDefaults()
	if cfg.W < 1 || cfg.H < 1 {
		return nil, fmt.Errorf("image: invalid size %dx%d", cfg.W, cfg.H)
	}
	if cfg.MinBlobs < 0 || cfg.MaxBlobs < cfg.MinBlobs {
		return nil, fmt.Errorf("image: invalid blob range [%d,%d]", cfg.MinBlobs, cfg.MaxBlobs)
	}
	r := NewRaster(cfg.W, cfg.H)
	c0 := video.RGB{R: rng.Float64(), G: rng.Float64(), B: rng.Float64()}
	c1 := video.RGB{R: rng.Float64(), G: rng.Float64(), B: rng.Float64()}

	type blob struct {
		cx, cy, rad float64
		color       video.RGB
	}
	blobs := make([]blob, cfg.MinBlobs+rng.Intn(cfg.MaxBlobs-cfg.MinBlobs+1))
	for i := range blobs {
		blobs[i] = blob{
			cx:    rng.Float64() * float64(cfg.W),
			cy:    rng.Float64() * float64(cfg.H),
			rad:   float64(cfg.W) * (0.05 + 0.15*rng.Float64()),
			color: video.RGB{R: rng.Float64(), G: rng.Float64(), B: rng.Float64()},
		}
	}

	for y := 0; y < cfg.H; y++ {
		for x := 0; x < cfg.W; x++ {
			t := (float64(x)/float64(cfg.W) + float64(y)/float64(cfg.H)) / 2
			px := video.RGB{
				R: c0.R*(1-t) + c1.R*t,
				G: c0.G*(1-t) + c1.G*t,
				B: c0.B*(1-t) + c1.B*t,
			}
			for _, b := range blobs {
				dx, dy := float64(x)-b.cx, float64(y)-b.cy
				d2 := dx*dx + dy*dy
				if d2 < b.rad*b.rad {
					// Soft edge: blend over the outer 30% of the radius.
					w := 1.0
					if frac := d2 / (b.rad * b.rad); frac > 0.49 {
						w = (1 - frac) / 0.51
					}
					px.R = px.R*(1-w) + b.color.R*w
					px.G = px.G*(1-w) + b.color.G*w
					px.B = px.B*(1-w) + b.color.B*w
				}
			}
			px.R = clamp01(px.R + cfg.Noise*(rng.Float64()*2-1))
			px.G = clamp01(px.G + cfg.Noise*(rng.Float64()*2-1))
			px.B = clamp01(px.B + cfg.Noise*(rng.Float64()*2-1))
			r.Set(x, y, px)
		}
	}
	return r, nil
}

// Crop returns a copy of the rectangle [x0,x0+w)×[y0,y0+h).
func (r *Raster) Crop(x0, y0, w, h int) (*Raster, error) {
	if x0 < 0 || y0 < 0 || w < 1 || h < 1 || x0+w > r.W || y0+h > r.H {
		return nil, fmt.Errorf("image: crop [%d,%d,%d,%d] outside %dx%d", x0, y0, w, h, r.W, r.H)
	}
	out := NewRaster(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.Set(x, y, r.At(x0+x, y0+y))
		}
	}
	return out, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
