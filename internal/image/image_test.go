package image

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/video"
)

func TestRasterAccessors(t *testing.T) {
	r := NewRaster(4, 3)
	if r.W != 4 || r.H != 3 || len(r.Pix) != 12 {
		t.Fatalf("shape %+v", r)
	}
	c := video.RGB{R: 0.1, G: 0.2, B: 0.3}
	r.Set(3, 2, c)
	if r.At(3, 2) != c {
		t.Error("At/Set round trip failed")
	}
}

func TestGridFeatures(t *testing.T) {
	// 4x4 raster split 2x2: each region is a flat color.
	r := NewRaster(4, 4)
	colors := []video.RGB{{R: 1}, {G: 1}, {B: 1}, {R: 1, G: 1}}
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			r.Set(x, y, colors[(y/2)*2+(x/2)])
		}
	}
	features, err := GridFeatures(r, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !features[0][0].Equal([]float64{1, 0, 0}) {
		t.Errorf("region (0,0) = %v", features[0][0])
	}
	if !features[1][1].Equal([]float64{1, 1, 0}) {
		t.Errorf("region (1,1) = %v", features[1][1])
	}
}

func TestGridFeaturesValidation(t *testing.T) {
	r := NewRaster(10, 10)
	if _, err := GridFeatures(r, 3); err == nil {
		t.Error("non-divisible grid accepted")
	}
	if _, err := GridFeatures(r, 0); err == nil {
		t.Error("side 0 accepted")
	}
}

func TestSynthesizeShapeAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r, err := Synthesize(rng, SynthConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r.W != 64 || r.H != 64 {
		t.Fatalf("default size %dx%d", r.W, r.H)
	}
	for i, px := range r.Pix {
		for _, v := range []float64{px.R, px.G, px.B} {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %d component %g out of range", i, v)
			}
		}
	}
}

func TestSynthesizeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := Synthesize(rng, SynthConfig{W: -1, H: 8}); err == nil {
		t.Error("negative width accepted")
	}
	if _, err := Synthesize(rng, SynthConfig{MinBlobs: 5, MaxBlobs: 2}); err == nil {
		t.Error("inverted blob range accepted")
	}
}

func TestToSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r, err := Synthesize(rng, SynthConfig{W: 64, H: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range []curve.Order{curve.RowMajor, curve.HilbertOrder, curve.ZOrder} {
		seq, err := ToSequence(r, 16, order)
		if err != nil {
			t.Fatalf("%v: %v", order, err)
		}
		if seq.Len() != 256 || seq.Dim() != 3 {
			t.Fatalf("%v: shape (%d,%d)", order, seq.Len(), seq.Dim())
		}
		if err := seq.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrop(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r, _ := Synthesize(rng, SynthConfig{W: 32, H: 32})
	c, err := r.Crop(8, 8, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if c.W != 16 || c.H != 16 {
		t.Fatalf("crop shape %dx%d", c.W, c.H)
	}
	if c.At(0, 0) != r.At(8, 8) {
		t.Error("crop content shifted")
	}
	if _, err := r.Crop(20, 20, 16, 16); err == nil {
		t.Error("out-of-bounds crop accepted")
	}
	if _, err := r.Crop(0, 0, 0, 4); err == nil {
		t.Error("zero-width crop accepted")
	}
}

// TestImageRetrievalEndToEnd: index synthetic images by Hilbert-ordered
// region sequences and retrieve an image from one of its own patches — the
// paper's "find all images in a database that contain regions similar to
// regions of a given image".
func TestImageRetrievalEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db, err := core.NewDatabase(core.Options{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var seqs []*core.Sequence
	for i := 0; i < 15; i++ {
		r, err := Synthesize(rng, SynthConfig{W: 64, H: 64})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := ToSequence(r, 16, curve.HilbertOrder)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.Add(seq); err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	// Query: a run of 40 consecutive Hilbert regions of image 7.
	q := &core.Sequence{Points: seqs[7].Points[100:140]}
	matches, _, err := db.Search(q, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.SeqID == 7 {
			found = true
		}
	}
	if !found {
		t.Error("image not retrieved from its own patch")
	}
}
