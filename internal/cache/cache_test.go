package cache

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
)

// key builds a distinct Key from an integer, spread across lock shards.
func key(i int) Key {
	return Key{Hi: uint64(i) * 0x9e3779b97f4a7c15, Lo: uint64(i)}
}

// sq builds the 2-D square [lo,hi]² — enough geometry for every test.
func sq(lo, hi float64) geom.Rect {
	return geom.Rect{L: []float64{lo, lo}, H: []float64{hi, hi}}
}

// reg builds a Region over sq(lo, hi) with the given radius.
func reg(lo, hi, radius float64) Region {
	return Region{Rect: sq(lo, hi), Radius: radius}
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(Config{MaxEntries: 8, MaxBytes: 1 << 20, Shards: 1})
	k := key(1)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, c.Seq(), Value{Data: "a", Bytes: 10, Region: reg(0, 1, 0.5)})
	v, ok := c.Get(k)
	if !ok || v.Data.(string) != "a" {
		t.Fatalf("Get = %v, %v; want a, true", v.Data, ok)
	}
	if c.Len() != 1 || c.Bytes() != 10 {
		t.Fatalf("Len=%d Bytes=%d; want 1, 10", c.Len(), c.Bytes())
	}
}

func TestPutDroppedAfterWrite(t *testing.T) {
	c := New(Config{MaxEntries: 8, Shards: 1})
	k := key(1)
	seq := c.Seq() // reader snapshots, then "computes" while a write lands
	c.Invalidate(sq(0, 1))
	c.Put(k, seq, Value{Data: "stale", Bytes: 4, Region: reg(0, 1, 0.5)})
	if _, ok := c.Get(k); ok {
		t.Fatal("Put under a pre-write snapshot was stored")
	}
	if c.Len() != 0 {
		t.Fatalf("Len=%d after refused Put; want 0", c.Len())
	}
	// A current snapshot stores normally.
	c.Put(k, c.Seq(), Value{Data: "fresh", Bytes: 4, Region: reg(0, 1, 0.5)})
	if _, ok := c.Get(k); !ok {
		t.Fatal("Put under the current snapshot was refused")
	}
}

func TestEpochScopeLazyFlush(t *testing.T) {
	c := New(Config{MaxEntries: 8, Shards: 1, Scope: ScopeEpoch})
	k := key(1)
	c.Put(k, c.Seq(), Value{Data: "a", Bytes: 4, Region: reg(0, 1, 0.5)})
	if _, ok := c.Get(k); !ok {
		t.Fatal("miss before any write")
	}
	// Under ScopeEpoch every write flushes everything — even a write whose
	// MBR is nowhere near the entry's region.
	c.Invalidate(sq(100, 101))
	if _, ok := c.Get(k); ok {
		t.Fatal("served an entry born before the write")
	}
	// The stale entry must have been dropped on lookup, not just skipped.
	if c.Len() != 0 {
		t.Fatalf("stale entry retained: Len=%d", c.Len())
	}
}

func TestMBRScopeKillsOnlyIntersecting(t *testing.T) {
	c := New(Config{MaxEntries: 8, Shards: 1, Scope: ScopeMBR})
	near, far, unknown := key(1), key(2), key(3)
	c.Put(near, c.Seq(), Value{Data: "near", Bytes: 4, Region: reg(0, 1, 0.5)})
	c.Put(far, c.Seq(), Value{Data: "far", Bytes: 4, Region: reg(50, 51, 0.5)})
	c.Put(unknown, c.Seq(), Value{Data: "unknown", Bytes: 4}) // zero Region
	// Write lands inside the near entry's reach, 50 units from the far one.
	c.Invalidate(sq(1.2, 1.4))
	if _, ok := c.Get(near); ok {
		t.Fatal("entry within the write's reach survived")
	}
	if _, ok := c.Get(unknown); ok {
		t.Fatal("unknown-region entry survived a write")
	}
	if _, ok := c.Get(far); !ok {
		t.Fatal("entry provably out of the write's reach was invalidated")
	}
	// The far entry keeps serving across unrelated writes indefinitely.
	for i := 0; i < 5; i++ {
		c.Invalidate(sq(float64(10*i), float64(10*i)+1))
	}
	if _, ok := c.Get(far); !ok {
		t.Fatal("entry out of reach of every write was invalidated")
	}
	// An empty write rect means "unknown extent": everything dies.
	c.Invalidate(geom.Rect{})
	if _, ok := c.Get(far); ok {
		t.Fatal("entry survived a write of unknown extent")
	}
}

func TestRegionStale(t *testing.T) {
	w := sq(2, 3)
	cases := []struct {
		name string
		g    Region
		want bool
	}{
		{"disjoint beyond radius", reg(0, 1, 0.5), false},
		{"disjoint within radius", reg(0, 1, 1.5), true},
		{"touching", reg(0, 2, 0), true},
		{"contained", reg(0, 10, 0), true},
		{"empty rect", Region{Radius: 1}, true},
		{"nan radius", Region{Rect: sq(0, 1), Radius: math.NaN()}, true},
		{"negative radius", Region{Rect: sq(0, 1), Radius: -1}, true},
		{"infinite radius", Region{Rect: sq(0, 1), Radius: math.Inf(1)}, true},
		{"dim mismatch", Region{Rect: geom.Rect{L: []float64{0}, H: []float64{1}}, Radius: 9}, true},
	}
	for _, tc := range cases {
		if got := tc.g.stale(w); got != tc.want {
			t.Errorf("%s: stale = %v; want %v", tc.name, got, tc.want)
		}
	}
	// An empty write rect invalidates even a well-formed region.
	if !reg(0, 1, 0.5).stale(geom.Rect{}) {
		t.Error("empty write rect did not invalidate")
	}
}

func TestPartialNeverCached(t *testing.T) {
	c := New(Config{Shards: 1})
	k := key(1)
	c.Put(k, c.Seq(), Value{Data: "partial", Bytes: 4, Partial: true})
	if _, ok := c.Get(k); ok {
		t.Fatal("partial value was cached")
	}
	if c.Len() != 0 {
		t.Fatalf("Len=%d after refused Put; want 0", c.Len())
	}
}

func TestEntryCapEvictsLRU(t *testing.T) {
	c := New(Config{MaxEntries: 3, MaxBytes: 1 << 20, Shards: 1, Policy: PolicyLRU})
	for i := 0; i < 3; i++ {
		c.Put(key(i), c.Seq(), Value{Data: i, Bytes: 1})
	}
	c.Get(key(0)) // refresh 0 so 1 is now the LRU
	c.Put(key(3), c.Seq(), Value{Data: 3, Bytes: 1})
	if c.Len() != 3 {
		t.Fatalf("Len=%d; want 3", c.Len())
	}
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("LRU entry 1 survived eviction")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.Get(key(i)); !ok {
			t.Fatalf("entry %d evicted out of LRU order", i)
		}
	}
}

// TestGDSFEvictsCheapAndAges walks a deterministic insert sequence through
// the GDSF policy: the lowest-priority entry goes first, the watermark
// rises to each victim's priority, and that aging lets a late cheap entry
// outrank an idle mid-cost one inserted under a lower watermark.
func TestGDSFEvictsCheapAndAges(t *testing.T) {
	c := New(Config{MaxEntries: 2, MaxBytes: 1 << 20, Shards: 1, Policy: PolicyGDSF})
	put := func(i int, cost time.Duration) {
		c.Put(key(i), c.Seq(), Value{Data: i, Bytes: 1, Cost: cost})
	}
	put(0, 10)  // pri 10
	put(1, 100) // pri 100
	put(2, 50)  // pri 50 → evicts 0 (pri 10), watermark 10
	if _, ok := c.Get(key(0)); ok {
		t.Fatal("cheapest entry 0 survived; GDSF must evict lowest priority")
	}
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("expensive entry 1 was evicted before the cheap one")
	}
	// Get(1) above bumped 1's frequency: pri is now 200, far above the rest.
	put(3, 45) // pri 10+45=55 → evicts 2 (pri 50), watermark 50
	put(4, 10) // pri 50+10=60 → evicts 3 (pri 55): aging beat 3's higher cost
	if _, ok := c.Get(key(3)); ok {
		t.Fatal("entry 3 survived; the risen watermark should age it out")
	}
	for _, i := range []int{1, 4} {
		if _, ok := c.Get(key(i)); !ok {
			t.Fatalf("entry %d missing from the expected survivor set", i)
		}
	}
}

// TestGDSFFrequencyProtects checks the frequency term: a repeatedly hit
// cheap entry outranks a never-hit peer of equal cost.
func TestGDSFFrequencyProtects(t *testing.T) {
	c := New(Config{MaxEntries: 2, MaxBytes: 1 << 20, Shards: 1, Policy: PolicyGDSF})
	c.Put(key(1), c.Seq(), Value{Data: "hot", Bytes: 1, Cost: 10})
	c.Put(key(2), c.Seq(), Value{Data: "cold", Bytes: 1, Cost: 10})
	for i := 0; i < 5; i++ {
		c.Get(key(1)) // freq 6 → pri 60
	}
	c.Put(key(3), c.Seq(), Value{Data: "new", Bytes: 1, Cost: 15}) // pri 15 → evicts cold (pri 10)
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("cold entry survived over the frequently hit one")
	}
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("frequently hit entry was evicted")
	}
}

// TestGDSFAdmissionSelfEvicts checks admission control: a one-off cheap
// result cannot displace proven expensive entries — it is itself the
// lowest priority in the full shard and leaves immediately.
func TestGDSFAdmissionSelfEvicts(t *testing.T) {
	c := New(Config{MaxEntries: 2, MaxBytes: 1 << 20, Shards: 1, Policy: PolicyGDSF})
	c.Put(key(1), c.Seq(), Value{Data: 1, Bytes: 1, Cost: 1000})
	c.Put(key(2), c.Seq(), Value{Data: 2, Bytes: 1, Cost: 1000})
	c.Put(key(3), c.Seq(), Value{Data: 3, Bytes: 1, Cost: 1}) // pri 1: self-evicted
	if _, ok := c.Get(key(3)); ok {
		t.Fatal("cheap newcomer displaced an expensive entry")
	}
	for _, i := range []int{1, 2} {
		if _, ok := c.Get(key(i)); !ok {
			t.Fatalf("expensive entry %d was displaced by a cheap newcomer", i)
		}
	}
}

func TestByteCapEvicts(t *testing.T) {
	for _, pol := range []Policy{PolicyLRU, PolicyGDSF} {
		t.Run(string(pol), func(t *testing.T) {
			c := New(Config{MaxEntries: 100, MaxBytes: 100, Shards: 1, Policy: pol})
			for i := 0; i < 10; i++ {
				c.Put(key(i), c.Seq(), Value{Data: i, Bytes: 30, Cost: time.Duration(1 + i)})
			}
			if c.Bytes() > 100 {
				t.Fatalf("Bytes=%d exceeds the 100-byte cap", c.Bytes())
			}
			if c.Len() != 3 {
				t.Fatalf("Len=%d; want 3 (3×30 ≤ 100 < 4×30)", c.Len())
			}
			// An oversized value is refused outright.
			c.Put(key(99), c.Seq(), Value{Data: "huge", Bytes: 1000})
			if _, ok := c.Get(key(99)); ok {
				t.Fatal("value above the byte cap was cached")
			}
		})
	}
}

func TestUpdateExistingKeyAdjustsBytes(t *testing.T) {
	c := New(Config{MaxEntries: 8, MaxBytes: 1 << 20, Shards: 1})
	k := key(1)
	c.Put(k, c.Seq(), Value{Data: "a", Bytes: 10})
	c.Put(k, c.Seq(), Value{Data: "b", Bytes: 30})
	if c.Len() != 1 || c.Bytes() != 30 {
		t.Fatalf("Len=%d Bytes=%d; want 1, 30", c.Len(), c.Bytes())
	}
	if v, ok := c.Get(k); !ok || v.Data.(string) != "b" {
		t.Fatalf("Get = %v, %v; want b", v.Data, ok)
	}
}

func TestMetricsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Config{MaxEntries: 2, Shards: 1, Policy: PolicyLRU, Scope: ScopeMBR})
	c.SetMetrics(NewMetrics(reg, "test"))
	l := obs.Label{Key: "cache", Value: "test"}

	near := Region{Rect: sq(0, 1), Radius: 0.1}
	c.Get(key(1))                                                  // miss
	c.Put(key(1), c.Seq(), Value{Bytes: 1, Cost: 10, Region: near})
	c.Get(key(1))                                                  // hit, saves 10ns
	c.Invalidate(sq(10, 11))                                       // far write: shard skipped
	c.Put(key(2), c.Seq(), Value{Bytes: 1, Cost: 0, Region: near})
	c.Invalidate(sq(0.5, 0.6))                                     // near write: kills both
	c.Get(key(1))                                                  // miss
	for i := 3; i <= 5; i++ {                                      // third put evicts one
		c.Put(key(i), c.Seq(), Value{Bytes: 1, Region: near})
	}

	check := func(name string, want uint64) {
		t.Helper()
		if got := reg.Counter(name, "", l).Value(); got != want {
			t.Errorf("%s = %d; want %d", name, got, want)
		}
	}
	check("mdseq_cache_hits_total", 1)
	check("mdseq_cache_misses_total", 2)
	check("mdseq_cache_invalidations_total", 2)
	check("mdseq_cache_write_notifications_total", 2)
	check("mdseq_cache_sweep_skips_total", 1)
	check("mdseq_cache_evictions_total", 1)
	check("mdseq_cache_hit_cost_saved_ns_total", 10)
	if got := reg.Gauge("mdseq_cache_entries", "", l).Value(); got != 2 {
		t.Errorf("mdseq_cache_entries = %g; want 2", got)
	}
	if got := reg.Gauge("mdseq_cache_hit_ratio", "", l).Value(); got != 1.0/3.0 {
		t.Errorf("mdseq_cache_hit_ratio = %g; want 1/3", got)
	}
}

// TestConcurrentCapsHold hammers one cache from many goroutines — puts,
// gets, and write invalidations racing — and checks (under -race) that the
// caps hold both during and after the storm, for every policy × scope
// combination. Caps are per lock shard, so the cross-shard total may not
// exceed the configured maxima.
func TestConcurrentCapsHold(t *testing.T) {
	for _, pol := range []Policy{PolicyLRU, PolicyGDSF} {
		for _, sc := range []Scope{ScopeEpoch, ScopeMBR} {
			t.Run(string(pol)+"/"+string(sc), func(t *testing.T) {
				cfg := Config{MaxEntries: 64, MaxBytes: 64 * 100, Shards: 4, Policy: pol, Scope: sc}
				c := New(cfg)
				c.SetMetrics(NewMetrics(obs.NewRegistry(), "race"))
				var wg sync.WaitGroup
				for w := 0; w < 8; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for i := 0; i < 300; i++ {
							k := key(w*1000 + i)
							g := reg(float64(i%7), float64(i%7)+1, 0.5)
							c.Put(k, c.Seq(), Value{Data: i, Bytes: 100, Cost: time.Duration(i), Region: g})
							c.Get(k)
							c.Get(key(i))
							if i%17 == 0 {
								c.Invalidate(sq(float64(i%5), float64(i%5)+0.5))
							}
						}
					}(w)
				}
				wg.Wait()
				if c.Len() > cfg.MaxEntries {
					t.Fatalf("entry cap breached: Len=%d > %d", c.Len(), cfg.MaxEntries)
				}
				if c.Bytes() > cfg.MaxBytes {
					t.Fatalf("byte cap breached: Bytes=%d > %d", c.Bytes(), cfg.MaxBytes)
				}
			})
		}
	}
}

func TestPurge(t *testing.T) {
	c := New(Config{Shards: 2})
	for i := 0; i < 10; i++ {
		c.Put(key(i), c.Seq(), Value{Bytes: 5, Region: reg(0, 1, 0.1)})
	}
	c.Purge()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("after Purge: Len=%d Bytes=%d; want 0, 0", c.Len(), c.Bytes())
	}
}

func TestShardCountNormalized(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, DefaultShards}, {1, 1}, {3, 4}, {16, 16}, {17, 32}} {
		if got := New(Config{Shards: tc.in}).Config().Shards; got != tc.want {
			t.Errorf("Shards %d normalized to %d; want %d", tc.in, got, tc.want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := New(Config{}).Config()
	if cfg.Policy != PolicyGDSF {
		t.Errorf("default Policy = %q; want %q", cfg.Policy, PolicyGDSF)
	}
	if cfg.Scope != ScopeMBR {
		t.Errorf("default Scope = %q; want %q", cfg.Scope, ScopeMBR)
	}
}

func TestParsePolicyAndScope(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{{"", PolicyGDSF}, {"lru", PolicyLRU}, {"gdsf", PolicyGDSF}} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %q, %v; want %q, nil", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParsePolicy("arc"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
	for _, tc := range []struct {
		in   string
		want Scope
	}{{"", ScopeMBR}, {"epoch", ScopeEpoch}, {"mbr", ScopeMBR}} {
		got, err := ParseScope(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseScope(%q) = %q, %v; want %q, nil", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseScope("table"); err == nil {
		t.Error("ParseScope accepted an unknown scope")
	}
}

func ExampleCache() {
	c := New(Config{MaxEntries: 128}) // defaults: Policy gdsf, Scope mbr
	k := Key{Hi: 1, Lo: 2}
	seq := c.Seq() // snapshot before computing the result
	c.Put(k, seq, Value{
		Data:   "result",
		Bytes:  6,
		Cost:   3 * time.Millisecond, // compute a later hit saves
		Region: Region{Rect: geom.Rect{L: []float64{0, 0}, H: []float64{1, 1}}, Radius: 0.5},
	})
	if v, ok := c.Get(k); ok {
		fmt.Println(v.Data)
	}
	// A write far from the entry's region leaves it servable …
	c.Invalidate(geom.Rect{L: []float64{50, 50}, H: []float64{51, 51}})
	if _, ok := c.Get(k); ok {
		fmt.Println("still cached")
	}
	// … a write within its region (query rect + radius) kills it.
	c.Invalidate(geom.Rect{L: []float64{1.1, 1.1}, H: []float64{1.2, 1.2}})
	if _, ok := c.Get(k); !ok {
		fmt.Println("invalidated")
	}
	// Output:
	// result
	// still cached
	// invalidated
}
