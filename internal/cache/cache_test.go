package cache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
)

// key builds a distinct Key from an integer, spread across lock shards.
func key(i int) Key {
	return Key{Hi: uint64(i) * 0x9e3779b97f4a7c15, Lo: uint64(i)}
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(Config{MaxEntries: 8, MaxBytes: 1 << 20, Shards: 1})
	k := key(1)
	if _, ok := c.Get(k, 0); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, 0, Value{Data: "a", Bytes: 10})
	v, ok := c.Get(k, 0)
	if !ok || v.Data.(string) != "a" {
		t.Fatalf("Get = %v, %v; want a, true", v.Data, ok)
	}
	if c.Len() != 1 || c.Bytes() != 10 {
		t.Fatalf("Len=%d Bytes=%d; want 1, 10", c.Len(), c.Bytes())
	}
}

func TestEpochMismatchInvalidates(t *testing.T) {
	c := New(Config{MaxEntries: 8, Shards: 1})
	k := key(1)
	c.Put(k, 3, Value{Data: "old", Bytes: 4})
	if _, ok := c.Get(k, 4); ok {
		t.Fatal("served an entry from a past epoch")
	}
	// The stale entry must have been dropped, not just skipped.
	if c.Len() != 0 {
		t.Fatalf("stale entry retained: Len=%d", c.Len())
	}
	// An entry stamped "newer" than the asked-for epoch is equally stale
	// (the asking database can only have moved forward; a mismatch in
	// either direction means the entry answers a different corpus).
	c.Put(k, 9, Value{Data: "new", Bytes: 4})
	if _, ok := c.Get(k, 8); ok {
		t.Fatal("served an entry from a different epoch")
	}
}

func TestPartialNeverCached(t *testing.T) {
	c := New(Config{Shards: 1})
	k := key(1)
	c.Put(k, 0, Value{Data: "partial", Bytes: 4, Partial: true})
	if _, ok := c.Get(k, 0); ok {
		t.Fatal("partial value was cached")
	}
	if c.Len() != 0 {
		t.Fatalf("Len=%d after refused Put; want 0", c.Len())
	}
}

func TestEntryCapEvictsLRU(t *testing.T) {
	c := New(Config{MaxEntries: 3, MaxBytes: 1 << 20, Shards: 1})
	for i := 0; i < 3; i++ {
		c.Put(key(i), 0, Value{Data: i, Bytes: 1})
	}
	c.Get(key(0), 0) // refresh 0 so 1 is now the LRU
	c.Put(key(3), 0, Value{Data: 3, Bytes: 1})
	if c.Len() != 3 {
		t.Fatalf("Len=%d; want 3", c.Len())
	}
	if _, ok := c.Get(key(1), 0); ok {
		t.Fatal("LRU entry 1 survived eviction")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.Get(key(i), 0); !ok {
			t.Fatalf("entry %d evicted out of LRU order", i)
		}
	}
}

func TestByteCapEvicts(t *testing.T) {
	c := New(Config{MaxEntries: 100, MaxBytes: 100, Shards: 1})
	for i := 0; i < 10; i++ {
		c.Put(key(i), 0, Value{Data: i, Bytes: 30})
	}
	if c.Bytes() > 100 {
		t.Fatalf("Bytes=%d exceeds the 100-byte cap", c.Bytes())
	}
	if c.Len() != 3 {
		t.Fatalf("Len=%d; want 3 (3×30 ≤ 100 < 4×30)", c.Len())
	}
	// An oversized value is refused outright.
	c.Put(key(99), 0, Value{Data: "huge", Bytes: 1000})
	if _, ok := c.Get(key(99), 0); ok {
		t.Fatal("value above the byte cap was cached")
	}
}

func TestUpdateExistingKeyAdjustsBytes(t *testing.T) {
	c := New(Config{MaxEntries: 8, MaxBytes: 1 << 20, Shards: 1})
	k := key(1)
	c.Put(k, 0, Value{Data: "a", Bytes: 10})
	c.Put(k, 1, Value{Data: "b", Bytes: 30})
	if c.Len() != 1 || c.Bytes() != 30 {
		t.Fatalf("Len=%d Bytes=%d; want 1, 30", c.Len(), c.Bytes())
	}
	if v, ok := c.Get(k, 1); !ok || v.Data.(string) != "b" {
		t.Fatalf("Get = %v, %v; want b under epoch 1", v.Data, ok)
	}
}

func TestMetricsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Config{MaxEntries: 2, Shards: 1})
	c.SetMetrics(NewMetrics(reg, "test"))
	l := obs.Label{Key: "cache", Value: "test"}

	c.Get(key(1), 0)                         // miss
	c.Put(key(1), 0, Value{Bytes: 1})        //
	c.Get(key(1), 0)                         // hit
	c.Get(key(1), 7)                         // invalidation + miss
	c.Put(key(1), 0, Value{Bytes: 1})        //
	c.Put(key(2), 0, Value{Bytes: 1})        //
	c.Put(key(3), 0, Value{Bytes: 1})        // evicts key(1)

	check := func(name string, want uint64) {
		t.Helper()
		if got := reg.Counter(name, "", l).Value(); got != want {
			t.Errorf("%s = %d; want %d", name, got, want)
		}
	}
	check("mdseq_cache_hits_total", 1)
	check("mdseq_cache_misses_total", 2)
	check("mdseq_cache_invalidations_total", 1)
	check("mdseq_cache_evictions_total", 1)
	if got := reg.Gauge("mdseq_cache_entries", "", l).Value(); got != 2 {
		t.Errorf("mdseq_cache_entries = %g; want 2", got)
	}
	if got := reg.Gauge("mdseq_cache_hit_ratio", "", l).Value(); got != 1.0/3.0 {
		t.Errorf("mdseq_cache_hit_ratio = %g; want 1/3", got)
	}
}

// TestConcurrentCapsHold hammers one cache from many goroutines with
// distinct keys and checks (under -race) that the caps hold both during
// and after the storm. Caps are per lock shard, so the cross-shard total
// may not exceed the configured maxima.
func TestConcurrentCapsHold(t *testing.T) {
	cfg := Config{MaxEntries: 64, MaxBytes: 64 * 100, Shards: 4}
	c := New(cfg)
	c.SetMetrics(NewMetrics(obs.NewRegistry(), "race"))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key(w*1000 + i)
				c.Put(k, uint64(i%3), Value{Data: i, Bytes: 100})
				c.Get(k, uint64(i%3))
				c.Get(key(i), uint64(i%2))
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > cfg.MaxEntries {
		t.Fatalf("entry cap breached: Len=%d > %d", c.Len(), cfg.MaxEntries)
	}
	if c.Bytes() > cfg.MaxBytes {
		t.Fatalf("byte cap breached: Bytes=%d > %d", c.Bytes(), cfg.MaxBytes)
	}
}

func TestPurge(t *testing.T) {
	c := New(Config{Shards: 2})
	for i := 0; i < 10; i++ {
		c.Put(key(i), 0, Value{Bytes: 5})
	}
	c.Purge()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("after Purge: Len=%d Bytes=%d; want 0, 0", c.Len(), c.Bytes())
	}
}

func TestShardCountNormalized(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, DefaultShards}, {1, 1}, {3, 4}, {16, 16}, {17, 32}} {
		if got := New(Config{Shards: tc.in}).Config().Shards; got != tc.want {
			t.Errorf("Shards %d normalized to %d; want %d", tc.in, got, tc.want)
		}
	}
}

func ExampleCache() {
	c := New(Config{MaxEntries: 128})
	k := Key{Hi: 1, Lo: 2}
	epoch := uint64(0) // snapshot the database epoch before computing
	c.Put(k, epoch, Value{Data: "result", Bytes: 6})
	if v, ok := c.Get(k, epoch); ok {
		fmt.Println(v.Data)
	}
	if _, ok := c.Get(k, epoch+1); !ok { // a write advanced the epoch
		fmt.Println("stale")
	}
	// Output:
	// result
	// stale
}
