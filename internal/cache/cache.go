// Package cache is a sharded, epoch-invalidated LRU for query results.
//
// The similarity-search workloads of the paper's motivating applications
// (video streams, image archives) repeat queries heavily, and every phase
// of the three-phase search — query segmentation, R*-tree probing, Dnorm
// refinement — is pure with respect to the corpus. A result computed at
// corpus version E is therefore exactly reusable until the next write.
// This package captures that with a write epoch: the owning database
// keeps a monotonically increasing epoch counter, bumps it on every
// Add/Remove/Append, and passes the value it observed *before* running a
// query into Put. Get compares the stored epoch against the database's
// current one; any mismatch is a miss (and lazily evicts the stale
// entry), so a single atomic increment invalidates the whole cache
// without the writer ever touching cache locks or readers blocking on
// the writer.
//
// The store itself is a fixed-capacity LRU sharded across independently
// locked segments (FNV fingerprints spread keys uniformly), with both an
// entry cap and an approximate byte cap so operators can bound memory,
// not just object count. Keys are 128-bit fingerprints of the query
// material (points, ε, partitioning parameters, query kind), computed by
// the caller; with 2^128 key space, accidental collisions are beyond
// reach of any realistic workload, so the cache never stores the raw
// query for verification.
//
// Partial results (a sharded scatter that degraded to a subset of
// shards) are never cached: a partial answer reflects one scatter's
// failures, not a property of the key, and serving it later could mask a
// now-healthy shard. Put refuses values flagged Partial.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Key is a 128-bit query fingerprint. Callers build it from everything
// that determines a result: the query points, the threshold, the
// partitioning parameters, and a tag for the query kind (range / kNN /
// batch member). Two independent 64-bit FNV-1a streams keep the
// collision probability negligible without storing query material.
type Key struct {
	// Hi and Lo are the two independent hash streams.
	Hi, Lo uint64
}

// Value is one cached query result with its cost accounting.
type Value struct {
	// Data is the cached result (matches, kNN lists, merged scatter
	// answers — opaque to the cache). Consumers must treat it as
	// read-only: the same value is handed to every hit.
	Data any
	// Bytes is the approximate retained size of Data, charged against
	// Config.MaxBytes. Zero-byte values are legal but weaken the byte
	// cap; callers should estimate honestly.
	Bytes int
	// Partial marks a degraded scatter-gather result. Put refuses
	// partial values — see the package comment.
	Partial bool
}

// Config sizes a Cache.
type Config struct {
	// MaxEntries caps the number of cached results across all lock
	// shards (0 → DefaultMaxEntries). The cap is enforced per shard
	// (MaxEntries/Shards each), so it is approximate under skew.
	MaxEntries int
	// MaxBytes caps the summed Value.Bytes across all lock shards
	// (0 → DefaultMaxBytes). Enforced per shard, like MaxEntries.
	MaxBytes int64
	// Shards is the lock-shard count (0 → DefaultShards; rounded up to
	// a power of two). More shards means less contention under
	// concurrent queries at a small fixed memory cost.
	Shards int
}

// Defaults for the zero Config.
const (
	// DefaultMaxEntries is the entry cap when Config.MaxEntries is 0.
	DefaultMaxEntries = 4096
	// DefaultMaxBytes is the byte cap when Config.MaxBytes is 0 (64 MiB).
	DefaultMaxBytes = 64 << 20
	// DefaultShards is the lock-shard count when Config.Shards is 0.
	DefaultShards = 16
)

// withDefaults resolves zero fields and normalizes the shard count.
func (c Config) withDefaults() Config {
	if c.MaxEntries <= 0 {
		c.MaxEntries = DefaultMaxEntries
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = DefaultMaxBytes
	}
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	n := 1
	for n < c.Shards {
		n <<= 1
	}
	c.Shards = n
	return c
}

// Cache is a sharded LRU of epoch-stamped query results, safe for
// concurrent use. The zero Cache is not usable; construct with New.
type Cache struct {
	cfg    Config
	shards []lockShard
	mask   uint64

	entries atomic.Int64 // live entries across shards
	bytes   atomic.Int64 // summed Value.Bytes across shards
	met     atomic.Pointer[Metrics]
}

// entry is one cached result plus the epoch it was computed under.
type entry struct {
	key   Key
	epoch uint64
	val   Value
}

// lockShard is one independently locked LRU segment.
type lockShard struct {
	mu         sync.Mutex
	ll         *list.List // front = most recent; values are *entry
	items      map[Key]*list.Element
	bytes      int64
	maxEntries int
	maxBytes   int64
}

// New creates a cache sized by cfg (zero fields take the package
// defaults).
func New(cfg Config) *Cache {
	cfg = cfg.withDefaults()
	c := &Cache{cfg: cfg, shards: make([]lockShard, cfg.Shards), mask: uint64(cfg.Shards - 1)}
	perEntries := (cfg.MaxEntries + cfg.Shards - 1) / cfg.Shards
	if perEntries < 1 {
		perEntries = 1
	}
	perBytes := cfg.MaxBytes / int64(cfg.Shards)
	if perBytes < 1 {
		perBytes = 1
	}
	for i := range c.shards {
		c.shards[i] = lockShard{
			ll:         list.New(),
			items:      make(map[Key]*list.Element),
			maxEntries: perEntries,
			maxBytes:   perBytes,
		}
	}
	return c
}

// Config returns the resolved configuration (defaults applied, shard
// count normalized).
func (c *Cache) Config() Config { return c.cfg }

// shard maps a key to its lock shard.
func (c *Cache) shard(k Key) *lockShard { return &c.shards[k.Hi&c.mask] }

// Get returns the value cached under k if it was stored at exactly the
// given epoch. An entry stored under any other epoch is stale: it is
// evicted on the spot, counted as an invalidation, and reported as a
// miss.
func (c *Cache) Get(k Key, epoch uint64) (Value, bool) {
	s := c.shard(k)
	s.mu.Lock()
	el, ok := s.items[k]
	if !ok {
		s.mu.Unlock()
		c.met.Load().miss()
		return Value{}, false
	}
	e := el.Value.(*entry)
	if e.epoch != epoch {
		s.remove(el, c)
		s.mu.Unlock()
		m := c.met.Load()
		m.invalidate()
		m.miss()
		return Value{}, false
	}
	s.ll.MoveToFront(el)
	v := e.val
	s.mu.Unlock()
	c.met.Load().hit()
	return v, true
}

// Put stores v under k, stamped with the epoch the caller observed
// before computing it. Values flagged Partial, and values larger than a
// whole lock shard's byte budget, are dropped. An existing entry under k
// is replaced (freshest epoch wins). Least-recently-used entries are
// evicted until both shard caps hold.
func (c *Cache) Put(k Key, epoch uint64, v Value) {
	if v.Partial {
		return
	}
	s := c.shard(k)
	if int64(v.Bytes) > s.maxBytes {
		return
	}
	s.mu.Lock()
	if el, ok := s.items[k]; ok {
		e := el.Value.(*entry)
		s.bytes += int64(v.Bytes) - int64(e.val.Bytes)
		c.bytes.Add(int64(v.Bytes) - int64(e.val.Bytes))
		e.epoch, e.val = epoch, v
		s.ll.MoveToFront(el)
	} else {
		el := s.ll.PushFront(&entry{key: k, epoch: epoch, val: v})
		s.items[k] = el
		s.bytes += int64(v.Bytes)
		c.bytes.Add(int64(v.Bytes))
		c.entries.Add(1)
	}
	evicted := 0
	for (s.ll.Len() > s.maxEntries || s.bytes > s.maxBytes) && s.ll.Len() > 1 {
		s.remove(s.ll.Back(), c)
		evicted++
	}
	s.mu.Unlock()
	m := c.met.Load()
	for i := 0; i < evicted; i++ {
		m.evict()
	}
	m.shape(c)
}

// remove unlinks el from the shard. Caller holds s.mu.
func (s *lockShard) remove(el *list.Element, c *Cache) {
	e := el.Value.(*entry)
	s.ll.Remove(el)
	delete(s.items, e.key)
	s.bytes -= int64(e.val.Bytes)
	c.bytes.Add(-int64(e.val.Bytes))
	c.entries.Add(-1)
}

// Len returns the number of live entries across all shards.
func (c *Cache) Len() int { return int(c.entries.Load()) }

// Bytes returns the summed Value.Bytes of all live entries.
func (c *Cache) Bytes() int64 { return c.bytes.Load() }

// Purge drops every entry (used by tests and topology changes). Counts
// nothing into the metrics.
func (c *Cache) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for s.ll.Len() > 0 {
			s.remove(s.ll.Back(), c)
		}
		s.mu.Unlock()
	}
	c.met.Load().shape(c)
}
