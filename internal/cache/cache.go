// Package cache is a sharded, cost-aware result cache for query results
// with geometry-scoped (MBR) write invalidation.
//
// The similarity-search workloads of the paper's motivating applications
// (video streams, image archives) repeat queries heavily, and every phase
// of the three-phase search — query segmentation, R*-tree probing, Dnorm
// refinement — is pure with respect to the corpus, so a computed result
// is exactly reusable until a write changes the part of the corpus it
// depends on. Query cost is also wildly non-uniform: a high-dimensional
// kNN with poor pruning burns orders of magnitude more CPU than a tiny
// range probe. The cache therefore tracks, per entry, both the compute
// cost of the run that produced it (Value.Cost, the search's CPUTime) and
// the geometric region the result depends on (Value.Region), and offers a
// choice along both axes:
//
// Eviction policy (Config.Policy). PolicyLRU is classic least-recently-
// used. PolicyGDSF (the default) is Greedy-Dual-Size-Frequency: each
// entry carries a priority H = L + frequency × cost / size, where L is a
// per-lock-shard aging watermark that rises to the evicted victim's H, so
// long-idle entries age out no matter how expensive they once were, while
// a frequently hit, expensive-to-recompute entry outranks a crowd of
// cheap ones. Admission is by self-eviction: a new entry enters with
// H = L + cost/size and is immediately evicted if it is itself the lowest
// priority in a full shard, so one-off cheap results cannot displace a
// proven expensive one.
//
// Invalidation scope (Config.Scope). Writes are reported to the cache
// through Invalidate(w), where w is the MBR of the written sequence.
// ScopeEpoch reproduces the original whole-cache flush: Invalidate only
// advances the cache's write-sequence counter and Get treats any entry
// born under an older counter as stale (lazily evicting it), so the
// writer never takes a cache lock. ScopeMBR (the default) keeps every
// entry whose recorded region provably cannot be affected: an entry with
// region (rect R, radius r) is killed only when MinDist(R, w) ≤ r — the
// same conservative rectangle-distance bound (the paper's Dmbr, Lemma 1)
// that makes the search itself admit no false dismissals. Because Dmbr
// lower-bounds every point-pair distance, a write whose MBR is farther
// than r from the query's MBR cannot add, remove, or alter any result
// within radius r, so surviving hits are never stale (see DESIGN.md §14
// for the full argument). Each lock shard keeps a coarse summary (union
// rect + max radius) so a write sweep skips entire shards it cannot
// intersect, keeping the write path ~O(intersecting entries) rather than
// O(cache).
//
// Writers racing queries are handled by a write-sequence protocol: a
// reader snapshots Seq() before running its query and passes the value to
// Put, which drops the entry if any write arrived in between — the sweep
// for that write may already have passed the entry's lock shard, so a
// late store can never slip a stale result in behind it.
//
// The store itself is sharded across independently locked segments
// (FNV fingerprints spread keys uniformly), with both an entry cap and an
// approximate byte cap so operators can bound memory, not just object
// count. Keys are 128-bit fingerprints of the query material (points, ε,
// partitioning parameters, query kind), computed by the caller; with
// 2^128 key space, accidental collisions are beyond reach of any
// realistic workload, so the cache never stores the raw query for
// verification.
//
// Partial results (a sharded scatter that degraded to a subset of
// shards) are never cached: a partial answer reflects one scatter's
// failures, not a property of the key, and serving it later could mask a
// now-healthy shard. Put refuses values flagged Partial.
package cache

import (
	"container/list"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
)

// Key is a 128-bit query fingerprint. Callers build it from everything
// that determines a result: the query points, the threshold, the
// partitioning parameters, and a tag for the query kind (range / kNN /
// batch member). Two independent 64-bit FNV-1a streams keep the
// collision probability negligible without storing query material.
type Key struct {
	// Hi and Lo are the two independent hash streams.
	Hi, Lo uint64
}

// Region is the geometric footprint a cached result depends on: every
// corpus point that could influence the result lies within Radius
// (under Euclidean distance) of Rect. For a range query that is the
// query's bounding rectangle and ε; for a complete kNN answer it is the
// query's bounding rectangle and the k-th result distance. An empty
// Rect, an infinite Radius, or a NaN Radius all mean "unknown extent":
// such an entry is invalidated by every write.
type Region struct {
	// Rect bounds the query material the result was computed from.
	Rect geom.Rect
	// Radius is the distance beyond Rect the result can still depend on.
	Radius float64
}

// stale reports whether a write covering w can affect a result with this
// region. It is deliberately conservative: unknown or unbounded regions,
// empty write rectangles, and dimensionality mismatches all count as
// affected. Otherwise the test is MinDist(Rect, w) ≤ Radius — Dmbr
// lower-bounds the distance between any point pair drawn from the two
// rectangles, so a write failing it cannot change the result.
func (g Region) stale(w geom.Rect) bool {
	if g.Rect.IsEmpty() || w.IsEmpty() || g.Rect.Dim() != w.Dim() {
		return true
	}
	if !(g.Radius >= 0) || math.IsInf(g.Radius, 1) { // NaN or +Inf
		return true
	}
	return g.Rect.MinDistSq(w) <= g.Radius*g.Radius
}

// Value is one cached query result with its cost accounting.
type Value struct {
	// Data is the cached result (matches, kNN lists, merged scatter
	// answers — opaque to the cache). Consumers must treat it as
	// read-only: the same value is handed to every hit.
	Data any
	// Bytes is the approximate retained size of Data, charged against
	// Config.MaxBytes and used as the GDSF size term. Zero-byte values
	// are legal but weaken the byte cap; callers should estimate
	// honestly.
	Bytes int
	// Cost is the compute the result took to produce (the search's
	// CPUTime) — the GDSF cost term, and the amount every later hit
	// saves. Non-positive costs are floored to one nanosecond so a
	// zero-cost entry still ages normally.
	Cost time.Duration
	// Region is the result's geometric footprint for MBR-scoped
	// invalidation. The zero Region means "unknown": correct, but every
	// write then invalidates the entry.
	Region Region
	// Partial marks a degraded scatter-gather result. Put refuses
	// partial values — see the package comment.
	Partial bool
}

// Policy selects the eviction policy.
type Policy string

// The supported eviction policies.
const (
	// PolicyLRU evicts the least-recently-used entry first.
	PolicyLRU Policy = "lru"
	// PolicyGDSF evicts by Greedy-Dual-Size-Frequency priority
	// H = L + frequency × cost / size with a rising aging watermark L.
	PolicyGDSF Policy = "gdsf"
)

// ParsePolicy converts a flag string into a Policy ("" selects the
// default, PolicyGDSF).
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case "":
		return PolicyGDSF, nil
	case PolicyLRU, PolicyGDSF:
		return Policy(s), nil
	}
	return "", fmt.Errorf("cache: unknown policy %q (want %q or %q)", s, PolicyLRU, PolicyGDSF)
}

// Scope selects how write notifications invalidate entries.
type Scope string

// The supported invalidation scopes.
const (
	// ScopeEpoch flushes the whole cache on every write: Invalidate only
	// advances the write-sequence counter and entries born earlier die
	// lazily on lookup. The writer never takes a cache lock.
	ScopeEpoch Scope = "epoch"
	// ScopeMBR kills only entries whose recorded region the write's MBR
	// can reach (MinDist ≤ radius); everything else keeps serving.
	ScopeMBR Scope = "mbr"
)

// ParseScope converts a flag string into a Scope ("" selects the
// default, ScopeMBR).
func ParseScope(s string) (Scope, error) {
	switch Scope(s) {
	case "":
		return ScopeMBR, nil
	case ScopeEpoch, ScopeMBR:
		return Scope(s), nil
	}
	return "", fmt.Errorf("cache: unknown scope %q (want %q or %q)", s, ScopeEpoch, ScopeMBR)
}

// Config sizes a Cache and selects its policies.
type Config struct {
	// MaxEntries caps the number of cached results across all lock
	// shards (0 → DefaultMaxEntries). The cap is enforced per shard
	// (MaxEntries/Shards each), so it is approximate under skew.
	MaxEntries int
	// MaxBytes caps the summed Value.Bytes across all lock shards
	// (0 → DefaultMaxBytes). Enforced per shard, like MaxEntries.
	MaxBytes int64
	// Shards is the lock-shard count (0 → DefaultShards; rounded up to
	// a power of two). More shards means less contention under
	// concurrent queries at a small fixed memory cost.
	Shards int
	// Policy is the eviction policy ("" → PolicyGDSF).
	Policy Policy
	// Scope is the write-invalidation scope ("" → ScopeMBR).
	Scope Scope
}

// Defaults for the zero Config.
const (
	// DefaultMaxEntries is the entry cap when Config.MaxEntries is 0.
	DefaultMaxEntries = 4096
	// DefaultMaxBytes is the byte cap when Config.MaxBytes is 0 (64 MiB).
	DefaultMaxBytes = 64 << 20
	// DefaultShards is the lock-shard count when Config.Shards is 0.
	DefaultShards = 16
)

// withDefaults resolves zero fields and normalizes the shard count.
func (c Config) withDefaults() Config {
	if c.MaxEntries <= 0 {
		c.MaxEntries = DefaultMaxEntries
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = DefaultMaxBytes
	}
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	n := 1
	for n < c.Shards {
		n <<= 1
	}
	c.Shards = n
	if c.Policy == "" {
		c.Policy = PolicyGDSF
	}
	if c.Scope == "" {
		c.Scope = ScopeMBR
	}
	return c
}

// Cache is a sharded, cost-aware query-result cache, safe for concurrent
// use. The zero Cache is not usable; construct with New.
type Cache struct {
	cfg    Config
	gdsf   bool // cfg.Policy == PolicyGDSF, hoisted out of the hot path
	shards []lockShard
	mask   uint64

	// seq counts write notifications (Invalidate calls). Readers
	// snapshot it before running a query and pass it to Put, which drops
	// the entry if the counter moved — see the package comment.
	seq atomic.Uint64

	entries atomic.Int64 // live entries across shards
	bytes   atomic.Int64 // summed Value.Bytes across shards
	met     atomic.Pointer[Metrics]
}

// entry is one cached result with its replacement-policy state.
type entry struct {
	key Key
	// seq is the write-sequence value the entry was stored under. Under
	// ScopeEpoch a lookup requires it to still be current.
	seq uint64
	val Value

	// freq and pri are the GDSF frequency count and priority H; hi is
	// the entry's index in the shard's min-heap.
	freq uint64
	pri  float64
	hi   int
	// el is the entry's node in the LRU list (PolicyLRU only).
	el *list.Element
}

// lockShard is one independently locked cache segment.
type lockShard struct {
	mu    sync.Mutex
	gdsf  bool
	items map[Key]*entry
	ll    *list.List // LRU order, front = most recent (PolicyLRU)
	heap  []*entry   // min-heap by pri (PolicyGDSF)

	bytes      int64
	maxEntries int
	maxBytes   int64

	// watermark is the GDSF aging term L: it rises to each evicted
	// victim's priority, so entries untouched since long before the last
	// eviction rank below anything inserted or hit afterwards.
	watermark float64

	// Region summary for MBR-scoped invalidation: sum is the union of
	// every entry's region rect and sumRadius the largest radius, so a
	// write w with MinDist(sum, w) > sumRadius cannot touch any entry
	// here and the sweep skips the shard without walking it. sumAll is
	// set when any entry's region is unknown or unbounded (the summary
	// then cannot exclude anything). The summary only grows between
	// sweeps; each sweep rebuilds it from the survivors.
	sum       geom.Rect
	sumRadius float64
	sumAll    bool
}

// New creates a cache sized by cfg (zero fields take the package
// defaults).
func New(cfg Config) *Cache {
	cfg = cfg.withDefaults()
	c := &Cache{
		cfg:    cfg,
		gdsf:   cfg.Policy == PolicyGDSF,
		shards: make([]lockShard, cfg.Shards),
		mask:   uint64(cfg.Shards - 1),
	}
	perEntries := (cfg.MaxEntries + cfg.Shards - 1) / cfg.Shards
	if perEntries < 1 {
		perEntries = 1
	}
	perBytes := cfg.MaxBytes / int64(cfg.Shards)
	if perBytes < 1 {
		perBytes = 1
	}
	for i := range c.shards {
		c.shards[i] = lockShard{
			gdsf:       c.gdsf,
			items:      make(map[Key]*entry),
			ll:         list.New(),
			maxEntries: perEntries,
			maxBytes:   perBytes,
		}
	}
	return c
}

// Config returns the resolved configuration (defaults applied, shard
// count normalized).
func (c *Cache) Config() Config { return c.cfg }

// Seq returns the current write-sequence counter. Snapshot it before
// running a query and pass the snapshot to Put; Put drops the store when
// any write notification arrived in between, so a result computed
// against a pre-write corpus can never outlive the sweep that should
// have killed it.
func (c *Cache) Seq() uint64 { return c.seq.Load() }

// shard maps a key to its lock shard.
func (c *Cache) shard(k Key) *lockShard { return &c.shards[k.Hi&c.mask] }

// Get returns the value cached under k. Under ScopeEpoch an entry stored
// before the latest write notification is stale: it is evicted on the
// spot, counted as an invalidation, and reported as a miss. Under
// ScopeMBR every stored entry is servable — writes that could have
// affected it already removed it eagerly.
func (c *Cache) Get(k Key) (Value, bool) {
	s := c.shard(k)
	s.mu.Lock()
	e, ok := s.items[k]
	if !ok {
		s.mu.Unlock()
		c.met.Load().miss()
		return Value{}, false
	}
	if c.cfg.Scope == ScopeEpoch && e.seq != c.seq.Load() {
		s.removeEntry(e, c)
		s.mu.Unlock()
		m := c.met.Load()
		m.invalidate(1)
		m.miss()
		m.shape(c)
		return Value{}, false
	}
	s.touch(e)
	v := e.val
	s.mu.Unlock()
	c.met.Load().hit(v.Cost)
	return v, true
}

// touch registers an access for the replacement policy: LRU moves the
// entry to the front; GDSF bumps its frequency and recomputes its
// priority against the current watermark. Caller holds s.mu.
func (s *lockShard) touch(e *entry) {
	if s.gdsf {
		e.freq++
		e.pri = s.watermark + e.score()
		s.heapFix(e.hi)
		return
	}
	s.ll.MoveToFront(e.el)
}

// score is the GDSF frequency × cost / size term (the priority above the
// aging watermark). Cost is floored to one nanosecond and size to one
// byte so degenerate values still order sanely.
func (e *entry) score() float64 {
	cost := float64(e.val.Cost)
	if cost < 1 {
		cost = 1
	}
	size := float64(e.val.Bytes)
	if size < 1 {
		size = 1
	}
	return float64(e.freq) * cost / size
}

// Put stores v under k, where seq is the Seq() snapshot taken before the
// result was computed. The store is dropped when any write notification
// arrived since the snapshot (the result may predate a write whose sweep
// already passed), when v is flagged Partial, or when v alone exceeds a
// whole lock shard's byte budget. An existing entry under k is replaced.
// Entries are then evicted — by recency (PolicyLRU) or lowest GDSF
// priority (PolicyGDSF) — until both shard caps hold; under GDSF the
// just-stored entry may itself be the victim (admission control).
func (c *Cache) Put(k Key, seq uint64, v Value) {
	if v.Partial {
		return
	}
	s := c.shard(k)
	if int64(v.Bytes) > s.maxBytes {
		return
	}
	s.mu.Lock()
	if c.seq.Load() != seq {
		s.mu.Unlock()
		return
	}
	if e, ok := s.items[k]; ok {
		delta := int64(v.Bytes) - int64(e.val.Bytes)
		s.bytes += delta
		c.bytes.Add(delta)
		e.seq, e.val = seq, v
		s.touch(e)
	} else {
		e := &entry{key: k, seq: seq, val: v, freq: 1}
		if s.gdsf {
			e.pri = s.watermark + e.score()
			s.heapPush(e)
		} else {
			e.el = s.ll.PushFront(e)
		}
		s.items[k] = e
		s.bytes += int64(v.Bytes)
		c.bytes.Add(int64(v.Bytes))
		c.entries.Add(1)
	}
	s.growSummary(v.Region)
	evicted := 0
	for (len(s.items) > s.maxEntries || s.bytes > s.maxBytes) && len(s.items) > 0 {
		victim := s.victim()
		if s.gdsf {
			s.watermark = victim.pri
		}
		s.removeEntry(victim, c)
		evicted++
	}
	s.mu.Unlock()
	m := c.met.Load()
	m.evict(evicted)
	m.shape(c)
}

// victim returns the entry the policy evicts next. Caller holds s.mu and
// has checked the shard is non-empty.
func (s *lockShard) victim() *entry {
	if s.gdsf {
		return s.heap[0]
	}
	return s.ll.Back().Value.(*entry)
}

// Invalidate reports a completed write covering the MBR w. It always
// advances the write-sequence counter (failing every in-flight Put that
// predates the write). Under ScopeEpoch that is all — entries die lazily
// on lookup. Under ScopeMBR it sweeps the lock shards, removing exactly
// the entries whose regions the write can reach and skipping — via the
// per-shard summaries — shards it provably cannot touch. Pass the empty
// Rect when the write's extent is unknown; everything is then
// invalidated.
func (c *Cache) Invalidate(w geom.Rect) {
	c.seq.Add(1)
	m := c.met.Load()
	m.write()
	if c.cfg.Scope == ScopeEpoch {
		return
	}
	removed, skipped := 0, 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		if len(s.items) == 0 {
			s.mu.Unlock()
			continue
		}
		if !s.sumAll && !(Region{Rect: s.sum, Radius: s.sumRadius}).stale(w) {
			skipped++
			s.mu.Unlock()
			continue
		}
		for _, e := range s.items {
			if e.val.Region.stale(w) {
				s.removeEntry(e, c)
				removed++
			}
		}
		s.rebuildSummary()
		s.mu.Unlock()
	}
	m.invalidate(removed)
	m.sweepSkip(skipped)
	m.shape(c)
}

// growSummary folds one stored region into the shard summary. Unknown or
// unbounded regions poison the summary (sumAll): the shard can then
// never be skipped until a sweep rebuilds it. Caller holds s.mu.
func (s *lockShard) growSummary(g Region) {
	if s.sumAll {
		return
	}
	if g.Rect.IsEmpty() || !(g.Radius >= 0) || math.IsInf(g.Radius, 1) ||
		(!s.sum.IsEmpty() && s.sum.Dim() != g.Rect.Dim()) {
		s.sumAll = true
		return
	}
	s.sum.ExtendRect(g.Rect)
	if g.Radius > s.sumRadius {
		s.sumRadius = g.Radius
	}
}

// rebuildSummary recomputes the shard summary from the surviving
// entries; sweeps call it while already walking the shard. Caller holds
// s.mu.
func (s *lockShard) rebuildSummary() {
	s.sum, s.sumRadius, s.sumAll = geom.Rect{}, 0, false
	for _, e := range s.items {
		s.growSummary(e.val.Region)
	}
}

// removeEntry unlinks e from the shard's policy structure, map, and byte
// accounting. Caller holds s.mu.
func (s *lockShard) removeEntry(e *entry, c *Cache) {
	if s.gdsf {
		s.heapRemove(e.hi)
	} else {
		s.ll.Remove(e.el)
	}
	delete(s.items, e.key)
	s.bytes -= int64(e.val.Bytes)
	c.bytes.Add(-int64(e.val.Bytes))
	c.entries.Add(-1)
}

// --- GDSF min-heap --------------------------------------------------------
//
// A manual binary min-heap over pri with back-pointers (entry.hi), so a
// hit can fix one entry in place and an arbitrary entry can be removed by
// a sweep — operations container/heap only offers through interface
// boxing and index bookkeeping the caller must carry anyway.

func (s *lockShard) heapPush(e *entry) {
	e.hi = len(s.heap)
	s.heap = append(s.heap, e)
	s.heapUp(e.hi)
}

func (s *lockShard) heapSwap(a, b int) {
	s.heap[a], s.heap[b] = s.heap[b], s.heap[a]
	s.heap[a].hi, s.heap[b].hi = a, b
}

func (s *lockShard) heapUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if s.heap[p].pri <= s.heap[i].pri {
			break
		}
		s.heapSwap(p, i)
		i = p
	}
}

func (s *lockShard) heapDown(i int) {
	n := len(s.heap)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s.heap[r].pri < s.heap[l].pri {
			m = r
		}
		if s.heap[i].pri <= s.heap[m].pri {
			break
		}
		s.heapSwap(i, m)
		i = m
	}
}

// heapFix restores heap order after s.heap[i]'s priority changed.
func (s *lockShard) heapFix(i int) {
	s.heapDown(i)
	s.heapUp(i)
}

// heapRemove deletes s.heap[i].
func (s *lockShard) heapRemove(i int) {
	last := len(s.heap) - 1
	s.heapSwap(i, last)
	s.heap[last] = nil
	s.heap = s.heap[:last]
	if i < last {
		s.heapFix(i)
	}
}

// Len returns the number of live entries across all shards.
func (c *Cache) Len() int { return int(c.entries.Load()) }

// Bytes returns the summed Value.Bytes of all live entries.
func (c *Cache) Bytes() int64 { return c.bytes.Load() }

// Purge drops every entry and resets the aging watermarks (used by tests
// and topology changes). Counts nothing into the metrics.
func (c *Cache) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, e := range s.items {
			s.removeEntry(e, c)
		}
		s.watermark = 0
		s.sum, s.sumRadius, s.sumAll = geom.Rect{}, 0, false
		s.mu.Unlock()
	}
	c.met.Load().shape(c)
}
