package cache

import (
	"time"

	"repro/internal/obs"
)

// Metrics is the pre-resolved instrument set a Cache records into. One
// Metrics may be shared by several caches (e.g. every per-shard cache of
// a sharded database): the counters then aggregate across them and the
// gauges reflect the last cache that moved, which is the intended
// fleet-level view. All methods are nil-safe so an unwired cache pays a
// pointer test per operation.
type Metrics struct {
	hits          *obs.Counter
	misses        *obs.Counter
	evictions     *obs.Counter
	invalidations *obs.Counter
	writes        *obs.Counter
	sweepSkips    *obs.Counter
	costSaved     *obs.Counter
	entries       *obs.Gauge
	bytes         *obs.Gauge
	ratio         *obs.Gauge
}

// NewMetrics resolves the mdseq_cache_* instruments in reg under a
// {cache="name"} label — "front" for a sharded database's merged-result
// cache, "shard" for the per-shard caches, "core" for a single node. A
// nil registry yields nil, which SetMetrics accepts as "unwired".
func NewMetrics(reg *obs.Registry, name string) *Metrics {
	if reg == nil {
		return nil
	}
	l := obs.Label{Key: "cache", Value: name}
	return &Metrics{
		hits: reg.Counter("mdseq_cache_hits_total",
			"Query-cache lookups served from a live entry.", l),
		misses: reg.Counter("mdseq_cache_misses_total",
			"Query-cache lookups that found nothing servable (absent or stale).", l),
		evictions: reg.Counter("mdseq_cache_evictions_total",
			"Entries dropped by the eviction policy (LRU or GDSF) to hold the entry or byte cap.", l),
		invalidations: reg.Counter("mdseq_cache_invalidations_total",
			"Entries dropped because a corpus write could have affected them (eagerly under scope=mbr, lazily on lookup under scope=epoch).", l),
		writes: reg.Counter("mdseq_cache_write_notifications_total",
			"Write notifications (region invalidations) delivered to the query cache.", l),
		sweepSkips: reg.Counter("mdseq_cache_sweep_skips_total",
			"Lock shards an MBR-scoped invalidation sweep skipped via the per-shard region summary.", l),
		costSaved: reg.Counter("mdseq_cache_hit_cost_saved_ns_total",
			"Summed recorded compute cost, in nanoseconds, of the results served from cache — the work hits avoided redoing.", l),
		entries: reg.Gauge("mdseq_cache_entries",
			"Live query-cache entries.", l),
		bytes: reg.Gauge("mdseq_cache_bytes",
			"Approximate bytes retained by live query-cache entries.", l),
		ratio: reg.Gauge("mdseq_cache_hit_ratio",
			"Lifetime hit ratio hits/(hits+misses) of the query cache.", l),
	}
}

// SetMetrics wires the cache to record into m (nil detaches). Safe to
// call while the cache is serving; the shape gauges are seeded
// immediately.
func (c *Cache) SetMetrics(m *Metrics) {
	c.met.Store(m)
	m.shape(c)
}

// hit counts one served lookup (and the compute it saved) and refreshes
// the hit-ratio gauge.
func (m *Metrics) hit(cost time.Duration) {
	if m == nil {
		return
	}
	m.hits.Inc()
	if cost > 0 {
		m.costSaved.Add(uint64(cost))
	}
	m.setRatio()
}

// miss counts one unserved lookup and refreshes the hit-ratio gauge.
func (m *Metrics) miss() {
	if m == nil {
		return
	}
	m.misses.Inc()
	m.setRatio()
}

// evict counts n policy evictions.
func (m *Metrics) evict(n int) {
	if m == nil || n == 0 {
		return
	}
	m.evictions.Add(uint64(n))
}

// invalidate counts n entries dropped by write invalidation.
func (m *Metrics) invalidate(n int) {
	if m == nil || n == 0 {
		return
	}
	m.invalidations.Add(uint64(n))
}

// write counts one write notification delivered to the cache.
func (m *Metrics) write() {
	if m == nil {
		return
	}
	m.writes.Inc()
}

// sweepSkip counts n lock shards a sweep excluded by summary alone.
func (m *Metrics) sweepSkip(n int) {
	if m == nil || n == 0 {
		return
	}
	m.sweepSkips.Add(uint64(n))
}

// shape publishes the current entry and byte gauges.
func (m *Metrics) shape(c *Cache) {
	if m == nil {
		return
	}
	m.entries.Set(float64(c.Len()))
	m.bytes.Set(float64(c.Bytes()))
}

// setRatio recomputes the lifetime hit ratio from the shared counters.
func (m *Metrics) setRatio() {
	h, s := float64(m.hits.Value()), float64(m.misses.Value())
	if h+s > 0 {
		m.ratio.Set(h / (h + s))
	}
}
