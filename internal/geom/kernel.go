package geom

// Hot-path kernels: squared-distance and flat (structure-of-arrays)
// variants of the package's distance functions.
//
// The paper's pruning chain Dmbr ≤ Dnorm ≤ D (Lemmas 1–3) is built from
// Euclidean distances, and sqrt is strictly monotone, so every comparison
// "distance ≤ ε" in candidate selection can instead run as "squared
// distance ≤ ε²" with the square root deferred until a result is actually
// emitted. The kernels below are the squared forms; they avoid both the
// sqrt per comparison and any per-call allocation, and they operate on
// flat []float64 coordinate arrays so callers can keep bounds and points
// in contiguous, cache-friendly storage instead of per-object slices.
//
// Arithmetic note: each kernel accumulates Σ x_k² over axes in index
// order, exactly like the slice-based originals, so MinDist(a,b) ==
// Sqrt(MinDistSq(a,b)) bit-for-bit and search results computed through
// either form are identical.

// minDistSqGap returns the per-axis contribution to the squared MinDist
// between [al,ah] and [bl,bh]: the squared gap between the projections,
// 0 when they overlap.
func minDistSqGap(al, ah, bl, bh float64) float64 {
	var x float64
	switch {
	case ah < bl:
		x = bl - ah
	case bh < al:
		x = al - bh
	}
	return x * x
}

// MinDistSqLH returns the squared minimum Euclidean distance between the
// hyper-rectangle (aL, aH) and the hyper-rectangle (bL, bH), all given as
// flat coordinate slices of one dimensionality. It is the allocation-free
// kernel behind Rect.MinDistSq; callers with columnar bound storage
// (internal/core's Segmented, internal/rtree's node arrays) invoke it
// directly on sub-slices. All four slices must have the same length; the
// kernel indexes bL/bH/aH by aL's indices and will panic (bounds check)
// on shorter inputs.
func MinDistSqLH(aL, aH, bL, bH []float64) float64 {
	switch len(aL) {
	case 1:
		return minDistSqGap(aL[0], aH[0], bL[0], bH[0])
	case 2:
		return minDistSqGap(aL[0], aH[0], bL[0], bH[0]) +
			minDistSqGap(aL[1], aH[1], bL[1], bH[1])
	case 3:
		return minDistSqGap(aL[0], aH[0], bL[0], bH[0]) +
			minDistSqGap(aL[1], aH[1], bL[1], bH[1]) +
			minDistSqGap(aL[2], aH[2], bL[2], bH[2])
	case 4:
		return minDistSqGap(aL[0], aH[0], bL[0], bH[0]) +
			minDistSqGap(aL[1], aH[1], bL[1], bH[1]) +
			minDistSqGap(aL[2], aH[2], bL[2], bH[2]) +
			minDistSqGap(aL[3], aH[3], bL[3], bH[3])
	}
	var sum float64
	for k := range aL {
		sum += minDistSqGap(aL[k], aH[k], bL[k], bH[k])
	}
	return sum
}

// MinDistSqBatch fills out[t] with the squared MinDist between the query
// box (qL, qH) and the t-th target box of a columnar bound store: target
// t occupies lo[t*d:(t+1)*d] and hi[t*d:(t+1)*d] where d = len(qL). It
// is the phase-3 inner loop of the Dnorm machinery: one pass computes
// every Dmbr(query MBR, data MBR) of a segmented sequence over
// sequential memory, with the dimension switch hoisted out of the loop
// for the common low-dimensional cases. len(lo) and len(hi) must be at
// least len(out)*d.
func MinDistSqBatch(qL, qH, lo, hi []float64, out []float64) {
	d := len(qL)
	switch d {
	case 2:
		q0l, q1l := qL[0], qL[1]
		q0h, q1h := qH[0], qH[1]
		for t := range out {
			o := t * 2
			out[t] = minDistSqGap(q0l, q0h, lo[o], hi[o]) +
				minDistSqGap(q1l, q1h, lo[o+1], hi[o+1])
		}
	case 3:
		q0l, q1l, q2l := qL[0], qL[1], qL[2]
		q0h, q1h, q2h := qH[0], qH[1], qH[2]
		for t := range out {
			o := t * 3
			out[t] = minDistSqGap(q0l, q0h, lo[o], hi[o]) +
				minDistSqGap(q1l, q1h, lo[o+1], hi[o+1]) +
				minDistSqGap(q2l, q2h, lo[o+2], hi[o+2])
		}
	case 4:
		q0l, q1l, q2l, q3l := qL[0], qL[1], qL[2], qL[3]
		q0h, q1h, q2h, q3h := qH[0], qH[1], qH[2], qH[3]
		for t := range out {
			o := t * 4
			out[t] = minDistSqGap(q0l, q0h, lo[o], hi[o]) +
				minDistSqGap(q1l, q1h, lo[o+1], hi[o+1]) +
				minDistSqGap(q2l, q2h, lo[o+2], hi[o+2]) +
				minDistSqGap(q3l, q3h, lo[o+3], hi[o+3])
		}
	default:
		for t := range out {
			o := t * d
			out[t] = MinDistSqLH(qL, qH, lo[o:o+d], hi[o:o+d])
		}
	}
}

// MinDistPointSqFlat returns the squared minimum Euclidean distance
// between a point and the hyper-rectangle (lo, hi), all given as flat
// coordinate slices of one dimensionality — the degenerate-rectangle form
// of MinDistSqLH used by envelope lower bounds (a point inside the box
// contributes 0 on every axis). The sum runs over p's indices in order.
func MinDistPointSqFlat(p, lo, hi []float64) float64 {
	switch len(p) {
	case 1:
		return minDistSqGap(p[0], p[0], lo[0], hi[0])
	case 2:
		return minDistSqGap(p[0], p[0], lo[0], hi[0]) +
			minDistSqGap(p[1], p[1], lo[1], hi[1])
	case 3:
		return minDistSqGap(p[0], p[0], lo[0], hi[0]) +
			minDistSqGap(p[1], p[1], lo[1], hi[1]) +
			minDistSqGap(p[2], p[2], lo[2], hi[2])
	case 4:
		return minDistSqGap(p[0], p[0], lo[0], hi[0]) +
			minDistSqGap(p[1], p[1], lo[1], hi[1]) +
			minDistSqGap(p[2], p[2], lo[2], hi[2]) +
			minDistSqGap(p[3], p[3], lo[3], hi[3])
	}
	var sum float64
	for k := range p {
		sum += minDistSqGap(p[k], p[k], lo[k], hi[k])
	}
	return sum
}

// DistSqFlat returns the squared Euclidean distance between two points
// stored as flat coordinate slices of equal length — the stride-indexed
// form of Point.DistSq for columnar point storage. The sum runs over a's
// indices in order (same arithmetic as Point.DistSq).
func DistSqFlat(a, b []float64) float64 {
	switch len(a) {
	case 1:
		d := a[0] - b[0]
		return d * d
	case 2:
		d0, d1 := a[0]-b[0], a[1]-b[1]
		return d0*d0 + d1*d1
	case 3:
		d0, d1, d2 := a[0]-b[0], a[1]-b[1], a[2]-b[2]
		return d0*d0 + d1*d1 + d2*d2
	case 4:
		d0, d1, d2, d3 := a[0]-b[0], a[1]-b[1], a[2]-b[2], a[3]-b[3]
		return d0*d0 + d1*d1 + d2*d2 + d3*d3
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
