package geom

import (
	"math"
	"math/rand"
	"testing"
)

// randRect builds a valid random rectangle in [0,1]^n from a generator.
func randRect(rng *rand.Rand, n int) Rect {
	lo := make(Point, n)
	hi := make(Point, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		if a > b {
			a, b = b, a
		}
		lo[i], hi[i] = a, b
	}
	return Rect{L: lo, H: hi}
}

// randPointIn returns a uniform random point inside r.
func randPointIn(rng *rand.Rand, r Rect) Point {
	p := make(Point, r.Dim())
	for i := range p {
		p[i] = r.L[i] + rng.Float64()*(r.H[i]-r.L[i])
	}
	return p
}

func TestNewRectValidation(t *testing.T) {
	if _, err := NewRect(Point{0, 0}, Point{1, 1}); err != nil {
		t.Errorf("valid rect rejected: %v", err)
	}
	if _, err := NewRect(Point{0, 2}, Point{1, 1}); err == nil {
		t.Error("inverted rect accepted")
	}
	if _, err := NewRect(Point{0}, Point{1, 1}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestMustRectPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRect should panic on invalid input")
		}
	}()
	MustRect(Point{1}, Point{0})
}

func TestBoundingRect(t *testing.T) {
	pts := []Point{{0.2, 0.8}, {0.5, 0.1}, {0.9, 0.4}}
	r := BoundingRect(pts)
	want := MustRect(Point{0.2, 0.1}, Point{0.9, 0.8})
	if !r.Equal(want) {
		t.Errorf("BoundingRect = %v, want %v", r, want)
	}
	if !BoundingRect(nil).IsEmpty() {
		t.Error("BoundingRect(nil) should be empty")
	}
}

func TestBoundingRectContainsAllPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		pts := make([]Point, 1+rng.Intn(20))
		for i := range pts {
			pts[i] = Point{rng.Float64(), rng.Float64(), rng.Float64()}
		}
		r := BoundingRect(pts)
		for _, p := range pts {
			if !r.ContainsPoint(p) {
				t.Fatalf("bounding rect %v does not contain %v", r, p)
			}
		}
	}
}

func TestRectVolumeMarginCenter(t *testing.T) {
	r := MustRect(Point{0, 0, 0}, Point{1, 2, 3})
	if got := r.Volume(); !almostEqual(got, 6) {
		t.Errorf("Volume = %g, want 6", got)
	}
	if got := r.Margin(); !almostEqual(got, 6) {
		t.Errorf("Margin = %g, want 6", got)
	}
	if got := r.Center(); !got.Equal(Point{0.5, 1, 1.5}) {
		t.Errorf("Center = %v", got)
	}
	if got := r.Side(2); !almostEqual(got, 3) {
		t.Errorf("Side(2) = %g, want 3", got)
	}
	if got := (Rect{}).Volume(); got != 0 {
		t.Errorf("empty Volume = %g", got)
	}
}

func TestRectContainment(t *testing.T) {
	outer := MustRect(Point{0, 0}, Point{1, 1})
	inner := MustRect(Point{0.2, 0.2}, Point{0.8, 0.8})
	if !outer.ContainsRect(inner) {
		t.Error("outer should contain inner")
	}
	if inner.ContainsRect(outer) {
		t.Error("inner should not contain outer")
	}
	if !outer.ContainsRect(outer) {
		t.Error("rect should contain itself")
	}
	if !outer.ContainsPoint(Point{1, 1}) {
		t.Error("boundary point should be contained")
	}
	if outer.ContainsPoint(Point{1.01, 0.5}) {
		t.Error("outside point reported contained")
	}
}

func TestRectIntersects(t *testing.T) {
	a := MustRect(Point{0, 0}, Point{0.5, 0.5})
	b := MustRect(Point{0.4, 0.4}, Point{1, 1})
	c := MustRect(Point{0.6, 0.6}, Point{1, 1})
	d := MustRect(Point{0.5, 0.5}, Point{0.7, 0.7}) // touches a at a corner
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("overlapping rects reported disjoint")
	}
	if a.Intersects(c) {
		t.Error("disjoint rects reported intersecting")
	}
	if !a.Intersects(d) {
		t.Error("corner-touching rects should intersect (closed rects)")
	}
}

func TestRectUnionAndExtend(t *testing.T) {
	a := MustRect(Point{0, 0}, Point{0.3, 0.3})
	b := MustRect(Point{0.5, 0.6}, Point{0.9, 0.8})
	u := a.Union(b)
	want := MustRect(Point{0, 0}, Point{0.9, 0.8})
	if !u.Equal(want) {
		t.Errorf("Union = %v, want %v", u, want)
	}
	if !a.Equal(MustRect(Point{0, 0}, Point{0.3, 0.3})) {
		t.Error("Union mutated receiver")
	}

	var e Rect
	e.ExtendRect(a)
	if !e.Equal(a) {
		t.Errorf("extending empty rect = %v, want %v", e, a)
	}
	e.ExtendPoint(Point{1, 1})
	if !e.Equal(MustRect(Point{0, 0}, Point{1, 1})) {
		t.Errorf("ExtendPoint = %v", e)
	}
}

func TestRectEnlargement(t *testing.T) {
	a := MustRect(Point{0, 0}, Point{1, 1})
	inside := MustRect(Point{0.2, 0.2}, Point{0.4, 0.4})
	if got := a.Enlargement(inside); !almostEqual(got, 0) {
		t.Errorf("Enlargement for contained rect = %g, want 0", got)
	}
	right := MustRect(Point{1, 0}, Point{2, 1})
	if got := a.Enlargement(right); !almostEqual(got, 1) {
		t.Errorf("Enlargement = %g, want 1", got)
	}
}

func TestRectIntersectionVolume(t *testing.T) {
	a := MustRect(Point{0, 0}, Point{1, 1})
	b := MustRect(Point{0.5, 0.5}, Point{1.5, 1.5})
	if got := a.IntersectionVolume(b); !almostEqual(got, 0.25) {
		t.Errorf("IntersectionVolume = %g, want 0.25", got)
	}
	c := MustRect(Point{2, 2}, Point{3, 3})
	if got := a.IntersectionVolume(c); got != 0 {
		t.Errorf("disjoint IntersectionVolume = %g, want 0", got)
	}
}

// TestMinDist covers the three placements of the paper's Figure 2:
// overlapping (distance 0), separated on one axis, separated on both axes.
func TestMinDist(t *testing.T) {
	tests := []struct {
		name string
		a, b Rect
		want float64
	}{
		{
			"overlapping -> 0 (figure 2 left)",
			MustRect(Point{0, 0}, Point{0.5, 0.5}),
			MustRect(Point{0.3, 0.3}, Point{0.8, 0.8}),
			0,
		},
		{
			"separated along x only (figure 2 middle)",
			MustRect(Point{0, 0}, Point{0.2, 0.5}),
			MustRect(Point{0.5, 0.1}, Point{0.9, 0.4}),
			0.3,
		},
		{
			"separated along both axes (figure 2 right)",
			MustRect(Point{0, 0}, Point{0.2, 0.2}),
			MustRect(Point{0.5, 0.6}, Point{0.9, 0.9}),
			math.Sqrt(0.3*0.3 + 0.4*0.4),
		},
		{
			"touching edges -> 0",
			MustRect(Point{0, 0}, Point{0.5, 0.5}),
			MustRect(Point{0.5, 0}, Point{1, 0.5}),
			0,
		},
		{
			"3d separation on one axis",
			MustRect(Point{0, 0, 0}, Point{1, 1, 0.1}),
			MustRect(Point{0, 0, 0.6}, Point{1, 1, 1}),
			0.5,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.MinDist(tc.b); !almostEqual(got, tc.want) {
				t.Errorf("MinDist = %g, want %g", got, tc.want)
			}
			if got := tc.b.MinDist(tc.a); !almostEqual(got, tc.want) {
				t.Errorf("MinDist not symmetric: %g, want %g", got, tc.want)
			}
		})
	}
}

// TestMinDistLowerBoundsPointPairs verifies Observation 1 of the paper:
// Dmbr(A,B) <= min over point pairs (a in A, b in B) of d(a,b).
func TestMinDistLowerBoundsPointPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		a := randRect(rng, 3)
		b := randRect(rng, 3)
		dm := a.MinDist(b)
		for i := 0; i < 10; i++ {
			p := randPointIn(rng, a)
			q := randPointIn(rng, b)
			if d := p.Dist(q); d < dm-1e-9 {
				t.Fatalf("point pair distance %g < MinDist %g for %v %v", d, dm, a, b)
			}
		}
	}
}

// TestMaxDistUpperBoundsPointPairs verifies the mirror property for MaxDist.
func TestMaxDistUpperBoundsPointPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 300; trial++ {
		a := randRect(rng, 3)
		b := randRect(rng, 3)
		dM := a.MaxDist(b)
		for i := 0; i < 10; i++ {
			p := randPointIn(rng, a)
			q := randPointIn(rng, b)
			if d := p.Dist(q); d > dM+1e-9 {
				t.Fatalf("point pair distance %g > MaxDist %g for %v %v", d, dM, a, b)
			}
		}
	}
}

func TestMinDistPoint(t *testing.T) {
	r := MustRect(Point{0, 0}, Point{1, 1})
	if got := r.MinDistPoint(Point{0.5, 0.5}); got != 0 {
		t.Errorf("inside point MinDistPoint = %g, want 0", got)
	}
	if got := r.MinDistPoint(Point{2, 1}); !almostEqual(got, 1) {
		t.Errorf("MinDistPoint = %g, want 1", got)
	}
	if got := r.MinDistPoint(Point{2, 2}); !almostEqual(got, math.Sqrt2) {
		t.Errorf("corner MinDistPoint = %g, want sqrt(2)", got)
	}
}

func TestMinDistPointAgreesWithDegenerateRect(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 500; trial++ {
		r := randRect(rng, 2)
		p := Point{rng.Float64() * 2, rng.Float64() * 2} // may fall outside r
		if !almostEqual(r.MinDistPoint(p), r.MinDist(RectFromPoint(p))) {
			t.Fatalf("MinDistPoint %g != MinDist to degenerate rect %g for %v %v",
				r.MinDistPoint(p), r.MinDist(RectFromPoint(p)), r, p)
		}
	}
}

func TestMinDistZeroIffIntersects(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 500; trial++ {
		a := randRect(rng, 2)
		b := randRect(rng, 2)
		zero := a.MinDist(b) == 0
		if zero != a.Intersects(b) {
			t.Fatalf("MinDist==0 (%v) disagrees with Intersects (%v) for %v %v",
				zero, a.Intersects(b), a, b)
		}
	}
}

func TestRectCloneIndependence(t *testing.T) {
	r := MustRect(Point{0, 0}, Point{1, 1})
	c := r.Clone()
	c.L[0] = 0.5
	if r.L[0] != 0 {
		t.Error("Clone shares storage with original")
	}
	if !(Rect{}).Clone().IsEmpty() {
		t.Error("clone of empty rect should be empty")
	}
}

func TestRectString(t *testing.T) {
	if got := (Rect{}).String(); got != "[empty]" {
		t.Errorf("empty String = %q", got)
	}
	r := MustRect(Point{0}, Point{1})
	if got := r.String(); got != "[(0.0000) -> (1.0000)]" {
		t.Errorf("String = %q", got)
	}
}

func TestMinDistNeverExceedsMaxDist(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 500; trial++ {
		a := randRect(rng, 3)
		b := randRect(rng, 3)
		if a.MinDist(b) > a.MaxDist(b)+1e-12 {
			t.Fatalf("MinDist %g > MaxDist %g for %v %v", a.MinDist(b), a.MaxDist(b), a, b)
		}
	}
}

func TestUnionMonotoneForMinDist(t *testing.T) {
	// Growing a rectangle can only reduce its distance to anything else —
	// the property the index's subtree pruning relies on.
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 300; trial++ {
		a := randRect(rng, 3)
		b := randRect(rng, 3)
		q := randRect(rng, 3)
		u := a.Union(b)
		if u.MinDist(q) > a.MinDist(q)+1e-12 {
			t.Fatalf("union increased MinDist: %g > %g", u.MinDist(q), a.MinDist(q))
		}
	}
}
