package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	if a == b { // covers infinities produced by extreme quick-check inputs
		return true
	}
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"identical", Point{0.5, 0.5, 0.5}, Point{0.5, 0.5, 0.5}, 0},
		{"unit apart on one axis", Point{0, 0, 0}, Point{1, 0, 0}, 1},
		{"3-4-5 triangle", Point{0, 0}, Point{3, 4}, 5},
		{"unit cube diagonal 3d", Point{0, 0, 0}, Point{1, 1, 1}, math.Sqrt(3)},
		{"1d", Point{0.25}, Point{0.75}, 0.5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.Dist(tc.q); !almostEqual(got, tc.want) {
				t.Errorf("Dist(%v,%v) = %g, want %g", tc.p, tc.q, got, tc.want)
			}
		})
	}
}

func TestPointDistSymmetry(t *testing.T) {
	f := func(a, b [4]float64) bool {
		p, q := Point(a[:]), Point(b[:])
		return almostEqual(p.Dist(q), q.Dist(p))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointDistTriangleInequality(t *testing.T) {
	f := func(a, b, c [3]float64) bool {
		p, q, r := Point(a[:]), Point(b[:]), Point(c[:])
		return p.Dist(r) <= p.Dist(q)+q.Dist(r)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointDistNonNegativeAndIdentity(t *testing.T) {
	f := func(a [5]float64) bool {
		p := Point(a[:])
		return p.Dist(p) == 0 && p.Dist(Point{0, 0, 0, 0, 0}) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointDist2MatchesDist(t *testing.T) {
	f := func(a, b [3]float64) bool {
		p, q := Point(a[:]), Point(b[:])
		return almostEqual(p.Dist(q)*p.Dist(q), p.Dist2(q))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointDistPanicsOnDimensionMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Point{1, 2}.Dist(Point{1, 2, 3})
}

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2, 3}
	q := Point{4, 5, 6}
	if got := p.Add(q); !got.Equal(Point{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := q.Sub(p); !got.Equal(Point{3, 3, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); !got.Equal(Point{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Mid(q); !got.Equal(Point{2.5, 3.5, 4.5}) {
		t.Errorf("Mid = %v", got)
	}
}

func TestPointCloneIndependence(t *testing.T) {
	p := Point{1, 2, 3}
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Error("Clone shares backing array")
	}
}

func TestPointEqual(t *testing.T) {
	if !(Point{1, 2}).Equal(Point{1, 2}) {
		t.Error("equal points reported unequal")
	}
	if (Point{1, 2}).Equal(Point{1, 2, 3}) {
		t.Error("different-dim points reported equal")
	}
	if (Point{1, 2}).Equal(Point{1, 3}) {
		t.Error("different points reported equal")
	}
}

func TestPointClamp(t *testing.T) {
	p := Point{-0.5, 0.5, 1.5}
	got := p.Clamp(0, 1)
	if !got.Equal(Point{0, 0.5, 1}) {
		t.Errorf("Clamp = %v", got)
	}
	if p[0] != -0.5 {
		t.Error("Clamp mutated receiver")
	}
}

func TestPointInUnitCube(t *testing.T) {
	if !(Point{0, 0.5, 1}).InUnitCube() {
		t.Error("boundary point should be in cube")
	}
	if (Point{0, 1.0001}).InUnitCube() {
		t.Error("out-of-range point reported in cube")
	}
}

func TestMaxDiagonal(t *testing.T) {
	if got := MaxDiagonal(3); !almostEqual(got, math.Sqrt(3)) {
		t.Errorf("MaxDiagonal(3) = %g", got)
	}
	if got := MaxDiagonal(1); !almostEqual(got, 1) {
		t.Errorf("MaxDiagonal(1) = %g", got)
	}
}

func TestDistToSimilarity(t *testing.T) {
	if got := DistToSimilarity(0, 3); got != 1 {
		t.Errorf("identical objects similarity = %g, want 1", got)
	}
	if got := DistToSimilarity(math.Sqrt(3), 3); got != 0 {
		t.Errorf("max-distance similarity = %g, want 0", got)
	}
	if got := DistToSimilarity(10, 3); got != 0 {
		t.Errorf("beyond-max similarity = %g, want clamped 0", got)
	}
	if got := DistToSimilarity(0.5, 0); got != 0 {
		t.Errorf("degenerate dimension similarity = %g, want 0", got)
	}
	mid := DistToSimilarity(math.Sqrt(3)/2, 3)
	if !almostEqual(mid, 0.5) {
		t.Errorf("half-diagonal similarity = %g, want 0.5", mid)
	}
}

func TestDistToSimilarityMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := rng.Float64() * math.Sqrt(3)
		b := rng.Float64() * math.Sqrt(3)
		if a > b {
			a, b = b, a
		}
		if DistToSimilarity(a, 3) < DistToSimilarity(b, 3) {
			t.Fatalf("similarity not monotonically decreasing: d=%g -> %g, d=%g -> %g",
				a, DistToSimilarity(a, 3), b, DistToSimilarity(b, 3))
		}
	}
}

func TestPointNorm(t *testing.T) {
	if got := (Point{3, 4}).Norm(); !almostEqual(got, 5) {
		t.Errorf("Norm = %g, want 5", got)
	}
	if got := (Point{}).Norm(); got != 0 {
		t.Errorf("empty Norm = %g, want 0", got)
	}
}

func TestPointString(t *testing.T) {
	got := Point{0.5, 0.25}.String()
	want := "(0.5000, 0.2500)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
