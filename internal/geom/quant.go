package geom

import "math"

// Quantized bounds: float32 sidecar copies of MBR bound arrays, rounded
// outward — low corners toward −∞, high corners toward +∞ — so every
// quantized rectangle contains its exact float64 original. MinDist
// between enclosing rectangles never exceeds MinDist between the
// enclosed ones, so any distance computed from quantized bounds is a
// lower bound on the exact one: a prefilter over quantized arrays can
// only under-estimate, never over-estimate, and therefore never dismisses
// a candidate the exact kernel would keep (the paper's Lemma 1
// no-false-dismissal guarantee survives the quantization unchanged).
//
// The kernels read the float32 arrays — half the memory traffic of the
// float64 originals, which is what bounds the MinDistSq loop on dim ≥ 8 —
// but do all arithmetic in float64 after an exact widening conversion, so
// there is no rounding slack to account for: the result is exactly the
// MinDist of the widened rectangles.

// QuantizeDown fills dst[i] with the largest float32 not exceeding
// src[i] (rounding toward −∞). dst must be at least as long as src.
func QuantizeDown(dst []float32, src []float64) {
	for i, v := range src {
		f := float32(v) // rounds to nearest; may land above v
		if float64(f) > v {
			f = math.Nextafter32(f, float32(math.Inf(-1)))
		}
		dst[i] = f
	}
}

// QuantizeUp fills dst[i] with the smallest float32 not below src[i]
// (rounding toward +∞). dst must be at least as long as src.
func QuantizeUp(dst []float32, src []float64) {
	for i, v := range src {
		f := float32(v)
		if float64(f) < v {
			f = math.Nextafter32(f, float32(math.Inf(1)))
		}
		dst[i] = f
	}
}

// minDistSqGapQ is minDistSqGap with the target interval read from
// quantized float32 bounds. The conversions to float64 are exact, so the
// result is exactly the squared gap to the widened interval. The
// branchless max form (for non-empty intervals at most one difference is
// positive) compiles to MAXSD on amd64 — the gap sign is data-dependent
// and unpredictable, so avoiding the branch is worth ~2.5× on the batch
// sweep below.
func minDistSqGapQ(al, ah float64, bl, bh float32) float64 {
	x := max(float64(bl)-ah, al-float64(bh), 0)
	return x * x
}

// MinDistSqBatchQ is MinDistSqBatch over a quantized columnar bound
// store: out[t] receives the squared MinDist between the exact query box
// (qL, qH) and the t-th quantized target box, where target t occupies
// lo[t*d:(t+1)*d] and hi[t*d:(t+1)*d] with d = len(qL). Each output is a
// conservative lower bound on the exact MinDistSqBatch value for the
// same target (see the package comment above), computed while reading
// half the bound bytes. len(lo) and len(hi) must be at least len(out)*d.
func MinDistSqBatchQ(qL, qH []float64, lo, hi []float32, out []float64) {
	d := len(qL)
	switch d {
	case 2:
		q0l, q1l := qL[0], qL[1]
		q0h, q1h := qH[0], qH[1]
		for t := range out {
			o := t * 2
			out[t] = minDistSqGapQ(q0l, q0h, lo[o], hi[o]) +
				minDistSqGapQ(q1l, q1h, lo[o+1], hi[o+1])
		}
	case 3:
		q0l, q1l, q2l := qL[0], qL[1], qL[2]
		q0h, q1h, q2h := qH[0], qH[1], qH[2]
		for t := range out {
			o := t * 3
			out[t] = minDistSqGapQ(q0l, q0h, lo[o], hi[o]) +
				minDistSqGapQ(q1l, q1h, lo[o+1], hi[o+1]) +
				minDistSqGapQ(q2l, q2h, lo[o+2], hi[o+2])
		}
	case 4:
		q0l, q1l, q2l, q3l := qL[0], qL[1], qL[2], qL[3]
		q0h, q1h, q2h, q3h := qH[0], qH[1], qH[2], qH[3]
		for t := range out {
			o := t * 4
			out[t] = minDistSqGapQ(q0l, q0h, lo[o], hi[o]) +
				minDistSqGapQ(q1l, q1h, lo[o+1], hi[o+1]) +
				minDistSqGapQ(q2l, q2h, lo[o+2], hi[o+2]) +
				minDistSqGapQ(q3l, q3h, lo[o+3], hi[o+3])
		}
	default:
		for t := range out {
			o := t * d
			var sum float64
			for k := 0; k < d; k++ {
				sum += minDistSqGapQ(qL[k], qH[k], lo[o+k], hi[o+k])
			}
			out[t] = sum
		}
	}
}

// MinDistSqWithinQ reports whether any quantized target box of the
// columnar store (lo, hi) lies within squared distance limit of the
// exact query box (qL, qH) — the early-exiting prefilter form of
// MinDistSqBatchQ. A false return proves every exact squared MinDist
// exceeds limit (quantized distances are lower bounds), so the caller
// may skip the exact pass for this store entirely; a true return says
// nothing and the exact kernel must confirm. The number of targets is
// len(lo)/len(qL).
func MinDistSqWithinQ(qL, qH []float64, lo, hi []float32, limit float64) bool {
	d := len(qL)
	n := len(lo) / d
	for t := 0; t < n; t++ {
		o := t * d
		var sum float64
		for k := 0; k < d; k++ {
			sum += minDistSqGapQ(qL[k], qH[k], lo[o+k], hi[o+k])
		}
		if sum <= limit {
			return true
		}
	}
	return false
}
