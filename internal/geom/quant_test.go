package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuantizeRoundsOutward(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	src := make([]float64, 4096)
	for i := range src {
		// Mix magnitudes so float32 rounding actually loses bits.
		src[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(7)-3))
	}
	// Include values that are exactly representable in float32.
	src[0], src[1], src[2] = 0, 1.5, -0.25
	lo := make([]float32, len(src))
	hi := make([]float32, len(src))
	QuantizeDown(lo, src)
	QuantizeUp(hi, src)
	for i, v := range src {
		if float64(lo[i]) > v {
			t.Fatalf("QuantizeDown(%v) = %v, above the input", v, lo[i])
		}
		if float64(hi[i]) < v {
			t.Fatalf("QuantizeUp(%v) = %v, below the input", v, hi[i])
		}
		// Outward rounding must be tight: one float32 ulp at most.
		if up := math.Nextafter32(lo[i], float32(math.Inf(1))); float64(up) <= v && float64(lo[i]) != v {
			t.Fatalf("QuantizeDown(%v) = %v not the largest float32 below", v, lo[i])
		}
		if dn := math.Nextafter32(hi[i], float32(math.Inf(-1))); float64(dn) >= v && float64(hi[i]) != v {
			t.Fatalf("QuantizeUp(%v) = %v not the smallest float32 above", v, hi[i])
		}
	}
}

// quantizedStore builds exact and quantized columnar bound stores for n
// random d-dimensional boxes.
func quantizedStore(rng *rand.Rand, n, d int) (lo, hi []float64, qlo, qhi []float32) {
	lo = make([]float64, n*d)
	hi = make([]float64, n*d)
	for i := range lo {
		a, b := rng.Float64(), rng.Float64()
		if a > b {
			a, b = b, a
		}
		lo[i], hi[i] = a, b
	}
	qlo = make([]float32, n*d)
	qhi = make([]float32, n*d)
	QuantizeDown(qlo, lo)
	QuantizeUp(qhi, hi)
	return
}

func TestMinDistSqBatchQIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, d := range []int{2, 3, 4, 8, 16} {
		const n = 257
		lo, hi, qlo, qhi := quantizedStore(rng, n, d)
		qL := make([]float64, d)
		qH := make([]float64, d)
		for k := range qL {
			a, b := rng.Float64(), rng.Float64()
			if a > b {
				a, b = b, a
			}
			qL[k], qH[k] = a, b
		}
		exact := make([]float64, n)
		quant := make([]float64, n)
		MinDistSqBatch(qL, qH, lo, hi, exact)
		MinDistSqBatchQ(qL, qH, qlo, qhi, quant)
		for i := range exact {
			if quant[i] > exact[i] {
				t.Fatalf("d=%d box %d: quantized %v exceeds exact %v", d, i, quant[i], exact[i])
			}
			// The bound should be tight: within the slack one float32 ulp
			// per axis can introduce.
			if exact[i]-quant[i] > 1e-5 {
				t.Errorf("d=%d box %d: quantized bound %v too loose vs exact %v", d, i, quant[i], exact[i])
			}
		}
	}
}

func TestMinDistSqWithinQNeverFalseDismisses(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, d := range []int{2, 3, 8} {
		for trial := 0; trial < 200; trial++ {
			n := 1 + rng.Intn(12)
			lo, hi, qlo, qhi := quantizedStore(rng, n, d)
			qL := make([]float64, d)
			qH := make([]float64, d)
			for k := range qL {
				a, b := rng.Float64(), rng.Float64()
				if a > b {
					a, b = b, a
				}
				qL[k], qH[k] = a, b
			}
			exact := make([]float64, n)
			MinDistSqBatch(qL, qH, lo, hi, exact)
			limit := rng.Float64() * 0.2
			anyExact := false
			for _, e := range exact {
				if e <= limit {
					anyExact = true
				}
			}
			within := MinDistSqWithinQ(qL, qH, qlo, qhi, limit)
			if anyExact && !within {
				t.Fatalf("d=%d trial %d: prefilter dismissed a store with an exact hit (limit %v, exact %v)",
					d, trial, limit, exact)
			}
		}
	}
}
