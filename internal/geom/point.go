// Package geom provides the n-dimensional vector and hyper-rectangle
// primitives used throughout mdseq: points, minimum bounding rectangles
// (MBRs), and the Euclidean distance functions the paper's metrics are
// built from (point–point distance and the rectangle–rectangle minimum
// distance of Definition 4).
//
// All coordinates live in the normalized unit hyper-cube [0,1]^n unless a
// caller chooses otherwise; nothing in this package enforces the range, but
// the rest of mdseq assumes it when mapping distances to similarities.
package geom

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Point is an n-dimensional vector. The slice length is the
// dimensionality; points of different lengths are incomparable.
type Point []float64

// ErrDimensionMismatch is returned (or wrapped) by operations that combine
// geometric objects of different dimensionality.
var ErrDimensionMismatch = errors.New("geom: dimension mismatch")

// NewPoint returns a zero point of dimension n.
func NewPoint(n int) Point { return make(Point, n) }

// Dim returns the dimensionality of p.
func (p Point) Dim() int { return len(p) }

// Clone returns a deep copy of p. It allocates; hot loops that only need
// coordinates should keep points in flat []float64 storage and use the
// stride-indexed kernels (DistSqFlat, MinDistSqBatch) or copy into a
// reused buffer instead of cloning per iteration.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical coordinates. It is the
// slice-based compatibility form; columnar storage can compare stride
// sub-slices directly without materializing Points.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Add returns p + q as a new point. It panics if dimensions differ; the
// arithmetic helpers are internal building blocks used on validated data.
func (p Point) Add(q Point) Point {
	mustSameDim(p, q)
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] + q[i]
	}
	return r
}

// Sub returns p - q as a new point.
func (p Point) Sub(q Point) Point {
	mustSameDim(p, q)
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] - q[i]
	}
	return r
}

// Scale returns s·p as a new point.
func (p Point) Scale(s float64) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] * s
	}
	return r
}

// Mid returns the midpoint of p and q.
func (p Point) Mid(q Point) Point {
	mustSameDim(p, q)
	r := make(Point, len(p))
	for i := range p {
		r[i] = (p[i] + q[i]) / 2
	}
	return r
}

// Dist returns the Euclidean distance d(p,q) between two points
// (the paper's d(S1[i], S2[j])).
func (p Point) Dist(q Point) float64 {
	return math.Sqrt(p.DistSq(q))
}

// DistSq returns the squared Euclidean distance between p and q — the
// kernel form used by every pruning comparison (compare against ε², take
// the sqrt only for emitted results). It is the hot inner loop of the
// sequential-scan baseline, so it avoids allocation; for points held in
// flat columnar storage use DistSqFlat on the stride sub-slices directly.
func (p Point) DistSq(q Point) float64 {
	mustSameDim(p, q)
	return DistSqFlat(p, q)
}

// Dist2 is a compatibility alias for DistSq, kept for existing callers.
func (p Point) Dist2(q Point) float64 { return p.DistSq(q) }

// Norm returns the Euclidean norm of p.
func (p Point) Norm() float64 {
	var s float64
	for _, v := range p {
		s += v * v
	}
	return math.Sqrt(s)
}

// Clamp returns a copy of p with every coordinate clamped to [lo, hi].
func (p Point) Clamp(lo, hi float64) Point {
	r := make(Point, len(p))
	for i, v := range p {
		r[i] = math.Min(hi, math.Max(lo, v))
	}
	return r
}

// InUnitCube reports whether every coordinate of p lies in [0,1].
func (p Point) InUnitCube() bool {
	for _, v := range p {
		if v < 0 || v > 1 {
			return false
		}
	}
	return true
}

// String renders p as "(x1, x2, …)" with short fixed precision.
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.4f", v)
	}
	b.WriteByte(')')
	return b.String()
}

// MaxDiagonal returns the length of the main diagonal of the unit
// hyper-cube of dimension n — the maximum possible distance between two
// points in normalized space (the paper: "the maximum allowable distance
// is sqrt(n), a diagonal of the cube").
func MaxDiagonal(n int) float64 { return math.Sqrt(float64(n)) }

// DistToSimilarity maps a distance in the unit cube of dimension n to a
// similarity in [0,1], 1 meaning identical. The paper notes the distance
// "will be easily mapped to the similarity"; we use the affine map the
// normalization invites: sim = 1 - dist/sqrt(n).
func DistToSimilarity(dist float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	s := 1 - dist/MaxDiagonal(n)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

func mustSameDim(p, q Point) {
	if len(p) != len(q) {
		panic(fmt.Sprintf("geom: dimension mismatch: %d vs %d", len(p), len(q)))
	}
}
