package geom

import (
	"math"
	"math/rand"
	"testing"
)

// randRect is shared with rect_test.go.

func randPoint(rng *rand.Rand, dim int) Point {
	p := make(Point, dim)
	for k := range p {
		p[k] = rng.Float64()
	}
	return p
}

// TestMinDistSqMatchesMinDist is the squared-space correctness property:
// MinDistSq must equal MinDist² (up to 1-ulp-scale rounding from the one
// extra multiply), and MinDist must equal Sqrt(MinDistSq) exactly, across
// random rectangle pairs and dimensions.
func TestMinDistSqMatchesMinDist(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, dim := range []int{1, 2, 3, 4, 5, 8, 16} {
		for i := 0; i < 2000; i++ {
			a, b := randRect(rng, dim), randRect(rng, dim)
			sq := a.MinDistSq(b)
			d := a.MinDist(b)
			if got := math.Sqrt(sq); got != d {
				t.Fatalf("dim %d: MinDist %v != Sqrt(MinDistSq) %v", dim, d, got)
			}
			// d*d re-rounds, so allow a few ulps around sq.
			if diff := math.Abs(d*d - sq); diff > 4*ulpAt(sq) {
				t.Fatalf("dim %d: MinDist²=%v vs MinDistSq=%v (diff %g)", dim, d*d, sq, diff)
			}
			if sq < 0 {
				t.Fatalf("dim %d: negative MinDistSq %v", dim, sq)
			}
			if a.Intersects(b) && sq != 0 {
				t.Fatalf("dim %d: intersecting rects with MinDistSq %v", dim, sq)
			}
		}
	}
}

// TestMinDistPointSqMatches checks the point-to-rectangle squared kernel
// against its sqrt form and against the degenerate-rectangle definition.
func TestMinDistPointSqMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dim := range []int{1, 2, 4, 8} {
		for i := 0; i < 2000; i++ {
			r := randRect(rng, dim)
			p := randPoint(rng, dim)
			sq := r.MinDistPointSq(p)
			if got := math.Sqrt(sq); got != r.MinDistPoint(p) {
				t.Fatalf("dim %d: MinDistPoint %v != Sqrt(MinDistPointSq) %v", dim, r.MinDistPoint(p), got)
			}
			if deg := r.MinDistSq(RectFromPoint(p)); deg != sq {
				t.Fatalf("dim %d: MinDistPointSq %v != MinDistSq(degenerate) %v", dim, sq, deg)
			}
			if r.ContainsPoint(p) && sq != 0 {
				t.Fatalf("dim %d: contained point with MinDistPointSq %v", dim, sq)
			}
		}
	}
}

// TestMinDistSqBatchMatchesScalar checks the columnar batch kernel against
// the scalar rectangle API for every specialized dimension and the generic
// fallback.
func TestMinDistSqBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, dim := range []int{1, 2, 3, 4, 6, 8, 16} {
		q := randRect(rng, dim)
		const n = 64
		lo := make([]float64, n*dim)
		hi := make([]float64, n*dim)
		rects := make([]Rect, n)
		for t := 0; t < n; t++ {
			r := randRect(rng, dim)
			rects[t] = r
			copy(lo[t*dim:], r.L)
			copy(hi[t*dim:], r.H)
		}
		out := make([]float64, n)
		MinDistSqBatch(q.L, q.H, lo, hi, out)
		for i, r := range rects {
			if want := q.MinDistSq(r); out[i] != want {
				t.Fatalf("dim %d target %d: batch %v != scalar %v", dim, i, out[i], want)
			}
		}
	}
}

// TestDistSqFlatMatchesPoint checks the flat point kernel against the
// Point API, including the exact-equality contract DistSq == Dist2.
func TestDistSqFlatMatchesPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, dim := range []int{1, 2, 3, 4, 7, 16} {
		for i := 0; i < 1000; i++ {
			p, q := randPoint(rng, dim), randPoint(rng, dim)
			want := p.DistSq(q)
			if got := DistSqFlat(p, q); got != want {
				t.Fatalf("dim %d: DistSqFlat %v != DistSq %v", dim, got, want)
			}
			if got := p.Dist2(q); got != want {
				t.Fatalf("dim %d: Dist2 %v != DistSq %v", dim, got, want)
			}
			if got := math.Sqrt(want); got != p.Dist(q) {
				t.Fatalf("dim %d: Dist %v != Sqrt(DistSq) %v", dim, p.Dist(q), got)
			}
		}
	}
}

// TestCenterInto checks the in-place center against Center.
func TestCenterInto(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, dim := range []int{1, 2, 4, 8} {
		for i := 0; i < 200; i++ {
			r := randRect(rng, dim)
			dst := make(Point, dim)
			r.CenterInto(dst)
			if !dst.Equal(r.Center()) {
				t.Fatalf("dim %d: CenterInto %v != Center %v", dim, dst, r.Center())
			}
		}
	}
}

// ulpAt returns the unit-in-the-last-place spacing at |x| (of float64),
// with a floor for x near zero.
func ulpAt(x float64) float64 {
	x = math.Abs(x)
	if x == 0 {
		return math.SmallestNonzeroFloat64
	}
	return math.Nextafter(x, math.Inf(1)) - x
}
