package geom

import (
	"fmt"
	"math"
	"strings"
)

// Rect is an n-dimensional hyper-rectangle (an MBR), represented as the
// paper represents it: two endpoints of its major diagonal, the low point L
// and the high point H, with L[i] <= H[i] for every axis i.
//
// The zero Rect (nil slices) is "empty": it contains nothing and extending
// it by a point yields the degenerate rectangle at that point.
type Rect struct {
	// L and H are the low and high corners; L[k] ≤ H[k] on every axis of
	// a valid rectangle. Hot paths may alias them into columnar bound
	// arrays (see core.Segmented), so treat them as read-only views.
	L, H Point
}

// NewRect builds a rectangle from its low and high corners. It returns an
// error if the dimensions differ or any low coordinate exceeds its high.
func NewRect(lo, hi Point) (Rect, error) {
	if len(lo) != len(hi) {
		return Rect{}, fmt.Errorf("%w: lo dim %d, hi dim %d", ErrDimensionMismatch, len(lo), len(hi))
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return Rect{}, fmt.Errorf("geom: invalid rect: lo[%d]=%g > hi[%d]=%g", i, lo[i], i, hi[i])
		}
	}
	return Rect{L: lo.Clone(), H: hi.Clone()}, nil
}

// MustRect is NewRect that panics on error; for literals in tests and
// internal construction from already-validated data.
func MustRect(lo, hi Point) Rect {
	r, err := NewRect(lo, hi)
	if err != nil {
		panic(err)
	}
	return r
}

// RectFromPoint returns the degenerate rectangle containing exactly p.
func RectFromPoint(p Point) Rect {
	return Rect{L: p.Clone(), H: p.Clone()}
}

// BoundingRect returns the minimum bounding rectangle of the given points.
// It returns the empty Rect when pts is empty.
func BoundingRect(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := RectFromPoint(pts[0])
	for _, p := range pts[1:] {
		r.ExtendPoint(p)
	}
	return r
}

// IsEmpty reports whether r is the empty rectangle.
func (r Rect) IsEmpty() bool { return len(r.L) == 0 }

// Dim returns the dimensionality of r (0 for the empty rectangle).
func (r Rect) Dim() int { return len(r.L) }

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect {
	if r.IsEmpty() {
		return Rect{}
	}
	return Rect{L: r.L.Clone(), H: r.H.Clone()}
}

// Equal reports whether r and s are the same rectangle.
func (r Rect) Equal(s Rect) bool { return r.L.Equal(s.L) && r.H.Equal(s.H) }

// Side returns the extent of r along axis k (the paper's L_k when sizing
// MBRs for the MCOST function).
func (r Rect) Side(k int) float64 { return r.H[k] - r.L[k] }

// Center returns the center point of r as a fresh allocation. Hot loops
// that compute many centers should use CenterInto with a reused buffer.
func (r Rect) Center() Point {
	c := make(Point, len(r.L))
	r.CenterInto(c)
	return c
}

// CenterInto writes the center point of r into dst, which must have r's
// dimensionality. It is the allocation-free form of Center for hot loops
// (e.g. the R*-tree reinsertion distance sort) that compute centers per
// entry.
func (r Rect) CenterInto(dst Point) {
	mustSameDim(r.L, dst)
	for i := range r.L {
		dst[i] = (r.L[i] + r.H[i]) / 2
	}
}

// Volume returns the n-dimensional volume of r (0 for the empty rect).
func (r Rect) Volume() float64 {
	if r.IsEmpty() {
		return 0
	}
	v := 1.0
	for i := range r.L {
		v *= r.H[i] - r.L[i]
	}
	return v
}

// Margin returns the sum of the edge lengths of r — the R*-tree split
// criterion's "margin" (perimeter generalization).
func (r Rect) Margin() float64 {
	if r.IsEmpty() {
		return 0
	}
	var m float64
	for i := range r.L {
		m += r.H[i] - r.L[i]
	}
	return m
}

// ExtendPoint grows r in place so that it contains p.
func (r *Rect) ExtendPoint(p Point) {
	if r.IsEmpty() {
		*r = RectFromPoint(p)
		return
	}
	mustSameDim(r.L, p)
	for i, v := range p {
		if v < r.L[i] {
			r.L[i] = v
		}
		if v > r.H[i] {
			r.H[i] = v
		}
	}
}

// ExtendRect grows r in place so that it contains s.
func (r *Rect) ExtendRect(s Rect) {
	if s.IsEmpty() {
		return
	}
	if r.IsEmpty() {
		*r = s.Clone()
		return
	}
	mustSameDim(r.L, s.L)
	for i := range s.L {
		if s.L[i] < r.L[i] {
			r.L[i] = s.L[i]
		}
		if s.H[i] > r.H[i] {
			r.H[i] = s.H[i]
		}
	}
}

// Union returns the minimum bounding rectangle of r and s.
func (r Rect) Union(s Rect) Rect {
	u := r.Clone()
	u.ExtendRect(s)
	return u
}

// ContainsPoint reports whether p lies inside r (boundaries inclusive).
func (r Rect) ContainsPoint(p Point) bool {
	if r.IsEmpty() || len(p) != len(r.L) {
		return false
	}
	for i, v := range p {
		if v < r.L[i] || v > r.H[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() || r.Dim() != s.Dim() {
		return false
	}
	for i := range r.L {
		if s.L[i] < r.L[i] || s.H[i] > r.H[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() || r.Dim() != s.Dim() {
		return false
	}
	for i := range r.L {
		if s.H[i] < r.L[i] || s.L[i] > r.H[i] {
			return false
		}
	}
	return true
}

// IntersectionVolume returns the volume of the overlap of r and s
// (0 when disjoint). Used by the R*-tree split heuristics.
func (r Rect) IntersectionVolume(s Rect) float64 {
	if r.IsEmpty() || s.IsEmpty() || r.Dim() != s.Dim() {
		return 0
	}
	v := 1.0
	for i := range r.L {
		lo := math.Max(r.L[i], s.L[i])
		hi := math.Min(r.H[i], s.H[i])
		if hi <= lo {
			return 0
		}
		v *= hi - lo
	}
	return v
}

// Enlargement returns the volume increase of r needed to include s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Volume() - r.Volume()
}

// MinDist returns the paper's Dmbr(A,B) (Definition 4): the minimum
// Euclidean distance between two hyper-rectangles. Per axis k the gap x_k
// is
//
//	l_B,k - h_A,k   if h_A,k < l_B,k   (B entirely to the right of A)
//	l_A,k - h_B,k   if h_B,k < l_A,k   (B entirely to the left of A)
//	0               otherwise          (the projections overlap)
//
// and Dmbr = sqrt(Σ x_k²). It is 0 when the rectangles intersect, matching
// the left case of the paper's Figure 2.
//
// MinDist is the result-reporting form; candidate selection should prefer
// MinDistSq compared against ε², which skips the square root (sqrt is
// monotone, so the comparisons agree).
func (r Rect) MinDist(s Rect) float64 {
	return math.Sqrt(r.MinDistSq(s))
}

// MinDistSq returns MinDist(r, s)² without taking the square root — the
// pruning-kernel form of the paper's Dmbr. Because sqrt is strictly
// monotone, Dmbr(A,B) ≤ ε exactly when MinDistSq(A,B) ≤ ε², so phase-2
// candidate selection runs entirely in squared space and defers the sqrt
// to emitted results. The accumulation order matches MinDist's, so
// MinDist == Sqrt(MinDistSq) bit-for-bit.
func (r Rect) MinDistSq(s Rect) float64 {
	mustSameDim(r.L, s.L)
	return MinDistSqLH(r.L, r.H, s.L, s.H)
}

// MinDistPoint returns the minimum Euclidean distance from point p to
// rectangle r (0 if p is inside r). Prefer MinDistPointSq against ε² in
// pruning loops.
func (r Rect) MinDistPoint(p Point) float64 {
	return math.Sqrt(r.MinDistPointSq(p))
}

// MinDistPointSq returns MinDistPoint(r, p)² without the square root —
// the squared-space kernel for point-to-rectangle pruning, degenerate
// case of MinDistSq (a point is a zero-extent rectangle).
func (r Rect) MinDistPointSq(p Point) float64 {
	mustSameDim(r.L, p)
	return MinDistSqLH(p, p, r.L, r.H)
}

// MaxDist returns the maximum Euclidean distance between any pair of
// points, one in r and one in s. It upper-bounds every point-pair distance
// and is useful for pruning diagnostics and tests.
func (r Rect) MaxDist(s Rect) float64 {
	mustSameDim(r.L, s.L)
	var sum float64
	for k := range r.L {
		a := math.Abs(s.H[k] - r.L[k])
		b := math.Abs(r.H[k] - s.L[k])
		x := math.Max(a, b)
		sum += x * x
	}
	return math.Sqrt(sum)
}

// String renders r as "[L -> H]".
func (r Rect) String() string {
	if r.IsEmpty() {
		return "[empty]"
	}
	var b strings.Builder
	b.WriteByte('[')
	b.WriteString(r.L.String())
	b.WriteString(" -> ")
	b.WriteString(r.H.String())
	b.WriteByte(']')
	return b.String()
}
