package store

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
)

// TestColdStartSpeedup is the headline perf gate for the v2 segment
// format: on a ≥100k-point corpus, opening the zero-copy columnar store
// must be at least 10× faster than the v1 path (which re-parses every
// record, re-runs MCOST partitioning, and re-sorts the R*-tree build),
// and the quantized float32 MinDistSq kernel must beat the exact float64
// one on dim ≥ 8. With BENCH_COLDSTART_OUT set it writes the measurements
// as a JSON artifact for CI.
func TestColdStartSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("cold-start corpus build is slow; skipped with -short")
	}
	const dim, nseq, ptsPer = 8, 500, 220 // 110k points
	rng := rand.New(rand.NewSource(2026))
	seqs := make([]*core.Sequence, nseq)
	for i := range seqs {
		seqs[i] = walkSeqD(rng, fmt.Sprintf("cold-%04d", i), ptsPer, dim)
	}
	var npoints int
	for _, s := range seqs {
		npoints += s.Len()
	}
	if npoints < 100_000 {
		t.Fatalf("corpus too small: %d points", npoints)
	}
	cfg := core.DefaultPartitionConfig()

	root := t.TempDir()
	v1dir := filepath.Join(root, "v1")
	v2dir := filepath.Join(root, "v2")
	if err := Build(v2dir, seqs, cfg); err != nil {
		t.Fatal(err)
	}
	ref, err := Load(v2dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveFormat(ref, v1dir, FormatV1); err != nil {
		t.Fatal(err)
	}
	ref.Close()

	// Cold open to a file-indexed, queryable database. The v2 store dir
	// carries its packed index pages from save time, so its cold open is
	// a reattach; the v1 format has no index pages, so its cold open
	// re-parses, re-partitions, and rebuilds the tree — scrub the index
	// cache a previous round left so every round is a true cold start.
	const rounds = 3
	openBest := func(dir string) time.Duration {
		best := time.Duration(math.MaxInt64)
		for i := 0; i < rounds; i++ {
			if dir == v1dir {
				os.Remove(filepath.Join(dir, "index.db"))
				os.Remove(filepath.Join(dir, "index.db.wal"))
			}
			t0 := time.Now()
			db, err := Load(dir, true)
			if err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
			db.Close()
		}
		return best
	}
	v1Open := openBest(v1dir)
	v2Open := openBest(v2dir)
	openSpeedup := float64(v1Open) / float64(v2Open)
	t.Logf("open %d seqs / %d points: v1 %v, v2 %v, speedup %.1fx", nseq, npoints, v1Open, v2Open, openSpeedup)
	if openSpeedup < 10 {
		t.Errorf("v2 cold open speedup %.1fx < 10x (v1 %v, v2 %v)", openSpeedup, v1Open, v2Open)
	}

	// Prefilter kernel throughput, exact float64 vs quantized float32
	// sidecar, on the wide dimensions where memory traffic dominates.
	type kernelRow struct {
		Dim          int     `json:"dim"`
		Boxes        int     `json:"boxes"`
		ExactNs      int64   `json:"exact_ns"`
		QuantNs      int64   `json:"quant_ns"`
		Speedup      float64 `json:"speedup"`
		MpairsExact  float64 `json:"mpairs_per_s_exact"`
		MpairsQuant  float64 `json:"mpairs_per_s_quant"`
		KernelRounds int     `json:"kernel_rounds"`
	}
	var kernels []kernelRow
	for _, kd := range []int{8, 16} {
		const n = 1 << 14
		lo := make([]float64, n*kd)
		hi := make([]float64, n*kd)
		for i := range lo {
			a, b := rng.Float64(), rng.Float64()
			if a > b {
				a, b = b, a
			}
			lo[i], hi[i] = a, b
		}
		qlo := make([]float32, n*kd)
		qhi := make([]float32, n*kd)
		geom.QuantizeDown(qlo, lo)
		geom.QuantizeUp(qhi, hi)
		qL := make([]float64, kd)
		qH := make([]float64, kd)
		for k := range qL {
			qL[k], qH[k] = 0.45, 0.55
		}
		out := make([]float64, n)
		const kernelRounds = 50
		measure := func(fn func()) time.Duration {
			fn() // warm
			best := time.Duration(math.MaxInt64)
			for i := 0; i < 5; i++ {
				t0 := time.Now()
				for r := 0; r < kernelRounds; r++ {
					fn()
				}
				if d := time.Since(t0); d < best {
					best = d
				}
			}
			return best
		}
		exactD := measure(func() { geom.MinDistSqBatch(qL, qH, lo, hi, out) })
		quantD := measure(func() { geom.MinDistSqBatchQ(qL, qH, qlo, qhi, out) })
		sp := float64(exactD) / float64(quantD)
		pairs := float64(n) * kernelRounds
		kernels = append(kernels, kernelRow{
			Dim: kd, Boxes: n,
			ExactNs: exactD.Nanoseconds(), QuantNs: quantD.Nanoseconds(),
			Speedup:      sp,
			MpairsExact:  pairs / exactD.Seconds() / 1e6,
			MpairsQuant:  pairs / quantD.Seconds() / 1e6,
			KernelRounds: kernelRounds,
		})
		t.Logf("MinDistSq dim=%d over %d boxes: exact %v, quantized %v, speedup %.2fx", kd, n, exactD, quantD, sp)
		if sp < 1.0 {
			t.Errorf("quantized MinDistSq slower than exact at dim %d (%.2fx)", kd, sp)
		}
	}

	if out := os.Getenv("BENCH_COLDSTART_OUT"); out != "" {
		doc := map[string]any{
			"name":         "coldstart_v1_vs_v2",
			"dim":          dim,
			"sequences":    nseq,
			"points":       npoints,
			"open_rounds":  rounds,
			"v1_open_ns":   v1Open.Nanoseconds(),
			"v2_open_ns":   v2Open.Nanoseconds(),
			"open_speedup": openSpeedup,
			"v1_path":      "parse records + MCOST re-partition + STR bulk load",
			"v2_path":      "mmap segments.sg2 + alias columnar arrays + packed-leaf bulk load",
			"kernels":      kernels,
		}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
			t.Fatalf("writing %s: %v", out, err)
		}
		t.Logf("wrote %s", out)
	}
}
