package store

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/rtree"
)

// Build is the parallel bulk-build pipeline: the corpus is validated and
// MCOST-partitioned into columnar segment form across GOMAXPROCS
// workers, a single merge pass computes the packed R*-tree leaf grouping
// (STR, bottom-up) over every partition MBR, and the result is committed
// crash-safely to dir as a v2 store. The written store opens with
// zero-copy Load — no re-partitioning, no one-at-a-time tree inserts.
func Build(dir string, seqs []*core.Sequence, cfg core.PartitionConfig) error {
	if len(seqs) == 0 {
		return errors.New("store: refusing to build an empty store")
	}
	dim := seqs[0].Dim()
	segs, err := buildSegments(seqs, dim, cfg)
	if err != nil {
		return err
	}
	return saveAtomic(dir, func(tmp string) error {
		return writeDirV2(tmp, dim, cfg, segs)
	})
}

// buildSegments validates and partitions seqs in parallel — the fan-out
// stage of Build, also used to upgrade v1 shard directories on load.
func buildSegments(seqs []*core.Sequence, dim int, cfg core.PartitionConfig) ([]*core.Segmented, error) {
	for i, s := range seqs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("store: sequence %d: %w", i, err)
		}
		if s.Dim() != dim {
			return nil, fmt.Errorf("store: sequence %d dim %d, want %d", i, s.Dim(), dim)
		}
	}
	segs := make([]*core.Segmented, len(seqs))
	errs := make([]error, len(seqs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				segs[i], errs[i] = core.NewSegmented(seqs[i], cfg)
			}
		}()
	}
	for i := range seqs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("store: partitioning sequence %d: %w", i, err)
		}
	}
	return segs, nil
}

// packLeaves computes the STR leaf grouping of an R*-tree over every
// partition MBR of segs, under the default page-derived fanout for dim.
// Refs use dense positions (segment i, MBR j), matching what
// core.AddAllSegmented assigns on load. Returns the grouping and the
// fanout it is valid for.
func packLeaves(segs []*core.Segmented, dim int) ([][]rtree.Ref, int, error) {
	maxE, minE, err := rtree.CapacityFor(0, dim, 0)
	if err != nil {
		return nil, 0, err
	}
	total := 0
	for _, g := range segs {
		total += len(g.MBRs)
	}
	items := make([]rtree.Item, 0, total)
	for i, g := range segs {
		for j := range g.MBRs {
			items = append(items, rtree.Item{Rect: g.MBRs[j].Rect, Ref: rtree.PackRef(uint32(i), uint32(j))})
		}
	}
	grouped := rtree.STRLeaves(items, dim, maxE, minE)
	leaves := make([][]rtree.Ref, len(grouped))
	for gi, g := range grouped {
		refs := make([]rtree.Ref, len(g))
		for k, it := range g {
			refs[k] = it.Ref
		}
		leaves[gi] = refs
	}
	return leaves, maxE, nil
}
