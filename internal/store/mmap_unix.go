//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package store

import (
	"os"
	"syscall"
)

// mapFile memory-maps f read-only. A successful mapping is page-aligned,
// so the 8-byte alignment float64View needs always holds. The mapping is
// intentionally never unmapped on the success path: the loaded database
// aliases slices straight into it for its whole lifetime, and the
// process exit reclaims it. An atomic re-save renames a new file into
// place, so the mapped (old) inode stays valid regardless.
func mapFile(f *os.File, size int64) ([]byte, bool) {
	if size <= 0 || int64(int(size)) != size {
		return nil, false
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false
	}
	return b, true
}

// unmapFile releases a mapping obtained from mapFile; the reader calls
// it only on validation failure, before any slice has escaped.
func unmapFile(b []byte) {
	syscall.Munmap(b)
}
