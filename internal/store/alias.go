package store

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// The v2 segment file stores every number little-endian. On a
// little-endian host the float sections are therefore valid in-memory
// []float64 representations already, and the loader aliases them in
// place with unsafe.Slice — the "zero per-sequence deserialization"
// half of the format. Big-endian (or pathologically misaligned) hosts
// fall back to decode-copies; correctness is identical, only the
// cold-start win shrinks.

// hostLittleEndian reports whether this machine stores multi-byte
// values in the file's byte order, detected once at init.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// alignedBytes returns a zeroed n-byte buffer whose base address is
// 8-byte aligned (it is carved from a []uint64 allocation), so float64
// views over any 8-byte-offset region of it are well aligned. Used by
// the whole-file read fallback when mmap is unavailable.
func alignedBytes(n int) []byte {
	if n == 0 {
		return nil
	}
	words := make([]uint64, (n+7)/8)
	b := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(words)*8)
	return b[:n]
}

// float64View reinterprets b as little-endian float64s. On a
// little-endian host with 8-byte alignment the data is aliased in place
// (zero copy); otherwise a decoded copy is returned.
func float64View(b []byte) []float64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// float32View is float64View for the quantized sidecar sections: b is
// reinterpreted as little-endian float32s, aliased in place on a
// little-endian host with 4-byte alignment, decoded otherwise.
func float32View(b []byte) []float32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// float32Bytes is float64Bytes for the quantized sidecar sections.
func float32Bytes(fs []float32) []byte {
	if len(fs) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&fs[0])), len(fs)*4)
	}
	out := make([]byte, len(fs)*4)
	for i, f := range fs {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(f))
	}
	return out
}

// float64Bytes views fs as the little-endian byte run the file stores —
// aliased on a little-endian host, encoded into a fresh buffer
// otherwise. The writer uses it for both checksumming and writing, so
// the large point/MBR sections are never copied on the common path.
func float64Bytes(fs []float64) []byte {
	if len(fs) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&fs[0])), len(fs)*8)
	}
	out := make([]byte, len(fs)*8)
	for i, f := range fs {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(f))
	}
	return out
}
