package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// Crash-safe directory replacement. A store directory is rewritten by
// staging its full replacement as a sibling ("<dir>.tmp", every file
// fsynced, the directory fsynced), then swapping it in with two renames
// through "<dir>.old" and fsyncing the parent. A crash therefore leaves
// one of: the old directory intact (stale .tmp ignored by Load, removed
// by the next Save), the new directory intact, or — in the instant
// between the two renames — the old directory complete under the .old
// name (recovery: rename it back; see OPERATIONS.md). No state mixes
// old and new files, which is what makes the two-file v2 layout
// (meta.bin + segments.sg2) torn-write safe.

// writeFileSynced writes data to path and fsyncs the file before
// closing; nothing may treat the file as saved until it is on disk.
func writeFileSynced(path string, data []byte, perm os.FileMode) error {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncFile fsyncs an already-written file by path (for writers like
// seqio that do not sync themselves).
func syncFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	err = f.Sync()
	f.Close()
	return err
}

// syncDir fsyncs a directory so entries created or renamed in it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	d.Close()
	return err
}

// syncTree fsyncs dir and every subdirectory beneath it (files are
// already synced individually by the writers).
func syncTree(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			if err := syncTree(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
		}
	}
	return syncDir(dir)
}

// saveAtomic replaces dir with a freshly staged directory: fill writes
// the complete contents into a sibling temp directory (individual files
// fsynced by their writers), which is then synced and swapped in.
func saveAtomic(dir string, fill func(tmp string) error) error {
	dir = filepath.Clean(dir)
	tmp, old := dir+".tmp", dir+".old"
	// Clear leftovers of an earlier crashed or interrupted save.
	if err := os.RemoveAll(tmp); err != nil {
		return err
	}
	if err := os.RemoveAll(old); err != nil {
		return err
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return err
	}
	if err := fill(tmp); err != nil {
		os.RemoveAll(tmp)
		return err
	}
	if err := syncTree(tmp); err != nil {
		os.RemoveAll(tmp)
		return err
	}
	if _, err := os.Stat(dir); err == nil {
		if err := os.Rename(dir, old); err != nil {
			return err
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if err := os.Rename(tmp, dir); err != nil {
		// Put the previous contents back so a failed save is a no-op.
		os.Rename(old, dir)
		return fmt.Errorf("store: committing %s: %w", dir, err)
	}
	if err := syncDir(filepath.Dir(dir)); err != nil {
		return err
	}
	return os.RemoveAll(old)
}
