package store

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

func walkSeq(rng *rand.Rand, label string, n int) *core.Sequence {
	pts := make([]geom.Point, n)
	cur := geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}
	for i := range pts {
		next := make(geom.Point, 3)
		for k := range next {
			next[k] = math.Min(1, math.Max(0, cur[k]+(rng.Float64()-0.5)*0.08))
		}
		pts[i], cur = next, next
	}
	return &core.Sequence{Label: label, Points: pts}
}

func buildDB(t *testing.T, n int) (*core.Database, []*core.Sequence) {
	t.Helper()
	db, err := core.NewDatabase(core.Options{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	rng := rand.New(rand.NewSource(int64(n)))
	var seqs []*core.Sequence
	for i := 0; i < n; i++ {
		s := walkSeq(rng, "seq-"+string(rune('a'+i)), 40+rng.Intn(60))
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, s)
	}
	return db, seqs
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db, seqs := buildDB(t, 12)
	dir := filepath.Join(t.TempDir(), "db")
	if err := Save(db, dir); err != nil {
		t.Fatal(err)
	}
	for _, fileIndex := range []bool{false, true} {
		loaded, err := Load(dir, fileIndex)
		if err != nil {
			t.Fatalf("Load(fileIndex=%v): %v", fileIndex, err)
		}
		if loaded.Len() != 12 {
			t.Errorf("loaded Len = %d", loaded.Len())
		}
		if loaded.PartitionConfig() != db.PartitionConfig() {
			t.Errorf("config drifted: %+v vs %+v", loaded.PartitionConfig(), db.PartitionConfig())
		}
		// Same search results on both databases.
		q := &core.Sequence{Points: seqs[4].Points[5:30]}
		a, _, err := db.Search(q, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := loaded.Search(q, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Errorf("fileIndex=%v: %d vs %d matches", fileIndex, len(a), len(b))
		}
		loaded.Close()
	}
}

func TestSaveSkipsRemovedSequences(t *testing.T) {
	db, _ := buildDB(t, 6)
	if err := db.Remove(2); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "db")
	if err := Save(db, dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.Len() != 5 {
		t.Errorf("loaded Len = %d, want 5", loaded.Len())
	}
}

func TestSaveEmptyDatabaseRejected(t *testing.T) {
	db, err := core.NewDatabase(core.Options{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := Save(db, t.TempDir()); err == nil {
		t.Error("empty save accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(dir, false); !errors.Is(err, ErrBadStore) {
		t.Errorf("missing meta: %v", err)
	}
	os.WriteFile(filepath.Join(dir, metaFile), []byte("junk"), 0o644)
	if _, err := Load(dir, false); !errors.Is(err, ErrBadStore) {
		t.Errorf("corrupt meta: %v", err)
	}
}

func TestLoadPreservesCustomPartitionConfig(t *testing.T) {
	cfg := core.PartitionConfig{QueryExtent: 0.5, MaxPoints: 17}
	db, err := core.NewDatabase(core.Options{Dim: 3, Partition: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rng := rand.New(rand.NewSource(9))
	if _, err := db.Add(walkSeq(rng, "x", 80)); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "db")
	if err := Save(db, dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if got := loaded.PartitionConfig(); got != cfg {
		t.Errorf("config = %+v, want %+v", got, cfg)
	}
}

func TestLoadReusesExistingIndex(t *testing.T) {
	db, seqs := buildDB(t, 10)
	dir := filepath.Join(t.TempDir(), "db")
	if err := Save(db, dir); err != nil {
		t.Fatal(err)
	}
	// First load builds the index file.
	l1, err := Load(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	l1.Close()
	idxPath := filepath.Join(dir, indexFile)
	st1, err := os.Stat(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	// Second load should reattach without rewriting the file.
	l2, err := Load(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	st2, err := os.Stat(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.ModTime().Equal(st1.ModTime()) || st2.Size() != st1.Size() {
		t.Errorf("index file rewritten on second load (mtime %v -> %v)", st1.ModTime(), st2.ModTime())
	}
	// And the reattached database answers correctly.
	q := &core.Sequence{Points: seqs[3].Points[5:25]}
	matches, _, err := l2.Search(q, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.Seq.Label == seqs[3].Label {
			found = true
		}
	}
	if !found {
		t.Error("reattached index missing the source sequence")
	}
}

func TestLoadRebuildsStaleIndex(t *testing.T) {
	db, _ := buildDB(t, 6)
	dir := filepath.Join(t.TempDir(), "db")
	if err := Save(db, dir); err != nil {
		t.Fatal(err)
	}
	// Plant garbage where the index should be.
	if err := os.WriteFile(filepath.Join(dir, indexFile), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir, true)
	if err != nil {
		t.Fatalf("Load with stale index: %v", err)
	}
	defer loaded.Close()
	if loaded.Len() != 6 {
		t.Errorf("Len = %d", loaded.Len())
	}
}

func TestSaveToUnwritableDirFails(t *testing.T) {
	db, _ := buildDB(t, 2)
	// A path whose parent is a file cannot be created.
	parent := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(parent, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Save(db, filepath.Join(parent, "sub")); err == nil {
		t.Error("save into file-as-directory accepted")
	}
}

func TestLoadRejectsCorruptSequences(t *testing.T) {
	db, _ := buildDB(t, 3)
	dir := filepath.Join(t.TempDir(), "db")
	if err := SaveFormat(db, dir, FormatV1); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, seqFile), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, false); !errors.Is(err, ErrBadStore) {
		t.Errorf("corrupt sequences: %v", err)
	}
}

func TestLoadRejectsCorruptSegments(t *testing.T) {
	db, _ := buildDB(t, 3)
	dir := filepath.Join(t.TempDir(), "db")
	if err := Save(db, dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segFile), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, false); !errors.Is(err, ErrBadStore) {
		t.Errorf("corrupt segments: %v", err)
	}
}

func TestLoadRejectsWrongMetaLength(t *testing.T) {
	db, _ := buildDB(t, 3)
	dir := filepath.Join(t.TempDir(), "db")
	if err := Save(db, dir); err != nil {
		t.Fatal(err)
	}
	meta, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, metaFile), meta[:len(meta)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, false); !errors.Is(err, ErrBadStore) {
		t.Errorf("short meta: %v", err)
	}
}

func TestSaveLoadPreservesLabels(t *testing.T) {
	db, seqs := buildDB(t, 4)
	dir := filepath.Join(t.TempDir(), "db")
	if err := Save(db, dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	got := loaded.Sequences()
	for i, s := range got {
		if s.Label != seqs[i].Label {
			t.Errorf("sequence %d label %q, want %q", i, s.Label, seqs[i].Label)
		}
	}
}
