package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/fractal"
	"repro/internal/shard"
)

func shardedCorpus(t *testing.T, n int, seed int64) []*core.Sequence {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	seqs, err := fractal.GenerateSet(rng, n, 48, 96, fractal.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return seqs
}

func searchLabels(t *testing.T, db shard.DB, q *core.Sequence, eps float64) []string {
	t.Helper()
	matches, _, err := db.Search(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]string, len(matches))
	for i, m := range matches {
		labels[i] = m.Seq.Label
	}
	sort.Strings(labels)
	return labels
}

func TestShardedSaveLoadRoundTrip(t *testing.T) {
	for _, fileIndex := range []bool{false, true} {
		t.Run(fmt.Sprintf("fileIndex=%v", fileIndex), func(t *testing.T) {
			seqs := shardedCorpus(t, 30, 21)
			sdb, err := shard.New(core.Options{Dim: 3}, 4)
			if err != nil {
				t.Fatal(err)
			}
			defer sdb.Close()
			if _, err := sdb.AddAll(seqs); err != nil {
				t.Fatal(err)
			}
			q := &core.Sequence{Label: "q", Points: seqs[2].Points[:20]}
			wantLabels := searchLabels(t, sdb, q, 0.25)
			wantLens := sdb.ShardLens()

			dir := filepath.Join(t.TempDir(), "db")
			if err := SaveSharded(sdb, dir); err != nil {
				t.Fatal(err)
			}
			if !IsSharded(dir) {
				t.Fatal("saved dir not detected as sharded")
			}

			loaded, err := LoadSharded(dir, fileIndex)
			if err != nil {
				t.Fatal(err)
			}
			defer loaded.Close()
			if loaded.Shards() != 4 {
				t.Fatalf("loaded %d shards, want 4", loaded.Shards())
			}
			if loaded.Len() != 30 {
				t.Fatalf("loaded %d sequences, want 30", loaded.Len())
			}
			if got := loaded.ShardLens(); !reflect.DeepEqual(got, wantLens) {
				t.Fatalf("placement not preserved: %v, want %v", got, wantLens)
			}
			if got := searchLabels(t, loaded, q, 0.25); !reflect.DeepEqual(got, wantLabels) {
				t.Fatalf("search after reload: %v, want %v", got, wantLabels)
			}
		})
	}
}

func TestShardedSaveLoadWithEmptyShards(t *testing.T) {
	// 2 sequences over 6 shards: several shard dirs hold only metadata.
	seqs := shardedCorpus(t, 2, 22)
	sdb, err := shard.New(core.Options{Dim: 3}, 6)
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()
	if _, err := sdb.AddAll(seqs); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "db")
	if err := SaveSharded(sdb, dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSharded(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.Len() != 2 || loaded.Shards() != 6 {
		t.Fatalf("loaded %d sequences over %d shards, want 2 over 6", loaded.Len(), loaded.Shards())
	}
}

func TestLoadShardedSingleDirCompat(t *testing.T) {
	// A plain single-node store loads as one shard.
	seqs := shardedCorpus(t, 12, 23)
	db, err := core.NewDatabase(core.Options{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.AddAll(seqs); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "db")
	if err := Save(db, dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSharded(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.Shards() != 1 {
		t.Fatalf("single-dir store loaded as %d shards, want 1", loaded.Shards())
	}
	if loaded.Len() != 12 {
		t.Fatalf("loaded %d sequences, want 12", loaded.Len())
	}
	q := &core.Sequence{Label: "q", Points: seqs[0].Points[:16]}
	want := searchLabels(t, db, q, 0.25)
	if got := searchLabels(t, loaded, q, 0.25); !reflect.DeepEqual(got, want) {
		t.Fatalf("search diverges after single-dir load: %v, want %v", got, want)
	}
}

func TestLoadRejectsShardedDir(t *testing.T) {
	seqs := shardedCorpus(t, 4, 24)
	sdb, err := shard.New(core.Options{Dim: 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()
	if _, err := sdb.AddAll(seqs); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "db")
	if err := SaveSharded(sdb, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, false); err == nil {
		t.Fatal("Load on a sharded dir: want error")
	}
}

func TestSaveShardedRefusesEmpty(t *testing.T) {
	sdb, err := shard.New(core.Options{Dim: 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()
	if err := SaveSharded(sdb, t.TempDir()); err == nil {
		t.Fatal("want error saving empty sharded database")
	}
}

func TestLoadShardedRejectsCorruptShardsFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, shardsFile), []byte("garbage!xx"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSharded(dir, false); err == nil {
		t.Fatal("want error on corrupt shards file")
	}
}
