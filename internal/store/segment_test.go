package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

// walkSeqD is walkSeq for an arbitrary dimensionality.
func walkSeqD(rng *rand.Rand, label string, n, dim int) *core.Sequence {
	pts := make([]geom.Point, n)
	cur := make(geom.Point, dim)
	for k := range cur {
		cur[k] = rng.Float64()
	}
	for i := range pts {
		next := make(geom.Point, dim)
		for k := range next {
			next[k] = math.Min(1, math.Max(0, cur[k]+(rng.Float64()-0.5)*0.08))
		}
		pts[i], cur = next, next
	}
	return &core.Sequence{Label: label, Points: pts}
}

func corpusSeqs(seed int64, n, dim int) []*core.Sequence {
	rng := rand.New(rand.NewSource(seed))
	seqs := make([]*core.Sequence, n)
	for i := range seqs {
		seqs[i] = walkSeqD(rng, fmt.Sprintf("seq-%03d", i), 40+rng.Intn(80), dim)
	}
	return seqs
}

func TestSegmentsRoundTrip(t *testing.T) {
	for _, dim := range []int{2, 3, 8} {
		seqs := corpusSeqs(int64(dim), 9, dim)
		cfg := core.DefaultPartitionConfig()
		segs, err := buildSegments(seqs, dim, cfg)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), segFile)
		if err := WriteSegments(path, dim, cfg, segs); err != nil {
			t.Fatal(err)
		}
		c, err := ReadSegments(path)
		if err != nil {
			t.Fatal(err)
		}
		if c.Dim != dim || c.Config != cfg || len(c.Segs) != len(segs) {
			t.Fatalf("dim=%d: corpus header %d/%+v/%d", dim, c.Dim, c.Config, len(c.Segs))
		}
		if c.TreeM <= 0 || len(c.Leaves) == 0 {
			t.Fatalf("dim=%d: no packed leaves (treeM=%d)", dim, c.TreeM)
		}
		for i, g := range c.Segs {
			w := segs[i]
			if g.Seq.Label != w.Seq.Label || g.Seq.Len() != w.Seq.Len() || len(g.MBRs) != len(w.MBRs) {
				t.Fatalf("dim=%d seq %d: shape mismatch", dim, i)
			}
			for j := range g.Flat {
				if g.Flat[j] != w.Flat[j] {
					t.Fatalf("dim=%d seq %d: Flat[%d] differs", dim, i, j)
				}
			}
			for j := range g.Lo {
				if g.Lo[j] != w.Lo[j] || g.Hi[j] != w.Hi[j] {
					t.Fatalf("dim=%d seq %d: bound %d differs", dim, i, j)
				}
			}
			for j, p := range g.Seq.Points {
				for k := range p {
					if p[k] != w.Seq.Points[j][k] {
						t.Fatalf("dim=%d seq %d: point %d differs", dim, i, j)
					}
				}
			}
		}
	}
}

// mutateAt returns a copy of the file with one byte at off flipped.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off += int64(len(b))
	}
	b[off] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func writeGoodSegments(t *testing.T, dir string) (string, []byte) {
	t.Helper()
	seqs := corpusSeqs(7, 6, 3)
	cfg := core.DefaultPartitionConfig()
	segs, err := buildSegments(seqs, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segFile)
	if err := WriteSegments(path, 3, cfg, segs); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, raw
}

func TestReadSegmentsRejectsCorruption(t *testing.T) {
	path, good := writeGoodSegments(t, t.TempDir())
	if _, err := ReadSegments(path); err != nil {
		t.Fatalf("pristine file rejected: %v", err)
	}

	restore := func() {
		if err := os.WriteFile(path, good, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		name    string
		corrupt func()
	}{
		{"empty file", func() { os.WriteFile(path, nil, 0o644) }},
		{"truncated header", func() { os.WriteFile(path, good[:segHeaderLen/2], 0o644) }},
		{"header only", func() { os.WriteFile(path, good[:segHeaderLen], 0o644) }},
		{"bad magic", func() { flipByte(t, path, 0) }},
		{"bad version", func() { flipByte(t, path, 8) }},
		{"zero dim", func() {
			b := append([]byte(nil), good...)
			binary.LittleEndian.PutUint32(b[12:16], 0)
			os.WriteFile(path, b, 0o644)
		}},
		{"huge dim", func() {
			b := append([]byte(nil), good...)
			binary.LittleEndian.PutUint32(b[12:16], 1<<30)
			os.WriteFile(path, b, 0o644)
		}},
		{"header CRC flipped", func() { flipByte(t, path, 76) }},
		{"nseqs inflated", func() {
			b := append([]byte(nil), good...)
			binary.LittleEndian.PutUint64(b[16:24], 1<<40)
			os.WriteFile(path, b, 0o644)
		}},
		{"truncated tail", func() { os.WriteFile(path, good[:len(good)-8], 0o644) }},
		{"trailing garbage", func() { os.WriteFile(path, append(append([]byte(nil), good...), 0, 0, 0, 0, 0, 0, 0, 0), 0o644) }},
		{"seqdir payload flipped", func() { flipByte(t, path, int64(segHeaderLen+secHeaderLen)) }},
		{"points payload flipped (mid-file)", func() { flipByte(t, path, int64(len(good)/2)) }},
		{"last payload byte flipped", func() { flipByte(t, path, -1) }},
	}
	for _, tc := range cases {
		restore()
		tc.corrupt()
		c, err := ReadSegments(path)
		if !errors.Is(err, ErrBadStore) {
			t.Errorf("%s: err = %v (corpus %v), want ErrBadStore", tc.name, err, c != nil)
		}
	}

	// Flip one byte in every section header and payload region to shake
	// out any unchecksummed range. Every single-byte corruption must be
	// detected: the header CRC covers the header, each section CRC covers
	// its payload, and section ids/lengths are validated structurally.
	restore()
	step := len(good)/97 + 1
	for off := 0; off < len(good); off += step {
		restore()
		flipByte(t, path, int64(off))
		if _, err := ReadSegments(path); !errors.Is(err, ErrBadStore) {
			t.Fatalf("flip at %d/%d: err = %v, want ErrBadStore", off, len(good), err)
		}
	}
}

func TestBuildMatchesIncrementalIndex(t *testing.T) {
	for _, dim := range []int{2, 4, 8, 16} {
		seqs := corpusSeqs(int64(100+dim), 14, dim)
		cfg := core.DefaultPartitionConfig()

		dir := filepath.Join(t.TempDir(), "db")
		if err := Build(dir, seqs, cfg); err != nil {
			t.Fatalf("dim=%d: Build: %v", dim, err)
		}
		built, err := Load(dir, false)
		if err != nil {
			t.Fatalf("dim=%d: Load(Build dir): %v", dim, err)
		}
		defer built.Close()

		fresh, err := core.NewDatabase(core.Options{Dim: dim, Partition: cfg})
		if err != nil {
			t.Fatal(err)
		}
		defer fresh.Close()
		if _, err := fresh.AddAll(seqs); err != nil {
			t.Fatal(err)
		}

		q := &core.Sequence{Points: seqs[5].Points[3:28]}
		for _, eps := range []float64{0.02, 0.1, 0.4} {
			a, _, err := fresh.Search(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := built.Search(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			assertMatchesIdentical(t, fmt.Sprintf("dim=%d eps=%v", dim, eps), a, b)
		}
	}
}

// assertMatchesIdentical requires bit-identical search results: same
// sequences in the same order with exactly equal MinDnorm and intervals.
func assertMatchesIdentical(t *testing.T, ctx string, a, b []core.Match) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d matches", ctx, len(a), len(b))
	}
	for i := range a {
		if a[i].Seq.Label != b[i].Seq.Label {
			t.Fatalf("%s match %d: label %q vs %q", ctx, i, a[i].Seq.Label, b[i].Seq.Label)
		}
		if a[i].MinDnorm != b[i].MinDnorm {
			t.Fatalf("%s match %d (%s): MinDnorm %v vs %v — not bit-identical",
				ctx, i, a[i].Seq.Label, a[i].MinDnorm, b[i].MinDnorm)
		}
		if a[i].Interval.String() != b[i].Interval.String() {
			t.Fatalf("%s match %d (%s): intervals %s vs %s",
				ctx, i, a[i].Seq.Label, a[i].Interval.String(), b[i].Interval.String())
		}
	}
}

// TestFormatAndQuantizationEquivalence is satellite 2's core assertion:
// across dims and formats, with and without the quantized prefilter,
// search results are bit-identical to a freshly built database.
func TestFormatAndQuantizationEquivalence(t *testing.T) {
	for _, dim := range []int{2, 4, 8, 16} {
		seqs := corpusSeqs(int64(200+dim), 12, dim)
		ref, err := core.NewDatabase(core.Options{Dim: dim})
		if err != nil {
			t.Fatal(err)
		}
		defer ref.Close()
		if _, err := ref.AddAll(seqs); err != nil {
			t.Fatal(err)
		}

		queries := []*core.Sequence{
			{Points: seqs[2].Points[0:20]},
			{Points: seqs[7].Points[10:40]},
		}
		type variant struct {
			name   string
			format Format
			opts   LoadOptions
		}
		variants := []variant{
			{"v1 exact", FormatV1, LoadOptions{}},
			{"v1 quantized", FormatV1, LoadOptions{Quantized: true}},
			{"v2 exact", FormatV2, LoadOptions{}},
			{"v2 quantized", FormatV2, LoadOptions{Quantized: true}},
			{"v2 fileindex quantized", FormatV2, LoadOptions{FileIndex: true, Quantized: true}},
		}
		for _, v := range variants {
			dir := filepath.Join(t.TempDir(), "db")
			if err := SaveFormat(ref, dir, v.format); err != nil {
				t.Fatalf("dim=%d %s: save: %v", dim, v.name, err)
			}
			db, err := LoadWith(dir, v.opts)
			if err != nil {
				t.Fatalf("dim=%d %s: load: %v", dim, v.name, err)
			}
			for qi, q := range queries {
				for _, eps := range []float64{0.05, 0.2} {
					want, _, err := ref.Search(q, eps)
					if err != nil {
						t.Fatal(err)
					}
					got, stats, err := db.Search(q, eps)
					if err != nil {
						t.Fatal(err)
					}
					assertMatchesIdentical(t,
						fmt.Sprintf("dim=%d %s q%d eps=%v", dim, v.name, qi, eps), want, got)
					if v.opts.Quantized && stats.MatchesDnorm > 0 && stats.DnormEvals == 0 {
						t.Errorf("dim=%d %s: matches without Dnorm evals", dim, v.name)
					}
				}
			}
			db.Close()
		}
	}
}

func TestSaveIsAtomicAgainstTornWrites(t *testing.T) {
	db, _ := buildDB(t, 8)
	dir := filepath.Join(t.TempDir(), "db")
	if err := Save(db, dir); err != nil {
		t.Fatal(err)
	}

	// Truncating the segment file mid-payload must fail closed.
	segPath := filepath.Join(dir, segFile)
	raw, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, keep := range []int{0, segHeaderLen, len(raw) / 3, len(raw) - 1} {
		if err := os.WriteFile(segPath, raw[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dir, false); !errors.Is(err, ErrBadStore) {
			t.Errorf("torn write (%d/%d bytes): err = %v, want ErrBadStore", keep, len(raw), err)
		}
	}
	if err := os.WriteFile(segPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// A crashed save leaves dir.tmp (and possibly dir.old); a fresh Save
	// must clear both and still land atomically, and Load must ignore them.
	for _, stale := range []string{dir + ".tmp", dir + ".old"} {
		if err := os.MkdirAll(stale, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(stale, "junk"), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	loaded, err := Load(dir, false)
	if err != nil {
		t.Fatalf("load with stale temp dirs: %v", err)
	}
	loaded.Close()
	if err := Save(db, dir); err != nil {
		t.Fatalf("save over stale temp dirs: %v", err)
	}
	for _, stale := range []string{dir + ".tmp", dir + ".old"} {
		if _, err := os.Stat(stale); !os.IsNotExist(err) {
			t.Errorf("%s survived Save", stale)
		}
	}
	loaded, err = Load(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 8 {
		t.Errorf("Len = %d after re-save", loaded.Len())
	}
	loaded.Close()
}

func TestV2LoadSurvivesFanoutChange(t *testing.T) {
	// A v2 file whose packed leaves were built under a different fanout
	// must still load (plain bulk load path) with identical results.
	db, seqs := buildDB(t, 10)
	dir := filepath.Join(t.TempDir(), "db")
	if err := Save(db, dir); err != nil {
		t.Fatal(err)
	}
	// Rewrite the stored treeM so it mismatches, fixing the header CRC.
	segPath := filepath.Join(dir, segFile)
	raw, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(raw[56:60], 7777)
	binary.LittleEndian.PutUint32(raw[76:80], crc32.Checksum(raw[:76], castagnoli))
	if err := os.WriteFile(segPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir, false)
	if err != nil {
		t.Fatalf("load with foreign fanout: %v", err)
	}
	defer loaded.Close()
	q := &core.Sequence{Points: seqs[4].Points[5:30]}
	a, _, err := db.Search(q, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := loaded.Search(q, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesIdentical(t, "fanout change", a, b)
}
