package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/rtree"
)

// v2 segment file (segments.sg2) — the zero-copy columnar store format.
//
// The file is one 80-byte header followed by sections in a fixed order,
// every number little-endian:
//
//	header:
//	  [ 0: 8)  magic "MDSSEG2\0"
//	  [ 8:12)  version u32 (= 2)
//	  [12:16)  dim u32
//	  [16:24)  nseqs u64
//	  [24:32)  npoints u64   (sum of sequence lengths)
//	  [32:40)  nmbrs u64     (sum of partition MBR counts)
//	  [40:48)  queryExtent f64 bits (partition config)
//	  [48:56)  maxPoints u64        (partition config)
//	  [56:60)  treeM u32    (STR fanout of the packed-tree sections; 0 = absent)
//	  [60:64)  nleaves u32
//	  [64:72)  labelBytes u64
//	  [72:76)  reserved u32 (0)
//	  [76:80)  headerCRC u32 — CRC-32C of bytes [0:76)
//
//	section := id u32 | crc u32 | payloadLen u64 | payload | zero pad to 8
//	  (crc is CRC-32C of the unpadded payload)
//
//	1 seqdir   nseqs × {pointCount u32, mbrCount u32, labelLen u32, 0 u32}
//	2 labels   labelBytes of concatenated label bytes (seqdir order)
//	3 points   npoints × dim f64 — every sequence's flat point array,
//	           concatenated in id order (sequence i's point k at
//	           flat[k*dim:(k+1)*dim])
//	4 mbrdir   nmbrs × {start u32, end u32} — half-open point ranges,
//	           relative to the owning sequence, concatenated in id order
//	5 lo       nmbrs × dim f64 — MBR lower bounds, concatenated
//	6 hi       nmbrs × dim f64 — MBR upper bounds, concatenated
//	7 qlo      nmbrs × dim f32 — quantized lower bounds (lo rounded
//	           toward −∞; see geom.QuantizeDown)
//	8 qhi      nmbrs × dim f32 — quantized upper bounds (hi rounded
//	           toward +∞)
//	9 leafdir  nleaves × u32 — entries per packed R*-tree leaf (iff treeM > 0)
//	10 leafrefs nmbrs × u64 — rtree refs in STR leaf order; the id half of
//	           each ref is the sequence's *position* (0-based, dense), not
//	           a persisted database id (iff treeM > 0)
//
// Sections 3, 5-8 are exactly the in-memory representation of the
// Segmented columnar arrays (Flat/Lo/Hi/QLo/QHi) on a little-endian
// host, and every section payload starts 8-byte aligned (80-byte header,
// 16-byte section headers, 8-padded payloads), so the loader aliases
// them in place — no per-sequence deserialization and no re-running of
// the outward float32 rounding. Sections 9/10 carry the STR leaf
// grouping of the R*-tree so reloading packs the tree bottom-up without
// re-sorting (rtree.BulkLoadLeaves).
const (
	segFile      = "segments.sg2"
	segMagic     = "MDSSEG2\x00"
	segVersion   = 2
	segHeaderLen = 80
	secHeaderLen = 16

	secSeqDir   = 1
	secLabels   = 2
	secPoints   = 3
	secMBRDir   = 4
	secLo       = 5
	secHi       = 6
	secQLo      = 7
	secQHi      = 8
	secLeafDir  = 9
	secLeafRefs = 10

	// Sanity caps: far above anything this system handles, low enough
	// that a corrupt header cannot drive allocations or offset arithmetic
	// anywhere interesting.
	maxSegSeqs   = 1 << 31
	maxSegPoints = 1 << 40
	maxSegLabels = 1 << 40
)

// castagnoli is the CRC-32C table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Corpus is a decoded v2 segment file: the partitioned corpus in its
// columnar form plus, when the file carries one, the packed R*-tree
// leaf grouping. Segs are in file (position) order; any sequence ids
// embedded in Leaves refer to positions in Segs.
type Corpus struct {
	// Dim is the dimensionality of every sequence.
	Dim int
	// Config is the partitioning configuration the segments were built
	// under.
	Config core.PartitionConfig
	// Segs holds the sequences with their partitioning, columnar arrays
	// aliased into the file's buffer on little-endian hosts.
	Segs []*core.Segmented
	// Leaves is the STR leaf grouping for rtree.BulkLoadLeaves, or nil
	// when the file has no packed-tree sections.
	Leaves [][]rtree.Ref
	// TreeM is the R*-tree fanout Leaves was computed for (0 when absent);
	// a loader whose tree uses a different fanout must ignore Leaves.
	TreeM int
	// Mapped reports whether the backing buffer is a retained mmap of the
	// file rather than a private read.
	Mapped bool
}

// secSpec pairs a section id with its payload producer and exact size.
type secSpec struct {
	id   uint32
	size uint64
	// emit streams the payload as consecutive chunks; it is called twice
	// (checksum pass, write pass) and must produce identical bytes.
	emit func(func([]byte))
}

func pad8(n uint64) uint64 { return (n + 7) &^ 7 }

// WriteSegments writes the partitioned corpus as one v2 segment file at
// path, computing the packed STR leaf grouping for the default R*-tree
// fanout, and fsyncs the file before returning. Segs must be non-empty
// and uniform in dimensionality; any Seq.ID values are ignored — refs in
// the tree sections use dense positions.
func WriteSegments(path string, dim int, cfg core.PartitionConfig, segs []*core.Segmented) error {
	leaves, treeM, err := packLeaves(segs, dim)
	if err != nil {
		return err
	}
	return writeSegmentsFile(path, dim, cfg, segs, leaves, treeM)
}

// ReadSegments reads and validates a v2 segment file. All sections are
// checksummed; any structural violation fails with ErrBadStore.
func ReadSegments(path string) (*Corpus, error) {
	return readSegmentsFile(path)
}

// writeSegmentsFile serializes segs (with a precomputed leaf grouping)
// to path. leaves nil/empty omits the tree sections.
func writeSegmentsFile(path string, dim int, cfg core.PartitionConfig, segs []*core.Segmented, leaves [][]rtree.Ref, treeM int) error {
	if len(segs) == 0 {
		return fmt.Errorf("store: refusing to write an empty segment file")
	}
	if dim < 1 || dim > maxMetaDims {
		return fmt.Errorf("store: segment dim %d out of range", dim)
	}
	var npoints, nmbrs, labelBytes uint64
	for i, g := range segs {
		if g == nil || g.Seq == nil {
			return fmt.Errorf("store: nil segment %d", i)
		}
		if g.Seq.Dim() != dim {
			return fmt.Errorf("store: segment %d dim %d, want %d", i, g.Seq.Dim(), dim)
		}
		n, r := g.Seq.Len(), len(g.MBRs)
		if n < 1 || r < 1 || uint64(n) > math.MaxUint32 || uint64(r) > math.MaxUint32 {
			return fmt.Errorf("store: segment %d has %d points, %d MBRs", i, n, r)
		}
		if uint64(len(g.Seq.Label)) > math.MaxUint32 {
			return fmt.Errorf("store: segment %d label too long", i)
		}
		if len(g.QLo) != r*dim || len(g.QHi) != r*dim {
			return fmt.Errorf("store: segment %d quantized sidecar %d/%d, want %d", i, len(g.QLo), len(g.QHi), r*dim)
		}
		npoints += uint64(n)
		nmbrs += uint64(r)
		labelBytes += uint64(len(g.Seq.Label))
	}
	if len(leaves) == 0 {
		leaves, treeM = nil, 0
	}

	d := uint64(dim)
	var scratch [16]byte
	sections := []secSpec{
		{secSeqDir, uint64(len(segs)) * 16, func(emit func([]byte)) {
			for _, g := range segs {
				binary.LittleEndian.PutUint32(scratch[0:4], uint32(g.Seq.Len()))
				binary.LittleEndian.PutUint32(scratch[4:8], uint32(len(g.MBRs)))
				binary.LittleEndian.PutUint32(scratch[8:12], uint32(len(g.Seq.Label)))
				binary.LittleEndian.PutUint32(scratch[12:16], 0)
				emit(scratch[:16])
			}
		}},
		{secLabels, labelBytes, func(emit func([]byte)) {
			for _, g := range segs {
				if len(g.Seq.Label) > 0 {
					emit([]byte(g.Seq.Label))
				}
			}
		}},
		{secPoints, npoints * d * 8, func(emit func([]byte)) {
			for _, g := range segs {
				emit(float64Bytes(g.Flat))
			}
		}},
		{secMBRDir, nmbrs * 8, func(emit func([]byte)) {
			for _, g := range segs {
				for _, m := range g.MBRs {
					binary.LittleEndian.PutUint32(scratch[0:4], uint32(m.Start))
					binary.LittleEndian.PutUint32(scratch[4:8], uint32(m.End))
					emit(scratch[:8])
				}
			}
		}},
		{secLo, nmbrs * d * 8, func(emit func([]byte)) {
			for _, g := range segs {
				emit(float64Bytes(g.Lo))
			}
		}},
		{secHi, nmbrs * d * 8, func(emit func([]byte)) {
			for _, g := range segs {
				emit(float64Bytes(g.Hi))
			}
		}},
		{secQLo, nmbrs * d * 4, func(emit func([]byte)) {
			for _, g := range segs {
				emit(float32Bytes(g.QLo))
			}
		}},
		{secQHi, nmbrs * d * 4, func(emit func([]byte)) {
			for _, g := range segs {
				emit(float32Bytes(g.QHi))
			}
		}},
	}
	if treeM > 0 {
		sections = append(sections,
			secSpec{secLeafDir, uint64(len(leaves)) * 4, func(emit func([]byte)) {
				for _, leaf := range leaves {
					binary.LittleEndian.PutUint32(scratch[0:4], uint32(len(leaf)))
					emit(scratch[:4])
				}
			}},
			secSpec{secLeafRefs, nmbrs * 8, func(emit func([]byte)) {
				for _, leaf := range leaves {
					for _, ref := range leaf {
						binary.LittleEndian.PutUint64(scratch[0:8], uint64(ref))
						emit(scratch[:8])
					}
				}
			}},
		)
	}

	hdr := make([]byte, segHeaderLen)
	copy(hdr[0:8], segMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], segVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(dim))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(segs)))
	binary.LittleEndian.PutUint64(hdr[24:32], npoints)
	binary.LittleEndian.PutUint64(hdr[32:40], nmbrs)
	binary.LittleEndian.PutUint64(hdr[40:48], math.Float64bits(cfg.QueryExtent))
	binary.LittleEndian.PutUint64(hdr[48:56], uint64(cfg.MaxPoints))
	binary.LittleEndian.PutUint32(hdr[56:60], uint32(treeM))
	binary.LittleEndian.PutUint32(hdr[60:64], uint32(len(leaves)))
	binary.LittleEndian.PutUint64(hdr[64:72], labelBytes)
	binary.LittleEndian.PutUint32(hdr[72:76], 0)
	binary.LittleEndian.PutUint32(hdr[76:80], crc32.Checksum(hdr[:76], castagnoli))

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	werr := func() error {
		if _, err := w.Write(hdr); err != nil {
			return err
		}
		var pad [8]byte
		for _, s := range sections {
			// Pass 1: checksum. Pass 2: header + payload + pad. The float
			// sections emit aliased views, so neither pass copies them.
			crc := uint32(0)
			s.emit(func(b []byte) { crc = crc32.Update(crc, castagnoli, b) })
			var sh [secHeaderLen]byte
			binary.LittleEndian.PutUint32(sh[0:4], s.id)
			binary.LittleEndian.PutUint32(sh[4:8], crc)
			binary.LittleEndian.PutUint64(sh[8:16], s.size)
			if _, err := w.Write(sh[:]); err != nil {
				return err
			}
			written := uint64(0)
			var emitErr error
			s.emit(func(b []byte) {
				if emitErr != nil {
					return
				}
				written += uint64(len(b))
				_, emitErr = w.Write(b)
			})
			if emitErr != nil {
				return emitErr
			}
			if written != s.size {
				return fmt.Errorf("store: section %d wrote %d bytes, want %d", s.id, written, s.size)
			}
			if p := pad8(s.size) - s.size; p > 0 {
				if _, err := w.Write(pad[:p]); err != nil {
					return err
				}
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(path)
	}
	return werr
}

// readSegmentsFile maps (or reads, on platforms without mmap) path and
// decodes it into a Corpus, aliasing the float sections in place on
// little-endian hosts. Every departure from the format — bad magic or
// version, checksum mismatch, section size/order drift, ranges that do
// not tile, counts that do not add up — returns ErrBadStore; no input
// may panic.
func readSegmentsFile(path string) (c *Corpus, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	size := st.Size()
	if size < segHeaderLen {
		return nil, fmt.Errorf("%w: segment file truncated (%d bytes)", ErrBadStore, size)
	}

	buf, mapped := mapFile(f, size)
	if mapped {
		defer func() {
			// The mapping must outlive the Corpus on success; release it
			// only when validation rejects the file.
			if err != nil {
				unmapFile(buf)
			}
		}()
	} else {
		if size > maxSegPoints*16 || int64(int(size)) != size {
			return nil, fmt.Errorf("%w: segment file implausibly large (%d bytes)", ErrBadStore, size)
		}
		buf = alignedBytes(int(size))
		if _, err := io.ReadFull(f, buf); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadStore, err)
		}
	}

	hdr := buf[:segHeaderLen]
	if string(hdr[0:8]) != segMagic {
		return nil, fmt.Errorf("%w: bad segment magic %q", ErrBadStore, hdr[0:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != segVersion {
		return nil, fmt.Errorf("%w: segment version %d, want %d", ErrBadStore, v, segVersion)
	}
	if got, want := binary.LittleEndian.Uint32(hdr[76:80]), crc32.Checksum(hdr[:76], castagnoli); got != want {
		return nil, fmt.Errorf("%w: segment header checksum %08x, want %08x", ErrBadStore, got, want)
	}
	dim := int(binary.LittleEndian.Uint32(hdr[12:16]))
	nseqs := binary.LittleEndian.Uint64(hdr[16:24])
	npoints := binary.LittleEndian.Uint64(hdr[24:32])
	nmbrs := binary.LittleEndian.Uint64(hdr[32:40])
	cfg := core.PartitionConfig{
		QueryExtent: math.Float64frombits(binary.LittleEndian.Uint64(hdr[40:48])),
		MaxPoints:   int(binary.LittleEndian.Uint64(hdr[48:56])),
	}
	treeM := int(binary.LittleEndian.Uint32(hdr[56:60]))
	nleaves := uint64(binary.LittleEndian.Uint32(hdr[60:64]))
	labelBytes := binary.LittleEndian.Uint64(hdr[64:72])

	switch {
	case dim < 1 || dim > maxMetaDims:
		return nil, fmt.Errorf("%w: segment dim %d", ErrBadStore, dim)
	case nseqs < 1 || nseqs > maxSegSeqs:
		return nil, fmt.Errorf("%w: segment sequence count %d", ErrBadStore, nseqs)
	case npoints < nseqs || npoints > maxSegPoints:
		return nil, fmt.Errorf("%w: segment point count %d for %d sequences", ErrBadStore, npoints, nseqs)
	case nmbrs < nseqs || nmbrs > npoints:
		return nil, fmt.Errorf("%w: segment MBR count %d", ErrBadStore, nmbrs)
	case labelBytes > maxSegLabels:
		return nil, fmt.Errorf("%w: segment label bytes %d", ErrBadStore, labelBytes)
	case cfg.MaxPoints < 1 || uint64(cfg.MaxPoints) > math.MaxUint32:
		return nil, fmt.Errorf("%w: segment MaxPoints %d", ErrBadStore, cfg.MaxPoints)
	case math.IsNaN(cfg.QueryExtent) || cfg.QueryExtent < 0:
		return nil, fmt.Errorf("%w: segment QueryExtent %v", ErrBadStore, cfg.QueryExtent)
	case treeM == 0 && nleaves != 0:
		return nil, fmt.Errorf("%w: %d leaves with no tree fanout", ErrBadStore, nleaves)
	case treeM > 0 && (nleaves < 1 || nleaves > nmbrs):
		return nil, fmt.Errorf("%w: %d leaves for %d MBRs", ErrBadStore, nleaves, nmbrs)
	}

	d := uint64(dim)
	type want struct {
		id   uint32
		size uint64
	}
	wants := []want{
		{secSeqDir, nseqs * 16},
		{secLabels, labelBytes},
		{secPoints, npoints * d * 8},
		{secMBRDir, nmbrs * 8},
		{secLo, nmbrs * d * 8},
		{secHi, nmbrs * d * 8},
		{secQLo, nmbrs * d * 4},
		{secQHi, nmbrs * d * 4},
	}
	if treeM > 0 {
		wants = append(wants, want{secLeafDir, nleaves * 4}, want{secLeafRefs, nmbrs * 8})
	}
	expected := uint64(segHeaderLen)
	for _, w := range wants {
		expected += secHeaderLen + pad8(w.size)
	}
	if expected != uint64(size) {
		return nil, fmt.Errorf("%w: segment file is %d bytes, layout needs %d", ErrBadStore, size, expected)
	}

	payload := make([][]byte, len(wants))
	off := uint64(segHeaderLen)
	for i, w := range wants {
		sh := buf[off : off+secHeaderLen]
		if id := binary.LittleEndian.Uint32(sh[0:4]); id != w.id {
			return nil, fmt.Errorf("%w: section %d has id %d, want %d", ErrBadStore, i, id, w.id)
		}
		if l := binary.LittleEndian.Uint64(sh[8:16]); l != w.size {
			return nil, fmt.Errorf("%w: section %d length %d, want %d", ErrBadStore, w.id, l, w.size)
		}
		p := buf[off+secHeaderLen : off+secHeaderLen+w.size]
		if got, wantCRC := binary.LittleEndian.Uint32(sh[4:8]), crc32.Checksum(p, castagnoli); got != wantCRC {
			return nil, fmt.Errorf("%w: section %d checksum %08x, want %08x", ErrBadStore, w.id, got, wantCRC)
		}
		payload[i] = p
		off += secHeaderLen + pad8(w.size)
	}

	// Directory decode + per-sequence assembly. The float sections are
	// aliased once here; everything per-sequence below is slice headers.
	seqdir, labels := payload[0], payload[1]
	pointsAll := float64View(payload[2])
	mbrdir := payload[3]
	loAll, hiAll := float64View(payload[4]), float64View(payload[5])
	qloAll, qhiAll := float32View(payload[6]), float32View(payload[7])

	segs := make([]*core.Segmented, nseqs)
	var pOff, mOff, lOff uint64
	for i := uint64(0); i < nseqs; i++ {
		n := uint64(binary.LittleEndian.Uint32(seqdir[i*16:]))
		r := uint64(binary.LittleEndian.Uint32(seqdir[i*16+4:]))
		ll := uint64(binary.LittleEndian.Uint32(seqdir[i*16+8:]))
		if n < 1 || r < 1 || r > n || pOff+n > npoints || mOff+r > nmbrs || lOff+ll > labelBytes {
			return nil, fmt.Errorf("%w: sequence %d directory entry (%d pts, %d MBRs, %d label) overruns", ErrBadStore, i, n, r, ll)
		}
		flat := pointsAll[pOff*d : (pOff+n)*d : (pOff+n)*d]
		pts := make([]geom.Point, n)
		for k := range pts {
			pts[k] = geom.Point(flat[uint64(k)*d : (uint64(k)+1)*d : (uint64(k)+1)*d])
		}
		seq := &core.Sequence{Label: string(labels[lOff : lOff+ll]), Points: pts}
		ranges := make([]core.MBRInfo, r)
		for j := uint64(0); j < r; j++ {
			ranges[j] = core.MBRInfo{
				Start: int(binary.LittleEndian.Uint32(mbrdir[(mOff+j)*8:])),
				End:   int(binary.LittleEndian.Uint32(mbrdir[(mOff+j)*8+4:])),
			}
		}
		lo := loAll[mOff*d : (mOff+r)*d : (mOff+r)*d]
		hi := hiAll[mOff*d : (mOff+r)*d : (mOff+r)*d]
		qlo := qloAll[mOff*d : (mOff+r)*d : (mOff+r)*d]
		qhi := qhiAll[mOff*d : (mOff+r)*d : (mOff+r)*d]
		g, err := core.NewSegmentedColumnarQ(seq, ranges, flat, lo, hi, qlo, qhi)
		if err != nil {
			return nil, fmt.Errorf("%w: sequence %d: %v", ErrBadStore, i, err)
		}
		if err := seq.Validate(); err != nil {
			return nil, fmt.Errorf("%w: sequence %d: %v", ErrBadStore, i, err)
		}
		segs[i] = g
		pOff += n
		mOff += r
		lOff += ll
	}
	if pOff != npoints || mOff != nmbrs || lOff != labelBytes {
		return nil, fmt.Errorf("%w: directory covers %d/%d points, %d/%d MBRs, %d/%d label bytes",
			ErrBadStore, pOff, npoints, mOff, nmbrs, lOff, labelBytes)
	}

	var leaves [][]rtree.Ref
	if treeM > 0 {
		leafdir, leafrefs := payload[8], payload[9]
		leaves = make([][]rtree.Ref, nleaves)
		var rOff uint64
		for li := uint64(0); li < nleaves; li++ {
			cnt := uint64(binary.LittleEndian.Uint32(leafdir[li*4:]))
			if cnt < 1 || cnt > uint64(treeM) || rOff+cnt > nmbrs {
				return nil, fmt.Errorf("%w: packed leaf %d holds %d entries", ErrBadStore, li, cnt)
			}
			leaf := make([]rtree.Ref, cnt)
			for k := range leaf {
				leaf[k] = rtree.Ref(binary.LittleEndian.Uint64(leafrefs[(rOff+uint64(k))*8:]))
			}
			leaves[li] = leaf
			rOff += cnt
		}
		if rOff != nmbrs {
			// Ref validity and exactly-once coverage are enforced by the
			// bulk loader (core.AddAllSegmented); the count is checked here
			// so a file without that second stage still fails closed.
			return nil, fmt.Errorf("%w: packed leaves cover %d of %d MBRs", ErrBadStore, rOff, nmbrs)
		}
	}

	return &Corpus{Dim: dim, Config: cfg, Segs: segs, Leaves: leaves, TreeM: treeM, Mapped: mapped}, nil
}
