//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package store

import "os"

// mapFile reports mmap as unavailable; the reader falls back to one
// aligned whole-file read, which preserves every aliasing property of
// the mapped path (same buffer, same offsets) at the cost of touching
// all bytes up front.
func mapFile(f *os.File, size int64) ([]byte, bool) { return nil, false }

// unmapFile is a no-op where mapFile never maps.
func unmapFile(b []byte) {}
