package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/shard"
)

// Sharded store layout: a shard-count record plus one single-node store
// directory per shard (empty shards keep only their meta file):
//
//	dir/
//	  shards.bin     "MDSSHRD1" + u16 shard count
//	  shard000/      meta.bin [+ sequences.mds]
//	  shard001/
//	  ...
//	  index.db.shard<i>   per-shard index pages (fileIndex loads only)
//
// Placement is not serialized: it is recomputed on load from the stable
// label-hash rule, which reproduces the saved placement exactly for the
// same shard count (asserted by TestShardedSaveLoadPlacement).
const (
	shardsFile     = "shards.bin"
	shardsMagic    = "MDSSHRD1"
	shardsMetaLen  = 8 + 2 // magic + count
	maxShardCount  = 1 << 12
	shardDirFormat = "shard%03d"
)

// IsSharded reports whether dir holds a sharded store.
func IsSharded(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, shardsFile))
	return err == nil
}

// SaveSharded writes db's live sequences, configuration, and shard
// topology into dir (created if needed, contents overwritten). Individual
// shards may be empty; the database as a whole must not be.
func SaveSharded(db *shard.ShardedDB, dir string) error {
	if db.Len() == 0 {
		return errors.New("store: refusing to save an empty database")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	n := db.Shards()
	dim, cfg := db.Dim(), db.PartitionConfig()
	for i := 0; i < n; i++ {
		sub := filepath.Join(dir, fmt.Sprintf(shardDirFormat, i))
		if err := saveDir(sub, dim, cfg, db.Shard(i).Sequences()); err != nil {
			return fmt.Errorf("store: saving shard %d: %w", i, err)
		}
	}
	meta := make([]byte, shardsMetaLen)
	copy(meta[0:8], shardsMagic)
	binary.LittleEndian.PutUint16(meta[8:10], uint16(n))
	return os.WriteFile(filepath.Join(dir, shardsFile), meta, 0o644)
}

// readShardCount parses dir's shard-count record.
func readShardCount(dir string) (int, error) {
	meta, err := os.ReadFile(filepath.Join(dir, shardsFile))
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	if len(meta) != shardsMetaLen || string(meta[0:8]) != shardsMagic {
		return 0, fmt.Errorf("%w: bad shards file", ErrBadStore)
	}
	n := int(binary.LittleEndian.Uint16(meta[8:10]))
	if n < 1 || n > maxShardCount {
		return 0, fmt.Errorf("%w: shard count %d", ErrBadStore, n)
	}
	return n, nil
}

// LoadSharded reads a store directory and rebuilds a sharded database. A
// plain single-node store (written by Save) loads as one shard, so old
// directories keep working. With fileIndex set, each shard's index pages
// live in a file under its shard directory; otherwise indexes are in
// memory. Sequences re-place by the label-hash rule, which reproduces
// the saved placement for an unchanged shard count.
func LoadSharded(dir string, fileIndex bool) (*shard.ShardedDB, error) {
	if !IsSharded(dir) {
		// Single-dir compatibility: the whole store becomes shard 0.
		dim, cfg, seqs, err := loadDir(dir)
		if err != nil {
			return nil, err
		}
		if len(seqs) == 0 {
			return nil, fmt.Errorf("%w: no sequences", ErrBadStore)
		}
		opts := core.Options{Dim: dim, Partition: cfg}
		if fileIndex {
			opts.Path = filepath.Join(dir, indexFile)
			os.RemoveAll(opts.Path)
			os.Remove(opts.Path + ".wal")
		}
		return buildSharded(opts, 1, seqs, fileIndex)
	}

	n, err := readShardCount(dir)
	if err != nil {
		return nil, err
	}
	var all []*core.Sequence
	dim, cfg := 0, core.PartitionConfig{}
	for i := 0; i < n; i++ {
		sub := filepath.Join(dir, fmt.Sprintf(shardDirFormat, i))
		d, c, seqs, err := loadDir(sub)
		if err != nil {
			return nil, fmt.Errorf("store: loading shard %d: %w", i, err)
		}
		if i == 0 {
			dim, cfg = d, c
		} else if d != dim || c != cfg {
			return nil, fmt.Errorf("%w: shard %d config differs from shard 0", ErrBadStore, i)
		}
		all = append(all, seqs...)
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("%w: no sequences", ErrBadStore)
	}
	opts := core.Options{Dim: dim, Partition: cfg}
	if fileIndex {
		// shard.New derives "<path>.shard<i>" per shard.
		opts.Path = filepath.Join(dir, indexFile)
		for i := 0; i < n; i++ {
			path := opts.Path
			if n > 1 {
				path = fmt.Sprintf("%s.shard%d", opts.Path, i)
			}
			os.RemoveAll(path)
			os.Remove(path + ".wal")
		}
	}
	return buildSharded(opts, n, all, fileIndex)
}

func buildSharded(opts core.Options, n int, seqs []*core.Sequence, fileIndex bool) (*shard.ShardedDB, error) {
	sdb, err := shard.New(opts, n)
	if err != nil {
		return nil, err
	}
	if _, err := sdb.AddAll(seqs); err != nil {
		sdb.Close()
		return nil, err
	}
	if fileIndex {
		if err := sdb.Flush(); err != nil {
			sdb.Close()
			return nil, err
		}
	}
	return sdb, nil
}
