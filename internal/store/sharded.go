package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/rtree"
	"repro/internal/shard"
)

// Sharded store layout: a shard-count record plus one single-node store
// directory per shard, each in either format (empty shards keep only
// their meta file):
//
//	dir/
//	  shards.bin     "MDSSHRD1" + u16 shard count
//	  shard000/      meta.bin [+ sequences.mds | segments.sg2]
//	  shard001/
//	  ...
//	  index.db.shard<i>   per-shard index pages (fileIndex loads only)
//
// Placement is not serialized: it is recomputed on load from the stable
// label-hash rule, which reproduces the saved placement exactly for the
// same shard count (asserted by TestShardedSaveLoadPlacement). v2 shard
// directories additionally have their placement verified on load, so a
// shard file copied between topologies fails closed.
const (
	shardsFile     = "shards.bin"
	shardsMagic    = "MDSSHRD1"
	shardsMetaLen  = 8 + 2 // magic + count
	maxShardCount  = 1 << 12
	shardDirFormat = "shard%03d"
)

// segmentSource is satisfied by nodes that expose their live segments
// for direct columnar serialization (*core.Database).
type segmentSource interface {
	LiveSegments() []*core.Segmented
}

// IsSharded reports whether dir holds a sharded store.
func IsSharded(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, shardsFile))
	return err == nil
}

// SaveSharded writes db's live sequences, configuration, and shard
// topology into dir in the default format, atomically. Individual
// shards may be empty; the database as a whole must not be.
func SaveSharded(db *shard.ShardedDB, dir string) error {
	return SaveShardedFormat(db, dir, DefaultFormat)
}

// SaveShardedFormat is SaveSharded with an explicit on-disk format.
func SaveShardedFormat(db *shard.ShardedDB, dir string, f Format) error {
	if !f.valid() {
		return fmt.Errorf("store: unknown format %d", f)
	}
	if db.Len() == 0 {
		return errors.New("store: refusing to save an empty database")
	}
	n := db.Shards()
	dim, cfg := db.Dim(), db.PartitionConfig()
	return saveAtomic(dir, func(tmp string) error {
		for i := 0; i < n; i++ {
			sub := filepath.Join(tmp, fmt.Sprintf(shardDirFormat, i))
			if err := os.MkdirAll(sub, 0o755); err != nil {
				return err
			}
			if err := writeShardDir(sub, db.Shard(i), dim, cfg, f); err != nil {
				return fmt.Errorf("store: saving shard %d: %w", i, err)
			}
		}
		meta := make([]byte, shardsMetaLen)
		copy(meta[0:8], shardsMagic)
		binary.LittleEndian.PutUint16(meta[8:10], uint16(n))
		return writeFileSynced(filepath.Join(tmp, shardsFile), meta, 0o644)
	})
}

// writeShardDir serializes one shard node into sub. For v2 the node's
// live segments are written directly when it exposes them; nodes that
// do not (e.g. transactional wrappers) are re-partitioned first.
func writeShardDir(sub string, node shard.Node, dim int, cfg core.PartitionConfig, f Format) error {
	if f == FormatV1 {
		return writeDirV1(sub, dim, cfg, node.Sequences())
	}
	if ss, ok := node.(segmentSource); ok {
		return writeDirV2(sub, dim, cfg, ss.LiveSegments())
	}
	segs, err := buildSegments(node.Sequences(), dim, cfg)
	if err != nil {
		return err
	}
	return writeDirV2(sub, dim, cfg, segs)
}

// readShardCount parses dir's shard-count record.
func readShardCount(dir string) (int, error) {
	meta, err := os.ReadFile(filepath.Join(dir, shardsFile))
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	if len(meta) != shardsMetaLen || string(meta[0:8]) != shardsMagic {
		return 0, fmt.Errorf("%w: bad shards file", ErrBadStore)
	}
	n := int(binary.LittleEndian.Uint16(meta[8:10]))
	if n < 1 || n > maxShardCount {
		return 0, fmt.Errorf("%w: shard count %d", ErrBadStore, n)
	}
	return n, nil
}

// LoadSharded reads a store directory and rebuilds a sharded database.
// A plain single-node store (written by Save) loads as one shard, so
// old directories keep working. With fileIndex set, each shard's index
// pages live in a file under its shard directory; otherwise indexes are
// in memory.
func LoadSharded(dir string, fileIndex bool) (*shard.ShardedDB, error) {
	return LoadShardedWith(dir, LoadOptions{FileIndex: fileIndex})
}

// LoadShardedWith is LoadSharded with full options. Each shard
// directory's format is sniffed independently: v2 shards alias their
// segment files and bulk-load their trees from the packed leaves; v1
// shards re-partition through the parallel bulk path. Either way every
// shard ingests its own saved group directly — placement is verified
// against the label-hash rule rather than recomputed sequence by
// sequence, and reproduces the saved layout for an unchanged shard
// count.
func LoadShardedWith(dir string, o LoadOptions) (*shard.ShardedDB, error) {
	n := 1
	sharded := IsSharded(dir)
	if sharded {
		var err error
		if n, err = readShardCount(dir); err != nil {
			return nil, err
		}
	}

	groups := make([][]*core.Segmented, n)
	leaves := make([][][]rtree.Ref, n)
	dim, cfg := 0, core.PartitionConfig{}
	total := 0
	for i := 0; i < n; i++ {
		sub := dir
		if sharded {
			sub = filepath.Join(dir, fmt.Sprintf(shardDirFormat, i))
		}
		d, c, segs, lv, treeM, err := loadDirCorpus(sub)
		if err != nil {
			if sharded {
				return nil, fmt.Errorf("store: loading shard %d: %w", i, err)
			}
			return nil, err
		}
		if i == 0 {
			dim, cfg = d, c
		} else if d != dim || c != cfg {
			return nil, fmt.Errorf("%w: shard %d config differs from shard 0", ErrBadStore, i)
		}
		if fanout, _, ferr := rtree.CapacityFor(0, d, 0); ferr != nil || fanout != treeM {
			lv = nil // stored grouping targets a different fanout
		}
		groups[i], leaves[i] = segs, lv
		total += len(segs)
	}
	if total == 0 {
		return nil, fmt.Errorf("%w: no sequences", ErrBadStore)
	}

	opts := core.Options{Dim: dim, Partition: cfg, QuantizedMBR: o.Quantized}
	if o.FileIndex {
		// shard.New derives "<path>.shard<i>" per shard.
		opts.Path = filepath.Join(dir, indexFile)
		for i := 0; i < n; i++ {
			path := opts.Path
			if n > 1 {
				path = fmt.Sprintf("%s.shard%d", opts.Path, i)
			}
			os.RemoveAll(path)
			os.Remove(path + ".wal")
		}
	}
	sdb, err := shard.New(opts, n)
	if err != nil {
		return nil, err
	}
	if err := sdb.AddAllSegmented(groups, leaves); err != nil {
		sdb.Close()
		return nil, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	if o.FileIndex {
		if err := sdb.Flush(); err != nil {
			sdb.Close()
			return nil, err
		}
	}
	return sdb, nil
}
