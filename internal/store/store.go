// Package store persists whole databases as a directory: the sequence
// data in seqio format plus a metadata file recording dimensionality and
// partitioning configuration. Load rebuilds the index from the data —
// partitioning is deterministic, so the reconstructed database is
// equivalent; at this system's scale (tens of thousands of MBRs) the
// rebuild is sub-second and avoids any risk of index/data skew.
//
// Numeric sequence ids are not preserved across Save/Load (removed ids
// compact away); labels are the stable identity.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/seqio"
)

const (
	metaMagic   = "MDSSTOR1"
	seqFile     = "sequences.mds"
	metaFile    = "meta.bin"
	indexFile   = "index.db"
	metaLen     = 8 + 2 + 8 + 8 // magic + dim + QueryExtent + MaxPoints
	maxMetaDims = 1 << 15
)

// ErrBadStore indicates a missing or corrupt store directory.
var ErrBadStore = errors.New("store: bad store directory")

// Save writes db's live sequences and configuration into dir (created if
// needed, contents overwritten).
func Save(db *core.Database, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	seqs := db.Sequences()
	if len(seqs) == 0 {
		return errors.New("store: refusing to save an empty database")
	}
	if err := seqio.WriteFile(filepath.Join(dir, seqFile), seqs); err != nil {
		return err
	}
	cfg := db.PartitionConfig()
	meta := make([]byte, metaLen)
	copy(meta[0:8], metaMagic)
	binary.LittleEndian.PutUint16(meta[8:10], uint16(seqs[0].Dim()))
	binary.LittleEndian.PutUint64(meta[10:18], math.Float64bits(cfg.QueryExtent))
	binary.LittleEndian.PutUint64(meta[18:26], uint64(cfg.MaxPoints))
	return os.WriteFile(filepath.Join(dir, metaFile), meta, 0o644)
}

// Load reads a store directory and rebuilds the database. With fileIndex
// set, the index pages live in <dir>/index.db (recreated); otherwise the
// index is in memory.
func Load(dir string, fileIndex bool) (*core.Database, error) {
	meta, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	if len(meta) != metaLen || string(meta[0:8]) != metaMagic {
		return nil, fmt.Errorf("%w: bad meta file", ErrBadStore)
	}
	dim := int(binary.LittleEndian.Uint16(meta[8:10]))
	if dim < 1 || dim > maxMetaDims {
		return nil, fmt.Errorf("%w: dim %d", ErrBadStore, dim)
	}
	cfg := core.PartitionConfig{
		QueryExtent: math.Float64frombits(binary.LittleEndian.Uint64(meta[10:18])),
		MaxPoints:   int(binary.LittleEndian.Uint64(meta[18:26])),
	}
	seqs, err := seqio.ReadFile(filepath.Join(dir, seqFile))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadStore, err)
	}

	opts := core.Options{Dim: dim, Partition: cfg}
	if fileIndex {
		path := filepath.Join(dir, indexFile)
		// Fast path: reattach to an index a previous Load already built.
		if _, statErr := os.Stat(path); statErr == nil {
			if db, err := core.OpenDatabase(core.Options{Dim: dim, Partition: cfg, Path: path}, seqs); err == nil {
				return db, nil
			}
			// Stale or mismatched: rebuild below.
			if err := os.RemoveAll(path); err != nil {
				return nil, err
			}
			os.Remove(path + ".wal")
		}
		opts.Path = path
	}
	db, err := core.NewDatabase(opts)
	if err != nil {
		return nil, err
	}
	if _, err := db.AddAll(seqs); err != nil {
		db.Close()
		return nil, err
	}
	if fileIndex {
		if err := db.Flush(); err != nil {
			db.Close()
			return nil, err
		}
	}
	return db, nil
}
