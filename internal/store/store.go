// Package store persists whole databases as a directory: the sequence
// data in seqio format plus a metadata file recording dimensionality and
// partitioning configuration. Load rebuilds the index from the data —
// partitioning is deterministic, so the reconstructed database is
// equivalent; at this system's scale (tens of thousands of MBRs) the
// rebuild is sub-second and avoids any risk of index/data skew.
//
// Numeric sequence ids are not preserved across Save/Load (removed ids
// compact away); labels are the stable identity.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/seqio"
)

const (
	metaMagic   = "MDSSTOR1"
	seqFile     = "sequences.mds"
	metaFile    = "meta.bin"
	indexFile   = "index.db"
	metaLen     = 8 + 2 + 8 + 8 // magic + dim + QueryExtent + MaxPoints
	maxMetaDims = 1 << 15
)

// ErrBadStore indicates a missing or corrupt store directory.
var ErrBadStore = errors.New("store: bad store directory")

// writeMeta records dimensionality and partitioning config in dir.
func writeMeta(dir string, dim int, cfg core.PartitionConfig) error {
	meta := make([]byte, metaLen)
	copy(meta[0:8], metaMagic)
	binary.LittleEndian.PutUint16(meta[8:10], uint16(dim))
	binary.LittleEndian.PutUint64(meta[10:18], math.Float64bits(cfg.QueryExtent))
	binary.LittleEndian.PutUint64(meta[18:26], uint64(cfg.MaxPoints))
	return os.WriteFile(filepath.Join(dir, metaFile), meta, 0o644)
}

// readMeta parses dir's metadata record.
func readMeta(dir string) (dim int, cfg core.PartitionConfig, err error) {
	meta, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return 0, cfg, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	if len(meta) != metaLen || string(meta[0:8]) != metaMagic {
		return 0, cfg, fmt.Errorf("%w: bad meta file", ErrBadStore)
	}
	dim = int(binary.LittleEndian.Uint16(meta[8:10]))
	if dim < 1 || dim > maxMetaDims {
		return 0, cfg, fmt.Errorf("%w: dim %d", ErrBadStore, dim)
	}
	cfg = core.PartitionConfig{
		QueryExtent: math.Float64frombits(binary.LittleEndian.Uint64(meta[10:18])),
		MaxPoints:   int(binary.LittleEndian.Uint64(meta[18:26])),
	}
	return dim, cfg, nil
}

// saveDir writes one database directory: meta plus sequences. Empty
// sequence sets are allowed (a sharded store's shard may be empty); the
// sequences file is then omitted and loadDir treats its absence as empty.
func saveDir(dir string, dim int, cfg core.PartitionConfig, seqs []*core.Sequence) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if len(seqs) == 0 {
		os.Remove(filepath.Join(dir, seqFile))
	} else if err := seqio.WriteFile(filepath.Join(dir, seqFile), seqs); err != nil {
		return err
	}
	return writeMeta(dir, dim, cfg)
}

// loadDir reads one database directory written by saveDir.
func loadDir(dir string) (dim int, cfg core.PartitionConfig, seqs []*core.Sequence, err error) {
	dim, cfg, err = readMeta(dir)
	if err != nil {
		return 0, cfg, nil, err
	}
	path := filepath.Join(dir, seqFile)
	if _, statErr := os.Stat(path); statErr != nil {
		if os.IsNotExist(statErr) {
			return dim, cfg, nil, nil // empty shard
		}
		return 0, cfg, nil, fmt.Errorf("%w: %v", ErrBadStore, statErr)
	}
	seqs, err = seqio.ReadFile(path)
	if err != nil {
		return 0, cfg, nil, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	return dim, cfg, seqs, nil
}

// Save writes db's live sequences and configuration into dir (created if
// needed, contents overwritten).
func Save(db *core.Database, dir string) error {
	seqs := db.Sequences()
	if len(seqs) == 0 {
		return errors.New("store: refusing to save an empty database")
	}
	return saveDir(dir, seqs[0].Dim(), db.PartitionConfig(), seqs)
}

// Load reads a store directory and rebuilds the database. With fileIndex
// set, the index pages live in <dir>/index.db (recreated); otherwise the
// index is in memory. Sharded stores (written by SaveSharded) are
// rejected with a pointer to LoadSharded.
func Load(dir string, fileIndex bool) (*core.Database, error) {
	if IsSharded(dir) {
		return nil, fmt.Errorf("%w: %s is a sharded store; use LoadSharded", ErrBadStore, dir)
	}
	dim, cfg, seqs, err := loadDir(dir)
	if err != nil {
		return nil, err
	}
	if len(seqs) == 0 {
		return nil, fmt.Errorf("%w: no sequences", ErrBadStore)
	}

	opts := core.Options{Dim: dim, Partition: cfg}
	if fileIndex {
		path := filepath.Join(dir, indexFile)
		// Fast path: reattach to an index a previous Load already built.
		if _, statErr := os.Stat(path); statErr == nil {
			if db, err := core.OpenDatabase(core.Options{Dim: dim, Partition: cfg, Path: path}, seqs); err == nil {
				return db, nil
			}
			// Stale or mismatched: rebuild below.
			if err := os.RemoveAll(path); err != nil {
				return nil, err
			}
			os.Remove(path + ".wal")
		}
		opts.Path = path
	}
	db, err := core.NewDatabase(opts)
	if err != nil {
		return nil, err
	}
	if _, err := db.AddAll(seqs); err != nil {
		db.Close()
		return nil, err
	}
	if fileIndex {
		if err := db.Flush(); err != nil {
			db.Close()
			return nil, err
		}
	}
	return db, nil
}
