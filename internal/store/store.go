// Package store persists whole databases as a directory, in one of two
// formats negotiated on load:
//
// FormatV1 (the original): sequence data in seqio records plus a
// metadata file. Load re-partitions every sequence to rebuild the index
// — partitioning is deterministic, so the reconstructed database is
// equivalent, but the rebuild decodes and re-segments every point.
//
// FormatV2 (the default): one zero-copy columnar segment file
// (segments.sg2) holding the already-partitioned corpus — flat
// little-endian point/lo/hi arrays, the MBR directory, and the packed
// STR leaf grouping of the R*-tree, all checksummed per section. Load
// maps (or one-shot reads) the file and aliases the Segmented
// Flat/Lo/Hi arrays in place, then packs the tree bottom-up from the
// stored leaves: no per-sequence deserialization and no re-partitioning.
// See segment.go for the exact layout.
//
// Both formats are written crash-safely: the replacement directory is
// fully staged and fsynced beside the target, then swapped in by rename
// (see atomic.go). Loads never read a partially written store.
//
// Numeric sequence ids are not preserved across Save/Load (removed ids
// compact away); labels are the stable identity.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/rtree"
	"repro/internal/seqio"
)

const (
	metaMagic   = "MDSSTOR1"
	seqFile     = "sequences.mds"
	metaFile    = "meta.bin"
	indexFile   = "index.db"
	metaLen     = 8 + 2 + 8 + 8 // magic + dim + QueryExtent + MaxPoints
	maxMetaDims = 1 << 15
)

// ErrBadStore indicates a missing or corrupt store directory.
var ErrBadStore = errors.New("store: bad store directory")

// Format selects the on-disk representation Save writes.
type Format int

const (
	// FormatV1 stores sequences as seqio records; Load re-partitions to
	// rebuild the index. Kept for compatibility and as the
	// lowest-common-denominator interchange form.
	FormatV1 Format = 1
	// FormatV2 stores the partitioned columnar segments plus the packed
	// R*-tree leaf grouping in segments.sg2; Load aliases the arrays with
	// zero per-sequence deserialization.
	FormatV2 Format = 2
)

// DefaultFormat is the format Save, SaveSharded, and Build write.
const DefaultFormat = FormatV2

func (f Format) valid() bool { return f == FormatV1 || f == FormatV2 }

// LoadOptions configures Load/LoadSharded beyond the directory path.
type LoadOptions struct {
	// FileIndex places index pages in files under the store directory
	// instead of memory.
	FileIndex bool
	// Quantized enables the quantized-MBR phase-3 prefilter
	// (core.Options.QuantizedMBR) on the loaded database. Results are
	// bit-identical with or without it; only search statistics differ.
	Quantized bool
}

// writeMeta records dimensionality and partitioning config in dir.
func writeMeta(dir string, dim int, cfg core.PartitionConfig) error {
	meta := make([]byte, metaLen)
	copy(meta[0:8], metaMagic)
	binary.LittleEndian.PutUint16(meta[8:10], uint16(dim))
	binary.LittleEndian.PutUint64(meta[10:18], math.Float64bits(cfg.QueryExtent))
	binary.LittleEndian.PutUint64(meta[18:26], uint64(cfg.MaxPoints))
	return writeFileSynced(filepath.Join(dir, metaFile), meta, 0o644)
}

// readMeta parses dir's metadata record.
func readMeta(dir string) (dim int, cfg core.PartitionConfig, err error) {
	meta, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return 0, cfg, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	if len(meta) != metaLen || string(meta[0:8]) != metaMagic {
		return 0, cfg, fmt.Errorf("%w: bad meta file", ErrBadStore)
	}
	dim = int(binary.LittleEndian.Uint16(meta[8:10]))
	if dim < 1 || dim > maxMetaDims {
		return 0, cfg, fmt.Errorf("%w: dim %d", ErrBadStore, dim)
	}
	cfg = core.PartitionConfig{
		QueryExtent: math.Float64frombits(binary.LittleEndian.Uint64(meta[10:18])),
		MaxPoints:   int(binary.LittleEndian.Uint64(meta[18:26])),
	}
	return dim, cfg, nil
}

// writeDirV1 writes one v1 database directory (meta plus seqio records)
// into dir, which must already exist; all files are fsynced. Empty
// sequence sets are allowed (a sharded store's shard may be empty): the
// sequences file is omitted and loads treat its absence as empty.
func writeDirV1(dir string, dim int, cfg core.PartitionConfig, seqs []*core.Sequence) error {
	if len(seqs) > 0 {
		path := filepath.Join(dir, seqFile)
		if err := seqio.WriteFile(path, seqs); err != nil {
			return err
		}
		if err := syncFile(path); err != nil {
			return err
		}
	}
	return writeMeta(dir, dim, cfg)
}

// writeDirV2 writes one v2 database directory (meta, the columnar
// segment file, and the packed R*-tree pages as index.db) into dir,
// which must already exist; all files are fsynced. Empty segment sets
// write only the meta file. Baking the index pages in at save time is
// what makes the v2 cold open a pure reattach: Load maps the segments
// and opens the prebuilt pages with no partitioning and no tree build.
func writeDirV2(dir string, dim int, cfg core.PartitionConfig, segs []*core.Segmented) error {
	if len(segs) > 0 {
		leaves, treeM, err := packLeaves(segs, dim)
		if err != nil {
			return err
		}
		if err := writeSegmentsFile(filepath.Join(dir, segFile), dim, cfg, segs, leaves, treeM); err != nil {
			return err
		}
		if err := writeIndexV2(dir, dim, cfg, segs, leaves, treeM); err != nil {
			return err
		}
	}
	return writeMeta(dir, dim, cfg)
}

// writeIndexV2 bulk-loads the packed leaves into a file-backed R*-tree
// at <dir>/index.db. It works on detached copies of the segments: the
// database stamps dense ids into Seq.ID during the load, and the caller's
// (live) sequence headers must not see that.
func writeIndexV2(dir string, dim int, cfg core.PartitionConfig, segs []*core.Segmented, leaves [][]rtree.Ref, treeM int) error {
	detached := make([]*core.Segmented, len(segs))
	for i, g := range segs {
		gc := *g
		sc := *g.Seq
		gc.Seq = &sc
		detached[i] = &gc
	}
	path := filepath.Join(dir, indexFile)
	db, err := core.NewDatabase(core.Options{Dim: dim, Partition: cfg, Path: path})
	if err != nil {
		return err
	}
	if db.IndexFanout() != treeM {
		leaves = nil
	}
	if _, err := db.AddAllSegmented(detached, leaves); err != nil {
		db.Close()
		return err
	}
	if err := db.Flush(); err != nil {
		db.Close()
		return err
	}
	if err := db.Close(); err != nil {
		return err
	}
	return syncFile(path)
}

// hasSegments reports whether dir carries a v2 segment file — the
// format sniff loads negotiate on (v2 wins when present).
func hasSegments(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, segFile))
	return err == nil
}

// loadDir reads the sequences of one v1 database directory.
func loadDir(dir string) (dim int, cfg core.PartitionConfig, seqs []*core.Sequence, err error) {
	dim, cfg, err = readMeta(dir)
	if err != nil {
		return 0, cfg, nil, err
	}
	path := filepath.Join(dir, seqFile)
	if _, statErr := os.Stat(path); statErr != nil {
		if os.IsNotExist(statErr) {
			return dim, cfg, nil, nil // empty shard
		}
		return 0, cfg, nil, fmt.Errorf("%w: %v", ErrBadStore, statErr)
	}
	seqs, err = seqio.ReadFile(path)
	if err != nil {
		return 0, cfg, nil, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	return dim, cfg, seqs, nil
}

// loadDirCorpus reads one database directory in either format and
// returns its contents in segment form: v2 directories alias their
// segment file; v1 directories are re-partitioned in parallel (the bulk
// path — never one-at-a-time inserts). Empty directories return nil
// segments.
func loadDirCorpus(dir string) (dim int, cfg core.PartitionConfig, segs []*core.Segmented, leaves [][]rtree.Ref, treeM int, err error) {
	if hasSegments(dir) {
		dim, cfg, err = readMeta(dir)
		if err != nil {
			return 0, cfg, nil, nil, 0, err
		}
		c, err := readSegmentsFile(filepath.Join(dir, segFile))
		if err != nil {
			return 0, cfg, nil, nil, 0, err
		}
		if c.Dim != dim || c.Config != cfg {
			return 0, cfg, nil, nil, 0, fmt.Errorf("%w: meta and segment file disagree", ErrBadStore)
		}
		return dim, cfg, c.Segs, c.Leaves, c.TreeM, nil
	}
	var seqs []*core.Sequence
	dim, cfg, seqs, err = loadDir(dir)
	if err != nil || len(seqs) == 0 {
		return dim, cfg, nil, nil, 0, err
	}
	segs, err = buildSegments(seqs, dim, cfg)
	if err != nil {
		return 0, cfg, nil, nil, 0, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	return dim, cfg, segs, nil, 0, nil
}

// Save writes db's live sequences and configuration into dir in the
// default format, atomically: the previous contents are replaced only
// once the new store is fully on disk.
func Save(db *core.Database, dir string) error {
	return SaveFormat(db, dir, DefaultFormat)
}

// SaveFormat is Save with an explicit on-disk format.
func SaveFormat(db *core.Database, dir string, f Format) error {
	if !f.valid() {
		return fmt.Errorf("store: unknown format %d", f)
	}
	if f == FormatV1 {
		seqs := db.Sequences()
		if len(seqs) == 0 {
			return errors.New("store: refusing to save an empty database")
		}
		return saveAtomic(dir, func(tmp string) error {
			return writeDirV1(tmp, seqs[0].Dim(), db.PartitionConfig(), seqs)
		})
	}
	segs := db.LiveSegments()
	if len(segs) == 0 {
		return errors.New("store: refusing to save an empty database")
	}
	return saveAtomic(dir, func(tmp string) error {
		return writeDirV2(tmp, db.Dim(), db.PartitionConfig(), segs)
	})
}

// Load reads a store directory (either format) and rebuilds the
// database. With fileIndex set, the index pages live in <dir>/index.db;
// otherwise the index is in memory. Sharded stores (written by
// SaveSharded) are rejected with a pointer to LoadSharded.
func Load(dir string, fileIndex bool) (*core.Database, error) {
	return LoadWith(dir, LoadOptions{FileIndex: fileIndex})
}

// LoadWith is Load with full options. The format is sniffed from the
// directory contents: a segments.sg2 file selects the zero-copy v2
// path, otherwise the v1 re-partitioning path runs.
func LoadWith(dir string, o LoadOptions) (*core.Database, error) {
	if IsSharded(dir) {
		return nil, fmt.Errorf("%w: %s is a sharded store; use LoadSharded", ErrBadStore, dir)
	}
	if hasSegments(dir) {
		return loadV2(dir, o)
	}
	return loadV1(dir, o)
}

// loadV2 opens a v2 store: alias the segment file, bulk-load the tree
// from the packed leaves (or plain STR when the fanout changed), done.
func loadV2(dir string, o LoadOptions) (*core.Database, error) {
	dim, cfg, segs, leaves, treeM, err := loadDirCorpus(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("%w: no sequences", ErrBadStore)
	}
	opts := core.Options{Dim: dim, Partition: cfg, QuantizedMBR: o.Quantized}
	if o.FileIndex {
		path := filepath.Join(dir, indexFile)
		// Fast path: reattach to an index a previous Load already built —
		// with the segments aliased from the file this makes a warm
		// restart free of both partitioning and tree packing.
		if _, statErr := os.Stat(path); statErr == nil {
			if db, err := core.OpenDatabaseSegmented(
				core.Options{Dim: dim, Partition: cfg, Path: path, QuantizedMBR: o.Quantized}, segs); err == nil {
				return db, nil
			}
			// Stale or mismatched: rebuild below.
			if err := os.RemoveAll(path); err != nil {
				return nil, err
			}
			os.Remove(path + ".wal")
		}
		opts.Path = path
	}
	db, err := core.NewDatabase(opts)
	if err != nil {
		return nil, err
	}
	if db.IndexFanout() != treeM {
		leaves = nil // grouping computed for a different page layout
	}
	if _, err := db.AddAllSegmented(segs, leaves); err != nil {
		db.Close()
		return nil, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	if o.FileIndex {
		if err := db.Flush(); err != nil {
			db.Close()
			return nil, err
		}
	}
	return db, nil
}

// loadV1 opens a v1 store, re-partitioning through the bulk path.
func loadV1(dir string, o LoadOptions) (*core.Database, error) {
	dim, cfg, seqs, err := loadDir(dir)
	if err != nil {
		return nil, err
	}
	if len(seqs) == 0 {
		return nil, fmt.Errorf("%w: no sequences", ErrBadStore)
	}

	opts := core.Options{Dim: dim, Partition: cfg, QuantizedMBR: o.Quantized}
	if o.FileIndex {
		path := filepath.Join(dir, indexFile)
		// Fast path: reattach to an index a previous Load already built.
		if _, statErr := os.Stat(path); statErr == nil {
			if db, err := core.OpenDatabase(core.Options{Dim: dim, Partition: cfg, Path: path, QuantizedMBR: o.Quantized}, seqs); err == nil {
				return db, nil
			}
			// Stale or mismatched: rebuild below.
			if err := os.RemoveAll(path); err != nil {
				return nil, err
			}
			os.Remove(path + ".wal")
		}
		opts.Path = path
	}
	db, err := core.NewDatabase(opts)
	if err != nil {
		return nil, err
	}
	if _, err := db.AddAll(seqs); err != nil {
		db.Close()
		return nil, err
	}
	if o.FileIndex {
		if err := db.Flush(); err != nil {
			db.Close()
			return nil, err
		}
	}
	return db, nil
}
