package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Log is a record-oriented append-only write-ahead log — the durability
// substrate beneath internal/txn's group commit, sharing the page WAL's
// on-disk discipline (magic header, CRC-guarded records, torn-tail
// discard) but logging caller-defined records instead of page images.
//
// File format (little-endian):
//
//	header:  magic "MDSLOG01" (8 bytes)
//	record:  length u32 | length bytes payload | crc32 u32
//
// The crc covers the length field and the payload. OpenLog replays every
// complete, checksum-valid record in order and truncates a trailing
// partial record — an interrupted append that never reached durability.
// A record is durable exactly when a Sync call has returned after its
// Append, which is the contract group commit acknowledges against.
//
// All methods are safe for concurrent use; Append serializes internally,
// so concurrent appenders interleave whole records, never bytes.
const logMagic = "MDSLOG01"

// MaxLogRecord bounds a single record's payload (64 MiB) — an
// implausibility guard that turns a corrupt length field into a clean
// torn-tail stop instead of a giant allocation. Exported so callers can
// reject an oversized record before attempting the append.
const MaxLogRecord = 64 << 20

// ErrLogCorrupt is returned by OpenLog when the file exists but does not
// start with the log magic — it is some other file, not a torn log.
var ErrLogCorrupt = errors.New("pager: not a record log file")

// Log appends CRC-guarded records to a file. See the package-level format
// notes above.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	path string
	size int64 // current file size (header + valid records)
}

// OpenLog opens (or creates) the record log at path, scans it, truncates
// any torn tail, and hands every valid record payload to replay in append
// order. replay may be nil when the caller only wants the log opened
// (e.g. a fresh database). The returned Log appends after the last valid
// record.
func OpenLog(path string, replay func(payload []byte) error) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open log %s: %w", path, err)
	}
	l := &Log{f: f, path: path}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi.Size() < int64(len(logMagic)) {
		// New file, or a header that never finished writing: nothing was
		// ever durable, start clean.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.WriteAt([]byte(logMagic), 0); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		l.size = int64(len(logMagic))
		return l, nil
	}
	head := make([]byte, len(logMagic))
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, int64(len(head))), head); err != nil {
		f.Close()
		return nil, err
	}
	if string(head) != logMagic {
		f.Close()
		return nil, fmt.Errorf("%w: %s", ErrLogCorrupt, path)
	}
	valid, err := scanLog(f, fi.Size(), replay)
	if err != nil {
		f.Close()
		return nil, err
	}
	if valid < fi.Size() {
		// Torn tail: discard it so the next append starts at a clean
		// record boundary.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	l.size = valid
	return l, nil
}

// scanLog walks records from the header to the first torn or corrupt one
// and returns the offset of the end of the last valid record.
func scanLog(f *os.File, size int64, replay func([]byte) error) (int64, error) {
	r := io.NewSectionReader(f, int64(len(logMagic)), size-int64(len(logMagic)))
	off := int64(len(logMagic))
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return off, nil // clean end or partial length: stop
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n == 0 || n > MaxLogRecord {
			return off, nil // implausible length: treat as torn
		}
		body := make([]byte, n+4) // payload + crc
		if _, err := io.ReadFull(r, body); err != nil {
			return off, nil
		}
		crc := crc32.ChecksumIEEE(hdr[:])
		crc = crc32.Update(crc, crc32.IEEETable, body[:n])
		if crc != binary.LittleEndian.Uint32(body[n:]) {
			return off, nil // torn or corrupt record: discard from here
		}
		if replay != nil {
			if err := replay(body[:n]); err != nil {
				return off, err
			}
		}
		off += int64(4 + n + 4)
	}
}

// Append writes one record to the log buffer-through-OS (no fsync). The
// record is durable only after a subsequent Sync returns; group commit
// appends a batch of records and syncs once for all of them.
func (l *Log) Append(payload []byte) error {
	if len(payload) == 0 || len(payload) > MaxLogRecord {
		return fmt.Errorf("pager: log record of %d bytes out of range", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	buf := make([]byte, 0, 4+len(payload)+4)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf))
	buf = append(buf, crc[:]...)
	if _, err := l.f.WriteAt(buf, l.size); err != nil {
		return err
	}
	l.size += int64(len(buf))
	return nil
}

// Sync fsyncs the log: every record appended before the call is durable
// once Sync returns. The mutex is held across the fsync — Rewrite closes
// the old handle after renaming, so releasing it early could sync a
// closed file. Appends stall for the fsync's duration, which group
// commit absorbs by batching.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Sync()
}

// Size returns the log file size in bytes (header included) — the
// operator-visible "how much unfolded WAL is there" number.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Truncate cuts the log back to size bytes — the undo for a failed
// multi-record append: a group commit that could not complete removes
// its half-written records so a later replay sees only acknowledged
// groups. size must come from a prior Size call (it is never validated
// against record boundaries here; cutting at one is the caller's
// contract).
func (l *Log) Truncate(size int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if size < int64(len(logMagic)) || size > l.size {
		return fmt.Errorf("pager: log truncate to %d out of range", size)
	}
	if err := l.f.Truncate(size); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.size = size
	return nil
}

// Rewrite atomically replaces the log's contents with the given records:
// they are written to a sibling temp file, fsynced, and renamed over the
// old log. Checkpoints use it to drop records already folded into the
// base snapshot while keeping the suffix that is not. On return the Log
// continues appending after the last rewritten record.
func (l *Log) Rewrite(records [][]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	tmp := l.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	nl := &Log{f: f, path: tmp, size: 0}
	if _, err := f.WriteAt([]byte(logMagic), 0); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	nl.size = int64(len(logMagic))
	for _, rec := range records {
		if err := nl.Append(rec); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, l.path); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// Swap the live handle to the renamed file.
	old := l.f
	l.f = f
	l.size = nl.size
	old.Close()
	// Make the rename itself durable (directory entry).
	if dir, err := os.Open(dirOf(l.path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// Close releases the log file handle without syncing (callers sync as
// part of their commit protocol).
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// dirOf returns the directory portion of path for directory fsyncs.
func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if os.IsPathSeparator(path[i]) {
			return path[:i+1]
		}
	}
	return "."
}
