package pager

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
)

func newMemPager(t *testing.T, pageSize, pool int) *Pager {
	t.Helper()
	p, err := Open(Options{PageSize: pageSize, PoolPages: pool})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func fill(p *Pager, id PageID, b byte) error {
	buf := make([]byte, p.PageSize())
	for i := range buf {
		buf[i] = b
	}
	return p.Write(id, buf)
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Options{PageSize: 32}); err == nil {
		t.Error("tiny page size accepted")
	}
	if _, err := Open(Options{PoolPages: -1}); err == nil {
		t.Error("negative pool accepted")
	}
}

func TestAllocReadWriteRoundTrip(t *testing.T) {
	p := newMemPager(t, 128, 8)
	id, err := p.Alloc()
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if id != 0 {
		t.Errorf("first page id = %d, want 0", id)
	}
	if err := fill(p, id, 0xAB); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, 128)
	if err := p.Read(id, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	for i, b := range got {
		if b != 0xAB {
			t.Fatalf("byte %d = %#x, want 0xAB", i, b)
		}
	}
}

func TestAllocZeroesRecycledPages(t *testing.T) {
	p := newMemPager(t, 128, 8)
	id, _ := p.Alloc()
	fill(p, id, 0xFF)
	if err := p.Free(id); err != nil {
		t.Fatalf("Free: %v", err)
	}
	id2, _ := p.Alloc()
	if id2 != id {
		t.Fatalf("freed page not recycled: got %d, want %d", id2, id)
	}
	buf := make([]byte, 128)
	if err := p.Read(id2, buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(buf, make([]byte, 128)) {
		t.Error("recycled page not zeroed")
	}
}

func TestReadWriteBufferSizeChecked(t *testing.T) {
	p := newMemPager(t, 128, 8)
	id, _ := p.Alloc()
	if err := p.Read(id, make([]byte, 64)); err == nil {
		t.Error("short Read buffer accepted")
	}
	if err := p.Write(id, make([]byte, 256)); err == nil {
		t.Error("long Write buffer accepted")
	}
}

func TestPageOutOfRange(t *testing.T) {
	p := newMemPager(t, 128, 8)
	err := p.Read(5, make([]byte, 128))
	if !errors.Is(err, ErrPageOutOfRange) {
		t.Errorf("Read out of range = %v, want ErrPageOutOfRange", err)
	}
	if err := p.Free(5); !errors.Is(err, ErrPageOutOfRange) {
		t.Errorf("Free out of range = %v", err)
	}
}

func TestEvictionWritesBackDirtyPages(t *testing.T) {
	p := newMemPager(t, 128, 2) // tiny pool forces eviction
	const n = 10
	ids := make([]PageID, n)
	for i := range ids {
		id, err := p.Alloc()
		if err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
		ids[i] = id
		if err := fill(p, id, byte(i+1)); err != nil {
			t.Fatalf("Write %d: %v", i, err)
		}
	}
	// All pages must read back correctly even though most were evicted.
	buf := make([]byte, 128)
	for i, id := range ids {
		if err := p.Read(id, buf); err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
		if buf[0] != byte(i+1) {
			t.Errorf("page %d byte 0 = %d, want %d", id, buf[0], i+1)
		}
	}
	if st := p.Stats(); st.Evictions == 0 {
		t.Error("expected evictions with a 2-page pool")
	}
}

func TestStatsCountHitsAndReads(t *testing.T) {
	p := newMemPager(t, 128, 4)
	id, _ := p.Alloc()
	fill(p, id, 1)
	buf := make([]byte, 128)
	p.Read(id, buf)
	p.Read(id, buf)
	st := p.Stats()
	if st.Hits < 2 {
		t.Errorf("Hits = %d, want >= 2 (resident page)", st.Hits)
	}
	if st.Fetches < 3 {
		t.Errorf("Fetches = %d, want >= 3", st.Fetches)
	}
	p.ResetStats()
	if st := p.Stats(); st.Fetches != 0 || st.Reads != 0 {
		t.Errorf("stats not reset: %+v", st)
	}
}

func TestHitRatioAndDiskAccesses(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 {
		t.Error("zero-fetch HitRatio should be 0")
	}
	s = Stats{Fetches: 10, Hits: 5, Reads: 3, Writes: 2}
	if s.HitRatio() != 0.5 {
		t.Errorf("HitRatio = %g", s.HitRatio())
	}
	if s.DiskAccesses() != 5 {
		t.Errorf("DiskAccesses = %d", s.DiskAccesses())
	}
}

func TestViewAndUpdate(t *testing.T) {
	p := newMemPager(t, 128, 4)
	id, _ := p.Alloc()
	if err := p.Update(id, func(data []byte) error {
		data[7] = 42
		return nil
	}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	var got byte
	if err := p.View(id, func(data []byte) error {
		got = data[7]
		return nil
	}); err != nil {
		t.Fatalf("View: %v", err)
	}
	if got != 42 {
		t.Errorf("byte = %d, want 42", got)
	}
	// An Update whose fn fails must not mark the page dirty or lose the error.
	wantErr := errors.New("boom")
	if err := p.Update(id, func([]byte) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Errorf("Update error = %v, want boom", err)
	}
}

func TestFileBackendPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	p, err := Open(Options{PageSize: 256, PoolPages: 4, Path: path})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var ids []PageID
	for i := 0; i < 6; i++ {
		id, err := p.Alloc()
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		ids = append(ids, id)
		if err := fill(p, id, byte(0x10+i)); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	p2, err := Open(Options{PageSize: 256, PoolPages: 4, Path: path})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer p2.Close()
	if got := p2.NumPages(); got != 6 {
		t.Errorf("NumPages after reopen = %d, want 6", got)
	}
	buf := make([]byte, 256)
	for i, id := range ids {
		if err := p2.Read(id, buf); err != nil {
			t.Fatalf("Read after reopen: %v", err)
		}
		if buf[0] != byte(0x10+i) {
			t.Errorf("page %d byte = %#x, want %#x", id, buf[0], 0x10+i)
		}
	}
}

func TestFileBackendRejectsCorruptSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.db")
	p, err := Open(Options{PageSize: 256, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	p.Alloc()
	p.Close()
	if _, err := Open(Options{PageSize: 100, Path: path}); err == nil {
		t.Error("mismatched page size silently accepted")
	}
}

func TestFreeListRoundTrip(t *testing.T) {
	p := newMemPager(t, 128, 8)
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	p.Free(a)
	p.Free(b)
	got := p.FreePageIDs()
	if len(got) != 2 {
		t.Fatalf("FreePageIDs = %v", got)
	}
	p.SetFreePageIDs([]PageID{a})
	if got := p.FreePageIDs(); len(got) != 1 || got[0] != a {
		t.Errorf("SetFreePageIDs round trip = %v", got)
	}
}

func TestClosedPagerFails(t *testing.T) {
	p := newMemPager(t, 128, 8)
	id, _ := p.Alloc()
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Errorf("second Close should be nil, got %v", err)
	}
	if _, err := p.Alloc(); !errors.Is(err, ErrClosed) {
		t.Errorf("Alloc after close = %v", err)
	}
	if err := p.Read(id, make([]byte, 128)); !errors.Is(err, ErrClosed) {
		t.Errorf("Read after close = %v", err)
	}
	if err := p.Flush(); !errors.Is(err, ErrClosed) {
		t.Errorf("Flush after close = %v", err)
	}
}

func TestFlushPersistsWithoutClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flush.db")
	p, err := Open(Options{PageSize: 128, PoolPages: 4, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	id, _ := p.Alloc()
	fill(p, id, 0x77)
	if err := p.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	st := p.Stats()
	if st.Writes == 0 {
		t.Error("Flush produced no physical writes")
	}
}

func TestConcurrentAccess(t *testing.T) {
	p := newMemPager(t, 128, 8)
	const pages = 16
	ids := make([]PageID, pages)
	for i := range ids {
		id, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			buf := make([]byte, 128)
			for i := 0; i < 200; i++ {
				id := ids[rng.Intn(pages)]
				if rng.Intn(2) == 0 {
					if err := p.Read(id, buf); err != nil {
						errs <- err
						return
					}
				} else {
					if err := p.Write(id, buf); err != nil {
						errs <- err
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent op: %v", err)
	}
}

func TestPoolFullWhenAllPinned(t *testing.T) {
	// View pins a page for the duration of fn; with a pool of 1, fetching a
	// second page inside the callback must fail with ErrPoolFull, not
	// deadlock or evict the pinned page.
	p := newMemPager(t, 128, 1)
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	err := p.View(a, func([]byte) error {
		return p.Read(b, make([]byte, 128))
	})
	if !errors.Is(err, ErrPoolFull) {
		t.Errorf("nested fetch with full pool = %v, want ErrPoolFull", err)
	}
}

func TestManyPagesStress(t *testing.T) {
	p := newMemPager(t, 256, 16)
	const n = 500
	for i := 0; i < n; i++ {
		id, err := p.Alloc()
		if err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
		if err := p.Update(id, func(data []byte) error {
			copy(data, fmt.Sprintf("page-%d", id))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		want := fmt.Sprintf("page-%d", i)
		if err := p.View(PageID(i), func(data []byte) error {
			if string(data[:len(want)]) != want {
				return fmt.Errorf("page %d contents = %q", i, data[:len(want)])
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}
