package pager

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestEvictionString(t *testing.T) {
	if LRU.String() != "lru" || Clock.String() != "clock" || Eviction(9).String() != "unknown" {
		t.Error("Eviction names wrong")
	}
}

func TestOpenRejectsUnknownPolicy(t *testing.T) {
	if _, err := Open(Options{Eviction: Eviction(42)}); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestPoliciesCorrectUnderPressure runs the same randomized read/write
// workload under both policies with a tiny pool; contents must always
// read back correctly regardless of eviction order.
func TestPoliciesCorrectUnderPressure(t *testing.T) {
	for _, ev := range []Eviction{LRU, Clock} {
		t.Run(ev.String(), func(t *testing.T) {
			p, err := Open(Options{PageSize: 128, PoolPages: 4, Eviction: ev})
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			const pages = 32
			want := make([]byte, pages)
			for i := 0; i < pages; i++ {
				id, err := p.Alloc()
				if err != nil {
					t.Fatal(err)
				}
				want[id] = byte(i + 1)
				if err := fill(p, id, want[id]); err != nil {
					t.Fatal(err)
				}
			}
			rng := rand.New(rand.NewSource(int64(ev)))
			buf := make([]byte, 128)
			for step := 0; step < 2000; step++ {
				id := PageID(rng.Intn(pages))
				if rng.Intn(4) == 0 {
					want[id] = byte(rng.Intn(255) + 1)
					if err := fill(p, id, want[id]); err != nil {
						t.Fatal(err)
					}
				} else {
					if err := p.Read(id, buf); err != nil {
						t.Fatal(err)
					}
					if buf[0] != want[id] {
						t.Fatalf("step %d: page %d = %#x, want %#x", step, id, buf[0], want[id])
					}
				}
			}
			if st := p.Stats(); st.Evictions == 0 {
				t.Error("no evictions under a 4-page pool?")
			}
		})
	}
}

// TestClockSurvivesHotLoop: a pool-sized hot set accessed in a loop should
// stay resident under Clock (reference bits protect it) once warmed.
func TestClockSurvivesHotLoop(t *testing.T) {
	p, err := Open(Options{PageSize: 128, PoolPages: 8, Eviction: Clock})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 8; i++ {
		if _, err := p.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 128)
	for round := 0; round < 50; round++ {
		for id := PageID(0); id < 8; id++ {
			if err := p.Read(id, buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := p.Stats()
	if st.Reads != 0 {
		t.Errorf("hot loop caused %d physical reads", st.Reads)
	}
}

// TestWALNoStealUnderClock repeats the no-steal eviction test with Clock.
func TestWALNoStealUnderClock(t *testing.T) {
	dir := t.TempDir()
	p, err := Open(Options{PageSize: 128, PoolPages: 3, Path: filepath.Join(dir, "db"), WAL: true, Eviction: Clock})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ids := make([]PageID, 10)
	for i := range ids {
		ids[i], _ = p.Alloc()
	}
	p.Begin()
	fill(p, ids[0], 0x91)
	fill(p, ids[1], 0x92)
	buf := make([]byte, 128)
	for i := 2; i < 10; i++ {
		if err := p.Read(ids[i], buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if err := p.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := p.Read(ids[0], buf); err != nil || buf[0] != 0x91 {
		t.Errorf("txn page lost under clock: %v %#x", err, buf[0])
	}
}

// TestPolicyHitRatiosComparable: on a zipf-ish skewed workload both
// policies should achieve a substantial hit ratio; Clock should be within
// a reasonable band of LRU (it approximates it).
func TestPolicyHitRatiosComparable(t *testing.T) {
	ratios := map[Eviction]float64{}
	for _, ev := range []Eviction{LRU, Clock} {
		p, err := Open(Options{PageSize: 128, PoolPages: 16, Eviction: ev})
		if err != nil {
			t.Fatal(err)
		}
		const pages = 128
		for i := 0; i < pages; i++ {
			p.Alloc()
		}
		rng := rand.New(rand.NewSource(7))
		z := rand.NewZipf(rng, 1.2, 1, pages-1)
		buf := make([]byte, 128)
		p.ResetStats()
		for step := 0; step < 20000; step++ {
			if err := p.Read(PageID(z.Uint64()), buf); err != nil {
				t.Fatal(err)
			}
		}
		ratios[ev] = p.Stats().HitRatio()
		p.Close()
	}
	for ev, r := range ratios {
		if r < 0.5 {
			t.Errorf("%v hit ratio %.3f too low for a zipf workload", ev, r)
		}
	}
	if diff := ratios[LRU] - ratios[Clock]; diff > 0.15 || diff < -0.15 {
		t.Errorf("policies diverge too much: lru %.3f vs clock %.3f", ratios[LRU], ratios[Clock])
	}
	t.Log(fmt.Sprintf("hit ratios: lru=%.3f clock=%.3f", ratios[LRU], ratios[Clock]))
}
