// Package pager implements a fixed-size-page storage manager with an LRU
// buffer pool. It is the disk substrate beneath the R*-tree index: the
// paper's partitioning cost function (MCOST) is defined in terms of "the
// average number of disk accesses (DA)", and this package is what makes
// that quantity measurable — every physical page read and write is counted.
//
// A Pager can be backed by a file on disk or run fully in memory (for tests
// and benchmarks that should not touch the filesystem). Pages are addressed
// by a dense PageID starting at 0; page 0 is conventionally the caller's
// metadata page. Freed pages are recycled through an in-memory free list
// that the caller is expected to persist in its metadata if it needs frees
// to survive reopen (the R*-tree does).
package pager

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// PageID identifies a page within a Pager. IDs are dense and start at 0.
type PageID uint32

// InvalidPage is the sentinel "no page" value.
const InvalidPage PageID = ^PageID(0)

// DefaultPageSize is the page size used when Options.PageSize is zero.
// 4 KiB matches common filesystem block sizes and gives the R*-tree a
// realistic fanout for 3-dimensional MBR entries.
const DefaultPageSize = 4096

// Stats counts physical and logical page accesses since the last Reset.
// Logical accesses (Fetches) that hit the buffer pool do not touch the
// backing store; Reads and Writes are physical transfers.
type Stats struct {
	Fetches   uint64 // logical page requests
	Hits      uint64 // requests satisfied by the buffer pool
	Reads     uint64 // physical page reads from the backing store
	Writes    uint64 // physical page writes to the backing store
	Allocs    uint64 // pages allocated
	Frees     uint64 // pages freed
	Evictions uint64 // buffer-pool evictions
}

// HitRatio returns the fraction of fetches served from the pool.
func (s Stats) HitRatio() float64 {
	if s.Fetches == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Fetches)
}

// DiskAccesses returns physical reads + writes — the paper's "DA".
func (s Stats) DiskAccesses() uint64 { return s.Reads + s.Writes }

// Options configures a Pager.
type Options struct {
	// PageSize is the size of every page in bytes. 0 means DefaultPageSize.
	// Must be at least 64.
	PageSize int
	// PoolPages is the buffer-pool capacity in pages. 0 means 256.
	PoolPages int
	// Path is the backing file. Empty means an in-memory store.
	Path string
	// WAL enables write-ahead logging (requires Path): Begin/Commit bound
	// atomic multi-page transactions, and Open replays any committed but
	// unapplied transactions left by a crash. The log lives at Path+".wal".
	WAL bool
	// Eviction selects the buffer-pool replacement policy (default LRU).
	Eviction Eviction
}

var (
	// ErrPageOutOfRange is returned when a PageID does not exist.
	ErrPageOutOfRange = errors.New("pager: page id out of range")
	// ErrClosed is returned by operations on a closed Pager.
	ErrClosed = errors.New("pager: closed")
	// ErrPoolFull is returned when every frame in the pool is pinned and a
	// new page must be brought in.
	ErrPoolFull = errors.New("pager: buffer pool exhausted (all pages pinned)")
)

// backend abstracts the physical store (file or memory).
type backend interface {
	readPage(id PageID, buf []byte) error
	writePage(id PageID, buf []byte) error
	grow(n int) error // ensure capacity for n pages
	sync() error
	close() error
}

// frame is one buffer-pool slot.
type frame struct {
	id    PageID
	data  []byte
	pins  int
	dirty bool
	ref   bool // clock policy reference bit
	// Links within the eviction policy's structure (list or ring).
	prev, next *frame
}

// Pager is a page store with an LRU buffer pool. All methods are safe for
// concurrent use.
type Pager struct {
	mu       sync.Mutex
	pageSize int
	pool     int
	be       backend
	frames   map[PageID]*frame
	pol      policy
	nPages   PageID
	freeList []PageID
	stats    Stats
	closed   bool

	// Write-ahead logging state (nil log when WAL is disabled).
	log      *wal
	inTxn    bool
	txnPages map[PageID]bool // pages dirtied by the open transaction
	// crashAfterWALSync makes Commit stop right after the log fsync —
	// fault injection for recovery tests.
	crashAfterWALSync bool
}

// Open creates or opens a pager. If opts.Path exists, its page count is
// derived from the file size (which must be a multiple of the page size).
func Open(opts Options) (*Pager, error) {
	ps := opts.PageSize
	if ps == 0 {
		ps = DefaultPageSize
	}
	if ps < 64 {
		return nil, fmt.Errorf("pager: page size %d too small (min 64)", ps)
	}
	pool := opts.PoolPages
	if pool == 0 {
		pool = 256
	}
	if pool < 1 {
		return nil, fmt.Errorf("pager: pool must hold at least 1 page, got %d", pool)
	}
	p := &Pager{
		pageSize: ps,
		pool:     pool,
		frames:   make(map[PageID]*frame),
	}
	switch opts.Eviction {
	case LRU:
		p.pol = &lruPolicy{}
	case Clock:
		p.pol = &clockPolicy{}
	default:
		return nil, fmt.Errorf("pager: unknown eviction policy %d", opts.Eviction)
	}
	if opts.Path == "" {
		if opts.WAL {
			return nil, errors.New("pager: WAL requires a backing file path")
		}
		p.be = &memBackend{pageSize: ps}
		return p, nil
	}
	f, err := os.OpenFile(opts.Path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", opts.Path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: stat %s: %w", opts.Path, err)
	}
	if fi.Size()%int64(ps) != 0 {
		f.Close()
		return nil, fmt.Errorf("pager: %s size %d not a multiple of page size %d", opts.Path, fi.Size(), ps)
	}
	p.be = &fileBackend{f: f, pageSize: ps}
	p.nPages = PageID(fi.Size() / int64(ps))
	if opts.WAL {
		// Redo any committed-but-unapplied transactions, then start with
		// an empty log.
		walPath := opts.Path + ".wal"
		if _, err := recoverWAL(walPath, ps, p.be, &p.nPages); err != nil {
			f.Close()
			return nil, err
		}
		// Replay may have grown the file.
		if fi2, err := f.Stat(); err == nil {
			p.nPages = PageID(fi2.Size() / int64(ps))
		}
		log, err := openWAL(walPath, ps)
		if err != nil {
			f.Close()
			return nil, err
		}
		if err := log.reset(); err != nil {
			log.close()
			f.Close()
			return nil, err
		}
		p.log = log
	}
	return p, nil
}

// Begin starts a transaction: subsequent writes are applied atomically by
// Commit. Without WAL it is a no-op. Transactions do not nest.
func (p *Pager) Begin() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if p.log == nil {
		return nil
	}
	if p.inTxn {
		return ErrTxnActive
	}
	p.inTxn = true
	p.txnPages = make(map[PageID]bool)
	return nil
}

// Commit makes the open transaction durable: its pages are appended to
// the log, fsynced, applied to the main file, fsynced, and the log is
// truncated. Without WAL it is a no-op.
func (p *Pager) Commit() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if p.log == nil {
		return nil
	}
	if !p.inTxn {
		return ErrNoTxn
	}
	images := make(map[PageID][]byte, len(p.txnPages))
	for id := range p.txnPages {
		fr, ok := p.frames[id]
		if !ok {
			return fmt.Errorf("pager: txn page %d evicted (no-steal violated)", id)
		}
		images[id] = fr.data
	}
	if len(images) > 0 {
		if err := p.log.append(images); err != nil {
			return err
		}
		if p.crashAfterWALSync {
			return errSimulatedCrash
		}
		for id := range images {
			if err := p.physWrite(p.frames[id]); err != nil {
				return err
			}
		}
		if err := p.be.sync(); err != nil {
			return err
		}
		if err := p.log.reset(); err != nil {
			return err
		}
	}
	p.inTxn = false
	p.txnPages = nil
	return nil
}

// Rollback abandons the open transaction: its dirty pages are dropped
// from the pool (the main file still holds the pre-transaction images, by
// the no-steal rule). Pages allocated inside the transaction become
// unreferenced slack in the file; callers' metadata rolls back with the
// transaction, so nothing dangles. Without WAL it is a no-op.
func (p *Pager) Rollback() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if p.log == nil {
		return nil
	}
	if !p.inTxn {
		return ErrNoTxn
	}
	for id := range p.txnPages {
		if fr, ok := p.frames[id]; ok {
			if fr.pins > 0 {
				return fmt.Errorf("pager: rolling back pinned page %d", id)
			}
			p.pol.remove(fr)
			delete(p.frames, id)
		}
	}
	p.inTxn = false
	p.txnPages = nil
	return nil
}

// InTxn reports whether a transaction is open.
func (p *Pager) InTxn() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inTxn
}

// FailCommitAfterWALSync arms (or disarms) fault injection: the next
// Commit will stop right after the log reaches durability, simulating a
// crash before the main file is updated. For recovery tests only.
func (p *Pager) FailCommitAfterWALSync(v bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.crashAfterWALSync = v
}

// IsSimulatedCrash reports whether err came from fault injection.
func IsSimulatedCrash(err error) bool { return errors.Is(err, errSimulatedCrash) }

// PageSize returns the configured page size in bytes.
func (p *Pager) PageSize() int { return p.pageSize }

// NumPages returns the number of allocated pages (including freed ones
// still occupying slots in the backing store).
func (p *Pager) NumPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int(p.nPages)
}

// Stats returns a snapshot of the access counters.
func (p *Pager) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the access counters.
func (p *Pager) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
}

// Alloc allocates a new page (recycling a freed one if available) and
// returns its id. The page contents are zeroed.
func (p *Pager) Alloc() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return InvalidPage, ErrClosed
	}
	p.stats.Allocs++
	var id PageID
	if n := len(p.freeList); n > 0 {
		id = p.freeList[n-1]
		p.freeList = p.freeList[:n-1]
	} else {
		id = p.nPages
		p.nPages++
		if err := p.be.grow(int(p.nPages)); err != nil {
			p.nPages--
			return InvalidPage, err
		}
	}
	// Materialize a zeroed frame so the caller can write immediately.
	fr, err := p.frameFor(id, false)
	if err != nil {
		return InvalidPage, err
	}
	for i := range fr.data {
		fr.data[i] = 0
	}
	p.markDirty(fr)
	p.unpin(fr)
	return id, nil
}

// Free returns a page to the free list. The caller must not use the id
// again until it is re-allocated.
func (p *Pager) Free(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if id >= p.nPages {
		return fmt.Errorf("%w: %d (have %d)", ErrPageOutOfRange, id, p.nPages)
	}
	if fr, ok := p.frames[id]; ok {
		if fr.pins > 0 {
			return fmt.Errorf("pager: freeing pinned page %d", id)
		}
		p.pol.remove(fr)
		delete(p.frames, id)
	}
	p.stats.Frees++
	p.freeList = append(p.freeList, id)
	return nil
}

// FreePageIDs returns a copy of the current free list (for callers that
// persist it in their metadata page).
func (p *Pager) FreePageIDs() []PageID {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PageID, len(p.freeList))
	copy(out, p.freeList)
	return out
}

// SetFreePageIDs replaces the free list, e.g. after reopening a file whose
// metadata recorded it.
func (p *Pager) SetFreePageIDs(ids []PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.freeList = append(p.freeList[:0], ids...)
}

// Read copies the contents of page id into buf (which must be exactly one
// page long) through the buffer pool.
func (p *Pager) Read(id PageID, buf []byte) error {
	if len(buf) != p.pageSize {
		return fmt.Errorf("pager: Read buffer is %d bytes, want %d", len(buf), p.pageSize)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	fr, err := p.frameFor(id, true)
	if err != nil {
		return err
	}
	copy(buf, fr.data)
	p.unpin(fr)
	return nil
}

// Write replaces the contents of page id with buf (exactly one page) and
// marks the page dirty; the physical write happens on eviction or Flush.
func (p *Pager) Write(id PageID, buf []byte) error {
	if len(buf) != p.pageSize {
		return fmt.Errorf("pager: Write buffer is %d bytes, want %d", len(buf), p.pageSize)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	fr, err := p.frameFor(id, false)
	if err != nil {
		return err
	}
	copy(fr.data, buf)
	p.markDirty(fr)
	p.unpin(fr)
	return nil
}

// View calls fn with a read-only view of the page's in-pool bytes. The
// slice is only valid during fn; fn must not modify or retain it. View
// avoids the copy that Read makes and is the hot path for index search.
func (p *Pager) View(id PageID, fn func(data []byte) error) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	fr, err := p.frameFor(id, true)
	if err != nil {
		p.mu.Unlock()
		return err
	}
	p.mu.Unlock()
	// The frame is pinned, so it cannot be evicted while fn runs.
	err = fn(fr.data)
	p.mu.Lock()
	p.unpin(fr)
	p.mu.Unlock()
	return err
}

// Update calls fn with a writable view of the page's in-pool bytes and
// marks the page dirty if fn returns nil.
func (p *Pager) Update(id PageID, fn func(data []byte) error) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	fr, err := p.frameFor(id, true)
	if err != nil {
		p.mu.Unlock()
		return err
	}
	p.mu.Unlock()
	err = fn(fr.data)
	p.mu.Lock()
	if err == nil {
		p.markDirty(fr)
	}
	p.unpin(fr)
	p.mu.Unlock()
	return err
}

// Flush writes all dirty pages to the backing store and syncs it.
func (p *Pager) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if p.inTxn {
		return ErrTxnActive
	}
	for _, fr := range p.frames {
		if fr.dirty {
			if err := p.physWrite(fr); err != nil {
				return err
			}
		}
	}
	return p.be.sync()
}

// Close flushes and releases the pager. Further operations fail with
// ErrClosed. Close is idempotent.
func (p *Pager) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	if p.inTxn {
		p.mu.Unlock()
		return ErrTxnActive
	}
	for _, fr := range p.frames {
		if fr.pins > 0 {
			p.mu.Unlock()
			return fmt.Errorf("pager: closing with pinned page %d", fr.id)
		}
		if fr.dirty {
			if err := p.physWrite(fr); err != nil {
				p.mu.Unlock()
				return err
			}
		}
	}
	p.closed = true
	be := p.be
	log := p.log
	p.frames = nil
	p.pol = nil
	p.mu.Unlock()
	if log != nil {
		if err := log.close(); err != nil {
			be.close()
			return err
		}
	}
	if err := be.sync(); err != nil {
		be.close()
		return err
	}
	return be.close()
}

// frameFor returns a pinned frame for page id, loading it from the backing
// store when load is true and the page is not resident. Caller holds p.mu.
func (p *Pager) frameFor(id PageID, load bool) (*frame, error) {
	if id >= p.nPages {
		return nil, fmt.Errorf("%w: %d (have %d)", ErrPageOutOfRange, id, p.nPages)
	}
	p.stats.Fetches++
	if fr, ok := p.frames[id]; ok {
		p.stats.Hits++
		if fr.pins == 0 {
			p.pol.pinned(fr)
		}
		fr.pins++
		return fr, nil
	}
	if err := p.makeRoom(); err != nil {
		return nil, err
	}
	fr := &frame{id: id, data: make([]byte, p.pageSize), pins: 1}
	if load {
		if err := p.be.readPage(id, fr.data); err != nil {
			return nil, err
		}
		p.stats.Reads++
	}
	p.frames[id] = fr
	return fr, nil
}

// makeRoom evicts the least recently used unpinned frame if the pool is at
// capacity. Caller holds p.mu.
func (p *Pager) makeRoom() error {
	if len(p.frames) < p.pool {
		return nil
	}
	// NO-STEAL: pages dirtied by the open transaction must stay resident
	// until Commit writes them through the log; they are skipped when
	// choosing a victim.
	victim := p.pol.victim(func(fr *frame) bool {
		return p.inTxn && p.txnPages[fr.id]
	})
	if victim == nil {
		return ErrPoolFull
	}
	if victim.dirty {
		if err := p.physWrite(victim); err != nil {
			return err
		}
	}
	p.pol.remove(victim)
	delete(p.frames, victim.id)
	p.stats.Evictions++
	return nil
}

// markDirty flags a frame dirty and records it in the open transaction's
// write set. Caller holds p.mu.
func (p *Pager) markDirty(fr *frame) {
	fr.dirty = true
	if p.inTxn {
		p.txnPages[fr.id] = true
	}
}

func (p *Pager) physWrite(fr *frame) error {
	if err := p.be.writePage(fr.id, fr.data); err != nil {
		return err
	}
	p.stats.Writes++
	fr.dirty = false
	return nil
}

// unpin decrements the pin count and, when it reaches zero, hands the
// frame to the eviction policy. Caller holds p.mu.
func (p *Pager) unpin(fr *frame) {
	fr.pins--
	if fr.pins > 0 {
		return
	}
	p.pol.unpinned(fr)
}

// fileBackend stores pages in an *os.File.
type fileBackend struct {
	f        *os.File
	pageSize int
}

func (b *fileBackend) readPage(id PageID, buf []byte) error {
	_, err := b.f.ReadAt(buf, int64(id)*int64(b.pageSize))
	if err == io.EOF {
		err = nil // page allocated but never written: zeros
	}
	if err != nil {
		return fmt.Errorf("pager: read page %d: %w", id, err)
	}
	return nil
}

func (b *fileBackend) writePage(id PageID, buf []byte) error {
	if _, err := b.f.WriteAt(buf, int64(id)*int64(b.pageSize)); err != nil {
		return fmt.Errorf("pager: write page %d: %w", id, err)
	}
	return nil
}

func (b *fileBackend) grow(n int) error {
	// Extend lazily via WriteAt; Truncate keeps NumPages consistent with
	// the file size for reopen.
	return b.f.Truncate(int64(n) * int64(b.pageSize))
}

func (b *fileBackend) sync() error  { return b.f.Sync() }
func (b *fileBackend) close() error { return b.f.Close() }

// memBackend stores pages in process memory.
type memBackend struct {
	pageSize int
	pages    [][]byte
}

func (b *memBackend) readPage(id PageID, buf []byte) error {
	if int(id) >= len(b.pages) {
		return fmt.Errorf("%w: %d", ErrPageOutOfRange, id)
	}
	if b.pages[id] == nil {
		for i := range buf {
			buf[i] = 0
		}
		return nil
	}
	copy(buf, b.pages[id])
	return nil
}

func (b *memBackend) writePage(id PageID, buf []byte) error {
	if int(id) >= len(b.pages) {
		return fmt.Errorf("%w: %d", ErrPageOutOfRange, id)
	}
	if b.pages[id] == nil {
		b.pages[id] = make([]byte, b.pageSize)
	}
	copy(b.pages[id], buf)
	return nil
}

func (b *memBackend) grow(n int) error {
	for len(b.pages) < n {
		b.pages = append(b.pages, nil)
	}
	return nil
}

func (b *memBackend) sync() error  { return nil }
func (b *memBackend) close() error { return nil }
