package pager

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// logRecords opens the log at path and collects every valid record.
func logRecords(t *testing.T, path string) [][]byte {
	t.Helper()
	var got [][]byte
	l, err := OpenLog(path, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return got
}

func TestLogAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "txn.wal")
	l, err := OpenLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 50; i++ {
		rec := []byte(fmt.Sprintf("record-%03d-%s", i, string(make([]byte, i%7))))
		want = append(want, rec)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := logRecords(t, path)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestLogCrashTortureTruncate simulates a crash at every possible byte
// offset of a populated log: for each truncation point, reopening must
// yield a clean prefix of the appended records — never a torn or invented
// record — and the log must keep accepting appends afterwards.
func TestLogCrashTortureTruncate(t *testing.T) {
	dir := t.TempDir()
	master := filepath.Join(dir, "master.wal")
	l, err := OpenLog(master, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	offsets := []int64{l.Size()} // offsets[i] = log size after i records
	for i := 0; i < 12; i++ {
		rec := []byte(fmt.Sprintf("payload-%02d-%s", i, string(bytes.Repeat([]byte{byte(i)}, i*3))))
		want = append(want, rec)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, l.Size())
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(master)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()

	for cut := int64(0); cut <= int64(len(full)); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cut-%d.wal", cut))
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got := logRecords(t, path)
		// The replayed records must be exactly the records whose full
		// extent fits below the cut.
		wantN := 0
		for wantN < len(want) && offsets[wantN+1] <= cut {
			wantN++
		}
		if len(got) != wantN {
			t.Fatalf("cut at %d: replayed %d records, want %d", cut, len(got), wantN)
		}
		for i := 0; i < wantN; i++ {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("cut at %d: record %d = %q, want %q", cut, i, got[i], want[i])
			}
		}
		// The reopened log must accept a fresh append cleanly.
		l2, err := OpenLog(path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := l2.Append([]byte("after-crash")); err != nil {
			t.Fatal(err)
		}
		if err := l2.Sync(); err != nil {
			t.Fatal(err)
		}
		l2.Close()
		got2 := logRecords(t, path)
		if len(got2) != wantN+1 || string(got2[wantN]) != "after-crash" {
			t.Fatalf("cut at %d: post-crash append not recovered (have %d records)", cut, len(got2))
		}
		os.Remove(path)
	}
}

// TestLogCrashTortureCorrupt flips random bytes inside the log body and
// asserts the corrupted record and everything after it are discarded
// while every record before it survives intact.
func TestLogCrashTortureCorrupt(t *testing.T) {
	dir := t.TempDir()
	master := filepath.Join(dir, "master.wal")
	l, err := OpenLog(master, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	offsets := []int64{l.Size()}
	for i := 0; i < 10; i++ {
		rec := bytes.Repeat([]byte{byte('a' + i)}, 5+i*4)
		want = append(want, rec)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, l.Size())
	}
	l.Sync()
	full, err := os.ReadFile(master)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		pos := int64(len(logMagic)) + rng.Int63n(int64(len(full))-int64(len(logMagic)))
		path := filepath.Join(dir, fmt.Sprintf("corrupt-%d.wal", trial))
		img := append([]byte(nil), full...)
		img[pos] ^= 0xff
		if err := os.WriteFile(path, img, 0o644); err != nil {
			t.Fatal(err)
		}
		got := logRecords(t, path)
		// Every record wholly before the corrupted byte must survive;
		// the record containing it must not. (A flipped length field can
		// also swallow later records — prefix property is what matters.)
		intact := 0
		for intact < len(want) && offsets[intact+1] <= pos {
			intact++
		}
		if len(got) > len(want) {
			t.Fatalf("trial %d: invented records (%d > %d)", trial, len(got), len(want))
		}
		if len(got) < intact {
			t.Fatalf("trial %d (byte %d): lost intact records: replayed %d, want at least %d",
				trial, pos, len(got), intact)
		}
		for i := 0; i < len(got) && i < intact; i++ {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("trial %d: record %d corrupted in replay", trial, i)
			}
		}
		// The record containing the flipped byte must be rejected, except
		// when the flip landed in a record that scanning never reached.
		if len(got) > intact {
			// got[intact] replayed despite corruption inside its extent —
			// only legal if the corruption was after scanning stopped,
			// which cannot happen for a replayed record.
			t.Fatalf("trial %d: corrupt record %d replayed", trial, intact)
		}
		os.Remove(path)
	}
}

// TestLogRewrite checks checkpoint compaction: Rewrite keeps exactly the
// given suffix records, the replaced file replays them, and appends after
// a rewrite land after the suffix.
func TestLogRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "txn.wal")
	l, err := OpenLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Sync()
	keep := [][]byte{[]byte("keep-1"), []byte("keep-2")}
	if err := l.Rewrite(keep); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("new-after-rewrite")); err != nil {
		t.Fatal(err)
	}
	l.Sync()
	l.Close()
	got := logRecords(t, path)
	wantRecs := []string{"keep-1", "keep-2", "new-after-rewrite"}
	if len(got) != len(wantRecs) {
		t.Fatalf("after rewrite: %d records, want %d", len(got), len(wantRecs))
	}
	for i, w := range wantRecs {
		if string(got[i]) != w {
			t.Fatalf("record %d = %q, want %q", i, got[i], w)
		}
	}
}

// TestLogRejectsForeignFile ensures OpenLog refuses a file that is not a
// record log instead of silently truncating it.
func TestLogRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-log")
	if err := os.WriteFile(path, []byte("definitely not a WAL header"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLog(path, nil); err == nil {
		t.Fatal("OpenLog accepted a foreign file")
	}
}

// TestLogImplausibleLength covers the corrupt-length guard directly: a
// record whose length field decodes to an absurd value stops the scan.
func TestLogImplausibleLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "txn.wal")
	l, err := OpenLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("good"))
	l.Sync()
	l.Close()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var huge [4]byte
	binary.LittleEndian.PutUint32(huge[:], 1<<30)
	if _, err := f.Seek(0, 2); err != nil {
		t.Fatal(err)
	}
	f.Write(huge[:])
	f.Write([]byte("garbage"))
	f.Close()
	got := logRecords(t, path)
	if len(got) != 1 || string(got[0]) != "good" {
		t.Fatalf("replay = %q, want just [good]", got)
	}
}
