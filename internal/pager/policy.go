package pager

// Eviction selects the buffer-pool replacement policy.
type Eviction int

const (
	// LRU evicts the least recently unpinned page (default).
	LRU Eviction = iota
	// Clock approximates LRU with a reference-bit sweep — O(1) state per
	// access, the policy most real database buffer pools use.
	Clock
)

// String names the policy for logs and Stats output.
func (e Eviction) String() string {
	switch e {
	case LRU:
		return "lru"
	case Clock:
		return "clock"
	default:
		return "unknown"
	}
}

// policy tracks evictable (unpinned) frames and picks victims. All calls
// happen under the pager mutex.
type policy interface {
	// unpinned adds a frame to the evictable set (pin count hit zero).
	unpinned(fr *frame)
	// pinned removes a frame from the evictable set (pin count left zero).
	pinned(fr *frame)
	// remove drops a frame that is being discarded entirely.
	remove(fr *frame)
	// victim returns an evictable frame for which skip is false, or nil.
	victim(skip func(*frame) bool) *frame
}

// lruPolicy is a doubly-linked list ordered by recency of unpinning.
type lruPolicy struct {
	head, tail *frame
}

func (l *lruPolicy) unpinned(fr *frame) {
	fr.prev = nil
	fr.next = l.head
	if l.head != nil {
		l.head.prev = fr
	}
	l.head = fr
	if l.tail == nil {
		l.tail = fr
	}
}

func (l *lruPolicy) pinned(fr *frame) { l.unlink(fr) }
func (l *lruPolicy) remove(fr *frame) { l.unlink(fr) }

func (l *lruPolicy) unlink(fr *frame) {
	if fr.prev != nil {
		fr.prev.next = fr.next
	} else if l.head == fr {
		l.head = fr.next
	}
	if fr.next != nil {
		fr.next.prev = fr.prev
	} else if l.tail == fr {
		l.tail = fr.prev
	}
	fr.prev, fr.next = nil, nil
}

func (l *lruPolicy) victim(skip func(*frame) bool) *frame {
	for fr := l.tail; fr != nil; fr = fr.prev {
		if !skip(fr) {
			return fr
		}
	}
	return nil
}

// clockPolicy keeps evictable frames on a circular list with a sweep hand.
// A frame re-entering the pool gets its reference bit set; the hand clears
// bits as it sweeps and evicts the first unreferenced, unskipped frame.
type clockPolicy struct {
	hand *frame
	n    int
}

func (c *clockPolicy) unpinned(fr *frame) {
	fr.ref = true
	if c.hand == nil {
		fr.next, fr.prev = fr, fr
		c.hand = fr
	} else {
		// Insert just behind the hand (the position the sweep reaches
		// last).
		tailf := c.hand.prev
		tailf.next = fr
		fr.prev = tailf
		fr.next = c.hand
		c.hand.prev = fr
	}
	c.n++
}

func (c *clockPolicy) pinned(fr *frame) { c.unlink(fr) }
func (c *clockPolicy) remove(fr *frame) { c.unlink(fr) }

func (c *clockPolicy) unlink(fr *frame) {
	if fr.next == nil && fr.prev == nil && c.hand != fr {
		return // not in the ring
	}
	if c.n == 1 {
		c.hand = nil
	} else {
		fr.prev.next = fr.next
		fr.next.prev = fr.prev
		if c.hand == fr {
			c.hand = fr.next
		}
	}
	fr.next, fr.prev = nil, nil
	c.n--
}

func (c *clockPolicy) victim(skip func(*frame) bool) *frame {
	if c.hand == nil {
		return nil
	}
	// Two full sweeps clear every reference bit; a third pass can only be
	// defeated by skip, so stop there.
	for i := 0; i < 3*c.n; i++ {
		fr := c.hand
		c.hand = c.hand.next
		if skip(fr) {
			continue
		}
		if fr.ref {
			fr.ref = false
			continue
		}
		return fr
	}
	return nil
}
