package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Write-ahead logging gives file-backed pagers atomic multi-page updates:
// a transaction's dirty pages are appended to a side log and fsynced
// before any of them reaches the main file, so a crash at any point either
// replays the whole transaction on reopen or loses it entirely — never a
// torn mix. The policy is NO-STEAL (dirty pages of an open transaction are
// never evicted to the main file) and FORCE (commit applies all pages to
// the main file before returning), which keeps recovery to a single
// redo-or-discard decision with no undo log.
//
// Log format (little-endian):
//
//	header:  magic "MDSWAL01" (8 bytes)
//	record:  count u32 | count × (pageID u32 | pageSize bytes) | crc32 u32
//
// The crc covers the count and all page entries. Recovery replays every
// complete, checksum-valid record in order and discards a trailing partial
// record (an interrupted commit that never made it to durability).

const walMagic = "MDSWAL01"

var (
	// ErrNoTxn is returned by Commit/Rollback without a Begin.
	ErrNoTxn = errors.New("pager: no transaction in progress")
	// ErrTxnActive is returned by operations illegal mid-transaction.
	ErrTxnActive = errors.New("pager: transaction in progress")
)

// errSimulatedCrash supports fault-injection tests: Commit stops right
// after the log reaches durability, before the main file is touched.
var errSimulatedCrash = errors.New("pager: simulated crash after WAL sync")

// wal is the append-side of the log.
type wal struct {
	f        *os.File
	path     string
	pageSize int
}

func openWAL(path string, pageSize int) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open wal %s: %w", path, err)
	}
	w := &wal{f: f, path: path, pageSize: pageSize}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi.Size() == 0 {
		if _, err := f.WriteString(walMagic); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return w, nil
}

// append writes one commit record (all dirty pages) and fsyncs.
func (w *wal) append(pages map[PageID][]byte) error {
	end, err := w.f.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, 4+len(pages)*(4+w.pageSize)+4)
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(pages)))
	buf = append(buf, cnt[:]...)
	for id, data := range pages {
		var pid [4]byte
		binary.LittleEndian.PutUint32(pid[:], uint32(id))
		buf = append(buf, pid[:]...)
		buf = append(buf, data...)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf))
	buf = append(buf, crc[:]...)
	if _, err := w.f.WriteAt(buf, end); err != nil {
		return err
	}
	return w.f.Sync()
}

// reset truncates the log back to just its header (checkpoint complete).
func (w *wal) reset() error {
	if err := w.f.Truncate(int64(len(walMagic))); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *wal) close() error { return w.f.Close() }

// recoverWAL replays committed records from the log at path into the
// backend and reports how many transactions were redone. A missing log is
// fine (0, nil). Partial or corrupt trailing records are discarded.
func recoverWAL(path string, pageSize int, be backend, grownPages *PageID) (int, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	head := make([]byte, len(walMagic))
	if _, err := io.ReadFull(f, head); err != nil {
		return 0, nil // header never completed: nothing committed
	}
	if string(head) != walMagic {
		return 0, fmt.Errorf("pager: %s is not a WAL file", path)
	}
	replayed := 0
	for {
		var cnt [4]byte
		if _, err := io.ReadFull(f, cnt[:]); err != nil {
			return replayed, nil // clean end or partial record: stop
		}
		n := binary.LittleEndian.Uint32(cnt[:])
		if n == 0 || n > 1<<20 {
			return replayed, nil // implausible: treat as partial
		}
		body := make([]byte, int(n)*(4+pageSize))
		if _, err := io.ReadFull(f, body); err != nil {
			return replayed, nil
		}
		var crc [4]byte
		if _, err := io.ReadFull(f, crc[:]); err != nil {
			return replayed, nil
		}
		whole := append(append([]byte{}, cnt[:]...), body...)
		if crc32.ChecksumIEEE(whole) != binary.LittleEndian.Uint32(crc[:]) {
			return replayed, nil // torn write: discard from here on
		}
		// Valid record: redo it.
		for i := 0; i < int(n); i++ {
			off := i * (4 + pageSize)
			id := PageID(binary.LittleEndian.Uint32(body[off:]))
			if id >= *grownPages {
				if err := be.grow(int(id) + 1); err != nil {
					return replayed, err
				}
				*grownPages = id + 1
			}
			if err := be.writePage(id, body[off+4:off+4+pageSize]); err != nil {
				return replayed, err
			}
		}
		if err := be.sync(); err != nil {
			return replayed, err
		}
		replayed++
	}
}
