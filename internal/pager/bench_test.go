package pager

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

func benchPager(b *testing.B, opts Options) *Pager {
	b.Helper()
	p, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { p.Close() })
	return p
}

func BenchmarkReadHit(b *testing.B) {
	p := benchPager(b, Options{PageSize: 4096, PoolPages: 64})
	id, _ := p.Alloc()
	buf := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Read(id, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadMissMem(b *testing.B) {
	// Pool of 2 over 64 pages: nearly every read misses and evicts.
	p := benchPager(b, Options{PageSize: 4096, PoolPages: 2})
	for i := 0; i < 64; i++ {
		p.Alloc()
	}
	buf := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Read(PageID(i%64), buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteThroughPool(b *testing.B) {
	p := benchPager(b, Options{PageSize: 4096, PoolPages: 64})
	for i := 0; i < 32; i++ {
		p.Alloc()
	}
	buf := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Write(PageID(i%32), buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvictionPolicies(b *testing.B) {
	for _, ev := range []Eviction{LRU, Clock} {
		b.Run(ev.String(), func(b *testing.B) {
			p := benchPager(b, Options{PageSize: 4096, PoolPages: 32, Eviction: ev})
			const pages = 256
			for i := 0; i < pages; i++ {
				p.Alloc()
			}
			rng := rand.New(rand.NewSource(1))
			z := rand.NewZipf(rng, 1.3, 1, pages-1)
			buf := make([]byte, 4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.Read(PageID(z.Uint64()), buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTxnCommit(b *testing.B) {
	for _, pagesPerTxn := range []int{1, 8} {
		b.Run(fmt.Sprintf("pages=%d", pagesPerTxn), func(b *testing.B) {
			dir := b.TempDir()
			p := benchPager(b, Options{PageSize: 4096, PoolPages: 64, Path: filepath.Join(dir, "db"), WAL: true})
			ids := make([]PageID, pagesPerTxn)
			for i := range ids {
				ids[i], _ = p.Alloc()
			}
			buf := make([]byte, 4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.Begin(); err != nil {
					b.Fatal(err)
				}
				for _, id := range ids {
					buf[0] = byte(i)
					if err := p.Write(id, buf); err != nil {
						b.Fatal(err)
					}
				}
				if err := p.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
