package pager

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func newWALPager(t *testing.T, dir string) *Pager {
	t.Helper()
	p, err := Open(Options{PageSize: 128, PoolPages: 8, Path: filepath.Join(dir, "db"), WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestWALRequiresPath(t *testing.T) {
	if _, err := Open(Options{WAL: true}); err == nil {
		t.Fatal("WAL without path accepted")
	}
}

func TestTxnCommitPersists(t *testing.T) {
	dir := t.TempDir()
	p := newWALPager(t, dir)
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	fill(p, a, 0x11)
	fill(p, b, 0x22)
	if !p.InTxn() {
		t.Error("InTxn = false during transaction")
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if p.InTxn() {
		t.Error("InTxn = true after commit")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2 := newWALPager(t, dir)
	defer p2.Close()
	buf := make([]byte, 128)
	if err := p2.Read(a, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x11 {
		t.Errorf("page a byte = %#x", buf[0])
	}
	if err := p2.Read(b, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x22 {
		t.Errorf("page b byte = %#x", buf[0])
	}
}

func TestTxnRollbackDiscards(t *testing.T) {
	dir := t.TempDir()
	p := newWALPager(t, dir)
	defer p.Close()
	// Commit an initial value.
	p.Begin()
	id, _ := p.Alloc()
	fill(p, id, 0xAA)
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	// Modify and roll back.
	p.Begin()
	fill(p, id, 0xBB)
	if err := p.Rollback(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if err := p.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xAA {
		t.Errorf("byte after rollback = %#x, want 0xAA", buf[0])
	}
}

func TestTxnStateErrors(t *testing.T) {
	dir := t.TempDir()
	p := newWALPager(t, dir)
	defer p.Close()
	if err := p.Commit(); !errors.Is(err, ErrNoTxn) {
		t.Errorf("Commit without Begin = %v", err)
	}
	if err := p.Rollback(); !errors.Is(err, ErrNoTxn) {
		t.Errorf("Rollback without Begin = %v", err)
	}
	p.Begin()
	if err := p.Begin(); !errors.Is(err, ErrTxnActive) {
		t.Errorf("nested Begin = %v", err)
	}
	if err := p.Flush(); !errors.Is(err, ErrTxnActive) {
		t.Errorf("Flush during txn = %v", err)
	}
	if err := p.Close(); !errors.Is(err, ErrTxnActive) {
		t.Errorf("Close during txn = %v", err)
	}
	if err := p.Rollback(); err != nil {
		t.Fatal(err)
	}
}

func TestNoWALTxnIsNoop(t *testing.T) {
	p := newMemPager(t, 128, 8)
	if err := p.Begin(); err != nil {
		t.Errorf("Begin without WAL = %v", err)
	}
	if err := p.Commit(); err != nil {
		t.Errorf("Commit without WAL = %v", err)
	}
	if err := p.Rollback(); err != nil {
		t.Errorf("Rollback without WAL = %v", err)
	}
}

// TestCrashBeforeWALSyncLosesTxn: a crash before the log record completes
// means the transaction never happened.
func TestCrashBeforeWALSyncLosesTxn(t *testing.T) {
	dir := t.TempDir()
	p := newWALPager(t, dir)
	p.Begin()
	id, _ := p.Alloc()
	fill(p, id, 0x77)
	// Simulate a crash by just abandoning the pager (no Commit, no Close).
	// The OS file state: db file may have grown (Alloc truncates) but the
	// page image was never written; the WAL holds no record.
	p2 := newWALPager(t, dir)
	defer p2.Close()
	if n := p2.NumPages(); n > 0 {
		buf := make([]byte, 128)
		if err := p2.Read(0, buf); err == nil && buf[0] == 0x77 {
			t.Error("uncommitted write visible after crash")
		}
	}
}

// TestCrashAfterWALSyncRedoesTxn: once the log record is durable, the
// transaction must survive even if the main file was never touched.
func TestCrashAfterWALSyncRedoesTxn(t *testing.T) {
	dir := t.TempDir()
	p := newWALPager(t, dir)
	p.Begin()
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	fill(p, a, 0x31)
	fill(p, b, 0x32)
	p.crashAfterWALSync = true
	if err := p.Commit(); !errors.Is(err, errSimulatedCrash) {
		t.Fatalf("Commit = %v, want simulated crash", err)
	}
	// Abandon p (crashed). Reopen: recovery must replay the record.
	p2 := newWALPager(t, dir)
	defer p2.Close()
	buf := make([]byte, 128)
	if err := p2.Read(a, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x31 {
		t.Errorf("page a = %#x after recovery, want 0x31", buf[0])
	}
	if err := p2.Read(b, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x32 {
		t.Errorf("page b = %#x after recovery, want 0x32", buf[0])
	}
}

// TestRecoveryDiscardsTornRecord: a truncated trailing record (torn write)
// must be ignored while earlier committed records replay.
func TestRecoveryDiscardsTornRecord(t *testing.T) {
	dir := t.TempDir()
	p := newWALPager(t, dir)
	p.Begin()
	a, _ := p.Alloc()
	fill(p, a, 0x41)
	p.crashAfterWALSync = true
	if err := p.Commit(); !errors.Is(err, errSimulatedCrash) {
		t.Fatal(err)
	}
	// Corrupt the log: truncate the final crc byte.
	walPath := filepath.Join(dir, "db.wal")
	st, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, st.Size()-1); err != nil {
		t.Fatal(err)
	}
	p2 := newWALPager(t, dir)
	defer p2.Close()
	buf := make([]byte, 128)
	if p2.NumPages() > 0 {
		if err := p2.Read(a, buf); err == nil && buf[0] == 0x41 {
			t.Error("torn record replayed")
		}
	}
}

// TestRecoveryRejectsCorruptChecksum flips a byte inside the record body.
func TestRecoveryRejectsCorruptChecksum(t *testing.T) {
	dir := t.TempDir()
	p := newWALPager(t, dir)
	p.Begin()
	a, _ := p.Alloc()
	fill(p, a, 0x51)
	p.crashAfterWALSync = true
	p.Commit()
	walPath := filepath.Join(dir, "db.wal")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0xFF
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	p2 := newWALPager(t, dir)
	defer p2.Close()
	if p2.NumPages() > 0 {
		buf := make([]byte, 128)
		if err := p2.Read(a, buf); err == nil && buf[0] == 0x51 {
			t.Error("checksum-corrupt record replayed")
		}
	}
}

func TestNoStealEviction(t *testing.T) {
	// Pool of 3; dirty 2 pages in a txn, then touch many others: the txn
	// pages must stay resident and the commit must still see them.
	dir := t.TempDir()
	p, err := Open(Options{PageSize: 128, PoolPages: 3, Path: filepath.Join(dir, "db"), WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Pre-allocate pages outside the txn.
	ids := make([]PageID, 10)
	for i := range ids {
		ids[i], _ = p.Alloc()
	}
	p.Begin()
	fill(p, ids[0], 0x61)
	fill(p, ids[1], 0x62)
	buf := make([]byte, 128)
	for i := 2; i < 10; i++ {
		if err := p.Read(ids[i], buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if err := p.Commit(); err != nil {
		t.Fatalf("Commit after eviction pressure: %v", err)
	}
	if err := p.Read(ids[0], buf); err != nil || buf[0] != 0x61 {
		t.Errorf("txn page lost: %v %#x", err, buf[0])
	}
}

func TestWALFileResetAfterCommit(t *testing.T) {
	dir := t.TempDir()
	p := newWALPager(t, dir)
	p.Begin()
	id, _ := p.Alloc()
	fill(p, id, 0x71)
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	p.Close()
	data, err := os.ReadFile(filepath.Join(dir, "db.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte(walMagic)) {
		t.Errorf("wal not reset after commit: %d bytes", len(data))
	}
}

func TestEmptyTxnCommit(t *testing.T) {
	dir := t.TempDir()
	p := newWALPager(t, dir)
	defer p.Close()
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil {
		t.Fatalf("empty commit: %v", err)
	}
}
