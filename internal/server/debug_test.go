package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/shard"
)

// tracezDump mirrors the /debug/tracez JSON payload shape.
type tracezDump struct {
	Recent  []obs.TraceSnapshot `json:"recent"`
	Slowest []obs.TraceSnapshot `json:"slowest"`
	Errored []obs.TraceSnapshot `json:"errored"`
}

func TestTracezEndpointServesRetainedTraces(t *testing.T) {
	db, err := shard.New(core.Options{Dim: 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s := New(db, WithRecorder(obs.NewRecorder(obs.RecorderConfig{})))

	first := seedCorpus(t, s, 6)
	if rec := doJSON(t, s, "POST", "/search", SearchRequest{Points: first[:20], Eps: 0.3}); rec.Code != http.StatusOK {
		t.Fatalf("search: %d %s", rec.Code, rec.Body)
	}
	if rec := doJSON(t, s, "GET", "/nosuch", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("expected 404 probe, got %d", rec.Code)
	}

	rec := doJSON(t, s, "GET", "/debug/tracez", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/tracez: %d", rec.Code)
	}
	var dump tracezDump
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("tracez JSON: %v\n%s", err, rec.Body)
	}
	var search *obs.TraceSnapshot
	for i := range dump.Recent {
		if dump.Recent[i].Attrs["path"] == "/search" {
			search = &dump.Recent[i]
		}
	}
	if search == nil {
		t.Fatalf("search request not retained in recent traces:\n%s", rec.Body)
	}
	names := map[string]bool{}
	var shardParented bool
	byID := map[int]string{}
	for _, sp := range search.Spans {
		byID[sp.ID] = sp.Name
	}
	for _, sp := range search.Spans {
		names[sp.Name] = true
		if sp.Name == "shard" && byID[sp.Parent] == "scatter" {
			shardParented = true
		}
	}
	for _, want := range []string{"scatter", "shard", "partition", "filter", "refine"} {
		if !names[want] {
			t.Fatalf("retained search trace missing span %q (have %v)", want, names)
		}
	}
	if !shardParented {
		t.Fatal("shard spans are not children of the scatter span")
	}
	if search.Attrs["eps"] == nil || search.Attrs["candidates"] == nil {
		t.Fatalf("search trace missing wide-event attrs: %v", search.Attrs)
	}

	// The 404 probe was marked errored by the middleware and retained.
	var errored bool
	for _, tr := range dump.Errored {
		if tr.Status == "error" && tr.Attrs["path"] == "/nosuch" {
			errored = true
		}
	}
	if !errored {
		t.Fatalf("404 request not retained in errored traces:\n%s", rec.Body)
	}

	// Text rendering: section headers plus an indented span tree.
	trec := doJSON(t, s, "GET", "/debug/tracez?format=text", nil)
	if trec.Code != http.StatusOK {
		t.Fatalf("/debug/tracez?format=text: %d", trec.Code)
	}
	body := trec.Body.String()
	for _, want := range []string{"== recent", "== slowest", "== errored", "scatter", "pruned_frac"} {
		if !strings.Contains(body, want) {
			t.Fatalf("tracez text missing %q:\n%s", want, body)
		}
	}
}

func TestRequestzEndpoint(t *testing.T) {
	db, err := core.NewDatabase(core.Options{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	rec := obs.NewRecorder(obs.RecorderConfig{})
	s := New(db, WithRecorder(rec))

	// Pin a synthetic in-flight request so the table is non-empty.
	tr := obs.NewTraceWithID("hung-req-1")
	tr.SetAttrs(obs.Str("path", "/search"))
	rec.Start(tr)
	defer rec.End(tr)

	resp := doJSON(t, s, "GET", "/debug/requestz", nil)
	if resp.Code != http.StatusOK {
		t.Fatalf("/debug/requestz: %d", resp.Code)
	}
	var out struct {
		Active []struct {
			ID    string         `json:"id"`
			Age   string         `json:"age"`
			Attrs map[string]any `json:"attrs"`
		} `json:"active"`
	}
	if err := json.Unmarshal(resp.Body.Bytes(), &out); err != nil {
		t.Fatalf("requestz JSON: %v\n%s", err, resp.Body)
	}
	var found bool
	for _, a := range out.Active {
		if a.ID == "hung-req-1" {
			found = true
			if a.Age == "" || a.Attrs["path"] != "/search" {
				t.Fatalf("active row incomplete: %+v", a)
			}
		}
	}
	if !found {
		t.Fatalf("pinned request missing from /debug/requestz:\n%s", resp.Body)
	}
}

func TestDebugEndpointsAbsentWithoutRecorder(t *testing.T) {
	s, _ := newTestServer(t)
	for _, path := range []string{"/debug/tracez", "/debug/requestz"} {
		if rec := doJSON(t, s, "GET", path, nil); rec.Code != http.StatusNotFound {
			t.Fatalf("GET %s without a recorder = %d, want 404", path, rec.Code)
		}
	}
}
