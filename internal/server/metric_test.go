package server

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"testing"

	"repro/internal/core"
)

// metricTestServer builds a server over a small corpus plus a handle to
// the database for computing expected answers directly.
func metricTestServer(t *testing.T, opts ...Option) (*Server, *core.Database, [][]float64) {
	t.Helper()
	db, err := core.NewDatabase(core.Options{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	rng := rand.New(rand.NewSource(71))
	var qpts [][]float64
	for i := 0; i < 25; i++ {
		pts := walkPoints(rng, 20+rng.Intn(60))
		if i == 0 {
			qpts = pts[:15]
		}
		seq, err := toSequence(SequenceJSON{Label: "s", Points: pts})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.Add(seq); err != nil {
			t.Fatal(err)
		}
	}
	return New(db, opts...), db, qpts
}

// TestSearchMetricHTTP: POST /search with metric "dtw" returns the DTW
// ε-ball with exact distances, matching the database's own metric search.
func TestSearchMetricHTTP(t *testing.T) {
	s, db, qpts := metricTestServer(t)
	w := 4
	rec := doJSON(t, s, "POST", "/search", SearchRequest{
		Points: qpts, Eps: 0.4, Metric: "dtw", DTWWindow: &w,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("search: %d %s", rec.Code, rec.Body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	q, err := toSequence(SequenceJSON{Label: "query", Points: qpts})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := db.SearchMetric(q, 0.4, core.MetricDTW{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) != len(want) {
		t.Fatalf("HTTP returned %d matches, database %d", len(resp.Matches), len(want))
	}
	for i, m := range resp.Matches {
		if m.ID != want[i].SeqID || math.Float64bits(m.Dist) != math.Float64bits(want[i].Dist) {
			t.Fatalf("match %d = (%d, %v), want (%d, %v)", i, m.ID, m.Dist, want[i].SeqID, want[i].Dist)
		}
		if len(m.Intervals) != 0 {
			t.Fatalf("DTW match %d carries solution intervals", i)
		}
	}
}

// TestKNNMetricHTTP: POST /knn with metric "dtw" ranks by exact DTW.
func TestKNNMetricHTTP(t *testing.T) {
	s, db, qpts := metricTestServer(t)
	rec := doJSON(t, s, "POST", "/knn", KNNRequest{Points: qpts, K: 5, Metric: "dtw"})
	if rec.Code != http.StatusOK {
		t.Fatalf("knn: %d %s", rec.Code, rec.Body)
	}
	var resp struct {
		Neighbors []NeighborJSON `json:"neighbors"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	q, err := toSequence(SequenceJSON{Label: "query", Points: qpts})
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.SearchKNNMetric(q, 5, core.MetricDTW{Window: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Neighbors) != len(want) {
		t.Fatalf("HTTP returned %d neighbors, database %d", len(resp.Neighbors), len(want))
	}
	for i, n := range resp.Neighbors {
		if n.ID != want[i].SeqID || math.Float64bits(n.Dist) != math.Float64bits(want[i].Dist) {
			t.Fatalf("neighbor %d = (%d, %v), want (%d, %v)", i, n.ID, n.Dist, want[i].SeqID, want[i].Dist)
		}
	}
}

// TestMetricHTTPValidation: unknown metric names and invalid windows are
// 400s, not 500s or silent fallbacks to D.
func TestMetricHTTPValidation(t *testing.T) {
	s, _, qpts := metricTestServer(t)
	rec := doJSON(t, s, "POST", "/search", SearchRequest{Points: qpts, Eps: 0.2, Metric: "chebyshev"})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown metric: %d, want 400", rec.Code)
	}
	bad := -3
	rec = doJSON(t, s, "POST", "/search", SearchRequest{Points: qpts, Eps: 0.2, Metric: "dtw", DTWWindow: &bad})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("window -3: %d, want 400", rec.Code)
	}
	rec = doJSON(t, s, "POST", "/knn", KNNRequest{Points: qpts, K: 3, Metric: "chebyshev"})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("knn unknown metric: %d, want 400", rec.Code)
	}
}

// TestDefaultMetricOption: WithDefaultMetric("dtw", w) makes metric-less
// requests run DTW, while an explicit metric "d" still overrides back to
// the stock path.
func TestDefaultMetricOption(t *testing.T) {
	s, db, qpts := metricTestServer(t, WithDefaultMetric("dtw", 4))
	rec := doJSON(t, s, "POST", "/search", SearchRequest{Points: qpts, Eps: 0.4})
	if rec.Code != http.StatusOK {
		t.Fatalf("default-metric search: %d %s", rec.Code, rec.Body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	q, err := toSequence(SequenceJSON{Label: "query", Points: qpts})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := db.SearchMetric(q, 0.4, core.MetricDTW{Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) != len(want) {
		t.Fatalf("default-metric search returned %d matches, want DTW's %d", len(resp.Matches), len(want))
	}
	for i, m := range resp.Matches {
		if m.ID != want[i].SeqID || math.Float64bits(m.Dist) != math.Float64bits(want[i].Dist) {
			t.Fatalf("default-metric match %d differs", i)
		}
	}

	// Explicit "d" overrides the default back to the stock search.
	rec = doJSON(t, s, "POST", "/search", SearchRequest{Points: qpts, Eps: 0.4, Metric: "d"})
	if rec.Code != http.StatusOK {
		t.Fatalf("explicit d: %d %s", rec.Code, rec.Body)
	}
	var dresp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &dresp); err != nil {
		t.Fatal(err)
	}
	matches, _, err := db.Search(q, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(dresp.Matches) != len(matches) {
		t.Fatalf("explicit d returned %d matches, want %d", len(dresp.Matches), len(matches))
	}
	for _, m := range dresp.Matches {
		if len(m.Intervals) == 0 {
			t.Fatal("explicit d match lost its solution intervals")
		}
	}

	// The default window also applies to /knn.
	rec = doJSON(t, s, "POST", "/knn", KNNRequest{Points: qpts, K: 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("default-metric knn: %d %s", rec.Code, rec.Body)
	}
	var nresp struct {
		Neighbors []NeighborJSON `json:"neighbors"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &nresp); err != nil {
		t.Fatal(err)
	}
	wantNN, err := db.SearchKNNMetric(q, 3, core.MetricDTW{Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(nresp.Neighbors) != len(wantNN) {
		t.Fatalf("default-metric knn returned %d, want %d", len(nresp.Neighbors), len(wantNN))
	}
	for i, n := range nresp.Neighbors {
		if n.ID != wantNN[i].SeqID || math.Float64bits(n.Dist) != math.Float64bits(wantNN[i].Dist) {
			t.Fatalf("default-metric neighbor %d differs", i)
		}
	}
}
