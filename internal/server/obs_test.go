package server

import (
	"encoding/json"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/shard"
)

// syncBuffer is a goroutine-safe log sink for slog handlers.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// seedCorpus adds n random-walk sequences with distinct labels (so a
// sharded database spreads them) and returns one of them for querying.
func seedCorpus(t *testing.T, s *Server, n int) [][]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	var first [][]float64
	for i := 0; i < n; i++ {
		pts := walkPoints(rng, 60)
		if first == nil {
			first = pts
		}
		rec := doJSON(t, s, "POST", "/sequences", SequenceJSON{Label: "seq-" + string(rune('a'+i)), Points: pts})
		if rec.Code != http.StatusCreated {
			t.Fatalf("add: %d %s", rec.Code, rec.Body)
		}
	}
	return first
}

// TestMetricsEndpointReflectsTraffic drives live traffic through an
// instrumented sharded server and asserts GET /metrics serves valid
// Prometheus text including search latency histograms, per-phase
// timings, pruning counters, per-shard fan-out series, and HTTP metrics.
func TestMetricsEndpointReflectsTraffic(t *testing.T) {
	reg := obs.NewRegistry()
	db, err := shard.New(core.Options{Dim: 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s := New(db, WithMetrics(reg))

	first := seedCorpus(t, s, 8)
	rec := doJSON(t, s, "POST", "/search", SearchRequest{Points: first[:20], Eps: 0.3})
	if rec.Code != http.StatusOK {
		t.Fatalf("search: %d %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("X-Request-ID") == "" {
		t.Fatal("search response missing X-Request-ID")
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if doJSON(t, s, "POST", "/knn", KNNRequest{Points: first[:20], K: 2}).Code != http.StatusOK {
		t.Fatal("knn failed")
	}

	mrec := doJSON(t, s, "GET", "/metrics", nil)
	if mrec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", mrec.Code)
	}
	if ct := mrec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	out := mrec.Body.String()
	for _, want := range []string{
		"# TYPE mdseq_search_seconds histogram",
		"mdseq_search_seconds_count 1",
		`mdseq_search_phase_seconds_count{phase="partition"} 1`,
		`mdseq_search_phase_seconds_count{phase="filter"} 1`,
		`mdseq_search_phase_seconds_count{phase="refine"} 1`,
		"# TYPE mdseq_search_candidates_dmbr_total counter",
		"# TYPE mdseq_search_candidates_pruned_total counter",
		`mdseq_shard_search_seconds_count{shard="0"} 1`,
		`mdseq_shard_search_seconds_count{shard="2"} 1`,
		"mdseq_shard_straggler_gap_seconds_count 1",
		"mdseq_knn_total 1",
		"mdseq_sequences_added_total 8",
		"mdseq_sequences 8",
		`mdseq_http_requests_total{code="200",method="POST"}`,
		"# TYPE mdseq_http_request_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must be parseable "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

// TestSlowQueryLog lowers the threshold to one nanosecond so every query
// is "slow" and asserts the structured record carries the request ID and
// the full per-shard stats.
func TestSlowQueryLog(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	db, err := shard.New(core.Options{Dim: 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s := New(db, WithLogger(logger), WithSlowQueryThreshold(time.Nanosecond))

	first := seedCorpus(t, s, 6)
	rec := doJSON(t, s, "POST", "/search", SearchRequest{Points: first[:20], Eps: 0.3})
	if rec.Code != http.StatusOK {
		t.Fatalf("search: %d %s", rec.Code, rec.Body)
	}
	reqID := rec.Header().Get("X-Request-ID")
	if reqID == "" {
		t.Fatal("missing X-Request-ID")
	}

	// Find the slow-query record among the request log lines.
	var slow map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if m["msg"] == "slow query" {
			slow = m
		}
	}
	if slow == nil {
		t.Fatalf("no slow-query record in log:\n%s", buf.String())
	}
	if slow["requestID"] != reqID {
		t.Fatalf("slow-query requestID %v != response header %q", slow["requestID"], reqID)
	}
	// The exemplar-style annotation: the latency histogram bucket (le
	// notation) this query landed in, for correlation with /metrics.
	le, ok := slow["le"].(string)
	if !ok || le == "" {
		t.Fatalf("slow-query record missing le bucket annotation: %v", slow)
	}
	if _, err := strconv.ParseFloat(le, 64); err != nil && le != "+Inf" {
		t.Fatalf("le = %q is not a latency bucket bound", le)
	}
	if slow["route"] != "search" {
		t.Fatalf("route = %v", slow["route"])
	}
	stats, ok := slow["stats"].(map[string]any)
	if !ok {
		t.Fatalf("slow-query record missing stats group: %v", slow)
	}
	for _, key := range []string{"totalSequences", "candidatesDmbr", "matchesDnorm", "phase1", "phase2", "phase3", "cpuTime"} {
		if _, ok := stats[key]; !ok {
			t.Fatalf("stats group missing %q: %v", key, stats)
		}
	}
	for _, sh := range []string{"shard.0", "shard.1"} {
		g, ok := slow[sh].(map[string]any)
		if !ok {
			t.Fatalf("slow-query record missing per-shard group %q: %v", sh, slow)
		}
		if _, ok := g["candidatesDmbr"]; !ok {
			t.Fatalf("per-shard group %q missing candidatesDmbr: %v", sh, g)
		}
	}
}

// TestSlowQueryLogQuietBelowThreshold checks a fast query does not spam
// the slow-query log.
func TestSlowQueryLogQuietBelowThreshold(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	db, err := core.NewDatabase(core.Options{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s := New(db, WithLogger(logger), WithSlowQueryThreshold(time.Hour))
	first := seedCorpus(t, s, 3)
	if rec := doJSON(t, s, "POST", "/search", SearchRequest{Points: first[:20], Eps: 0.3}); rec.Code != http.StatusOK {
		t.Fatalf("search: %d", rec.Code)
	}
	if strings.Contains(buf.String(), "slow query") {
		t.Fatalf("unexpected slow-query record:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `"msg":"request"`) {
		t.Fatalf("request log line missing:\n%s", buf.String())
	}
}

// TestPprofGating: /debug/pprof is 404 without WithPprof and serves the
// index with it.
func TestPprofGating(t *testing.T) {
	db, err := core.NewDatabase(core.Options{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	off := New(db)
	if rec := doJSON(t, off, "GET", "/debug/pprof/", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("pprof off: got %d, want 404", rec.Code)
	}
	on := New(db, WithPprof(true))
	rec := doJSON(t, on, "GET", "/debug/pprof/", nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatalf("pprof on: %d %s", rec.Code, rec.Body.String()[:min(120, rec.Body.Len())])
	}
}

// TestSearchResponseCarriesPhaseTimings checks the in-band stats now
// include the phase decomposition.
func TestSearchResponseCarriesPhaseTimings(t *testing.T) {
	db, err := core.NewDatabase(core.Options{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s := New(db)
	first := seedCorpus(t, s, 3)
	rec := doJSON(t, s, "POST", "/search", SearchRequest{Points: first[:20], Eps: 0.3})
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stats.CPUUs <= 0 {
		t.Fatalf("cpuUs = %d, want > 0", resp.Stats.CPUUs)
	}
}
