package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/txn"
)

func newTestServer(t *testing.T) (*Server, *core.Database) {
	t.Helper()
	db, err := core.NewDatabase(core.Options{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return New(db), db
}

func newShardedTestServer(t *testing.T, shards int) (*Server, *shard.ShardedDB) {
	t.Helper()
	db, err := shard.New(core.Options{Dim: 3}, shards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return New(db), db
}

func doJSON(t *testing.T, s *Server, method, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func walkPoints(rng *rand.Rand, n int) [][]float64 {
	pts := make([][]float64, n)
	cur := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	for i := range pts {
		next := make([]float64, 3)
		for k := range next {
			v := cur[k] + (rng.Float64()-0.5)*0.06
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			next[k] = v
		}
		pts[i], cur = next, next
	}
	return pts
}

func TestAddGetDelete(t *testing.T) {
	s, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(1))

	rec := doJSON(t, s, "POST", "/sequences", SequenceJSON{Label: "a", Points: walkPoints(rng, 40)})
	if rec.Code != http.StatusCreated {
		t.Fatalf("add: %d %s", rec.Code, rec.Body)
	}
	var created struct {
		ID uint32 `json:"id"`
	}
	json.Unmarshal(rec.Body.Bytes(), &created)

	rec = doJSON(t, s, "GET", fmt.Sprintf("/sequences/%d", created.ID), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("get: %d", rec.Code)
	}
	var got SequenceJSON
	json.Unmarshal(rec.Body.Bytes(), &got)
	if got.Label != "a" || len(got.Points) != 40 {
		t.Errorf("got %q with %d points", got.Label, len(got.Points))
	}

	rec = doJSON(t, s, "DELETE", fmt.Sprintf("/sequences/%d", created.ID), nil)
	if rec.Code != http.StatusNoContent {
		t.Fatalf("delete: %d", rec.Code)
	}
	rec = doJSON(t, s, "GET", fmt.Sprintf("/sequences/%d", created.ID), nil)
	if rec.Code != http.StatusNotFound {
		t.Errorf("get after delete: %d", rec.Code)
	}
	rec = doJSON(t, s, "DELETE", fmt.Sprintf("/sequences/%d", created.ID), nil)
	if rec.Code != http.StatusNotFound {
		t.Errorf("double delete: %d", rec.Code)
	}
}

func TestBatchSearchAndKNN(t *testing.T) {
	s, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(2))
	batch := struct {
		Sequences []SequenceJSON `json:"sequences"`
	}{}
	var stored [][][]float64
	for i := 0; i < 15; i++ {
		pts := walkPoints(rng, 60)
		stored = append(stored, pts)
		batch.Sequences = append(batch.Sequences, SequenceJSON{Label: fmt.Sprintf("s%d", i), Points: pts})
	}
	rec := doJSON(t, s, "POST", "/sequences/batch", batch)
	if rec.Code != http.StatusCreated {
		t.Fatalf("batch: %d %s", rec.Code, rec.Body)
	}
	var ids struct {
		IDs []uint32 `json:"ids"`
	}
	json.Unmarshal(rec.Body.Bytes(), &ids)
	if len(ids.IDs) != 15 {
		t.Fatalf("ids = %v", ids.IDs)
	}

	// Search with a stored subsequence; source must match.
	query := stored[4][10:40]
	for _, parallel := range []bool{false, true} {
		rec = doJSON(t, s, "POST", "/search", SearchRequest{Points: query, Eps: 0.05, Parallel: parallel})
		if rec.Code != http.StatusOK {
			t.Fatalf("search: %d %s", rec.Code, rec.Body)
		}
		var resp SearchResponse
		json.Unmarshal(rec.Body.Bytes(), &resp)
		found := false
		for _, m := range resp.Matches {
			if m.ID == 4 {
				found = true
				if len(m.Intervals) == 0 {
					t.Error("match without intervals")
				}
			}
		}
		if !found {
			t.Errorf("parallel=%v: source not found in %+v", parallel, resp.Matches)
		}
		if resp.Stats.TotalSequences != 15 {
			t.Errorf("stats: %+v", resp.Stats)
		}
	}

	// k-NN.
	rec = doJSON(t, s, "POST", "/knn", KNNRequest{Points: query, K: 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("knn: %d %s", rec.Code, rec.Body)
	}
	var knn struct {
		Neighbors []NeighborJSON `json:"neighbors"`
	}
	json.Unmarshal(rec.Body.Bytes(), &knn)
	if len(knn.Neighbors) != 3 || knn.Neighbors[0].ID != 4 || knn.Neighbors[0].Dist != 0 {
		t.Errorf("knn = %+v", knn.Neighbors)
	}
}

func TestAppendEndpoint(t *testing.T) {
	s, db := newTestServer(t)
	rng := rand.New(rand.NewSource(3))
	rec := doJSON(t, s, "POST", "/sequences", SequenceJSON{Label: "grow", Points: walkPoints(rng, 30)})
	if rec.Code != http.StatusCreated {
		t.Fatal(rec.Code)
	}
	rec = doJSON(t, s, "POST", "/sequences/0/append", map[string]interface{}{"points": walkPoints(rng, 20)})
	if rec.Code != http.StatusOK {
		t.Fatalf("append: %d %s", rec.Code, rec.Body)
	}
	var resp struct {
		Length int `json:"length"`
	}
	json.Unmarshal(rec.Body.Bytes(), &resp)
	if resp.Length != 50 {
		t.Errorf("length = %d", resp.Length)
	}
	if db.Segmented(0).Seq.Len() != 50 {
		t.Error("append not applied")
	}
	rec = doJSON(t, s, "POST", "/sequences/99/append", map[string]interface{}{"points": walkPoints(rng, 5)})
	if rec.Code != http.StatusNotFound {
		t.Errorf("append to unknown: %d", rec.Code)
	}
}

func TestExplainEndpoint(t *testing.T) {
	s, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 6; i++ {
		doJSON(t, s, "POST", "/sequences", SequenceJSON{Label: fmt.Sprintf("s%d", i), Points: walkPoints(rng, 40)})
	}
	rec := doJSON(t, s, "POST", "/explain", SearchRequest{Points: walkPoints(rng, 20), Eps: 0.3})
	if rec.Code != http.StatusOK {
		t.Fatalf("explain: %d %s", rec.Code, rec.Body)
	}
	var resp ExplainResponse
	json.Unmarshal(rec.Body.Bytes(), &resp)
	if resp.PrunedDmbr+resp.PrunedDnorm+resp.Matched != 6 {
		t.Errorf("counts: %+v", resp)
	}
	if len(resp.Sequences) != 6 {
		t.Errorf("sequences: %d", len(resp.Sequences))
	}
}

func TestStatsEndpoint(t *testing.T) {
	s, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(5))
	doJSON(t, s, "POST", "/sequences", SequenceJSON{Label: "x", Points: walkPoints(rng, 50)})
	rec := doJSON(t, s, "GET", "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatal(rec.Code)
	}
	var stats map[string]int
	json.Unmarshal(rec.Body.Bytes(), &stats)
	if stats["sequences"] != 1 || stats["mbrs"] < 1 {
		t.Errorf("stats = %v", stats)
	}
}

func TestBadRequests(t *testing.T) {
	s, _ := newTestServer(t)
	cases := []struct {
		method, path string
		body         string
		wantStatus   int
	}{
		{"POST", "/sequences", `{`, http.StatusBadRequest},
		{"POST", "/sequences", `{"label":"x","points":[]}`, http.StatusBadRequest},
		{"POST", "/sequences", `{"label":"x","points":[[0.1]],"bogus":1}`, http.StatusBadRequest},
		{"POST", "/search", `{"points":[[0.1,0.2,0.3]],"eps":-1}`, http.StatusBadRequest},
		{"GET", "/sequences/notanumber", ``, http.StatusBadRequest},
		{"POST", "/knn", `{"points":[],"k":3}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		req := httptest.NewRequest(c.method, c.path, bytes.NewBufferString(c.body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != c.wantStatus {
			t.Errorf("%s %s: %d, want %d (%s)", c.method, c.path, rec.Code, c.wantStatus, rec.Body)
		}
	}
}

func TestHealthz(t *testing.T) {
	s, _ := newTestServer(t)
	rec := doJSON(t, s, "GET", "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	var h struct {
		Status    string `json:"status"`
		Shards    int    `json:"shards"`
		Sequences int    `json:"sequences"`
	}
	json.Unmarshal(rec.Body.Bytes(), &h)
	if h.Status != "ok" || h.Shards != 1 || h.Sequences != 0 {
		t.Errorf("healthz = %+v", h)
	}

	ss, _ := newShardedTestServer(t, 4)
	rng := rand.New(rand.NewSource(9))
	doJSON(t, ss, "POST", "/sequences", SequenceJSON{Label: "a", Points: walkPoints(rng, 30)})
	rec = doJSON(t, ss, "GET", "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("sharded healthz: %d", rec.Code)
	}
	json.Unmarshal(rec.Body.Bytes(), &h)
	if h.Status != "ok" || h.Shards != 4 || h.Sequences != 1 {
		t.Errorf("sharded healthz = %+v", h)
	}
}

// TestOversizedBody checks every POST handler rejects bodies beyond the
// MaxBytesReader cap with 413 rather than reading them whole. The body is
// legal-JSON leading whitespace so only the size, not the syntax, trips.
func TestOversizedBody(t *testing.T) {
	s, _ := newTestServer(t)
	huge := bytes.Repeat([]byte(" "), maxBodyBytes+16)
	for _, path := range []string{"/sequences", "/sequences/batch", "/sequences/0/append", "/search", "/batch", "/knn", "/explain"} {
		req := httptest.NewRequest("POST", path, bytes.NewReader(huge))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s oversized: %d, want %d", path, rec.Code, http.StatusRequestEntityTooLarge)
		}
	}
}

// TestShardedServerEquivalence drives identical traffic at a single-node
// and a sharded server and compares the search answers by label.
func TestShardedServerEquivalence(t *testing.T) {
	single, _ := newTestServer(t)
	sharded, _ := newShardedTestServer(t, 3)
	rng := rand.New(rand.NewSource(10))
	batch := struct {
		Sequences []SequenceJSON `json:"sequences"`
	}{}
	var stored [][][]float64
	for i := 0; i < 12; i++ {
		pts := walkPoints(rng, 50)
		stored = append(stored, pts)
		batch.Sequences = append(batch.Sequences, SequenceJSON{Label: fmt.Sprintf("s%d", i), Points: pts})
	}
	for _, s := range []*Server{single, sharded} {
		if rec := doJSON(t, s, "POST", "/sequences/batch", batch); rec.Code != http.StatusCreated {
			t.Fatalf("batch: %d %s", rec.Code, rec.Body)
		}
	}
	query := SearchRequest{Points: stored[7][5:35], Eps: 0.08}
	labels := func(s *Server) map[string]bool {
		rec := doJSON(t, s, "POST", "/search", query)
		if rec.Code != http.StatusOK {
			t.Fatalf("search: %d %s", rec.Code, rec.Body)
		}
		var resp SearchResponse
		json.Unmarshal(rec.Body.Bytes(), &resp)
		out := make(map[string]bool)
		for _, m := range resp.Matches {
			out[m.Label] = true
		}
		return out
	}
	got, want := labels(sharded), labels(single)
	if len(got) == 0 || len(want) == 0 {
		t.Fatal("query matched nothing; test is vacuous")
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("sharded server matches %v, single-node %v", got, want)
	}
}

// TestBatchEndpoint checks POST /batch returns, per query and in input
// order, exactly what POST /search returns — on a single node and on a
// sharded database.
func TestBatchEndpoint(t *testing.T) {
	for _, shards := range []int{1, 3} {
		var s *Server
		if shards == 1 {
			s, _ = newTestServer(t)
		} else {
			s, _ = newShardedTestServer(t, shards)
		}
		rng := rand.New(rand.NewSource(11))
		var stored [][][]float64
		for i := 0; i < 12; i++ {
			pts := walkPoints(rng, 50)
			stored = append(stored, pts)
			doJSON(t, s, "POST", "/sequences", SequenceJSON{Label: fmt.Sprintf("s%d", i), Points: pts})
		}
		queries := [][][]float64{stored[2][5:35], stored[9][10:40], stored[2][5:35]} // one duplicate
		rec := doJSON(t, s, "POST", "/batch", BatchSearchRequest{Queries: queries, Eps: 0.08})
		if rec.Code != http.StatusOK {
			t.Fatalf("shards=%d batch: %d %s", shards, rec.Code, rec.Body)
		}
		var batch BatchSearchResponse
		json.Unmarshal(rec.Body.Bytes(), &batch)
		if len(batch.Results) != len(queries) {
			t.Fatalf("shards=%d: %d results for %d queries", shards, len(batch.Results), len(queries))
		}
		for i, q := range queries {
			rec := doJSON(t, s, "POST", "/search", SearchRequest{Points: q, Eps: 0.08})
			var solo SearchResponse
			json.Unmarshal(rec.Body.Bytes(), &solo)
			if len(solo.Matches) == 0 {
				t.Fatalf("shards=%d query %d matched nothing; test is vacuous", shards, i)
			}
			got, want := fmt.Sprint(batch.Results[i].Matches), fmt.Sprint(solo.Matches)
			if got != want {
				t.Errorf("shards=%d query %d: batch %s, solo %s", shards, i, got, want)
			}
		}
	}
}

func TestBatchEndpointBadRequests(t *testing.T) {
	s, _ := newTestServer(t)
	rec := doJSON(t, s, "POST", "/batch", BatchSearchRequest{Eps: 0.1})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch: %d, want 400", rec.Code)
	}
	bad := BatchSearchRequest{Queries: [][][]float64{{{0.1, 0.2, 0.3}}, {}}, Eps: 0.1}
	rec = doJSON(t, s, "POST", "/batch", bad)
	if rec.Code != http.StatusBadRequest || !bytes.Contains(rec.Body.Bytes(), []byte("query 1")) {
		t.Errorf("bad member: %d %s, want 400 naming query 1", rec.Code, rec.Body)
	}
}

// TestCacheHeaderAndInvalidation drives a cache-enabled server through
// the cache story at the HTTP layer: a repeated query is a hit (header +
// "cached" field); under the default MBR-scoped invalidation a write far
// from the query's region leaves the hit standing, while a write inside
// it makes the next search a miss — no pre-write result is ever served
// stale.
func TestCacheHeaderAndInvalidation(t *testing.T) {
	s, db := newTestServer(t)
	db.SetCache(cache.New(cache.Config{}))
	rng := rand.New(rand.NewSource(12))
	var stored [][][]float64
	for i := 0; i < 8; i++ {
		pts := walkPoints(rng, 50)
		stored = append(stored, pts)
		doJSON(t, s, "POST", "/sequences", SequenceJSON{Label: fmt.Sprintf("s%d", i), Points: pts})
	}
	query := SearchRequest{Points: stored[3][5:35], Eps: 0.08}

	search := func() (SearchResponse, string) {
		rec := doJSON(t, s, "POST", "/search", query)
		if rec.Code != http.StatusOK {
			t.Fatalf("search: %d %s", rec.Code, rec.Body)
		}
		var resp SearchResponse
		json.Unmarshal(rec.Body.Bytes(), &resp)
		return resp, rec.Header().Get("X-Mdseq-Cache")
	}
	first, hdr := search()
	if first.Cached || hdr != "miss" {
		t.Errorf("first search: cached=%v header=%q, want fresh miss", first.Cached, hdr)
	}
	if len(first.Matches) == 0 {
		t.Fatal("query matched nothing; test is vacuous")
	}
	second, hdr := search()
	if !second.Cached || hdr != "hit" {
		t.Errorf("repeat search: cached=%v header=%q, want hit", second.Cached, hdr)
	}
	if fmt.Sprint(second.Matches) != fmt.Sprint(first.Matches) {
		t.Errorf("cached matches differ: %+v vs %+v", second.Matches, first.Matches)
	}

	// A write provably outside the query's region (all stored points live
	// in [0,1]³; this one is around 100) cannot change the answer, so the
	// MBR-scoped cache keeps serving the hit.
	far := make([][]float64, 10)
	for i := range far {
		far[i] = []float64{100 + float64(i)*0.01, 100, 100}
	}
	doJSON(t, s, "POST", "/sequences", SequenceJSON{Label: "far", Points: far})
	kept, hdr := search()
	if !kept.Cached || hdr != "hit" {
		t.Errorf("post-far-write search: cached=%v header=%q, want hit", kept.Cached, hdr)
	}

	// A write inside the query's region invalidates: the next search
	// recomputes and sees the full ten-sequence corpus.
	doJSON(t, s, "POST", "/sequences", SequenceJSON{Label: "near", Points: stored[3][5:35]})
	third, hdr := search()
	if third.Cached || hdr != "miss" {
		t.Errorf("post-write search: cached=%v header=%q, want miss", third.Cached, hdr)
	}
	if third.Stats.TotalSequences != 10 {
		t.Errorf("post-write search saw %d sequences, want 10", third.Stats.TotalSequences)
	}
}

// TestBatchCacheMixedHeader checks the /batch header summarizes its
// members: all-miss, then "mixed" when a cached query rides with a fresh
// one, with the per-result "cached" fields telling them apart.
func TestBatchCacheMixedHeader(t *testing.T) {
	s, db := newTestServer(t)
	db.SetCache(cache.New(cache.Config{}))
	rng := rand.New(rand.NewSource(13))
	var stored [][][]float64
	for i := 0; i < 8; i++ {
		pts := walkPoints(rng, 50)
		stored = append(stored, pts)
		doJSON(t, s, "POST", "/sequences", SequenceJSON{Label: fmt.Sprintf("s%d", i), Points: pts})
	}
	q1, q2 := stored[1][5:35], stored[6][10:40]

	rec := doJSON(t, s, "POST", "/search", SearchRequest{Points: q1, Eps: 0.08})
	if rec.Code != http.StatusOK {
		t.Fatalf("warm-up search: %d %s", rec.Code, rec.Body)
	}
	rec = doJSON(t, s, "POST", "/batch", BatchSearchRequest{Queries: [][][]float64{q1, q2}, Eps: 0.08})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", rec.Code, rec.Body)
	}
	if hdr := rec.Header().Get("X-Mdseq-Cache"); hdr != "mixed" {
		t.Errorf("header = %q, want mixed", hdr)
	}
	var batch BatchSearchResponse
	json.Unmarshal(rec.Body.Bytes(), &batch)
	if !batch.Results[0].Cached || batch.Results[1].Cached {
		t.Errorf("cached flags = %v/%v, want true/false",
			batch.Results[0].Cached, batch.Results[1].Cached)
	}

	rec = doJSON(t, s, "POST", "/batch", BatchSearchRequest{Queries: [][][]float64{q1, q2}, Eps: 0.08})
	if hdr := rec.Header().Get("X-Mdseq-Cache"); hdr != "hit" {
		t.Errorf("repeat batch header = %q, want hit", hdr)
	}
}

func TestMethodRouting(t *testing.T) {
	s, _ := newTestServer(t)
	req := httptest.NewRequest("DELETE", "/stats", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed && rec.Code != http.StatusNotFound {
		t.Errorf("DELETE /stats = %d", rec.Code)
	}
}

func TestTxnzWithoutDurability(t *testing.T) {
	s, _ := newTestServer(t)
	rec := doJSON(t, s, "GET", "/txnz", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET /txnz on plain database = %d, want 404", rec.Code)
	}
}

func TestTxnzReportsStats(t *testing.T) {
	base, err := core.NewDatabase(core.Options{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	db, err := txn.Wrap(base, txn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s := New(db)

	doJSON(t, s, "POST", "/sequences", SequenceJSON{Points: [][]float64{{1, 2, 3}, {2, 3, 4}, {3, 4, 5}}})

	rec := doJSON(t, s, "GET", "/txnz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /txnz on transactional database = %d, want 200: %s", rec.Code, rec.Body.String())
	}
	var st txn.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("decoding /txnz body: %v", err)
	}
	if st.Commits == 0 {
		t.Errorf("Commits = 0, want >0 after an ingest")
	}
}
