// Package server exposes a sequence database over HTTP/JSON: ingest,
// search (range, k-NN), streaming append, explain, and stats. It is the
// serving layer for mdseq (cmd/mdsserve), stdlib net/http only. The
// database behind it is anything satisfying shard.DB — a single-node
// *core.Database or a scatter-gather *shard.ShardedDB — so topology is a
// deployment choice, invisible to clients.
//
// Endpoints:
//
//	GET    /healthz                   liveness + shard/sequence counts
//	GET    /stats                     database shape
//	GET    /metrics                   Prometheus text exposition (with WithMetrics)
//	GET    /txnz                      WAL/snapshot stats (with mdsserve -durable)
//	GET    /debug/pprof/...           runtime profiles (with WithPprof)
//	GET    /debug/tracez              retained traces: recent + slowest per latency
//	                                  bucket + errored (with WithRecorder; ?format=text
//	                                  renders span trees)
//	GET    /debug/requestz            in-flight requests with age (with WithRecorder)
//	POST   /sequences                 {label, points} -> {id}
//	POST   /sequences/batch           {sequences:[...]} -> {ids}
//	GET    /sequences/{id}            stored sequence
//	DELETE /sequences/{id}            remove
//	POST   /sequences/{id}/append     {points}
//	POST   /search                    {points, eps, parallel, metric, dtwWindow} -> matches
//	POST   /batch                     {queries:[[...],...], eps} -> per-query matches
//	POST   /knn                       {points, k, metric, dtwWindow} -> neighbors
//	POST   /explain                   {points, eps} -> per-sequence decisions
//
// Points are JSON arrays of coordinate arrays: [[x1,x2,x3], ...].
//
// Caching: with a query-result cache attached (mdsserve -cache-entries /
// -cache-bytes, tuned by -cache-policy and -cache-invalidate), repeated
// /search, /batch, and /knn queries are served from a cost-aware cache.
// Under the default MBR-scoped invalidation a write removes exactly the
// entries whose query regions it can affect — queries over untouched
// regions keep hitting — and under epoch scope any write flushes all
// entries; either way clients never see pre-write results. /search and
// /batch responses carry an X-Mdseq-Cache header (hit / miss / mixed)
// and a per-result "cached" field.
//
// Observability: with WithMetrics the database is wired into the given
// registry and /metrics serves it; with WithLogger every request emits a
// canonical wide-event log line (request ID, method, path, status,
// duration, plus every span timing and attribute the query recorded) and
// any query slower than the slow-query threshold additionally dumps its
// full SearchStats — per-shard stats included on a sharded database — at
// warn level under the same request ID, annotated with the latency
// histogram bucket (`le`) it landed in. With WithRecorder the flight
// recorder retains the slowest and errored traces for /debug/tracez and
// tracks in-flight requests for /debug/requestz. Every response carries
// an X-Request-ID header for correlation; a client-supplied X-Request-ID
// (≤64 chars, [A-Za-z0-9._-]) is honored so traces correlate across
// services.
//
// Robustness: /search and /knn run under the request context, so a
// client disconnect or a request deadline cancels the query all the way
// down into the per-shard searches. On a sharded database configured
// with a fault-tolerance policy (mdsserve -shard-timeout / -hedge-after
// / -retries / -allow-partial), a degraded answer is flagged in the
// response ("partial": true plus the list of shards that answered), and
// a query that cannot be served within its deadline returns 504 instead
// of hanging.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/txn"
)

// maxBodyBytes bounds request bodies (64 MiB covers any realistic batch).
const maxBodyBytes = 64 << 20

// DefaultSlowQueryThreshold is the slow-query log cutoff in force unless
// WithSlowQueryThreshold overrides it.
const DefaultSlowQueryThreshold = 500 * time.Millisecond

// Server handles HTTP requests against one database.
type Server struct {
	db      shard.DB
	mux     *http.ServeMux
	handler http.Handler // mux, possibly wrapped in obs middleware

	reg        *obs.Registry
	logger     *slog.Logger
	rec        *obs.Recorder
	slowThresh time.Duration
	pprof      bool

	defMetric string // metric applied when a request omits "metric"
	defWindow int    // DTW window applied when a request omits "dtwWindow"
}

// Option configures a Server at construction.
type Option func(*Server)

// WithMetrics wires the server and its database into reg: the database
// records query/ingest activity there (db.SetMetrics), HTTP traffic is
// counted and timed, and GET /metrics serves the registry in Prometheus
// text format.
func WithMetrics(reg *obs.Registry) Option { return func(s *Server) { s.reg = reg } }

// WithLogger enables structured request logging and the slow-query log.
func WithLogger(l *slog.Logger) Option { return func(s *Server) { s.logger = l } }

// WithSlowQueryThreshold sets the latency above which a search or kNN
// query is dumped to the slow-query log (0 disables; default
// DefaultSlowQueryThreshold). Takes effect only with WithLogger.
func WithSlowQueryThreshold(d time.Duration) Option {
	return func(s *Server) { s.slowThresh = d }
}

// WithPprof mounts net/http/pprof under /debug/pprof/ — behind a flag
// because profiles expose internals and cost CPU while streaming.
func WithPprof(enable bool) Option { return func(s *Server) { s.pprof = enable } }

// WithDefaultMetric sets the metric applied to /search and /knn requests
// that omit the "metric" field ("" keeps D), and the Sakoe–Chiba window
// applied when "dtwWindow" is omitted. A request that names a metric or
// a window always overrides the default. The pair is validated lazily at
// request time through the same core.ParseMetric path as explicit
// requests, so a bad default fails each affected request with 400 rather
// than crashing the server.
func WithDefaultMetric(name string, window int) Option {
	return func(s *Server) {
		s.defMetric = name
		s.defWindow = window
	}
}

// WithRecorder wires a flight recorder: every request is tracked
// in-flight and retained per the recorder's sampling (slowest per latency
// bucket plus all errors/partials), served at GET /debug/tracez
// (?format=text for span trees) and GET /debug/requestz (in-flight
// table). nil disables.
func WithRecorder(rec *obs.Recorder) Option { return func(s *Server) { s.rec = rec } }

// New builds a Server around db (single-node or sharded).
func New(db shard.DB, opts ...Option) *Server {
	s := &Server{db: db, mux: http.NewServeMux(), slowThresh: DefaultSlowQueryThreshold, defWindow: -1}
	for _, o := range opts {
		o(s)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /txnz", s.handleTxnz)
	s.mux.HandleFunc("POST /sequences", s.handleAdd)
	s.mux.HandleFunc("POST /sequences/batch", s.handleAddBatch)
	s.mux.HandleFunc("GET /sequences/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /sequences/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /sequences/{id}/append", s.handleAppend)
	s.mux.HandleFunc("POST /search", s.handleSearch)
	s.mux.HandleFunc("POST /batch", s.handleBatch)
	s.mux.HandleFunc("POST /knn", s.handleKNN)
	s.mux.HandleFunc("POST /explain", s.handleExplain)
	if s.reg != nil {
		db.SetMetrics(s.reg)
		s.mux.Handle("GET /metrics", obs.MetricsHandler(s.reg))
	}
	if s.pprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("POST /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	if s.rec != nil {
		s.mux.Handle("GET /debug/tracez", obs.TracezHandler(s.rec))
		s.mux.Handle("GET /debug/requestz", obs.RequestzHandler(s.rec))
	}
	s.handler = http.Handler(s.mux)
	if s.reg != nil || s.logger != nil || s.rec != nil {
		s.handler = obs.Middleware(s.reg, s.logger, s.rec, s.handler)
	}
	return s
}

// ServeHTTP implements http.Handler. Every request body — POST handlers
// included — is capped by MaxBytesReader before the mux dispatches, so an
// oversized batch fails with 413 instead of exhausting memory. When
// observability is wired the mux sits behind obs.Middleware, which
// supplies the per-request Trace, log line, and HTTP metrics.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	}
	s.handler.ServeHTTP(w, r)
}

// --- wire types ---------------------------------------------------------

// SequenceJSON is the wire form of a sequence.
type SequenceJSON struct {
	ID     uint32      `json:"id,omitempty"` // database id (assigned on add, echoed on get)
	Label  string      `json:"label"`        // free-form name, also the shard placement key
	Points [][]float64 `json:"points"`       // one n-dimensional coordinate array per point
}

// SearchRequest is the body of POST /search and /explain.
type SearchRequest struct {
	Points   [][]float64 `json:"points"`             // the query sequence's points
	Eps      float64     `json:"eps"`                // similarity threshold ε
	Parallel bool        `json:"parallel,omitempty"` // use the parallel range search (single-node metric "d" only)
	// Metric selects the distance the result set is defined by: "" or
	// "d" for the exact alignment distance D (the default three-phase
	// search), "dtw" for dynamic time warping served through the
	// envelope-pruned metric path. With "dtw" the parallel flag is
	// ignored (a sharded deployment's scatter supplies the parallelism)
	// and matches carry exact distances instead of solution intervals.
	Metric string `json:"metric,omitempty"`
	// DTWWindow is the Sakoe–Chiba band half-width for metric "dtw":
	// -1 (or omitted) means unconstrained. Ignored for metric "d".
	DTWWindow *int `json:"dtwWindow,omitempty"`
}

// KNNRequest is the body of POST /knn.
type KNNRequest struct {
	Points [][]float64 `json:"points"` // the query sequence's points
	K      int         `json:"k"`      // how many nearest sequences to return
	// Metric and DTWWindow mirror SearchRequest: "dtw" ranks neighbors
	// by exact DTW distance (offset is then always 0 — warping has no
	// single alignment offset).
	Metric    string `json:"metric,omitempty"`    // distance the ranking is defined by: "", "d", or "dtw"
	DTWWindow *int   `json:"dtwWindow,omitempty"` // Sakoe–Chiba half-width for "dtw"; nil/-1 = unconstrained
}

// reqMetric resolves a request's metric fields against the server
// defaults: an omitted name falls back to WithDefaultMetric's metric, an
// omitted (nil) window to its window (-1, unconstrained, when the option
// was never set).
func (s *Server) reqMetric(name string, window *int) (core.Metric, error) {
	if name == "" {
		name = s.defMetric
	}
	w := s.defWindow
	if window != nil {
		w = *window
	}
	return core.ParseMetric(name, w)
}

// metricName applies the server's default metric to a request's metric
// field; the handlers branch to the metric path when the effective name
// is a non-D metric.
func (s *Server) metricName(req string) string {
	if req == "" {
		return s.defMetric
	}
	return req
}

// BatchSearchRequest is the body of POST /batch: several queries sharing
// one threshold, answered in one batched pass over the database.
type BatchSearchRequest struct {
	// Queries holds one point array per query, same format as
	// SearchRequest.Points.
	Queries [][][]float64 `json:"queries"`
	Eps     float64       `json:"eps"` // threshold shared by every query in the batch
}

// BatchSearchResponse is the body returned by POST /batch: one
// SearchResponse per query, in input order.
type BatchSearchResponse struct {
	Results []SearchResponse `json:"results"` // one response per query, in input order
}

// MatchJSON is one range-search result. For the default metric "d",
// MinDnorm and Intervals carry the paper's filter output; for a metric
// search ("dtw", or "d" requested explicitly) Dist carries the exact
// metric distance and Intervals is empty.
type MatchJSON struct {
	ID        uint32   `json:"id"`             // database id of the matching sequence
	Label     string   `json:"label"`          // its label
	MinDnorm  float64  `json:"minDnorm"`       // the filter lower bound (metric "d" default path)
	Intervals [][2]int `json:"intervals"`      // approximated solution intervals, [start,end) pairs
	Dist      float64  `json:"dist,omitempty"` // exact metric distance (metric searches only)
}

// SearchResponse is the body returned by POST /search. The phase
// durations are microseconds; for a sharded database they are the slowest
// shard's (phases overlap in wall-clock) and cpuUs sums across shards.
//
// Partial answers: when the database is sharded and its fault-tolerance
// policy allows degradation, a query whose shard(s) failed or timed out
// still succeeds with Partial set and ShardsAnswered listing the shard
// indexes that contributed — the matches are then exact for those
// shards' corpus slice only (see the shard package for what this does to
// the paper's no-false-dismissal guarantee). Both fields are omitted on
// complete answers from single-node deployments.
type SearchResponse struct {
	Matches []MatchJSON `json:"matches"` // sequences within ε, ascending id
	// Cached is true when the answer was served from the query-result
	// cache (mdsserve -cache-entries) instead of being computed; the
	// stats then describe the run that originally produced it. Also
	// surfaced as the X-Mdseq-Cache response header (hit/miss).
	Cached bool `json:"cached,omitempty"`
	// Partial is true when some shards did not contribute to Matches.
	Partial bool `json:"partial,omitempty"`
	// ShardsAnswered lists the shard indexes whose results Matches
	// covers, in ascending order. Present whenever the per-shard search
	// path ran (sharded database), complete or not.
	ShardsAnswered []int `json:"shardsAnswered,omitempty"`
	// Stats carries the search's per-phase work counters and timings.
	Stats struct {
		QueryMBRs      int   `json:"queryMBRs"`
		Candidates     int   `json:"candidates"`
		TotalSequences int   `json:"totalSequences"`
		Phase1Us       int64 `json:"phase1Us"`
		Phase2Us       int64 `json:"phase2Us"`
		Phase3Us       int64 `json:"phase3Us"`
		CPUUs          int64 `json:"cpuUs"`
	} `json:"stats"`
}

// NeighborJSON is one k-NN result.
type NeighborJSON struct {
	ID     uint32  `json:"id"`     // database id of the neighbor
	Label  string  `json:"label"`  // its label
	Dist   float64 `json:"dist"`   // exact distance (D, or normalized DTW for metric "dtw")
	Offset int     `json:"offset"` // best alignment offset (always 0 under DTW)
}

// ExplainResponse summarizes POST /explain.
type ExplainResponse struct {
	PrunedDmbr  int                  `json:"prunedDmbr"`  // candidates dismissed by the phase-2 MBR bound
	PrunedDnorm int                  `json:"prunedDnorm"` // candidates dismissed by the phase-3 Dnorm bound
	Matched     int                  `json:"matched"`     // sequences that survived to the result set
	Sequences   []ExplainedCandidate `json:"sequences"`   // per-sequence decisions, ascending id
}

// ExplainedCandidate is one sequence's pruning outcome.
type ExplainedCandidate struct {
	ID       uint32  `json:"id"`       // database id of the candidate
	Label    string  `json:"label"`    // its label
	MinDmbr  float64 `json:"minDmbr"`  // its best phase-2 MBR distance
	MinDnorm float64 `json:"minDnorm"` // its best phase-3 Dnorm value
	Phase    string  `json:"phase"`    // where it was pruned, or "matched"
}

// --- handlers -----------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":    "ok",
		"shards":    s.db.Shards(),
		"sequences": s.db.Len(),
		"mbrs":      s.db.NumMBRs(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"sequences":   s.db.Len(),
		"mbrs":        s.db.NumMBRs(),
		"shards":      s.db.Shards(),
		"indexHeight": s.db.IndexHeight(),
		"indexFanout": s.db.IndexFanout(),
	})
}

// txnStatser is the transaction layer's stats surface (*txn.DB). The
// server detects it dynamically so deployments without durability pay
// nothing — /txnz then reports 404.
type txnStatser interface {
	Stats() txn.Stats
}

// handleTxnz serves the transaction layer's commit/WAL/snapshot counters:
// one Stats object on a single durable node, one per shard on a sharded
// deployment built over transactional nodes (shard.NewWithNodes).
func (s *Server) handleTxnz(w http.ResponseWriter, r *http.Request) {
	if ts, ok := s.db.(txnStatser); ok {
		writeJSON(w, http.StatusOK, ts.Stats())
		return
	}
	if sdb, ok := s.db.(*shard.ShardedDB); ok {
		type shardTxnStats struct {
			Shard int `json:"shard"`
			txn.Stats
		}
		var out []shardTxnStats
		for i := 0; i < sdb.Shards(); i++ {
			if ts, ok := sdb.Shard(i).(txnStatser); ok {
				out = append(out, shardTxnStats{Shard: i, Stats: ts.Stats()})
			}
		}
		if len(out) > 0 {
			writeJSON(w, http.StatusOK, out)
			return
		}
	}
	httpError(w, http.StatusNotFound, errors.New("transaction layer not enabled (see mdsserve -durable)"))
}

// ctxWriter is the optional context-carrying write surface (*txn.DB):
// when the database supports it, write handlers pass the request context
// down so the transaction layer's commit spans (op count, WAL group
// size) land in the request's trace. Databases without it lose only the
// span, never the write.
type ctxWriter interface {
	AddCtx(context.Context, *core.Sequence) (uint32, error)
	AddAllCtx(context.Context, []*core.Sequence) ([]uint32, error)
	AppendPointsCtx(context.Context, uint32, []geom.Point) error
	RemoveCtx(context.Context, uint32) error
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req SequenceJSON
	if !decode(w, r, &req) {
		return
	}
	seq, err := toSequence(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var id uint32
	if cw, ok := s.db.(ctxWriter); ok {
		id, err = cw.AddCtx(r.Context(), seq)
	} else {
		id, err = s.db.Add(seq)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]uint32{"id": id})
}

func (s *Server) handleAddBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Sequences []SequenceJSON `json:"sequences"`
	}
	if !decode(w, r, &req) {
		return
	}
	seqs := make([]*core.Sequence, len(req.Sequences))
	for i, sj := range req.Sequences {
		seq, err := toSequence(sj)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("sequence %d: %w", i, err))
			return
		}
		seqs[i] = seq
	}
	var ids []uint32
	var err error
	if cw, ok := s.db.(ctxWriter); ok {
		ids, err = cw.AddAllCtx(r.Context(), seqs)
	} else {
		ids, err = s.db.AddAll(seqs)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string][]uint32{"ids": ids})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	g := s.db.Segmented(id)
	if g == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("sequence %d not found", id))
		return
	}
	out := SequenceJSON{ID: id, Label: g.Seq.Label, Points: make([][]float64, g.Seq.Len())}
	for i, p := range g.Seq.Points {
		out.Points[i] = append([]float64(nil), p...)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	var err error
	if cw, ok := s.db.(ctxWriter); ok {
		err = cw.RemoveCtx(r.Context(), id)
	} else {
		err = s.db.Remove(id)
	}
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, core.ErrUnknownSequence) {
			status = http.StatusNotFound
		}
		httpError(w, status, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	var req struct {
		Points [][]float64 `json:"points"`
	}
	if !decode(w, r, &req) {
		return
	}
	var err error
	if cw, ok := s.db.(ctxWriter); ok {
		err = cw.AppendPointsCtx(r.Context(), id, toPoints(req.Points))
	} else {
		err = s.db.AppendPoints(id, toPoints(req.Points))
	}
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, core.ErrUnknownSequence) {
			status = http.StatusNotFound
		}
		httpError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"length": s.db.Segmented(id).Seq.Len()})
}

// shardSearcher is the optional surface a sharded database adds: search
// plus per-shard statistics, under the request context. The handler uses
// it when present so a slow query can be logged with the stats of the
// very run that was slow, and so a partial answer can list exactly the
// shards that produced it.
type shardSearcher interface {
	SearchShardsCtx(context.Context, *core.Sequence, float64) ([]core.Match, core.SearchStats, []shard.ShardStats, error)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !decode(w, r, &req) {
		return
	}
	q, err := toSequence(SequenceJSON{Label: "query", Points: req.Points})
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if n := s.metricName(req.Metric); n != "" && n != "d" {
		s.handleSearchMetric(w, r, req, q)
		return
	}
	var matches []core.Match
	var stats core.SearchStats
	var perShard []shard.ShardStats
	t0 := time.Now()
	if req.Parallel {
		// Through the Ctx variant: before it existed this path used a
		// background context, so a client disconnect or request deadline
		// never reached the parallel workers and a wedged shard could
		// stall the handler forever.
		matches, stats, err = s.db.SearchParallelCtx(r.Context(), q, req.Eps, 0)
	} else if ss, ok := s.db.(shardSearcher); ok {
		matches, stats, perShard, err = ss.SearchShardsCtx(r.Context(), q, req.Eps)
	} else {
		matches, stats, err = s.db.SearchCtx(r.Context(), q, req.Eps)
	}
	took := time.Since(t0)
	if err != nil {
		httpError(w, queryErrStatus(err), err)
		return
	}

	// The phase spans were recorded by the search itself (core threads
	// them through the trace in the request context); the handler adds
	// the wide-event attributes and, past the threshold, dumps the whole
	// run to the slow-query log.
	tr := obs.FromContext(r.Context())
	if tr != nil {
		tr.SetAttrs(
			obs.Float("eps", req.Eps),
			obs.Int("query_points", q.Len()),
			obs.Int("candidates", stats.CandidatesDmbr),
			obs.Int("matches", stats.MatchesDnorm),
			obs.Bool("cached", stats.CacheHit),
		)
		if stats.Partial {
			tr.MarkPartial()
		}
	}
	s.logSlowQuery(r, "search", took, q, req.Eps, 0, stats, perShard)

	resp := searchResponse(matches, stats, perShard)
	w.Header().Set("X-Mdseq-Cache", cacheHeader(resp.Cached))
	writeJSON(w, http.StatusOK, resp)
}

// handleSearchMetric serves POST /search requests that name a non-default
// metric: the exact-metric range search, with matches carrying exact
// distances.
func (s *Server) handleSearchMetric(w http.ResponseWriter, r *http.Request, req SearchRequest, q *core.Sequence) {
	m, err := s.reqMetric(req.Metric, req.DTWWindow)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	t0 := time.Now()
	matches, stats, err := s.db.SearchMetricCtx(r.Context(), q, req.Eps, m)
	took := time.Since(t0)
	if err != nil {
		httpError(w, queryErrStatus(err), err)
		return
	}
	if tr := obs.FromContext(r.Context()); tr != nil {
		tr.SetAttrs(
			obs.Float("eps", req.Eps),
			obs.Str("metric", m.Name()),
			obs.Int("query_points", q.Len()),
			obs.Int("candidates", stats.CandidatesDmbr),
			obs.Int("matches", len(matches)),
			obs.Bool("cached", stats.CacheHit),
		)
		if stats.Partial {
			tr.MarkPartial()
		}
	}
	s.logSlowQuery(r, "search", took, q, req.Eps, 0, stats, nil)

	resp := SearchResponse{Matches: make([]MatchJSON, len(matches))}
	resp.Cached = stats.CacheHit
	resp.Partial = stats.Partial
	for i, m := range matches {
		resp.Matches[i] = MatchJSON{ID: m.SeqID, Label: m.Seq.Label, Dist: m.Dist}
	}
	resp.Stats.QueryMBRs = stats.QueryMBRs
	resp.Stats.Candidates = stats.CandidatesDmbr
	resp.Stats.TotalSequences = stats.TotalSequences
	resp.Stats.Phase1Us = stats.Phase1.Microseconds()
	resp.Stats.Phase2Us = stats.Phase2.Microseconds()
	resp.Stats.Phase3Us = stats.Phase3.Microseconds()
	resp.Stats.CPUUs = stats.CPUTime.Microseconds()
	w.Header().Set("X-Mdseq-Cache", cacheHeader(resp.Cached))
	writeJSON(w, http.StatusOK, resp)
}

// searchResponse converts one search result to its wire form — shared by
// the single-query and batch handlers.
func searchResponse(matches []core.Match, stats core.SearchStats, perShard []shard.ShardStats) SearchResponse {
	resp := SearchResponse{Matches: make([]MatchJSON, len(matches))}
	resp.Cached = stats.CacheHit
	resp.Partial = stats.Partial
	for _, ps := range perShard {
		resp.ShardsAnswered = append(resp.ShardsAnswered, ps.Shard)
	}
	for i, m := range matches {
		mj := MatchJSON{ID: m.SeqID, Label: m.Seq.Label, MinDnorm: m.MinDnorm}
		for _, rg := range m.Interval.Ranges() {
			mj.Intervals = append(mj.Intervals, [2]int{rg.Start, rg.End})
		}
		resp.Matches[i] = mj
	}
	resp.Stats.QueryMBRs = stats.QueryMBRs
	resp.Stats.Candidates = stats.CandidatesDmbr
	resp.Stats.TotalSequences = stats.TotalSequences
	resp.Stats.Phase1Us = stats.Phase1.Microseconds()
	resp.Stats.Phase2Us = stats.Phase2.Microseconds()
	resp.Stats.Phase3Us = stats.Phase3.Microseconds()
	resp.Stats.CPUUs = stats.CPUTime.Microseconds()
	return resp
}

// cacheHeader renders the X-Mdseq-Cache value for one answer.
func cacheHeader(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// handleBatch answers POST /batch: several range queries in one request,
// evaluated by the database's batched search (shared segmentation-cache
// lookups, merged index probes, one scatter per shard on a sharded
// deployment). Results come back in input order, each with the same
// shape as a POST /search response. The X-Mdseq-Cache header summarizes
// the batch: "hit" (all cached), "miss" (none), or "mixed".
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchSearchRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("batch has no queries"))
		return
	}
	qs := make([]*core.Sequence, len(req.Queries))
	for i, pts := range req.Queries {
		q, err := toSequence(SequenceJSON{Label: "query", Points: pts})
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
			return
		}
		qs[i] = q
	}
	t0 := time.Now()
	outs, stats, err := s.db.SearchBatchCtx(r.Context(), qs, req.Eps)
	took := time.Since(t0)
	if err != nil {
		httpError(w, queryErrStatus(err), err)
		return
	}

	// The batch span (queries, dedup, cache hits) is recorded by the
	// database; the handler adds the wide-event attributes.
	if tr := obs.FromContext(r.Context()); tr != nil {
		tr.SetAttrs(obs.Float("eps", req.Eps), obs.Int("batch_queries", len(qs)))
	}

	// A slow batch is logged as one unit under its first query — the
	// per-member stats are in the response for finer attribution.
	s.logSlowQuery(r, "batch", took, qs[0], req.Eps, 0, stats[0], nil)

	resp := BatchSearchResponse{Results: make([]SearchResponse, len(outs))}
	hits := 0
	for i := range outs {
		resp.Results[i] = searchResponse(outs[i], stats[i], nil)
		if stats[i].CacheHit {
			hits++
		}
	}
	switch hits {
	case 0:
		w.Header().Set("X-Mdseq-Cache", "miss")
	case len(outs):
		w.Header().Set("X-Mdseq-Cache", "hit")
	default:
		w.Header().Set("X-Mdseq-Cache", "mixed")
	}
	writeJSON(w, http.StatusOK, resp)
}

// logSlowQuery emits one warn-level structured record for a query whose
// wall-clock exceeded the threshold: request ID, route, query shape,
// full SearchStats, and — on a sharded database — the complete per-shard
// breakdown, so a stuck shard or a collapsed pruning ratio is visible
// from the log alone.
func (s *Server) logSlowQuery(r *http.Request, route string, took time.Duration,
	q *core.Sequence, eps float64, k int, st core.SearchStats, perShard []shard.ShardStats) {
	if s.logger == nil || s.slowThresh <= 0 || took < s.slowThresh {
		return
	}
	tr := obs.FromContext(r.Context())
	attrs := []slog.Attr{
		slog.String("route", route),
		slog.Duration("took", took),
		slog.Int("queryPoints", q.Len()),
		slog.Group("stats",
			slog.Int("queryMBRs", st.QueryMBRs),
			slog.Int("totalSequences", st.TotalSequences),
			slog.Int("candidatesDmbr", st.CandidatesDmbr),
			slog.Int("matchesDnorm", st.MatchesDnorm),
			slog.Int("indexEntriesHit", st.IndexEntriesHit),
			slog.Int("dnormEvals", st.DnormEvals),
			slog.Int("quantPruned", st.QuantPruned),
			slog.Duration("phase1", st.Phase1),
			slog.Duration("phase2", st.Phase2),
			slog.Duration("phase3", st.Phase3),
			slog.Duration("cpuTime", st.CPUTime),
		),
	}
	if tr != nil {
		// Exemplar-style annotation: the request ID plus the `le` bucket
		// of the latency histograms this query landed in, so a spike in a
		// dashboard bucket links straight to a retained trace
		// (/debug/tracez) by ID.
		attrs = append([]slog.Attr{
			slog.String("requestID", tr.ID),
			slog.String("le", obs.LatencyBucketLabel(took)),
		}, attrs...)
	}
	if route == "knn" {
		attrs = append(attrs, slog.Int("k", k))
	} else {
		attrs = append(attrs, slog.Float64("eps", eps))
	}
	for _, ps := range perShard {
		attrs = append(attrs, slog.Group("shard."+strconv.Itoa(ps.Shard),
			slog.Int("totalSequences", ps.Stats.TotalSequences),
			slog.Int("candidatesDmbr", ps.Stats.CandidatesDmbr),
			slog.Int("matchesDnorm", ps.Stats.MatchesDnorm),
			slog.Int("indexEntriesHit", ps.Stats.IndexEntriesHit),
			slog.Int("dnormEvals", ps.Stats.DnormEvals),
			slog.Int("quantPruned", ps.Stats.QuantPruned),
			slog.Duration("phase1", ps.Stats.Phase1),
			slog.Duration("phase2", ps.Stats.Phase2),
			slog.Duration("phase3", ps.Stats.Phase3),
		))
	}
	s.logger.LogAttrs(r.Context(), slog.LevelWarn, "slow query", attrs...)
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req KNNRequest
	if !decode(w, r, &req) {
		return
	}
	q, err := toSequence(SequenceJSON{Label: "query", Points: req.Points})
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	t0 := time.Now()
	var results []core.KNNResult
	if n := s.metricName(req.Metric); n != "" && n != "d" {
		var m core.Metric
		m, err = s.reqMetric(req.Metric, req.DTWWindow)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		results, err = s.db.SearchKNNMetricCtx(r.Context(), q, req.K, m)
	} else {
		results, err = s.db.SearchKNNCtx(r.Context(), q, req.K)
	}
	took := time.Since(t0)
	if err != nil {
		httpError(w, queryErrStatus(err), err)
		return
	}
	if tr := obs.FromContext(r.Context()); tr != nil {
		tr.SetAttrs(obs.Int("k", req.K), obs.Int("query_points", q.Len()))
	}
	s.logSlowQuery(r, "knn", took, q, 0, req.K, core.SearchStats{}, nil)
	out := make([]NeighborJSON, len(results))
	for i, n := range results {
		out[i] = NeighborJSON{ID: n.SeqID, Label: n.Seq.Label, Dist: n.Dist, Offset: n.Offset}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"neighbors": out})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !decode(w, r, &req) {
		return
	}
	q, err := toSequence(SequenceJSON{Label: "query", Points: req.Points})
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ex, err := s.db.Explain(q, req.Eps)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var resp ExplainResponse
	resp.PrunedDmbr, resp.PrunedDnorm, resp.Matched = ex.Counts()
	for _, c := range ex.Candidates {
		resp.Sequences = append(resp.Sequences, ExplainedCandidate{
			ID: c.SeqID, Label: c.Label, MinDmbr: c.MinDmbr, MinDnorm: c.MinDnorm, Phase: c.Phase,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- helpers ------------------------------------------------------------

func toSequence(sj SequenceJSON) (*core.Sequence, error) {
	return core.NewSequence(sj.Label, toPoints(sj.Points))
}

func toPoints(raw [][]float64) []geom.Point {
	pts := make([]geom.Point, len(raw))
	for i, c := range raw {
		pts[i] = geom.Point(c)
	}
	return pts
}

func pathID(w http.ResponseWriter, r *http.Request) (uint32, bool) {
	raw := r.PathValue("id")
	id, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad sequence id %q", raw))
		return 0, false
	}
	return uint32(id), true
}

func decode(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// queryErrStatus maps a failed query to its HTTP status: a blown
// deadline is the gateway-timeout story (504), a canceled request
// context means the client is gone (499 in nginx's vocabulary; the
// closest standard code is 503), and anything else is the caller's
// fault (400).
func queryErrStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}
