// Package server exposes a sequence database over HTTP/JSON: ingest,
// search (range, k-NN), streaming append, explain, and stats. It is the
// serving layer for mdseq (cmd/mdsserve), stdlib net/http only. The
// database behind it is anything satisfying shard.DB — a single-node
// *core.Database or a scatter-gather *shard.ShardedDB — so topology is a
// deployment choice, invisible to clients.
//
// Endpoints:
//
//	GET    /healthz                   liveness + shard/sequence counts
//	GET    /stats                     database shape
//	POST   /sequences                 {label, points} -> {id}
//	POST   /sequences/batch           {sequences:[...]} -> {ids}
//	GET    /sequences/{id}            stored sequence
//	DELETE /sequences/{id}            remove
//	POST   /sequences/{id}/append     {points}
//	POST   /search                    {points, eps, parallel} -> matches
//	POST   /knn                       {points, k} -> neighbors
//	POST   /explain                   {points, eps} -> per-sequence decisions
//
// Points are JSON arrays of coordinate arrays: [[x1,x2,x3], ...].
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/shard"
)

// maxBodyBytes bounds request bodies (64 MiB covers any realistic batch).
const maxBodyBytes = 64 << 20

// Server handles HTTP requests against one database.
type Server struct {
	db  shard.DB
	mux *http.ServeMux
}

// New builds a Server around db (single-node or sharded).
func New(db shard.DB) *Server {
	s := &Server{db: db, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /sequences", s.handleAdd)
	s.mux.HandleFunc("POST /sequences/batch", s.handleAddBatch)
	s.mux.HandleFunc("GET /sequences/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /sequences/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /sequences/{id}/append", s.handleAppend)
	s.mux.HandleFunc("POST /search", s.handleSearch)
	s.mux.HandleFunc("POST /knn", s.handleKNN)
	s.mux.HandleFunc("POST /explain", s.handleExplain)
	return s
}

// ServeHTTP implements http.Handler. Every request body — POST handlers
// included — is capped by MaxBytesReader before the mux dispatches, so an
// oversized batch fails with 413 instead of exhausting memory.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	}
	s.mux.ServeHTTP(w, r)
}

// --- wire types ---------------------------------------------------------

// SequenceJSON is the wire form of a sequence.
type SequenceJSON struct {
	ID     uint32      `json:"id,omitempty"`
	Label  string      `json:"label"`
	Points [][]float64 `json:"points"`
}

// SearchRequest is the body of POST /search and /explain.
type SearchRequest struct {
	Points   [][]float64 `json:"points"`
	Eps      float64     `json:"eps"`
	Parallel bool        `json:"parallel,omitempty"`
}

// KNNRequest is the body of POST /knn.
type KNNRequest struct {
	Points [][]float64 `json:"points"`
	K      int         `json:"k"`
}

// MatchJSON is one range-search result.
type MatchJSON struct {
	ID        uint32   `json:"id"`
	Label     string   `json:"label"`
	MinDnorm  float64  `json:"minDnorm"`
	Intervals [][2]int `json:"intervals"`
}

// SearchResponse is the body returned by POST /search.
type SearchResponse struct {
	Matches []MatchJSON `json:"matches"`
	Stats   struct {
		QueryMBRs      int `json:"queryMBRs"`
		Candidates     int `json:"candidates"`
		TotalSequences int `json:"totalSequences"`
	} `json:"stats"`
}

// NeighborJSON is one k-NN result.
type NeighborJSON struct {
	ID     uint32  `json:"id"`
	Label  string  `json:"label"`
	Dist   float64 `json:"dist"`
	Offset int     `json:"offset"`
}

// ExplainResponse summarizes POST /explain.
type ExplainResponse struct {
	PrunedDmbr  int                  `json:"prunedDmbr"`
	PrunedDnorm int                  `json:"prunedDnorm"`
	Matched     int                  `json:"matched"`
	Sequences   []ExplainedCandidate `json:"sequences"`
}

// ExplainedCandidate is one sequence's pruning outcome.
type ExplainedCandidate struct {
	ID       uint32  `json:"id"`
	Label    string  `json:"label"`
	MinDmbr  float64 `json:"minDmbr"`
	MinDnorm float64 `json:"minDnorm"`
	Phase    string  `json:"phase"`
}

// --- handlers -----------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":    "ok",
		"shards":    s.db.Shards(),
		"sequences": s.db.Len(),
		"mbrs":      s.db.NumMBRs(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"sequences":   s.db.Len(),
		"mbrs":        s.db.NumMBRs(),
		"shards":      s.db.Shards(),
		"indexHeight": s.db.IndexHeight(),
		"indexFanout": s.db.IndexFanout(),
	})
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req SequenceJSON
	if !decode(w, r, &req) {
		return
	}
	seq, err := toSequence(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.db.Add(seq)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]uint32{"id": id})
}

func (s *Server) handleAddBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Sequences []SequenceJSON `json:"sequences"`
	}
	if !decode(w, r, &req) {
		return
	}
	seqs := make([]*core.Sequence, len(req.Sequences))
	for i, sj := range req.Sequences {
		seq, err := toSequence(sj)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("sequence %d: %w", i, err))
			return
		}
		seqs[i] = seq
	}
	ids, err := s.db.AddAll(seqs)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string][]uint32{"ids": ids})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	g := s.db.Segmented(id)
	if g == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("sequence %d not found", id))
		return
	}
	out := SequenceJSON{ID: id, Label: g.Seq.Label, Points: make([][]float64, g.Seq.Len())}
	for i, p := range g.Seq.Points {
		out.Points[i] = append([]float64(nil), p...)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	if err := s.db.Remove(id); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, core.ErrUnknownSequence) {
			status = http.StatusNotFound
		}
		httpError(w, status, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	var req struct {
		Points [][]float64 `json:"points"`
	}
	if !decode(w, r, &req) {
		return
	}
	if err := s.db.AppendPoints(id, toPoints(req.Points)); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, core.ErrUnknownSequence) {
			status = http.StatusNotFound
		}
		httpError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"length": s.db.Segmented(id).Seq.Len()})
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !decode(w, r, &req) {
		return
	}
	q, err := toSequence(SequenceJSON{Label: "query", Points: req.Points})
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var matches []core.Match
	var stats core.SearchStats
	if req.Parallel {
		matches, stats, err = s.db.SearchParallel(q, req.Eps, 0)
	} else {
		matches, stats, err = s.db.Search(q, req.Eps)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	resp := SearchResponse{Matches: make([]MatchJSON, len(matches))}
	for i, m := range matches {
		mj := MatchJSON{ID: m.SeqID, Label: m.Seq.Label, MinDnorm: m.MinDnorm}
		for _, rg := range m.Interval.Ranges() {
			mj.Intervals = append(mj.Intervals, [2]int{rg.Start, rg.End})
		}
		resp.Matches[i] = mj
	}
	resp.Stats.QueryMBRs = stats.QueryMBRs
	resp.Stats.Candidates = stats.CandidatesDmbr
	resp.Stats.TotalSequences = stats.TotalSequences
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req KNNRequest
	if !decode(w, r, &req) {
		return
	}
	q, err := toSequence(SequenceJSON{Label: "query", Points: req.Points})
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	results, err := s.db.SearchKNN(q, req.K)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	out := make([]NeighborJSON, len(results))
	for i, n := range results {
		out[i] = NeighborJSON{ID: n.SeqID, Label: n.Seq.Label, Dist: n.Dist, Offset: n.Offset}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"neighbors": out})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !decode(w, r, &req) {
		return
	}
	q, err := toSequence(SequenceJSON{Label: "query", Points: req.Points})
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ex, err := s.db.Explain(q, req.Eps)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var resp ExplainResponse
	resp.PrunedDmbr, resp.PrunedDnorm, resp.Matched = ex.Counts()
	for _, c := range ex.Candidates {
		resp.Sequences = append(resp.Sequences, ExplainedCandidate{
			ID: c.SeqID, Label: c.Label, MinDmbr: c.MinDmbr, MinDnorm: c.MinDnorm, Phase: c.Phase,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- helpers ------------------------------------------------------------

func toSequence(sj SequenceJSON) (*core.Sequence, error) {
	return core.NewSequence(sj.Label, toPoints(sj.Points))
}

func toPoints(raw [][]float64) []geom.Point {
	pts := make([]geom.Point, len(raw))
	for i, c := range raw {
		pts[i] = geom.Point(c)
	}
	return pts
}

func pathID(w http.ResponseWriter, r *http.Request) (uint32, bool) {
	raw := r.PathValue("id")
	id, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad sequence id %q", raw))
		return 0, false
	}
	return uint32(id), true
}

func decode(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
