package server

// End-to-end fault tests: the robustness layer observed through the HTTP
// surface — partial responses flagged in the JSON body, deadline failures
// mapped to gateway-timeout status codes, and hedge wins visible on
// GET /metrics.

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/shard"
)

// decode unmarshals a recorded JSON response body, failing the test on
// malformed output.
func decodeBody(t *testing.T, rec *httptest.ResponseRecorder, v any) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
		t.Fatalf("decoding response %q: %v", rec.Body.String(), err)
	}
}

// faultedShardedServer builds a 4-shard server with a corpus on every
// shard and installs the given fault script (cycled) on shard `target`.
func faultedShardedServer(t *testing.T, target int, script ...shard.Fault) (*Server, *shard.ShardedDB, *obs.Registry, [][]float64) {
	t.Helper()
	reg := obs.NewRegistry()
	db, err := shard.New(core.Options{Dim: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	db.SetMetrics(reg)
	s := New(db, WithMetrics(reg))

	rng := rand.New(rand.NewSource(7))
	var qpts [][]float64
	for i := 0; i < 24; i++ {
		pts := walkPoints(rng, 40)
		rec := doJSON(t, s, "POST", "/sequences", SequenceJSON{Label: strings.Repeat("s", i+1), Points: pts})
		if rec.Code != http.StatusCreated {
			t.Fatalf("seed %d: %d %s", i, rec.Code, rec.Body)
		}
		if qpts == nil {
			qpts = pts[:20]
		}
	}
	f := shard.NewFaultDB(db.Shard(target), script...)
	f.Cycle = true
	db.SetShardBackend(target, f)
	return s, db, reg, qpts
}

// TestFaultHTTPPartialResponse: with AllowPartial, a hung shard degrades
// the HTTP answer to 200 with "partial": true and the answered-shard
// list excluding the hung one.
func TestFaultHTTPPartialResponse(t *testing.T) {
	const hung = 1
	s, db, _, qpts := faultedShardedServer(t, hung, shard.Fault{Hang: true})
	db.SetPolicy(shard.Policy{ShardTimeout: 50 * time.Millisecond, AllowPartial: true})

	rec := doJSON(t, s, "POST", "/search", SearchRequest{Points: qpts, Eps: 0.3})
	if rec.Code != http.StatusOK {
		t.Fatalf("partial search: %d %s", rec.Code, rec.Body)
	}
	var resp SearchResponse
	decodeBody(t, rec, &resp)
	if !resp.Partial {
		t.Fatal(`response missing "partial": true`)
	}
	if len(resp.ShardsAnswered) != 3 {
		t.Fatalf("shardsAnswered = %v, want 3 shards", resp.ShardsAnswered)
	}
	for _, sh := range resp.ShardsAnswered {
		if sh == hung {
			t.Fatalf("hung shard %d listed as answered: %v", hung, resp.ShardsAnswered)
		}
	}
}

// TestFaultHTTPDeadlineMapsTo504: without AllowPartial a shard timeout
// fails the query, and the handler maps context.DeadlineExceeded to 504
// Gateway Timeout.
func TestFaultHTTPDeadlineMapsTo504(t *testing.T) {
	s, db, _, qpts := faultedShardedServer(t, 2, shard.Fault{Hang: true})
	db.SetPolicy(shard.Policy{ShardTimeout: 50 * time.Millisecond})

	rec := doJSON(t, s, "POST", "/search", SearchRequest{Points: qpts, Eps: 0.3})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("deadline-failed search: %d %s, want 504", rec.Code, rec.Body)
	}
}

// TestFaultHTTPParallelHonorsDeadline: the parallel search path must run
// under the request/policy context like the serial path. Before the
// SearchParallelCtx fix the handler passed context.Background() here, so
// a hung shard stalled a parallel=true request forever regardless of the
// shard timeout.
func TestFaultHTTPParallelHonorsDeadline(t *testing.T) {
	s, db, _, qpts := faultedShardedServer(t, 2, shard.Fault{Hang: true})
	db.SetPolicy(shard.Policy{ShardTimeout: 50 * time.Millisecond})

	done := make(chan int, 1)
	go func() {
		rec := doJSON(t, s, "POST", "/search", SearchRequest{Points: qpts, Eps: 0.3, Parallel: true})
		done <- rec.Code
	}()
	select {
	case code := <-done:
		if code != http.StatusGatewayTimeout {
			t.Fatalf("parallel search against hung shard: %d, want 504", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parallel search hung: request context not reaching the workers")
	}
}

// TestFaultHTTPCompleteResponseNotFlagged: a fully answered sharded query
// must not carry the partial flag but still lists every shard.
func TestFaultHTTPCompleteResponseNotFlagged(t *testing.T) {
	s, db, _, qpts := faultedShardedServer(t, 0) // empty script: pass-through
	db.SetPolicy(shard.Policy{AllowPartial: true})

	rec := doJSON(t, s, "POST", "/search", SearchRequest{Points: qpts, Eps: 0.3})
	if rec.Code != http.StatusOK {
		t.Fatalf("search: %d %s", rec.Code, rec.Body)
	}
	var resp SearchResponse
	decodeBody(t, rec, &resp)
	if resp.Partial {
		t.Fatal("complete answer flagged partial")
	}
	if len(resp.ShardsAnswered) != 4 {
		t.Fatalf("shardsAnswered = %v, want all 4 shards", resp.ShardsAnswered)
	}
}

// TestFaultHTTPMetricsExposeHedges: a won hedge shows up on GET /metrics
// as mdseq_shard_hedges_won_total — the operator-visible acceptance
// signal for hedging.
func TestFaultHTTPMetricsExposeHedges(t *testing.T) {
	s, db, _, qpts := faultedShardedServer(t, 3, shard.Fault{Hang: true}, shard.Fault{})
	db.SetPolicy(shard.Policy{ShardTimeout: 10 * time.Second, HedgeAfter: 10 * time.Millisecond})

	rec := doJSON(t, s, "POST", "/search", SearchRequest{Points: qpts, Eps: 0.3})
	if rec.Code != http.StatusOK {
		t.Fatalf("hedged search: %d %s", rec.Code, rec.Body)
	}
	var resp SearchResponse
	decodeBody(t, rec, &resp)
	if resp.Partial {
		t.Fatal("hedged search must answer completely")
	}

	mrec := doJSON(t, s, "GET", "/metrics", nil)
	if mrec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", mrec.Code)
	}
	body := mrec.Body.String()
	if !strings.Contains(body, "mdseq_shard_hedges_won_total 1") {
		t.Fatalf("/metrics missing mdseq_shard_hedges_won_total 1:\n%s",
			grepLines(body, "hedges"))
	}
	if !strings.Contains(body, "mdseq_shard_hedges_total 1") {
		t.Fatalf("/metrics missing mdseq_shard_hedges_total 1:\n%s",
			grepLines(body, "hedges"))
	}
}

// grepLines returns the lines of s containing substr, for focused
// failure messages.
func grepLines(s, substr string) string {
	var out []string
	for _, ln := range strings.Split(s, "\n") {
		if strings.Contains(ln, substr) {
			out = append(out, ln)
		}
	}
	return strings.Join(out, "\n")
}
