package curve

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestZEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		x := rng.Uint32() & 0xFFFF
		y := rng.Uint32() & 0xFFFF
		gx, gy := ZDecode(ZEncode(x, y))
		if gx != x || gy != y {
			t.Fatalf("round trip (%d,%d) -> (%d,%d)", x, y, gx, gy)
		}
	}
}

func TestZEncodeKnownValues(t *testing.T) {
	// (1,0) -> 0b01 = 1 ; (0,1) -> 0b10 = 2 ; (1,1) -> 0b11 = 3
	if ZEncode(1, 0) != 1 || ZEncode(0, 1) != 2 || ZEncode(1, 1) != 3 {
		t.Errorf("ZEncode basics: %d %d %d", ZEncode(1, 0), ZEncode(0, 1), ZEncode(1, 1))
	}
	if ZEncode(2, 0) != 4 || ZEncode(0, 2) != 8 {
		t.Errorf("ZEncode second bit: %d %d", ZEncode(2, 0), ZEncode(0, 2))
	}
}

func TestGrayCodeRoundTrip(t *testing.T) {
	for v := uint32(0); v < 4096; v++ {
		if got := GrayDecode(GrayEncode(v)); got != v {
			t.Fatalf("gray round trip %d -> %d", v, got)
		}
	}
}

func TestGrayCodeAdjacency(t *testing.T) {
	// Consecutive Gray codes differ in exactly one bit.
	for v := uint32(0); v < 1024; v++ {
		diff := GrayEncode(v) ^ GrayEncode(v+1)
		if diff == 0 || diff&(diff-1) != 0 {
			t.Fatalf("gray(%d)^gray(%d) = %b, want single bit", v, v+1, diff)
		}
	}
}

func TestHilbertRoundTrip(t *testing.T) {
	for _, k := range []uint{1, 2, 3, 4, 5} {
		n := uint64(1) << k
		seen := make(map[[2]uint32]bool)
		for d := uint64(0); d < n*n; d++ {
			x, y := HilbertD2XY(k, d)
			if uint64(x) >= n || uint64(y) >= n {
				t.Fatalf("k=%d d=%d out of grid: (%d,%d)", k, d, x, y)
			}
			if seen[[2]uint32{x, y}] {
				t.Fatalf("k=%d d=%d revisits (%d,%d)", k, d, x, y)
			}
			seen[[2]uint32{x, y}] = true
			if back := HilbertXY2D(k, x, y); back != d {
				t.Fatalf("k=%d xy2d(d2xy(%d)) = %d", k, d, back)
			}
		}
	}
}

func TestHilbertContinuity(t *testing.T) {
	// The Hilbert curve moves exactly one grid step at a time.
	const k = 4
	px, py := HilbertD2XY(k, 0)
	for d := uint64(1); d < 1<<(2*k); d++ {
		x, y := HilbertD2XY(k, d)
		dx, dy := int(x)-int(px), int(y)-int(py)
		if dx*dx+dy*dy != 1 {
			t.Fatalf("d=%d jumps from (%d,%d) to (%d,%d)", d, px, py, x, y)
		}
		px, py = x, y
	}
}

func TestGridPathCoversEveryCellOnce(t *testing.T) {
	for _, order := range []Order{RowMajor, ZOrder, GrayOrder, HilbertOrder} {
		path, err := GridPath(8, order)
		if err != nil {
			t.Fatalf("%v: %v", order, err)
		}
		if len(path) != 64 {
			t.Fatalf("%v: %d cells", order, len(path))
		}
		seen := make(map[[2]int]bool)
		for _, xy := range path {
			if xy[0] < 0 || xy[0] >= 8 || xy[1] < 0 || xy[1] >= 8 {
				t.Fatalf("%v: cell %v out of grid", order, xy)
			}
			if seen[xy] {
				t.Fatalf("%v: cell %v visited twice", order, xy)
			}
			seen[xy] = true
		}
	}
}

func TestGridPathValidation(t *testing.T) {
	if _, err := GridPath(0, RowMajor); err == nil {
		t.Error("side 0 accepted")
	}
	if _, err := GridPath(6, HilbertOrder); err == nil {
		t.Error("non-power-of-two hilbert accepted")
	}
	if _, err := GridPath(6, ZOrder); err == nil {
		t.Error("non-power-of-two z-order accepted")
	}
	if _, err := GridPath(6, RowMajor); err != nil {
		t.Errorf("row-major should accept any side: %v", err)
	}
	if _, err := GridPath(8, Order(99)); err == nil {
		t.Error("unknown order accepted")
	}
}

func TestOrderString(t *testing.T) {
	if RowMajor.String() != "row-major" || HilbertOrder.String() != "hilbert" {
		t.Error("Order.String names wrong")
	}
	if Order(99).String() == "" {
		t.Error("unknown order should still render")
	}
}

func TestLinearizeGrid(t *testing.T) {
	side := 4
	features := make([][]geom.Point, side)
	for y := range features {
		features[y] = make([]geom.Point, side)
		for x := range features[y] {
			features[y][x] = geom.Point{float64(x) / 4, float64(y) / 4, 0.5}
		}
	}
	for _, order := range []Order{RowMajor, ZOrder, GrayOrder, HilbertOrder} {
		seq, err := LinearizeGrid(features, order)
		if err != nil {
			t.Fatalf("%v: %v", order, err)
		}
		if seq.Len() != side*side {
			t.Fatalf("%v: %d points", order, seq.Len())
		}
	}
	// Ragged grid rejected.
	features[2] = features[2][:2]
	if _, err := LinearizeGrid(features, RowMajor); err == nil {
		t.Error("ragged grid accepted")
	}
}

// TestHilbertLocalityBeatsRowMajor measures total trail length of a smooth
// 2-D field linearized each way: the Hilbert order must yield a shorter
// trail, which is why the paper prefers it for region sequences.
func TestHilbertLocalityBeatsRowMajor(t *testing.T) {
	side := 16
	features := make([][]geom.Point, side)
	for y := range features {
		features[y] = make([]geom.Point, side)
		for x := range features[y] {
			features[y][x] = geom.Point{float64(x) / float64(side), float64(y) / float64(side), 0}
		}
	}
	trail := func(order Order) float64 {
		seq, err := LinearizeGrid(features, order)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for i := 1; i < seq.Len(); i++ {
			total += seq.Points[i].Dist(seq.Points[i-1])
		}
		return total
	}
	if h, r := trail(HilbertOrder), trail(RowMajor); h >= r {
		t.Errorf("hilbert trail %g >= row-major trail %g", h, r)
	}
}
