// Package curve implements the space-filling curves the paper lists for
// linearizing image regions into sequences (Section 1: "based on space
// filling curves such as the Z-curve, gray coding, or the Hilbert curve"):
// Morton/Z-order, Gray-code order, and the Hilbert curve on a 2^k × 2^k
// grid, plus helpers that turn a grid of feature vectors into a
// multidimensional data sequence in curve order.
package curve

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
)

// Order names a linearization.
type Order int

const (
	// RowMajor is plain scanline order (baseline, no locality).
	RowMajor Order = iota
	// ZOrder is the Morton curve: bit-interleaved x and y.
	ZOrder
	// GrayOrder is Z-order applied to Gray-coded coordinates.
	GrayOrder
	// HilbertOrder is the Hilbert curve, the paper's best-locality option.
	HilbertOrder
)

// String returns the order's conventional name.
func (o Order) String() string {
	switch o {
	case RowMajor:
		return "row-major"
	case ZOrder:
		return "z-order"
	case GrayOrder:
		return "gray"
	case HilbertOrder:
		return "hilbert"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// ZEncode interleaves the low 16 bits of x and y (x in even positions).
func ZEncode(x, y uint32) uint64 {
	return spread(x) | spread(y)<<1
}

// ZDecode inverts ZEncode.
func ZDecode(z uint64) (x, y uint32) {
	return compact(z), compact(z >> 1)
}

// spread inserts a zero bit above every bit of v's low 16 bits.
func spread(v uint32) uint64 {
	x := uint64(v) & 0xFFFF
	x = (x | x<<8) & 0x00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F
	x = (x | x<<2) & 0x33333333
	x = (x | x<<1) & 0x55555555
	return x
}

func compact(z uint64) uint32 {
	x := z & 0x55555555
	x = (x | x>>1) & 0x33333333
	x = (x | x>>2) & 0x0F0F0F0F
	x = (x | x>>4) & 0x00FF00FF
	x = (x | x>>8) & 0x0000FFFF
	return uint32(x)
}

// GrayEncode returns the reflected binary Gray code of v.
func GrayEncode(v uint32) uint32 { return v ^ (v >> 1) }

// GrayDecode inverts GrayEncode.
func GrayDecode(g uint32) uint32 {
	v := g
	for shift := uint(1); shift < 32; shift <<= 1 {
		v ^= v >> shift
	}
	return v
}

// HilbertD2XY converts a distance d along the Hilbert curve of order k
// (grid side n = 2^k) to grid coordinates.
func HilbertD2XY(k uint, d uint64) (x, y uint32) {
	n := uint64(1) << k
	t := d
	var rx, ry uint64
	var xx, yy uint64
	for s := uint64(1); s < n; s *= 2 {
		rx = 1 & (t / 2)
		ry = 1 & (t ^ rx)
		xx, yy = hilbertRot(s, xx, yy, rx, ry)
		xx += s * rx
		yy += s * ry
		t /= 4
	}
	return uint32(xx), uint32(yy)
}

// HilbertXY2D converts grid coordinates to a distance along the Hilbert
// curve of order k.
func HilbertXY2D(k uint, x, y uint32) uint64 {
	n := uint64(1) << k
	var d uint64
	xx, yy := uint64(x), uint64(y)
	for s := n / 2; s > 0; s /= 2 {
		var rx, ry uint64
		if xx&s > 0 {
			rx = 1
		}
		if yy&s > 0 {
			ry = 1
		}
		d += s * s * ((3 * rx) ^ ry)
		xx, yy = hilbertRot(s, xx, yy, rx, ry)
	}
	return d
}

func hilbertRot(s, x, y, rx, ry uint64) (uint64, uint64) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// GridPath returns the (x, y) visit order of every cell of a side×side
// grid under the given linearization. For ZOrder, GrayOrder and
// HilbertOrder the side must be a power of two.
func GridPath(side int, order Order) ([][2]int, error) {
	if side < 1 {
		return nil, fmt.Errorf("curve: invalid side %d", side)
	}
	cells := side * side
	out := make([][2]int, 0, cells)
	switch order {
	case RowMajor:
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				out = append(out, [2]int{x, y})
			}
		}
		return out, nil
	case ZOrder, GrayOrder:
		if !isPow2(side) {
			return nil, fmt.Errorf("curve: %v needs power-of-two side, got %d", order, side)
		}
		for d := uint64(0); d < uint64(cells); d++ {
			x, y := ZDecode(d)
			if order == GrayOrder {
				x, y = GrayDecode(x), GrayDecode(y)
			}
			out = append(out, [2]int{int(x), int(y)})
		}
		return out, nil
	case HilbertOrder:
		if !isPow2(side) {
			return nil, fmt.Errorf("curve: hilbert needs power-of-two side, got %d", side)
		}
		k := uint(0)
		for 1<<k < side {
			k++
		}
		for d := uint64(0); d < uint64(cells); d++ {
			x, y := HilbertD2XY(k, d)
			out = append(out, [2]int{int(x), int(y)})
		}
		return out, nil
	default:
		return nil, fmt.Errorf("curve: unknown order %v", order)
	}
}

// LinearizeGrid turns a side×side grid of feature vectors (indexed
// features[y][x]) into a sequence visiting cells in curve order — the
// paper's "image … segmented to a number of regions that can be ordered
// appropriately, based on space filling curves".
func LinearizeGrid(features [][]geom.Point, order Order) (*core.Sequence, error) {
	side := len(features)
	for y, row := range features {
		if len(row) != side {
			return nil, fmt.Errorf("curve: row %d has %d cells, want %d (square grid required)", y, len(row), side)
		}
	}
	path, err := GridPath(side, order)
	if err != nil {
		return nil, err
	}
	pts := make([]geom.Point, len(path))
	for i, xy := range path {
		pts[i] = features[xy[1]][xy[0]]
	}
	return &core.Sequence{Points: pts}, nil
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }
