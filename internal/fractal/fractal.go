// Package fractal generates synthetic multidimensional data sequences with
// the recursive midpoint-displacement construction of the paper's Section
// 4.1: pick random start and end points in the unit cube, displace the
// midpoint by dev·random(), and recurse on both halves with dev scaled
// down — yielding self-similar trails like the paper's Figure 4.
package fractal

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
)

// Config parameterizes the generator.
type Config struct {
	// Dim is the dimensionality of generated points (the paper uses 3).
	Dim int
	// Dev controls the displacement amplitude at the top level, in [0,1).
	Dev float64
	// Scale multiplies Dev at each recursion level, in [0,1).
	Scale float64
}

// DefaultConfig mirrors the paper's setup: 3-dimensional points with a
// moderate amplitude halving at each level.
func DefaultConfig() Config {
	return Config{Dim: 3, Dev: 0.5, Scale: 0.5}
}

func (c Config) validate() error {
	if c.Dim < 1 {
		return fmt.Errorf("fractal: invalid dim %d", c.Dim)
	}
	if c.Dev < 0 || c.Dev >= 1 {
		return fmt.Errorf("fractal: Dev %g outside [0,1)", c.Dev)
	}
	if c.Scale < 0 || c.Scale >= 1 {
		return fmt.Errorf("fractal: Scale %g outside [0,1)", c.Scale)
	}
	return nil
}

// Generate produces one sequence of exactly n points using rng. Points are
// clamped to the unit cube.
func Generate(rng *rand.Rand, n int, cfg Config) (*core.Sequence, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("fractal: invalid length %d", n)
	}
	start := randPoint(rng, cfg.Dim)
	end := randPoint(rng, cfg.Dim)
	pts := make([]geom.Point, 0, n)
	pts = append(pts, start)
	if n > 1 {
		pts = subdivide(rng, pts, start, end, n-2, cfg.Dev*cfg.Scale, cfg.Scale)
		pts = append(pts, end)
	}
	// The construction yields exactly n points: 1 start + (n-2) interior +
	// 1 end for n >= 2.
	if len(pts) != n {
		return nil, fmt.Errorf("fractal: internal error: generated %d of %d points", len(pts), n)
	}
	return &core.Sequence{Points: pts}, nil
}

// subdivide emits `interior` points strictly between a and b, recursively:
// the displaced midpoint splits the remaining budget between the halves.
func subdivide(rng *rand.Rand, pts []geom.Point, a, b geom.Point, interior int, dev, scale float64) []geom.Point {
	if interior <= 0 {
		return pts
	}
	mid := a.Mid(b)
	for k := range mid {
		mid[k] += dev * (rng.Float64()*2 - 1)
	}
	mid = mid.Clamp(0, 1)
	leftBudget := (interior - 1) / 2
	rightBudget := interior - 1 - leftBudget
	pts = subdivide(rng, pts, a, mid, leftBudget, dev*scale, scale)
	pts = append(pts, mid)
	pts = subdivide(rng, pts, mid, b, rightBudget, dev*scale, scale)
	return pts
}

// GenerateSet produces count sequences whose lengths are drawn uniformly
// from [minLen, maxLen] — the paper's "arbitrary (56–512 points)".
func GenerateSet(rng *rand.Rand, count, minLen, maxLen int, cfg Config) ([]*core.Sequence, error) {
	if count < 0 || minLen < 1 || maxLen < minLen {
		return nil, fmt.Errorf("fractal: invalid set spec count=%d len=[%d,%d]", count, minLen, maxLen)
	}
	out := make([]*core.Sequence, count)
	for i := range out {
		n := minLen + rng.Intn(maxLen-minLen+1)
		s, err := Generate(rng, n, cfg)
		if err != nil {
			return nil, err
		}
		s.Label = fmt.Sprintf("fractal-%04d", i)
		out[i] = s
	}
	return out, nil
}

func randPoint(rng *rand.Rand, dim int) geom.Point {
	p := make(geom.Point, dim)
	for k := range p {
		p[k] = rng.Float64()
	}
	return p
}
