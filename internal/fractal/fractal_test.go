package fractal

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestGenerateLengthAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultConfig()
	for _, n := range []int{1, 2, 3, 56, 100, 512} {
		s, err := Generate(rng, n, cfg)
		if err != nil {
			t.Fatalf("Generate(%d): %v", n, err)
		}
		if s.Len() != n {
			t.Errorf("length = %d, want %d", s.Len(), n)
		}
		if s.Dim() != 3 {
			t.Errorf("dim = %d, want 3", s.Dim())
		}
		if !s.InUnitCube() {
			t.Errorf("n=%d: points escape the unit cube", n)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := Generate(rng, 0, DefaultConfig()); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Generate(rng, 10, Config{Dim: 0, Dev: 0.5, Scale: 0.5}); err == nil {
		t.Error("dim=0 accepted")
	}
	if _, err := Generate(rng, 10, Config{Dim: 3, Dev: 1.5, Scale: 0.5}); err == nil {
		t.Error("Dev out of range accepted")
	}
	if _, err := Generate(rng, 10, Config{Dim: 3, Dev: 0.5, Scale: 1}); err == nil {
		t.Error("Scale=1 accepted")
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	cfg := DefaultConfig()
	a, _ := Generate(rand.New(rand.NewSource(7)), 64, cfg)
	b, _ := Generate(rand.New(rand.NewSource(7)), 64, cfg)
	for i := range a.Points {
		if !a.Points[i].Equal(b.Points[i]) {
			t.Fatalf("point %d differs across identical seeds", i)
		}
	}
	c, _ := Generate(rand.New(rand.NewSource(8)), 64, cfg)
	same := true
	for i := range a.Points {
		if !a.Points[i].Equal(c.Points[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical sequences")
	}
}

func TestSmallerDevYieldsSmootherTrail(t *testing.T) {
	// Mean step length should grow with Dev: the displacement amplitude
	// directly controls trail roughness.
	meanStep := func(dev float64) float64 {
		rng := rand.New(rand.NewSource(9))
		var total float64
		var steps int
		for trial := 0; trial < 20; trial++ {
			s, err := Generate(rng, 128, Config{Dim: 3, Dev: dev, Scale: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < s.Len(); i++ {
				total += s.Points[i].Dist(s.Points[i-1])
				steps++
			}
		}
		return total / float64(steps)
	}
	smooth, rough := meanStep(0.05), meanStep(0.8)
	if smooth >= rough {
		t.Errorf("mean step: dev=0.05 -> %g, dev=0.8 -> %g; want increasing", smooth, rough)
	}
}

func TestGenerateSet(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	set, err := GenerateSet(rng, 50, 56, 512, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 50 {
		t.Fatalf("set size = %d", len(set))
	}
	lens := map[int]bool{}
	for i, s := range set {
		if s.Len() < 56 || s.Len() > 512 {
			t.Errorf("sequence %d length %d outside [56,512]", i, s.Len())
		}
		if s.Label == "" {
			t.Errorf("sequence %d without label", i)
		}
		lens[s.Len()] = true
	}
	if len(lens) < 10 {
		t.Errorf("only %d distinct lengths in 50 draws; generator not varying", len(lens))
	}
}

func TestGenerateSetValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	if _, err := GenerateSet(rng, -1, 10, 20, DefaultConfig()); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := GenerateSet(rng, 5, 20, 10, DefaultConfig()); err == nil {
		t.Error("inverted length range accepted")
	}
}

func TestGeneratedSequencesPartitionCleanly(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cfg := core.DefaultPartitionConfig()
	for trial := 0; trial < 20; trial++ {
		s, err := Generate(rng, 56+rng.Intn(456), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		g, err := core.NewSegmented(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.CheckPartition(cfg); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
