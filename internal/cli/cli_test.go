package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestGenAndQueryBinary(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "d.mds")
	var out strings.Builder
	err := Gen([]string{"-kind", "fractal", "-count", "20", "-maxlen", "120", "-o", data}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote 20 fractal sequences") {
		t.Errorf("gen output: %q", out.String())
	}

	out.Reset()
	err = Query([]string{"-data", data, "-query", "3", "-from", "5", "-len", "30",
		"-eps", "0.15", "-baseline", "-knn", "2", "-dtw"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"indexed 20 sequences",
		"phases: partition",
		"re-ranked by DTW",
		"nearest sequences by exact distance",
		"sequential scan:",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("query output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "false dismissal") {
		t.Errorf("query reported a false dismissal:\n%s", s)
	}
	// The query's own source must appear as a zero-distance match.
	if !strings.Contains(s, "#3 fractal-0003") {
		t.Errorf("source sequence missing from output:\n%s", s)
	}
}

func TestGenAndQueryCSV(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "d.csv")
	var out strings.Builder
	if err := Gen([]string{"-kind", "video", "-count", "8", "-maxlen", "100", "-o", data}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := Query([]string{"-data", data, "-query", "1", "-len", "20", "-eps", "0.1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "indexed 8 sequences") {
		t.Errorf("csv query output: %q", out.String())
	}
}

func TestGenDump(t *testing.T) {
	var out strings.Builder
	if err := Gen([]string{"-kind", "fractal", "-maxlen", "64", "-dump"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# fractal sample sequence, 32 points, dim 3") {
		t.Errorf("dump header missing: %q", out.String()[:80])
	}
	if got := strings.Count(out.String(), "\n"); got != 33 { // header + 32 rows
		t.Errorf("dump has %d lines", got)
	}
}

func TestGenErrors(t *testing.T) {
	var out strings.Builder
	if err := Gen([]string{"-kind", "nope", "-dump"}, &out); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := Gen([]string{"-kind", "fractal"}, &out); err == nil {
		t.Error("missing -o accepted")
	}
	if err := Gen([]string{"-bogusflag"}, &out); err == nil {
		t.Error("bogus flag accepted")
	}
}

func TestQueryErrors(t *testing.T) {
	var out strings.Builder
	if err := Query([]string{}, &out); err == nil {
		t.Error("missing -data accepted")
	}
	if err := Query([]string{"-data", "/nonexistent.mds"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	data := filepath.Join(dir, "d.mds")
	if err := Gen([]string{"-kind", "fractal", "-count", "3", "-maxlen", "80", "-o", data}, &out); err != nil {
		t.Fatal(err)
	}
	if err := Query([]string{"-data", data, "-query", "99"}, &out); err == nil {
		t.Error("out-of-range query index accepted")
	}
	if err := Query([]string{"-data", data, "-query", "0", "-from", "9999"}, &out); err == nil {
		t.Error("out-of-range offset accepted")
	}
}

func TestQuerySharded(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "d.mds")
	var out strings.Builder
	if err := Gen([]string{"-kind", "fractal", "-count", "20", "-maxlen", "120", "-seed", "11", "-o", data}, &out); err != nil {
		t.Fatal(err)
	}
	run := func(shards string) string {
		var buf strings.Builder
		err := Query([]string{"-data", data, "-query", "3", "-from", "5", "-len", "30",
			"-eps", "0.15", "-baseline", "-shards", shards}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	sharded := run("4")
	if !strings.Contains(sharded, "4 shard(s)") {
		t.Errorf("sharded query output missing shard count:\n%s", sharded)
	}
	if strings.Contains(sharded, "false dismissal") {
		t.Errorf("sharded query reported a false dismissal:\n%s", sharded)
	}
	if !strings.Contains(sharded, "fractal-0003") {
		t.Errorf("source sequence missing from sharded output:\n%s", sharded)
	}
	// Match count must agree between topologies.
	single := run("1")
	matchCount := regexp.MustCompile(`\((\d+) matches\)`)
	want := matchCount.FindStringSubmatch(single)
	got := matchCount.FindStringSubmatch(sharded)
	if want == nil || got == nil || want[1] != got[1] {
		t.Errorf("match counts diverge: single %v vs sharded %v", want, got)
	}

	if err := Query([]string{"-data", data, "-shards", "0"}, &out); err == nil {
		t.Error("shard count 0 accepted")
	}
}

func TestBenchList(t *testing.T) {
	var out strings.Builder
	if err := Bench([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "1600") || !strings.Contains(s, "1408") {
		t.Errorf("Table 2 sizes missing:\n%s", s)
	}
}

func TestBenchFigures(t *testing.T) {
	// One pruning figure and one SI figure at a heavy scale-down: the full
	// pipeline (generate, index, ground truth, measure, report) under test.
	var out strings.Builder
	if err := Bench([]string{"-exp", "fig6", "-scale", "40"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "PR(Dnorm)") {
		t.Errorf("fig6 report malformed:\n%s", out.String())
	}
	out.Reset()
	if err := Bench([]string{"-exp", "fig9", "-scale", "40"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Recall") {
		t.Errorf("fig9 report malformed:\n%s", out.String())
	}
}

func TestBenchErrors(t *testing.T) {
	var out strings.Builder
	if err := Bench([]string{}, &out); err == nil {
		t.Error("missing -exp accepted")
	}
	if err := Bench([]string{"-exp", "nope"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestQueryExplain(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "d.mds")
	var out strings.Builder
	if err := Gen([]string{"-kind", "fractal", "-count", "6", "-maxlen", "80", "-o", data}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := Query([]string{"-data", data, "-query", "2", "-len", "20", "-eps", "0.1", "-explain"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "pruned by Dmbr") || !strings.Contains(s, "minDnorm") {
		t.Errorf("explain output missing:\n%s", s)
	}
}

func TestBenchAblationsAndExtensionsTinyScale(t *testing.T) {
	// Exercise every experiment dispatch path at 1/80 scale (20 sequences,
	// 1 query) — full pipeline smoke coverage, seconds not minutes.
	cases := []struct {
		exp  string
		want string
	}{
		{"fig8", "Pruning Rate"},
		{"fig10", "ratio (scan/proposed)"},
		{"ablation-mcost", "Qk+eps"},
		{"ablation-maxpts", "max pts/MBR"},
		{"ablation-fanout", "fanout"},
		{"ablation-dim", "dim"},
		{"noise", "noise"},
		{"iocost", "fetches/query"},
	}
	for _, c := range cases {
		var out strings.Builder
		if err := Bench([]string{"-exp", c.exp, "-scale", "80", "-seed", "7"}, &out); err != nil {
			t.Fatalf("%s: %v", c.exp, err)
		}
		if !strings.Contains(out.String(), c.want) {
			t.Errorf("%s report missing %q:\n%s", c.exp, c.want, out.String())
		}
	}
}

func TestBenchScalabilityTiny(t *testing.T) {
	t.Skip("scalability sweeps fixed absolute sizes (100-1600); covered by experiment tests")
}

func TestGenSeedsAreReproducible(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.mds"), filepath.Join(dir, "b.mds")
	var out strings.Builder
	if err := Gen([]string{"-kind", "fractal", "-count", "5", "-maxlen", "64", "-seed", "3", "-o", a}, &out); err != nil {
		t.Fatal(err)
	}
	if err := Gen([]string{"-kind", "fractal", "-count", "5", "-maxlen", "64", "-seed", "3", "-o", b}, &out); err != nil {
		t.Fatal(err)
	}
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Error("same seed produced different datasets")
	}
}

func TestGenVideoDump(t *testing.T) {
	var out strings.Builder
	if err := Gen([]string{"-kind", "video", "-maxlen", "48", "-dump"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# video sample sequence, 24 points, dim 3") {
		t.Errorf("video dump header: %q", out.String()[:60])
	}
}

func TestQueryMetricDTW(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "d.mds")
	var out strings.Builder
	if err := Gen([]string{"-kind", "fractal", "-count", "20", "-maxlen", "120", "-o", data}, &out); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []string{"1", "3"} {
		out.Reset()
		err := Query([]string{"-data", data, "-query", "3", "-from", "5", "-len", "30",
			"-eps", "0.25", "-metric", "dtw", "-dtw-window", "8",
			"-baseline", "-knn", "2", "-shards", shards}, &out)
		if err != nil {
			t.Fatalf("shards=%s: %v", shards, err)
		}
		s := out.String()
		for _, want := range []string{
			"metric dtw:",
			"env-pruned",
			"nearest sequences by exact dtw distance",
			"sequential dtw scan:",
		} {
			if !strings.Contains(s, want) {
				t.Errorf("shards=%s: metric query output missing %q:\n%s", shards, want, s)
			}
		}
		if strings.Contains(s, "false dismissal") {
			t.Errorf("shards=%s: indexed DTW dismissed a scan result:\n%s", shards, s)
		}
		// The query's own source scores DTW 0 and must surface.
		if !strings.Contains(s, "fractal-0003") {
			t.Errorf("shards=%s: source sequence missing from DTW output:\n%s", shards, s)
		}
	}
}

func TestQueryMetricValidation(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "d.mds")
	var out strings.Builder
	if err := Gen([]string{"-kind", "fractal", "-count", "5", "-o", data}, &out); err != nil {
		t.Fatal(err)
	}
	if err := Query([]string{"-data", data, "-metric", "chebyshev"}, &out); err == nil {
		t.Error("unknown -metric accepted")
	}
	if err := Query([]string{"-data", data, "-metric", "dtw", "-dtw-window", "-5"}, &out); err == nil {
		t.Error("-dtw-window -5 accepted")
	}
	// A too-narrow window on the -dtw re-rank path surfaces a warning
	// instead of silently mis-ranking.
	out.Reset()
	if err := Query([]string{"-data", data, "-query", "0", "-len", "10",
		"-eps", "0.5", "-dtw", "-dtw-window", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	if s := out.String(); strings.Contains(s, "re-ranked by DTW") &&
		strings.Contains(s, "unranked") == !strings.Contains(s, "WARNING") {
		t.Errorf("warning/unranked mismatch in output:\n%s", s)
	}
}
