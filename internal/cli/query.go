package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/seqio"
	"repro/internal/shard"
	"repro/internal/store"
)

// Query implements mdsquery: load a dataset, index it, run one query.
func Query(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mdsquery", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		dataPath = fs.String("data", "", "dataset file from mdsgen (.csv reads CSV); required unless -store is set")
		storeDir = fs.String("store", "", "store directory to open instead of indexing -data (from Save/SaveSharded/Build)")
		saveDir  = fs.String("save-store", "", "after indexing -data, persist the corpus to this store directory")
		format   = fs.String("store-format", "", "format for -save-store: v2 (columnar segments, default) or v1 (row records)")
		quantQ   = fs.Bool("quantized-mbr", false, "prefilter index hits with a conservative float32 MBR sidecar before the exact float64 distance (identical results)")
		queryIdx = fs.Int("query", 0, "index of the sequence to draw the query from")
		from     = fs.Int("from", 0, "query start offset within that sequence")
		qlen     = fs.Int("len", 0, "query length (0 = to the end)")
		eps      = fs.Float64("eps", 0.1, "similarity threshold ε")
		baseline = fs.Bool("baseline", false, "also run the sequential-scan baseline and compare")
		topK     = fs.Int("top", 10, "print at most this many matches")
		knn      = fs.Int("knn", 0, "additionally report the k nearest sequences by exact distance")
		dtw      = fs.Bool("dtw", false, "re-rank matches by dynamic time warping distance")
		metric   = fs.String("metric", "d", "search metric: d (exact alignment distance) or dtw (indexed dynamic time warping)")
		dtwWin   = fs.Int("dtw-window", -1, "Sakoe–Chiba band half-width for DTW (-1 = unconstrained); applies to -metric dtw and -dtw re-ranking")
		explain  = fs.Bool("explain", false, "print per-sequence pruning decisions")
		shards   = fs.Int("shards", 1, "hash-partition the corpus over this many shards (scatter-gather search)")
		metrics  = fs.Bool("metrics", false, "record into a metrics registry and print its Prometheus dump after the run")
		trace    = fs.Bool("trace", false, "trace the query and print its span tree (phases, attributes, per-shard spans) after the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataPath == "" && *storeDir == "" {
		fs.Usage()
		return fmt.Errorf("missing -data or -store")
	}
	if *dataPath != "" && *storeDir != "" {
		return fmt.Errorf("-data and -store are exclusive")
	}
	if *saveDir != "" && *dataPath == "" {
		return fmt.Errorf("-save-store needs -data (a -store corpus is already persisted)")
	}
	sf := store.DefaultFormat
	switch *format {
	case "", "v2":
	case "v1":
		sf = store.FormatV1
	default:
		return fmt.Errorf("-store-format %q: want v1 or v2", *format)
	}
	if *shards < 1 {
		return fmt.Errorf("-shards %d: shard count must be >= 1", *shards)
	}

	var db shard.DB
	var seqs []*core.Sequence
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}
	if *storeDir != "" {
		t0 := time.Now()
		sdb, err := store.LoadShardedWith(*storeDir, store.LoadOptions{Quantized: *quantQ})
		if err != nil {
			return err
		}
		db = sdb
		if reg != nil {
			db.SetMetrics(reg)
		}
		seqs = db.Sequences()
		fmt.Fprintf(stdout, "opened store %s: %d sequences (%d MBRs, R*-tree height %d, %d shard(s)) in %v\n",
			*storeDir, db.Len(), db.NumMBRs(), db.IndexHeight(), db.Shards(), time.Since(t0).Round(time.Millisecond))
	} else {
		read := seqio.ReadFile
		if strings.HasSuffix(*dataPath, ".csv") {
			read = seqio.ReadCSVFile
		}
		var err error
		seqs, err = read(*dataPath)
		if err != nil {
			return err
		}
		if *shards > 1 {
			db, err = shard.New(core.Options{Dim: seqs[0].Dim(), QuantizedMBR: *quantQ}, *shards)
		} else {
			db, err = core.NewDatabase(core.Options{Dim: seqs[0].Dim(), QuantizedMBR: *quantQ})
		}
		if err != nil {
			return err
		}
		if reg != nil {
			db.SetMetrics(reg)
		}
		t0 := time.Now()
		if _, err := db.AddAll(seqs); err != nil {
			db.Close()
			return err
		}
		fmt.Fprintf(stdout, "indexed %d sequences (%d MBRs, R*-tree height %d, %d shard(s)) in %v\n",
			db.Len(), db.NumMBRs(), db.IndexHeight(), db.Shards(), time.Since(t0).Round(time.Millisecond))
	}
	defer db.Close()

	if *saveDir != "" {
		t0 := time.Now()
		var err error
		if sdb, ok := db.(*shard.ShardedDB); ok {
			err = store.SaveShardedFormat(sdb, *saveDir, sf)
		} else {
			err = store.SaveFormat(db.(*core.Database), *saveDir, sf)
		}
		if err != nil {
			return fmt.Errorf("-save-store: %w", err)
		}
		fmt.Fprintf(stdout, "saved store %s (format v%d) in %v\n", *saveDir, sf, time.Since(t0).Round(time.Millisecond))
	}

	if len(seqs) == 0 {
		return fmt.Errorf("empty corpus")
	}
	if *queryIdx < 0 || *queryIdx >= len(seqs) {
		return fmt.Errorf("query index %d outside dataset of %d sequences", *queryIdx, len(seqs))
	}
	src := seqs[*queryIdx]
	if *from < 0 || *from >= src.Len() {
		return fmt.Errorf("offset %d outside sequence of %d points", *from, src.Len())
	}
	end := src.Len()
	if *qlen > 0 && *from+*qlen < end {
		end = *from + *qlen
	}
	q := &core.Sequence{Label: "query", Points: src.Points[*from:end]}
	fmt.Fprintf(stdout, "query: %d points from %s[%d:%d], eps=%.3f\n", q.Len(), src.Label, *from, end, *eps)

	mt, err := core.ParseMetric(*metric, *dtwWin)
	if err != nil {
		return err
	}
	if *dtwWin < -1 {
		return fmt.Errorf("-dtw-window %d: use -1 for unconstrained or a nonnegative half-width", *dtwWin)
	}

	ctx := context.Background()
	var tr *obs.Trace
	if *trace {
		tr = obs.NewTrace()
		ctx = obs.WithTrace(ctx, tr)
	}
	if _, ok := mt.(core.MetricDTW); ok {
		if err := queryMetric(ctx, stdout, db, q, *eps, mt, *topK, *knn, *baseline); err != nil {
			return err
		}
		return queryTrailer(stdout, tr, reg)
	}
	matches, stats, err := db.SearchCtx(ctx, q, *eps)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "phases: partition %v (%d MBRs) | Dmbr %v (%d candidates) | Dnorm %v (%d matches)\n",
		stats.Phase1.Round(time.Microsecond), stats.QueryMBRs,
		stats.Phase2.Round(time.Microsecond), stats.CandidatesDmbr,
		stats.Phase3.Round(time.Microsecond), stats.MatchesDnorm)
	if db.Shards() > 1 {
		// Wall is per-phase max across shards; CPU sums the per-shard work.
		fmt.Fprintf(stdout, "scatter: wall %v | cpu %v over %d shards\n",
			stats.Total().Round(time.Microsecond), stats.CPUTime.Round(time.Microsecond), db.Shards())
	}

	if *dtw {
		var unaligned int
		matches, unaligned = core.RefineDTWChecked(q, matches, *dtwWin)
		fmt.Fprintln(stdout, "(matches re-ranked by DTW)")
		if unaligned > 0 {
			fmt.Fprintf(stdout, "WARNING: %d match(es) unranked — DTW window %d admits no alignment (narrower than the length difference); they keep input order at the tail\n",
				unaligned, *dtwWin)
		}
	}
	for i, m := range matches {
		if i >= *topK {
			fmt.Fprintf(stdout, "... and %d more\n", len(matches)-*topK)
			break
		}
		fmt.Fprintf(stdout, "  #%d %-14s minDnorm=%.4f  intervals=%v\n",
			m.SeqID, m.Seq.Label, m.MinDnorm, m.Interval.String())
	}

	if *knn > 0 {
		nn, err := db.SearchKNNCtx(ctx, q, *knn)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\n%d nearest sequences by exact distance D:\n", len(nn))
		for _, r := range nn {
			fmt.Fprintf(stdout, "  #%d %-14s D=%.4f at offset %d\n", r.SeqID, r.Seq.Label, r.Dist, r.Offset)
		}
	}

	if *explain {
		ex, err := db.Explain(q, *eps)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout)
		if _, err := ex.WriteTo(stdout); err != nil {
			return err
		}
	}

	if *baseline {
		t1 := time.Now()
		exact, err := db.SequentialSearch(q, *eps)
		if err != nil {
			return err
		}
		scanTime := time.Since(t1)
		fmt.Fprintf(stdout, "sequential scan: %d relevant in %v (index search took %v; %.1fx)\n",
			len(exact), scanTime.Round(time.Microsecond), stats.Total().Round(time.Microsecond),
			float64(scanTime)/float64(stats.Total()))
		inMatches := make(map[uint32]bool, len(matches))
		for _, m := range matches {
			inMatches[m.SeqID] = true
		}
		for _, r := range exact {
			if !inMatches[r.SeqID] {
				fmt.Fprintf(stdout, "  WARNING: false dismissal of sequence %d (D=%.4f)\n", r.SeqID, r.Dist)
			}
		}
	}

	return queryTrailer(stdout, tr, reg)
}

// queryMetric runs the exact-metric query path (-metric dtw): the
// indexed metric range search, optional metric kNN, and the exhaustive
// metric-scan baseline with a false-dismissal check.
func queryMetric(ctx context.Context, stdout io.Writer, db shard.DB, q *core.Sequence,
	eps float64, mt core.Metric, topK, knn int, baseline bool) error {
	matches, stats, err := db.SearchMetricCtx(ctx, q, eps, mt)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "metric %s: envelope %v | filter %v (%d candidates) | refine %v (env-pruned %d, LB_Keogh-pruned %d, DTW evals %d, %d matches)\n",
		mt.Name(),
		stats.Phase1.Round(time.Microsecond),
		stats.Phase2.Round(time.Microsecond), stats.CandidatesDmbr,
		stats.Phase3.Round(time.Microsecond),
		stats.DTWEnvPruned, stats.DTWKeoghPruned, stats.DTWEvals, len(matches))
	for i, m := range matches {
		if i >= topK {
			fmt.Fprintf(stdout, "... and %d more\n", len(matches)-topK)
			break
		}
		fmt.Fprintf(stdout, "  #%d %-14s %s=%.4f\n", m.SeqID, m.Seq.Label, mt.Name(), m.Dist)
	}

	if knn > 0 {
		nn, err := db.SearchKNNMetricCtx(ctx, q, knn, mt)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\n%d nearest sequences by exact %s distance:\n", len(nn), mt.Name())
		for _, r := range nn {
			fmt.Fprintf(stdout, "  #%d %-14s %s=%.4f\n", r.SeqID, r.Seq.Label, mt.Name(), r.Dist)
		}
	}

	if baseline {
		t1 := time.Now()
		exact, err := db.SequentialSearchMetric(q, eps, mt)
		if err != nil {
			return err
		}
		scanTime := time.Since(t1)
		fmt.Fprintf(stdout, "sequential %s scan: %d relevant in %v (index search took %v; %.1fx)\n",
			mt.Name(), len(exact), scanTime.Round(time.Microsecond), stats.Total().Round(time.Microsecond),
			float64(scanTime)/float64(stats.Total()))
		inMatches := make(map[uint32]bool, len(matches))
		for _, m := range matches {
			inMatches[m.SeqID] = true
		}
		for _, r := range exact {
			if !inMatches[r.SeqID] {
				fmt.Fprintf(stdout, "  WARNING: false dismissal of sequence %d (%s=%.4f)\n", r.SeqID, mt.Name(), r.Dist)
			}
		}
	}
	return nil
}

// queryTrailer prints the optional trace tree and metrics dump.
func queryTrailer(stdout io.Writer, tr *obs.Trace, reg *obs.Registry) error {
	if tr != nil {
		fmt.Fprintln(stdout, "\n# trace (span tree)")
		tr.Snapshot().WriteTree(stdout)
	}

	if reg != nil {
		fmt.Fprintln(stdout, "\n# metrics (Prometheus text format)")
		if err := reg.WritePrometheus(stdout); err != nil {
			return err
		}
	}
	return nil
}
