// Package cli implements the command-line tools (mdsgen, mdsquery,
// mdsbench) as testable functions: each takes its argument vector and an
// output writer and returns an error instead of exiting, so the full tool
// surface runs under go test. The cmd/ main packages are thin wrappers.
package cli

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/fractal"
	"repro/internal/seqio"
	"repro/internal/video"
)

// Gen implements mdsgen: generate datasets or dump a sample sequence.
func Gen(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mdsgen", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		kind   = fs.String("kind", "fractal", "dataset kind: fractal | video")
		count  = fs.Int("count", 1600, "number of sequences")
		minLen = fs.Int("minlen", 56, "minimum sequence length")
		maxLen = fs.Int("maxlen", 512, "maximum sequence length")
		seed   = fs.Int64("seed", 20000301, "RNG seed")
		out    = fs.String("o", "", "output file (required unless -dump); .csv selects CSV format")
		dump   = fs.Bool("dump", false, "print one generated sequence as text and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	if *dump {
		var s *core.Sequence
		var err error
		switch *kind {
		case "fractal":
			s, err = fractal.Generate(rng, *maxLen/2, fractal.DefaultConfig())
		case "video":
			s, err = video.GenerateFeatureSequence(rng, *maxLen/2, video.DefaultStreamConfig())
		default:
			return fmt.Errorf("unknown kind %q", *kind)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "# %s sample sequence, %d points, dim %d\n", *kind, s.Len(), s.Dim())
		for i, p := range s.Points {
			fmt.Fprintf(stdout, "%d", i)
			for _, v := range p {
				fmt.Fprintf(stdout, "\t%.6f", v)
			}
			fmt.Fprintln(stdout)
		}
		return nil
	}

	if *out == "" {
		fs.Usage()
		return fmt.Errorf("missing -o")
	}
	var seqs []*core.Sequence
	var err error
	switch *kind {
	case "fractal":
		seqs, err = fractal.GenerateSet(rng, *count, *minLen, *maxLen, fractal.DefaultConfig())
	case "video":
		seqs, err = video.GenerateSet(rng, *count, *minLen, *maxLen, video.DefaultStreamConfig())
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}
	write := seqio.WriteFile
	if strings.HasSuffix(*out, ".csv") {
		write = seqio.WriteCSVFile
	}
	if err := write(*out, seqs); err != nil {
		return err
	}
	var points int
	for _, s := range seqs {
		points += s.Len()
	}
	fmt.Fprintf(stdout, "wrote %d %s sequences (%d points) to %s\n", len(seqs), *kind, points, *out)
	return nil
}
