package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiment"
)

// Bench implements mdsbench: regenerate the paper's figures and ablations.
func Bench(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mdsbench", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		exp   = fs.String("exp", "", "experiment: fig6|fig7|fig8|fig9|fig10|ablation-mcost|ablation-maxpts|ablation-fanout|ablation-dim|noise|iocost|scalability|all")
		scale = fs.Int("scale", 1, "divide corpus and query count by this factor")
		seed  = fs.Int64("seed", 0, "override the default RNG seed (0 = keep)")
		list  = fs.Bool("list", false, "print the Table 2 configurations and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	syn := experiment.PaperSynthetic().Scaled(*scale)
	vid := experiment.PaperVideo().Scaled(*scale)
	if *seed != 0 {
		syn.Seed, vid.Seed = *seed, *seed
	}

	if *list {
		fmt.Fprintln(stdout, "Table 2. Experimental parameters")
		fmt.Fprintln(stdout)
		if err := experiment.WriteConfig(stdout, syn); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
		return experiment.WriteConfig(stdout, vid)
	}
	if *exp == "" {
		fs.Usage()
		return fmt.Errorf("missing -exp")
	}

	r := benchRunner{out: stdout}
	switch *exp {
	case "fig6":
		return r.pruning(syn, "Figure 6. Pruning rate of the Dmbr and the Dnorm for synthetic data sets")
	case "fig7":
		return r.pruning(vid, "Figure 7. Pruning rate of the Dmbr and the Dnorm for real video data sets (synthetic shot-structured substitute)")
	case "fig8":
		return r.si(syn, "Figure 8. Efficiency of the solution interval for synthetic data sets")
	case "fig9":
		return r.si(vid, "Figure 9. Efficiency of the solution interval for video data sets (synthetic shot-structured substitute)")
	case "fig10":
		if err := r.timing(syn, "Figure 10a. Response time ratio vs sequential scan, synthetic"); err != nil {
			return err
		}
		return r.timing(vid, "Figure 10b. Response time ratio vs sequential scan, video")
	case "ablation-mcost":
		rows, err := experiment.RunMCostAblation(syn, []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.6, 0.9}, 0.2)
		if err != nil {
			return err
		}
		return experiment.WriteMCostReport(stdout,
			"Ablation. Partitioning constant Q_k+eps (Section 3.4.3 adopts 0.3) at eps=0.20", rows)
	case "ablation-maxpts":
		rows, err := experiment.RunMaxPointsAblation(syn, []int{8, 16, 32, 64, 128, 256}, 0.2)
		if err != nil {
			return err
		}
		return experiment.WriteMaxPointsReport(stdout, "Ablation. Max points per MBR at eps=0.20", rows)
	case "ablation-fanout":
		rows, err := experiment.RunFanoutAblation(syn, []int{8, 16, 32, 64}, 0.2)
		if err != nil {
			return err
		}
		return experiment.WriteFanoutReport(stdout, "Ablation. R*-tree fanout at eps=0.20", rows)
	case "ablation-dim":
		rows, err := experiment.RunDimAblation(syn, []int{1, 2, 3, 4, 6, 8}, 0.2)
		if err != nil {
			return err
		}
		return experiment.WriteDimReport(stdout,
			"Ablation. Dimensionality sweep (synthetic, eps scaled by sqrt(dim/3))", rows)
	case "noise":
		rows, err := experiment.RunNoiseSweep(vid, []float64{0, 0.01, 0.02, 0.05, 0.1}, 0.15)
		if err != nil {
			return err
		}
		return experiment.WriteNoiseReport(stdout, "Extension. Query-noise sensitivity (video, eps=0.15)", rows)
	case "iocost":
		dir, err := os.MkdirTemp("", "mdsbench-iocost")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		rows, err := experiment.RunIOCost(syn, dir)
		if err != nil {
			return err
		}
		return experiment.WriteIOReport(stdout, "Extension. Index page IO per query (synthetic, 64-page pool)", rows)
	case "scalability":
		rows, err := experiment.RunScalability(syn, []int{100, 200, 400, 800, 1600}, 0.2)
		if err != nil {
			return err
		}
		return experiment.WriteScalabilityReport(stdout,
			"Extension. Scalability with database size (synthetic, eps=0.20)", rows)
	case "all":
		steps := []func() error{
			func() error {
				return r.pruning(syn, "Figure 6. Pruning rate of the Dmbr and the Dnorm for synthetic data sets")
			},
			func() error {
				return r.pruning(vid, "Figure 7. Pruning rate of the Dmbr and the Dnorm for real video data sets (synthetic shot-structured substitute)")
			},
			func() error {
				return r.si(syn, "Figure 8. Efficiency of the solution interval for synthetic data sets")
			},
			func() error {
				return r.si(vid, "Figure 9. Efficiency of the solution interval for video data sets (synthetic shot-structured substitute)")
			},
			func() error {
				return r.timing(syn, "Figure 10a. Response time ratio vs sequential scan, synthetic")
			},
			func() error {
				return r.timing(vid, "Figure 10b. Response time ratio vs sequential scan, video")
			},
		}
		for i, step := range steps {
			if i > 0 {
				fmt.Fprintln(stdout)
			}
			if err := step(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
}

type benchRunner struct {
	out io.Writer
}

func (r benchRunner) build(cfg experiment.Config) (*experiment.Bench, error) {
	t0 := time.Now()
	b, err := experiment.Build(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(r.out, "# workload %v: %d sequences, %d MBRs indexed, %d queries, setup %v\n",
		cfg.Workload, b.DB.Len(), b.DB.NumMBRs(), len(b.Queries),
		time.Since(t0).Round(time.Millisecond))
	return b, nil
}

func (r benchRunner) pruning(cfg experiment.Config, title string) error {
	b, err := r.build(cfg)
	if err != nil {
		return err
	}
	defer b.Close()
	rows, err := experiment.RunPruning(b)
	if err != nil {
		return err
	}
	return experiment.WritePruningReport(r.out, title, rows)
}

func (r benchRunner) si(cfg experiment.Config, title string) error {
	b, err := r.build(cfg)
	if err != nil {
		return err
	}
	defer b.Close()
	rows, err := experiment.RunSolutionInterval(b)
	if err != nil {
		return err
	}
	return experiment.WriteSIReport(r.out, title, rows)
}

func (r benchRunner) timing(cfg experiment.Config, title string) error {
	b, err := r.build(cfg)
	if err != nil {
		return err
	}
	defer b.Close()
	rows, err := experiment.RunResponseTime(b)
	if err != nil {
		return err
	}
	return experiment.WriteTimeReport(r.out, title, rows)
}
