package experiment

import (
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/fractal"
	"repro/internal/video"
)

// ScalabilityRow is one database-size point of the scalability extension:
// how index build, search latency and the scan/search ratio evolve as the
// corpus grows. The paper evaluates one size per workload; this sweep
// establishes the trend.
type ScalabilityRow struct {
	Sequences   int
	MBRs        int
	BuildTime   time.Duration // partition + index
	SearchTime  time.Duration // mean three-phase search per query
	ScanTime    time.Duration // mean sequential scan per query
	Ratio       float64       // scan / search
	IndexHeight int
}

// RunScalability measures the sweep at probeEps using cfg's generator and
// query settings. Sizes are absolute corpus sizes; queries are redrawn per
// size from that corpus.
func RunScalability(cfg Config, sizes []int, probeEps float64) ([]ScalabilityRow, error) {
	rows := make([]ScalabilityRow, 0, len(sizes))
	for _, n := range sizes {
		sub := cfg
		sub.NumSequences = n
		rng := rand.New(rand.NewSource(sub.Seed))
		var data []*core.Sequence
		var err error
		switch sub.Workload {
		case Video:
			data, err = video.GenerateSet(rng, n, sub.MinLen, sub.MaxLen, video.DefaultStreamConfig())
		default:
			data, err = fractal.GenerateSet(rng, n, sub.MinLen, sub.MaxLen, fractal.DefaultConfig())
		}
		if err != nil {
			return nil, err
		}

		t0 := time.Now()
		db, err := core.NewDatabase(core.Options{Dim: sub.Dim, Partition: sub.Partition})
		if err != nil {
			return nil, err
		}
		if _, err := db.AddAll(data); err != nil {
			db.Close()
			return nil, err
		}
		build := time.Since(t0)

		queries := MakeQueries(sub, data)
		var searchTotal, scanTotal time.Duration
		for _, q := range queries {
			t1 := time.Now()
			if _, _, err := db.Search(q, probeEps); err != nil {
				db.Close()
				return nil, err
			}
			searchTotal += time.Since(t1)
			t2 := time.Now()
			if _, err := db.SequentialSearch(q, probeEps); err != nil {
				db.Close()
				return nil, err
			}
			scanTotal += time.Since(t2)
		}
		nq := time.Duration(len(queries))
		row := ScalabilityRow{
			Sequences:   n,
			MBRs:        db.NumMBRs(),
			BuildTime:   build,
			SearchTime:  searchTotal / nq,
			ScanTime:    scanTotal / nq,
			IndexHeight: db.IndexHeight(),
		}
		if searchTotal > 0 {
			row.Ratio = float64(scanTotal) / float64(searchTotal)
		}
		rows = append(rows, row)
		db.Close()
	}
	return rows, nil
}
