package experiment

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/fractal"
	"repro/internal/geom"
	"repro/internal/video"
)

// Bench couples everything one experiment run needs: the populated
// database, the raw data, the query set, and exact ground truth.
type Bench struct {
	Config  Config
	DB      *core.Database
	Data    []*core.Sequence
	Queries []*core.Sequence
	// Truth[q][s] is the offset-distance profile of query q against
	// sequence s (threshold-independent; see core.OffsetProfile).
	Truth [][][]float64
}

// GenerateData produces the configured corpus (without a database).
func GenerateData(cfg Config) ([]*core.Sequence, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	switch cfg.Workload {
	case Synthetic:
		fc := fractal.DefaultConfig()
		fc.Dim = cfg.Dim
		return fractal.GenerateSet(rng, cfg.NumSequences, cfg.MinLen, cfg.MaxLen, fc)
	case Video:
		if cfg.Dim != 3 {
			return nil, fmt.Errorf("experiment: video workload is 3-dimensional, config says %d", cfg.Dim)
		}
		return video.GenerateSet(rng, cfg.NumSequences, cfg.MinLen, cfg.MaxLen, video.DefaultStreamConfig())
	default:
		return nil, fmt.Errorf("experiment: unknown workload %v", cfg.Workload)
	}
}

// MakeQueries draws the query set: each query is a random subsequence of a
// random stored sequence, clamped to the sequence's length.
func MakeQueries(cfg Config, data []*core.Sequence) []*core.Sequence {
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	out := make([]*core.Sequence, cfg.QueriesPerThreshold)
	for i := range out {
		src := data[rng.Intn(len(data))]
		qlen := cfg.QueryMinLen + rng.Intn(cfg.QueryMaxLen-cfg.QueryMinLen+1)
		if qlen > src.Len() {
			qlen = src.Len()
		}
		start := rng.Intn(src.Len() - qlen + 1)
		pts := make([]geom.Point, qlen)
		for j := range pts {
			pts[j] = src.Points[start+j].Clone()
		}
		out[i] = &core.Sequence{Label: fmt.Sprintf("query-%02d(src=%s@%d)", i, src.Label, start), Points: pts}
	}
	return out
}

// Build generates the corpus, indexes it, draws queries and computes the
// exact ground-truth profiles. It is the expensive setup step shared by
// every figure; the profiles make all thresholds cheap afterwards.
func Build(cfg Config) (*Bench, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	data, err := GenerateData(cfg)
	if err != nil {
		return nil, err
	}
	db, err := core.NewDatabase(core.Options{Dim: cfg.Dim, Partition: cfg.Partition})
	if err != nil {
		return nil, err
	}
	if _, err := db.AddAll(data); err != nil {
		db.Close()
		return nil, err
	}
	queries := MakeQueries(cfg, data)
	truth := ComputeTruth(queries, data)
	return &Bench{Config: cfg, DB: db, Data: data, Queries: queries, Truth: truth}, nil
}

// Close releases the bench's database.
func (b *Bench) Close() error { return b.DB.Close() }

// ComputeTruth evaluates every (query, sequence) offset profile, in
// parallel across sequences.
func ComputeTruth(queries, data []*core.Sequence) [][][]float64 {
	truth := make([][][]float64, len(queries))
	workers := runtime.GOMAXPROCS(0)
	for qi, q := range queries {
		profiles := make([][]float64, len(data))
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for si := range jobs {
					profiles[si] = core.OffsetProfile(q.Points, data[si].Points)
				}
			}()
		}
		for si := range data {
			jobs <- si
		}
		close(jobs)
		wg.Wait()
		truth[qi] = profiles
	}
	return truth
}

// RelevantAt returns, for query qi, the set of sequence indices with
// D(Q,S) ≤ eps — the paper's "relevant sequences".
func (b *Bench) RelevantAt(qi int, eps float64) map[uint32]bool {
	out := make(map[uint32]bool)
	for si, profile := range b.Truth[qi] {
		if core.MinOfProfile(profile) <= eps {
			out[uint32(si)] = true
		}
	}
	return out
}

// ExactInterval returns query qi's exact solution interval in sequence si
// at threshold eps (Definition 6).
func (b *Bench) ExactInterval(qi, si int, eps float64) core.IntervalSet {
	q, s := b.Queries[qi], b.Data[si]
	queryLonger := q.Len() > s.Len()
	k := q.Len()
	if queryLonger {
		k = s.Len()
	}
	return core.SolutionIntervalFromProfile(b.Truth[qi][si], k, s.Len(), queryLonger, eps)
}
