package experiment

import (
	"os"
	"path/filepath"

	"repro/internal/core"
)

// IORow is one ε row of the disk-access extension: the page-level cost of
// index searches under a constrained buffer pool. The paper's MCOST
// partitioning constant exists precisely to control this quantity ("the
// average number of disk accesses"); here we measure it directly on the
// file-backed index.
type IORow struct {
	Eps        float64
	AvgFetches float64 // logical page requests per query
	AvgReads   float64 // physical page reads per query (pool misses)
	HitRatio   float64
	IndexPages int // total pages in the index file
}

// RunIOCost builds a file-backed database with a deliberately small
// buffer pool (64 pages) and measures page traffic per query across the
// threshold sweep.
func RunIOCost(cfg Config, dir string) ([]IORow, error) {
	data, err := GenerateData(cfg)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, "iocost-index.db")
	os.Remove(path)
	db, err := core.NewDatabase(core.Options{
		Dim:       cfg.Dim,
		Partition: cfg.Partition,
		Path:      path,
		PoolPages: 64,
	})
	if err != nil {
		return nil, err
	}
	defer func() {
		db.Close()
		os.Remove(path)
	}()
	if _, err := db.AddAll(data); err != nil {
		return nil, err
	}
	if err := db.Flush(); err != nil {
		return nil, err
	}
	queries := MakeQueries(cfg, data)

	rows := make([]IORow, 0, len(cfg.Thresholds))
	for _, eps := range cfg.Thresholds {
		db.ResetPagerStats()
		for _, q := range queries {
			// Search itself now serves index nodes from the in-memory flat
			// cache (zero pager traffic once warm), so the page-level cost
			// of the paper's phase-2 index descent is measured through the
			// pager-backed compatibility path: CandidatesDmbr issues
			// exactly the page requests the index search performs.
			if _, err := db.CandidatesDmbr(q, eps); err != nil {
				return nil, err
			}
		}
		st := db.PagerStats()
		nq := float64(len(queries))
		rows = append(rows, IORow{
			Eps:        eps,
			AvgFetches: float64(st.Fetches) / nq,
			AvgReads:   float64(st.Reads) / nq,
			HitRatio:   st.HitRatio(),
			IndexPages: db.NumMBRs(), // entries; pages reported via fetches
		})
	}
	return rows, nil
}
