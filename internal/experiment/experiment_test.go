package experiment

import (
	"strings"
	"testing"
)

// smallConfig is a fast, deterministic configuration for tests: the same
// machinery as the paper runs, two orders of magnitude smaller.
func smallConfig(w Workload) Config {
	cfg := PaperSynthetic()
	cfg.Workload = w
	cfg.NumSequences = 60
	cfg.QueriesPerThreshold = 4
	cfg.MaxLen = 200
	cfg.QueryMaxLen = 100
	cfg.Thresholds = []float64{0.1, 0.3, 0.5}
	return cfg
}

func buildSmall(t *testing.T, w Workload) *Bench {
	t.Helper()
	b, err := Build(smallConfig(w))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

func TestConfigValidate(t *testing.T) {
	good := PaperSynthetic()
	if err := good.validate(); err != nil {
		t.Errorf("paper config invalid: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"dim":           func(c *Config) { c.Dim = 0 },
		"sequences":     func(c *Config) { c.NumSequences = 0 },
		"lengths":       func(c *Config) { c.MinLen = 100; c.MaxLen = 50 },
		"thresholds":    func(c *Config) { c.Thresholds = nil },
		"zeroThreshold": func(c *Config) { c.Thresholds = []float64{0} },
		"queries":       func(c *Config) { c.QueriesPerThreshold = 0 },
		"queryLens":     func(c *Config) { c.QueryMinLen = 0 },
	} {
		c := PaperSynthetic()
		mutate(&c)
		if err := c.validate(); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestPaperConfigsMatchTable2(t *testing.T) {
	s := PaperSynthetic()
	if s.NumSequences != 1600 || s.MinLen != 56 || s.MaxLen != 512 ||
		s.QueriesPerThreshold != 20 || s.Dim != 3 {
		t.Errorf("synthetic config drifted from Table 2: %+v", s)
	}
	v := PaperVideo()
	if v.NumSequences != 1408 || v.Workload != Video {
		t.Errorf("video config drifted from Table 2: %+v", v)
	}
	th := DefaultThresholds()
	if len(th) != 10 || th[0] != 0.05 || th[9] != 0.5 {
		t.Errorf("thresholds = %v", th)
	}
}

func TestScaled(t *testing.T) {
	c := PaperSynthetic().Scaled(10)
	if c.NumSequences != 160 || c.QueriesPerThreshold != 2 {
		t.Errorf("Scaled(10) = %d seqs, %d queries", c.NumSequences, c.QueriesPerThreshold)
	}
	if got := PaperSynthetic().Scaled(1); got.NumSequences != 1600 {
		t.Error("Scaled(1) should be identity")
	}
	if got := PaperSynthetic().Scaled(100000); got.NumSequences < 1 || got.QueriesPerThreshold < 1 {
		t.Error("Scaled floor broken")
	}
}

func TestBuildShapes(t *testing.T) {
	for _, w := range []Workload{Synthetic, Video} {
		b := buildSmall(t, w)
		cfg := b.Config
		if len(b.Data) != cfg.NumSequences {
			t.Errorf("%v: %d data sequences", w, len(b.Data))
		}
		if len(b.Queries) != cfg.QueriesPerThreshold {
			t.Errorf("%v: %d queries", w, len(b.Queries))
		}
		if len(b.Truth) != len(b.Queries) {
			t.Fatalf("%v: truth shape", w)
		}
		for qi := range b.Truth {
			if len(b.Truth[qi]) != len(b.Data) {
				t.Fatalf("%v: truth[%d] covers %d sequences", w, qi, len(b.Truth[qi]))
			}
		}
		if b.DB.Len() != cfg.NumSequences {
			t.Errorf("%v: db holds %d", w, b.DB.Len())
		}
	}
}

func TestQueriesAreSubsequences(t *testing.T) {
	b := buildSmall(t, Synthetic)
	// Every query must be exactly relevant to at least one sequence (its
	// source) at any threshold: its minimum profile distance is 0.
	for qi := range b.Queries {
		rel := b.RelevantAt(qi, 1e-12)
		if len(rel) == 0 {
			t.Errorf("query %d has no zero-distance source", qi)
		}
	}
}

func TestRunPruningShapesAndBounds(t *testing.T) {
	for _, w := range []Workload{Synthetic, Video} {
		b := buildSmall(t, w)
		rows, err := RunPruning(b)
		if err != nil {
			t.Fatalf("%v: %v", w, err)
		}
		if len(rows) != len(b.Config.Thresholds) {
			t.Fatalf("%v: %d rows", w, len(rows))
		}
		for i, r := range rows {
			if r.Eps != b.Config.Thresholds[i] {
				t.Errorf("%v: row %d eps %g", w, i, r.Eps)
			}
			if r.PRmbr < 0 || r.PRmbr > 1 || r.PRnorm < 0 || r.PRnorm > 1 {
				t.Errorf("%v: pruning rates out of [0,1]: %+v", w, r)
			}
			// Dnorm retrieves a subset of Dmbr's candidates, so its
			// pruning rate cannot be lower.
			if r.PRnorm < r.PRmbr-1e-9 {
				t.Errorf("%v: PRnorm %g < PRmbr %g at eps %g", w, r.PRnorm, r.PRmbr, r.Eps)
			}
			if r.AvgMatches > r.AvgCands+1e-9 {
				t.Errorf("%v: avg matches %g > avg candidates %g", w, r.AvgMatches, r.AvgCands)
			}
			if r.AvgRel > r.AvgMatches+1e-9 {
				t.Errorf("%v: avg relevant %g > avg matches %g (false dismissal?)", w, r.AvgRel, r.AvgMatches)
			}
		}
	}
}

func TestRunSolutionIntervalBounds(t *testing.T) {
	for _, w := range []Workload{Synthetic, Video} {
		b := buildSmall(t, w)
		rows, err := RunSolutionInterval(b)
		if err != nil {
			t.Fatalf("%v: %v", w, err)
		}
		for _, r := range rows {
			if r.Recall < 0 || r.Recall > 1+1e-9 {
				t.Errorf("%v: recall %g at eps %g", w, r.Recall, r.Eps)
			}
			// Regression guard only: at this tiny scale (4 queries, 60
			// sequences) recall is noisy; the full-scale reproduction in
			// EXPERIMENTS.md lands in the paper's 0.95-1.0 band.
			if r.Recall < 0.85 {
				t.Errorf("%v: recall %g below 0.85 at eps %g (paper reports ~0.98+)", w, r.Recall, r.Eps)
			}
		}
	}
}

func TestRunResponseTime(t *testing.T) {
	b := buildSmall(t, Synthetic)
	rows, err := RunResponseTime(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ScanTime <= 0 || r.SearchTime <= 0 {
			t.Errorf("non-positive times: %+v", r)
		}
		if r.Ratio <= 0 {
			t.Errorf("ratio %g at eps %g", r.Ratio, r.Eps)
		}
	}
}

func TestRunMCostAblation(t *testing.T) {
	cfg := smallConfig(Synthetic)
	cfg.NumSequences = 30
	cfg.QueriesPerThreshold = 2
	rows, err := RunMCostAblation(cfg, []float64{0.1, 0.3, 0.6}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Larger extent amortizes more, so the MBR count per sequence must be
	// non-increasing across the sweep.
	for i := 1; i < len(rows); i++ {
		if rows[i].AvgMBRs > rows[i-1].AvgMBRs+1e-9 {
			t.Errorf("AvgMBRs not monotone: %v", rows)
		}
	}
}

func TestRunMaxPointsAblation(t *testing.T) {
	cfg := smallConfig(Synthetic)
	cfg.NumSequences = 30
	cfg.QueriesPerThreshold = 2
	rows, err := RunMaxPointsAblation(cfg, []int{8, 64}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].AvgMBRs < rows[1].AvgMBRs {
		t.Errorf("tighter cap should produce more MBRs: %v", rows)
	}
}

func TestRunFanoutAblation(t *testing.T) {
	cfg := smallConfig(Synthetic)
	cfg.NumSequences = 30
	cfg.QueriesPerThreshold = 2
	rows, err := RunFanoutAblation(cfg, []int{8, 64}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Height < rows[1].Height {
		t.Errorf("smaller fanout should not be shallower: %v", rows)
	}
	// The pruning predicate is fanout-independent.
	if rows[0].PRnorm != rows[1].PRnorm {
		t.Errorf("pruning rate changed with fanout: %v vs %v", rows[0].PRnorm, rows[1].PRnorm)
	}
}

func TestReports(t *testing.T) {
	b := buildSmall(t, Synthetic)
	pr, err := RunPruning(b)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WritePruningReport(&sb, "Figure 6", pr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 6") || !strings.Contains(sb.String(), "PR(Dnorm)") {
		t.Errorf("pruning report malformed:\n%s", sb.String())
	}
	sb.Reset()
	si, err := RunSolutionInterval(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSIReport(&sb, "Figure 8", si); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Recall") {
		t.Error("SI report missing recall column")
	}
	sb.Reset()
	tr, err := RunResponseTime(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTimeReport(&sb, "Figure 10", tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ratio") {
		t.Error("time report missing ratio column")
	}
	sb.Reset()
	if err := WriteConfig(&sb, b.Config); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1600") && !strings.Contains(sb.String(), "60") {
		t.Errorf("config report malformed:\n%s", sb.String())
	}
}

func TestRunScalability(t *testing.T) {
	cfg := smallConfig(Synthetic)
	cfg.QueriesPerThreshold = 2
	rows, err := RunScalability(cfg, []int{20, 40}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[1].Sequences != 40 || rows[1].MBRs <= rows[0].MBRs {
		t.Errorf("MBR count should grow with corpus: %+v", rows)
	}
	for _, r := range rows {
		if r.BuildTime <= 0 || r.SearchTime <= 0 || r.ScanTime <= 0 {
			t.Errorf("non-positive timing: %+v", r)
		}
		if r.IndexHeight < 1 {
			t.Errorf("height %d", r.IndexHeight)
		}
	}
	var sb strings.Builder
	if err := WriteScalabilityReport(&sb, "Scalability", rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ratio") {
		t.Error("report missing ratio column")
	}
}

func TestRunDimAblation(t *testing.T) {
	cfg := smallConfig(Synthetic)
	cfg.NumSequences = 25
	cfg.QueriesPerThreshold = 2
	rows, err := RunDimAblation(cfg, []int{1, 3, 5}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.PRnorm < 0 || r.PRnorm > 1 {
			t.Errorf("dim %d PRnorm %g", r.Dim, r.PRnorm)
		}
		if r.AvgMBRs <= 0 || r.SearchTime <= 0 {
			t.Errorf("dim %d row incomplete: %+v", r.Dim, r)
		}
	}
	var sb strings.Builder
	if err := WriteDimReport(&sb, "Dims", rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dim") {
		t.Error("report malformed")
	}
}

func TestRunNoiseSweep(t *testing.T) {
	cfg := smallConfig(Video)
	cfg.NumSequences = 30
	cfg.QueriesPerThreshold = 3
	rows, err := RunNoiseSweep(cfg, []float64{0, 0.05}, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// Smoke-level floor only: at 30 sequences / 3 queries recall is very
	// noisy; full-scale numbers come from mdsbench.
	if rows[0].Recall < 0.8 {
		t.Errorf("clean-query recall = %g", rows[0].Recall)
	}
	for _, r := range rows {
		if r.AvgMatch > r.AvgCands+1e-9 {
			t.Errorf("matches exceed candidates: %+v", r)
		}
	}
	var sb strings.Builder
	if err := WriteNoiseReport(&sb, "Noise", rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "noise") {
		t.Error("report malformed")
	}
}

func TestRunIOCost(t *testing.T) {
	cfg := smallConfig(Synthetic)
	cfg.NumSequences = 30
	cfg.QueriesPerThreshold = 2
	cfg.Thresholds = []float64{0.1, 0.3}
	rows, err := RunIOCost(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.AvgFetches <= 0 {
			t.Errorf("no page fetches at eps %g", r.Eps)
		}
		if r.HitRatio < 0 || r.HitRatio > 1 {
			t.Errorf("hit ratio %g", r.HitRatio)
		}
	}
	// Larger thresholds touch at least as much of the index.
	if rows[1].AvgFetches < rows[0].AvgFetches {
		t.Errorf("fetches decreased with eps: %+v", rows)
	}
	var sb strings.Builder
	if err := WriteIOReport(&sb, "IO", rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fetches") {
		t.Error("report malformed")
	}
}

func TestVideoWorkloadRequiresDim3(t *testing.T) {
	cfg := smallConfig(Video)
	cfg.Dim = 4
	if _, err := GenerateData(cfg); err == nil {
		t.Error("4-dim video accepted")
	}
}

func TestWorkloadString(t *testing.T) {
	if Synthetic.String() != "synthetic" || Video.String() != "video" {
		t.Error("workload names wrong")
	}
	if Workload(9).String() == "" {
		t.Error("unknown workload should render")
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	// EXPERIMENTS.md claims bit-for-bit reproducibility; hold it to that.
	run := func() []PruningRow {
		b, err := Build(smallConfig(Synthetic))
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		rows, err := RunPruning(b)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	a, b := run(), run()
	for i := range a {
		if a[i].PRmbr != b[i].PRmbr || a[i].PRnorm != b[i].PRnorm ||
			a[i].AvgCands != b[i].AvgCands || a[i].AvgRel != b[i].AvgRel {
			t.Fatalf("row %d differs across identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
