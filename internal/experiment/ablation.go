package experiment

import (
	"math"
	"time"

	"repro/internal/core"
)

// MCostRow is one row of the Q_k+ε partitioning-constant sweep (the paper
// fixes 0.3 "since it demonstrates the best partitioning by an extensive
// experiment"; this ablation regenerates that claim's evidence).
type MCostRow struct {
	QueryExtent float64
	AvgMBRs     float64       // mean MBRs per sequence (index size driver)
	PRnorm      float64       // pruning rate at the probe threshold
	SearchTime  time.Duration // mean Search latency at the probe threshold
}

// RunMCostAblation rebuilds the database for every QueryExtent value and
// measures partition granularity, pruning and latency at probeEps.
func RunMCostAblation(cfg Config, extents []float64, probeEps float64) ([]MCostRow, error) {
	data, err := GenerateData(cfg)
	if err != nil {
		return nil, err
	}
	queries := MakeQueries(cfg, data)
	truth := ComputeTruth(queries, data)

	rows := make([]MCostRow, 0, len(extents))
	for _, qe := range extents {
		pc := core.DefaultPartitionConfig()
		pc.QueryExtent = qe
		if cfg.Partition.MaxPoints > 0 {
			pc.MaxPoints = cfg.Partition.MaxPoints
		}
		sub := cfg
		sub.Partition = pc
		row, err := probeConfig(sub, data, queries, truth, probeEps)
		if err != nil {
			return nil, err
		}
		row.QueryExtent = qe
		rows = append(rows, row)
	}
	return rows, nil
}

// MaxPointsRow is one row of the per-MBR point-cap sweep.
type MaxPointsRow struct {
	MaxPoints  int
	AvgMBRs    float64
	PRnorm     float64
	SearchTime time.Duration
}

// RunMaxPointsAblation sweeps the partitioning cap.
func RunMaxPointsAblation(cfg Config, caps []int, probeEps float64) ([]MaxPointsRow, error) {
	data, err := GenerateData(cfg)
	if err != nil {
		return nil, err
	}
	queries := MakeQueries(cfg, data)
	truth := ComputeTruth(queries, data)

	rows := make([]MaxPointsRow, 0, len(caps))
	for _, mp := range caps {
		pc := core.DefaultPartitionConfig()
		pc.MaxPoints = mp
		sub := cfg
		sub.Partition = pc
		row, err := probeConfig(sub, data, queries, truth, probeEps)
		if err != nil {
			return nil, err
		}
		rows = append(rows, MaxPointsRow{
			MaxPoints:  mp,
			AvgMBRs:    row.AvgMBRs,
			PRnorm:     row.PRnorm,
			SearchTime: row.SearchTime,
		})
	}
	return rows, nil
}

// FanoutRow is one row of the index-fanout sweep.
type FanoutRow struct {
	MaxEntries int
	Height     int
	PRnorm     float64
	SearchTime time.Duration
}

// RunFanoutAblation sweeps the R*-tree node capacity. Pruning rates are
// fanout-independent (the predicate is identical); latency is not.
func RunFanoutAblation(cfg Config, fanouts []int, probeEps float64) ([]FanoutRow, error) {
	data, err := GenerateData(cfg)
	if err != nil {
		return nil, err
	}
	queries := MakeQueries(cfg, data)
	truth := ComputeTruth(queries, data)

	rows := make([]FanoutRow, 0, len(fanouts))
	for _, f := range fanouts {
		db, err := core.NewDatabase(core.Options{Dim: cfg.Dim, Partition: cfg.Partition, MaxEntries: f})
		if err != nil {
			return nil, err
		}
		for _, s := range data {
			if _, err := db.Add(s); err != nil {
				db.Close()
				return nil, err
			}
		}
		b := &Bench{Config: cfg, DB: db, Data: data, Queries: queries, Truth: truth}
		b.Config.Thresholds = []float64{probeEps}
		pr, err := RunPruning(b)
		if err != nil {
			db.Close()
			return nil, err
		}
		var total time.Duration
		for _, q := range queries {
			t0 := time.Now()
			if _, _, err := db.Search(q, probeEps); err != nil {
				db.Close()
				return nil, err
			}
			total += time.Since(t0)
		}
		rows = append(rows, FanoutRow{
			MaxEntries: f,
			Height:     db.IndexHeight(),
			PRnorm:     pr[0].PRnorm,
			SearchTime: total / time.Duration(len(queries)),
		})
		db.Close()
	}
	return rows, nil
}

// DimRow is one row of the dimensionality sweep. The paper fixes 3
// dimensions "for convenience" and notes any dimensionality works; this
// ablation shows how pruning and cost move with the feature dimension.
type DimRow struct {
	Dim        int
	AvgMBRs    float64
	PRnorm     float64
	AvgRel     float64 // relevant sequences at the probe threshold
	SearchTime time.Duration
}

// RunDimAblation rebuilds the synthetic workload at each dimensionality.
// The probe threshold is scaled by sqrt(dim/3) so selectivity stays
// roughly comparable as the unit cube's diagonal grows.
func RunDimAblation(cfg Config, dims []int, probeEps float64) ([]DimRow, error) {
	rows := make([]DimRow, 0, len(dims))
	for _, dim := range dims {
		sub := cfg
		sub.Dim = dim
		sub.Workload = Synthetic
		data, err := GenerateData(sub)
		if err != nil {
			return nil, err
		}
		db, err := core.NewDatabase(core.Options{Dim: dim, Partition: sub.Partition})
		if err != nil {
			return nil, err
		}
		if _, err := db.AddAll(data); err != nil {
			db.Close()
			return nil, err
		}
		queries := MakeQueries(sub, data)
		truth := ComputeTruth(queries, data)
		b := &Bench{Config: sub, DB: db, Data: data, Queries: queries, Truth: truth}
		eps := probeEps * math.Sqrt(float64(dim)/3)
		b.Config.Thresholds = []float64{eps}
		pr, err := RunPruning(b)
		if err != nil {
			db.Close()
			return nil, err
		}
		var total time.Duration
		for _, q := range queries {
			t0 := time.Now()
			if _, _, err := db.Search(q, eps); err != nil {
				db.Close()
				return nil, err
			}
			total += time.Since(t0)
		}
		rows = append(rows, DimRow{
			Dim:        dim,
			AvgMBRs:    float64(db.NumMBRs()) / float64(len(data)),
			PRnorm:     pr[0].PRnorm,
			AvgRel:     pr[0].AvgRel,
			SearchTime: total / time.Duration(len(queries)),
		})
		db.Close()
	}
	return rows, nil
}

// probeConfig builds a database for sub's partition settings (reusing the
// provided data/queries/truth) and measures one MCost-style row.
func probeConfig(sub Config, data, queries []*core.Sequence, truth [][][]float64, probeEps float64) (MCostRow, error) {
	db, err := core.NewDatabase(core.Options{Dim: sub.Dim, Partition: sub.Partition})
	if err != nil {
		return MCostRow{}, err
	}
	defer db.Close()
	for _, s := range data {
		if _, err := db.Add(s); err != nil {
			return MCostRow{}, err
		}
	}
	b := &Bench{Config: sub, DB: db, Data: data, Queries: queries, Truth: truth}
	b.Config.Thresholds = []float64{probeEps}
	pr, err := RunPruning(b)
	if err != nil {
		return MCostRow{}, err
	}
	var total time.Duration
	for _, q := range queries {
		t0 := time.Now()
		if _, _, err := db.Search(q, probeEps); err != nil {
			return MCostRow{}, err
		}
		total += time.Since(t0)
	}
	return MCostRow{
		AvgMBRs:    float64(db.NumMBRs()) / float64(len(data)),
		PRnorm:     pr[0].PRnorm,
		SearchTime: total / time.Duration(len(queries)),
	}, nil
}
