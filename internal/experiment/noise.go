package experiment

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
)

// NoiseRow is one row of the query-noise sensitivity extension: queries
// are perturbed copies of stored subsequences, and we measure how the
// exact relevance, the index's candidate set and the interval recall react
// as the perturbation grows. Real queries (a clip re-encoded at a
// different bitrate, a re-measured time series) are never byte-identical
// to the stored data; this sweep shows the search degrades gracefully.
type NoiseRow struct {
	Noise    float64 // per-coordinate uniform noise amplitude
	AvgRel   float64 // exactly relevant sequences per query
	AvgCands float64 // |ASmbr| per query
	AvgMatch float64 // |ASnorm| per query
	Recall   float64 // solution-interval recall vs exact
}

// RunNoiseSweep evaluates the probe threshold at each noise level. The
// clean (noise 0) queries come from MakeQueries; each level re-perturbs
// the same base queries, so rows are comparable.
func RunNoiseSweep(cfg Config, levels []float64, probeEps float64) ([]NoiseRow, error) {
	data, err := GenerateData(cfg)
	if err != nil {
		return nil, err
	}
	db, err := core.NewDatabase(core.Options{Dim: cfg.Dim, Partition: cfg.Partition})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if _, err := db.AddAll(data); err != nil {
		return nil, err
	}
	base := MakeQueries(cfg, data)

	rows := make([]NoiseRow, 0, len(levels))
	for li, level := range levels {
		rng := rand.New(rand.NewSource(cfg.Seed + 1000 + int64(li)))
		queries := make([]*core.Sequence, len(base))
		for i, q := range base {
			queries[i] = perturb(rng, q, level)
		}
		truth := ComputeTruth(queries, data)
		b := &Bench{Config: cfg, DB: db, Data: data, Queries: queries, Truth: truth}

		var row NoiseRow
		row.Noise = level
		var recallSum float64
		var recallN int
		for qi, q := range queries {
			relevant := b.RelevantAt(qi, probeEps)
			cands, err := db.CandidatesDmbr(q, probeEps)
			if err != nil {
				return nil, err
			}
			matches, _, err := db.Search(q, probeEps)
			if err != nil {
				return nil, err
			}
			row.AvgRel += float64(len(relevant))
			row.AvgCands += float64(len(cands))
			row.AvgMatch += float64(len(matches))

			approx := make(map[uint32]*core.IntervalSet, len(matches))
			for i := range matches {
				approx[matches[i].SeqID] = &matches[i].Interval
			}
			var scan, inter int
			for si := range data {
				exact := b.ExactInterval(qi, si, probeEps)
				if exact.NumPoints() == 0 {
					continue
				}
				scan += exact.NumPoints()
				if a, ok := approx[uint32(si)]; ok {
					inter += exact.IntersectCount(a)
				}
			}
			if scan > 0 {
				recallSum += float64(inter) / float64(scan)
				recallN++
			}
		}
		nq := float64(len(queries))
		row.AvgRel /= nq
		row.AvgCands /= nq
		row.AvgMatch /= nq
		if recallN > 0 {
			row.Recall = recallSum / float64(recallN)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// perturb adds uniform noise of the given amplitude to every coordinate,
// clamped to the unit cube.
func perturb(rng *rand.Rand, q *core.Sequence, level float64) *core.Sequence {
	pts := make([]geom.Point, q.Len())
	for i, p := range q.Points {
		np := make(geom.Point, len(p))
		for k, v := range p {
			np[k] = clamp01(v + level*(rng.Float64()*2-1))
		}
		pts[i] = np
	}
	return &core.Sequence{Label: q.Label + "+noise", Points: pts}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
