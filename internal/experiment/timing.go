package experiment

import (
	"time"

	"repro/internal/stats"
)

// TimeRow is one ε row of Figure 10: wall-clock response times of the
// sequential scan and the proposed method, and their ratio
//
//	ratio = T(sequential scan) / T(Dmbr index search + Dnorm + SI assembly)
//
// exactly as the paper normalizes ("a denominator represents the total
// elapsed time for the search by both the Dmbr and Dnorm metrics").
// Besides the means, the per-query latency distribution of the proposed
// method is summarized by its median and 95th percentile.
type TimeRow struct {
	Eps        float64
	ScanTime   time.Duration // mean per query
	SearchTime time.Duration // mean per query
	SearchP50  time.Duration // median per query
	SearchP95  time.Duration // 95th percentile per query
	Ratio      float64
}

// RunResponseTime measures Figure 10. Both sides do full work per query:
// the scan computes exact distances and exact solution intervals over raw
// points; the proposed method runs all three phases including interval
// assembly.
func RunResponseTime(b *Bench) ([]TimeRow, error) {
	rows := make([]TimeRow, 0, len(b.Config.Thresholds))
	for _, eps := range b.Config.Thresholds {
		var scanTotal, searchTotal time.Duration
		searchSamples := make([]float64, 0, len(b.Queries))
		for _, q := range b.Queries {
			t0 := time.Now()
			if _, err := b.DB.SequentialSearch(q, eps); err != nil {
				return nil, err
			}
			scanTotal += time.Since(t0)

			t1 := time.Now()
			if _, _, err := b.DB.Search(q, eps); err != nil {
				return nil, err
			}
			d := time.Since(t1)
			searchTotal += d
			searchSamples = append(searchSamples, float64(d))
		}
		n := time.Duration(len(b.Queries))
		p95, err := stats.Quantile(searchSamples, 0.95)
		if err != nil {
			return nil, err
		}
		row := TimeRow{
			Eps:        eps,
			ScanTime:   scanTotal / n,
			SearchTime: searchTotal / n,
			SearchP50:  time.Duration(stats.Median(searchSamples)),
			SearchP95:  time.Duration(p95),
		}
		if searchTotal > 0 {
			row.Ratio = float64(scanTotal) / float64(searchTotal)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
