// Package experiment reproduces the paper's evaluation (Section 4): it
// builds the Table 2 workloads, generates queries, computes exact ground
// truth with the sequential scan, and measures the pruning rates, solution
// interval quality, and response-time ratios of Figures 6–10, plus
// ablations over the design constants of Section 3.4.3.
package experiment

import (
	"fmt"

	"repro/internal/core"
)

// Workload selects the data generator.
type Workload int

const (
	// Synthetic is the fractal midpoint-displacement workload (Figure 4).
	Synthetic Workload = iota
	// Video is the shot-structured video feature workload (Figure 5).
	Video
)

func (w Workload) String() string {
	switch w {
	case Synthetic:
		return "synthetic"
	case Video:
		return "video"
	default:
		return fmt.Sprintf("Workload(%d)", int(w))
	}
}

// Config mirrors the paper's Table 2 plus the knobs the paper leaves
// implicit (query lengths, RNG seed).
type Config struct {
	Workload Workload
	// Dim is the point dimensionality ("All data sets are, for
	// convenience, 3-dimensional").
	Dim int
	// NumSequences is the corpus size (1600 synthetic, 1408 video).
	NumSequences int
	// MinLen and MaxLen bound sequence lengths ("arbitrary (56-512)").
	MinLen, MaxLen int
	// Thresholds is the ε sweep (0.05–0.50 step 0.05).
	Thresholds []float64
	// QueriesPerThreshold is the number of random queries averaged per ε
	// (20 in the paper). The same query set is reused across thresholds —
	// ground truth is threshold-independent.
	QueriesPerThreshold int
	// QueryMinLen and QueryMaxLen bound query lengths. The paper only says
	// queries are "randomly selected"; we draw each query as a random
	// subsequence of a random stored sequence, which guarantees non-empty
	// ground truth at every ε (D = 0 against its source).
	QueryMinLen, QueryMaxLen int
	// Partition tunes the MCOST segmentation (zero → paper defaults).
	Partition core.PartitionConfig
	// Seed makes the whole experiment reproducible.
	Seed int64
}

// DefaultThresholds returns the paper's ε sweep: 0.05 to 0.50 step 0.05.
func DefaultThresholds() []float64 {
	out := make([]float64, 10)
	for i := range out {
		out[i] = 0.05 * float64(i+1)
	}
	return out
}

// PaperSynthetic is the full-scale Table 2 synthetic configuration.
func PaperSynthetic() Config {
	return Config{
		Workload:            Synthetic,
		Dim:                 3,
		NumSequences:        1600,
		MinLen:              56,
		MaxLen:              512,
		Thresholds:          DefaultThresholds(),
		QueriesPerThreshold: 20,
		QueryMinLen:         28,
		QueryMaxLen:         96,
		Seed:                20000301, // ICDE 2000, San Diego, March 1-3
	}
}

// PaperVideo is the full-scale Table 2 video configuration.
func PaperVideo() Config {
	c := PaperSynthetic()
	c.Workload = Video
	c.NumSequences = 1408
	return c
}

// Scaled returns a copy of c with the corpus and query count scaled by
// 1/factor (minimum 1 each) — for quick runs and Go benchmarks; the
// recorded EXPERIMENTS.md numbers use factor 1.
func (c Config) Scaled(factor int) Config {
	if factor <= 1 {
		return c
	}
	out := c
	out.NumSequences = maxInt(1, c.NumSequences/factor)
	out.QueriesPerThreshold = maxInt(1, c.QueriesPerThreshold/factor)
	return out
}

func (c Config) validate() error {
	if c.Dim < 1 {
		return fmt.Errorf("experiment: dim %d", c.Dim)
	}
	if c.NumSequences < 1 {
		return fmt.Errorf("experiment: %d sequences", c.NumSequences)
	}
	if c.MinLen < 1 || c.MaxLen < c.MinLen {
		return fmt.Errorf("experiment: lengths [%d,%d]", c.MinLen, c.MaxLen)
	}
	if len(c.Thresholds) == 0 {
		return fmt.Errorf("experiment: no thresholds")
	}
	for _, eps := range c.Thresholds {
		if eps <= 0 {
			return fmt.Errorf("experiment: threshold %g", eps)
		}
	}
	if c.QueriesPerThreshold < 1 {
		return fmt.Errorf("experiment: %d queries", c.QueriesPerThreshold)
	}
	if c.QueryMinLen < 1 || c.QueryMaxLen < c.QueryMinLen {
		return fmt.Errorf("experiment: query lengths [%d,%d]", c.QueryMinLen, c.QueryMaxLen)
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
