package experiment

import (
	"fmt"
)

// PruningRow is one ε row of Figure 6/7: the average pruning rates of the
// Dmbr-only candidate set and the Dnorm-filtered result set, measured
// against the exact relevant set.
//
// The paper's definition (Section 4.2.1):
//
//	PR = (|total| − |retrieved|) / (|total| − |relevant|)
type PruningRow struct {
	Eps        float64
	PRmbr      float64 // pruning rate using ASmbr as "retrieved"
	PRnorm     float64 // pruning rate using ASnorm as "retrieved"
	AvgCands   float64 // mean |ASmbr| per query
	AvgMatches float64 // mean |ASnorm| per query
	AvgRel     float64 // mean |relevant| per query
	Queries    int     // queries contributing (denominator > 0)
}

// RunPruning measures Figure 6 (synthetic) / Figure 7 (video): for every
// threshold, issue every query through phases 1–3 and average the pruning
// rates. It also hard-checks the no-false-dismissal guarantee and returns
// an error if it is ever violated.
func RunPruning(b *Bench) ([]PruningRow, error) {
	total := float64(len(b.Data))
	rows := make([]PruningRow, 0, len(b.Config.Thresholds))
	for _, eps := range b.Config.Thresholds {
		var row PruningRow
		row.Eps = eps
		var prMbrSum, prNormSum float64
		for qi, q := range b.Queries {
			relevant := b.RelevantAt(qi, eps)
			cands, err := b.DB.CandidatesDmbr(q, eps)
			if err != nil {
				return nil, err
			}
			matches, _, err := b.DB.Search(q, eps)
			if err != nil {
				return nil, err
			}
			matchSet := make(map[uint32]bool, len(matches))
			for _, m := range matches {
				matchSet[m.SeqID] = true
			}
			for id := range relevant {
				if !cands[id] {
					return nil, fmt.Errorf("experiment: FALSE DISMISSAL by Dmbr: query %d, sequence %d, eps %g", qi, id, eps)
				}
				if !matchSet[id] {
					return nil, fmt.Errorf("experiment: FALSE DISMISSAL by Dnorm: query %d, sequence %d, eps %g", qi, id, eps)
				}
			}
			row.AvgCands += float64(len(cands))
			row.AvgMatches += float64(len(matches))
			row.AvgRel += float64(len(relevant))
			denom := total - float64(len(relevant))
			if denom <= 0 {
				// Everything is relevant: nothing can be pruned; the query
				// contributes no pruning-rate sample (paper averages over
				// queries where pruning is defined).
				continue
			}
			prMbrSum += (total - float64(len(cands))) / denom
			prNormSum += (total - float64(len(matches))) / denom
			row.Queries++
		}
		nq := float64(len(b.Queries))
		row.AvgCands /= nq
		row.AvgMatches /= nq
		row.AvgRel /= nq
		if row.Queries > 0 {
			row.PRmbr = prMbrSum / float64(row.Queries)
			row.PRnorm = prNormSum / float64(row.Queries)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
