package experiment

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// WritePruningReport renders Figure 6/7-style rows as a text table.
func WritePruningReport(w io.Writer, title string, rows []PruningRow) error {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "eps\tPR(Dmbr)\tPR(Dnorm)\tavg|ASmbr|\tavg|ASnorm|\tavg|relevant|")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.2f\t%.4f\t%.4f\t%.1f\t%.1f\t%.1f\n",
			r.Eps, r.PRmbr, r.PRnorm, r.AvgCands, r.AvgMatches, r.AvgRel)
	}
	return tw.Flush()
}

// WriteSIReport renders Figure 8/9-style rows.
func WriteSIReport(w io.Writer, title string, rows []SIRow) error {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "eps\tPruning Rate\tRecall")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.2f\t%.4f\t%.4f\n", r.Eps, r.PRsi, r.Recall)
	}
	return tw.Flush()
}

// WriteTimeReport renders Figure 10-style rows.
func WriteTimeReport(w io.Writer, title string, rows []TimeRow) error {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "eps\tscan/query\tproposed/query\tp50\tp95\tratio (scan/proposed)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.2f\t%v\t%v\t%v\t%v\t%.1fx\n",
			r.Eps, r.ScanTime, r.SearchTime, r.SearchP50, r.SearchP95, r.Ratio)
	}
	return tw.Flush()
}

// WriteMCostReport renders the Q_k+ε ablation.
func WriteMCostReport(w io.Writer, title string, rows []MCostRow) error {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Qk+eps\tavg MBRs/seq\tPR(Dnorm)\tsearch/query")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.2f\t%.1f\t%.4f\t%v\n", r.QueryExtent, r.AvgMBRs, r.PRnorm, r.SearchTime)
	}
	return tw.Flush()
}

// WriteMaxPointsReport renders the per-MBR cap ablation.
func WriteMaxPointsReport(w io.Writer, title string, rows []MaxPointsRow) error {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "max pts/MBR\tavg MBRs/seq\tPR(Dnorm)\tsearch/query")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.1f\t%.4f\t%v\n", r.MaxPoints, r.AvgMBRs, r.PRnorm, r.SearchTime)
	}
	return tw.Flush()
}

// WriteFanoutReport renders the index-fanout ablation.
func WriteFanoutReport(w io.Writer, title string, rows []FanoutRow) error {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "fanout\ttree height\tPR(Dnorm)\tsearch/query")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%.4f\t%v\n", r.MaxEntries, r.Height, r.PRnorm, r.SearchTime)
	}
	return tw.Flush()
}

// WriteDimReport renders the dimensionality sweep.
func WriteDimReport(w io.Writer, title string, rows []DimRow) error {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dim\tavg MBRs/seq\tPR(Dnorm)\tavg relevant\tsearch/query")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.1f\t%.4f\t%.1f\t%v\n", r.Dim, r.AvgMBRs, r.PRnorm, r.AvgRel, r.SearchTime)
	}
	return tw.Flush()
}

// WriteScalabilityReport renders the database-size sweep.
func WriteScalabilityReport(w io.Writer, title string, rows []ScalabilityRow) error {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "sequences\tMBRs\theight\tbuild\tsearch/query\tscan/query\tratio")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%v\t%v\t%v\t%.1fx\n",
			r.Sequences, r.MBRs, r.IndexHeight, r.BuildTime, r.SearchTime, r.ScanTime, r.Ratio)
	}
	return tw.Flush()
}

// WriteNoiseReport renders the query-noise sensitivity sweep.
func WriteNoiseReport(w io.Writer, title string, rows []NoiseRow) error {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "noise\tavg relevant\tavg |ASmbr|\tavg |ASnorm|\trecall")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.3f\t%.1f\t%.1f\t%.1f\t%.4f\n", r.Noise, r.AvgRel, r.AvgCands, r.AvgMatch, r.Recall)
	}
	return tw.Flush()
}

// WriteIOReport renders the page-IO cost sweep.
func WriteIOReport(w io.Writer, title string, rows []IORow) error {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "eps\tfetches/query\treads/query\thit ratio")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.2f\t%.1f\t%.1f\t%.3f\n", r.Eps, r.AvgFetches, r.AvgReads, r.HitRatio)
	}
	return tw.Flush()
}

// WriteConfig renders a Table 2-style parameter summary.
func WriteConfig(w io.Writer, cfg Config) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "workload\t%v\n", cfg.Workload)
	fmt.Fprintf(tw, "# of data sequences\t%d\n", cfg.NumSequences)
	fmt.Fprintf(tw, "length of data sequences\t%d-%d\n", cfg.MinLen, cfg.MaxLen)
	if len(cfg.Thresholds) > 0 {
		fmt.Fprintf(tw, "range of threshold values\t%.2f-%.2f\n",
			cfg.Thresholds[0], cfg.Thresholds[len(cfg.Thresholds)-1])
	}
	fmt.Fprintf(tw, "# of query sequences per eps\t%d\n", cfg.QueriesPerThreshold)
	fmt.Fprintf(tw, "query length\t%d-%d\n", cfg.QueryMinLen, cfg.QueryMaxLen)
	fmt.Fprintf(tw, "dimensionality\t%d\n", cfg.Dim)
	fmt.Fprintf(tw, "seed\t%d\n", cfg.Seed)
	return tw.Flush()
}
