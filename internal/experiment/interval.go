package experiment

import (
	"repro/internal/core"
)

// SIRow is one ε row of Figure 8/9: the pruning efficiency and recall of
// the Dnorm-approximated solution interval against the exact one.
//
// Per the paper (Section 4.2.2), with Ptotal the points of a sequence,
// Pscan the exact solution points and Pnorm the approximated ones:
//
//	PR_SI  = (|Ptotal| − |Pnorm|) / (|Ptotal| − |Pscan|)
//	Recall = |Pscan ∩ Pnorm| / |Pscan|
type SIRow struct {
	Eps     float64
	PRsi    float64
	Recall  float64
	Queries int // queries contributing non-empty denominators
}

// RunSolutionInterval measures Figure 8 (synthetic) / Figure 9 (video).
// Counts aggregate over the sequences that are exactly relevant to each
// query — the sequences a user would actually browse.
func RunSolutionInterval(b *Bench) ([]SIRow, error) {
	rows := make([]SIRow, 0, len(b.Config.Thresholds))
	for _, eps := range b.Config.Thresholds {
		var row SIRow
		row.Eps = eps
		var prSum, recallSum float64
		var prN, recallN int
		for qi, q := range b.Queries {
			matches, _, err := b.DB.Search(q, eps)
			if err != nil {
				return nil, err
			}
			approx := make(map[uint32]*core.IntervalSet, len(matches))
			for i := range matches {
				approx[matches[i].SeqID] = &matches[i].Interval
			}
			// Aggregate over every sequence the user might browse: those
			// that are exactly relevant plus those phase 3 returned (false
			// alarms still cost browsing and count against PR_SI).
			var total, scan, norm, inter int
			for si := range b.Data {
				exact := b.ExactInterval(qi, si, eps)
				nscan := exact.NumPoints()
				a, matched := approx[uint32(si)]
				if nscan == 0 && !matched {
					continue
				}
				total += b.Data[si].Len()
				scan += nscan
				if matched {
					norm += a.NumPoints()
					inter += exact.IntersectCount(a)
				}
			}
			if scan > 0 {
				recallSum += float64(inter) / float64(scan)
				recallN++
			}
			if total-scan > 0 {
				prSum += float64(total-norm) / float64(total-scan)
				prN++
			}
		}
		if prN > 0 {
			row.PRsi = prSum / float64(prN)
			row.Queries = prN
		}
		if recallN > 0 {
			row.Recall = recallSum / float64(recallN)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
