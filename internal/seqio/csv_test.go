package seqio

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := randomDataset(rng, 8, 3)
	for i := range in {
		in[i].Label = "s" + string(rune('A'+i))
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("count = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Label != in[i].Label || out[i].Len() != in[i].Len() {
			t.Fatalf("sequence %d shape mismatch", i)
		}
		for j := range in[i].Points {
			if !out[i].Points[j].Equal(in[i].Points[j]) {
				t.Fatalf("sequence %d point %d differs", i, j)
			}
		}
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := randomDataset(rng, 3, 2)
	path := filepath.Join(t.TempDir(), "d.csv")
	if err := WriteCSVFile(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0].Dim() != 2 {
		t.Errorf("read %d sequences dim %d", len(out), out[0].Dim())
	}
}

func TestCSVEmptyLabelGetsGenerated(t *testing.T) {
	in := []*core.Sequence{{Points: []geom.Point{{0.5}}}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Label == "" {
		t.Error("exported label empty")
	}
}

func TestCSVReadHeaderless(t *testing.T) {
	src := "a,0,0.1,0.2\na,1,0.3,0.4\nb,0,0.5,0.6\n"
	out, err := ReadCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Len() != 2 || out[1].Len() != 1 {
		t.Fatalf("parsed %+v", out)
	}
	if out[0].ID != 0 || out[1].ID != 1 {
		t.Error("ids not assigned")
	}
}

func TestCSVReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":              "",
		"header only":        "label,index,x1\n",
		"short row":          "a,0\n",
		"bad index":          "a,zero,0.1\n",
		"bad coordinate":     "a,0,abc\n",
		"non-zero start":     "a,3,0.1\n",
		"gap in indices":     "a,0,0.1\na,2,0.2\n",
		"dimension mismatch": "a,0,0.1,0.2\na,1,0.3\n",
	}
	for name, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCSVWriteValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err == nil {
		t.Error("empty dataset accepted")
	}
	mixed := []*core.Sequence{
		{Points: []geom.Point{{1, 2}}},
		{Points: []geom.Point{{1}}},
	}
	if err := WriteCSV(&buf, mixed); err == nil {
		t.Error("mixed dims accepted")
	}
}

func TestCSVInteropWithBinary(t *testing.T) {
	// A dataset exported to CSV and re-imported indexes identically to the
	// binary path.
	rng := rand.New(rand.NewSource(3))
	in := randomDataset(rng, 5, 3)
	for i := range in {
		in[i].Label = "seq" + string(rune('0'+i))
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	db1, _ := core.NewDatabase(core.Options{Dim: 3})
	defer db1.Close()
	db2, _ := core.NewDatabase(core.Options{Dim: 3})
	defer db2.Close()
	if _, err := db1.AddAll(in); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.AddAll(out); err != nil {
		t.Fatal(err)
	}
	if db1.NumMBRs() != db2.NumMBRs() {
		t.Errorf("MBR counts differ: %d vs %d", db1.NumMBRs(), db2.NumMBRs())
	}
}
