package seqio

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/core"
	"repro/internal/geom"
)

// CSV interchange format, one point per row:
//
//	label,index,x1,x2,...,xn
//
// Rows of one sequence share a label and appear with strictly increasing
// indices (0-based); sequences appear contiguously. A header row is
// written on export and tolerated (and skipped) on import when its third
// field does not parse as a number.

// WriteCSV exports a dataset as CSV.
func WriteCSV(w io.Writer, seqs []*core.Sequence) error {
	if len(seqs) == 0 {
		return errors.New("seqio: empty dataset")
	}
	cw := csv.NewWriter(w)
	dim := seqs[0].Dim()
	header := []string{"label", "index"}
	for k := 0; k < dim; k++ {
		header = append(header, fmt.Sprintf("x%d", k+1))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 2+dim)
	for i, s := range seqs {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("seqio: sequence %d: %w", i, err)
		}
		if s.Dim() != dim {
			return fmt.Errorf("seqio: sequence %d has dim %d, dataset dim %d", i, s.Dim(), dim)
		}
		label := s.Label
		if label == "" {
			label = fmt.Sprintf("seq-%04d", i)
		}
		for j, p := range s.Points {
			row[0] = label
			row[1] = strconv.Itoa(j)
			for k, v := range p {
				row[2+k] = strconv.FormatFloat(v, 'g', -1, 64)
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV imports a dataset from CSV. Consecutive rows with the same label
// form one sequence; dimensionality is derived from the first data row and
// enforced on the rest.
func ReadCSV(r io.Reader) ([]*core.Sequence, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for a better message
	var seqs []*core.Sequence
	var cur *core.Sequence
	dim := -1
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("seqio: csv line %d: %w", line+1, err)
		}
		line++
		if len(rec) < 3 {
			return nil, fmt.Errorf("seqio: csv line %d: %d fields, need >= 3", line, len(rec))
		}
		// Skip a header row.
		if line == 1 {
			if _, err := strconv.ParseFloat(rec[2], 64); err != nil {
				continue
			}
		}
		if dim == -1 {
			dim = len(rec) - 2
		}
		if len(rec)-2 != dim {
			return nil, fmt.Errorf("seqio: csv line %d: %d coordinates, want %d", line, len(rec)-2, dim)
		}
		label := rec[0]
		idx, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("seqio: csv line %d: bad index %q", line, rec[1])
		}
		p := make(geom.Point, dim)
		for k := 0; k < dim; k++ {
			v, err := strconv.ParseFloat(rec[2+k], 64)
			if err != nil {
				return nil, fmt.Errorf("seqio: csv line %d: bad coordinate %q", line, rec[2+k])
			}
			p[k] = v
		}
		// A new sequence begins on a label change or an index reset (the
		// latter covers datasets whose sequences share a label).
		if cur == nil || cur.Label != label || idx == 0 {
			if cur != nil {
				seqs = append(seqs, cur)
			}
			if idx != 0 {
				return nil, fmt.Errorf("seqio: csv line %d: sequence %q starts at index %d, want 0", line, label, idx)
			}
			cur = &core.Sequence{Label: label}
		} else if idx != cur.Len() {
			return nil, fmt.Errorf("seqio: csv line %d: sequence %q index %d, want %d", line, label, idx, cur.Len())
		}
		cur.Points = append(cur.Points, p)
	}
	if cur != nil {
		seqs = append(seqs, cur)
	}
	if len(seqs) == 0 {
		return nil, errors.New("seqio: csv contains no data rows")
	}
	for i := range seqs {
		seqs[i].ID = uint32(i)
	}
	return seqs, nil
}

// WriteCSVFile exports to a file.
func WriteCSVFile(path string, seqs []*core.Sequence) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, seqs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadCSVFile imports from a file.
func ReadCSVFile(path string) ([]*core.Sequence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}
