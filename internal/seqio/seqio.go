// Package seqio serializes sequence datasets in a compact little-endian
// binary format so the command-line tools can generate a corpus once and
// query it repeatedly. The format is versioned and self-describing:
//
//	magic    "MDSSEQS1" (8 bytes)
//	dim      u16
//	count    u32
//	sequences: count × {
//	    labelLen u16, label bytes,
//	    pointCount u32,
//	    pointCount × dim × f64
//	}
package seqio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/geom"
)

const magic = "MDSSEQS1"

// ErrBadFormat indicates a corrupt or foreign file.
var ErrBadFormat = errors.New("seqio: bad format")

// limits guard against allocating absurd amounts on corrupt input.
const (
	maxSequences = 10_000_000
	maxPoints    = 100_000_000
	maxLabel     = 1 << 16
)

// Write serializes the dataset to w. All sequences must share dim.
func Write(w io.Writer, seqs []*core.Sequence) error {
	if len(seqs) == 0 {
		return errors.New("seqio: empty dataset")
	}
	dim := seqs[0].Dim()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(dim)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(seqs))); err != nil {
		return err
	}
	for i, s := range seqs {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("seqio: sequence %d: %w", i, err)
		}
		if s.Dim() != dim {
			return fmt.Errorf("seqio: sequence %d has dim %d, dataset dim %d", i, s.Dim(), dim)
		}
		if len(s.Label) > maxLabel-1 {
			return fmt.Errorf("seqio: sequence %d label too long (%d bytes)", i, len(s.Label))
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(s.Label))); err != nil {
			return err
		}
		if _, err := bw.WriteString(s.Label); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(s.Len())); err != nil {
			return err
		}
		for _, p := range s.Points {
			for _, v := range p {
				if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(v)); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a dataset from r.
func Read(r io.Reader) ([]*core.Sequence, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, head)
	}
	var dim uint16
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &dim); err != nil {
		return nil, fmt.Errorf("%w: dim: %v", ErrBadFormat, err)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("%w: count: %v", ErrBadFormat, err)
	}
	if dim == 0 || count == 0 || count > maxSequences {
		return nil, fmt.Errorf("%w: dim=%d count=%d", ErrBadFormat, dim, count)
	}
	seqs := make([]*core.Sequence, 0, count)
	for i := uint32(0); i < count; i++ {
		var labelLen uint16
		if err := binary.Read(br, binary.LittleEndian, &labelLen); err != nil {
			return nil, fmt.Errorf("%w: sequence %d label length: %v", ErrBadFormat, i, err)
		}
		label := make([]byte, labelLen)
		if _, err := io.ReadFull(br, label); err != nil {
			return nil, fmt.Errorf("%w: sequence %d label: %v", ErrBadFormat, i, err)
		}
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("%w: sequence %d point count: %v", ErrBadFormat, i, err)
		}
		if n == 0 || n > maxPoints {
			return nil, fmt.Errorf("%w: sequence %d has %d points", ErrBadFormat, i, n)
		}
		// One flat allocation per sequence, re-sliced per point.
		flat := make([]float64, int(n)*int(dim))
		raw := make([]byte, 8*len(flat))
		if _, err := io.ReadFull(br, raw); err != nil {
			return nil, fmt.Errorf("%w: sequence %d points: %v", ErrBadFormat, i, err)
		}
		for j := range flat {
			flat[j] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*j:]))
		}
		pts := make([]geom.Point, n)
		for j := range pts {
			pts[j] = geom.Point(flat[j*int(dim) : (j+1)*int(dim) : (j+1)*int(dim)])
		}
		seqs = append(seqs, &core.Sequence{ID: i, Label: string(label), Points: pts})
	}
	return seqs, nil
}

// WriteFile serializes the dataset to path.
func WriteFile(path string, seqs []*core.Sequence) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, seqs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile deserializes the dataset at path.
func ReadFile(path string) ([]*core.Sequence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
