package seqio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// FuzzRead asserts the binary reader never panics and never accepts input
// that fails to round-trip: whatever it parses must re-serialize.
func FuzzRead(f *testing.F) {
	// Seed with a valid dataset, its truncations, and junk.
	rng := rand.New(rand.NewSource(1))
	var buf bytes.Buffer
	if err := Write(&buf, randomDataset(rng, 3, 2)); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("MDSSEQS1"))
	f.Add([]byte{})
	f.Add([]byte("garbage input that is not a dataset at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		seqs, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must be internally consistent and re-writable.
		var out bytes.Buffer
		if err := Write(&out, seqs); err != nil {
			t.Fatalf("parsed dataset fails to serialize: %v", err)
		}
	})
}

// FuzzReadCSV asserts the CSV reader never panics and its accepted output
// always validates.
func FuzzReadCSV(f *testing.F) {
	f.Add("label,index,x1\na,0,0.5\na,1,0.6\n")
	f.Add("a,0,0.1,0.2\nb,0,0.3,0.4\n")
	f.Add("")
	f.Add("a,zero,nan\n")
	f.Add("a,0,1e309\n")

	f.Fuzz(func(t *testing.T, data string) {
		seqs, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		for i, s := range seqs {
			if err := s.Validate(); err != nil {
				t.Fatalf("accepted invalid sequence %d: %v", i, err)
			}
		}
	})
}
