package seqio

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

func randomDataset(rng *rand.Rand, count, dim int) []*core.Sequence {
	out := make([]*core.Sequence, count)
	for i := range out {
		n := 1 + rng.Intn(50)
		pts := make([]geom.Point, n)
		for j := range pts {
			p := make(geom.Point, dim)
			for k := range p {
				p[k] = rng.Float64()
			}
			pts[j] = p
		}
		out[i] = &core.Sequence{Label: "seq", Points: pts}
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := randomDataset(rng, 20, 3)
	in[5].Label = "with a longer label / punctuation 🎬"
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("count = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Label != in[i].Label {
			t.Errorf("sequence %d label %q, want %q", i, out[i].Label, in[i].Label)
		}
		if out[i].Len() != in[i].Len() {
			t.Fatalf("sequence %d length %d, want %d", i, out[i].Len(), in[i].Len())
		}
		for j := range in[i].Points {
			if !out[i].Points[j].Equal(in[i].Points[j]) {
				t.Fatalf("sequence %d point %d differs", i, j)
			}
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := randomDataset(rng, 5, 2)
	path := filepath.Join(t.TempDir(), "data.mds")
	if err := WriteFile(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 || out[0].Dim() != 2 {
		t.Errorf("read %d sequences dim %d", len(out), out[0].Dim())
	}
}

func TestWriteValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err == nil {
		t.Error("empty dataset accepted")
	}
	mixed := []*core.Sequence{
		{Points: []geom.Point{{1, 2}}},
		{Points: []geom.Point{{1}}},
	}
	if err := Write(&buf, mixed); err == nil {
		t.Error("mixed-dim dataset accepted")
	}
	invalid := []*core.Sequence{{}}
	if err := Write(&buf, invalid); err == nil {
		t.Error("empty sequence accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a dataset"))); !errors.Is(err, ErrBadFormat) {
		t.Errorf("garbage read = %v", err)
	}
	if _, err := Read(bytes.NewReader(nil)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("empty read = %v", err)
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randomDataset(rng, 3, 3)
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) - 1, len(full) / 2, 12, 9} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestReadAssignsSequentialIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := randomDataset(rng, 4, 3)
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range out {
		if s.ID != uint32(i) {
			t.Errorf("sequence %d has ID %d", i, s.ID)
		}
	}
}
