package transform

import (
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestDFTConstantSignal(t *testing.T) {
	re, im := DFT([]float64{1, 1, 1, 1})
	if !almostEqual(re[0], 4) {
		t.Errorf("DC term = %g, want 4", re[0])
	}
	for k := 1; k < 4; k++ {
		if !almostEqual(re[k], 0) || !almostEqual(im[k], 0) {
			t.Errorf("bin %d = (%g,%g), want 0", k, re[k], im[k])
		}
	}
}

func TestDFTInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(60)
		sig := make([]float64, n)
		for i := range sig {
			sig[i] = rng.Float64()
		}
		re, im := DFT(sig)
		back := InverseDFT(re, im)
		for i := range sig {
			if math.Abs(back[i]-sig[i]) > 1e-8 {
				t.Fatalf("n=%d: idft[%d] = %g, want %g", n, i, back[i], sig[i])
			}
		}
	}
}

func TestDFTParseval(t *testing.T) {
	// Energy preservation: Σ|x|² = (1/n) Σ|X|².
	rng := rand.New(rand.NewSource(2))
	sig := make([]float64, 32)
	for i := range sig {
		sig[i] = rng.Float64()*2 - 1
	}
	var es float64
	for _, v := range sig {
		es += v * v
	}
	re, im := DFT(sig)
	var ef float64
	for k := range re {
		ef += re[k]*re[k] + im[k]*im[k]
	}
	ef /= float64(len(sig))
	if !almostEqual(es, ef) {
		t.Errorf("Parseval violated: %g vs %g", es, ef)
	}
}

func TestDFTFeatures(t *testing.T) {
	sig := []float64{0.2, 0.4, 0.6, 0.8}
	p, err := DFTFeatures(sig, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 {
		t.Fatalf("feature dim = %d", len(p))
	}
	// DC magnitude scaled: sum/sqrt(n) = 2.0/2 = 1.0
	if !almostEqual(p[0], 1.0) {
		t.Errorf("feature[0] = %g, want 1.0", p[0])
	}
	if _, err := DFTFeatures(sig, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := DFTFeatures(sig, 5); err == nil {
		t.Error("m>n accepted")
	}
}

func TestHaarRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 4, 8, 64, 128} {
		sig := make([]float64, n)
		for i := range sig {
			sig[i] = rng.Float64()
		}
		coeffs, err := HaarWavelet(sig)
		if err != nil {
			t.Fatal(err)
		}
		back, err := InverseHaar(coeffs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sig {
			if math.Abs(back[i]-sig[i]) > 1e-9 {
				t.Fatalf("n=%d: inverse[%d] = %g, want %g", n, i, back[i], sig[i])
			}
		}
	}
	if _, err := HaarWavelet(make([]float64, 6)); err == nil {
		t.Error("non-power-of-two length accepted")
	}
}

func TestHaarOrthonormalEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sig := make([]float64, 64)
	for i := range sig {
		sig[i] = rng.Float64()*2 - 1
	}
	coeffs, err := HaarWavelet(sig)
	if err != nil {
		t.Fatal(err)
	}
	var es, ec float64
	for i := range sig {
		es += sig[i] * sig[i]
		ec += coeffs[i] * coeffs[i]
	}
	if !almostEqual(es, ec) {
		t.Errorf("energy not preserved: %g vs %g", es, ec)
	}
}

func TestHaarFeatures(t *testing.T) {
	sig := []float64{1, 1, 1, 1}
	p, err := HaarFeatures(sig, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Orthonormal average of constant 1s over 4 samples: 1·√4 = 2.
	if !almostEqual(p[0], 2) {
		t.Errorf("haar[0] = %g, want 2", p[0])
	}
	if _, err := HaarFeatures(sig, 9); err == nil {
		t.Error("m>n accepted")
	}
	if _, err := HaarFeatures(make([]float64, 3), 1); err == nil {
		t.Error("bad length accepted")
	}
}

func TestSlidingWindow(t *testing.T) {
	s, err := SlidingWindow([]float64{1, 2, 3, 4, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Dim() != 3 {
		t.Fatalf("shape = (%d,%d)", s.Len(), s.Dim())
	}
	if s.Points[0][0] != 1 || s.Points[2][2] != 5 {
		t.Errorf("window contents wrong: %v", s.Points)
	}
	// Windows must not alias the input or each other.
	s.Points[0][0] = 99
	if s.Points[1][0] == 99 {
		t.Error("windows share backing storage")
	}
	if _, err := SlidingWindow([]float64{1, 2}, 3); err == nil {
		t.Error("w > len accepted")
	}
	if _, err := SlidingWindow([]float64{1, 2}, 0); err == nil {
		t.Error("w = 0 accepted")
	}
}

func TestSlidingWindowDFT(t *testing.T) {
	series := make([]float64, 40)
	for i := range series {
		series[i] = math.Sin(float64(i) / 5)
	}
	s, err := SlidingWindowDFT(series, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 33 || s.Dim() != 3 {
		t.Fatalf("shape = (%d,%d)", s.Len(), s.Dim())
	}
	if _, err := SlidingWindowDFT(series, 0, 3); err == nil {
		t.Error("w=0 accepted")
	}
	if _, err := SlidingWindowDFT(series, 8, 9); err == nil {
		t.Error("m>w accepted")
	}
}

func TestMovingAverage(t *testing.T) {
	got, err := MovingAverage([]float64{0, 3, 6}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 3, 4.5} // edges use truncated windows
	for i := range want {
		if !almostEqual(got[i], want[i]) {
			t.Errorf("ma[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if _, err := MovingAverage([]float64{1}, 2); err == nil {
		t.Error("even width accepted")
	}
	if _, err := MovingAverage([]float64{1}, -1); err == nil {
		t.Error("negative width accepted")
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 6})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almostEqual(got[i], want[i]) {
			t.Errorf("norm[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	flat := Normalize([]float64{7, 7})
	if flat[0] != 0.5 || flat[1] != 0.5 {
		t.Errorf("constant series -> %v, want 0.5s", flat)
	}
	if Normalize(nil) != nil {
		t.Error("nil series should map to nil")
	}
}

func TestSlidingWindowThenSearchPipeline(t *testing.T) {
	// End-to-end: a sine series embedded with DFT windows still finds its
	// own subsequence — the classic time-series use of the system.
	series := make([]float64, 120)
	for i := range series {
		series[i] = 0.5 + 0.4*math.Sin(float64(i)/7)
	}
	s, err := SlidingWindowDFT(series, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
