// Package transform provides the dimensionality-reduction and embedding
// tools the paper's pre-processing step names (Section 3.4.1: "various
// dimension reduction techniques such as DFT or Wavelets can be applied"),
// plus the sliding-window embedding that turns 1-D time series into
// w-dimensional sequences (Section 1 / Faloutsos et al.).
package transform

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
)

// DFT computes the discrete Fourier transform of a real signal, returning
// the real and imaginary parts. It is the O(n²) direct form — signal
// lengths in this system are window-sized (tens of samples), where the
// direct form beats FFT bookkeeping and keeps the code dependency-free.
func DFT(signal []float64) (re, im []float64) {
	n := len(signal)
	re = make([]float64, n)
	im = make([]float64, n)
	for k := 0; k < n; k++ {
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			re[k] += signal[t] * math.Cos(angle)
			im[k] += signal[t] * math.Sin(angle)
		}
	}
	return re, im
}

// InverseDFT reconstructs the signal from its spectrum.
func InverseDFT(re, im []float64) []float64 {
	n := len(re)
	out := make([]float64, n)
	for t := 0; t < n; t++ {
		for k := 0; k < n; k++ {
			angle := 2 * math.Pi * float64(k) * float64(t) / float64(n)
			out[t] += re[k]*math.Cos(angle) - im[k]*math.Sin(angle)
		}
		out[t] /= float64(n)
	}
	return out
}

// DFTFeatures reduces a signal to its first m DFT coefficient magnitudes
// scaled by 1/√n — the energy-preserving map Agrawal et al. index. m must
// not exceed len(signal).
func DFTFeatures(signal []float64, m int) (geom.Point, error) {
	if m < 1 || m > len(signal) {
		return nil, fmt.Errorf("transform: m=%d outside [1,%d]", m, len(signal))
	}
	re, im := DFT(signal)
	scale := 1 / math.Sqrt(float64(len(signal)))
	out := make(geom.Point, m)
	for k := 0; k < m; k++ {
		out[k] = math.Hypot(re[k], im[k]) * scale
	}
	return out, nil
}

// HaarWavelet computes the full Haar wavelet decomposition of a
// power-of-two-length signal: output[0] is the overall average scaled by
// √n, followed by detail coefficients coarse to fine (orthonormal
// convention: distances are preserved).
func HaarWavelet(signal []float64) ([]float64, error) {
	n := len(signal)
	if !isPow2(n) {
		return nil, fmt.Errorf("transform: haar needs power-of-two length, got %d", n)
	}
	cur := append([]float64(nil), signal...)
	out := make([]float64, n)
	for length := n; length > 1; length /= 2 {
		half := length / 2
		next := make([]float64, half)
		for i := 0; i < half; i++ {
			next[i] = (cur[2*i] + cur[2*i+1]) / math.Sqrt2
			out[half+i] = (cur[2*i] - cur[2*i+1]) / math.Sqrt2
		}
		copy(cur, next)
	}
	out[0] = cur[0]
	return out, nil
}

// InverseHaar reconstructs a signal from its Haar decomposition.
func InverseHaar(coeffs []float64) ([]float64, error) {
	n := len(coeffs)
	if !isPow2(n) {
		return nil, fmt.Errorf("transform: haar needs power-of-two length, got %d", n)
	}
	cur := make([]float64, n)
	cur[0] = coeffs[0]
	for half := 1; half < n; half *= 2 {
		next := make([]float64, 2*half)
		for i := 0; i < half; i++ {
			a, d := cur[i], coeffs[half+i]
			next[2*i] = (a + d) / math.Sqrt2
			next[2*i+1] = (a - d) / math.Sqrt2
		}
		copy(cur, next)
	}
	return cur, nil
}

// HaarFeatures keeps the first m Haar coefficients of the signal as a
// feature vector.
func HaarFeatures(signal []float64, m int) (geom.Point, error) {
	coeffs, err := HaarWavelet(signal)
	if err != nil {
		return nil, err
	}
	if m < 1 || m > len(coeffs) {
		return nil, fmt.Errorf("transform: m=%d outside [1,%d]", m, len(coeffs))
	}
	return geom.Point(coeffs[:m:m]), nil
}

// SlidingWindow embeds a 1-D series into w-dimensional space: point i is
// (series[i], …, series[i+w-1]) — the classic subsequence-matching
// embedding the paper generalizes away from.
func SlidingWindow(series []float64, w int) (*core.Sequence, error) {
	if w < 1 || w > len(series) {
		return nil, fmt.Errorf("transform: window %d outside [1,%d]", w, len(series))
	}
	pts := make([]geom.Point, len(series)-w+1)
	for i := range pts {
		pts[i] = geom.Point(append([]float64(nil), series[i:i+w]...))
	}
	return &core.Sequence{Points: pts}, nil
}

// SlidingWindowDFT embeds a 1-D series by taking each length-w window's
// first m DFT magnitudes — sliding window plus dimensionality reduction in
// one pass, the full Faloutsos-style pre-processing pipeline.
func SlidingWindowDFT(series []float64, w, m int) (*core.Sequence, error) {
	if w < 1 || w > len(series) {
		return nil, fmt.Errorf("transform: window %d outside [1,%d]", w, len(series))
	}
	pts := make([]geom.Point, len(series)-w+1)
	for i := range pts {
		p, err := DFTFeatures(series[i:i+w], m)
		if err != nil {
			return nil, err
		}
		pts[i] = p
	}
	return &core.Sequence{Points: pts}, nil
}

// MovingAverage smooths a series with a centered window of the given odd
// width (one of the paper's referenced "safe transformations").
func MovingAverage(series []float64, width int) ([]float64, error) {
	if width < 1 || width%2 == 0 {
		return nil, fmt.Errorf("transform: width %d must be odd and positive", width)
	}
	half := width / 2
	out := make([]float64, len(series))
	for i := range series {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi > len(series)-1 {
			hi = len(series) - 1
		}
		var sum float64
		for j := lo; j <= hi; j++ {
			sum += series[j]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out, nil
}

// Normalize affinely rescales a series into [0,1] (constant series map to
// all-0.5), matching the paper's normalized data space.
func Normalize(series []float64) []float64 {
	if len(series) == 0 {
		return nil
	}
	lo, hi := series[0], series[0]
	for _, v := range series {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	out := make([]float64, len(series))
	if hi == lo {
		for i := range out {
			out[i] = 0.5
		}
		return out
	}
	for i, v := range series {
		out[i] = (v - lo) / (hi - lo)
	}
	return out
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }
