package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/pager"
)

func benchTree(b *testing.B, maxEntries int) *Tree {
	b.Helper()
	pg, err := pager.Open(pager.Options{PageSize: 4096, PoolPages: 512})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { pg.Close() })
	tr, err := New(Options{Dim: 3, Pager: pg, MaxEntries: maxEntries})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func BenchmarkInsert(b *testing.B) {
	tr := benchTree(b, 0)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(randRect(rng, 3, 0.02), Ref(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBulkLoad(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	items := bulkItemsBench(rng, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tr := benchTree(b, 0)
		b.StartTimer()
		if err := tr.BulkLoad(items); err != nil {
			b.Fatal(err)
		}
	}
}

func bulkItemsBench(rng *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Rect: randRect(rng, 3, 0.02), Ref: Ref(i)}
	}
	return items
}

func BenchmarkWithinDist(b *testing.B) {
	tr := benchTree(b, 0)
	rng := rand.New(rand.NewSource(3))
	if err := tr.BulkLoad(bulkItemsBench(rng, 20000)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	count := 0
	for i := 0; i < b.N; i++ {
		q := randRect(rng, 3, 0.05)
		tr.WithinDist(q, 0.05, func(Item) bool {
			count++
			return true
		})
	}
	_ = count
}

func BenchmarkNearestNeighbors(b *testing.B) {
	tr := benchTree(b, 0)
	rng := rand.New(rand.NewSource(4))
	if err := tr.BulkLoad(bulkItemsBench(rng, 20000)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := randRect(rng, 3, 0.01)
		if _, err := tr.NearestNeighbors(q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDelete(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	items := bulkItemsBench(rng, 5000)
	tr := benchTree(b, 0)
	if err := tr.BulkLoad(items); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := items[i%len(items)]
		if err := tr.Delete(it.Rect, it.Ref); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := tr.Insert(it.Rect, it.Ref); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}
