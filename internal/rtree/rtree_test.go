package rtree

import (
	"errors"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/pager"
)

func newMemTree(t *testing.T, dim int, maxEntries int) *Tree {
	t.Helper()
	pg, err := pager.Open(pager.Options{PageSize: 4096, PoolPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pg.Close() })
	tr, err := New(Options{Dim: dim, Pager: pg, MaxEntries: maxEntries})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tr
}

func randRect(rng *rand.Rand, dim int, maxSide float64) geom.Rect {
	lo := make(geom.Point, dim)
	hi := make(geom.Point, dim)
	for i := 0; i < dim; i++ {
		lo[i] = rng.Float64() * (1 - maxSide)
		hi[i] = lo[i] + rng.Float64()*maxSide
	}
	return geom.Rect{L: lo, H: hi}
}

func TestPackRefRoundTrip(t *testing.T) {
	seq, ord := uint32(123456), uint32(789)
	s, o := PackRef(seq, ord).Unpack()
	if s != seq || o != ord {
		t.Errorf("round trip = (%d,%d), want (%d,%d)", s, o, seq, ord)
	}
	s, o = PackRef(0, 0).Unpack()
	if s != 0 || o != 0 {
		t.Errorf("zero round trip = (%d,%d)", s, o)
	}
	s, o = PackRef(^uint32(0), ^uint32(0)).Unpack()
	if s != ^uint32(0) || o != ^uint32(0) {
		t.Errorf("max round trip = (%d,%d)", s, o)
	}
}

func TestNewValidation(t *testing.T) {
	pg, _ := pager.Open(pager.Options{PageSize: 4096})
	defer pg.Close()
	if _, err := New(Options{Dim: 0, Pager: pg}); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := New(Options{Dim: 3, Pager: nil}); err == nil {
		t.Error("nil pager accepted")
	}
	if _, err := New(Options{Dim: 3, Pager: pg, MaxEntries: 10000}); err == nil {
		t.Error("oversized MaxEntries accepted")
	}
}

func TestEmptyTree(t *testing.T) {
	tr := newMemTree(t, 3, 0)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Errorf("empty tree: Len=%d Height=%d", tr.Len(), tr.Height())
	}
	found := 0
	tr.Intersect(geom.MustRect(geom.Point{0, 0, 0}, geom.Point{1, 1, 1}), func(Item) bool {
		found++
		return true
	})
	if found != 0 {
		t.Errorf("found %d items in empty tree", found)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestInsertAndIntersect(t *testing.T) {
	tr := newMemTree(t, 2, 0)
	a := geom.MustRect(geom.Point{0.1, 0.1}, geom.Point{0.2, 0.2})
	b := geom.MustRect(geom.Point{0.7, 0.7}, geom.Point{0.9, 0.9})
	if err := tr.Insert(a, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(b, 2); err != nil {
		t.Fatal(err)
	}
	var refs []Ref
	tr.Intersect(geom.MustRect(geom.Point{0, 0}, geom.Point{0.5, 0.5}), func(it Item) bool {
		refs = append(refs, it.Ref)
		return true
	})
	if len(refs) != 1 || refs[0] != 1 {
		t.Errorf("intersect refs = %v, want [1]", refs)
	}
}

func TestInsertRejectsWrongDim(t *testing.T) {
	tr := newMemTree(t, 3, 0)
	if err := tr.Insert(geom.MustRect(geom.Point{0}, geom.Point{1}), 1); err == nil {
		t.Error("wrong-dim insert accepted")
	}
	if err := tr.Insert(geom.Rect{}, 1); err == nil {
		t.Error("empty rect insert accepted")
	}
}

// insertMany inserts n random rects and returns them keyed by ref.
func insertMany(t *testing.T, tr *Tree, n int, seed int64) map[Ref]geom.Rect {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	items := make(map[Ref]geom.Rect, n)
	for i := 0; i < n; i++ {
		r := randRect(rng, tr.Dim(), 0.1)
		ref := Ref(i)
		items[ref] = r
		if err := tr.Insert(r, ref); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	return items
}

// bruteIntersect returns refs of items intersecting q, sorted.
func bruteIntersect(items map[Ref]geom.Rect, q geom.Rect) []Ref {
	var out []Ref
	for ref, r := range items {
		if r.Intersects(q) {
			out = append(out, ref)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func collectIntersect(t *testing.T, tr *Tree, q geom.Rect) []Ref {
	t.Helper()
	var out []Ref
	if err := tr.Intersect(q, func(it Item) bool {
		out = append(out, it.Ref)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func refSlicesEqual(a, b []Ref) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIntersectMatchesBruteForce(t *testing.T) {
	tr := newMemTree(t, 3, 8) // small fanout forces deep trees and splits
	items := insertMany(t, tr, 500, 1)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after inserts: %v", err)
	}
	if tr.Height() < 3 {
		t.Errorf("expected height >= 3 with fanout 8 and 500 items, got %d", tr.Height())
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		q := randRect(rng, 3, 0.3)
		want := bruteIntersect(items, q)
		got := collectIntersect(t, tr, q)
		if !refSlicesEqual(got, want) {
			t.Fatalf("trial %d: got %d refs, want %d refs", trial, len(got), len(want))
		}
	}
}

func TestWithinDistMatchesBruteForce(t *testing.T) {
	tr := newMemTree(t, 3, 8)
	items := insertMany(t, tr, 400, 3)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		q := randRect(rng, 3, 0.2)
		eps := rng.Float64() * 0.3
		var want []Ref
		for ref, r := range items {
			if r.MinDist(q) <= eps {
				want = append(want, ref)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		var got []Ref
		if err := tr.WithinDist(q, eps, func(it Item) bool {
			got = append(got, it.Ref)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if !refSlicesEqual(got, want) {
			t.Fatalf("trial %d (eps=%g): got %d, want %d", trial, eps, len(got), len(want))
		}
	}
}

func TestScanVisitsAll(t *testing.T) {
	tr := newMemTree(t, 2, 6)
	items := insertMany(t, tr, 200, 5)
	seen := make(map[Ref]bool)
	tr.Scan(func(it Item) bool {
		if seen[it.Ref] {
			t.Errorf("ref %d visited twice", it.Ref)
		}
		seen[it.Ref] = true
		if !items[it.Ref].Equal(it.Rect) {
			t.Errorf("ref %d rect mismatch", it.Ref)
		}
		return true
	})
	if len(seen) != len(items) {
		t.Errorf("Scan saw %d items, want %d", len(seen), len(items))
	}
}

func TestEarlyStop(t *testing.T) {
	tr := newMemTree(t, 2, 6)
	insertMany(t, tr, 100, 6)
	visits := 0
	tr.Scan(func(Item) bool {
		visits++
		return visits < 5
	})
	if visits != 5 {
		t.Errorf("early stop visited %d, want 5", visits)
	}
}

func TestNearestNeighbors(t *testing.T) {
	tr := newMemTree(t, 2, 8)
	items := insertMany(t, tr, 300, 7)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		q := geom.RectFromPoint(geom.Point{rng.Float64(), rng.Float64()})
		const k = 10
		got, err := tr.NearestNeighbors(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("got %d neighbors, want %d", len(got), k)
		}
		// Distances must be nondecreasing.
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist-1e-12 {
				t.Fatalf("neighbor distances not sorted: %v then %v", got[i-1].Dist, got[i].Dist)
			}
		}
		// Compare against brute force k-th distance.
		var dists []float64
		for _, r := range items {
			dists = append(dists, r.MinDist(q))
		}
		sort.Float64s(dists)
		if got[k-1].Dist > dists[k-1]+1e-12 {
			t.Fatalf("k-th neighbor dist %g > brute force %g", got[k-1].Dist, dists[k-1])
		}
	}
	if nn, _ := tr.NearestNeighbors(geom.Rect{}, 5); nn != nil {
		t.Error("empty query should yield nil")
	}
	if nn, _ := tr.NearestNeighbors(geom.RectFromPoint(geom.Point{0, 0}), 0); nn != nil {
		t.Error("k=0 should yield nil")
	}
}

func TestDelete(t *testing.T) {
	tr := newMemTree(t, 2, 6)
	items := insertMany(t, tr, 250, 9)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Delete half the items, verifying invariants and searchability.
	refs := make([]Ref, 0, len(items))
	for ref := range items {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
	for _, ref := range refs[:125] {
		if err := tr.Delete(items[ref], ref); err != nil {
			t.Fatalf("delete %d: %v", ref, err)
		}
		delete(items, ref)
	}
	if tr.Len() != 125 {
		t.Errorf("Len after deletes = %d, want 125", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after deletes: %v", err)
	}
	q := geom.MustRect(geom.Point{0, 0}, geom.Point{1, 1})
	got := collectIntersect(t, tr, q)
	want := bruteIntersect(items, q)
	if !refSlicesEqual(got, want) {
		t.Fatalf("post-delete search: got %d, want %d", len(got), len(want))
	}
}

func TestDeleteAll(t *testing.T) {
	tr := newMemTree(t, 2, 5)
	items := insertMany(t, tr, 100, 10)
	for ref, r := range items {
		if err := tr.Delete(r, ref); err != nil {
			t.Fatalf("delete %d: %v", ref, err)
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after deleting all", tr.Len())
	}
	if tr.Height() != 1 {
		t.Errorf("Height = %d after deleting all, want 1", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteNotFound(t *testing.T) {
	tr := newMemTree(t, 2, 0)
	r := geom.MustRect(geom.Point{0.1, 0.1}, geom.Point{0.2, 0.2})
	tr.Insert(r, 1)
	if err := tr.Delete(r, 2); !errors.Is(err, ErrNotFound) {
		t.Errorf("wrong-ref delete = %v, want ErrNotFound", err)
	}
	other := geom.MustRect(geom.Point{0.5, 0.5}, geom.Point{0.6, 0.6})
	if err := tr.Delete(other, 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("wrong-rect delete = %v, want ErrNotFound", err)
	}
	if tr.Len() != 1 {
		t.Errorf("failed deletes changed Len to %d", tr.Len())
	}
}

func TestInsertDeleteInterleaved(t *testing.T) {
	tr := newMemTree(t, 3, 8)
	rng := rand.New(rand.NewSource(11))
	live := make(map[Ref]geom.Rect)
	next := Ref(0)
	for step := 0; step < 1200; step++ {
		if len(live) == 0 || rng.Intn(3) != 0 {
			r := randRect(rng, 3, 0.15)
			if err := tr.Insert(r, next); err != nil {
				t.Fatal(err)
			}
			live[next] = r
			next++
		} else {
			// Delete a random live item.
			var victim Ref
			k := rng.Intn(len(live))
			for ref := range live {
				if k == 0 {
					victim = ref
					break
				}
				k--
			}
			if err := tr.Delete(live[victim], victim); err != nil {
				t.Fatalf("delete %d: %v", victim, err)
			}
			delete(live, victim)
		}
		if step%200 == 199 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if tr.Len() != len(live) {
		t.Errorf("Len = %d, want %d", tr.Len(), len(live))
	}
	q := randRect(rng, 3, 0.4)
	if got, want := collectIntersect(t, tr, q), bruteIntersect(live, q); !refSlicesEqual(got, want) {
		t.Errorf("final search mismatch: %d vs %d", len(got), len(want))
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.db")
	pg, err := pager.Open(pager.Options{PageSize: 4096, PoolPages: 64, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(Options{Dim: 3, Pager: pg})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	items := make(map[Ref]geom.Rect)
	for i := 0; i < 300; i++ {
		r := randRect(rng, 3, 0.1)
		items[Ref(i)] = r
		if err := tr.Insert(r, Ref(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := pg.Close(); err != nil {
		t.Fatal(err)
	}

	pg2, err := pager.Open(pager.Options{PageSize: 4096, PoolPages: 64, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer pg2.Close()
	tr2, err := Open(Options{Pager: pg2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if tr2.Len() != 300 || tr2.Dim() != 3 {
		t.Errorf("reopened tree Len=%d Dim=%d", tr2.Len(), tr2.Dim())
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatalf("invariants after reopen: %v", err)
	}
	q := randRect(rng, 3, 0.4)
	var got []Ref
	tr2.Intersect(q, func(it Item) bool { got = append(got, it.Ref); return true })
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if want := bruteIntersect(items, q); !refSlicesEqual(got, want) {
		t.Errorf("post-reopen search mismatch: %d vs %d", len(got), len(want))
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	pg, _ := pager.Open(pager.Options{PageSize: 4096})
	defer pg.Close()
	pg.Alloc() // page 0 with zero bytes, not a valid meta page
	if _, err := Open(Options{Pager: pg}); !errors.Is(err, ErrBadMeta) {
		t.Errorf("Open on garbage = %v, want ErrBadMeta", err)
	}
}

func TestDuplicateRectsDistinctRefs(t *testing.T) {
	tr := newMemTree(t, 2, 5)
	r := geom.MustRect(geom.Point{0.4, 0.4}, geom.Point{0.6, 0.6})
	for i := 0; i < 50; i++ {
		if err := tr.Insert(r, Ref(i)); err != nil {
			t.Fatal(err)
		}
	}
	got := collectIntersect(t, tr, r)
	if len(got) != 50 {
		t.Fatalf("found %d duplicates, want 50", len(got))
	}
	if err := tr.Delete(r, 25); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 49 {
		t.Errorf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBounds(t *testing.T) {
	tr := newMemTree(t, 2, 0)
	b, err := tr.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	if !b.IsEmpty() {
		t.Errorf("empty tree Bounds = %v", b)
	}
	tr.Insert(geom.MustRect(geom.Point{0.1, 0.2}, geom.Point{0.3, 0.4}), 1)
	tr.Insert(geom.MustRect(geom.Point{0.5, 0.6}, geom.Point{0.7, 0.8}), 2)
	b, _ = tr.Bounds()
	want := geom.MustRect(geom.Point{0.1, 0.2}, geom.Point{0.7, 0.8})
	if !b.Equal(want) {
		t.Errorf("Bounds = %v, want %v", b, want)
	}
}

func TestStatsShowBufferedSearches(t *testing.T) {
	pg, err := pager.Open(pager.Options{PageSize: 4096, PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer pg.Close()
	tr, err := New(Options{Dim: 3, Pager: pg})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 500; i++ {
		tr.Insert(randRect(rng, 3, 0.05), Ref(i))
	}
	pg.ResetStats()
	q := randRect(rng, 3, 0.1)
	tr.WithinDist(q, 0.1, func(Item) bool { return true })
	st := pg.Stats()
	if st.Fetches == 0 {
		t.Error("search made no page fetches")
	}
	// All pages fit in the pool, so a search after the build is all hits.
	if st.Reads != 0 {
		t.Errorf("search caused %d physical reads with everything resident", st.Reads)
	}
}

// TestWithinDistZeroEqualsIntersect: Dmbr(a,b) == 0 exactly when the
// rectangles intersect, so a zero-radius WithinDist must return the same
// set as Intersect.
func TestWithinDistZeroEqualsIntersect(t *testing.T) {
	tr := newMemTree(t, 3, 8)
	insertMany(t, tr, 300, 77)
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 30; trial++ {
		q := randRect(rng, 3, 0.2)
		a := collectIntersect(t, tr, q)
		var b []Ref
		if err := tr.WithinDist(q, 0, func(it Item) bool {
			b = append(b, it.Ref)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		if !refSlicesEqual(a, b) {
			t.Fatalf("trial %d: intersect %d vs withindist(0) %d", trial, len(a), len(b))
		}
	}
}

// TestNearestNeighborsConsistentWithWithinDist: the k-th neighbor's
// distance bounds the WithinDist result count from both sides.
func TestNearestNeighborsConsistentWithWithinDist(t *testing.T) {
	tr := newMemTree(t, 2, 8)
	insertMany(t, tr, 200, 79)
	rng := rand.New(rand.NewSource(80))
	for trial := 0; trial < 20; trial++ {
		q := geom.RectFromPoint(geom.Point{rng.Float64(), rng.Float64()})
		nn, err := tr.NearestNeighbors(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		radius := nn[len(nn)-1].Dist
		count := 0
		if err := tr.WithinDist(q, radius, func(Item) bool {
			count++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if count < len(nn) {
			t.Fatalf("trial %d: WithinDist(%g) found %d < k=%d", trial, radius, count, len(nn))
		}
	}
}
