package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/pager"
)

func bulkItems(rng *rand.Rand, n, dim int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Rect: randRect(rng, dim, 0.05), Ref: Ref(i)}
	}
	return items
}

func TestBulkLoadBasic(t *testing.T) {
	tr := newMemTree(t, 3, 8)
	rng := rand.New(rand.NewSource(100))
	items := bulkItems(rng, 1000, 3)
	if err := tr.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if tr.Height() < 3 {
		t.Errorf("height = %d; expected a deep tree with fanout 8", tr.Height())
	}
}

func TestBulkLoadSearchMatchesBruteForce(t *testing.T) {
	tr := newMemTree(t, 3, 8)
	rng := rand.New(rand.NewSource(101))
	items := bulkItems(rng, 800, 3)
	if err := tr.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	byRef := make(map[Ref]geom.Rect, len(items))
	for _, it := range items {
		byRef[it.Ref] = it.Rect
	}
	for trial := 0; trial < 40; trial++ {
		q := randRect(rng, 3, 0.3)
		want := bruteIntersect(byRef, q)
		got := collectIntersect(t, tr, q)
		if !refSlicesEqual(got, want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
	}
}

func TestBulkLoadEdgeSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	// Sizes around node-capacity boundaries, including tiny ones.
	for _, n := range []int{0, 1, 2, 7, 8, 9, 63, 64, 65, 100, 511} {
		tr := newMemTree(t, 2, 8)
		items := bulkItems(rng, n, 2)
		if err := tr.BulkLoad(items); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		if n > 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
		}
	}
}

func TestBulkLoadRejectsNonEmptyTree(t *testing.T) {
	tr := newMemTree(t, 2, 8)
	tr.Insert(geom.MustRect(geom.Point{0, 0}, geom.Point{0.1, 0.1}), 1)
	if err := tr.BulkLoad(bulkItems(rand.New(rand.NewSource(1)), 5, 2)); err == nil {
		t.Error("BulkLoad on non-empty tree accepted")
	}
}

func TestBulkLoadRejectsBadItems(t *testing.T) {
	tr := newMemTree(t, 3, 8)
	bad := []Item{{Rect: geom.MustRect(geom.Point{0}, geom.Point{1}), Ref: 1}}
	if err := tr.BulkLoad(bad); err == nil {
		t.Error("wrong-dim item accepted")
	}
	if err := tr.BulkLoad([]Item{{}}); err == nil {
		t.Error("empty rect accepted")
	}
}

func TestBulkLoadThenMutate(t *testing.T) {
	tr := newMemTree(t, 2, 8)
	rng := rand.New(rand.NewSource(103))
	items := bulkItems(rng, 300, 2)
	if err := tr.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	// Inserts and deletes after a bulk load must keep the tree sound.
	for i := 0; i < 100; i++ {
		if err := tr.Insert(randRect(rng, 2, 0.05), Ref(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if err := tr.Delete(items[i].Rect, items[i].Ref); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if tr.Len() != 300 {
		t.Errorf("Len = %d, want 300", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadPersistence(t *testing.T) {
	pg, err := pager.Open(pager.Options{PageSize: 4096, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer pg.Close()
	tr, err := New(Options{Dim: 3, Pager: pg, MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(104))
	items := bulkItems(rng, 500, 3)
	if err := tr.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(Options{Pager: pg, MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != 500 {
		t.Errorf("reopened Len = %d", tr2.Len())
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadPacksTighterThanIncremental(t *testing.T) {
	// STR should need no more pages than incremental insertion for the
	// same items (it packs nodes full).
	rng := rand.New(rand.NewSource(105))
	items := bulkItems(rng, 600, 3)

	pgBulk, _ := pager.Open(pager.Options{PageSize: 4096})
	defer pgBulk.Close()
	bulk, _ := New(Options{Dim: 3, Pager: pgBulk, MaxEntries: 16})
	if err := bulk.BulkLoad(items); err != nil {
		t.Fatal(err)
	}

	pgInc, _ := pager.Open(pager.Options{PageSize: 4096})
	defer pgInc.Close()
	inc, _ := New(Options{Dim: 3, Pager: pgInc, MaxEntries: 16})
	for _, it := range items {
		if err := inc.Insert(it.Rect, it.Ref); err != nil {
			t.Fatal(err)
		}
	}
	if pgBulk.NumPages() > pgInc.NumPages() {
		t.Errorf("bulk used %d pages, incremental %d", pgBulk.NumPages(), pgInc.NumPages())
	}
}

func TestChunkBalanced(t *testing.T) {
	es := make([]entry, 17)
	out := chunkBalanced(es, 8, 3)
	var sizes []int
	total := 0
	for _, g := range out {
		sizes = append(sizes, len(g))
		total += len(g)
		if len(g) < 3 {
			t.Errorf("chunk of %d below minimum 3 (sizes %v)", len(g), sizes)
		}
	}
	if total != 17 {
		t.Errorf("chunks cover %d entries, want 17", total)
	}
	sort.Ints(sizes)
	if sizes[len(sizes)-1] > 8 {
		t.Errorf("chunk exceeds max: %v", sizes)
	}
}

func TestBulkLoadLeavesMatchesBulkLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	for _, n := range []int{1, 7, 8, 9, 63, 64, 500} {
		items := bulkItems(rng, n, 3)

		ref := newMemTree(t, 3, 8)
		if err := ref.BulkLoad(items); err != nil {
			t.Fatal(err)
		}
		grouped := STRLeaves(items, 3, 8, 8/2)
		tr := newMemTree(t, 3, 8)
		if err := tr.BulkLoadLeaves(grouped); err != nil {
			t.Fatalf("n=%d: BulkLoadLeaves: %v", n, err)
		}
		if tr.Len() != ref.Len() || tr.Height() != ref.Height() {
			t.Fatalf("n=%d: shape %d/%d, want %d/%d", n, tr.Len(), tr.Height(), ref.Len(), ref.Height())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: invariants: %v", n, err)
		}
		byRef := make(map[Ref]geom.Rect, len(items))
		for _, it := range items {
			byRef[it.Ref] = it.Rect
		}
		for trial := 0; trial < 20; trial++ {
			q := randRect(rng, 3, 0.3)
			want := collectIntersect(t, ref, q)
			got := collectIntersect(t, tr, q)
			if !refSlicesEqual(got, want) {
				t.Fatalf("n=%d trial %d: got %d refs, want %d", n, trial, len(got), len(want))
			}
			brute := bruteIntersect(byRef, q)
			if !refSlicesEqual(got, brute) {
				t.Fatalf("n=%d trial %d: diverged from brute force", n, trial)
			}
		}
	}
}

func TestBulkLoadLeavesRejectsBadPages(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	items := bulkItems(rng, 20, 3)

	tr := newMemTree(t, 3, 8)
	if err := tr.BulkLoadLeaves([][]Item{items[:8], nil, items[8:16]}); err == nil {
		t.Error("empty leaf page accepted")
	}
	tr2 := newMemTree(t, 3, 8)
	if err := tr2.BulkLoadLeaves([][]Item{items[:9]}); err == nil {
		t.Error("over-capacity leaf page accepted")
	}
	tr3 := newMemTree(t, 3, 8)
	if err := tr3.Insert(items[0].Rect, items[0].Ref); err != nil {
		t.Fatal(err)
	}
	if err := tr3.BulkLoadLeaves([][]Item{items[1:8]}); err == nil {
		t.Error("bulk leaf load into a non-empty tree accepted")
	}
}
