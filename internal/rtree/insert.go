package rtree

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/pager"
)

// pendingReinsert is an entry removed during overflow treatment or tree
// condensation, waiting to be re-inserted at its original level.
type pendingReinsert struct {
	e     entry
	level uint32 // 1 = leaf level
}

// Insert adds a rectangle with its reference to the index. On a
// WAL-enabled pager the whole structural update (splits, reinserts, meta)
// is one atomic transaction.
func (t *Tree) Insert(r geom.Rect, ref Ref) error {
	if r.IsEmpty() || r.Dim() != t.dim {
		return fmt.Errorf("rtree: insert rect dim %d, want %d", r.Dim(), t.dim)
	}
	return t.inTxn(func() error {
		reinsertDone := make(map[uint32]bool)
		if err := t.insertEntry(entry{rect: r.Clone(), ref: ref}, 1, reinsertDone); err != nil {
			return err
		}
		t.size++
		t.dirtyMeta = true
		return t.flushMeta()
	})
}

// inTxn runs a structural mutation inside a pager transaction, rolling
// back pages AND the in-memory tree header on failure so the tree stays
// consistent with disk.
func (t *Tree) inTxn(fn func() error) error {
	if err := t.pg.Begin(); err != nil {
		return err
	}
	savedRoot, savedHeight, savedSize, savedFree := t.root, t.height, t.size, t.freeHead
	if err := fn(); err != nil {
		t.root, t.height, t.size, t.freeHead = savedRoot, savedHeight, savedSize, savedFree
		t.dirtyMeta = true
		if rbErr := t.pg.Rollback(); rbErr != nil {
			return fmt.Errorf("%w (rollback also failed: %v)", err, rbErr)
		}
		return err
	}
	return t.pg.Commit()
}

// insertEntry inserts e at targetLevel, draining any reinsertions that the
// R*-tree overflow treatment scheduled along the way.
func (t *Tree) insertEntry(e entry, targetLevel uint32, reinsertDone map[uint32]bool) error {
	var pending []pendingReinsert
	if err := t.insertAt(t.root, t.height, targetLevel, e, reinsertDone, &pending); err != nil {
		return err
	}
	// Drain deferred reinserts. Each may itself overflow; with its level
	// already marked in reinsertDone, further overflow splits instead of
	// reinserting again, so this terminates.
	for len(pending) > 0 {
		p := pending[0]
		pending = pending[1:]
		if err := t.insertAt(t.root, t.height, p.level, p.e, reinsertDone, &pending); err != nil {
			return err
		}
	}
	return nil
}

// insertAt descends from page (at the given level) to targetLevel, inserts
// e there, and handles overflow on the way back up. It returns the node's
// new MBR and, when the node split, the entry describing the new sibling.
func (t *Tree) insertAt(page pager.PageID, level, targetLevel uint32, e entry,
	reinsertDone map[uint32]bool, pending *[]pendingReinsert) error {
	newMBR, split, err := t.insertRec(page, level, targetLevel, e, reinsertDone, pending)
	if err != nil {
		return err
	}
	_ = newMBR
	if split != nil {
		// Root split: grow the tree by one level.
		oldRoot := t.root
		newRootPage, err := t.allocNodePage()
		if err != nil {
			return err
		}
		oldRootNode, err := t.readNode(oldRoot)
		if err != nil {
			return err
		}
		root := &node{
			page: newRootPage,
			leaf: false,
			entries: []entry{
				{rect: oldRootNode.mbr(), child: oldRoot},
				*split,
			},
		}
		if err := t.writeNode(root); err != nil {
			return err
		}
		t.root = newRootPage
		t.height++
		t.dirtyMeta = true
	}
	return nil
}

func (t *Tree) insertRec(page pager.PageID, level, targetLevel uint32, e entry,
	reinsertDone map[uint32]bool, pending *[]pendingReinsert) (geom.Rect, *entry, error) {
	n, err := t.readNode(page)
	if err != nil {
		return geom.Rect{}, nil, err
	}
	if level == targetLevel {
		n.entries = append(n.entries, e)
	} else {
		i := t.chooseSubtree(n, e.rect, level-1 == 1)
		childMBR, childSplit, err := t.insertRec(n.entries[i].child, level-1, targetLevel, e, reinsertDone, pending)
		if err != nil {
			return geom.Rect{}, nil, err
		}
		n.entries[i].rect = childMBR
		if childSplit != nil {
			n.entries = append(n.entries, *childSplit)
		}
	}

	if len(n.entries) <= t.maxEntries {
		if err := t.writeNode(n); err != nil {
			return geom.Rect{}, nil, err
		}
		return n.mbr(), nil, nil
	}

	// Overflow treatment (R*): on the first overflow at a non-root level
	// within one logical insertion, remove the p entries farthest from the
	// node center and schedule them for reinsertion; otherwise split.
	if page != t.root && !reinsertDone[level] {
		reinsertDone[level] = true
		kept, removed := t.pickReinsertVictims(n)
		n.entries = kept
		if err := t.writeNode(n); err != nil {
			return geom.Rect{}, nil, err
		}
		for _, r := range removed {
			*pending = append(*pending, pendingReinsert{e: r, level: level})
		}
		return n.mbr(), nil, nil
	}

	left, right, err := t.splitNode(n)
	if err != nil {
		return geom.Rect{}, nil, err
	}
	sibling := entry{rect: right.mbr(), child: right.page}
	return left.mbr(), &sibling, nil
}

// chooseSubtree implements the R*-tree CS2 step: when the children are
// leaves, pick the entry needing least overlap enlargement (ties: least
// area enlargement, then least area); otherwise least area enlargement.
func (t *Tree) chooseSubtree(n *node, r geom.Rect, childrenAreLeaves bool) int {
	best := 0
	if childrenAreLeaves {
		bestOverlap, bestEnlarge, bestArea := +1e308, +1e308, +1e308
		for i := range n.entries {
			enlarged := n.entries[i].rect.Union(r)
			var overlapDelta float64
			for j := range n.entries {
				if j == i {
					continue
				}
				overlapDelta += enlarged.IntersectionVolume(n.entries[j].rect) -
					n.entries[i].rect.IntersectionVolume(n.entries[j].rect)
			}
			enlarge := enlarged.Volume() - n.entries[i].rect.Volume()
			area := n.entries[i].rect.Volume()
			if overlapDelta < bestOverlap ||
				(overlapDelta == bestOverlap && enlarge < bestEnlarge) ||
				(overlapDelta == bestOverlap && enlarge == bestEnlarge && area < bestArea) {
				best, bestOverlap, bestEnlarge, bestArea = i, overlapDelta, enlarge, area
			}
		}
		return best
	}
	bestEnlarge, bestArea := +1e308, +1e308
	for i := range n.entries {
		enlarge := n.entries[i].rect.Enlargement(r)
		area := n.entries[i].rect.Volume()
		if enlarge < bestEnlarge || (enlarge == bestEnlarge && area < bestArea) {
			best, bestEnlarge, bestArea = i, enlarge, area
		}
	}
	return best
}

// pickReinsertVictims removes the reinsertFraction of entries whose centers
// lie farthest from the node MBR's center, returning (kept, removed) with
// removed ordered closest-first ("close reinsert"). Centers are computed
// into reused buffers (CenterInto) and compared by squared distance —
// order-preserving, so the sort is the same while skipping one allocation
// and one sqrt per entry.
func (t *Tree) pickReinsertVictims(n *node) (kept, removed []entry) {
	center := make(geom.Point, t.dim)
	n.mbr().CenterInto(center)
	ec := make(geom.Point, t.dim)
	type distEntry struct {
		d float64 // squared center distance
		e entry
	}
	des := make([]distEntry, len(n.entries))
	for i, e := range n.entries {
		e.rect.CenterInto(ec)
		des[i] = distEntry{d: ec.DistSq(center), e: e}
	}
	sort.Slice(des, func(i, j int) bool { return des[i].d < des[j].d })
	p := int(reinsertFraction * float64(len(des)))
	if p < 1 {
		p = 1
	}
	cut := len(des) - p
	for _, de := range des[:cut] {
		kept = append(kept, de.e)
	}
	for _, de := range des[cut:] {
		removed = append(removed, de.e)
	}
	return kept, removed
}

// splitNode splits an overflowing node with the R*-tree topological split:
// choose the axis minimizing total margin over all legal distributions,
// then the distribution minimizing overlap (ties: total area). The left
// half reuses n's page; the right half gets a fresh page.
func (t *Tree) splitNode(n *node) (left, right *node, err error) {
	entries := n.entries
	m := t.minEntries
	M := len(entries) - 1 // == maxEntries; len is M+1

	axis := t.chooseSplitAxis(entries, m, M)

	// Along the chosen axis, evaluate both sort orders and all legal split
	// indices; minimize overlap, then total area.
	bestOverlap, bestArea := +1e308, +1e308
	var bestSorted []entry
	bestK := -1
	for _, byUpper := range []bool{false, true} {
		sorted := make([]entry, len(entries))
		copy(sorted, entries)
		sortEntriesAxis(sorted, axis, byUpper)
		for k := m; k <= M+1-m; k++ {
			g1 := boundOf(sorted[:k])
			g2 := boundOf(sorted[k:])
			overlap := g1.IntersectionVolume(g2)
			area := g1.Volume() + g2.Volume()
			if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
				bestOverlap, bestArea = overlap, area
				bestSorted = sorted
				bestK = k
			}
		}
	}

	rightPage, err := t.allocNodePage()
	if err != nil {
		return nil, nil, err
	}
	left = &node{page: n.page, leaf: n.leaf, entries: append([]entry(nil), bestSorted[:bestK]...)}
	right = &node{page: rightPage, leaf: n.leaf, entries: append([]entry(nil), bestSorted[bestK:]...)}
	if err := t.writeNode(left); err != nil {
		return nil, nil, err
	}
	if err := t.writeNode(right); err != nil {
		return nil, nil, err
	}
	return left, right, nil
}

// chooseSplitAxis returns the axis with the minimum sum of group margins
// over every legal distribution in both sort orders.
func (t *Tree) chooseSplitAxis(entries []entry, m, M int) int {
	bestAxis, bestMargin := 0, +1e308
	tmp := make([]entry, len(entries))
	for axis := 0; axis < t.dim; axis++ {
		var marginSum float64
		for _, byUpper := range []bool{false, true} {
			copy(tmp, entries)
			sortEntriesAxis(tmp, axis, byUpper)
			for k := m; k <= M+1-m; k++ {
				marginSum += boundOf(tmp[:k]).Margin() + boundOf(tmp[k:]).Margin()
			}
		}
		if marginSum < bestMargin {
			bestAxis, bestMargin = axis, marginSum
		}
	}
	return bestAxis
}

func sortEntriesAxis(es []entry, axis int, byUpper bool) {
	sort.SliceStable(es, func(i, j int) bool {
		if byUpper {
			if es[i].rect.H[axis] != es[j].rect.H[axis] {
				return es[i].rect.H[axis] < es[j].rect.H[axis]
			}
			return es[i].rect.L[axis] < es[j].rect.L[axis]
		}
		if es[i].rect.L[axis] != es[j].rect.L[axis] {
			return es[i].rect.L[axis] < es[j].rect.L[axis]
		}
		return es[i].rect.H[axis] < es[j].rect.H[axis]
	})
}

func boundOf(es []entry) geom.Rect {
	var r geom.Rect
	for i := range es {
		r.ExtendRect(es[i].rect)
	}
	return r
}
