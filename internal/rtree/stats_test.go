package rtree

import (
	"math/rand"
	"testing"
)

func TestStatsShape(t *testing.T) {
	tr := newMemTree(t, 3, 8)
	rng := rand.New(rand.NewSource(130))
	items := bulkItems(rng, 640, 3)
	if err := tr.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 640 {
		t.Errorf("Entries = %d", st.Entries)
	}
	if st.Height != tr.Height() {
		t.Errorf("Height = %d, want %d", st.Height, tr.Height())
	}
	if st.LeafNodes < 640/8 {
		t.Errorf("LeafNodes = %d", st.LeafNodes)
	}
	if st.LeafFill <= 0 || st.LeafFill > 1 {
		t.Errorf("LeafFill = %g", st.LeafFill)
	}
	// STR packs essentially full leaves.
	if st.LeafFill < 0.9 {
		t.Errorf("bulk-loaded LeafFill = %g, want >= 0.9", st.LeafFill)
	}
}

func TestStatsBulkPacksTighterThanIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	items := bulkItems(rng, 500, 3)

	bulk := newMemTree(t, 3, 16)
	if err := bulk.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	inc := newMemTree(t, 3, 16)
	for _, it := range items {
		if err := inc.Insert(it.Rect, it.Ref); err != nil {
			t.Fatal(err)
		}
	}
	bst, err := bulk.Stats()
	if err != nil {
		t.Fatal(err)
	}
	ist, err := inc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if bst.LeafFill < ist.LeafFill {
		t.Errorf("bulk LeafFill %g < incremental %g", bst.LeafFill, ist.LeafFill)
	}
}

func TestStatsEmptyTree(t *testing.T) {
	tr := newMemTree(t, 2, 0)
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 0 || st.LeafNodes != 1 || st.InternalNodes != 0 {
		t.Errorf("empty stats = %+v", st)
	}
	if st.InternalFill != 0 {
		t.Errorf("InternalFill = %g on leaf-only tree", st.InternalFill)
	}
}
