package rtree

import (
	"repro/internal/geom"
	"repro/internal/pager"
)

// Delete removes the entry with exactly this rectangle and reference.
// It returns ErrNotFound when no such entry exists. On a WAL-enabled
// pager the condensation and reinsertions are one atomic transaction.
func (t *Tree) Delete(r geom.Rect, ref Ref) error {
	return t.inTxn(func() error { return t.deleteLocked(r, ref) })
}

func (t *Tree) deleteLocked(r geom.Rect, ref Ref) error {
	var orphans []pendingReinsert
	found, _, underflow, err := t.deleteRec(t.root, t.height, r, ref, &orphans)
	if err != nil {
		return err
	}
	if !found {
		return ErrNotFound
	}
	_ = underflow // root may not underflow structurally; handled below

	// Shrink the tree: while the root is internal with a single child,
	// promote the child.
	for t.height > 1 {
		root, err := t.readNode(t.root)
		if err != nil {
			return err
		}
		if len(root.entries) != 1 {
			break
		}
		child := root.entries[0].child
		if err := t.freeNodePage(t.root); err != nil {
			return err
		}
		t.root = child
		t.height--
		t.dirtyMeta = true
	}

	// Reinsert orphaned entries at their original levels.
	reinsertDone := make(map[uint32]bool)
	for len(orphans) > 0 {
		o := orphans[0]
		orphans = orphans[1:]
		// Condensation can have lowered the tree below an orphan's level;
		// clamp so internal entries rejoin at the treetop if needed.
		lvl := o.level
		if lvl > t.height {
			lvl = t.height
		}
		if err := t.insertEntry(o.e, lvl, reinsertDone); err != nil {
			return err
		}
	}

	t.size--
	t.dirtyMeta = true
	return t.flushMeta()
}

// deleteRec removes (r, ref) from the subtree rooted at page. It reports
// whether the entry was found, the node's new MBR, and whether the node now
// underflows (so the parent should dissolve it).
func (t *Tree) deleteRec(page pager.PageID, level uint32, r geom.Rect, ref Ref,
	orphans *[]pendingReinsert) (found bool, newMBR geom.Rect, underflow bool, err error) {
	n, err := t.readNode(page)
	if err != nil {
		return false, geom.Rect{}, false, err
	}
	if n.leaf {
		for i := range n.entries {
			if n.entries[i].ref == ref && n.entries[i].rect.Equal(r) {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				if err := t.writeNode(n); err != nil {
					return false, geom.Rect{}, false, err
				}
				return true, n.mbr(), len(n.entries) < t.minEntries, nil
			}
		}
		return false, n.mbr(), false, nil
	}
	for i := range n.entries {
		if !n.entries[i].rect.ContainsRect(r) && !n.entries[i].rect.Intersects(r) {
			continue
		}
		childFound, childMBR, childUnderflow, err := t.deleteRec(n.entries[i].child, level-1, r, ref, orphans)
		if err != nil {
			return false, geom.Rect{}, false, err
		}
		if !childFound {
			continue
		}
		if childUnderflow {
			// Dissolve the child: orphan its remaining entries and drop it.
			child, err := t.readNode(n.entries[i].child)
			if err != nil {
				return false, geom.Rect{}, false, err
			}
			for _, ce := range child.entries {
				*orphans = append(*orphans, pendingReinsert{e: ce, level: level - 1})
			}
			if err := t.freeNodePage(child.page); err != nil {
				return false, geom.Rect{}, false, err
			}
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
		} else {
			n.entries[i].rect = childMBR
		}
		if err := t.writeNode(n); err != nil {
			return false, geom.Rect{}, false, err
		}
		minHere := t.minEntries
		if page == t.root {
			minHere = 1 // the root may hold as few as one entry
		}
		return true, n.mbr(), len(n.entries) < minHere, nil
	}
	return false, n.mbr(), false, nil
}
