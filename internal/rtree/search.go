package rtree

import (
	"container/heap"

	"repro/internal/geom"
	"repro/internal/pager"
)

// Visitor receives matching items during a search. Returning false stops
// the traversal early.
type Visitor func(Item) bool

// Intersect visits every indexed entry whose rectangle intersects q.
func (t *Tree) Intersect(q geom.Rect, visit Visitor) error {
	if q.IsEmpty() {
		return nil
	}
	_, err := t.searchRec(t.root, func(r geom.Rect) bool { return r.Intersects(q) }, visit)
	return err
}

// WithinDist visits every indexed entry whose rectangle lies within
// Euclidean minimum distance eps of q — the paper's phase-2 predicate
// Dmbr(mbr_i(Q), mbr_j(S)) <= ε. Subtrees whose bounding rectangles are
// farther than eps cannot contain matches (MinDist to a containing
// rectangle never exceeds MinDist to the contained one) and are pruned.
//
// This is the visitor-based compatibility form; it materializes an Item
// (cloned rectangle) per accepted entry and walks pages through the
// pager. Hot paths that only need the references should use
// AppendWithinDist, the allocation-free squared-space kernel.
func (t *Tree) WithinDist(q geom.Rect, eps float64, visit Visitor) error {
	if q.IsEmpty() {
		return nil
	}
	_, err := t.searchRec(t.root, func(r geom.Rect) bool { return r.MinDist(q) <= eps }, visit)
	return err
}

// AppendWithinDist appends to out the Ref of every indexed entry whose
// rectangle lies within Euclidean minimum distance eps of q, returning
// the grown slice. It accepts the same entries WithinDist visits (in the
// same DFS order; the sqrt-space and squared-space predicates can only
// disagree on entries whose distance is within one rounding ulp of ε
// exactly) but runs entirely in squared-distance space — each node
// scan compares MinDistSq against ε² over the contiguous bound array of
// the cached flat node, so a steady-state call performs no allocation
// (when out has capacity) and no pager access. This is the phase-2
// pruning kernel behind core's range search.
func (t *Tree) AppendWithinDist(q geom.Rect, eps float64, out []Ref) ([]Ref, error) {
	if q.IsEmpty() {
		return out, nil
	}
	return t.appendWithin(t.root, q.L, q.H, eps*eps, out)
}

// appendWithin scans one cached flat node, descending into children whose
// bounds pass the squared-distance predicate. The dimension switch is
// hoisted per node so the common low-dimensional scans run as unrolled
// strided loops over the bound array.
func (t *Tree) appendWithin(page pager.PageID, qL, qH []float64, eps2 float64, out []Ref) ([]Ref, error) {
	fn, err := t.readFlat(page)
	if err != nil {
		return out, err
	}
	d := t.dim
	bounds := fn.bounds
	var derr error
	descend := func(e int) bool {
		if fn.leaf {
			out = append(out, Ref(fn.pay[e]))
			return true
		}
		out, derr = t.appendWithin(pager.PageID(fn.pay[e]), qL, qH, eps2, out)
		return derr == nil
	}
	switch d {
	case 2:
		q0l, q1l, q0h, q1h := qL[0], qL[1], qH[0], qH[1]
		for e := 0; e < fn.count; e++ {
			o := e * 4
			d2 := gapSq(bounds[o], bounds[o+2], q0l, q0h) +
				gapSq(bounds[o+1], bounds[o+3], q1l, q1h)
			if d2 <= eps2 && !descend(e) {
				return out, derr
			}
		}
	case 4:
		q0l, q1l, q2l, q3l := qL[0], qL[1], qL[2], qL[3]
		q0h, q1h, q2h, q3h := qH[0], qH[1], qH[2], qH[3]
		for e := 0; e < fn.count; e++ {
			o := e * 8
			d2 := gapSq(bounds[o], bounds[o+4], q0l, q0h) +
				gapSq(bounds[o+1], bounds[o+5], q1l, q1h) +
				gapSq(bounds[o+2], bounds[o+6], q2l, q2h) +
				gapSq(bounds[o+3], bounds[o+7], q3l, q3h)
			if d2 <= eps2 && !descend(e) {
				return out, derr
			}
		}
	default:
		for e := 0; e < fn.count; e++ {
			o := e * 2 * d
			if geom.MinDistSqLH(qL, qH, bounds[o:o+d], bounds[o+d:o+2*d]) <= eps2 && !descend(e) {
				return out, derr
			}
		}
	}
	return out, nil
}

// gapSq is the per-axis squared projection gap between entry bounds
// [el,eh] and query bounds [ql,qh] — 0 when the projections overlap.
func gapSq(el, eh, ql, qh float64) float64 {
	var x float64
	switch {
	case eh < ql:
		x = ql - eh
	case qh < el:
		x = el - qh
	}
	return x * x
}

// searchRec walks the subtree, descending into rectangles accepted by
// accept, and reports whether traversal should continue.
func (t *Tree) searchRec(page pager.PageID, accept func(geom.Rect) bool, visit Visitor) (bool, error) {
	n, err := t.readNode(page)
	if err != nil {
		return false, err
	}
	for i := range n.entries {
		e := &n.entries[i]
		if !accept(e.rect) {
			continue
		}
		if n.leaf {
			if !visit(Item{Rect: e.rect.Clone(), Ref: e.ref}) {
				return false, nil
			}
			continue
		}
		cont, err := t.searchRec(e.child, accept, visit)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// Scan visits every indexed entry in storage order.
func (t *Tree) Scan(visit Visitor) error {
	_, err := t.searchRec(t.root, func(geom.Rect) bool { return true }, visit)
	return err
}

// nnItem is one element of the incremental nearest-neighbor priority queue.
type nnItem struct {
	dist float64
	leaf bool // true when this is a data entry, not a node
	page pager.PageID
	item Item
}

type nnHeap []nnItem

func (h nnHeap) Len() int            { return len(h) }
func (h nnHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(nnItem)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Neighbor is one result of a nearest-neighbor query.
type Neighbor struct {
	// Item is the indexed entry.
	Item Item
	// Dist is the MinDist from the query rectangle to the item rectangle.
	Dist float64
}

// NearestNeighbors returns the k indexed entries with the smallest MinDist
// to q, in nondecreasing distance order (fewer if the tree holds fewer).
// It uses the Hjaltason–Samet incremental best-first traversal.
func (t *Tree) NearestNeighbors(q geom.Rect, k int) ([]Neighbor, error) {
	if k <= 0 || q.IsEmpty() {
		return nil, nil
	}
	h := &nnHeap{{dist: 0, page: t.root}}
	var out []Neighbor
	for h.Len() > 0 && len(out) < k {
		top := heap.Pop(h).(nnItem)
		if top.leaf {
			out = append(out, Neighbor{Item: top.item, Dist: top.dist})
			continue
		}
		n, err := t.readNode(top.page)
		if err != nil {
			return nil, err
		}
		for i := range n.entries {
			e := &n.entries[i]
			d := e.rect.MinDist(q)
			if n.leaf {
				heap.Push(h, nnItem{dist: d, leaf: true, item: Item{Rect: e.rect.Clone(), Ref: e.ref}})
			} else {
				heap.Push(h, nnItem{dist: d, page: e.child})
			}
		}
	}
	return out, nil
}
