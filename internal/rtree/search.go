package rtree

import (
	"container/heap"

	"repro/internal/geom"
	"repro/internal/pager"
)

// Visitor receives matching items during a search. Returning false stops
// the traversal early.
type Visitor func(Item) bool

// Intersect visits every indexed entry whose rectangle intersects q.
func (t *Tree) Intersect(q geom.Rect, visit Visitor) error {
	if q.IsEmpty() {
		return nil
	}
	_, err := t.searchRec(t.root, func(r geom.Rect) bool { return r.Intersects(q) }, visit)
	return err
}

// WithinDist visits every indexed entry whose rectangle lies within
// Euclidean minimum distance eps of q — the paper's phase-2 predicate
// Dmbr(mbr_i(Q), mbr_j(S)) <= ε. Subtrees whose bounding rectangles are
// farther than eps cannot contain matches (MinDist to a containing
// rectangle never exceeds MinDist to the contained one) and are pruned.
func (t *Tree) WithinDist(q geom.Rect, eps float64, visit Visitor) error {
	if q.IsEmpty() {
		return nil
	}
	_, err := t.searchRec(t.root, func(r geom.Rect) bool { return r.MinDist(q) <= eps }, visit)
	return err
}

// searchRec walks the subtree, descending into rectangles accepted by
// accept, and reports whether traversal should continue.
func (t *Tree) searchRec(page pager.PageID, accept func(geom.Rect) bool, visit Visitor) (bool, error) {
	n, err := t.readNode(page)
	if err != nil {
		return false, err
	}
	for i := range n.entries {
		e := &n.entries[i]
		if !accept(e.rect) {
			continue
		}
		if n.leaf {
			if !visit(Item{Rect: e.rect.Clone(), Ref: e.ref}) {
				return false, nil
			}
			continue
		}
		cont, err := t.searchRec(e.child, accept, visit)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// Scan visits every indexed entry in storage order.
func (t *Tree) Scan(visit Visitor) error {
	_, err := t.searchRec(t.root, func(geom.Rect) bool { return true }, visit)
	return err
}

// nnItem is one element of the incremental nearest-neighbor priority queue.
type nnItem struct {
	dist float64
	leaf bool // true when this is a data entry, not a node
	page pager.PageID
	item Item
}

type nnHeap []nnItem

func (h nnHeap) Len() int            { return len(h) }
func (h nnHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(nnItem)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Neighbor is one result of a nearest-neighbor query.
type Neighbor struct {
	Item Item
	Dist float64 // MinDist from the query rectangle to the item rectangle
}

// NearestNeighbors returns the k indexed entries with the smallest MinDist
// to q, in nondecreasing distance order (fewer if the tree holds fewer).
// It uses the Hjaltason–Samet incremental best-first traversal.
func (t *Tree) NearestNeighbors(q geom.Rect, k int) ([]Neighbor, error) {
	if k <= 0 || q.IsEmpty() {
		return nil, nil
	}
	h := &nnHeap{{dist: 0, page: t.root}}
	var out []Neighbor
	for h.Len() > 0 && len(out) < k {
		top := heap.Pop(h).(nnItem)
		if top.leaf {
			out = append(out, Neighbor{Item: top.item, Dist: top.dist})
			continue
		}
		n, err := t.readNode(top.page)
		if err != nil {
			return nil, err
		}
		for i := range n.entries {
			e := &n.entries[i]
			d := e.rect.MinDist(q)
			if n.leaf {
				heap.Push(h, nnItem{dist: d, leaf: true, item: Item{Rect: e.rect.Clone(), Ref: e.ref}})
			} else {
				heap.Push(h, nnItem{dist: d, page: e.child})
			}
		}
	}
	return out, nil
}
