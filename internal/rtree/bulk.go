package rtree

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// BulkLoad replaces an empty tree's contents with the given items using
// Sort-Tile-Recursive packing (Leutenegger et al., 1997): entries are
// sorted by center along dimension 0, tiled into slabs, recursively tiled
// along the remaining dimensions, and packed into full nodes; upper levels
// are packed the same way over the child MBRs. The result is a compact
// index built in O(n log n) — far cheaper than n one-at-a-time inserts —
// which mdseq uses when indexing a whole corpus at once.
//
// The tree must be empty; partially filled trees return an error.
func (t *Tree) BulkLoad(items []Item) error {
	if t.size != 0 {
		return errors.New("rtree: BulkLoad requires an empty tree")
	}
	if len(items) == 0 {
		return nil
	}
	return t.inTxn(func() error { return t.bulkLoadLocked(items) })
}

func (t *Tree) bulkLoadLocked(items []Item) error {
	entries := make([]entry, len(items))
	for i, it := range items {
		if it.Rect.IsEmpty() || it.Rect.Dim() != t.dim {
			return fmt.Errorf("rtree: bulk item %d rect dim %d, want %d", i, it.Rect.Dim(), t.dim)
		}
		entries[i] = entry{rect: it.Rect.Clone(), ref: it.Ref}
	}
	return t.packLocked(strTile(entries, 0, t.dim, t.maxEntries, t.minEntries), len(items))
}

// BulkLoadLeaves replaces an empty tree's contents with pre-grouped leaf
// pages: each inner slice becomes one leaf node verbatim, and only the
// upper levels are packed by STR tiling over the leaf MBRs. It is the
// load half of the v2 segment store's packed-tree section — the leaf
// grouping was computed once by STRLeaves at build time, so reloading
// skips the leaf-level sorts (the bulk of BulkLoad's O(n log n)). Every
// leaf must hold between 1 and MaxEntries items; the caller owns
// coverage/uniqueness validation of the refs. A grouping produced by
// STRLeaves with this tree's fanout yields exactly the tree BulkLoad
// would build.
func (t *Tree) BulkLoadLeaves(leaves [][]Item) error {
	if t.size != 0 {
		return errors.New("rtree: BulkLoadLeaves requires an empty tree")
	}
	total := 0
	for _, leaf := range leaves {
		total += len(leaf)
	}
	if total == 0 {
		return nil
	}
	return t.inTxn(func() error {
		groups := make([][]entry, len(leaves))
		for li, leaf := range leaves {
			if len(leaf) == 0 || len(leaf) > t.maxEntries {
				return fmt.Errorf("rtree: packed leaf %d holds %d entries, want 1..%d", li, len(leaf), t.maxEntries)
			}
			g := make([]entry, len(leaf))
			for i, it := range leaf {
				if it.Rect.IsEmpty() || it.Rect.Dim() != t.dim {
					return fmt.Errorf("rtree: packed leaf %d item %d rect dim %d, want %d", li, i, it.Rect.Dim(), t.dim)
				}
				g[i] = entry{rect: it.Rect.Clone(), ref: it.Ref}
			}
			groups[li] = g
		}
		return t.packLocked(groups, total)
	})
}

// packLocked writes the given leaf-level groups as leaf nodes and packs
// every upper level by STR tiling over the children's MBRs, installing
// the result as the tree's contents. Shared by bulkLoadLocked (which
// tiles the leaf level itself) and BulkLoadLeaves (which is handed it).
func (t *Tree) packLocked(groups [][]entry, total int) error {
	// Free the placeholder root; the pack builds fresh pages.
	if err := t.freeNodePage(t.root); err != nil {
		return err
	}

	leaf := true
	height := uint32(0)
	var rootPage = t.root
	for {
		height++
		parents := make([]entry, 0, len(groups))
		for _, g := range groups {
			page, err := t.allocNodePage()
			if err != nil {
				return err
			}
			n := &node{page: page, leaf: leaf, entries: g}
			if err := t.writeNode(n); err != nil {
				return err
			}
			parents = append(parents, entry{rect: n.mbr(), child: page})
		}
		if len(parents) == 1 {
			rootPage = parents[0].child
			break
		}
		groups = strTile(parents, 0, t.dim, t.maxEntries, t.minEntries)
		leaf = false
	}

	t.root = rootPage
	t.height = height
	t.size = uint64(total)
	t.dirtyMeta = true
	return t.flushMeta()
}

// STRLeaves returns the leaf-level grouping Sort-Tile-Recursive packing
// produces for items under the given fanout — exactly the leaves
// BulkLoad would build on a tree with maxEntries/minEntries capacity.
// The v2 segment store computes it once at build time and serializes the
// grouping, so a later BulkLoadLeaves can pack the same tree without
// re-sorting. The input slice is not modified; the returned groups hold
// copies of the items (rects still aliased, not cloned).
func STRLeaves(items []Item, dim, maxEntries, minEntries int) [][]Item {
	entries := make([]entry, len(items))
	for i, it := range items {
		entries[i] = entry{rect: it.Rect, ref: it.Ref}
	}
	groups := strTile(entries, 0, dim, maxEntries, minEntries)
	out := make([][]Item, len(groups))
	for gi, g := range groups {
		leaf := make([]Item, len(g))
		for i, e := range g {
			leaf[i] = Item{Rect: e.rect, Ref: e.ref}
		}
		out[gi] = leaf
	}
	return out
}

// strTile recursively tiles entries into groups of at most M (and, except
// possibly in degenerate cases, at least m) by sorting on successive
// center coordinates.
func strTile(es []entry, d, dim, M, m int) [][]entry {
	if len(es) <= M {
		return [][]entry{es}
	}
	sortByCenter(es, d)
	if d == dim-1 {
		return chunkBalanced(es, M, m)
	}
	nGroups := (len(es) + M - 1) / M
	slabs := int(math.Ceil(math.Pow(float64(nGroups), 1/float64(dim-d))))
	if slabs < 1 {
		slabs = 1
	}
	slabSize := (len(es) + slabs - 1) / slabs
	var out [][]entry
	for off := 0; off < len(es); off += slabSize {
		end := off + slabSize
		if end > len(es) {
			end = len(es)
		}
		out = append(out, strTile(es[off:end], d+1, dim, M, m)...)
	}
	return out
}

// chunkBalanced splits a sorted run into chunks of M, rebalancing the tail
// so no chunk falls below m.
func chunkBalanced(es []entry, M, m int) [][]entry {
	var out [][]entry
	for off := 0; off < len(es); off += M {
		end := off + M
		if end > len(es) {
			end = len(es)
		}
		out = append(out, es[off:end])
	}
	if n := len(out); n >= 2 && len(out[n-1]) < m {
		// Move entries from the second-to-last chunk into the last until
		// both meet the minimum.
		last, prev := out[n-1], out[n-2]
		need := m - len(last)
		cut := len(prev) - need
		out[n-1] = append(append([]entry(nil), prev[cut:]...), last...)
		out[n-2] = prev[:cut]
	}
	return out
}

func sortByCenter(es []entry, d int) {
	sort.Slice(es, func(i, j int) bool {
		ci := es[i].rect.L[d] + es[i].rect.H[d]
		cj := es[j].rect.L[d] + es[j].rect.H[d]
		return ci < cj
	})
}
