package rtree

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/geom"
	"repro/internal/pager"
)

// TestTreeSurvivesCrashMidMutation exercises end-to-end crash consistency:
// mutations on a WAL-enabled tree either apply fully or not at all, and
// the reopened tree always passes its structural invariants.
func TestTreeSurvivesCrashMidMutation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tree.db")
	open := func() (*pager.Pager, *Tree) {
		pg, err := pager.Open(pager.Options{PageSize: 4096, PoolPages: 64, Path: path, WAL: true})
		if err != nil {
			t.Fatal(err)
		}
		var tr *Tree
		if pg.NumPages() == 0 {
			tr, err = New(Options{Dim: 3, Pager: pg, MaxEntries: 8})
		} else {
			tr, err = Open(Options{Pager: pg, MaxEntries: 8})
		}
		if err != nil {
			t.Fatal(err)
		}
		return pg, tr
	}

	rng := rand.New(rand.NewSource(200))
	pg, tr := open()
	items := make(map[Ref]geom.Rect)
	for i := 0; i < 120; i++ {
		r := randRect(rng, 3, 0.05)
		if err := tr.Insert(r, Ref(i)); err != nil {
			t.Fatal(err)
		}
		items[Ref(i)] = r
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	// Crash during the next insert's commit: the WAL record is durable, so
	// after reopen the insert must be present.
	pg.FailCommitAfterWALSync(true)
	extra := randRect(rng, 3, 0.05)
	err := tr.Insert(extra, Ref(999))
	if !pager.IsSimulatedCrash(err) {
		t.Fatalf("Insert = %v, want simulated crash", err)
	}
	// Abandon the crashed handle (do not Close); reopen from disk.
	pg2, tr2 := open()
	defer pg2.Close()
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatalf("invariants after crash recovery: %v", err)
	}
	if tr2.Len() != 121 {
		t.Fatalf("Len after recovery = %d, want 121 (the WAL-synced insert replays)", tr2.Len())
	}
	found := false
	tr2.Intersect(extra, func(it Item) bool {
		if it.Ref == 999 {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Error("recovered insert not searchable")
	}

	// All original items still intact.
	for ref, r := range items {
		ok := false
		tr2.Intersect(r, func(it Item) bool {
			if it.Ref == ref {
				ok = true
				return false
			}
			return true
		})
		if !ok {
			t.Fatalf("item %d lost after recovery", ref)
		}
	}

	// Deletes are crash-safe too.
	pg2.FailCommitAfterWALSync(true)
	victimRef := Ref(7)
	err = tr2.Delete(items[victimRef], victimRef)
	if !pager.IsSimulatedCrash(err) {
		t.Fatalf("Delete = %v, want simulated crash", err)
	}
	pg3, tr3 := open()
	defer pg3.Close()
	if err := tr3.CheckInvariants(); err != nil {
		t.Fatalf("invariants after delete crash: %v", err)
	}
	if tr3.Len() != 120 {
		t.Errorf("Len = %d after recovered delete, want 120", tr3.Len())
	}
}

// TestTreeRollbackOnNotFoundDelete verifies that a failed mutation leaves
// no trace on a WAL tree (the transaction rolls back cleanly).
func TestTreeRollbackOnNotFoundDelete(t *testing.T) {
	dir := t.TempDir()
	pg, err := pager.Open(pager.Options{PageSize: 4096, Path: filepath.Join(dir, "t.db"), WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pg.Close()
	tr, err := New(Options{Dim: 2, Pager: pg, MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(201))
	for i := 0; i < 50; i++ {
		if err := tr.Insert(randRect(rng, 2, 0.05), Ref(i)); err != nil {
			t.Fatal(err)
		}
	}
	missing := randRect(rng, 2, 0.05)
	if err := tr.Delete(missing, 12345); err != ErrNotFound {
		t.Fatalf("Delete missing = %v", err)
	}
	if pg.InTxn() {
		t.Error("transaction left open after failed delete")
	}
	if tr.Len() != 50 {
		t.Errorf("Len = %d after failed delete", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The tree remains fully usable.
	if err := tr.Insert(randRect(rng, 2, 0.05), 50); err != nil {
		t.Fatalf("insert after rollback: %v", err)
	}
}
