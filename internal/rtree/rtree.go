// Package rtree implements a disk-backed R*-tree spatial index over the
// page store in internal/pager. The paper indexes every partition MBR of
// every data sequence "by using the R-tree [7] or its variants [2,3,4,9]";
// we implement the R*-tree variant (Beckmann et al., 1990): least-overlap
// subtree choice, margin-driven split-axis selection, and forced reinsert
// on first overflow.
//
// Each indexed item is a hyper-rectangle plus an opaque 64-bit reference;
// mdseq packs (sequence id, MBR ordinal) into it. The tree supports
// intersection search, minimum-distance range search (everything whose MBR
// lies within Dmbr ≤ ε of a query rectangle — the paper's phase-2 pruning
// predicate), and incremental nearest-neighbor traversal.
package rtree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/geom"
	"repro/internal/pager"
)

// Ref is the opaque payload attached to each indexed rectangle.
type Ref uint64

// PackRef packs a sequence id and an MBR ordinal into a Ref.
func PackRef(seqID, ordinal uint32) Ref {
	return Ref(uint64(seqID)<<32 | uint64(ordinal))
}

// Unpack splits a Ref back into (sequence id, MBR ordinal).
func (r Ref) Unpack() (seqID, ordinal uint32) {
	return uint32(r >> 32), uint32(r)
}

// Item is one indexed entry as reported by searches.
type Item struct {
	// Rect is the indexed bounding rectangle.
	Rect geom.Rect
	// Ref is the opaque payload stored with the rectangle.
	Ref Ref
}

const (
	magic          = "MDSRTRE1"
	metaPage       = pager.PageID(0)
	nodeHeaderSize = 1 + 2 // leaf flag + entry count
	// reinsertFraction is the share of entries removed on first overflow
	// (the R*-tree paper's p = 30%).
	reinsertFraction = 0.30
	// minFillFraction is m/M (R*-tree recommendation: 40%).
	minFillFraction = 0.40
)

var (
	// ErrNotFound is returned by Delete when the (rect, ref) pair is absent.
	ErrNotFound = errors.New("rtree: entry not found")
	// ErrBadMeta indicates a corrupt or foreign metadata page.
	ErrBadMeta = errors.New("rtree: bad meta page")
)

// Options configures a Tree.
type Options struct {
	// Dim is the dimensionality of indexed rectangles. Required for New;
	// ignored (read from meta) for Open.
	Dim int
	// Pager supplies page storage. Required.
	Pager *pager.Pager
	// MaxEntries overrides the page-derived node capacity (0 = derive from
	// page size). Mostly for tests and fanout ablations; values that do not
	// fit the page are rejected.
	MaxEntries int
}

// Tree is an R*-tree. It is NOT safe for concurrent mutation; concurrent
// read-only searches are safe provided no Insert/Delete runs. mdseq
// serializes index writes at the database layer.
type Tree struct {
	pg         *pager.Pager
	dim        int
	root       pager.PageID
	height     uint32 // 1 = root is a leaf
	size       uint64
	freeHead   pager.PageID
	maxEntries int
	minEntries int
	entrySize  int
	dirtyMeta  bool

	// flat caches the columnar decoding of node pages (PageID →
	// *flatNode) for the squared-space search kernel (AppendWithinDist).
	// Entries are dropped whenever their page is rewritten or freed, so
	// the cache tracks the live tree exactly; it holds at most one
	// decoded copy of every visited node (O(tree bytes) extra memory,
	// traded for allocation-free, pager-free steady-state searches).
	flat sync.Map
}

// New creates a fresh tree on an empty pager (the pager must have no
// allocated pages; the tree claims page 0 for metadata).
func New(opts Options) (*Tree, error) {
	if opts.Pager == nil {
		return nil, errors.New("rtree: nil pager")
	}
	if opts.Dim < 1 {
		return nil, fmt.Errorf("rtree: invalid dimension %d", opts.Dim)
	}
	if opts.Pager.NumPages() != 0 {
		return nil, errors.New("rtree: New requires an empty pager; use Open for existing files")
	}
	t := &Tree{
		pg:       opts.Pager,
		dim:      opts.Dim,
		freeHead: pager.InvalidPage,
	}
	if err := t.computeCapacity(opts.MaxEntries); err != nil {
		return nil, err
	}
	mp, err := t.pg.Alloc()
	if err != nil {
		return nil, err
	}
	if mp != metaPage {
		return nil, fmt.Errorf("rtree: meta page allocated as %d, want 0", mp)
	}
	rootPage, err := t.allocNodePage()
	if err != nil {
		return nil, err
	}
	t.root = rootPage
	t.height = 1
	if err := t.writeNode(&node{page: rootPage, leaf: true}); err != nil {
		return nil, err
	}
	t.dirtyMeta = true
	if err := t.flushMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open loads an existing tree from a pager whose page 0 holds tree
// metadata. MaxEntries, if non-zero, must match the stored capacity's page
// feasibility; the stored meta wins for dim/root/height/size.
func Open(opts Options) (*Tree, error) {
	if opts.Pager == nil {
		return nil, errors.New("rtree: nil pager")
	}
	t := &Tree{pg: opts.Pager}
	if err := t.readMeta(); err != nil {
		return nil, err
	}
	if err := t.computeCapacity(opts.MaxEntries); err != nil {
		return nil, err
	}
	return t, nil
}

// computeCapacity derives entry size and node fanout from the page size.
func (t *Tree) computeCapacity(override int) error {
	t.entrySize = t.dim*16 + 8 // L,H float64s + 8-byte ref/child
	maxE, minE, err := CapacityFor(t.pg.PageSize(), t.dim, override)
	if err != nil {
		return err
	}
	t.maxEntries = maxE
	t.minEntries = minE
	return nil
}

// CapacityFor derives the node fanout a tree over the given page size
// (0 = pager.DefaultPageSize) and dimensionality uses, applying the same
// rules as tree construction: capacity from entry size, an optional
// override that must fit the page, and the R*-tree minimum-fill clamp.
// It exists so the segment store can compute the STR leaf grouping of a
// future tree without opening one; the grouping is valid for any tree
// whose MaxEntries matches the returned maximum.
func CapacityFor(pageSize, dim, override int) (maxEntries, minEntries int, err error) {
	if pageSize == 0 {
		pageSize = pager.DefaultPageSize
	}
	entrySize := dim*16 + 8 // L,H float64s + 8-byte ref/child
	capacity := (pageSize - nodeHeaderSize) / entrySize
	if override > 0 {
		if override > capacity {
			return 0, 0, fmt.Errorf("rtree: MaxEntries %d exceeds page capacity %d", override, capacity)
		}
		capacity = override
	}
	if capacity < 4 {
		return 0, 0, fmt.Errorf("rtree: page size %d too small for dim %d (capacity %d, need >= 4)",
			pageSize, dim, capacity)
	}
	minEntries = int(minFillFraction * float64(capacity))
	if minEntries < 1 {
		minEntries = 1
	}
	if minEntries > capacity/2 {
		minEntries = capacity / 2
	}
	return capacity, minEntries, nil
}

// Dim returns the dimensionality of the indexed rectangles.
func (t *Tree) Dim() int { return t.dim }

// Len returns the number of indexed entries.
func (t *Tree) Len() int { return int(t.size) }

// Height returns the tree height (1 when the root is a leaf).
func (t *Tree) Height() int { return int(t.height) }

// MaxEntries returns the node capacity (fanout).
func (t *Tree) MaxEntries() int { return t.maxEntries }

// MinEntries returns the node minimum-fill in force (the R*-tree m).
func (t *Tree) MinEntries() int { return t.minEntries }

// Flush persists metadata and all dirty pages.
func (t *Tree) Flush() error {
	if err := t.flushMeta(); err != nil {
		return err
	}
	return t.pg.Flush()
}

// --- metadata ----------------------------------------------------------

// meta layout: magic[8] | dim u16 | root u32 | height u32 | size u64 |
// freeHead u32
func (t *Tree) flushMeta() error {
	if !t.dirtyMeta {
		return nil
	}
	err := t.pg.Update(metaPage, func(b []byte) error {
		copy(b[0:8], magic)
		binary.LittleEndian.PutUint16(b[8:10], uint16(t.dim))
		binary.LittleEndian.PutUint32(b[10:14], uint32(t.root))
		binary.LittleEndian.PutUint32(b[14:18], t.height)
		binary.LittleEndian.PutUint64(b[18:26], t.size)
		binary.LittleEndian.PutUint32(b[26:30], uint32(t.freeHead))
		return nil
	})
	if err == nil {
		t.dirtyMeta = false
	}
	return err
}

func (t *Tree) readMeta() error {
	return t.pg.View(metaPage, func(b []byte) error {
		if string(b[0:8]) != magic {
			return fmt.Errorf("%w: magic %q", ErrBadMeta, b[0:8])
		}
		t.dim = int(binary.LittleEndian.Uint16(b[8:10]))
		t.root = pager.PageID(binary.LittleEndian.Uint32(b[10:14]))
		t.height = binary.LittleEndian.Uint32(b[14:18])
		t.size = binary.LittleEndian.Uint64(b[18:26])
		t.freeHead = pager.PageID(binary.LittleEndian.Uint32(b[26:30]))
		if t.dim < 1 || t.height < 1 {
			return fmt.Errorf("%w: dim %d height %d", ErrBadMeta, t.dim, t.height)
		}
		return nil
	})
}

// --- node page allocation (chained free list, persisted via meta) -------

func (t *Tree) allocNodePage() (pager.PageID, error) {
	if t.freeHead != pager.InvalidPage {
		id := t.freeHead
		var next pager.PageID
		err := t.pg.View(id, func(b []byte) error {
			next = pager.PageID(binary.LittleEndian.Uint32(b[0:4]))
			return nil
		})
		if err != nil {
			return pager.InvalidPage, err
		}
		t.freeHead = next
		t.dirtyMeta = true
		return id, nil
	}
	return t.pg.Alloc()
}

func (t *Tree) freeNodePage(id pager.PageID) error {
	t.flat.Delete(id)
	err := t.pg.Update(id, func(b []byte) error {
		binary.LittleEndian.PutUint32(b[0:4], uint32(t.freeHead))
		return nil
	})
	if err != nil {
		return err
	}
	t.freeHead = id
	t.dirtyMeta = true
	return nil
}
