package rtree

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/pager"
)

// CheckInvariants walks the whole tree and verifies its structural
// invariants. It is exported for tests and debugging tools:
//
//   - every internal entry's rectangle equals the MBR of its child node,
//   - every node except the root holds between minEntries and maxEntries,
//   - the root holds at least 1 entry unless the tree is empty,
//   - all leaves sit at the same depth (== Height),
//   - the number of leaf entries equals Len().
func (t *Tree) CheckInvariants() error {
	count, err := t.checkRec(t.root, t.height, t.root)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: size %d but %d leaf entries reachable", t.size, count)
	}
	return nil
}

func (t *Tree) checkRec(page pager.PageID, level uint32, root pager.PageID) (uint64, error) {
	n, err := t.readNode(page)
	if err != nil {
		return 0, err
	}
	if n.leaf != (level == 1) {
		return 0, fmt.Errorf("rtree: node %d leaf=%v at level %d (height %d)", page, n.leaf, level, t.height)
	}
	if page == root {
		if t.size > 0 && len(n.entries) == 0 {
			return 0, fmt.Errorf("rtree: non-empty tree with empty root")
		}
	} else if len(n.entries) < t.minEntries || len(n.entries) > t.maxEntries {
		return 0, fmt.Errorf("rtree: node %d has %d entries, want [%d,%d]",
			page, len(n.entries), t.minEntries, t.maxEntries)
	}
	if n.leaf {
		return uint64(len(n.entries)), nil
	}
	var total uint64
	for i := range n.entries {
		child, err := t.readNode(n.entries[i].child)
		if err != nil {
			return 0, err
		}
		want := child.mbr()
		if !n.entries[i].rect.Equal(want) {
			return 0, fmt.Errorf("rtree: node %d entry %d rect %v != child %d mbr %v",
				page, i, n.entries[i].rect, n.entries[i].child, want)
		}
		c, err := t.checkRec(n.entries[i].child, level-1, root)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}

// TreeStats summarizes the tree's shape and space utilization.
type TreeStats struct {
	// Height is the number of levels, counting the leaf level as 1.
	Height int
	// InternalNodes counts directory nodes.
	InternalNodes int
	// LeafNodes counts leaf nodes.
	LeafNodes    int
	Entries      int     // leaf entries (== Len())
	LeafFill     float64 // mean leaf occupancy as a fraction of capacity
	InternalFill float64 // mean internal occupancy (0 when height == 1)
}

// Stats walks the tree and reports shape and fill statistics — the
// utilization numbers behind the fanout ablation and the bulk-vs-
// incremental packing comparison.
func (t *Tree) Stats() (TreeStats, error) {
	st := TreeStats{Height: int(t.height), Entries: int(t.size)}
	var leafEntries, internalEntries int
	var walk func(page pager.PageID) error
	walk = func(page pager.PageID) error {
		n, err := t.readNode(page)
		if err != nil {
			return err
		}
		if n.leaf {
			st.LeafNodes++
			leafEntries += len(n.entries)
			return nil
		}
		st.InternalNodes++
		internalEntries += len(n.entries)
		for i := range n.entries {
			if err := walk(n.entries[i].child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return TreeStats{}, err
	}
	if st.LeafNodes > 0 {
		st.LeafFill = float64(leafEntries) / float64(st.LeafNodes*t.maxEntries)
	}
	if st.InternalNodes > 0 {
		st.InternalFill = float64(internalEntries) / float64(st.InternalNodes*t.maxEntries)
	}
	return st, nil
}

// Bounds returns the MBR of the entire index (empty when the tree is empty).
func (t *Tree) Bounds() (geom.Rect, error) {
	n, err := t.readNode(t.root)
	if err != nil {
		return geom.Rect{}, err
	}
	return n.mbr(), nil
}
