package rtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/pager"
)

// entry is one slot in a node: a rectangle plus either a child page
// (internal nodes) or a caller reference (leaves).
type entry struct {
	rect  geom.Rect
	child pager.PageID // internal nodes
	ref   Ref          // leaves
}

// node is the in-memory form of one tree page.
type node struct {
	page    pager.PageID
	leaf    bool
	entries []entry
}

// mbr returns the minimum bounding rectangle of all entries in n.
func (n *node) mbr() geom.Rect {
	var r geom.Rect
	for i := range n.entries {
		r.ExtendRect(n.entries[i].rect)
	}
	return r
}

// flatNode is the search-path form of one decoded page: every entry's
// bounds in one contiguous array (entry e occupies
// bounds[e*2d : e*2d+d] = L and bounds[e*2d+d : (e+1)*2d] = H) plus a
// parallel payload array holding the Ref (leaves) or child PageID
// (internal nodes). Scanning a flatNode is a sequential walk over plain
// float64s — no per-entry slice headers, no pointer chasing — and the
// decoded form is cached per page (Tree.flat) so steady-state searches
// never touch the pager or allocate.
type flatNode struct {
	leaf   bool
	count  int
	bounds []float64
	pay    []uint64
}

// readFlat returns the cached flat decoding of page id, decoding and
// caching it on first use. Cached nodes are invalidated by writeNode and
// freeNodePage, so a flatNode can never go stale; concurrent searches may
// race to decode the same page, in which case both decodings are valid
// and the last Store wins.
func (t *Tree) readFlat(id pager.PageID) (*flatNode, error) {
	if v, ok := t.flat.Load(id); ok {
		return v.(*flatNode), nil
	}
	fn := &flatNode{}
	err := t.pg.View(id, func(b []byte) error {
		fn.leaf = b[0]&1 != 0
		count := int(binary.LittleEndian.Uint16(b[1:3]))
		if count > t.maxEntries {
			return fmt.Errorf("rtree: node %d count %d exceeds max %d (corrupt page?)", id, count, t.maxEntries)
		}
		fn.count = count
		fn.bounds = make([]float64, count*2*t.dim)
		fn.pay = make([]uint64, count)
		off := nodeHeaderSize
		for i := 0; i < count; i++ {
			base := i * 2 * t.dim
			for k := 0; k < 2*t.dim; k++ {
				fn.bounds[base+k] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
				off += 8
			}
			fn.pay[i] = binary.LittleEndian.Uint64(b[off:])
			off += 8
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.flat.Store(id, fn)
	return fn, nil
}

// Node page layout:
//
//	flags  u8   (bit 0: leaf)
//	count  u16
//	entries: count × (dim×8 bytes L | dim×8 bytes H | 8 bytes ref-or-child)
//
// Freed pages reuse bytes 0:4 for the free-list next pointer, which is fine
// because a freed page is never interpreted as a node.
func (t *Tree) writeNode(n *node) error {
	if len(n.entries) > t.maxEntries {
		return fmt.Errorf("rtree: node %d has %d entries, max %d", n.page, len(n.entries), t.maxEntries)
	}
	t.flat.Delete(n.page)
	return t.pg.Update(n.page, func(b []byte) error {
		var flags byte
		if n.leaf {
			flags |= 1
		}
		b[0] = flags
		binary.LittleEndian.PutUint16(b[1:3], uint16(len(n.entries)))
		off := nodeHeaderSize
		for i := range n.entries {
			e := &n.entries[i]
			for k := 0; k < t.dim; k++ {
				binary.LittleEndian.PutUint64(b[off:], math.Float64bits(e.rect.L[k]))
				off += 8
			}
			for k := 0; k < t.dim; k++ {
				binary.LittleEndian.PutUint64(b[off:], math.Float64bits(e.rect.H[k]))
				off += 8
			}
			if n.leaf {
				binary.LittleEndian.PutUint64(b[off:], uint64(e.ref))
			} else {
				binary.LittleEndian.PutUint64(b[off:], uint64(e.child))
			}
			off += 8
		}
		return nil
	})
}

func (t *Tree) readNode(id pager.PageID) (*node, error) {
	n := &node{page: id}
	err := t.pg.View(id, func(b []byte) error {
		n.leaf = b[0]&1 != 0
		count := int(binary.LittleEndian.Uint16(b[1:3]))
		if count > t.maxEntries {
			return fmt.Errorf("rtree: node %d count %d exceeds max %d (corrupt page?)", id, count, t.maxEntries)
		}
		n.entries = make([]entry, count)
		off := nodeHeaderSize
		for i := 0; i < count; i++ {
			lo := make(geom.Point, t.dim)
			hi := make(geom.Point, t.dim)
			for k := 0; k < t.dim; k++ {
				lo[k] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
				off += 8
			}
			for k := 0; k < t.dim; k++ {
				hi[k] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
				off += 8
			}
			payload := binary.LittleEndian.Uint64(b[off:])
			off += 8
			n.entries[i] = entry{rect: geom.Rect{L: lo, H: hi}}
			if n.leaf {
				n.entries[i].ref = Ref(payload)
			} else {
				n.entries[i].child = pager.PageID(payload)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return n, nil
}
