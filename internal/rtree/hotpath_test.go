package rtree

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/pager"
)

// hotpathTree builds an in-memory tree of n random small rectangles in
// the given dimension and returns it with the inserted items.
func hotpathTree(tb testing.TB, dim, n int, seed int64) (*Tree, []Item) {
	tb.Helper()
	pg, err := pager.Open(pager.Options{PageSize: 4096, PoolPages: 1024})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { pg.Close() })
	tr, err := New(Options{Dim: dim, Pager: pg})
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Rect: randRect(rng, dim, 0.05), Ref: Ref(i)}
	}
	if err := tr.BulkLoad(items); err != nil {
		tb.Fatal(err)
	}
	return tr, items
}

// TestAppendWithinDistMatchesWithinDist checks the squared-space flat
// kernel against the seed visitor path: same accepted reference set, same
// DFS order, across dimensions, radii, and random queries — including
// after mutations that invalidate cached flat nodes.
func TestAppendWithinDistMatchesWithinDist(t *testing.T) {
	for _, dim := range []int{2, 3, 4, 8} {
		tr, items := hotpathTree(t, dim, 3000, int64(100+dim))
		rng := rand.New(rand.NewSource(int64(dim)))
		check := func() {
			for i := 0; i < 40; i++ {
				q := randRect(rng, dim, 0.1)
				eps := rng.Float64() * 0.4
				var want []Ref
				if err := tr.WithinDist(q, eps, func(it Item) bool {
					want = append(want, it.Ref)
					return true
				}); err != nil {
					t.Fatal(err)
				}
				got, err := tr.AppendWithinDist(q, eps, nil)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("dim %d eps %g: flat kernel found %d refs, visitor %d", dim, eps, len(got), len(want))
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("dim %d eps %g: ref %d: flat %v, visitor %v", dim, eps, j, got[j], want[j])
					}
				}
			}
		}
		check()
		// Mutate: delete a slice of items and insert fresh ones, then
		// re-verify — the flat cache must track every rewritten page.
		for i := 0; i < 200; i++ {
			if err := tr.Delete(items[i].Rect, items[i].Ref); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 150; i++ {
			if err := tr.Insert(randRect(rng, dim, 0.05), Ref(100000+i)); err != nil {
				t.Fatal(err)
			}
		}
		check()
	}
}

// TestAppendWithinDistReuse checks that a warmed tree serves repeated
// searches into a reused slice without allocating.
func TestAppendWithinDistReuse(t *testing.T) {
	tr, _ := hotpathTree(t, 4, 5000, 7)
	rng := rand.New(rand.NewSource(8))
	q := randRect(rng, 4, 0.1)
	out, err := tr.AppendWithinDist(q, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("query matched nothing; pick a wider radius")
	}
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		out, err = tr.AppendWithinDist(q, 0.3, out[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed AppendWithinDist allocates %.1f times per run, want 0", allocs)
	}
}

// TestFlatCacheInvalidation specifically exercises the page-rewrite path:
// a ref must disappear from flat-kernel results immediately after Delete
// and reappear after re-insertion.
func TestFlatCacheInvalidation(t *testing.T) {
	tr, items := hotpathTree(t, 2, 500, 11)
	target := items[42]
	wide := geom.MustRect(geom.Point{0, 0}, geom.Point{1, 1})
	contains := func() bool {
		refs, err := tr.AppendWithinDist(wide, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range refs {
			if r == target.Ref {
				return true
			}
		}
		return false
	}
	if !contains() {
		t.Fatal("target absent before delete")
	}
	if err := tr.Delete(target.Rect, target.Ref); err != nil {
		t.Fatal(err)
	}
	if contains() {
		t.Fatal("target still served from flat cache after delete")
	}
	if err := tr.Insert(target.Rect, target.Ref); err != nil {
		t.Fatal(err)
	}
	if !contains() {
		t.Fatal("target absent after re-insert")
	}
}

// BenchmarkWithinDistKernel compares the seed visitor search and the flat
// squared-space kernel on identical trees and queries. Sub-benchmark
// names are benchstat-friendly: path=visitor|flat / dim=D / n=N.
func BenchmarkWithinDistKernel(b *testing.B) {
	for _, dim := range []int{2, 4, 8, 16} {
		for _, n := range []int{2000, 20000} {
			tr, _ := hotpathTree(b, dim, n, int64(dim*n))
			rng := rand.New(rand.NewSource(9))
			queries := make([]geom.Rect, 64)
			for i := range queries {
				queries[i] = randRect(rng, dim, 0.1)
			}
			eps := 0.15
			b.Run(fmt.Sprintf("path=visitor/dim=%d/n=%d", dim, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					cnt := 0
					err := tr.WithinDist(queries[i%len(queries)], eps, func(Item) bool { cnt++; return true })
					if err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("path=flat/dim=%d/n=%d", dim, n), func(b *testing.B) {
				b.ReportAllocs()
				var out []Ref
				for i := 0; i < b.N; i++ {
					var err error
					out, err = tr.AppendWithinDist(queries[i%len(queries)], eps, out[:0])
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
