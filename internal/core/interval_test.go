package core

import (
	"math/rand"
	"testing"
)

func TestIntervalAddBasic(t *testing.T) {
	var s IntervalSet
	if !s.IsEmpty() {
		t.Error("new set should be empty")
	}
	s.Add(PointRange{5, 10})
	s.Add(PointRange{20, 25})
	if got := s.NumPoints(); got != 10 {
		t.Errorf("NumPoints = %d, want 10", got)
	}
	if len(s.Ranges()) != 2 {
		t.Errorf("Ranges = %v", s.Ranges())
	}
}

func TestIntervalAddIgnoresEmpty(t *testing.T) {
	var s IntervalSet
	s.Add(PointRange{5, 5})
	s.Add(PointRange{7, 3})
	if !s.IsEmpty() {
		t.Errorf("empty/inverted ranges added: %v", s)
	}
}

func TestIntervalMergeOverlapping(t *testing.T) {
	var s IntervalSet
	s.Add(PointRange{0, 10})
	s.Add(PointRange{5, 15})
	if len(s.Ranges()) != 1 || s.Ranges()[0] != (PointRange{0, 15}) {
		t.Errorf("merged = %v, want {[0,15)}", s)
	}
}

func TestIntervalMergeAdjacent(t *testing.T) {
	var s IntervalSet
	s.Add(PointRange{0, 10})
	s.Add(PointRange{10, 20})
	if len(s.Ranges()) != 1 || s.NumPoints() != 20 {
		t.Errorf("adjacent ranges not merged: %v", s)
	}
}

func TestIntervalAddCovering(t *testing.T) {
	var s IntervalSet
	s.Add(PointRange{5, 10})
	s.Add(PointRange{15, 20})
	s.Add(PointRange{0, 30}) // swallows both
	if len(s.Ranges()) != 1 || s.Ranges()[0] != (PointRange{0, 30}) {
		t.Errorf("covering add = %v", s)
	}
}

func TestIntervalAddContained(t *testing.T) {
	var s IntervalSet
	s.Add(PointRange{0, 30})
	s.Add(PointRange{5, 10})
	if len(s.Ranges()) != 1 || s.Ranges()[0] != (PointRange{0, 30}) {
		t.Errorf("contained add = %v", s)
	}
}

func TestIntervalContains(t *testing.T) {
	var s IntervalSet
	s.Add(PointRange{5, 10})
	s.Add(PointRange{20, 25})
	for _, tc := range []struct {
		i    int
		want bool
	}{{4, false}, {5, true}, {9, true}, {10, false}, {19, false}, {20, true}, {24, true}, {25, false}} {
		if got := s.Contains(tc.i); got != tc.want {
			t.Errorf("Contains(%d) = %v, want %v", tc.i, got, tc.want)
		}
	}
}

func TestIntervalIntersectCount(t *testing.T) {
	var a, b IntervalSet
	a.Add(PointRange{0, 10})
	a.Add(PointRange{20, 30})
	b.Add(PointRange{5, 25})
	// a ∩ b = [5,10) ∪ [20,25) → 10 points
	if got := a.IntersectCount(&b); got != 10 {
		t.Errorf("IntersectCount = %d, want 10", got)
	}
	if got := b.IntersectCount(&a); got != 10 {
		t.Errorf("IntersectCount not symmetric: %d", got)
	}
	var empty IntervalSet
	if got := a.IntersectCount(&empty); got != 0 {
		t.Errorf("intersect with empty = %d", got)
	}
}

func TestIntervalAddSet(t *testing.T) {
	var a, b IntervalSet
	a.Add(PointRange{0, 5})
	b.Add(PointRange{3, 8})
	b.Add(PointRange{20, 22})
	a.AddSet(&b)
	if a.NumPoints() != 10 {
		t.Errorf("AddSet NumPoints = %d, want 10", a.NumPoints())
	}
}

func TestIntervalString(t *testing.T) {
	var s IntervalSet
	if s.String() != "{}" {
		t.Errorf("empty String = %q", s.String())
	}
	s.Add(PointRange{1, 3})
	if s.String() != "{[1,3)}" {
		t.Errorf("String = %q", s.String())
	}
}

// TestIntervalAgainstBitmapReference fuzzes the set against a boolean
// bitmap model: NumPoints, Contains and IntersectCount must all agree.
func TestIntervalAgainstBitmapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	const universe = 200
	for trial := 0; trial < 100; trial++ {
		var s, u IntervalSet
		bm := make([]bool, universe)
		bu := make([]bool, universe)
		for op := 0; op < 20; op++ {
			start := rng.Intn(universe)
			end := start + rng.Intn(universe-start)
			if rng.Intn(2) == 0 {
				s.Add(PointRange{start, end})
				for i := start; i < end; i++ {
					bm[i] = true
				}
			} else {
				u.Add(PointRange{start, end})
				for i := start; i < end; i++ {
					bu[i] = true
				}
			}
		}
		wantN, wantI := 0, 0
		for i := 0; i < universe; i++ {
			if bm[i] {
				wantN++
			}
			if bm[i] && bu[i] {
				wantI++
			}
			if s.Contains(i) != bm[i] {
				t.Fatalf("trial %d: Contains(%d) = %v, bitmap %v", trial, i, s.Contains(i), bm[i])
			}
		}
		if got := s.NumPoints(); got != wantN {
			t.Fatalf("trial %d: NumPoints = %d, want %d", trial, got, wantN)
		}
		if got := s.IntersectCount(&u); got != wantI {
			t.Fatalf("trial %d: IntersectCount = %d, want %d", trial, got, wantI)
		}
		// Normalization invariants: sorted, disjoint, non-adjacent.
		rs := s.Ranges()
		for i := 1; i < len(rs); i++ {
			if rs[i].Start <= rs[i-1].End {
				t.Fatalf("trial %d: ranges not normalized: %v", trial, rs)
			}
		}
	}
}
