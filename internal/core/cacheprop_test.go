package core

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/geom"
)

// cacheConfigs enumerates the policy × scope grid the property tests run
// over, so a bug in any replacement/invalidation combination is caught by
// the same oracle.
var cacheConfigs = []cache.Config{
	{Policy: cache.PolicyLRU, Scope: cache.ScopeEpoch},
	{Policy: cache.PolicyLRU, Scope: cache.ScopeMBR},
	{Policy: cache.PolicyGDSF, Scope: cache.ScopeEpoch},
	{Policy: cache.PolicyGDSF, Scope: cache.ScopeMBR},
}

// TestCacheEqualsUncachedUnderRandomWorkload is the cache's correctness
// property test: a cached database and an uncached twin receive the same
// random interleaving of writes (add, append, remove) and queries (range
// and kNN, with repeats so the cache actually serves hits), and every
// query answer — hit or miss — must equal the uncached database's fresh
// answer exactly. Equality is exact, not approximate: a hit is a memo of
// a deterministic computation over an identical corpus, so any deviation
// means a stale or corrupted entry. Runs over every policy × scope
// combination; the workload is seeded and reproducible.
func TestCacheEqualsUncachedUnderRandomWorkload(t *testing.T) {
	for _, cfg := range cacheConfigs {
		cfg := cfg
		t.Run(string(cfg.Policy)+"/"+string(cfg.Scope), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(0x5eed + int64(len(cfg.Policy))<<8 + int64(len(cfg.Scope))))
			cached := newTestDB(t, 3)
			// Small caps so eviction, admission, and aging all engage.
			cached.SetCache(cache.New(cache.Config{
				MaxEntries: 32, MaxBytes: 1 << 18, Shards: 2,
				Policy: cfg.Policy, Scope: cfg.Scope,
			}))
			plain := newTestDB(t, 3)

			// Identical op sequences keep ids aligned across the twins.
			var ids []uint32
			addBoth := func(n int) {
				s := randWalkSeq(rng, n, 3)
				cp, err := NewSequence(s.Label, append([]geom.Point(nil), s.Points...))
				if err != nil {
					t.Fatal(err)
				}
				id1, err1 := cached.Add(s)
				id2, err2 := plain.Add(cp)
				if err1 != nil || err2 != nil {
					t.Fatalf("add: %v / %v", err1, err2)
				}
				if id1 != id2 {
					t.Fatalf("twins diverged: ids %d vs %d", id1, id2)
				}
				ids = append(ids, id1)
			}
			for i := 0; i < 15; i++ {
				addBoth(30 + rng.Intn(40))
			}

			// A small pool of recurring queries guarantees hits.
			pool := make([]*Sequence, 6)
			for i := range pool {
				pool[i] = randWalkSeq(rng, 20+rng.Intn(20), 3)
			}

			hits := 0
			for step := 0; step < 400; step++ {
				switch op := rng.Float64(); {
				case op < 0.10: // add
					addBoth(20 + rng.Intn(40))
				case op < 0.16 && len(ids) > 3: // remove
					i := rng.Intn(len(ids))
					id := ids[i]
					ids = append(ids[:i], ids[i+1:]...)
					if err := cached.Remove(id); err != nil {
						t.Fatal(err)
					}
					if err := plain.Remove(id); err != nil {
						t.Fatal(err)
					}
				case op < 0.24 && len(ids) > 0: // append
					id := ids[rng.Intn(len(ids))]
					pts := make([]geom.Point, 3)
					base := rng.Float64()
					for j := range pts {
						pts[j] = geom.Point{base, base + 0.01*float64(j), base}
					}
					if err := cached.AppendPoints(id, pts); err != nil {
						t.Fatal(err)
					}
					if err := plain.AppendPoints(id, pts); err != nil {
						t.Fatal(err)
					}
				case op < 0.80: // range query
					q := pool[rng.Intn(len(pool))]
					eps := 0.2 + 0.2*float64(rng.Intn(3))
					got, st, err := cached.Search(q, eps)
					if err != nil {
						t.Fatal(err)
					}
					want, _, err := plain.Search(q, eps)
					if err != nil {
						t.Fatal(err)
					}
					if st.CacheHit {
						hits++
					}
					requireSameMatches(t, step, got, want)
				default: // kNN query
					q := pool[rng.Intn(len(pool))]
					k := 1 + rng.Intn(5)
					got, err := cached.SearchKNN(q, k)
					if err != nil {
						t.Fatal(err)
					}
					want, err := plain.SearchKNN(q, k)
					if err != nil {
						t.Fatal(err)
					}
					requireSameKNN(t, step, got, want)
				}
			}
			if hits == 0 {
				t.Fatal("workload produced zero cache hits; property test is vacuous")
			}
		})
	}
}

// requireSameMatches fails the test unless got and want are identical
// match lists (ids, distances, and matched intervals all equal).
func requireSameMatches(t *testing.T, step int, got, want []Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("step %d: cached answer has %d matches, fresh has %d", step, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.SeqID != w.SeqID || g.MinDnorm != w.MinDnorm ||
			g.Interval.NumPoints() != w.Interval.NumPoints() {
			t.Fatalf("step %d: match %d differs: got {id %d d %v pts %d}, want {id %d d %v pts %d}",
				step, i, g.SeqID, g.MinDnorm, g.Interval.NumPoints(),
				w.SeqID, w.MinDnorm, w.Interval.NumPoints())
		}
	}
}

// requireSameKNN fails the test unless got and want are identical ranked
// neighbor lists.
func requireSameKNN(t *testing.T, step int, got, want []KNNResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("step %d: cached kNN has %d results, fresh has %d", step, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.SeqID != w.SeqID || g.Dist != w.Dist || g.Offset != w.Offset {
			t.Fatalf("step %d: neighbor %d differs: got {id %d d %v off %d}, want {id %d d %v off %d}",
				step, i, g.SeqID, g.Dist, g.Offset, w.SeqID, w.Dist, w.Offset)
		}
	}
}
