package core

import (
	"math"
	"time"

	"repro/internal/cache"
	"repro/internal/geom"
)

// Query-kind tags folded into cache fingerprints so a range search, a
// kNN query, and any future cached shape with identical point material
// can never alias each other.
const (
	fpKindRange       = 0x52 // 'R': three-phase range search (serial, parallel, batch member)
	fpKindKNN         = 0x4b // 'K': unbounded k-nearest-sequences query
	fpKindMetricRange = 0x4d // 'M': metric range search (exact-distance result set)
	fpKindMetricKNN   = 0x6b // 'k': metric k-nearest-sequences query
)

// fp accumulates the two independent 64-bit hash streams behind a
// cache.Key. Stream 1 is FNV-1a; stream 2 runs the same xor-multiply
// scheme with a different offset basis and multiplier, so a collision in
// one stream is independent of the other.
type fp struct{ h1, h2 uint64 }

// newFP seeds both streams.
func newFP() fp {
	return fp{h1: 14695981039346656037, h2: 9650029242287828579}
}

// byte folds one byte into both streams.
func (f *fp) byte(b byte) {
	f.h1 = (f.h1 ^ uint64(b)) * 1099511628211
	f.h2 = (f.h2 ^ uint64(b)) * 0x9E3779B185EBCA87
}

// word folds one 64-bit word, little-endian.
func (f *fp) word(v uint64) {
	for i := 0; i < 8; i++ {
		f.byte(byte(v))
		v >>= 8
	}
}

// float folds one float64 by bit pattern (so -0 and 0 hash differently,
// which only makes the key stricter).
func (f *fp) float(v float64) { f.word(math.Float64bits(v)) }

// key finalizes the fingerprint.
func (f *fp) key() cache.Key { return cache.Key{Hi: f.h1, Lo: f.h2} }

// queryFingerprint builds the cache key for a query: kind tag, the
// metric's distance semantics (id byte + parameter word, so a DTW result
// can never alias a D result for the same points and threshold — and two
// DTW results under different windows can't alias either), threshold (or
// k, via extra), the partitioning parameters that shape phase 1, and
// every query coordinate. Everything that can change the result is in
// the key; the corpus version is handled separately by the epoch.
func queryFingerprint(kind byte, m Metric, q *Sequence, eps float64, cfg PartitionConfig, extra uint64) cache.Key {
	f := newFP()
	f.byte(kind)
	mid, mparam := m.fingerprint()
	f.byte(mid)
	f.word(mparam)
	f.float(eps)
	f.float(cfg.QueryExtent)
	f.word(uint64(cfg.MaxPoints))
	f.word(extra)
	f.word(uint64(q.Len()))
	f.word(uint64(q.Dim()))
	for _, p := range q.Points {
		for _, v := range p {
			f.float(v)
		}
	}
	return f.key()
}

// RangeCacheKey returns the fingerprint a range query's result is cached
// under — the key shared by the serial, parallel, and batch paths. The
// scatter layer uses it to key its merged-result cache with the same
// material (its config mirrors every shard's).
func RangeCacheKey(q *Sequence, eps float64, cfg PartitionConfig) cache.Key {
	return queryFingerprint(fpKindRange, MetricD{}, q, eps, cfg, 0)
}

// KNNCacheKey returns the fingerprint an unbounded kNN query's result is
// cached under.
func KNNCacheKey(q *Sequence, k int, cfg PartitionConfig) cache.Key {
	return queryFingerprint(fpKindKNN, MetricD{}, q, 0, cfg, uint64(k))
}

// MetricRangeCacheKey returns the fingerprint a metric range search is
// cached under: the metric's identity and window are part of the key.
func MetricRangeCacheKey(q *Sequence, eps float64, cfg PartitionConfig, m Metric) cache.Key {
	return queryFingerprint(fpKindMetricRange, m, q, eps, cfg, 0)
}

// MetricKNNCacheKey returns the fingerprint a metric kNN query is cached
// under.
func MetricKNNCacheKey(q *Sequence, k int, cfg PartitionConfig, m Metric) cache.Key {
	return queryFingerprint(fpKindMetricKNN, m, q, 0, cfg, uint64(k))
}

// cachedRange is the memoized product of one range search: the match
// slice exactly as returned (treated as read-only by every consumer) and
// the stats of the run that computed it.
type cachedRange struct {
	matches []Match
	stats   SearchStats
}

// cachedKNN is the memoized product of one unbounded kNN query. Results
// are copied on every hit because scatter-gather callers rewrite SeqID
// in place when mapping local ids to global ones.
type cachedKNN struct{ results []KNNResult }

// cachedMetricRange is the memoized product of one metric range search.
type cachedMetricRange struct {
	matches []MetricMatch
	stats   SearchStats
}

// approxRangeBytes estimates the retained size of a cached range result
// for the cache's byte cap: slice headers and fixed fields plus the
// interval ranges. Sequences are not charged — they are owned by the
// database and shared, not retained by the cache.
func approxRangeBytes(ms []Match) int {
	n := 160 // entry, stats, slice header
	for _, m := range ms {
		n += 64 + 16*len(m.Interval.Ranges())
	}
	return n
}

// approxKNNBytes estimates the retained size of a cached kNN result.
func approxKNNBytes(rs []KNNResult) int { return 96 + 40*len(rs) }

// SetCache attaches a query-result cache to the database (nil detaches).
// Search, SearchParallel, SearchBatch, and SearchKNN consult it before
// running and fill it after with the result's compute cost (CPUTime) and
// geometric region; every write (Add, AddAll, Remove, AppendPoints,
// ReplaceSegmented) advances the database's epoch and notifies the cache
// with the written sequence's MBR, so only entries the write could have
// affected are invalidated (see internal/cache). Safe to call while
// queries are in flight.
func (db *Database) SetCache(c *cache.Cache) { db.qcache.Store(c) }

// QueryCache returns the attached query cache, or nil.
func (db *Database) QueryCache() *cache.Cache { return db.qcache.Load() }

// Epoch returns the database's current write epoch: the number of
// completed write operations. It is the corpus-version observable
// (Snapshot staleness checks); cache invalidation rides the region
// notifications, not this counter.
func (db *Database) Epoch() uint64 { return db.epoch.Load() }

// notifyWrite marks a completed write covering the MBR w: the epoch
// advances and the attached cache (if any) invalidates every entry the
// write could have affected. Pass the empty Rect when the write's extent
// is unknown — everything is then invalidated.
func (db *Database) notifyWrite(w geom.Rect) {
	db.epoch.Add(1)
	if c := db.qcache.Load(); c != nil {
		c.Invalidate(w)
	}
}

// cacheRef is a resolved cache slot for one query: the cache (nil when
// none is attached), the key, the write-sequence snapshot taken *before*
// the query ran, and the query's region. Storing under a pre-query
// snapshot is what makes a concurrent write safe: if a write lands
// during the search, the cache's counter is already past the snapshot
// and Put drops the entry, so it can never be served stale.
type cacheRef struct {
	c      *cache.Cache
	key    cache.Key
	seq    uint64
	region cache.Region
}

// rangeRef resolves the cache slot for a range query (shared by the
// serial, parallel, and batch paths — their results are identical by
// construction, so they share entries). The region is the query's
// bounding rectangle with radius ε: by Lemma 1, no write farther than ε
// from every query point can change the answer.
func (db *Database) rangeRef(q *Sequence, eps float64) cacheRef {
	c := db.qcache.Load()
	if c == nil {
		return cacheRef{}
	}
	return cacheRef{
		c:      c,
		key:    queryFingerprint(fpKindRange, MetricD{}, q, eps, db.opts.Partition, 0),
		seq:    c.Seq(),
		region: cache.Region{Rect: geom.BoundingRect(q.Points), Radius: eps},
	}
}

// metricRangeRef resolves the cache slot for a metric range search. The
// region semantics carry over to every supported metric: a write farther
// than ε from the query's bounding rectangle has MinDist > ε to every
// query point, and both D and windowed DTW are lower-bounded by that
// MinDist (each distance averages per-point Euclidean terms, every one
// at least the rect gap), so it cannot enter or leave the answer.
func (db *Database) metricRangeRef(q *Sequence, eps float64, m Metric) cacheRef {
	c := db.qcache.Load()
	if c == nil {
		return cacheRef{}
	}
	return cacheRef{
		c:      c,
		key:    queryFingerprint(fpKindMetricRange, m, q, eps, db.opts.Partition, 0),
		seq:    c.Seq(),
		region: cache.Region{Rect: geom.BoundingRect(q.Points), Radius: eps},
	}
}

// metricKNNRef resolves the cache slot for an unbounded metric kNN
// query; putMetricKNN fills the region radius (the k-th distance) in.
func (db *Database) metricKNNRef(q *Sequence, k int, m Metric) cacheRef {
	c := db.qcache.Load()
	if c == nil {
		return cacheRef{}
	}
	return cacheRef{
		c:      c,
		key:    queryFingerprint(fpKindMetricKNN, m, q, 0, db.opts.Partition, uint64(k)),
		seq:    c.Seq(),
		region: cache.Region{Rect: geom.BoundingRect(q.Points)},
	}
}

// knnRef resolves the cache slot for an unbounded kNN query. The
// region's radius is unknown until the result exists (it is the k-th
// neighbor's distance); putKNN fills it in.
func (db *Database) knnRef(q *Sequence, k int) cacheRef {
	c := db.qcache.Load()
	if c == nil {
		return cacheRef{}
	}
	return cacheRef{
		c:      c,
		key:    queryFingerprint(fpKindKNN, MetricD{}, q, 0, db.opts.Partition, uint64(k)),
		seq:    c.Seq(),
		region: cache.Region{Rect: geom.BoundingRect(q.Points)},
	}
}

// getRange returns the cached result for this slot, stats flagged
// CacheHit, with the hit's (near-zero) latency in Phase timings left as
// the original run's — callers read them as "the cost this answer
// represents", not "the cost of this call".
func (r cacheRef) getRange() ([]Match, SearchStats, bool) {
	if r.c == nil {
		return nil, SearchStats{}, false
	}
	v, ok := r.c.Get(r.key)
	if !ok {
		return nil, SearchStats{}, false
	}
	cr := v.Data.(*cachedRange)
	st := cr.stats
	st.CacheHit = true
	return cr.matches, st, true
}

// putRange stores a completed range search under the pre-query
// write-sequence snapshot, charging the run's CPUTime as the entry's
// cost. Partial results are refused by the cache itself (defense in
// depth; single-node searches are never partial).
func (r cacheRef) putRange(ms []Match, st SearchStats) {
	if r.c == nil {
		return
	}
	r.c.Put(r.key, r.seq, cache.Value{
		Data:    &cachedRange{matches: ms, stats: st},
		Bytes:   approxRangeBytes(ms),
		Cost:    st.CPUTime,
		Region:  r.region,
		Partial: st.Partial,
	})
}

// getMetricRange returns the cached metric range result for this slot,
// stats flagged CacheHit.
func (r cacheRef) getMetricRange() ([]MetricMatch, SearchStats, bool) {
	if r.c == nil {
		return nil, SearchStats{}, false
	}
	v, ok := r.c.Get(r.key)
	if !ok {
		return nil, SearchStats{}, false
	}
	cr := v.Data.(*cachedMetricRange)
	st := cr.stats
	st.CacheHit = true
	return cr.matches, st, true
}

// putMetricRange stores a completed metric range search under the
// pre-query write-sequence snapshot.
func (r cacheRef) putMetricRange(ms []MetricMatch, st SearchStats) {
	if r.c == nil {
		return
	}
	r.c.Put(r.key, r.seq, cache.Value{
		Data:    &cachedMetricRange{matches: ms, stats: st},
		Bytes:   160 + 40*len(ms),
		Cost:    st.CPUTime,
		Region:  r.region,
		Partial: st.Partial,
	})
}

// getKNN returns a copy of the cached kNN result for this slot.
func (r cacheRef) getKNN() ([]KNNResult, bool) {
	if r.c == nil {
		return nil, false
	}
	v, ok := r.c.Get(r.key)
	if !ok {
		return nil, false
	}
	return append([]KNNResult(nil), v.Data.(*cachedKNN).results...), true
}

// putKNN stores a completed kNN query under the pre-query write-sequence
// snapshot. The slice is copied so later in-place edits by the caller
// (global-id rewriting in the scatter layer) cannot corrupt the entry.
// The region radius is the k-th neighbor's distance when the answer is
// full — a write farther than that from the query cannot displace any
// neighbor — and +Inf (invalidate on every write) while the corpus holds
// fewer than k sequences, since any addition could then enter the
// answer.
func (r cacheRef) putKNN(rs []KNNResult, k int, took time.Duration) {
	if r.c == nil {
		return
	}
	rs = append([]KNNResult(nil), rs...)
	reg := r.region
	reg.Radius = math.Inf(1)
	if len(rs) == k {
		reg.Radius = rs[len(rs)-1].Dist
	}
	r.c.Put(r.key, r.seq, cache.Value{
		Data:   &cachedKNN{results: rs},
		Bytes:  approxKNNBytes(rs),
		Cost:   took,
		Region: reg,
	})
}
