package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// AddAll stores a whole corpus at once. Sequences are validated and
// partitioned in parallel before any lock is taken; on an empty database
// the R*-tree is then bulk-loaded with STR packing — much faster and more
// compact than repeated Add — while on a non-empty database the
// pre-partitioned sequences are inserted under one lock hold. Either way
// the batch is all-or-nothing: a failure mid-insert rolls back every
// entry of the batch, so a partial bulk is never visible to readers or to
// a later crash recovery. Returned ids are dense and in input order. As
// with Add, the database keeps references to the sequences.
func (db *Database) AddAll(seqs []*Sequence) ([]uint32, error) {
	segs, err := db.partitionAll(seqs)
	if err != nil || len(segs) == 0 {
		return nil, err
	}
	// One region notification covers the whole batch: the union of every
	// added sequence's bounds.
	var wrote geom.Rect
	for _, g := range segs {
		wrote.ExtendRect(g.Bounds())
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	if db.pg == nil {
		return nil, errors.New("core: database closed")
	}

	if len(db.seqs) > 0 {
		// Bulk path needs an empty tree; insert the pre-partitioned batch
		// sequentially, undoing the whole batch on any failure.
		ids := make([]uint32, len(seqs))
		for i, g := range segs {
			id, err := db.addSegmentedLocked(g)
			if err != nil {
				db.unwindLocked(ids[:i])
				return nil, fmt.Errorf("core: bulk insert of sequence %d: %w", i, err)
			}
			ids[i] = id
		}
		db.notifyWrite(wrote)
		db.met.RecordBulkAdd(len(seqs))
		db.met.SetShape(db.live, db.tree.Len())
		return ids, nil
	}

	var items []rtree.Item
	ids := make([]uint32, len(seqs))
	for i, g := range segs {
		id := uint32(i)
		seqs[i].ID = id
		ids[i] = id
		for j, m := range g.MBRs {
			items = append(items, rtree.Item{Rect: m.Rect, Ref: rtree.PackRef(id, uint32(j))})
		}
	}
	if err := db.tree.BulkLoad(items); err != nil {
		return nil, err
	}
	db.seqs = segs
	db.live = len(segs)
	db.notifyWrite(wrote)
	db.met.RecordBulkAdd(len(seqs))
	db.met.SetShape(db.live, db.tree.Len())
	return ids, nil
}

// AddAllSegmented bulk-loads a corpus that is already partitioned — the
// zero-deserialization path of the v2 segment store, whose files carry
// the Segmented columnar form directly. The database must be empty; ids
// are assigned densely in input order, exactly as AddAll would. With
// leaves nil the R*-tree is STR bulk-loaded from the sequences' MBRs;
// with leaves set (each inner slice one packed leaf page of refs, as
// recorded by the store's packed-tree section) the leaf grouping is
// reused verbatim and only the upper levels are tiled, skipping the
// leaf-level sorts. Every ref must name a valid (sequence, MBR) pair and
// the refs must cover every MBR exactly once; violations reject the
// whole load. The database keeps references to the segments; callers
// must not mutate them afterwards.
func (db *Database) AddAllSegmented(segs []*Segmented, leaves [][]rtree.Ref) ([]uint32, error) {
	if len(segs) == 0 {
		return nil, nil
	}
	total := 0
	for i, g := range segs {
		if g == nil || g.Seq == nil {
			return nil, fmt.Errorf("core: nil segment %d", i)
		}
		if g.Seq.Dim() != db.opts.Dim {
			return nil, fmt.Errorf("core: sequence %d dim %d, database dim %d: %w",
				i, g.Seq.Dim(), db.opts.Dim, geom.ErrDimensionMismatch)
		}
		total += len(g.MBRs)
	}

	var wrote geom.Rect
	for _, g := range segs {
		wrote.ExtendRect(g.Bounds())
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	if db.pg == nil {
		return nil, errors.New("core: database closed")
	}
	if len(db.seqs) > 0 {
		return nil, errors.New("core: AddAllSegmented requires an empty database")
	}

	ids := make([]uint32, len(segs))
	for i, g := range segs {
		g.Seq.ID = uint32(i)
		ids[i] = uint32(i)
	}
	if leaves != nil {
		leafItems, err := leavesToItems(segs, leaves, total)
		if err != nil {
			return nil, err
		}
		if err := db.tree.BulkLoadLeaves(leafItems); err != nil {
			return nil, err
		}
	} else {
		items := make([]rtree.Item, 0, total)
		for i, g := range segs {
			for j, m := range g.MBRs {
				items = append(items, rtree.Item{Rect: m.Rect, Ref: rtree.PackRef(uint32(i), uint32(j))})
			}
		}
		if err := db.tree.BulkLoad(items); err != nil {
			return nil, err
		}
	}
	db.seqs = segs
	db.live = len(segs)
	db.notifyWrite(wrote)
	db.met.RecordBulkAdd(len(segs))
	db.met.SetShape(db.live, db.tree.Len())
	return ids, nil
}

// leavesToItems resolves a packed leaf grouping of refs against the
// segments, verifying that every ref names a live (sequence, MBR) pair
// and that the grouping covers every MBR exactly once — a corrupt or
// foreign tree section must fail the load, never produce a tree that
// silently misses entries.
func leavesToItems(segs []*Segmented, leaves [][]rtree.Ref, total int) ([][]rtree.Item, error) {
	seen := make([]bool, total)
	// base[i] = number of MBRs before sequence i, for the coverage bitmap.
	base := make([]int, len(segs)+1)
	for i, g := range segs {
		base[i+1] = base[i] + len(g.MBRs)
	}
	out := make([][]rtree.Item, len(leaves))
	covered := 0
	for li, leaf := range leaves {
		items := make([]rtree.Item, len(leaf))
		for k, ref := range leaf {
			id, j := ref.Unpack()
			if int(id) >= len(segs) || int(j) >= len(segs[id].MBRs) {
				return nil, fmt.Errorf("core: packed leaf %d ref (%d,%d) out of range", li, id, j)
			}
			ord := base[id] + int(j)
			if seen[ord] {
				return nil, fmt.Errorf("core: packed leaf %d ref (%d,%d) duplicated", li, id, j)
			}
			seen[ord] = true
			covered++
			items[k] = rtree.Item{Rect: segs[id].MBRs[j].Rect, Ref: ref}
		}
		out[li] = items
	}
	if covered != total {
		return nil, fmt.Errorf("core: packed leaves cover %d of %d MBRs", covered, total)
	}
	return out, nil
}

// partitionAll validates every sequence and partitions them in parallel
// (partitioning is CPU-bound and independent), without touching any
// database state that needs the lock.
func (db *Database) partitionAll(seqs []*Sequence) ([]*Segmented, error) {
	if len(seqs) == 0 {
		return nil, nil
	}
	for i, s := range seqs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("core: sequence %d: %w", i, err)
		}
		if s.Dim() != db.opts.Dim {
			return nil, fmt.Errorf("core: sequence %d dim %d, database dim %d: %w",
				i, s.Dim(), db.opts.Dim, geom.ErrDimensionMismatch)
		}
	}
	segs := make([]*Segmented, len(seqs))
	errs := make([]error, len(seqs))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				segs[i], errs[i] = NewSegmented(seqs[i], db.opts.Partition)
			}
		}()
	}
	for i := range seqs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: partitioning sequence %d: %w", i, err)
		}
	}
	return segs, nil
}

// unwindLocked removes the just-inserted batch prefix (ids, in insertion
// order) so a failed AddAll leaves the database exactly as it was.
// Caller holds db.mu. The ids are the most recent directory entries, so
// truncating the directory after deleting the index entries restores the
// pre-batch state (ids stay dense).
func (db *Database) unwindLocked(ids []uint32) {
	for i := len(ids) - 1; i >= 0; i-- {
		id := ids[i]
		g := db.seqs[id]
		for j, m := range g.MBRs {
			db.tree.Delete(m.Rect, rtree.PackRef(id, uint32(j)))
		}
		db.seqs = db.seqs[:id]
		db.live--
	}
}
