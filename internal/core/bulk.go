package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// AddAll stores a whole corpus at once. On an empty database it partitions
// the sequences in parallel and bulk-loads the R*-tree with STR packing —
// much faster and more compact than repeated Add; on a non-empty database
// it falls back to sequential Adds. Returned ids are dense and in input
// order. As with Add, the database keeps references to the sequences.
func (db *Database) AddAll(seqs []*Sequence) ([]uint32, error) {
	if len(seqs) == 0 {
		return nil, nil
	}
	for i, s := range seqs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("core: sequence %d: %w", i, err)
		}
		if s.Dim() != db.opts.Dim {
			return nil, fmt.Errorf("core: sequence %d dim %d, database dim %d: %w",
				i, s.Dim(), db.opts.Dim, geom.ErrDimensionMismatch)
		}
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	if db.pg == nil {
		return nil, errors.New("core: database closed")
	}

	if len(db.seqs) > 0 {
		// Bulk path needs an empty tree; degrade gracefully.
		ids := make([]uint32, len(seqs))
		for i, s := range seqs {
			g, err := NewSegmented(s, db.opts.Partition)
			if err != nil {
				return nil, err
			}
			id := uint32(len(db.seqs))
			s.ID = id
			for j, m := range g.MBRs {
				if err := db.tree.Insert(m.Rect, rtree.PackRef(id, uint32(j))); err != nil {
					return nil, err
				}
			}
			db.seqs = append(db.seqs, g)
			db.live++
			ids[i] = id
		}
		db.bumpEpoch()
		db.met.RecordBulkAdd(len(seqs))
		db.met.SetShape(db.live, db.tree.Len())
		return ids, nil
	}

	// Partition in parallel; partitioning is CPU-bound and independent.
	segs := make([]*Segmented, len(seqs))
	errs := make([]error, len(seqs))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				segs[i], errs[i] = NewSegmented(seqs[i], db.opts.Partition)
			}
		}()
	}
	for i := range seqs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: partitioning sequence %d: %w", i, err)
		}
	}

	var items []rtree.Item
	ids := make([]uint32, len(seqs))
	for i, g := range segs {
		id := uint32(i)
		seqs[i].ID = id
		ids[i] = id
		for j, m := range g.MBRs {
			items = append(items, rtree.Item{Rect: m.Rect, Ref: rtree.PackRef(id, uint32(j))})
		}
	}
	if err := db.tree.BulkLoad(items); err != nil {
		return nil, err
	}
	db.seqs = segs
	db.live = len(segs)
	db.bumpEpoch()
	db.met.RecordBulkAdd(len(seqs))
	db.met.SetShape(db.live, db.tree.Len())
	return ids, nil
}
