package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// AddAll stores a whole corpus at once. Sequences are validated and
// partitioned in parallel before any lock is taken; on an empty database
// the R*-tree is then bulk-loaded with STR packing — much faster and more
// compact than repeated Add — while on a non-empty database the
// pre-partitioned sequences are inserted under one lock hold. Either way
// the batch is all-or-nothing: a failure mid-insert rolls back every
// entry of the batch, so a partial bulk is never visible to readers or to
// a later crash recovery. Returned ids are dense and in input order. As
// with Add, the database keeps references to the sequences.
func (db *Database) AddAll(seqs []*Sequence) ([]uint32, error) {
	segs, err := db.partitionAll(seqs)
	if err != nil || len(segs) == 0 {
		return nil, err
	}
	// One region notification covers the whole batch: the union of every
	// added sequence's bounds.
	var wrote geom.Rect
	for _, g := range segs {
		wrote.ExtendRect(g.Bounds())
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	if db.pg == nil {
		return nil, errors.New("core: database closed")
	}

	if len(db.seqs) > 0 {
		// Bulk path needs an empty tree; insert the pre-partitioned batch
		// sequentially, undoing the whole batch on any failure.
		ids := make([]uint32, len(seqs))
		for i, g := range segs {
			id, err := db.addSegmentedLocked(g)
			if err != nil {
				db.unwindLocked(ids[:i])
				return nil, fmt.Errorf("core: bulk insert of sequence %d: %w", i, err)
			}
			ids[i] = id
		}
		db.notifyWrite(wrote)
		db.met.RecordBulkAdd(len(seqs))
		db.met.SetShape(db.live, db.tree.Len())
		return ids, nil
	}

	var items []rtree.Item
	ids := make([]uint32, len(seqs))
	for i, g := range segs {
		id := uint32(i)
		seqs[i].ID = id
		ids[i] = id
		for j, m := range g.MBRs {
			items = append(items, rtree.Item{Rect: m.Rect, Ref: rtree.PackRef(id, uint32(j))})
		}
	}
	if err := db.tree.BulkLoad(items); err != nil {
		return nil, err
	}
	db.seqs = segs
	db.live = len(segs)
	db.notifyWrite(wrote)
	db.met.RecordBulkAdd(len(seqs))
	db.met.SetShape(db.live, db.tree.Len())
	return ids, nil
}

// partitionAll validates every sequence and partitions them in parallel
// (partitioning is CPU-bound and independent), without touching any
// database state that needs the lock.
func (db *Database) partitionAll(seqs []*Sequence) ([]*Segmented, error) {
	if len(seqs) == 0 {
		return nil, nil
	}
	for i, s := range seqs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("core: sequence %d: %w", i, err)
		}
		if s.Dim() != db.opts.Dim {
			return nil, fmt.Errorf("core: sequence %d dim %d, database dim %d: %w",
				i, s.Dim(), db.opts.Dim, geom.ErrDimensionMismatch)
		}
	}
	segs := make([]*Segmented, len(seqs))
	errs := make([]error, len(seqs))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				segs[i], errs[i] = NewSegmented(seqs[i], db.opts.Partition)
			}
		}()
	}
	for i := range seqs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: partitioning sequence %d: %w", i, err)
		}
	}
	return segs, nil
}

// unwindLocked removes the just-inserted batch prefix (ids, in insertion
// order) so a failed AddAll leaves the database exactly as it was.
// Caller holds db.mu. The ids are the most recent directory entries, so
// truncating the directory after deleting the index entries restores the
// pre-batch state (ids stay dense).
func (db *Database) unwindLocked(ids []uint32) {
	for i := len(ids) - 1; i >= 0; i-- {
		id := ids[i]
		g := db.seqs[id]
		for j, m := range g.MBRs {
			db.tree.Delete(m.Rect, rtree.PackRef(id, uint32(j)))
		}
		db.seqs = db.seqs[:id]
		db.live--
	}
}
