package core

import (
	"fmt"

	"repro/internal/geom"
)

// MBRInfo is one partition of a sequence: the minimum bounding rectangle of
// the points in the half-open index range [Start, End).
type MBRInfo struct {
	Rect       geom.Rect
	Start, End int
}

// Count returns the number of points the MBR encloses (the paper's m_j).
func (m MBRInfo) Count() int { return m.End - m.Start }

// PartitionConfig tunes the PARTITIONING_SEQUENCE algorithm of Section
// 3.4.3.
type PartitionConfig struct {
	// QueryExtent is the paper's Q_k + ε term in
	// MCOST = Π_k (L_k + Q_k + ε) / m: the anticipated query MBR side plus
	// threshold, folded into the cost of each MBR side. The paper adopts
	// 0.3 after experimentation; our ablation bench sweeps it.
	QueryExtent float64
	// MaxPoints caps the points per MBR (the paper's "max: the predefined
	// value of maximum points per MBR").
	MaxPoints int
}

// DefaultPartitionConfig returns the paper's settings: Q_k + ε = 0.3 with a
// 64-point cap.
func DefaultPartitionConfig() PartitionConfig {
	return PartitionConfig{QueryExtent: 0.3, MaxPoints: 64}
}

func (c PartitionConfig) validate() error {
	if c.QueryExtent < 0 {
		return fmt.Errorf("core: negative QueryExtent %g", c.QueryExtent)
	}
	if c.MaxPoints < 1 {
		return fmt.Errorf("core: MaxPoints %d < 1", c.MaxPoints)
	}
	return nil
}

// mcost is the marginal cost of an MBR with the given bounding rect and
// point count: the estimated disk accesses Π_k (L_k + QueryExtent) divided
// by the number of points amortizing them.
func (c PartitionConfig) mcost(r geom.Rect, count int) float64 {
	da := 1.0
	for k := 0; k < r.Dim(); k++ {
		da *= r.Side(k) + c.QueryExtent
	}
	return da / float64(count)
}

// Partition segments a sequence into MBRs with the paper's greedy
// marginal-cost rule: a point joins the current MBR unless doing so would
// increase the per-point cost or overflow the cap, in which case it starts
// a new MBR. Consecutive MBRs cover contiguous, non-overlapping index
// ranges whose union is the whole sequence.
func Partition(s *Sequence, cfg PartitionConfig) ([]MBRInfo, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var out []MBRInfo
	cur := MBRInfo{Rect: geom.RectFromPoint(s.Points[0]), Start: 0, End: 1}
	curCost := cfg.mcost(cur.Rect, 1)
	for i := 1; i < len(s.Points); i++ {
		p := s.Points[i]
		grown := cur.Rect.Clone()
		grown.ExtendPoint(p)
		grownCost := cfg.mcost(grown, cur.Count()+1)
		if grownCost > curCost || cur.Count() >= cfg.MaxPoints {
			out = append(out, cur)
			cur = MBRInfo{Rect: geom.RectFromPoint(p), Start: i, End: i + 1}
			curCost = cfg.mcost(cur.Rect, 1)
			continue
		}
		cur.Rect = grown
		cur.End = i + 1
		curCost = grownCost
	}
	out = append(out, cur)
	return out, nil
}

// Segmented couples a sequence with its partitioning; it is the stored
// form inside a Database and the unit Dnorm operates on.
type Segmented struct {
	Seq  *Sequence
	MBRs []MBRInfo
}

// NewSegmented partitions s under cfg.
func NewSegmented(s *Sequence, cfg PartitionConfig) (*Segmented, error) {
	mbrs, err := Partition(s, cfg)
	if err != nil {
		return nil, err
	}
	return &Segmented{Seq: s, MBRs: mbrs}, nil
}

// PointsIn returns the points covered by MBR j.
func (g *Segmented) PointsIn(j int) []geom.Point {
	m := g.MBRs[j]
	return g.Seq.Points[m.Start:m.End]
}

// CheckPartition verifies partition invariants (for tests and debugging):
// ranges tile [0, Len) contiguously, each MBR bounds exactly its points,
// and no MBR exceeds the cap.
func (g *Segmented) CheckPartition(cfg PartitionConfig) error {
	want := 0
	for j, m := range g.MBRs {
		if m.Start != want {
			return fmt.Errorf("core: MBR %d starts at %d, want %d", j, m.Start, want)
		}
		if m.End <= m.Start {
			return fmt.Errorf("core: MBR %d empty range [%d,%d)", j, m.Start, m.End)
		}
		if m.Count() > cfg.MaxPoints {
			return fmt.Errorf("core: MBR %d holds %d points, cap %d", j, m.Count(), cfg.MaxPoints)
		}
		exact := geom.BoundingRect(g.Seq.Points[m.Start:m.End])
		if !m.Rect.Equal(exact) {
			return fmt.Errorf("core: MBR %d rect %v != bound %v", j, m.Rect, exact)
		}
		want = m.End
	}
	if want != g.Seq.Len() {
		return fmt.Errorf("core: partition covers %d of %d points", want, g.Seq.Len())
	}
	return nil
}
