package core

import (
	"fmt"

	"repro/internal/geom"
)

// MBRInfo is one partition of a sequence: the minimum bounding rectangle of
// the points in the half-open index range [Start, End).
type MBRInfo struct {
	Rect       geom.Rect // bounding rectangle of the covered points
	Start, End int       // half-open point-index range the MBR covers
}

// Count returns the number of points the MBR encloses (the paper's m_j).
func (m MBRInfo) Count() int { return m.End - m.Start }

// PartitionConfig tunes the PARTITIONING_SEQUENCE algorithm of Section
// 3.4.3.
type PartitionConfig struct {
	// QueryExtent is the paper's Q_k + ε term in
	// MCOST = Π_k (L_k + Q_k + ε) / m: the anticipated query MBR side plus
	// threshold, folded into the cost of each MBR side. The paper adopts
	// 0.3 after experimentation; our ablation bench sweeps it.
	QueryExtent float64
	// MaxPoints caps the points per MBR (the paper's "max: the predefined
	// value of maximum points per MBR").
	MaxPoints int
}

// DefaultPartitionConfig returns the paper's settings: Q_k + ε = 0.3 with a
// 64-point cap.
func DefaultPartitionConfig() PartitionConfig {
	return PartitionConfig{QueryExtent: 0.3, MaxPoints: 64}
}

func (c PartitionConfig) validate() error {
	if c.QueryExtent < 0 {
		return fmt.Errorf("core: negative QueryExtent %g", c.QueryExtent)
	}
	if c.MaxPoints < 1 {
		return fmt.Errorf("core: MaxPoints %d < 1", c.MaxPoints)
	}
	return nil
}

// mcost is the marginal cost of an MBR with the given bounding rect and
// point count: the estimated disk accesses Π_k (L_k + QueryExtent) divided
// by the number of points amortizing them.
func (c PartitionConfig) mcost(r geom.Rect, count int) float64 {
	da := 1.0
	for k := 0; k < r.Dim(); k++ {
		da *= r.Side(k) + c.QueryExtent
	}
	return da / float64(count)
}

// mcostGrown is mcost of the rectangle r would become after absorbing p,
// computed without materializing the grown rectangle. The per-axis side is
// max(H_k, p_k) − min(L_k, p_k) — exactly the side an ExtendPoint+Side
// round trip produces, in the same axis order, so the greedy rule below
// makes bit-identical decisions to the clone-based original.
func (c PartitionConfig) mcostGrown(r geom.Rect, p geom.Point, count int) float64 {
	da := 1.0
	for k := range p {
		lo, hi := r.L[k], r.H[k]
		if p[k] < lo {
			lo = p[k]
		}
		if p[k] > hi {
			hi = p[k]
		}
		da *= (hi - lo) + c.QueryExtent
	}
	return da / float64(count)
}

// Partition segments a sequence into MBRs with the paper's greedy
// marginal-cost rule: a point joins the current MBR unless doing so would
// increase the per-point cost or overflow the cap, in which case it starts
// a new MBR. Consecutive MBRs cover contiguous, non-overlapping index
// ranges whose union is the whole sequence.
func Partition(s *Sequence, cfg PartitionConfig) ([]MBRInfo, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var out []MBRInfo
	// The candidate cost is evaluated with mcostGrown instead of cloning
	// and extending a trial rectangle (two allocations per point in the
	// original); the rectangle is grown in place only once the point is
	// accepted. RectFromPoint clones, so the growth never aliases s.Points.
	cur := MBRInfo{Rect: geom.RectFromPoint(s.Points[0]), Start: 0, End: 1}
	curCost := cfg.mcost(cur.Rect, 1)
	for i := 1; i < len(s.Points); i++ {
		p := s.Points[i]
		grownCost := cfg.mcostGrown(cur.Rect, p, cur.Count()+1)
		if grownCost > curCost || cur.Count() >= cfg.MaxPoints {
			out = append(out, cur)
			cur = MBRInfo{Rect: geom.RectFromPoint(p), Start: i, End: i + 1}
			curCost = cfg.mcost(cur.Rect, 1)
			continue
		}
		cur.Rect.ExtendPoint(p)
		cur.End = i + 1
		curCost = grownCost
	}
	out = append(out, cur)
	return out, nil
}

// Segmented couples a sequence with its partitioning; it is the stored
// form inside a Database and the unit Dnorm operates on. Alongside the
// slice-of-slices view it carries a columnar (structure-of-arrays) copy of
// the same data — Flat/Lo/Hi — which the search kernels scan as one
// contiguous float64 run instead of chasing a pointer per point or MBR.
type Segmented struct {
	Seq  *Sequence // the partitioned sequence
	MBRs []MBRInfo // its MCOST partitioning, in point order

	// Flat is the columnar copy of Seq.Points: point i occupies
	// Flat[i*d : (i+1)*d]. It backs the flat alignment kernel used by kNN
	// refinement.
	Flat []float64
	// Lo and Hi hold every MBR's bounds contiguously: MBR j occupies
	// Lo[j*d:(j+1)*d] and Hi[j*d:(j+1)*d]. After syncSoA the MBRInfo.Rect
	// slices alias directly into these arrays, so the two views are one
	// storage and cannot diverge. MinDistSqBatch scans them sequentially
	// in the Dnorm inner loop.
	Lo, Hi []float64

	// QLo and QHi are the quantized sidecar of Lo/Hi: float32 copies with
	// lows rounded toward −∞ and highs toward +∞, so every quantized MBR
	// encloses its exact original and distances computed from them are
	// conservative lower bounds (see geom.QuantizeDown/QuantizeUp). The
	// phase-3 prefilter scans these — half the memory traffic — before
	// the exact float64 kernel confirms survivors.
	QLo, QHi []float32
}

// NewSegmented partitions s under cfg and builds the columnar view.
func NewSegmented(s *Sequence, cfg PartitionConfig) (*Segmented, error) {
	mbrs, err := Partition(s, cfg)
	if err != nil {
		return nil, err
	}
	g := &Segmented{Seq: s, MBRs: mbrs}
	g.syncSoA()
	return g, nil
}

// syncSoA (re)builds the columnar arrays from Seq.Points and MBRs and
// re-aliases each MBRInfo.Rect into Lo/Hi. Call after any mutation of the
// points or the partitioning (NewSegmented, AppendPoints). Rects handed
// out before the call keep the previous backing arrays, which stay valid
// and immutable — a rebuild replaces the arrays rather than scribbling
// over them.
func (g *Segmented) syncSoA() {
	d := g.Seq.Dim()
	n := g.Seq.Len()
	r := len(g.MBRs)
	flat := make([]float64, n*d)
	for i, p := range g.Seq.Points {
		copy(flat[i*d:(i+1)*d], p)
	}
	lo := make([]float64, r*d)
	hi := make([]float64, r*d)
	for j := range g.MBRs {
		copy(lo[j*d:(j+1)*d], g.MBRs[j].Rect.L)
		copy(hi[j*d:(j+1)*d], g.MBRs[j].Rect.H)
		g.MBRs[j].Rect = geom.Rect{
			L: lo[j*d : (j+1)*d : (j+1)*d],
			H: hi[j*d : (j+1)*d : (j+1)*d],
		}
	}
	g.Flat, g.Lo, g.Hi = flat, lo, hi
	g.syncQuant()
}

// syncQuant (re)builds the quantized float32 sidecar from Lo/Hi with
// outward rounding. Called by syncSoA and by the zero-copy store loader,
// which aliases Lo/Hi into a mapped file and derives the sidecar rather
// than storing it.
func (g *Segmented) syncQuant() {
	n := len(g.Lo)
	if cap(g.QLo) < n {
		g.QLo = make([]float32, n)
		g.QHi = make([]float32, n)
	}
	g.QLo, g.QHi = g.QLo[:n], g.QHi[:n]
	geom.QuantizeDown(g.QLo, g.Lo)
	geom.QuantizeUp(g.QHi, g.Hi)
}

// NewSegmentedColumnar assembles a Segmented directly from its columnar
// parts — the zero-copy constructor the v2 store loader uses. flat holds
// the points (point i at flat[i*d:(i+1)*d]), lo/hi the MBR bounds (MBR j
// at [j*d:(j+1)*d]), and ranges the half-open point ranges of the MBRs,
// which must tile [0, len(s.Points)) contiguously. The slices are aliased,
// not copied (s.Points should itself alias flat), each MBRInfo.Rect is
// re-aliased into lo/hi, and the quantized sidecar is derived. No
// partitioning runs: the caller asserts ranges came from Partition under
// the database's config (the store format records and checksums them).
func NewSegmentedColumnar(s *Sequence, ranges []MBRInfo, flat, lo, hi []float64) (*Segmented, error) {
	g, err := newColumnar(s, ranges, flat, lo, hi)
	if err != nil {
		return nil, err
	}
	g.syncQuant()
	return g, nil
}

// NewSegmentedColumnarQ is NewSegmentedColumnar with a prebuilt
// quantized sidecar: qlo/qhi are aliased instead of being re-derived
// from lo/hi. The caller asserts they were produced by
// geom.QuantizeDown/QuantizeUp on exactly these bounds — the v2 store
// persists and checksums the sidecar next to the bounds themselves, so
// reloading trusts it on the same footing as lo/hi.
func NewSegmentedColumnarQ(s *Sequence, ranges []MBRInfo, flat, lo, hi []float64, qlo, qhi []float32) (*Segmented, error) {
	if len(qlo) != len(lo) || len(qhi) != len(hi) {
		return nil, fmt.Errorf("core: quantized sidecar sizes qlo=%d qhi=%d, want %d", len(qlo), len(qhi), len(lo))
	}
	g, err := newColumnar(s, ranges, flat, lo, hi)
	if err != nil {
		return nil, err
	}
	g.QLo, g.QHi = qlo, qhi
	return g, nil
}

// newColumnar validates and assembles the shared columnar parts; the
// exported constructors differ only in where the quantized sidecar
// comes from.
func newColumnar(s *Sequence, ranges []MBRInfo, flat, lo, hi []float64) (*Segmented, error) {
	d := s.Dim()
	n := s.Len()
	r := len(ranges)
	if len(flat) != n*d || len(lo) != r*d || len(hi) != r*d {
		return nil, fmt.Errorf("core: columnar sizes flat=%d lo=%d hi=%d for n=%d r=%d d=%d",
			len(flat), len(lo), len(hi), n, r, d)
	}
	want := 0
	for j := range ranges {
		if ranges[j].Start != want || ranges[j].End <= ranges[j].Start || ranges[j].End > n {
			return nil, fmt.Errorf("core: MBR %d range [%d,%d) does not tile %d points",
				j, ranges[j].Start, ranges[j].End, n)
		}
		want = ranges[j].End
		ranges[j].Rect = geom.Rect{
			L: lo[j*d : (j+1)*d : (j+1)*d],
			H: hi[j*d : (j+1)*d : (j+1)*d],
		}
	}
	if want != n {
		return nil, fmt.Errorf("core: MBR ranges cover %d of %d points", want, n)
	}
	return &Segmented{Seq: s, MBRs: ranges, Flat: flat, Lo: lo, Hi: hi}, nil
}

// Bounds returns the union of the partition MBRs — the sequence's
// overall minimum bounding rectangle, computed in O(#MBRs) from the
// partitioning without touching point data. It is the write region the
// database reports to the query cache (see internal/cache): every point
// of the sequence lies inside it, so any result a change to this
// sequence could affect is within MinDist reach of it.
func (g *Segmented) Bounds() geom.Rect {
	var r geom.Rect
	for j := range g.MBRs {
		r.ExtendRect(g.MBRs[j].Rect)
	}
	return r
}

// PointsIn returns the points covered by MBR j.
func (g *Segmented) PointsIn(j int) []geom.Point {
	m := g.MBRs[j]
	return g.Seq.Points[m.Start:m.End]
}

// CheckPartition verifies partition invariants (for tests and debugging):
// ranges tile [0, Len) contiguously, each MBR bounds exactly its points,
// and no MBR exceeds the cap.
func (g *Segmented) CheckPartition(cfg PartitionConfig) error {
	want := 0
	for j, m := range g.MBRs {
		if m.Start != want {
			return fmt.Errorf("core: MBR %d starts at %d, want %d", j, m.Start, want)
		}
		if m.End <= m.Start {
			return fmt.Errorf("core: MBR %d empty range [%d,%d)", j, m.Start, m.End)
		}
		if m.Count() > cfg.MaxPoints {
			return fmt.Errorf("core: MBR %d holds %d points, cap %d", j, m.Count(), cfg.MaxPoints)
		}
		exact := geom.BoundingRect(g.Seq.Points[m.Start:m.End])
		if !m.Rect.Equal(exact) {
			return fmt.Errorf("core: MBR %d rect %v != bound %v", j, m.Rect, exact)
		}
		want = m.End
	}
	if want != g.Seq.Len() {
		return fmt.Errorf("core: partition covers %d of %d points", want, g.Seq.Len())
	}
	return nil
}
