package core

// Hot-path equivalence and regression tests: the flat squared-space
// search paths (phase3Flat, segmentQuery, AppendWithinDist-backed phase 2,
// manual kNN heap, bestAlignFlat) must return byte-identical results to
// the seed implementations they replaced, and a warmed serial range
// search must not allocate. The seed forms — WithinDist, phase3One,
// newDnormCalc, container/heap, BestAlignment — are retained in-tree and
// reconstructed here as the reference.

import (
	"container/heap"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"reflect"
	"runtime/debug"
	"testing"
	"time"
)

// hotDB builds a database of n random-walk sequences in the given
// dimension.
func hotDB(t testing.TB, dim, n int, seed int64) (*Database, []*Sequence) {
	t.Helper()
	db, err := NewDatabase(Options{Dim: dim})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	rng := rand.New(rand.NewSource(seed))
	seqs := make([]*Sequence, n)
	for i := range seqs {
		s := randWalkSeq(rng, 40+rng.Intn(100), dim)
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
		seqs[i] = s
	}
	return db, seqs
}

// hotQueries builds a query mix: windows of stored sequences (guaranteed
// matches at small eps) plus fresh random walks.
func hotQueries(seqs []*Sequence, dim int, seed int64) []*Sequence {
	rng := rand.New(rand.NewSource(seed))
	var qs []*Sequence
	for i := 0; i < 6; i++ {
		src := seqs[rng.Intn(len(seqs))]
		n := 16 + rng.Intn(16)
		off := rng.Intn(len(src.Points) - n)
		qs = append(qs, &Sequence{Points: src.Points[off : off+n]})
	}
	for i := 0; i < 4; i++ {
		qs = append(qs, randWalkSeq(rng, 20+rng.Intn(20), dim))
	}
	return qs
}

// searchReference reconstructs the seed Search: phase 2 through the
// visitor-based WithinDist (via CandidatesDmbr), phase 3 through the
// closure-based phase3One, candidates in ascending id order.
func searchReference(t testing.TB, db *Database, q *Sequence, eps float64) []Match {
	t.Helper()
	cand, err := db.CandidatesDmbr(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	qseg, err := NewSegmented(q, db.opts.Partition)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint32, 0, len(cand))
	for id := range cand {
		ids = append(ids, id)
	}
	sortUint32s(ids)
	var out []Match
	for _, id := range ids {
		m, hit, _ := phase3One(qseg, db.seqs[id], q.Len(), eps)
		m.SeqID = id
		if hit {
			out = append(out, m)
		}
	}
	return out
}

// matchesEqual asserts two match sets are byte-identical: same ids in the
// same order, bit-equal MinDnorm, identical interval ranges.
func matchesEqual(t *testing.T, label string, got, want []Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, reference %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.SeqID != w.SeqID || g.Seq != w.Seq {
			t.Fatalf("%s: match %d is seq %d, reference %d", label, i, g.SeqID, w.SeqID)
		}
		if math.Float64bits(g.MinDnorm) != math.Float64bits(w.MinDnorm) {
			t.Fatalf("%s: match %d MinDnorm %v, reference %v (not bit-identical)",
				label, i, g.MinDnorm, w.MinDnorm)
		}
		if !reflect.DeepEqual(g.Interval.Ranges(), w.Interval.Ranges()) {
			t.Fatalf("%s: match %d interval %v, reference %v", label, i, g.Interval.Ranges(), w.Interval.Ranges())
		}
	}
}

// TestSearchMatchesReference checks the serial, parallel, and batch range
// searches against the seed reconstruction across dimensions, thresholds,
// and a mixed query workload — results must be byte-identical.
func TestSearchMatchesReference(t *testing.T) {
	for _, dim := range []int{2, 3, 4, 8} {
		db, seqs := hotDB(t, dim, 50, int64(200+dim))
		qs := hotQueries(seqs, dim, int64(dim))
		for _, eps := range []float64{0.05, 0.15, 0.3, 0.6} {
			var batchIn []*Sequence
			var refs [][]Match
			for qi, q := range qs {
				want := searchReference(t, db, q, eps)
				got, st, err := db.Search(q, eps)
				if err != nil {
					t.Fatal(err)
				}
				matchesEqual(t, fmt.Sprintf("dim %d eps %g query %d serial", dim, eps, qi), got, want)
				if st.CandidatesDmbr < len(want) {
					t.Fatalf("stats: %d candidates < %d matches", st.CandidatesDmbr, len(want))
				}
				pgot, pst, err := db.SearchParallel(q, eps, 4)
				if err != nil {
					t.Fatal(err)
				}
				matchesEqual(t, fmt.Sprintf("dim %d eps %g query %d parallel", dim, eps, qi), pgot, want)
				if pst.CandidatesDmbr != st.CandidatesDmbr || pst.IndexEntriesHit != st.IndexEntriesHit ||
					pst.DnormEvals != st.DnormEvals || pst.QueryMBRs != st.QueryMBRs {
					t.Fatalf("parallel stats diverge from serial: %+v vs %+v", pst, st)
				}
				batchIn = append(batchIn, q)
				refs = append(refs, want)
			}
			bout, _, err := db.SearchBatch(batchIn, eps)
			if err != nil {
				t.Fatal(err)
			}
			for qi := range batchIn {
				matchesEqual(t, fmt.Sprintf("dim %d eps %g query %d batch", dim, eps, qi), bout[qi], refs[qi])
			}
		}
	}
}

// TestSegmentQueryMatchesPartition checks that the pooled columnar query
// segmentation reproduces Partition exactly: same ranges, same bounds.
func TestSegmentQueryMatchesPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cfg := DefaultPartitionConfig()
	sc := getScratch()
	defer putScratch(sc)
	for trial := 0; trial < 50; trial++ {
		dim := 1 + rng.Intn(8)
		s := randWalkSeq(rng, 1+rng.Intn(200), dim)
		want, err := Partition(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sc.segmentQuery(s, cfg)
		if len(sc.qmbrs) != len(want) {
			t.Fatalf("trial %d: %d MBRs, Partition %d", trial, len(sc.qmbrs), len(want))
		}
		for j := range want {
			g, w := sc.qmbrs[j], want[j]
			if g.Start != w.Start || g.End != w.End {
				t.Fatalf("trial %d MBR %d: range [%d,%d), Partition [%d,%d)",
					trial, j, g.Start, g.End, w.Start, w.End)
			}
			if !g.Rect.Equal(w.Rect) {
				t.Fatalf("trial %d MBR %d: rect %v, Partition %v", trial, j, g.Rect, w.Rect)
			}
		}
	}
}

// refCandHeap is the seed kNN candidate heap (container/heap form), kept
// here so the reference reconstruction uses the original machinery.
type refCandHeap []knnCand

func (h refCandHeap) Len() int            { return len(h) }
func (h refCandHeap) Less(i, j int) bool  { return h[i].bound < h[j].bound }
func (h refCandHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refCandHeap) Push(x interface{}) { *h = append(*h, x.(knnCand)) }
func (h *refCandHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// knnReference reconstructs the seed SearchKNNBounded: container/heap
// candidate ordering by sweep lower bound, full BestAlignment refinement.
func knnReference(t testing.TB, db *Database, q *Sequence, k int, bound float64) []KNNResult {
	t.Helper()
	qseg, err := NewSegmented(q, db.opts.Partition)
	if err != nil {
		t.Fatal(err)
	}
	h := &refCandHeap{}
	for id, g := range db.seqs {
		if g == nil {
			continue
		}
		lb := math.Inf(1)
		for _, qm := range qseg.MBRs {
			c := newDnormCalc(qm.Rect, qm.Count(), g)
			if d := c.sweep(math.Inf(-1), nil); d < lb {
				lb = d
			}
		}
		heap.Push(h, knnCand{id: uint32(id), bound: lb})
	}
	var out []KNNResult
	worst := bound
	for h.Len() > 0 {
		c := heap.Pop(h).(knnCand)
		if c.bound > worst {
			break
		}
		g := db.seqs[c.id]
		off, dist := BestAlignment(q.Points, g.Seq.Points)
		if dist > bound {
			continue
		}
		out = insertKNN(out, KNNResult{SeqID: c.id, Seq: g.Seq, Dist: dist, Offset: off}, k)
		if len(out) == k && out[len(out)-1].Dist < worst {
			worst = out[len(out)-1].Dist
		}
	}
	return out
}

// TestKNNMatchesReference checks the flat kNN path (manual heap, batch
// Dnorm lower bounds, early-abandoning alignment) against the seed
// reconstruction, bounded and unbounded.
func TestKNNMatchesReference(t *testing.T) {
	for _, dim := range []int{2, 4, 8} {
		db, seqs := hotDB(t, dim, 60, int64(300+dim))
		qs := hotQueries(seqs, dim, int64(50+dim))
		for _, k := range []int{1, 3, 10} {
			for _, bound := range []float64{math.Inf(1), 0.4, 0.1} {
				for qi, q := range qs {
					want := knnReference(t, db, q, k, bound)
					got, err := db.SearchKNNBounded(q, k, bound)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("dim %d k %d bound %g query %d: %d results, reference %d",
							dim, k, bound, qi, len(got), len(want))
					}
					for i := range got {
						g, w := got[i], want[i]
						if g.SeqID != w.SeqID || g.Offset != w.Offset ||
							math.Float64bits(g.Dist) != math.Float64bits(w.Dist) {
							t.Fatalf("dim %d k %d bound %g query %d result %d: got {seq %d off %d dist %v}, reference {seq %d off %d dist %v}",
								dim, k, bound, qi, i, g.SeqID, g.Offset, g.Dist, w.SeqID, w.Offset, w.Dist)
						}
					}
				}
			}
		}
	}
}

// TestBestAlignFlatMatches checks the flat early-abandoning alignment
// kernel against BestAlignment with cutoff +Inf (must be bit-identical)
// and verifies the abandoning guarantee for finite cutoffs.
func TestBestAlignFlatMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	flatten := func(pts *Sequence, d int) []float64 {
		f := make([]float64, pts.Len()*d)
		for i, p := range pts.Points {
			copy(f[i*d:(i+1)*d], p)
		}
		return f
	}
	for trial := 0; trial < 60; trial++ {
		d := 1 + rng.Intn(6)
		a := randWalkSeq(rng, 5+rng.Intn(40), d)
		b := randWalkSeq(rng, 5+rng.Intn(80), d)
		fa, fb := flatten(a, d), flatten(b, d)
		wantOff, wantDist := BestAlignment(a.Points, b.Points)
		gotOff, gotDist := bestAlignFlat(fa, fb, d, math.Inf(1))
		if gotOff != wantOff || math.Float64bits(gotDist) != math.Float64bits(wantDist) {
			t.Fatalf("trial %d: flat (%d, %v), reference (%d, %v)", trial, gotOff, gotDist, wantOff, wantDist)
		}
		// With a finite cutoff, a result at or below the cutoff must still
		// be exact.
		cutoff := wantDist * (0.8 + rng.Float64()*0.4)
		cOff, cDist := bestAlignFlat(fa, fb, d, cutoff)
		if wantDist <= cutoff && (cOff != wantOff || math.Float64bits(cDist) != math.Float64bits(wantDist)) {
			t.Fatalf("trial %d: cutoff %v lost the best alignment: (%d, %v) vs (%d, %v)",
				trial, cutoff, cOff, cDist, wantOff, wantDist)
		}
		if wantDist > cutoff && cDist <= cutoff {
			t.Fatalf("trial %d: cutoff %v produced impossible dist %v (true best %v)",
				trial, cutoff, cDist, wantDist)
		}
	}
}

// TestHotpathAllocs is the allocation gate: a repeated no-match range
// search on a warmed scratch pool and flat node cache must not allocate
// at all. (A matching query necessarily allocates its result slice and
// intervals; the no-match case isolates the machinery itself.)
func TestHotpathAllocs(t *testing.T) {
	if raceEnabled {
		// Under the race detector sync.Pool.Put intentionally drops items
		// at random (see sync/pool.go), so the warmed scratch cannot be
		// guaranteed to be reused and the zero-alloc measurement is
		// meaningless. The gate still runs in every non-race invocation.
		t.Skip("sync.Pool deliberately drops Puts under -race; alloc gate needs a non-race build")
	}
	db, _ := hotDB(t, 4, 40, 7)
	// A GC cycle mid-measurement evicts the warmed sync.Pool scratch, and
	// the repopulating allocation would be charged to Search. That is a
	// pool artifact, not a hot-path allocation, so GC is held off for the
	// duration of the gate.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	// A query far outside the data's unit cube: phase 2 prunes everything,
	// every phase still runs.
	rng := rand.New(rand.NewSource(9))
	q := randWalkSeq(rng, 24, 4)
	for i := range q.Points {
		for k := range q.Points[i] {
			q.Points[i][k] += 50
		}
	}
	// Warm: pool scratch, flat node cache, metric paths.
	for i := 0; i < 3; i++ {
		ms, _, err := db.Search(q, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != 0 {
			t.Fatal("query unexpectedly matched; the alloc gate needs a no-match query")
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := db.Search(q, 0.3); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed no-match Search allocates %.1f times per run, want 0", allocs)
	}

	// A candidate-producing query must also stay allocation-free as long
	// as nothing matches: use a tiny eps so phase 3 runs but emits nothing.
	q2 := randWalkSeq(rng, 24, 4)
	probe := func(eps float64) int {
		ms, _, err := db.Search(q2, eps)
		if err != nil {
			t.Fatal(err)
		}
		return len(ms)
	}
	eps := 0.25
	for probe(eps) > 0 && eps > 1e-6 {
		eps /= 4
	}
	cand, err := db.CandidatesDmbr(q2, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(cand) > 0 {
		allocs := testing.AllocsPerRun(100, func() {
			if _, _, err := db.Search(q2, eps); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("warmed no-match Search with %d phase-3 candidates allocates %.1f times per run, want 0",
				len(cand), allocs)
		}
	}
}

// TestHotpathSpeedup is the acceptance measurement for the squared-space
// kernels: the same phase-2+3 range workload timed through the seed
// reconstruction (visitor search, per-pair dnormCalc allocation, closure
// sweep) and through Database.Search. With BENCH_HOTPATH_OUT set the
// numbers are written as BENCH_hotpath.json.
func TestHotpathSpeedup(t *testing.T) {
	const dim, nseq = 4, 150
	db, seqs := hotDB(t, dim, nseq, 13)
	qs := hotQueries(seqs, dim, 14)
	const eps = 0.3

	runSeed := func() {
		for _, q := range qs {
			searchReference(t, db, q, eps)
		}
	}
	runFlat := func() {
		for _, q := range qs {
			if _, _, err := db.Search(q, eps); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm both paths (pager pool, flat cache, scratch pool).
	runSeed()
	runFlat()

	const rounds = 5
	measure := func(fn func()) time.Duration {
		best := time.Duration(math.MaxInt64)
		for i := 0; i < rounds; i++ {
			t0 := time.Now()
			fn()
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	seedDur := measure(runSeed)
	flatDur := measure(runFlat)
	speedup := float64(seedDur) / float64(flatDur)
	t.Logf("dim=%d corpus=%d queries=%d eps=%g: seed %v, flat %v, speedup %.2fx",
		dim, nseq, len(qs), eps, seedDur, flatDur, speedup)
	if speedup < 1.5 {
		t.Errorf("hot-path speedup %.2fx < 1.5x", speedup)
	}

	if out := os.Getenv("BENCH_HOTPATH_OUT"); out != "" {
		doc := map[string]any{
			"name":      "hotpath_range_search_ab",
			"dim":       dim,
			"corpus":    nseq,
			"queries":   len(qs),
			"eps":       eps,
			"seed_ns":   seedDur.Nanoseconds(),
			"flat_ns":   flatDur.Nanoseconds(),
			"speedup":   speedup,
			"rounds":    rounds,
			"measure":   "best-of-rounds wall time for the full query set",
			"seed_path": "WithinDist visitor + per-pair dnormCalc + closure sweep",
			"flat_path": "Database.Search (AppendWithinDist + pooled scratch + MinDistSqBatch)",
		}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
			t.Fatalf("writing %s: %v", out, err)
		}
		t.Logf("wrote %s", out)
	}
}

// BenchmarkRangeSearch compares the seed reconstruction and the flat path
// across dimensions and corpus sizes with benchstat-friendly names:
// path=seed|flat / dim=D / n=N.
func BenchmarkRangeSearch(b *testing.B) {
	for _, dim := range []int{2, 4, 8, 16} {
		for _, n := range []int{50, 200} {
			db, seqs := hotDB(b, dim, n, int64(dim*n))
			qs := hotQueries(seqs, dim, int64(n))
			const eps = 0.25
			b.Run(fmt.Sprintf("path=seed/dim=%d/n=%d", dim, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					searchReference(b, db, qs[i%len(qs)], eps)
				}
			})
			b.Run(fmt.Sprintf("path=flat/dim=%d/n=%d", dim, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := db.Search(qs[i%len(qs)], eps); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkKNN compares the seed kNN reconstruction and the flat path.
func BenchmarkKNN(b *testing.B) {
	for _, dim := range []int{2, 4, 8} {
		db, seqs := hotDB(b, dim, 100, int64(900+dim))
		qs := hotQueries(seqs, dim, int64(dim))
		b.Run(fmt.Sprintf("path=seed/dim=%d", dim), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				knnReference(b, db, qs[i%len(qs)], 5, math.Inf(1))
			}
		})
		b.Run(fmt.Sprintf("path=flat/dim=%d", dim), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.SearchKNN(qs[i%len(qs)], 5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
