package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/geom"
)

// cachedDB builds a populated database with a query cache attached.
func cachedDB(t *testing.T, n int, seed int64) (*Database, *rand.Rand) {
	t.Helper()
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(seed))
	populateWalks(t, db, n, rng)
	db.SetCache(cache.New(cache.Config{}))
	return db, rng
}

// TestSearchCacheHit proves the second identical search is served from
// the cache with identical matches and the CacheHit flag set.
func TestSearchCacheHit(t *testing.T) {
	db, rng := cachedDB(t, 30, 200)
	q := randWalkSeq(rng, 30, 3)

	first, st1, err := db.Search(q, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if st1.CacheHit {
		t.Fatal("first search flagged as cache hit")
	}
	second, st2, err := db.Search(q, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit {
		t.Fatal("second identical search missed the cache")
	}
	if len(second) != len(first) {
		t.Fatalf("cached result has %d matches, computed had %d", len(second), len(first))
	}
	for i := range first {
		if second[i].SeqID != first[i].SeqID || !almostEqual(second[i].MinDnorm, first[i].MinDnorm) {
			t.Fatalf("cached match %d differs", i)
		}
	}
	// The hit carries the original run's counters.
	if st2.CandidatesDmbr != st1.CandidatesDmbr || st2.DnormEvals != st1.DnormEvals {
		t.Fatalf("cached stats differ: %+v vs %+v", st2, st1)
	}
	// A different ε must not alias.
	_, st3, err := db.Search(q, 0.31)
	if err != nil {
		t.Fatal(err)
	}
	if st3.CacheHit {
		t.Fatal("different eps served from cache")
	}
}

// TestEveryWriteAdvancesEpoch pins that each write kind — Add, AddAll
// (both the bulk and the sequential path), Remove, AppendPoints —
// advances the epoch, so no cached result survives any of them.
func TestEveryWriteAdvancesEpoch(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(201))

	e := db.Epoch()
	if e != 0 {
		t.Fatalf("fresh database epoch = %d", e)
	}
	step := func(op string, f func() error) {
		t.Helper()
		if err := f(); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if got := db.Epoch(); got <= e {
			t.Fatalf("%s left epoch at %d (was %d)", op, got, e)
		}
		e = db.Epoch()
	}
	step("AddAll (bulk)", func() error {
		_, err := db.AddAll([]*Sequence{randWalkSeq(rng, 50, 3), randWalkSeq(rng, 50, 3)})
		return err
	})
	step("AddAll (sequential)", func() error {
		_, err := db.AddAll([]*Sequence{randWalkSeq(rng, 50, 3)})
		return err
	})
	var id uint32
	step("Add", func() error {
		var err error
		id, err = db.Add(randWalkSeq(rng, 50, 3))
		return err
	})
	step("AppendPoints", func() error {
		return db.AppendPoints(id, []geom.Point{{0.1, 0.2, 0.3}})
	})
	step("Remove", func() error { return db.Remove(id) })
}

// TestCacheInvalidatedByWrite proves a write between two identical
// searches prevents the second from returning the pre-write result.
func TestCacheInvalidatedByWrite(t *testing.T) {
	db, rng := cachedDB(t, 20, 202)
	q := randWalkSeq(rng, 30, 3)

	before, _, err := db.Search(q, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	// Store an exact copy of the query: it must show up after the write.
	cp, err := NewSequence("copy", append([]geom.Point(nil), q.Points...))
	if err != nil {
		t.Fatal(err)
	}
	id, err := db.Add(cp)
	if err != nil {
		t.Fatal(err)
	}
	after, st, err := db.Search(q, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHit {
		t.Fatal("search after a write was served from the cache")
	}
	found := false
	for _, m := range after {
		if m.SeqID == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("exact copy (id %d) missing from post-write result (%d matches, was %d)",
			id, len(after), len(before))
	}
}

// TestCacheSharedAcrossSearchPaths proves the serial, parallel, and batch
// range paths share cache entries: any one of them fills, all hit.
func TestCacheSharedAcrossSearchPaths(t *testing.T) {
	db, rng := cachedDB(t, 30, 203)
	q := randWalkSeq(rng, 30, 3)

	if _, st, err := db.Search(q, 0.3); err != nil || st.CacheHit {
		t.Fatalf("seed search: err=%v hit=%v", err, st.CacheHit)
	}
	if _, st, err := db.SearchParallel(q, 0.3, 4); err != nil || !st.CacheHit {
		t.Fatalf("parallel after serial: err=%v hit=%v", err, st.CacheHit)
	}
	outs, stats, err := db.SearchBatch([]*Sequence{q}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !stats[0].CacheHit {
		t.Fatal("batch after serial missed the cache")
	}
	if len(outs) != 1 {
		t.Fatalf("batch returned %d result sets", len(outs))
	}
}

// TestKNNCacheIsolation proves cached kNN results are copied on every
// hit, so a caller mutating its slice (as the scatter layer does when
// rewriting SeqID to global ids) cannot corrupt the cache.
func TestKNNCacheIsolation(t *testing.T) {
	db, rng := cachedDB(t, 20, 204)
	q := randWalkSeq(rng, 30, 3)

	first, err := db.SearchKNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("no neighbors")
	}
	second, err := db.SearchKNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the caller-visible copy the way shard gathering does.
	want := second[0].SeqID
	second[0].SeqID = 0xDEAD
	third, err := db.SearchKNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if third[0].SeqID != want {
		t.Fatalf("cache entry corrupted by caller mutation: SeqID = %#x", third[0].SeqID)
	}
}

// TestSearchBatchMatchesSerial proves every batch member gets exactly the
// solo-search answer, duplicates included, with no cache attached.
func TestSearchBatchMatchesSerial(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(205))
	populateWalks(t, db, 60, rng)

	qs := make([]*Sequence, 0, 9)
	for i := 0; i < 4; i++ {
		qs = append(qs, randWalkSeq(rng, 20+rng.Intn(40), 3))
	}
	qs = append(qs, qs[1], qs[3], qs[1]) // duplicates
	const eps = 0.25

	outs, stats, err := db.SearchBatch(qs, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(qs) || len(stats) != len(qs) {
		t.Fatalf("batch returned %d/%d entries for %d queries", len(outs), len(stats), len(qs))
	}
	for i, q := range qs {
		want, wst, err := db.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		got := outs[i]
		if len(got) != len(want) {
			t.Fatalf("query %d: batch %d matches, serial %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j].SeqID != want[j].SeqID || !almostEqual(got[j].MinDnorm, want[j].MinDnorm) {
				t.Fatalf("query %d: match %d differs", i, j)
			}
			if got[j].Interval.NumPoints() != want[j].Interval.NumPoints() {
				t.Fatalf("query %d: interval %d differs", i, j)
			}
		}
		if stats[i].CandidatesDmbr != wst.CandidatesDmbr || stats[i].DnormEvals != wst.DnormEvals ||
			stats[i].IndexEntriesHit != wst.IndexEntriesHit {
			t.Fatalf("query %d: stats differ: %+v vs %+v", i, stats[i], wst)
		}
	}
	// Duplicates are flagged as served-without-compute.
	for _, i := range []int{4, 5, 6} {
		if !stats[i].CacheHit {
			t.Errorf("duplicate query %d not flagged CacheHit", i)
		}
	}
	for _, i := range []int{0, 1, 2, 3} {
		if stats[i].CacheHit {
			t.Errorf("first occurrence %d flagged CacheHit", i)
		}
	}
}

// TestSearchBatchValidation proves one bad member fails the whole batch.
func TestSearchBatchValidation(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(206))
	populateWalks(t, db, 5, rng)
	good := randWalkSeq(rng, 20, 3)

	if _, _, err := db.SearchBatch([]*Sequence{good, nil}, 0.1); err == nil {
		t.Error("nil member accepted")
	}
	if _, _, err := db.SearchBatch([]*Sequence{good, seqFromCoords(1)}, 0.1); err == nil {
		t.Error("wrong-dim member accepted")
	}
	if _, _, err := db.SearchBatch([]*Sequence{good}, -1); err == nil {
		t.Error("negative eps accepted")
	}
	outs, stats, err := db.SearchBatch(nil, 0.1)
	if err != nil || outs != nil || stats != nil {
		t.Errorf("empty batch: %v %v %v", outs, stats, err)
	}
}

// TestSearchBatchCtxCanceled proves a fired context aborts the batch.
func TestSearchBatchCtxCanceled(t *testing.T) {
	db, q := ctxCorpus(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := db.SearchBatchCtx(ctx, []*Sequence{q}, 0.2); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchBatchCtx on canceled ctx: err = %v, want context.Canceled", err)
	}
}

// TestSearchParallelCtxCanceled proves the parallel path honors context
// cancellation and deadlines — the serial ctx variants got this in an
// earlier change, but SearchParallel silently ignored its absence.
func TestSearchParallelCtxCanceled(t *testing.T) {
	db, q := ctxCorpus(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := db.SearchParallelCtx(ctx, q, 0.2, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchParallelCtx on canceled ctx: err = %v, want context.Canceled", err)
	}
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, _, err := db.SearchParallelCtx(dctx, q, 0.2, 4); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SearchParallelCtx past deadline: err = %v, want context.DeadlineExceeded", err)
	}
}

// TestSearchParallelCPUTime is the regression test for the accounting
// bug where SearchParallel reported CPUTime = Total(): with per-worker
// accumulation, a multi-worker run whose workers actually overlap must
// report more CPU than wall clock. Timing noise can hide the overlap on
// a loaded machine, so several trials are allowed; the bug made the
// inequality impossible on every trial.
func TestSearchParallelCPUTime(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs ≥2 CPUs for workers to overlap")
	}
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(207))
	populateWalks(t, db, 300, rng)
	q := randWalkSeq(rng, 60, 3)

	for trial := 0; trial < 5; trial++ {
		_, st, err := db.SearchParallel(q, 0.6, 4)
		if err != nil {
			t.Fatal(err)
		}
		if st.CandidatesDmbr < 8 {
			t.Fatalf("corpus too sparse for the test: %d candidates", st.CandidatesDmbr)
		}
		if st.CPUTime > st.Total() {
			return // overlap observed: accounting is per-worker, not wall
		}
	}
	t.Fatal("CPUTime never exceeded wall clock across 5 multi-worker runs; per-worker accounting lost?")
}

// TestConcurrentCacheInvalidation interleaves writers and cached readers:
// a writer keeps adding exact copies of the query while readers run
// Search and SearchBatch. Any reader observing the completed-adds counter
// at c must find at least c copies — a smaller result would be a stale
// cache hit surviving a write. Runs over every eviction-policy ×
// invalidation-scope combination; run with -race.
func TestConcurrentCacheInvalidation(t *testing.T) {
	for _, cfg := range cacheConfigs {
		cfg := cfg
		t.Run(string(cfg.Policy)+"/"+string(cfg.Scope), func(t *testing.T) {
			t.Parallel()
			concurrentInvalidationSoak(t, cfg)
		})
	}
}

func concurrentInvalidationSoak(t *testing.T, cfg cache.Config) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(208))
	populateWalks(t, db, 10, rng)
	db.SetCache(cache.New(cache.Config{Policy: cfg.Policy, Scope: cfg.Scope}))
	q := randWalkSeq(rng, 24, 3)

	var added atomic.Int64
	const copies = 12
	var wg sync.WaitGroup
	errs := make(chan error, 16)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < copies; i++ {
			cp, err := NewSequence("copy", append([]geom.Point(nil), q.Points...))
			if err != nil {
				errs <- err
				return
			}
			if _, err := db.Add(cp); err != nil {
				errs <- err
				return
			}
			added.Add(1)
			time.Sleep(time.Millisecond)
		}
	}()

	reader := func(batch bool) {
		defer wg.Done()
		for added.Load() < copies {
			floor := added.Load() // these adds happened-before this search
			var ms []Match
			var err error
			if batch {
				var outs [][]Match
				outs, _, err = db.SearchBatch([]*Sequence{q}, 0.05)
				if err == nil {
					ms = outs[0]
				}
			} else {
				ms, _, err = db.Search(q, 0.05)
			}
			if err != nil {
				errs <- err
				return
			}
			found := int64(0)
			for _, m := range ms {
				if m.Seq.Label == "copy" {
					found++
				}
			}
			if found < floor {
				errs <- errStale{floor: floor, found: found}
				return
			}
		}
	}
	for g := 0; g < 3; g++ {
		wg.Add(2)
		go reader(false)
		go reader(true)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type errStale struct{ floor, found int64 }

func (e errStale) Error() string {
	return fmt.Sprintf("stale cache hit: %d copies found, %d adds completed before the search",
		e.found, e.floor)
}
