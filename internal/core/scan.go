package core

import (
	"math"

	"repro/internal/geom"
)

// ScanResult is the exact answer for one relevant sequence under a
// sequential scan: its true distance D(Q,S) and the exact solution
// interval of Definition 6.
type ScanResult struct {
	SeqID    uint32      // database id of the relevant sequence
	Seq      *Sequence   // the relevant sequence itself
	Dist     float64     // exact distance D(Q,S)
	Interval IntervalSet // exact solution interval (Definition 6)
}

// OffsetProfile returns, for a query q (length k) against data points s
// (length m ≥ k is not required), the mean distance of every alignment:
// profile[j] = Dmean(q, s[j:j+k]) for 0 ≤ j ≤ m−k. When the query is
// longer than the data, the roles swap per Definition 3 and profile[j] =
// Dmean(q[j:j+m], s). The profile is threshold-independent, so experiment
// harnesses compute it once per (query, sequence) pair and derive
// relevance and solution intervals for every ε from it.
func OffsetProfile(q, s []geom.Point) []float64 {
	short, long := q, s
	if len(short) > len(long) {
		short, long = long, short
	}
	k := len(short)
	if k == 0 {
		return nil
	}
	out := make([]float64, len(long)-k+1)
	for j := range out {
		out[j] = Dmean(short, long[j:j+k])
	}
	return out
}

// SolutionIntervalFromProfile converts an offset profile into the exact
// solution interval for threshold eps: every window whose mean distance
// falls under eps contributes its k points. queryLonger reports whether
// the query was the longer side (then any qualifying window makes the
// whole data sequence the interval, since the data slid inside the query).
func SolutionIntervalFromProfile(profile []float64, k, dataLen int, queryLonger bool, eps float64) IntervalSet {
	var si IntervalSet
	for j, d := range profile {
		if d > eps {
			continue
		}
		if queryLonger {
			si.Add(PointRange{Start: 0, End: dataLen})
			return si
		}
		si.Add(PointRange{Start: j, End: j + k})
	}
	return si
}

// MinOfProfile returns the smallest profile value (D(Q,S)), or +Inf for an
// empty profile.
func MinOfProfile(profile []float64) float64 {
	best := math.Inf(1)
	for _, d := range profile {
		if d < best {
			best = d
		}
	}
	return best
}

// SequentialSearch is the exact baseline the paper compares against: it
// scans every stored sequence, computes D(Q,S) by sliding alignment, and
// reports each sequence with D ≤ eps together with its exact solution
// interval. It touches raw points only — no MBRs, no index.
func (db *Database) SequentialSearch(q *Sequence, eps float64) ([]ScanResult, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []ScanResult
	for id, g := range db.seqs {
		if g == nil {
			continue // removed
		}
		s := g.Seq
		profile := OffsetProfile(q.Points, s.Points)
		dist := MinOfProfile(profile)
		if dist > eps {
			continue
		}
		queryLonger := len(q.Points) > len(s.Points)
		k := len(q.Points)
		if queryLonger {
			k = len(s.Points)
		}
		si := SolutionIntervalFromProfile(profile, k, len(s.Points), queryLonger, eps)
		out = append(out, ScanResult{SeqID: uint32(id), Seq: s, Dist: dist, Interval: si})
	}
	return out, nil
}
