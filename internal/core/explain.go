package core

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"
)

// Explanation records everything one Search decided and why: the query
// partitioning, each candidate's per-phase distances, and which pruning
// stage eliminated each non-result. It is the debugging companion to
// Search — when a sequence you expected is missing, Explain shows which
// bound excluded it.
type Explanation struct {
	Eps       float64   // the threshold the decisions were made against
	QueryMBRs []MBRInfo // the query's MCOST partitioning
	// Candidates covers every stored sequence, sorted by id.
	Candidates []CandidateExplanation
}

// CandidateExplanation is one sequence's fate in the pipeline.
type CandidateExplanation struct {
	SeqID    uint32  // database id of the candidate
	Label    string  // its label, for human-readable reports
	MinDmbr  float64 // min over (query MBR, data MBR) pairs
	MinDnorm float64 // min over query MBRs of the window-sweep minimum
	// Phase is the furthest stage reached: "pruned-dmbr" (never became a
	// candidate), "pruned-dnorm" (candidate, no qualifying window), or
	// "matched".
	Phase string
}

// Explain runs the search pipeline for q at eps, evaluating the phase-2
// and phase-3 bounds for every stored sequence (including the ones the
// index would normally never touch), and returns the full decision record.
// It is O(database) and meant for debugging, not serving.
func (db *Database) Explain(q *Sequence, eps float64) (*Explanation, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	qseg, err := NewSegmented(q, db.opts.Partition)
	if err != nil {
		return nil, err
	}
	ex := &Explanation{Eps: eps, QueryMBRs: qseg.MBRs}
	for id, g := range db.seqs {
		if g == nil {
			continue
		}
		ce := CandidateExplanation{
			SeqID:    uint32(id),
			Label:    g.Seq.Label,
			MinDmbr:  math.Inf(1),
			MinDnorm: math.Inf(1),
		}
		for _, qm := range qseg.MBRs {
			calc := newDnormCalc(qm.Rect, qm.Count(), g)
			for _, sm := range g.MBRs {
				if d := qm.Rect.MinDist(sm.Rect); d < ce.MinDmbr {
					ce.MinDmbr = d
				}
			}
			if d := calc.sweep(math.Inf(-1), nil); d < ce.MinDnorm {
				ce.MinDnorm = d
			}
		}
		switch {
		case ce.MinDmbr > eps:
			ce.Phase = "pruned-dmbr"
		case ce.MinDnorm > eps:
			ce.Phase = "pruned-dnorm"
		default:
			ce.Phase = "matched"
		}
		ex.Candidates = append(ex.Candidates, ce)
	}
	sort.Slice(ex.Candidates, func(i, j int) bool {
		return ex.Candidates[i].SeqID < ex.Candidates[j].SeqID
	})
	return ex, nil
}

// Counts returns how many sequences each stage eliminated or kept.
func (ex *Explanation) Counts() (prunedDmbr, prunedDnorm, matched int) {
	for _, c := range ex.Candidates {
		switch c.Phase {
		case "pruned-dmbr":
			prunedDmbr++
		case "pruned-dnorm":
			prunedDnorm++
		default:
			matched++
		}
	}
	return
}

// WriteTo renders the explanation as a text table (sequences sorted by
// MinDnorm so near-misses cluster at the top).
func (ex *Explanation) WriteTo(w io.Writer) (int64, error) {
	pd, pn, m := ex.Counts()
	n, err := fmt.Fprintf(w, "eps=%.4f query MBRs=%d | pruned by Dmbr: %d, by Dnorm: %d, matched: %d\n",
		ex.Eps, len(ex.QueryMBRs), pd, pn, m)
	total := int64(n)
	if err != nil {
		return total, err
	}
	sorted := append([]CandidateExplanation(nil), ex.Candidates...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].MinDnorm < sorted[j].MinDnorm })
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "seq\tlabel\tminDmbr\tminDnorm\tphase")
	for _, c := range sorted {
		fmt.Fprintf(tw, "%d\t%s\t%.4f\t%.4f\t%s\n", c.SeqID, c.Label, c.MinDmbr, c.MinDnorm, c.Phase)
	}
	return total, tw.Flush()
}
