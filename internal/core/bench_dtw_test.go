package core

import (
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"testing"
	"time"
)

// TestDTWSpeedup is the acceptance A/B for the DTW metric path: the same
// kNN workload run through the envelope-pruned indexed search
// (SearchKNNMetric) and through an exhaustive exact-DTW scan. It asserts
// the two answer identically — the no-false-dismissal property under
// timing pressure — and that the pruning ladder actually prunes. With
// BENCH_DTW_OUT set the measurement is written as BENCH_dtw.json (CI
// uploads it as an artifact); the range equivalence is also A/B'd and
// its pruned fraction reported from SearchStats.
func TestDTWSpeedup(t *testing.T) {
	const dim, nseq, k = 4, 150, 5
	const window = 10
	db := newTestDB(t, dim)
	rng := rand.New(rand.NewSource(83))
	seqs := make([]*Sequence, nseq)
	for i := range seqs {
		s := randWalkSeq(rng, 40+rng.Intn(80), dim)
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
		seqs[i] = s
	}
	mt := MetricDTW{Window: window}
	var qs []*Sequence
	for i := 0; i < 8; i++ {
		src := seqs[rng.Intn(len(seqs))]
		qs = append(qs, &Sequence{Label: "q", Points: src.Points[:30+rng.Intn(30)]})
	}

	// Exhaustive DTW top-k: every sequence's exact distance, no bounds.
	scanKNN := func(q *Sequence) []KNNResult {
		all, err := db.SequentialSearchMetric(q, math.MaxFloat64, mt)
		if err != nil {
			t.Fatal(err)
		}
		var out []KNNResult
		for _, m := range all {
			out = insertKNN(out, KNNResult{SeqID: m.SeqID, Seq: m.Seq, Dist: m.Dist}, k)
		}
		return out
	}
	runIndexed := func() {
		for _, q := range qs {
			if _, err := db.SearchKNNMetric(q, k, mt); err != nil {
				t.Fatal(err)
			}
		}
	}
	runScan := func() {
		for _, q := range qs {
			scanKNN(q)
		}
	}

	// Identical results first — a speedup from wrong answers is no result.
	for qi, q := range qs {
		got, err := db.SearchKNNMetric(q, k, mt)
		if err != nil {
			t.Fatal(err)
		}
		want := scanKNN(q)
		if len(got) != len(want) {
			t.Fatalf("query %d: indexed %d neighbors, scan %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i].SeqID != want[i].SeqID ||
				math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
				t.Fatalf("query %d neighbor %d: indexed (%d, %v), scan (%d, %v)",
					qi, i, got[i].SeqID, got[i].Dist, want[i].SeqID, want[i].Dist)
			}
		}
	}

	// Pruning must be real: over the range workload, some candidates die
	// at the envelope or LB_Keogh rung before the dynamic program.
	const eps = 0.35
	var cand, envPruned, keoghPruned, evals int
	for _, q := range qs {
		_, st, err := db.SearchMetric(q, eps, mt)
		if err != nil {
			t.Fatal(err)
		}
		cand += st.CandidatesDmbr
		envPruned += st.DTWEnvPruned
		keoghPruned += st.DTWKeoghPruned
		evals += st.DTWEvals
	}
	if cand == 0 {
		t.Fatal("range workload produced no candidates; the A/B measures nothing")
	}
	prunedFrac := float64(cand-evals) / float64(cand)
	if envPruned+keoghPruned == 0 {
		t.Errorf("no candidate was pruned by a lower bound (candidates %d, evals %d)", cand, evals)
	}
	t.Logf("range pruning: %d candidates, %d env-pruned, %d keogh-pruned, %d exact evals (pruned frac %.2f)",
		cand, envPruned, keoghPruned, evals, prunedFrac)

	// Timing: best of rounds, same shape as the hotpath A/B.
	runIndexed()
	runScan()
	const rounds = 5
	measure := func(fn func()) time.Duration {
		best := time.Duration(math.MaxInt64)
		for i := 0; i < rounds; i++ {
			t0 := time.Now()
			fn()
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	scanDur := measure(runScan)
	idxDur := measure(runIndexed)
	speedup := float64(scanDur) / float64(idxDur)
	t.Logf("dim=%d corpus=%d queries=%d k=%d window=%d: scan %v, indexed %v, speedup %.2fx",
		dim, nseq, len(qs), k, window, scanDur, idxDur, speedup)
	// The bound computation is itself linear work, so the win is modest on
	// a small corpus; require it to at least not lose.
	if speedup < 1.0 {
		t.Errorf("indexed DTW kNN slower than the exhaustive scan: %.2fx", speedup)
	}

	if out := os.Getenv("BENCH_DTW_OUT"); out != "" {
		doc := map[string]any{
			"name":          "dtw_knn_indexed_vs_scan_ab",
			"dim":           dim,
			"corpus":        nseq,
			"queries":       len(qs),
			"k":             k,
			"window":        window,
			"eps":           eps,
			"scan_ns":       scanDur.Nanoseconds(),
			"indexed_ns":    idxDur.Nanoseconds(),
			"speedup":       speedup,
			"candidates":    cand,
			"env_pruned":    envPruned,
			"keogh_pruned":  keoghPruned,
			"dtw_evals":     evals,
			"pruned_frac":   prunedFrac,
			"rounds":        rounds,
			"measure":       "best-of-rounds wall time for the full kNN query set; pruning counters from the eps-range workload",
			"scan_path":     "SequentialSearchMetric (exact DTW per sequence, no bounds)",
			"indexed_path":  "SearchKNNMetric (envelope index bound + LB_Keogh + early-abandoning DP)",
			"results_equal": true,
		}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
			t.Fatalf("writing %s: %v", out, err)
		}
		t.Logf("wrote %s", out)
	}
}
