package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestSearchKNNMatchesExhaustive(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(70))
	seqs := populateWalks(t, db, 50, rng)
	for trial := 0; trial < 8; trial++ {
		q := randWalkSeq(rng, 20+rng.Intn(50), 3)
		const k = 5
		got, err := db.SearchKNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("got %d results, want %d", len(got), k)
		}
		// Exhaustive reference.
		type ref struct {
			id   int
			dist float64
		}
		refs := make([]ref, len(seqs))
		for i, s := range seqs {
			refs[i] = ref{i, D(q, s)}
		}
		sort.Slice(refs, func(i, j int) bool { return refs[i].dist < refs[j].dist })
		for i := 0; i < k; i++ {
			if !almostEqual(got[i].Dist, refs[i].dist) {
				t.Fatalf("trial %d: rank %d dist %g, want %g", trial, i, got[i].Dist, refs[i].dist)
			}
		}
		// Sorted, annotated.
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Fatal("results not sorted")
			}
		}
		for _, r := range got {
			if r.Seq == nil {
				t.Fatal("result without sequence")
			}
		}
	}
}

func TestSearchKNNEdgeCases(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(71))
	populateWalks(t, db, 5, rng)
	q := randWalkSeq(rng, 20, 3)
	if got, err := db.SearchKNN(q, 0); err != nil || got != nil {
		t.Errorf("k=0: %v %v", got, err)
	}
	got, err := db.SearchKNN(q, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Errorf("k beyond db size: %d results, want 5", len(got))
	}
	if _, err := db.SearchKNN(&Sequence{}, 3); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := db.SearchKNN(seqFromCoords(1, 2), 3); err == nil {
		t.Error("wrong-dim query accepted")
	}
}

func TestSearchKNNSelfIsNearest(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(72))
	seqs := populateWalks(t, db, 30, rng)
	q := &Sequence{Points: seqs[12].Points[5:35]}
	got, err := db.SearchKNN(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Dist != 0 {
		t.Fatalf("nearest = %+v, want distance 0", got)
	}
	if got[0].SeqID != 12 {
		// Another sequence could also contain the exact subsequence, but
		// with random walks that is vanishingly unlikely.
		t.Errorf("nearest id = %d, want 12", got[0].SeqID)
	}
	if got[0].Offset != 5 {
		t.Errorf("offset = %d, want 5", got[0].Offset)
	}
}

func TestRemove(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(73))
	seqs := populateWalks(t, db, 20, rng)
	before := db.NumMBRs()

	if err := db.Remove(7); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 19 {
		t.Errorf("Len = %d, want 19", db.Len())
	}
	if db.NumMBRs() >= before {
		t.Errorf("NumMBRs = %d, want < %d", db.NumMBRs(), before)
	}
	if db.Segmented(7) != nil {
		t.Error("removed sequence still retrievable")
	}
	if err := db.Remove(7); err == nil {
		t.Error("double remove accepted")
	}
	if err := db.Remove(999); err == nil {
		t.Error("unknown id accepted")
	}

	// The removed sequence is gone from search results even for an exact
	// query.
	q := &Sequence{Points: seqs[7].Points[10:40]}
	matches, _, err := db.Search(q, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if m.SeqID == 7 {
			t.Error("removed sequence returned by Search")
		}
	}
	exact, err := db.SequentialSearch(q, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range exact {
		if r.SeqID == 7 {
			t.Error("removed sequence returned by SequentialSearch")
		}
	}
	knn, err := db.SearchKNN(q, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range knn {
		if r.SeqID == 7 {
			t.Error("removed sequence returned by SearchKNN")
		}
	}

	// Remaining sequences still searchable with no false dismissals.
	q2 := &Sequence{Points: seqs[3].Points[0:30]}
	matches, _, err = db.Search(q2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.SeqID == 3 {
			found = true
		}
	}
	if !found {
		t.Error("surviving sequence not found after Remove")
	}
}

func TestRemoveAllThenAdd(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(74))
	populateWalks(t, db, 10, rng)
	for id := uint32(0); id < 10; id++ {
		if err := db.Remove(id); err != nil {
			t.Fatal(err)
		}
	}
	if db.Len() != 0 || db.NumMBRs() != 0 {
		t.Fatalf("Len=%d NumMBRs=%d after removing all", db.Len(), db.NumMBRs())
	}
	s := randWalkSeq(rng, 50, 3)
	id, err := db.Add(s)
	if err != nil {
		t.Fatal(err)
	}
	if id != 10 {
		t.Errorf("new id = %d, want 10 (ids are not reused)", id)
	}
	matches, _, err := db.Search(&Sequence{Points: s.Points[:20]}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].SeqID != 10 {
		t.Errorf("matches = %+v", matches)
	}
}

func TestInsertKNNKeepsTopK(t *testing.T) {
	var rs []KNNResult
	for _, d := range []float64{0.5, 0.2, 0.9, 0.1, 0.7} {
		rs = insertKNN(rs, KNNResult{Dist: d}, 3)
	}
	want := []float64{0.1, 0.2, 0.5}
	if len(rs) != 3 {
		t.Fatalf("kept %d", len(rs))
	}
	for i, w := range want {
		if rs[i].Dist != w {
			t.Errorf("rank %d = %g, want %g", i, rs[i].Dist, w)
		}
	}
}

func TestKNNBoundIsLowerBound(t *testing.T) {
	// The pruning in SearchKNN is only correct if the Dnorm bound never
	// exceeds the exact distance; spot-check the internal invariant.
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(75))
	seqs := populateWalks(t, db, 30, rng)
	q := randWalkSeq(rng, 40, 3)
	qseg, err := NewSegmented(q, db.PartitionConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seqs {
		g := db.Segmented(uint32(i))
		bound := math.Inf(1)
		for _, qm := range qseg.MBRs {
			c := newDnormCalc(qm.Rect, qm.Count(), g)
			if d := c.sweep(math.Inf(-1), nil); d < bound {
				bound = d
			}
		}
		if exact := D(q, s); bound > exact+1e-9 {
			t.Fatalf("sequence %d: bound %g > exact %g", i, bound, exact)
		}
	}
}
