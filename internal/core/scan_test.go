package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestOffsetProfile(t *testing.T) {
	q := []geom.Point{{0.1}, {0.2}}
	s := []geom.Point{{0.1}, {0.2}, {0.3}, {0.4}}
	got := OffsetProfile(q, s)
	want := []float64{0, 0.1, 0.2}
	if len(got) != len(want) {
		t.Fatalf("profile length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !almostEqual(got[i], want[i]) {
			t.Errorf("profile[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestOffsetProfileSwapsWhenQueryLonger(t *testing.T) {
	q := []geom.Point{{0.1}, {0.2}, {0.3}, {0.4}}
	s := []geom.Point{{0.3}, {0.4}}
	got := OffsetProfile(q, s)
	if len(got) != 3 {
		t.Fatalf("profile length %d, want 3", len(got))
	}
	if !almostEqual(got[2], 0) {
		t.Errorf("best alignment should be 0, profile = %v", got)
	}
	if OffsetProfile(nil, s) != nil {
		t.Error("empty query should give nil profile")
	}
}

func TestMinOfProfile(t *testing.T) {
	if got := MinOfProfile([]float64{0.5, 0.2, 0.9}); got != 0.2 {
		t.Errorf("MinOfProfile = %g", got)
	}
	if got := MinOfProfile(nil); !math.IsInf(got, 1) {
		t.Errorf("empty profile min = %g, want +Inf", got)
	}
}

func TestSolutionIntervalFromProfile(t *testing.T) {
	profile := []float64{0.5, 0.1, 0.1, 0.5, 0.1}
	si := SolutionIntervalFromProfile(profile, 3, 7, false, 0.2)
	// offsets 1,2 qualify -> [1,4) ∪ [2,5) = [1,5); offset 4 -> [4,7)
	// merged: [1,7)
	if si.NumPoints() != 6 || len(si.Ranges()) != 1 {
		t.Errorf("SI = %v", si.String())
	}
	// Query longer: any qualifying offset covers the whole data sequence.
	si = SolutionIntervalFromProfile(profile, 3, 7, true, 0.2)
	if si.NumPoints() != 7 {
		t.Errorf("query-longer SI = %v, want whole sequence", si.String())
	}
	// Nothing qualifies.
	si = SolutionIntervalFromProfile(profile, 3, 7, false, 0.05)
	if !si.IsEmpty() {
		t.Errorf("SI = %v, want empty", si.String())
	}
}

func TestSequentialSearchExactness(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(60))
	seqs := populateWalks(t, db, 30, rng)
	q := randWalkSeq(rng, 25, 3)
	eps := 0.25
	got, err := db.SequentialSearch(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	inGot := make(map[uint32]float64)
	for _, r := range got {
		inGot[r.SeqID] = r.Dist
		if r.Dist > eps {
			t.Errorf("returned sequence %d with D=%g > eps", r.SeqID, r.Dist)
		}
		if r.Interval.IsEmpty() {
			t.Errorf("relevant sequence %d with empty exact interval", r.SeqID)
		}
	}
	// Cross-check against direct D computation.
	for i, s := range seqs {
		d := D(q, s)
		if d <= eps {
			if got, ok := inGot[uint32(i)]; !ok {
				t.Errorf("sequence %d with D=%g missing from scan", i, d)
			} else if !almostEqual(got, d) {
				t.Errorf("sequence %d Dist=%g, want %g", i, got, d)
			}
		} else if _, ok := inGot[uint32(i)]; ok {
			t.Errorf("sequence %d with D=%g > eps returned", i, d)
		}
	}
}

func TestSequentialSearchIntervalMatchesDefinition(t *testing.T) {
	// Hand-checkable case: data has an exact copy of the query at a known
	// offset and noise elsewhere.
	db := newTestDB(t, 1)
	qvals := []float64{0.5, 0.52, 0.54}
	data := []float64{0.9, 0.95, 0.5, 0.52, 0.54, 0.95, 0.9, 0.9}
	dseq := seqFromCoords(data...)
	if _, err := db.Add(dseq); err != nil {
		t.Fatal(err)
	}
	q := seqFromCoords(qvals...)
	res, err := db.SequentialSearch(q, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %d, want 1", len(res))
	}
	want := PointRange{2, 5}
	rs := res[0].Interval.Ranges()
	if len(rs) != 1 || rs[0] != want {
		t.Errorf("interval = %v, want {%v}", res[0].Interval.String(), want)
	}
	if !almostEqual(res[0].Dist, 0) {
		t.Errorf("Dist = %g, want 0", res[0].Dist)
	}
}

func TestSequentialSearchInvalidQuery(t *testing.T) {
	db := newTestDB(t, 3)
	if _, err := db.SequentialSearch(&Sequence{}, 0.1); err == nil {
		t.Error("empty query accepted")
	}
}
