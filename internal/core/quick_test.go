package core

// Property-based tests using testing/quick on the core data structures
// and metric invariants. Raw float64 generation is constrained into the
// unit cube via custom Generate implementations so the properties are
// exercised on the domain the system actually operates in.

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// cubeSeq is a quick-generatable sequence of 1-40 points in [0,1]^3.
type cubeSeq struct {
	Pts []geom.Point
}

// Generate implements quick.Generator.
func (cubeSeq) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 1 + rng.Intn(40)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	return reflect.ValueOf(cubeSeq{Pts: pts})
}

// rangeList is a quick-generatable batch of ranges within [0, 300).
type rangeList struct {
	Rs []PointRange
}

func (rangeList) Generate(rng *rand.Rand, size int) reflect.Value {
	n := rng.Intn(15)
	rs := make([]PointRange, n)
	for i := range rs {
		start := rng.Intn(300)
		rs[i] = PointRange{Start: start, End: start + rng.Intn(300-start+1)}
	}
	return reflect.ValueOf(rangeList{Rs: rs})
}

func TestQuickDSymmetric(t *testing.T) {
	f := func(a, b cubeSeq) bool {
		return almostEqual(DPoints(a.Pts, b.Pts), DPoints(b.Pts, a.Pts))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickDIdentityOfIndiscernibles(t *testing.T) {
	f := func(a cubeSeq) bool {
		return DPoints(a.Pts, a.Pts) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickDNonNegativeAndBounded(t *testing.T) {
	maxD := math.Sqrt(3)
	f := func(a, b cubeSeq) bool {
		d := DPoints(a.Pts, b.Pts)
		return d >= 0 && d <= maxD+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickLemma3 re-states the central pruning-correctness property as a
// quick.Check: min Dmbr <= min Dnorm <= D for arbitrary unit-cube
// sequences under the default partitioning.
func TestQuickLemma3(t *testing.T) {
	cfg := DefaultPartitionConfig()
	f := func(a, b cubeSeq) bool {
		gs, err := NewSegmented(&Sequence{Points: a.Pts}, cfg)
		if err != nil {
			return false
		}
		gq, err := NewSegmented(&Sequence{Points: b.Pts}, cfg)
		if err != nil {
			return false
		}
		minDmbr, minDnorm := math.Inf(1), math.Inf(1)
		for _, qm := range gq.MBRs {
			calc := newDnormCalc(qm.Rect, qm.Count(), gs)
			for _, sm := range gs.MBRs {
				minDmbr = math.Min(minDmbr, qm.Rect.MinDist(sm.Rect))
			}
			minDnorm = math.Min(minDnorm, calc.sweep(math.Inf(-1), nil))
		}
		d := DPoints(b.Pts, a.Pts)
		return minDmbr <= minDnorm+1e-9 && minDnorm <= d+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickPartitionTiles checks the partition invariants on arbitrary
// input.
func TestQuickPartitionTiles(t *testing.T) {
	cfg := PartitionConfig{QueryExtent: 0.3, MaxPoints: 7}
	f := func(a cubeSeq) bool {
		g, err := NewSegmented(&Sequence{Points: a.Pts}, cfg)
		if err != nil {
			return false
		}
		return g.CheckPartition(cfg) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickIntervalSetUnion checks that Add behaves as set union against a
// bitmap model for arbitrary range batches.
func TestQuickIntervalSetUnion(t *testing.T) {
	f := func(l rangeList) bool {
		var s IntervalSet
		bm := make([]bool, 600)
		for _, r := range l.Rs {
			s.Add(r)
			for i := r.Start; i < r.End; i++ {
				bm[i] = true
			}
		}
		count := 0
		for i, set := range bm {
			if set {
				count++
			}
			if s.Contains(i) != set {
				return false
			}
		}
		return s.NumPoints() == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickIntervalIntersectCommutes checks |A∩B| = |B∩A| and the subset
// bound |A∩B| <= min(|A|, |B|).
func TestQuickIntervalIntersectCommutes(t *testing.T) {
	build := func(l rangeList) *IntervalSet {
		var s IntervalSet
		for _, r := range l.Rs {
			s.Add(r)
		}
		return &s
	}
	f := func(la, lb rangeList) bool {
		a, b := build(la), build(lb)
		ab := a.IntersectCount(b)
		ba := b.IntersectCount(a)
		if ab != ba {
			return false
		}
		return ab <= a.NumPoints() && ab <= b.NumPoints()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickDTWLowerBoundsNothingButIsSane: DTW is symmetric, zero on
// identical inputs, and never exceeds the rigid mean distance on
// equal-length inputs (the rigid alignment is one admissible warp).
func TestQuickDTWProperties(t *testing.T) {
	f := func(a, b cubeSeq) bool {
		d1, err1 := DTW(a.Pts, b.Pts, -1)
		d2, err2 := DTW(b.Pts, a.Pts, -1)
		if err1 != nil || err2 != nil {
			return false
		}
		if !almostEqual(d1, d2) {
			return false
		}
		self, err := DTW(a.Pts, a.Pts, -1)
		if err != nil || self != 0 {
			return false
		}
		if len(a.Pts) == len(b.Pts) {
			if d1 > Dmean(a.Pts, b.Pts)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickOffsetProfileConsistency: the minimum of the profile equals
// DPoints, and every profile entry is a valid alignment mean (>= the
// minimum pair distance).
func TestQuickOffsetProfileConsistency(t *testing.T) {
	f := func(a, b cubeSeq) bool {
		profile := OffsetProfile(a.Pts, b.Pts)
		if len(profile) == 0 {
			return false
		}
		if !almostEqual(MinOfProfile(profile), DPoints(a.Pts, b.Pts)) {
			return false
		}
		delta := MinPointPairDist(a.Pts, b.Pts)
		for _, d := range profile {
			if d < delta-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
