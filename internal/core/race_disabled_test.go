//go:build !race

package core

// raceEnabled reports whether the race detector is active; tests whose
// measurement the detector deliberately perturbs key off it.
const raceEnabled = false
