package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

// seqFromCoords builds a 1-D sequence from scalars (time-series are the
// paper's special case of the model).
func seqFromCoords(vals ...float64) *Sequence {
	pts := make([]geom.Point, len(vals))
	for i, v := range vals {
		pts[i] = geom.Point{v}
	}
	return &Sequence{Points: pts}
}

func randSeq(rng *rand.Rand, n, dim int) *Sequence {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for k := range p {
			p[k] = rng.Float64()
		}
		pts[i] = p
	}
	return &Sequence{Points: pts}
}

// randWalkSeq produces a smoother trail (closer to real sequence data than
// i.i.d. noise) for property tests.
func randWalkSeq(rng *rand.Rand, n, dim int) *Sequence {
	pts := make([]geom.Point, n)
	cur := make(geom.Point, dim)
	for k := range cur {
		cur[k] = rng.Float64()
	}
	for i := range pts {
		next := make(geom.Point, dim)
		for k := range next {
			next[k] = math.Min(1, math.Max(0, cur[k]+(rng.Float64()-0.5)*0.1))
		}
		pts[i] = next
		cur = next
	}
	return &Sequence{Points: pts}
}

func TestDmeanEqualLength(t *testing.T) {
	a := []geom.Point{{0, 0}, {1, 0}}
	b := []geom.Point{{0, 1}, {1, 2}}
	// distances: 1 and 2 -> mean 1.5
	if got := Dmean(a, b); !almostEqual(got, 1.5) {
		t.Errorf("Dmean = %g, want 1.5", got)
	}
	if got := Dmean(a, a); got != 0 {
		t.Errorf("Dmean(a,a) = %g, want 0", got)
	}
	if got := Dmean(nil, nil); got != 0 {
		t.Errorf("Dmean(nil,nil) = %g, want 0", got)
	}
}

func TestDmeanPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dmean([]geom.Point{{0}}, []geom.Point{{0}, {1}})
}

func TestDEqualLengthIsMean(t *testing.T) {
	s1 := seqFromCoords(0, 0.5, 1)
	s2 := seqFromCoords(0.1, 0.5, 0.9)
	want := (0.1 + 0 + 0.1) / 3
	if got := D(s1, s2); !almostEqual(got, want) {
		t.Errorf("D = %g, want %g", got, want)
	}
}

func TestDSlidesShorterSequence(t *testing.T) {
	long := seqFromCoords(0.9, 0.9, 0.1, 0.2, 0.9)
	short := seqFromCoords(0.1, 0.2)
	// Best alignment is at offset 2 with distance 0.
	if got := D(short, long); !almostEqual(got, 0) {
		t.Errorf("D = %g, want 0", got)
	}
	off, dist := BestAlignment(short.Points, long.Points)
	if off != 2 || !almostEqual(dist, 0) {
		t.Errorf("BestAlignment = (%d, %g), want (2, 0)", off, dist)
	}
}

func TestDSymmetricInArgumentOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		a := randSeq(rng, 5+rng.Intn(20), 3)
		b := randSeq(rng, 5+rng.Intn(20), 3)
		if !almostEqual(D(a, b), D(b, a)) {
			t.Fatalf("D not symmetric: %g vs %g", D(a, b), D(b, a))
		}
	}
}

func TestDIdentityAndSubsequence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := randSeq(rng, 30, 3)
	if got := D(s, s); got != 0 {
		t.Errorf("D(s,s) = %g, want 0", got)
	}
	sub := &Sequence{Points: s.Points[10:20]}
	if got := D(sub, s); !almostEqual(got, 0) {
		t.Errorf("D(subsequence, s) = %g, want 0", got)
	}
}

func TestDEmptySequences(t *testing.T) {
	if got := DPoints(nil, []geom.Point{{0}}); !math.IsInf(got, 1) {
		t.Errorf("D with empty side = %g, want +Inf", got)
	}
}

// TestSumOfDistancesIsMisleading reproduces Example 1 / Figure 1: a close
// pair with many points has a larger distance SUM than a distant pair with
// few points, but the paper's mean-based D ranks them correctly.
func TestSumOfDistancesIsMisleading(t *testing.T) {
	mk := func(n int, base, gap float64) (*Sequence, *Sequence) {
		a := make([]geom.Point, n)
		b := make([]geom.Point, n)
		for i := range a {
			x := base + float64(i)*0.05
			a[i] = geom.Point{x, 0.4}
			b[i] = geom.Point{x, 0.4 + gap}
		}
		return &Sequence{Points: a}, &Sequence{Points: b}
	}
	s1, s2 := mk(9, 0.1, 0.10) // 9 close pairs (gap 0.10): sum 0.9, mean 0.1
	s3, s4 := mk(3, 0.1, 0.25) // 3 distant pairs (gap 0.25): sum 0.75, mean 0.25

	sum := func(a, b *Sequence) float64 {
		var s float64
		for i := range a.Points {
			s += a.Points[i].Dist(b.Points[i])
		}
		return s
	}
	if !(sum(s1, s2) > sum(s3, s4)) {
		t.Fatalf("example construction broken: sums %g vs %g", sum(s1, s2), sum(s3, s4))
	}
	if !(D(s1, s2) < D(s3, s4)) {
		t.Errorf("mean distance should rank the close pair as more similar: %g vs %g",
			D(s1, s2), D(s3, s4))
	}
}

func TestMinPointPairDist(t *testing.T) {
	a := []geom.Point{{0, 0}, {1, 1}}
	b := []geom.Point{{1, 0}, {5, 5}}
	// closest pair: (1,1)-(1,0) distance 1
	if got := MinPointPairDist(a, b); !almostEqual(got, 1) {
		t.Errorf("MinPointPairDist = %g, want 1", got)
	}
}

// TestDLowerBoundedByMinPairDist checks the δ step of Lemma 1's proof:
// every alignment mean is at least the global minimum pair distance.
func TestDLowerBoundedByMinPairDist(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		a := randWalkSeq(rng, 10+rng.Intn(30), 3)
		b := randWalkSeq(rng, 10+rng.Intn(30), 3)
		delta := MinPointPairDist(a.Points, b.Points)
		if d := D(a, b); d < delta-1e-9 {
			t.Fatalf("D = %g < δ = %g", d, delta)
		}
	}
}

func TestBestAlignmentEmpty(t *testing.T) {
	off, dist := BestAlignment(nil, []geom.Point{{0}})
	if off != 0 || !math.IsInf(dist, 1) {
		t.Errorf("BestAlignment on empty = (%d, %g)", off, dist)
	}
}
