package core

import (
	"context"
	"math"
)

// Snapshot is a read handle over the database pinned to the write epoch
// current when it was taken. It exposes the same query surface as the
// database; results additionally report, via Stale, whether a write
// landed since the handle was taken. Between two fold points of the
// transaction layer (internal/txn) the base database receives no writes
// at all, so a Snapshot taken there is a true immutable view: repeated
// queries through it see byte-identical state and its cached results
// remain valid for the handle's whole lifetime. Snapshots are values —
// cheap to take, nothing to release.
type Snapshot struct {
	db    *Database
	epoch uint64
}

// Snapshot captures a read handle at the current write epoch.
func (db *Database) Snapshot() Snapshot {
	return Snapshot{db: db, epoch: db.epoch.Load()}
}

// Epoch returns the write epoch the handle was taken at.
func (s Snapshot) Epoch() uint64 { return s.epoch }

// Stale reports whether any write has completed since the handle was
// taken — i.e. whether queries through it may now see different state
// than earlier queries did.
func (s Snapshot) Stale() bool { return s.db.epoch.Load() != s.epoch }

// Search runs the three-phase range search (see Database.Search).
func (s Snapshot) Search(q *Sequence, eps float64) ([]Match, SearchStats, error) {
	return s.db.Search(q, eps)
}

// SearchCtx is Search honoring a context (see Database.SearchCtx).
func (s Snapshot) SearchCtx(ctx context.Context, q *Sequence, eps float64) ([]Match, SearchStats, error) {
	return s.db.SearchCtx(ctx, q, eps)
}

// SearchParallelCtx is the parallel range search (see
// Database.SearchParallelCtx).
func (s Snapshot) SearchParallelCtx(ctx context.Context, q *Sequence, eps float64, workers int) ([]Match, SearchStats, error) {
	return s.db.SearchParallelCtx(ctx, q, eps, workers)
}

// SearchBatchCtx answers several range queries in one pass (see
// Database.SearchBatchCtx).
func (s Snapshot) SearchBatchCtx(ctx context.Context, qs []*Sequence, eps float64) ([][]Match, []SearchStats, error) {
	return s.db.SearchBatchCtx(ctx, qs, eps)
}

// SearchKNNBoundedCtx is the bounded k-nearest query (see
// Database.SearchKNNBoundedCtx).
func (s Snapshot) SearchKNNBoundedCtx(ctx context.Context, q *Sequence, k int, bound float64) ([]KNNResult, error) {
	return s.db.SearchKNNBoundedCtx(ctx, q, k, bound)
}

// Len reports the number of live sequences (see Database.Len).
func (s Snapshot) Len() int { return s.db.Len() }

// --- index-free evaluation kernels --------------------------------------
//
// The transaction layer answers queries as "indexed base result + linear
// scan of the unfolded delta". The scan side needs exactly the
// per-candidate work of phase 3 (and, for kNN, the exact-distance
// refinement) without an R*-tree, evaluated with the same kernels the
// indexed path uses so merged results are bit-identical to a fully
// indexed database holding the same content. These wrappers export that
// per-candidate work.

// EvalRange runs the phase-3 Dnorm pruning and solution-interval assembly
// for one candidate sequence against a partitioned query, exactly as the
// indexed search would after phase 2 — same kernel (phase3Flat), same
// arithmetic, same Match content. Skipping phase 2 cannot change the
// outcome: Dmbr lower-bounds Dnorm (Lemma 2), so a candidate the index
// would have pruned yields hit=false here. The query partitioning must
// come from NewSegmented with the database's PartitionConfig; the
// returned Match has SeqID unset (the caller owns id assignment). evals
// reports the Dnorm table rows computed, for SearchStats accounting.
func EvalRange(qseg *Segmented, g *Segmented, eps float64) (m Match, hit bool, evals int) {
	sc := getScratch()
	defer putScratch(sc)
	return phase3Flat(qseg.MBRs, &sc.p3, g, qseg.Seq.Len(), eps)
}

// EvalAlign computes the exact sequence distance D(Q,S) and the best
// alignment offset for one candidate — the kNN refinement step — with
// the same flat kernel the indexed kNN path uses (cutoff disabled, so
// the value is exact).
func EvalAlign(qseg *Segmented, g *Segmented) (offset int, dist float64) {
	return bestAlignFlat(qseg.Flat, g.Flat, qseg.Seq.Dim(), math.Inf(1))
}

// EvalMinDnorm computes the kNN lower bound for one candidate — the
// minimum Dnorm sweep value over all query MBRs — via the same kernel as
// the indexed lower-bound pass.
func EvalMinDnorm(qseg *Segmented, g *Segmented) float64 {
	sc := getScratch()
	defer putScratch(sc)
	return minDnormFlat(qseg.MBRs, &sc.p3, g)
}

// EvalMetric computes the exact metric distance between a partitioned
// query and one candidate — the metric-search analogue of EvalAlign,
// using the same kernels as the indexed metric path with the cutoff
// disabled, so the value is exact and bit-identical to it. +Inf means
// the metric admits no alignment (DTW window narrower than the length
// difference) — never a match.
func EvalMetric(qseg *Segmented, g *Segmented, m Metric) float64 {
	if m == nil {
		m = MetricD{}
	}
	sc := getScratch()
	defer putScratch(sc)
	sc.qflat = ensureFloats(sc.qflat, len(qseg.Flat))
	copy(sc.qflat, qseg.Flat)
	return sc.distanceSeq(m, g, qseg.Seq.Dim(), math.Inf(1))
}
