package core

import (
	"math"

	"repro/internal/geom"
)

// DnormResult is the outcome of one normalized-distance computation: the
// distance itself plus the window of data-sequence MBRs that realized it,
// which phase 3 of the search turns into a solution-interval fragment
// (Example 3: "SI = {all points contained in mbr1, mbr2} ∪ {first 2 points
// of mbr3}").
type DnormResult struct {
	// Dist is Dnorm(mbr_i(Q), mbr_j(S)).
	Dist float64
	// K and L are the inclusive MBR indices of the involved window.
	K, L int
	// PStart and PEnd delimit (half-open, in point indices of the data
	// sequence) exactly the points participating in the calculation,
	// including the partial slice of the marginal MBR.
	PStart, PEnd int
}

// dnormCalc evaluates Dnorm for every target MBR of one data sequence
// against one query MBR, reusing the per-MBR Dmbr values and count prefix
// sums. Build one per (query MBR, sequence) pair.
type dnormCalc struct {
	mbrs   []MBRInfo
	dists  []float64 // dists[t] = Dmbr(query MBR, mbrs[t])
	prefix []int     // prefix[t] = Σ_{s<t} count(s)
	wpre   []float64 // wpre[t] = Σ_{s<t} dists[s]·count(s)
	qCount int
}

func newDnormCalc(qRect geom.Rect, qCount int, g *Segmented) *dnormCalc {
	r := len(g.MBRs)
	c := &dnormCalc{
		mbrs:   g.MBRs,
		dists:  make([]float64, r),
		prefix: make([]int, r+1),
		wpre:   make([]float64, r+1),
		qCount: qCount,
	}
	for t := 0; t < r; t++ {
		c.dists[t] = qRect.MinDist(g.MBRs[t].Rect)
		c.prefix[t+1] = c.prefix[t] + g.MBRs[t].Count()
		c.wpre[t+1] = c.wpre[t] + c.dists[t]*float64(g.MBRs[t].Count())
	}
	return c
}

// countIn returns the total point count of MBRs [a, b] inclusive.
func (c *dnormCalc) countIn(a, b int) int { return c.prefix[b+1] - c.prefix[a] }

// weightedIn returns Σ_{t=a}^{b} dists[t]·count(t).
func (c *dnormCalc) weightedIn(a, b int) float64 { return c.wpre[b+1] - c.wpre[a] }

// dnorm computes Dnorm(query MBR, mbr_j) per Definition 5.
//
// When the target MBR holds at least as many points as the query MBR, the
// plain Dmbr is the answer (Example 2's prose). Otherwise neighboring MBRs
// are absorbed until the query's point count is covered: LD windows
// [k..l] with k ≤ j < l count MBRs k..l-1 fully and take only the first
// (qCount − Σ m) points of the marginal right MBR l; RD windows mirror
// with the marginal on the left. Dnorm is the minimum over all such
// windows. If the sequence holds fewer points than the query MBR, the
// whole sequence participates and the weighted mean over its actual count
// is used — still a convex combination of Dmbr values, so the
// no-false-dismissal lower bound of Lemmas 2–3 is preserved.
func (c *dnormCalc) dnorm(j int) DnormResult {
	r := len(c.mbrs)
	mj := c.mbrs[j].Count()
	if mj >= c.qCount {
		return DnormResult{
			Dist: c.dists[j],
			K:    j, L: j,
			PStart: c.mbrs[j].Start, PEnd: c.mbrs[j].End,
		}
	}
	if c.countIn(0, r-1) <= c.qCount {
		// Entire sequence shorter than (or equal to) the query MBR: use all
		// of it, weighted by actual counts.
		total := c.countIn(0, r-1)
		return DnormResult{
			Dist: c.weightedIn(0, r-1) / float64(total),
			K:    0, L: r - 1,
			PStart: c.mbrs[0].Start, PEnd: c.mbrs[r-1].End,
		}
	}

	best := DnormResult{Dist: math.Inf(1)}

	// LD windows: marginal MBR on the right. For each left edge k ≤ j,
	// the right edge l is the smallest index with count[k..l] ≥ qCount;
	// the window is valid while l > j.
	for k := j; k >= 0; k-- {
		l := k
		for l < r && c.countIn(k, l) < c.qCount {
			l++
		}
		if l >= r {
			continue // not enough points to the right of k
		}
		if l <= j {
			break // windows for smaller k only shrink l further
		}
		interior := c.countIn(k, l-1) // full MBRs k..l-1
		partial := c.qCount - interior
		dist := (c.weightedIn(k, l-1) + c.dists[l]*float64(partial)) / float64(c.qCount)
		if dist < best.Dist {
			best = DnormResult{
				Dist: dist,
				K:    k, L: l,
				PStart: c.mbrs[k].Start,
				PEnd:   c.mbrs[l].Start + partial,
			}
		}
	}

	// RD windows: marginal MBR on the left. For each right edge q ≥ j,
	// the left edge p is the largest index with count[p..q] ≥ qCount;
	// the window is valid while p < j.
	for q := j; q < r; q++ {
		p := q
		for p >= 0 && c.countIn(p, q) < c.qCount {
			p--
		}
		if p < 0 {
			continue // not enough points to the left of q
		}
		if p >= j {
			break // windows for larger q only grow p further
		}
		interior := c.countIn(p+1, q) // full MBRs p+1..q
		partial := c.qCount - interior
		dist := (c.weightedIn(p+1, q) + c.dists[p]*float64(partial)) / float64(c.qCount)
		if dist < best.Dist {
			best = DnormResult{
				Dist: dist,
				K:    p, L: q,
				PStart: c.mbrs[p].End - partial,
				PEnd:   c.mbrs[q].End,
			}
		}
	}
	return best
}

// dnWindow is one qualifying Dnorm window as collected by sweepAppend:
// the weighted distance plus the half-open point range that realized it.
type dnWindow struct {
	dist         float64
	pstart, pend int
}

// sweep enumerates every Dnorm window of the sequence exactly once and
// calls emit for each window whose weighted distance is at most eps,
// returning the global minimum distance across all windows (which equals
// min_j Dnorm(j) — each per-target Dnorm is the minimum over the windows
// containing that target, so the two minima coincide, and a sequence has
// some Dnorm(j) ≤ eps exactly when some window qualifies).
//
// This is the closure-based compatibility form; it is implemented on top
// of sweepAppend so both forms enumerate identical windows in identical
// order. Hot paths call sweepAppend directly with a reused buffer.
func (c *dnormCalc) sweep(eps float64, emit func(dist float64, pstart, pend int)) float64 {
	if emit == nil {
		best, _ := c.sweepAppend(math.Inf(-1), nil)
		return best
	}
	best, wins := c.sweepAppend(eps, nil)
	for _, w := range wins {
		emit(w.dist, w.pstart, w.pend)
	}
	return best
}

// sweepAppend enumerates every Dnorm window of the sequence exactly once —
// all LD windows (one per left edge with enough points to its right), all
// RD windows, every degenerate single-MBR case, and the short-sequence
// clamp — appending each window whose weighted distance is at most eps to
// wins. It returns the global minimum distance across all windows and the
// grown slice. With a pre-grown wins buffer (and eps = -Inf to suppress
// collection entirely) the call performs no allocation.
//
// The union of qualifying windows is what phase 3 needs for the solution
// interval, and the sweep computes it in O(r) where evaluating Dnorm(j)
// for every j costs O(r²).
func (c *dnormCalc) sweepAppend(eps float64, wins []dnWindow) (float64, []dnWindow) {
	r := len(c.mbrs)
	best := math.Inf(1)
	consider := func(dist float64, pstart, pend int) {
		if dist < best {
			best = dist
		}
		if dist <= eps {
			wins = append(wins, dnWindow{dist: dist, pstart: pstart, pend: pend})
		}
	}

	if c.countIn(0, r-1) <= c.qCount {
		total := c.countIn(0, r-1)
		consider(c.weightedIn(0, r-1)/float64(total), c.mbrs[0].Start, c.mbrs[r-1].End)
		return best, wins
	}

	// Degenerate targets: big enough on their own.
	for j := 0; j < r; j++ {
		if c.mbrs[j].Count() >= c.qCount {
			consider(c.dists[j], c.mbrs[j].Start, c.mbrs[j].End)
		}
	}

	// LD windows: two-pointer over left edges; l(k) is non-decreasing in k.
	l := 0
	for k := 0; k < r; k++ {
		if l < k {
			l = k
		}
		for l < r && c.countIn(k, l) < c.qCount {
			l++
		}
		if l >= r {
			break // no left edge further right has enough points either
		}
		if l == k {
			continue // degenerate, handled above
		}
		interior := c.countIn(k, l-1)
		partial := c.qCount - interior
		dist := (c.weightedIn(k, l-1) + c.dists[l]*float64(partial)) / float64(c.qCount)
		consider(dist, c.mbrs[k].Start, c.mbrs[l].Start+partial)
	}

	// RD windows: two-pointer over right edges; the marginal left index
	// p(q) — the largest p with count[p..q] ≥ qCount — is non-decreasing.
	p := 0
	for q := 0; q < r; q++ {
		if c.countIn(0, q) < c.qCount {
			continue // not enough points up to q
		}
		for p+1 <= q && c.countIn(p+1, q) >= c.qCount {
			p++
		}
		if p == q {
			continue // degenerate, handled above
		}
		interior := c.countIn(p+1, q)
		partial := c.qCount - interior
		dist := (c.weightedIn(p+1, q) + c.dists[p]*float64(partial)) / float64(c.qCount)
		consider(dist, c.mbrs[p].End-partial, c.mbrs[q].End)
	}
	return best, wins
}

// Dnorm computes the normalized distance between a query MBR (its
// rectangle and point count) and the j-th MBR of a segmented data
// sequence. This is the one-shot form; Database.Search batches the
// computation across all j via dnormCalc.
func Dnorm(qRect geom.Rect, qCount int, g *Segmented, j int) DnormResult {
	return newDnormCalc(qRect, qCount, g).dnorm(j)
}

// MinDnorm returns min_j Dnorm(qRect, qCount, g, j) — the quantity Lemma 3
// sandwiches between min Dmbr and D(Q,S). It runs the O(r) window sweep,
// whose minimum provably equals the minimum over per-target Dnorm values.
func MinDnorm(qRect geom.Rect, qCount int, g *Segmented) float64 {
	return newDnormCalc(qRect, qCount, g).sweep(math.Inf(-1), nil)
}
