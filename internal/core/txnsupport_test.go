package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func randSeqN(rng *rand.Rand, dim, n int) *Sequence {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float64()
		}
		pts[i] = p
	}
	s, err := NewSequence("", pts)
	if err != nil {
		panic(err)
	}
	return s
}

// TestAddSegmentedMatchesAdd: a database built via AddSegmented answers
// queries identically to one built via Add over the same corpus.
func TestAddSegmentedMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	opts := Options{Dim: 3}
	a, _ := NewDatabase(opts)
	b, _ := NewDatabase(opts)
	defer a.Close()
	defer b.Close()
	for i := 0; i < 20; i++ {
		s := randSeqN(rng, 3, 30+rng.Intn(100))
		if _, err := a.Add(s.Clone()); err != nil {
			t.Fatal(err)
		}
		g, err := NewSegmented(s, a.PartitionConfig())
		if err != nil {
			t.Fatal(err)
		}
		id, err := b.AddSegmented(g)
		if err != nil {
			t.Fatal(err)
		}
		if int(id) != i {
			t.Fatalf("AddSegmented id = %d, want %d", id, i)
		}
	}
	q := randSeqN(rng, 3, 40)
	ma, _, err := a.Search(q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mb, _, err := b.Search(q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ma) != len(mb) {
		t.Fatalf("Add path found %d matches, AddSegmented path %d", len(ma), len(mb))
	}
	for i := range ma {
		if ma[i].SeqID != mb[i].SeqID || ma[i].MinDnorm != mb[i].MinDnorm {
			t.Fatalf("match %d differs: %+v vs %+v", i, ma[i], mb[i])
		}
	}
}

// TestAppendPointsCOW: AppendPoints must not mutate the previously stored
// Segmented — readers holding the old version keep a consistent view.
func TestAppendPointsCOW(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db, _ := NewDatabase(Options{Dim: 2})
	defer db.Close()
	s := randSeqN(rng, 2, 80)
	id, err := db.Add(s)
	if err != nil {
		t.Fatal(err)
	}
	old := db.Segmented(id)
	oldLen := old.Seq.Len()
	oldMBRs := len(old.MBRs)
	oldFlat := len(old.Flat)
	if err := db.AppendPoints(id, randSeqN(rng, 2, 50).Points); err != nil {
		t.Fatal(err)
	}
	if old.Seq.Len() != oldLen || len(old.MBRs) != oldMBRs || len(old.Flat) != oldFlat {
		t.Fatalf("AppendPoints mutated the old Segmented in place (len %d→%d, MBRs %d→%d)",
			oldLen, old.Seq.Len(), oldMBRs, len(old.MBRs))
	}
	ng := db.Segmented(id)
	if ng == old {
		t.Fatal("AppendPoints did not swap in a new Segmented")
	}
	if ng.Seq.Len() != oldLen+50 {
		t.Fatalf("new version has %d points, want %d", ng.Seq.Len(), oldLen+50)
	}
	if err := ng.CheckPartition(db.PartitionConfig()); err != nil {
		t.Fatal(err)
	}
}

// TestAppendToSegmentedEquivalence: the COW append must produce exactly
// the partitioning a from-scratch partition of the extended sequence
// yields, for many random split points.
func TestAppendToSegmentedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultPartitionConfig()
	for trial := 0; trial < 30; trial++ {
		whole := randSeqN(rng, 3, 60+rng.Intn(140))
		cut := 1 + rng.Intn(whole.Len()-1)
		head, _ := NewSequence("", whole.Points[:cut])
		g, err := NewSegmented(head, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ng, err := AppendToSegmented(g, whole.Points[cut:], cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewSegmented(whole, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(ng.MBRs) != len(ref.MBRs) {
			t.Fatalf("trial %d: %d MBRs after append, want %d", trial, len(ng.MBRs), len(ref.MBRs))
		}
		for j := range ng.MBRs {
			if ng.MBRs[j].Start != ref.MBRs[j].Start || ng.MBRs[j].End != ref.MBRs[j].End ||
				!ng.MBRs[j].Rect.Equal(ref.MBRs[j].Rect) {
				t.Fatalf("trial %d: MBR %d differs", trial, j)
			}
		}
	}
}

// TestReplaceSegmented: replacing a sequence re-indexes it — searches see
// the new content, and results equal a fresh database with the same
// final corpus.
func TestReplaceSegmented(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := DefaultPartitionConfig()
	db, _ := NewDatabase(Options{Dim: 3})
	defer db.Close()
	var finals []*Sequence
	for i := 0; i < 10; i++ {
		s := randSeqN(rng, 3, 50)
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
		finals = append(finals, s)
	}
	// Replace half the sequences with fresh content.
	for i := 0; i < 10; i += 2 {
		ns := randSeqN(rng, 3, 70)
		g, err := NewSegmented(ns, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.ReplaceSegmented(uint32(i), g); err != nil {
			t.Fatal(err)
		}
		finals[i] = ns
	}
	ref, _ := NewDatabase(Options{Dim: 3})
	defer ref.Close()
	for _, s := range finals {
		if _, err := ref.Add(s.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	q := randSeqN(rng, 3, 40)
	for _, eps := range []float64{0.2, 0.6, 1.5} {
		got, _, err := db.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := ref.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("eps %g: %d matches after replace, want %d", eps, len(got), len(want))
		}
		for i := range got {
			if got[i].SeqID != want[i].SeqID || got[i].MinDnorm != want[i].MinDnorm {
				t.Fatalf("eps %g: match %d differs", eps, i)
			}
		}
	}
}

// TestEvalRangeMatchesSearch: for every stored sequence, EvalRange's
// verdict and Match content must agree with what the indexed search
// reports — including sequences the index would prune (hit=false).
func TestEvalRangeMatchesSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := DefaultPartitionConfig()
	db, _ := NewDatabase(Options{Dim: 3})
	defer db.Close()
	n := 40
	for i := 0; i < n; i++ {
		if _, err := db.Add(randSeqN(rng, 3, 40+rng.Intn(80))); err != nil {
			t.Fatal(err)
		}
	}
	q := randSeqN(rng, 3, 50)
	qseg, err := NewSegmented(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.3, 0.8} {
		matches, _, err := db.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		byID := map[uint32]Match{}
		for _, m := range matches {
			byID[m.SeqID] = m
		}
		for id := 0; id < n; id++ {
			g := db.Segmented(uint32(id))
			m, hit, _ := EvalRange(qseg, g, eps)
			want, inSearch := byID[uint32(id)]
			if hit != inSearch {
				t.Fatalf("eps %g seq %d: EvalRange hit=%v, indexed search found=%v", eps, id, hit, inSearch)
			}
			if hit {
				if m.MinDnorm != want.MinDnorm {
					t.Fatalf("eps %g seq %d: MinDnorm %g, want %g", eps, id, m.MinDnorm, want.MinDnorm)
				}
				gr, wr := m.Interval.Ranges(), want.Interval.Ranges()
				if len(gr) != len(wr) {
					t.Fatalf("eps %g seq %d: %d interval ranges, want %d", eps, id, len(gr), len(wr))
				}
				for k := range gr {
					if gr[k] != wr[k] {
						t.Fatalf("eps %g seq %d: interval range %d differs", eps, id, k)
					}
				}
			}
		}
	}
}

// TestSnapshotHandle: the handle reports staleness exactly when a write
// completes after it was taken.
func TestSnapshotHandle(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	db, _ := NewDatabase(Options{Dim: 2})
	defer db.Close()
	if _, err := db.Add(randSeqN(rng, 2, 30)); err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	if snap.Stale() {
		t.Fatal("fresh snapshot reports stale")
	}
	q := randSeqN(rng, 2, 20)
	if _, _, err := snap.Search(q, 0.5); err != nil {
		t.Fatal(err)
	}
	if snap.Stale() {
		t.Fatal("read made the snapshot stale")
	}
	if _, err := db.Add(randSeqN(rng, 2, 30)); err != nil {
		t.Fatal(err)
	}
	if !snap.Stale() {
		t.Fatal("write did not mark the snapshot stale")
	}
	if db.Snapshot().Epoch() == snap.Epoch() {
		t.Fatal("epoch did not advance across a write")
	}
}
