package core

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/geom"
)

func newTestDB(t *testing.T, dim int) *Database {
	t.Helper()
	db, err := NewDatabase(Options{Dim: dim})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// populateWalks fills db with n random-walk sequences and returns them.
func populateWalks(t *testing.T, db *Database, n int, rng *rand.Rand) []*Sequence {
	t.Helper()
	seqs := make([]*Sequence, n)
	for i := range seqs {
		s := randWalkSeq(rng, 40+rng.Intn(120), 3)
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
		seqs[i] = s
	}
	return seqs
}

func TestNewDatabaseValidation(t *testing.T) {
	if _, err := NewDatabase(Options{Dim: 0}); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := NewDatabase(Options{Dim: 3, Partition: PartitionConfig{QueryExtent: -1, MaxPoints: 4}}); err == nil {
		t.Error("bad partition config accepted")
	}
}

func TestAddAssignsIDsAndIndexes(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(40))
	s1 := randWalkSeq(rng, 60, 3)
	s2 := randWalkSeq(rng, 80, 3)
	id1, err := db.Add(s1)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := db.Add(s2)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != 0 || id2 != 1 {
		t.Errorf("ids = %d, %d", id1, id2)
	}
	if db.Len() != 2 {
		t.Errorf("Len = %d", db.Len())
	}
	if db.NumMBRs() == 0 {
		t.Error("no MBRs indexed")
	}
	g := db.Segmented(id1)
	if g == nil || g.Seq != s1 {
		t.Error("Segmented(id1) wrong")
	}
	if db.Segmented(99) != nil {
		t.Error("unknown id should return nil")
	}
}

func TestAddRejectsWrongDim(t *testing.T) {
	db := newTestDB(t, 3)
	if _, err := db.Add(seqFromCoords(1, 2, 3)); err == nil {
		t.Error("1-D sequence accepted by 3-D database")
	}
	if _, err := db.Add(&Sequence{}); err == nil {
		t.Error("empty sequence accepted")
	}
}

func TestSearchValidation(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(41))
	populateWalks(t, db, 3, rng)
	q := randWalkSeq(rng, 20, 3)
	if _, _, err := db.Search(q, -0.1); err == nil {
		t.Error("negative eps accepted")
	}
	if _, _, err := db.Search(seqFromCoords(1, 2), 0.1); err == nil {
		t.Error("wrong-dim query accepted")
	}
	if _, _, err := db.Search(&Sequence{}, 0.1); err == nil {
		t.Error("empty query accepted")
	}
}

// TestNoFalseDismissals is the paper's central correctness claim: every
// sequence the exact sequential scan finds (D(Q,S) ≤ ε) must also be
// returned by the three-phase MBR search.
func TestNoFalseDismissals(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(42))
	populateWalks(t, db, 60, rng)
	for trial := 0; trial < 15; trial++ {
		q := randWalkSeq(rng, 15+rng.Intn(60), 3)
		for _, eps := range []float64{0.05, 0.15, 0.3, 0.5} {
			exact, err := db.SequentialSearch(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := db.Search(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			inGot := make(map[uint32]bool, len(got))
			for _, m := range got {
				inGot[m.SeqID] = true
			}
			for _, r := range exact {
				if !inGot[r.SeqID] {
					t.Fatalf("trial %d eps %g: sequence %d (D=%g) falsely dismissed",
						trial, eps, r.SeqID, r.Dist)
				}
			}
		}
	}
}

// TestPruningHierarchy: relevant ⊆ ASnorm ⊆ ASmbr — phase 3 only ever
// shrinks the phase-2 candidate set, never grows it.
func TestPruningHierarchy(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(43))
	populateWalks(t, db, 60, rng)
	q := randWalkSeq(rng, 40, 3)
	for _, eps := range []float64{0.05, 0.2, 0.4} {
		asmbr, err := db.CandidatesDmbr(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		matches, st, err := db.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if st.CandidatesDmbr != len(asmbr) {
			t.Errorf("eps %g: stats candidates %d != CandidatesDmbr %d", eps, st.CandidatesDmbr, len(asmbr))
		}
		if len(matches) > len(asmbr) {
			t.Errorf("eps %g: |ASnorm| %d > |ASmbr| %d", eps, len(matches), len(asmbr))
		}
		for _, m := range matches {
			if !asmbr[m.SeqID] {
				t.Errorf("eps %g: match %d not in ASmbr", eps, m.SeqID)
			}
		}
	}
}

func TestSearchResultsSortedAndAnnotated(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(44))
	populateWalks(t, db, 40, rng)
	q := randWalkSeq(rng, 30, 3)
	matches, st, err := db.Search(q, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if st.QueryMBRs < 1 {
		t.Errorf("QueryMBRs = %d", st.QueryMBRs)
	}
	if st.TotalSequences != 40 {
		t.Errorf("TotalSequences = %d", st.TotalSequences)
	}
	for i, m := range matches {
		if i > 0 && matches[i-1].SeqID >= m.SeqID {
			t.Error("matches not sorted by id")
		}
		if m.Seq == nil {
			t.Error("match without sequence")
		}
		if m.Interval.IsEmpty() {
			t.Errorf("match %d with empty solution interval", m.SeqID)
		}
		if m.MinDnorm > 0.4 {
			t.Errorf("match %d MinDnorm %g > eps", m.SeqID, m.MinDnorm)
		}
		for _, r := range m.Interval.Ranges() {
			if r.Start < 0 || r.End > m.Seq.Len() {
				t.Errorf("interval %v outside sequence of %d points", r, m.Seq.Len())
			}
		}
	}
}

// TestSolutionIntervalRecall measures the quality claim of Section 4.2.2 on
// random-walk data: the approximated interval should recover nearly all
// exact solution points. We assert a conservative 90% aggregate floor
// (the paper reports 98-100% on its workloads; the experiment harness
// reproduces that figure — this test just guards against regressions that
// break the approximation wholesale).
func TestSolutionIntervalRecall(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(45))
	populateWalks(t, db, 50, rng)
	var inter, scan int
	for trial := 0; trial < 10; trial++ {
		q := randWalkSeq(rng, 30+rng.Intn(40), 3)
		eps := 0.15 + 0.05*float64(trial%5)
		exact, err := db.SequentialSearch(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		matches, _, err := db.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		byID := make(map[uint32]*Match)
		for i := range matches {
			byID[matches[i].SeqID] = &matches[i]
		}
		for _, r := range exact {
			scan += r.Interval.NumPoints()
			if m, ok := byID[r.SeqID]; ok {
				inter += r.Interval.IntersectCount(&m.Interval)
			}
		}
	}
	if scan == 0 {
		t.Skip("no relevant sequences in this configuration")
	}
	recall := float64(inter) / float64(scan)
	if recall < 0.90 {
		t.Errorf("aggregate solution-interval recall = %.3f, want >= 0.90", recall)
	}
}

func TestSearchOnClosedDatabase(t *testing.T) {
	db, err := NewDatabase(Options{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(46))
	s := randWalkSeq(rng, 30, 3)
	if _, err := db.Add(s); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
	if _, err := db.Add(s); err == nil {
		t.Error("Add after Close accepted")
	}
	if _, _, err := db.Search(s, 0.1); err == nil {
		t.Error("Search after Close accepted")
	}
}

func TestFileBackedDatabase(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.db")
	db, err := NewDatabase(Options{Dim: 3, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rng := rand.New(rand.NewSource(47))
	populateWalks(t, db, 20, rng)
	q := randWalkSeq(rng, 25, 3)
	matches, _, err := db.Search(q, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := db.SequentialSearch(q, 0.3)
	inGot := make(map[uint32]bool)
	for _, m := range matches {
		inGot[m.SeqID] = true
	}
	for _, r := range exact {
		if !inGot[r.SeqID] {
			t.Errorf("file-backed search dismissed %d", r.SeqID)
		}
	}
}

func TestIdenticalSequenceAlwaysFound(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(48))
	seqs := populateWalks(t, db, 20, rng)
	// A query equal to a stored subsequence has D = 0 and must be found at
	// any threshold.
	target := seqs[7]
	q := &Sequence{Points: target.Points[10:40]}
	matches, _, err := db.Search(q, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.SeqID == 7 {
			found = true
		}
	}
	if !found {
		t.Error("exact subsequence not found at eps=0")
	}
}

func TestQueryLongerThanData(t *testing.T) {
	// Section 1's "long query": the query exceeds every stored sequence;
	// search must still work, comparing data slid inside the query.
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(49))
	short := randWalkSeq(rng, 20, 3)
	if _, err := db.Add(short); err != nil {
		t.Fatal(err)
	}
	// Query embeds the stored sequence, padded both sides.
	var pts []geom.Point
	pad := randWalkSeq(rng, 15, 3)
	pts = append(pts, pad.Points...)
	pts = append(pts, short.Points...)
	pts = append(pts, pad.Points...)
	q := &Sequence{Points: pts}

	exact, err := db.SequentialSearch(q, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != 1 {
		t.Fatalf("sequential scan found %d, want 1 (D should be 0)", len(exact))
	}
	matches, _, err := db.Search(q, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].SeqID != 0 {
		t.Fatalf("long query: matches = %+v", matches)
	}
}

func TestPagerStatsExposed(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(50))
	populateWalks(t, db, 10, rng)
	db.ResetPagerStats()
	q := randWalkSeq(rng, 20, 3)
	if _, _, err := db.Search(q, 0.2); err != nil {
		t.Fatal(err)
	}
	if db.PagerStats().Fetches == 0 {
		t.Error("search fetched no pages")
	}
}

func TestPartitionConfigAccessor(t *testing.T) {
	db := newTestDB(t, 3)
	if got := db.PartitionConfig(); got != DefaultPartitionConfig() {
		t.Errorf("PartitionConfig = %+v", got)
	}
}

func TestWALBackedDatabase(t *testing.T) {
	path := filepath.Join(t.TempDir(), "walidx.db")
	db, err := NewDatabase(Options{Dim: 3, Path: path, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rng := rand.New(rand.NewSource(90))
	seqs := populateWalks(t, db, 15, rng)
	if err := db.Remove(4); err != nil {
		t.Fatal(err)
	}
	q := &Sequence{Points: seqs[9].Points[5:30]}
	matches, _, err := db.Search(q, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.SeqID == 9 {
			found = true
		}
	}
	if !found {
		t.Error("WAL-backed database lost a sequence")
	}
	if _, err := NewDatabase(Options{Dim: 3, WAL: true}); err == nil {
		t.Error("WAL without Path accepted")
	}
}
