package core

import (
	"math/rand"
	"strings"
	"testing"
)

func TestExplainAgreesWithSearch(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(150))
	populateWalks(t, db, 40, rng)
	for trial := 0; trial < 6; trial++ {
		q := randWalkSeq(rng, 25+rng.Intn(40), 3)
		eps := 0.05 + 0.1*float64(trial%4)

		ex, err := db.Explain(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if len(ex.Candidates) != 40 {
			t.Fatalf("Explain covered %d sequences", len(ex.Candidates))
		}
		matches, _, err := db.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		matchSet := make(map[uint32]bool)
		for _, m := range matches {
			matchSet[m.SeqID] = true
		}
		cands, err := db.CandidatesDmbr(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range ex.Candidates {
			switch c.Phase {
			case "matched":
				if !matchSet[c.SeqID] {
					t.Errorf("trial %d: Explain says %d matched, Search disagrees", trial, c.SeqID)
				}
			case "pruned-dnorm":
				if matchSet[c.SeqID] {
					t.Errorf("trial %d: Explain says %d pruned by Dnorm but it matched", trial, c.SeqID)
				}
				if !cands[c.SeqID] {
					t.Errorf("trial %d: %d should have been a Dmbr candidate", trial, c.SeqID)
				}
			case "pruned-dmbr":
				if cands[c.SeqID] {
					t.Errorf("trial %d: Explain says %d pruned by Dmbr but index returned it", trial, c.SeqID)
				}
			default:
				t.Fatalf("unknown phase %q", c.Phase)
			}
			if c.MinDmbr > c.MinDnorm+1e-9 {
				t.Errorf("bounds out of order for %d: Dmbr %g > Dnorm %g", c.SeqID, c.MinDmbr, c.MinDnorm)
			}
		}
		pd, pn, m := ex.Counts()
		if pd+pn+m != 40 {
			t.Errorf("counts don't add up: %d+%d+%d", pd, pn, m)
		}
		if m != len(matches) {
			t.Errorf("matched count %d != Search results %d", m, len(matches))
		}
	}
}

func TestExplainWriteTo(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(151))
	populateWalks(t, db, 10, rng)
	q := randWalkSeq(rng, 20, 3)
	ex, err := db.Explain(q, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := ex.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"eps=0.2000", "minDnorm", "phase"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestExplainValidation(t *testing.T) {
	db := newTestDB(t, 3)
	if _, err := db.Explain(&Sequence{}, 0.1); err == nil {
		t.Error("empty query accepted")
	}
}
