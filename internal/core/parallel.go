package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
)

// SearchParallel is Search with phase 3 fanned out over a worker pool.
// Phase 3 dominates latency when many candidates survive the index pass
// (large ε, large corpora), and its per-candidate work is independent and
// read-only, so it parallelizes cleanly. workers <= 0 uses GOMAXPROCS.
// Results and statistics are identical to Search (same order, same
// matches); CPUTime additionally accounts the summed per-worker compute.
func (db *Database) SearchParallel(q *Sequence, eps float64, workers int) ([]Match, SearchStats, error) {
	return db.SearchParallelCtx(context.Background(), q, eps, workers)
}

// SearchParallelCtx is SearchParallel honoring a context deadline or
// cancellation: the phase 2 loop checks ctx per query MBR, and every
// phase-3 worker checks it once per cancelCheckEvery candidates — the
// same granularity as the serial SearchCtx — so cancellation reaches the
// pool even mid-refinement. The job feeder also watches ctx, so no
// goroutine blocks once it fires. A canceled search records nothing into
// the metrics registry and returns ctx's error wrapped the same way
// SearchCtx wraps it.
func (db *Database) SearchParallelCtx(ctx context.Context, q *Sequence, eps float64, workers int) ([]Match, SearchStats, error) {
	var st SearchStats
	if err := q.Validate(); err != nil {
		return nil, st, err
	}
	if q.Dim() != db.opts.Dim {
		return nil, st, fmt.Errorf("core: query dim %d, database dim %d: %w",
			q.Dim(), db.opts.Dim, geom.ErrDimensionMismatch)
	}
	if eps < 0 {
		return nil, st, fmt.Errorf("core: negative threshold %g", eps)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The parallel path produces byte-identical results to the serial
	// one, so it shares the serial path's cache entries (see SearchCtx
	// for the write-sequence snapshot ordering argument).
	ref := db.rangeRef(q, eps)
	tr := obs.FromContext(ctx)
	if ms, cst, ok := ref.getRange(); ok {
		if tr != nil {
			tr.RecordSpan(obs.SpanFromContext(ctx), "cache-hit", 0, obs.Str("tier", "result"))
		}
		return ms, cst, nil
	}

	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.pg == nil {
		return nil, st, errors.New("core: database closed")
	}
	if err := searchCanceled(ctx); err != nil {
		return nil, st, err
	}
	st.TotalSequences = db.live

	// One scratch owns the query segmentation and the phase-2 buffers;
	// the workers read its qmbrs concurrently (read-only) while each
	// draws its own scratch from the pool for the phase-3 Dnorm arrays.
	sc := getScratch()
	defer putScratch(sc)

	t0 := time.Now()
	sc.segmentQuery(q, db.opts.Partition)
	st.QueryMBRs = len(sc.qmbrs)
	st.Phase1 = time.Since(t0)
	if tr != nil {
		tr.RecordSpan(obs.SpanFromContext(ctx), "partition", st.Phase1,
			obs.Int("query_mbrs", st.QueryMBRs))
	}

	t1 := time.Now()
	sc.refs = sc.refs[:0]
	for i := range sc.qmbrs {
		if err := searchCanceled(ctx); err != nil {
			return nil, st, err
		}
		var err error
		sc.refs, err = db.tree.AppendWithinDist(sc.qmbrs[i].Rect, eps, sc.refs)
		if err != nil {
			return nil, st, err
		}
	}
	st.IndexEntriesHit = len(sc.refs)
	sc.ids = appendSeqIDs(sc.ids[:0], sc.refs)
	ids := sortDedupUint32(sc.ids)
	st.CandidatesDmbr = len(ids)
	st.Phase2 = time.Since(t1)
	if tr != nil {
		tr.RecordSpan(obs.SpanFromContext(ctx), "filter", st.Phase2,
			obs.Int("candidates_in", st.TotalSequences),
			obs.Int("index_entries", st.IndexEntriesHit),
			obs.Int("candidates_out", st.CandidatesDmbr),
			obs.Float("pruned_frac", prunedFrac(st.TotalSequences, st.CandidatesDmbr)))
	}

	t2 := time.Now()

	type slot struct {
		m       Match
		hit     bool
		evals   int
		qpruned int
	}
	slots := make([]slot, len(ids))
	// busyNS accumulates each worker's phase-3 compute so CPUTime can
	// report the aggregate work the fan-out consumed, not the wall-clock
	// of the slowest worker (the old st.Total() accounting under-reported
	// CPU by up to a factor of `workers`).
	var busyNS atomic.Int64
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wsc := getScratch()
			defer putScratch(wsc)
			var busy time.Duration
			defer func() { busyNS.Add(int64(busy)) }()
			done := false
			n := 0
			for i := range jobs {
				if done {
					continue // drain so the feeder never blocks
				}
				if n%cancelCheckEvery == 0 && ctx.Err() != nil {
					done = true
					continue
				}
				n++
				jt := time.Now()
				id := ids[i]
				m, hit, evals, qpruned := phase3FlatQ(sc.qmbrs, &wsc.p3, db.seqs[id], q.Len(), eps, db.opts.QuantizedMBR)
				m.SeqID = id
				slots[i] = slot{m: m, hit: hit, evals: evals, qpruned: qpruned}
				busy += time.Since(jt)
			}
		}()
	}
feed:
	for i := range ids {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err := searchCanceled(ctx); err != nil {
		return nil, st, err
	}

	var out []Match
	for _, s := range slots {
		st.DnormEvals += s.evals
		st.QuantPruned += s.qpruned
		if s.hit {
			out = append(out, s.m)
		}
	}
	st.MatchesDnorm = len(out)
	st.Phase3 = time.Since(t2)
	if tr != nil {
		tr.RecordSpan(obs.SpanFromContext(ctx), "refine", st.Phase3,
			obs.Int("candidates_in", st.CandidatesDmbr),
			obs.Int("dnorm_evals", st.DnormEvals),
			obs.Int("matches", st.MatchesDnorm),
			obs.Int("workers", workers),
			obs.Float("pruned_frac", prunedFrac(st.CandidatesDmbr, st.MatchesDnorm)))
	}
	st.CPUTime = st.Phase1 + st.Phase2 + time.Duration(busyNS.Load())
	db.met.RecordSearch(st)
	ref.putRange(out, st)
	return out, st, nil
}
