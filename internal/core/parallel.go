package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// SearchParallel is Search with phase 3 fanned out over a worker pool.
// Phase 3 dominates latency when many candidates survive the index pass
// (large ε, large corpora), and its per-candidate work is independent and
// read-only, so it parallelizes cleanly. workers <= 0 uses GOMAXPROCS.
// Results and statistics are identical to Search (same order, same
// matches); only the wall-clock distribution differs.
func (db *Database) SearchParallel(q *Sequence, eps float64, workers int) ([]Match, SearchStats, error) {
	var st SearchStats
	if err := q.Validate(); err != nil {
		return nil, st, err
	}
	if q.Dim() != db.opts.Dim {
		return nil, st, fmt.Errorf("core: query dim %d, database dim %d: %w",
			q.Dim(), db.opts.Dim, geom.ErrDimensionMismatch)
	}
	if eps < 0 {
		return nil, st, fmt.Errorf("core: negative threshold %g", eps)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.pg == nil {
		return nil, st, errors.New("core: database closed")
	}
	st.TotalSequences = db.live

	t0 := time.Now()
	qseg, err := NewSegmented(q, db.opts.Partition)
	if err != nil {
		return nil, st, err
	}
	st.QueryMBRs = len(qseg.MBRs)
	st.Phase1 = time.Since(t0)

	t1 := time.Now()
	candidates := make(map[uint32]bool)
	for _, qm := range qseg.MBRs {
		err := db.tree.WithinDist(qm.Rect, eps, func(it rtree.Item) bool {
			st.IndexEntriesHit++
			seqID, _ := it.Ref.Unpack()
			candidates[seqID] = true
			return true
		})
		if err != nil {
			return nil, st, err
		}
	}
	st.CandidatesDmbr = len(candidates)
	st.Phase2 = time.Since(t1)

	t2 := time.Now()
	ids := make([]uint32, 0, len(candidates))
	for id := range candidates {
		ids = append(ids, id)
	}
	sortUint32s(ids)

	type slot struct {
		m     Match
		hit   bool
		evals int
	}
	slots := make([]slot, len(ids))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				id := ids[i]
				m, hit, evals := phase3One(qseg, db.seqs[id], q.Len(), eps)
				m.SeqID = id
				slots[i] = slot{m: m, hit: hit, evals: evals}
			}
		}()
	}
	for i := range ids {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	var out []Match
	for _, s := range slots {
		st.DnormEvals += s.evals
		if s.hit {
			out = append(out, s.m)
		}
	}
	st.MatchesDnorm = len(out)
	st.Phase3 = time.Since(t2)
	st.CPUTime = st.Total()
	db.met.RecordSearch(st)
	return out, st, nil
}
