package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/obs"
)

// metricsTestDB builds a small instrumented database of random-walk
// sequences.
func metricsTestDB(t *testing.T, reg *obs.Registry, n int) (*Database, *Sequence) {
	t.Helper()
	db, err := NewDatabase(Options{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	db.SetMetrics(reg)
	rng := rand.New(rand.NewSource(42))
	walk := func(m int) []geom.Point {
		pts := make([]geom.Point, m)
		x, y := rng.Float64(), rng.Float64()
		for i := range pts {
			x += (rng.Float64() - 0.5) * 0.05
			y += (rng.Float64() - 0.5) * 0.05
			pts[i] = geom.Point{clamp01(x), clamp01(y)}
		}
		return pts
	}
	var first *Sequence
	for i := 0; i < n; i++ {
		s, err := NewSequence("s", walk(80))
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = s
		}
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	return db, first
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// TestSearchRecordsMetrics checks that one instrumented search advances
// the counters consistently with its own SearchStats, and that CPUTime
// equals Total for the single-node path.
func TestSearchRecordsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	db, first := metricsTestDB(t, reg, 12)

	q := &Sequence{Label: "q", Points: first.Points[:20]}
	_, st, err := db.Search(q, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if st.CPUTime != st.Total() {
		t.Fatalf("single-node CPUTime %v != Total %v", st.CPUTime, st.Total())
	}
	if got := reg.Counter("mdseq_search_total", "").Value(); got != 1 {
		t.Fatalf("mdseq_search_total = %d, want 1", got)
	}
	if got := reg.Counter("mdseq_search_candidates_dmbr_total", "").Value(); got != uint64(st.CandidatesDmbr) {
		t.Fatalf("candidates counter = %d, stats say %d", got, st.CandidatesDmbr)
	}
	if got := reg.Counter("mdseq_search_candidates_pruned_total", "").Value(); got != uint64(st.CandidatesDmbr-st.MatchesDnorm) {
		t.Fatalf("pruned counter = %d, stats say %d", got, st.CandidatesDmbr-st.MatchesDnorm)
	}
	if got := reg.Histogram("mdseq_search_seconds", "", nil).Count(); got != 1 {
		t.Fatalf("latency histogram count = %d, want 1", got)
	}
	for _, phase := range []string{"partition", "filter", "refine"} {
		h := reg.Histogram("mdseq_search_phase_seconds", "", nil, obs.Label{Key: "phase", Value: phase})
		if h.Count() != 1 {
			t.Fatalf("phase %q histogram count = %d, want 1", phase, h.Count())
		}
	}
	// Adds were recorded, and the shape gauges track the live corpus.
	if got := reg.Counter("mdseq_sequences_added_total", "").Value(); got != 12 {
		t.Fatalf("added_total = %d, want 12", got)
	}
	if got := reg.Gauge("mdseq_sequences", "").Value(); got != 12 {
		t.Fatalf("sequences gauge = %g, want 12", got)
	}
	if got := reg.Gauge("mdseq_index_mbrs", "").Value(); int(got) != db.NumMBRs() {
		t.Fatalf("mbrs gauge = %g, index holds %d", got, db.NumMBRs())
	}
}

// TestKNNRecordsMetrics checks the kNN filter-effectiveness counters:
// refined + pruned must equal the live corpus size.
func TestKNNRecordsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	db, first := metricsTestDB(t, reg, 10)
	q := &Sequence{Label: "q", Points: first.Points[:20]}
	if _, err := db.SearchKNN(q, 3); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("mdseq_knn_total", "").Value(); got != 1 {
		t.Fatalf("knn_total = %d, want 1", got)
	}
	refined := reg.Counter("mdseq_knn_refined_total", "").Value()
	pruned := reg.Counter("mdseq_knn_pruned_total", "").Value()
	if refined+pruned != 10 {
		t.Fatalf("refined %d + pruned %d != corpus 10", refined, pruned)
	}
	if refined < 3 {
		t.Fatalf("refined %d < k=3 — the top k must be exact", refined)
	}
}

// TestUninstrumentedDatabaseStillWorks pins the nil-receiver contract:
// without SetMetrics every path runs unchanged.
func TestUninstrumentedDatabaseStillWorks(t *testing.T) {
	db, first := metricsTestDB(t, nil, 5)
	q := &Sequence{Label: "q", Points: first.Points[:20]}
	if _, _, err := db.Search(q, 0.2); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SearchKNN(q, 2); err != nil {
		t.Fatal(err)
	}
	if err := db.Remove(0); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsExpositionContainsFamilies smoke-tests the full pipeline:
// instrumented activity renders into Prometheus text format.
func TestMetricsExpositionContainsFamilies(t *testing.T) {
	reg := obs.NewRegistry()
	db, first := metricsTestDB(t, reg, 6)
	q := &Sequence{Label: "q", Points: first.Points[:20]}
	if _, _, err := db.Search(q, 0.2); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, fam := range []string{
		"# TYPE mdseq_search_total counter",
		"# TYPE mdseq_search_seconds histogram",
		`mdseq_search_phase_seconds_bucket{phase="filter",le="+Inf"}`,
		"# TYPE mdseq_sequences gauge",
	} {
		if !strings.Contains(out, fam) {
			t.Fatalf("exposition missing %q:\n%s", fam, out)
		}
	}
}
