package core

import (
	"math/rand"
	"sync"
	"testing"
)

func TestSearchParallelMatchesSerial(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(120))
	populateWalks(t, db, 80, rng)
	for trial := 0; trial < 10; trial++ {
		q := randWalkSeq(rng, 20+rng.Intn(60), 3)
		eps := 0.05 + 0.1*float64(trial%5)
		serial, sst, err := db.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 4} {
			par, pst, err := db.SearchParallel(q, eps, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(par) != len(serial) {
				t.Fatalf("trial %d workers %d: %d vs %d matches", trial, workers, len(par), len(serial))
			}
			for i := range serial {
				if par[i].SeqID != serial[i].SeqID {
					t.Fatalf("trial %d: order differs at %d", trial, i)
				}
				if !almostEqual(par[i].MinDnorm, serial[i].MinDnorm) {
					t.Fatalf("trial %d: MinDnorm differs for %d", trial, par[i].SeqID)
				}
				if par[i].Interval.NumPoints() != serial[i].Interval.NumPoints() {
					t.Fatalf("trial %d: intervals differ for %d", trial, par[i].SeqID)
				}
			}
			if pst.CandidatesDmbr != sst.CandidatesDmbr || pst.DnormEvals != sst.DnormEvals {
				t.Fatalf("trial %d: stats differ: %+v vs %+v", trial, pst, sst)
			}
		}
	}
}

func TestSearchParallelValidation(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(121))
	populateWalks(t, db, 5, rng)
	if _, _, err := db.SearchParallel(&Sequence{}, 0.1, 2); err == nil {
		t.Error("empty query accepted")
	}
	if _, _, err := db.SearchParallel(seqFromCoords(1), 0.1, 2); err == nil {
		t.Error("wrong dim accepted")
	}
	q := randWalkSeq(rng, 20, 3)
	if _, _, err := db.SearchParallel(q, -1, 2); err == nil {
		t.Error("negative eps accepted")
	}
}

// TestConcurrentSearchers hammers Search/SearchParallel from many
// goroutines at once; the race detector (go test -race) turns any shared
// mutable state into a failure.
func TestConcurrentSearchers(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(122))
	populateWalks(t, db, 40, rng)
	queries := make([]*Sequence, 8)
	for i := range queries {
		queries[i] = randWalkSeq(rng, 25, 3)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				q := queries[(gi+i)%len(queries)]
				if gi%2 == 0 {
					if _, _, err := db.Search(q, 0.2); err != nil {
						errs <- err
						return
					}
				} else {
					if _, _, err := db.SearchParallel(q, 0.2, 2); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
