package core

import (
	"errors"
	"fmt"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// AppendPoints extends a stored sequence with new points — streaming
// ingestion for live feeds (a camera appending frames). Only the tail is
// repartitioned: the greedy MCOST rule restarts its state at every MBR
// boundary, so re-running it from the start of the current last MBR yields
// exactly the segmentation a from-scratch partition of the whole extended
// sequence would produce (property verified by TestAppendEquivalence).
// Index maintenance is therefore limited to replacing the last MBR's entry
// and inserting the new tail MBRs.
func (db *Database) AppendPoints(id uint32, pts []geom.Point) error {
	if len(pts) == 0 {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.pg == nil {
		return errors.New("core: database closed")
	}
	if int(id) >= len(db.seqs) || db.seqs[id] == nil {
		return fmt.Errorf("%w: %d", ErrUnknownSequence, id)
	}
	g := db.seqs[id]
	dim := g.Seq.Dim()
	for i, p := range pts {
		if len(p) != dim {
			return fmt.Errorf("core: appended point %d has dim %d, want %d: %w",
				i, len(p), dim, geom.ErrDimensionMismatch)
		}
	}

	// Remove the last MBR's index entry; its range will be re-covered by
	// the repartitioned tail.
	lastIdx := len(g.MBRs) - 1
	last := g.MBRs[lastIdx]
	if err := db.tree.Delete(last.Rect, rtree.PackRef(id, uint32(lastIdx))); err != nil {
		return fmt.Errorf("core: appending to sequence %d: %w", id, err)
	}

	// Extend the point storage and repartition from the last boundary.
	g.Seq.Points = append(g.Seq.Points, pts...)
	tail := &Sequence{Points: g.Seq.Points[last.Start:]}
	tailMBRs, err := Partition(tail, db.opts.Partition)
	if err != nil {
		// Restore: re-insert the removed entry and trim the points.
		g.Seq.Points = g.Seq.Points[:len(g.Seq.Points)-len(pts)]
		if rerr := db.tree.Insert(last.Rect, rtree.PackRef(id, uint32(lastIdx))); rerr != nil {
			return fmt.Errorf("core: append failed (%v) and index restore failed: %w", err, rerr)
		}
		return err
	}

	g.MBRs = g.MBRs[:lastIdx]
	for _, m := range tailMBRs {
		mbr := MBRInfo{Rect: m.Rect, Start: m.Start + last.Start, End: m.End + last.Start}
		j := len(g.MBRs)
		if err := db.tree.Insert(mbr.Rect, rtree.PackRef(id, uint32(j))); err != nil {
			return fmt.Errorf("core: appending to sequence %d, MBR %d: %w", id, j, err)
		}
		g.MBRs = append(g.MBRs, mbr)
	}
	// Rebuild the columnar view (Flat/Lo/Hi and the re-aliased rects) to
	// match the extended points and tail MBRs. In-flight readers are
	// excluded by db.mu; rects handed out earlier keep the old arrays.
	g.syncSoA()
	db.bumpEpoch()
	return nil
}
