package core

import (
	"errors"
	"fmt"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// AppendToSegmented returns a new Segmented equal to g extended by pts —
// a pure copy-on-write function: g is never mutated, and the result
// shares no mutable storage with it, so readers holding g (an MVCC
// snapshot) stay consistent while the new version circulates. Only the
// tail is repartitioned: the greedy MCOST rule restarts its state at
// every MBR boundary, so re-running it from the start of g's last MBR
// yields exactly the segmentation a from-scratch partition of the whole
// extended sequence would produce (property verified by
// TestAppendEquivalence). The returned Segmented keeps g's ID and Label;
// as with Add, the caller must not mutate pts afterwards.
func AppendToSegmented(g *Segmented, pts []geom.Point, cfg PartitionConfig) (*Segmented, error) {
	dim := g.Seq.Dim()
	for i, p := range pts {
		if len(p) != dim {
			return nil, fmt.Errorf("core: appended point %d has dim %d, want %d: %w",
				i, len(p), dim, geom.ErrDimensionMismatch)
		}
	}
	npts := make([]geom.Point, 0, len(g.Seq.Points)+len(pts))
	npts = append(append(npts, g.Seq.Points...), pts...)
	lastIdx := len(g.MBRs) - 1
	last := g.MBRs[lastIdx]
	tail := &Sequence{Points: npts[last.Start:]}
	tailMBRs, err := Partition(tail, cfg)
	if err != nil {
		return nil, err
	}
	ng := &Segmented{
		Seq:  &Sequence{ID: g.Seq.ID, Label: g.Seq.Label, Points: npts},
		MBRs: make([]MBRInfo, 0, lastIdx+len(tailMBRs)),
	}
	ng.MBRs = append(ng.MBRs, g.MBRs[:lastIdx]...)
	for _, m := range tailMBRs {
		ng.MBRs = append(ng.MBRs, MBRInfo{Rect: m.Rect, Start: m.Start + last.Start, End: m.End + last.Start})
	}
	// syncSoA builds fresh Flat/Lo/Hi arrays and re-aliases the copied
	// MBRInfo rects into them, so nothing in ng aliases g's storage.
	ng.syncSoA()
	return ng, nil
}

// AppendPoints extends a stored sequence with new points — streaming
// ingestion for live feeds (a camera appending frames). The extended
// version is built copy-on-write by AppendToSegmented and swapped into
// the directory under the write lock; the previous Segmented is never
// mutated, so rects or views handed out earlier stay valid. Index
// maintenance is limited to replacing the last MBR's entry and inserting
// the new tail MBRs.
func (db *Database) AppendPoints(id uint32, pts []geom.Point) error {
	if len(pts) == 0 {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.pg == nil {
		return errors.New("core: database closed")
	}
	if int(id) >= len(db.seqs) || db.seqs[id] == nil {
		return fmt.Errorf("%w: %d", ErrUnknownSequence, id)
	}
	g := db.seqs[id]
	ng, err := AppendToSegmented(g, pts, db.opts.Partition)
	if err != nil {
		return err
	}
	if err := db.swapSegmentedLocked(id, g, ng); err != nil {
		return fmt.Errorf("core: appending to sequence %d: %w", id, err)
	}
	// The extended bounds cover the old ones (points are only added), so
	// one region covers both versions of the sequence.
	db.notifyWrite(ng.Bounds())
	return nil
}

// swapSegmentedLocked replaces the indexed version of sequence id: old's
// trailing entries (from the first MBR differing from ng) are deleted,
// ng's inserted, and the directory slot swapped. On an index error the
// already-applied entries are rolled back, leaving the old version fully
// indexed. Caller holds db.mu and has validated id against old.
func (db *Database) swapSegmentedLocked(id uint32, old, ng *Segmented) error {
	// Shared prefix: append-style updates keep every MBR before the old
	// last one bit-identical, so only the divergent suffix touches the
	// tree. A full replace (ReplaceSegmented) diverges at 0.
	shared := 0
	max := len(old.MBRs)
	if len(ng.MBRs) < max {
		max = len(ng.MBRs)
	}
	for shared < max-1 && old.MBRs[shared].Rect.Equal(ng.MBRs[shared].Rect) &&
		old.MBRs[shared].Start == ng.MBRs[shared].Start && old.MBRs[shared].End == ng.MBRs[shared].End {
		shared++
	}
	// Delete the old suffix entries.
	for j := shared; j < len(old.MBRs); j++ {
		if err := db.tree.Delete(old.MBRs[j].Rect, rtree.PackRef(id, uint32(j))); err != nil {
			// Roll the deletions back.
			for k := shared; k < j; k++ {
				db.tree.Insert(old.MBRs[k].Rect, rtree.PackRef(id, uint32(k)))
			}
			return err
		}
	}
	// Insert the new suffix entries.
	for j := shared; j < len(ng.MBRs); j++ {
		if err := db.tree.Insert(ng.MBRs[j].Rect, rtree.PackRef(id, uint32(j))); err != nil {
			for k := shared; k < j; k++ {
				db.tree.Delete(ng.MBRs[k].Rect, rtree.PackRef(id, uint32(k)))
			}
			for k := shared; k < len(old.MBRs); k++ {
				db.tree.Insert(old.MBRs[k].Rect, rtree.PackRef(id, uint32(k)))
			}
			return err
		}
	}
	db.seqs[id] = ng
	return nil
}

// ReplaceSegmented swaps in a replacement version of sequence id: the old
// version's index entries are removed, the new version's inserted, and
// the directory slot updated, all under one lock hold. It is the fold
// primitive the transaction layer uses to apply an ingest overlay (a
// sequence extended by appends since the last checkpoint) to the base
// database in one step. The replacement must have the same
// dimensionality; its Seq.ID is set to id.
func (db *Database) ReplaceSegmented(id uint32, ng *Segmented) error {
	if err := ng.Seq.Validate(); err != nil {
		return err
	}
	if ng.Seq.Dim() != db.opts.Dim {
		return fmt.Errorf("core: replacement dim %d, database dim %d: %w",
			ng.Seq.Dim(), db.opts.Dim, geom.ErrDimensionMismatch)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.pg == nil {
		return errors.New("core: database closed")
	}
	if int(id) >= len(db.seqs) || db.seqs[id] == nil {
		return fmt.Errorf("%w: %d", ErrUnknownSequence, id)
	}
	ng.Seq.ID = id
	old := db.seqs[id]
	if err := db.swapSegmentedLocked(id, old, ng); err != nil {
		return fmt.Errorf("core: replacing sequence %d: %w", id, err)
	}
	// Both versions matter: removing the old one can erase results near
	// its bounds, the new one can create results near its own.
	db.notifyWrite(old.Bounds().Union(ng.Bounds()))
	db.met.SetShape(db.live, db.tree.Len())
	return nil
}
