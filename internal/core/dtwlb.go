package core

import (
	"math"

	"repro/internal/geom"
)

// DTW lower-bound machinery: the per-query Sakoe–Chiba envelope rects,
// the envelope-vs-MBR index kernel, and the multidimensional LB_Keogh
// refinement bound. Everything here underestimates the normalized DTW
// distance, which is what lets range and kNN searches under MetricDTW
// run through the R*-tree with no false dismissals.
//
// The bound chain, for a query Q (n points) and a stored sequence S
// (m points) under window w, with denom = max(n, m):
//
//	DTW(Q,S) = (total path cost) / denom, and every warping path has at
//	least denom steps, each matching a data point j to a query point i
//	with |i−j| ≤ w. So for data position j the matched query point lies
//	inside Env_j — the bounding rect of Q over [j−w, j+w] ∩ [0, n−1] —
//	and each per-step cost is at least the point-to-rect distance
//	d(S_j, Env_j). Three underestimates follow:
//
//	B1 (index): min over partitions p of MinDist(EnvRect_p, MBR_p),
//	   where EnvRect_p = ∪ Env_j over p's positions — the minimum
//	   possible per-step cost times (path length ≥ denom) / denom.
//	B2 (index): Σ_p |p|·MinDist(EnvRect_p, MBR_p) / denom — every data
//	   point is matched at least once, by distinct path steps.
//	LB_Keogh (refinement): Σ_j d(S_j, Env_j) / denom — the same
//	   per-point argument against raw points instead of MBRs.
//
// All three never exceed DTW(Q,S); the index uses max(B1, B2), phase 3
// orders and early-abandons with LB_Keogh, and only survivors pay for
// the exact dynamic program.

// dtwScratch is the pooled workspace of DTW evaluation: the two dynamic
// programming rows, flat copies for the point-slice entry point, the
// per-position query envelope arrays, and the deque used to build them.
// It lives inside searchScratch so the whole DTW query path shares the
// search pool's zero-allocation discipline.
type dtwScratch struct {
	prev, cur []float64 // DP rows, len m+1

	qbuf, sbuf []float64 // flat copies for the []geom.Point entry point

	// Per-position envelopes of the query under the window in force:
	// position i's bounds occupy envLo/envHi[i*d:(i+1)*d] (bounding rect
	// of the query over [i−w, i+w] clamped); sufLo/sufHi[i*d:(i+1)*d]
	// holds the suffix envelope over [i, n−1], consulted for data
	// positions at or past the query's end. envN/envD/envW remember the
	// query shape the arrays were built for, so one build serves every
	// candidate of a query.
	envLo, envHi []float64
	sufLo, sufHi []float64
	envN, envD   int
	envW         int
	envBuilt     bool

	deq []int // monotone-deque index buffer for the sliding min/max

	// rectLo/rectHi accumulate one partition's envelope-rect union.
	rectLo, rectHi []float64
}

// resetEnv invalidates the envelope arrays; each metric query calls it
// once so stale envelopes from a previous query (different points,
// window, or dimensionality) can never be consulted.
func (ds *dtwScratch) resetEnv() { ds.envBuilt = false }

// buildEnvelopes fills the per-position envelope arrays for the query in
// qflat (n points of dimension d) under window w, using one monotone
// deque pass per dimension per bound — O(n·d) total, independent of w.
// For w < 0 every envelope is the full query bounding rect; the arrays
// are still filled so consumers need no special case.
func (ds *dtwScratch) buildEnvelopes(qflat []float64, n, d, w int) {
	if ds.envBuilt && ds.envN == n && ds.envD == d && ds.envW == w {
		return
	}
	ds.envLo = ensureFloats(ds.envLo, n*d)
	ds.envHi = ensureFloats(ds.envHi, n*d)
	ds.sufLo = ensureFloats(ds.sufLo, n*d)
	ds.sufHi = ensureFloats(ds.sufHi, n*d)
	ds.rectLo = ensureFloats(ds.rectLo, d)
	ds.rectHi = ensureFloats(ds.rectHi, d)
	ds.deq = ensureInts(ds.deq, n)

	// Suffix envelopes: one backward scan per dimension.
	for k := 0; k < d; k++ {
		lo := qflat[(n-1)*d+k]
		hi := lo
		ds.sufLo[(n-1)*d+k] = lo
		ds.sufHi[(n-1)*d+k] = hi
		for i := n - 2; i >= 0; i-- {
			v := qflat[i*d+k]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			ds.sufLo[i*d+k] = lo
			ds.sufHi[i*d+k] = hi
		}
	}

	if w < 0 {
		// Unconstrained: every envelope is the full query rect (the
		// suffix envelope at 0).
		for i := 0; i < n; i++ {
			copy(ds.envLo[i*d:(i+1)*d], ds.sufLo[:d])
			copy(ds.envHi[i*d:(i+1)*d], ds.sufHi[:d])
		}
	} else {
		for k := 0; k < d; k++ {
			ds.slideExtremum(qflat, n, d, k, w, ds.envLo, true)
			ds.slideExtremum(qflat, n, d, k, w, ds.envHi, false)
		}
	}
	ds.envN, ds.envD, ds.envW = n, d, w
	ds.envBuilt = true
}

// slideExtremum writes the windowed min (wantMin) or max of dimension k
// into out: out[i*d+k] = extremum of qflat[·*d+k] over [i−w, i+w]
// clamped to [0, n−1]. Both window edges are nondecreasing in i, so a
// single monotone deque gives the classic amortized O(n) scan.
func (ds *dtwScratch) slideExtremum(qflat []float64, n, d, k, w int, out []float64, wantMin bool) {
	deq := ds.deq[:0]
	next := 0 // first index not yet offered to the deque
	for i := 0; i < n; i++ {
		left, right := i-w, i+w
		if left < 0 {
			left = 0
		}
		if right > n-1 {
			right = n - 1
		}
		for ; next <= right; next++ {
			v := qflat[next*d+k]
			for len(deq) > 0 {
				back := qflat[deq[len(deq)-1]*d+k]
				if (wantMin && back >= v) || (!wantMin && back <= v) {
					deq = deq[:len(deq)-1]
					continue
				}
				break
			}
			deq = append(deq, next)
		}
		for len(deq) > 0 && deq[0] < left {
			deq = deq[1:]
		}
		out[i*d+k] = qflat[deq[0]*d+k]
	}
}

// envRow returns the envelope bounds governing data position j: the
// per-position envelope for j inside the query's length, the suffix
// envelope from max(0, j−w) for positions past it (the allowed query
// range there is [j−w, n−1]). buildEnvelopes must have run.
func (ds *dtwScratch) envRow(j int) (lo, hi []float64) {
	n, d, w := ds.envN, ds.envD, ds.envW
	if j < n {
		return ds.envLo[j*d : (j+1)*d], ds.envHi[j*d : (j+1)*d]
	}
	i := 0
	if w >= 0 {
		if i = j - w; i < 0 {
			i = 0
		}
		if i > n-1 {
			i = n - 1
		}
	}
	return ds.sufLo[i*d : (i+1)*d], ds.sufHi[i*d : (i+1)*d]
}

// dtwIndexLB is the envelope-vs-MBR kernel: a lower bound on the
// normalized DTW distance between the query (whose envelopes are built
// in ds) and the stored sequence g, computed from g's partition MBRs
// only — no point data is touched. It returns max(B1, B2) (see the
// package comment above), or +Inf when the window admits no alignment.
func (ds *dtwScratch) dtwIndexLB(g *Segmented) float64 {
	n, d, w := ds.envN, ds.envD, ds.envW
	m := g.Seq.Len()
	if w >= 0 && abs(n-m) > w {
		return math.Inf(1)
	}
	denom := n
	if m > denom {
		denom = m
	}
	minMD := math.Inf(1)
	var weighted float64
	for t := range g.MBRs {
		p := &g.MBRs[t]
		// EnvRect_p: union of the envelopes of p's data positions.
		first := true
		for j := p.Start; j < p.End; j++ {
			lo, hi := ds.envRow(j)
			if first {
				copy(ds.rectLo[:d], lo)
				copy(ds.rectHi[:d], hi)
				first = false
				continue
			}
			for k := 0; k < d; k++ {
				if lo[k] < ds.rectLo[k] {
					ds.rectLo[k] = lo[k]
				}
				if hi[k] > ds.rectHi[k] {
					ds.rectHi[k] = hi[k]
				}
			}
		}
		o := t * d
		md := math.Sqrt(geom.MinDistSqLH(ds.rectLo[:d], ds.rectHi[:d], g.Lo[o:o+d], g.Hi[o:o+d]))
		if md < minMD {
			minMD = md
		}
		weighted += md * float64(p.Count())
	}
	if b2 := weighted / float64(denom); b2 > minMD {
		return b2
	}
	return minMD
}

// lbKeogh is the multidimensional LB_Keogh refinement bound: the summed
// point-to-envelope distance over the stored sequence's raw points,
// normalized by the longer length. It early-abandons against cutoff —
// once the partial sum alone exceeds cutoff·denom the exact value
// provably does too (every term is nonnegative) and +Inf is returned.
// Callers must have ruled out the no-alignment case via dtwIndexLB.
func (ds *dtwScratch) lbKeogh(g *Segmented, cutoff float64) float64 {
	n, d := ds.envN, ds.envD
	m := g.Seq.Len()
	denom := n
	if m > denom {
		denom = m
	}
	limit := cutoff * float64(denom)
	var sum float64
	for j := 0; j < m; j++ {
		lo, hi := ds.envRow(j)
		o := j * d
		sum += math.Sqrt(geom.MinDistPointSqFlat(g.Flat[o:o+d], lo, hi))
		if sum > limit {
			return math.Inf(1)
		}
	}
	return sum / float64(denom)
}

// dtwFlat is the dynamic time warping core over columnar point storage:
// the two-row DP of DTW with identical arithmetic (per-cell distances
// via sqrt(DistSqFlat), same min order), plus early abandoning — after
// each row, if the smallest reachable path cost already exceeds cutoff,
// the final total provably does too (path costs only grow), and +Inf is
// returned. It returns the unnormalized total; +Inf also means the band
// admitted no alignment. prev and cur must have length ≥ m+1.
func dtwFlat(q []float64, n int, s []float64, m, d, window int, cutoff float64, prev, cur []float64) float64 {
	prev = prev[:m+1]
	cur = cur[:m+1]
	for j := range prev {
		prev[j] = math.Inf(1)
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range cur {
			cur[j] = math.Inf(1)
		}
		lo, hi := 1, m
		if window >= 0 {
			if l := i - window; l > lo {
				lo = l
			}
			if h := i + window; h < hi {
				hi = h
			}
		}
		qo := (i - 1) * d
		rowMin := math.Inf(1)
		for j := lo; j <= hi; j++ {
			dd := math.Sqrt(geom.DistSqFlat(q[qo:qo+d], s[(j-1)*d:j*d]))
			best := prev[j] // insertion (advance the query only)
			if prev[j-1] < best {
				best = prev[j-1] // match (advance both)
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion (advance the data only)
			}
			cur[j] = dd + best
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if rowMin > cutoff {
			// Every complete path passes through exactly one cell of this
			// row and costs at least that cell's value.
			return math.Inf(1)
		}
		prev, cur = cur, prev
	}
	return prev[m]
}
