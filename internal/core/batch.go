package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/geom"
	"repro/internal/obs"
)

// SearchBatch answers several range queries with one pass over the
// database. Results and statistics for each query are identical to what
// Search would return for it alone; the batch saves work three ways:
// duplicate queries are computed once, cached queries (SetCache) are
// answered without touching the index, and index probes for identical
// query MBRs are merged across the remaining queries, so the R*-tree is
// descended once per distinct rectangle instead of once per query. The
// whole batch runs under a single read lock, so every answer reflects
// the same corpus snapshot.
func (db *Database) SearchBatch(qs []*Sequence, eps float64) ([][]Match, []SearchStats, error) {
	return db.SearchBatchCtx(context.Background(), qs, eps)
}

// batchQuery is the per-unique-query state threaded through the batch
// phases.
type batchQuery struct {
	q     *Sequence
	ref   cacheRef
	qseg  *Segmented
	cand  map[uint32]bool
	st    SearchStats
	out   []Match
	done  bool // answered from cache
	first int  // index in qs of the first occurrence (for error messages)
}

// SearchBatchCtx is SearchBatch honoring a context deadline or
// cancellation with the same granularity as SearchCtx: between phases,
// per index probe, and every cancelCheckEvery phase-3 candidates. One
// query failing validation fails the whole batch before any work runs —
// a batch is all-or-nothing, so callers never have to pair partial
// outputs with their inputs.
func (db *Database) SearchBatchCtx(ctx context.Context, qs []*Sequence, eps float64) ([][]Match, []SearchStats, error) {
	if eps < 0 {
		return nil, nil, fmt.Errorf("core: negative threshold %g", eps)
	}
	if len(qs) == 0 {
		return nil, nil, nil
	}
	for i, q := range qs {
		if q == nil {
			return nil, nil, fmt.Errorf("core: batch query %d is nil", i)
		}
		if err := q.Validate(); err != nil {
			return nil, nil, fmt.Errorf("core: batch query %d: %w", i, err)
		}
		if q.Dim() != db.opts.Dim {
			return nil, nil, fmt.Errorf("core: batch query %d dim %d, database dim %d: %w",
				i, q.Dim(), db.opts.Dim, geom.ErrDimensionMismatch)
		}
	}

	tr := obs.FromContext(ctx)
	t0 := time.Now()

	// Dedup by fingerprint: identical queries collapse to one slot. The
	// fingerprint doubles as the cache key, so the write-sequence
	// snapshot below covers exactly the queries that will be computed.
	c := db.qcache.Load()
	slot := make(map[cache.Key]int, len(qs)) // fingerprint → index into uniq
	assign := make([]int, len(qs))           // qs index → uniq index
	uniq := make([]*batchQuery, 0, len(qs))
	for i, q := range qs {
		key := queryFingerprint(fpKindRange, MetricD{}, q, eps, db.opts.Partition, 0)
		j, ok := slot[key]
		if !ok {
			j = len(uniq)
			slot[key] = j
			bq := &batchQuery{q: q, first: i}
			if c != nil {
				bq.ref = cacheRef{
					c:      c,
					key:    key,
					seq:    c.Seq(),
					region: cache.Region{Rect: geom.BoundingRect(q.Points), Radius: eps},
				}
			}
			uniq = append(uniq, bq)
		}
		assign[i] = j
	}

	// Cache pass: answer what we can before taking the lock.
	pending := 0
	for _, bq := range uniq {
		if ms, cst, ok := bq.ref.getRange(); ok {
			bq.out, bq.st, bq.done = ms, cst, true
			continue
		}
		pending++
	}

	if pending > 0 {
		if err := db.searchBatchLocked(ctx, uniq, eps); err != nil {
			return nil, nil, err
		}
	}
	if tr != nil {
		tr.RecordSpan(obs.SpanFromContext(ctx), "batch", time.Since(t0),
			obs.Int("queries", len(qs)),
			obs.Int("unique", len(uniq)),
			obs.Int("cache_hits", len(uniq)-pending))
	}

	outs := make([][]Match, len(qs))
	stats := make([]SearchStats, len(qs))
	seen := make([]bool, len(uniq))
	for i, j := range assign {
		bq := uniq[j]
		outs[i] = bq.out
		stats[i] = bq.st
		if seen[j] {
			// A duplicate is served without compute, like a cache hit;
			// the stats still describe the run that produced the answer.
			stats[i].CacheHit = true
		}
		seen[j] = true
	}
	return outs, stats, nil
}

// searchBatchLocked computes every not-yet-answered query in uniq under
// one read lock, merging phase-2 probes for identical query MBRs.
func (db *Database) searchBatchLocked(ctx context.Context, uniq []*batchQuery, eps float64) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.pg == nil {
		return errors.New("core: database closed")
	}
	if err := searchCanceled(ctx); err != nil {
		return err
	}

	// Phase 1, per query: segmentation is query-local, nothing to merge.
	for _, bq := range uniq {
		if bq.done {
			continue
		}
		t0 := time.Now()
		qseg, err := NewSegmented(bq.q, db.opts.Partition)
		if err != nil {
			return fmt.Errorf("core: batch query %d: %w", bq.first, err)
		}
		bq.qseg = qseg
		bq.st.TotalSequences = db.live
		bq.st.QueryMBRs = len(qseg.MBRs)
		bq.st.Phase1 = time.Since(t0)
		bq.cand = make(map[uint32]bool)
	}

	// Phase 2, merged: group identical query MBRs across the batch and
	// descend the index once per distinct rectangle. Each owner's stats
	// are charged the probe's full cost — the answer each query receives
	// is exactly what a solo search would have paid for, so reuse shows
	// up in the batch's wall clock, not as understated per-query stats.
	type probe struct {
		rect   geom.Rect
		owners []*batchQuery
	}
	probeAt := make(map[cache.Key]int)
	var probes []probe
	for _, bq := range uniq {
		if bq.done {
			continue
		}
		for _, qm := range bq.qseg.MBRs {
			f := newFP()
			for _, v := range qm.Rect.L {
				f.float(v)
			}
			for _, v := range qm.Rect.H {
				f.float(v)
			}
			k := f.key()
			j, ok := probeAt[k]
			if !ok {
				j = len(probes)
				probeAt[k] = j
				probes = append(probes, probe{rect: qm.Rect})
			}
			probes[j].owners = append(probes[j].owners, bq)
		}
	}
	sc := getScratch()
	defer putScratch(sc)
	for _, pr := range probes {
		if err := searchCanceled(ctx); err != nil {
			return err
		}
		t1 := time.Now()
		refs, err := db.tree.AppendWithinDist(pr.rect, eps, sc.refs[:0])
		if err != nil {
			return err
		}
		sc.refs = refs
		entries := len(refs)
		hits := appendSeqIDs(sc.ids[:0], refs)
		sc.ids = hits
		d := time.Since(t1)
		for _, bq := range pr.owners {
			bq.st.IndexEntriesHit += entries
			bq.st.Phase2 += d
			for _, id := range hits {
				bq.cand[id] = true
			}
		}
	}

	// Phase 3, per query: refinement depends on the query's own
	// segmentation, so there is nothing to share beyond the corpus pages
	// already warmed by neighbors in the batch.
	checked := 0
	for _, bq := range uniq {
		if bq.done {
			continue
		}
		t2 := time.Now()
		bq.st.CandidatesDmbr = len(bq.cand)
		ids := make([]uint32, 0, len(bq.cand))
		for id := range bq.cand {
			ids = append(ids, id)
		}
		sortUint32s(ids)
		for _, id := range ids {
			if checked%cancelCheckEvery == 0 {
				if err := searchCanceled(ctx); err != nil {
					return err
				}
			}
			checked++
			m, hit, evals, qpruned := phase3FlatQ(bq.qseg.MBRs, &sc.p3, db.seqs[id], bq.q.Len(), eps, db.opts.QuantizedMBR)
			m.SeqID = id
			bq.st.DnormEvals += evals
			bq.st.QuantPruned += qpruned
			if hit {
				bq.out = append(bq.out, m)
			}
		}
		bq.st.MatchesDnorm = len(bq.out)
		bq.st.Phase3 = time.Since(t2)
		bq.st.CPUTime = bq.st.Total()
		db.met.RecordSearch(bq.st)
		bq.ref.putRange(bq.out, bq.st)
		bq.done = true
	}
	return nil
}
