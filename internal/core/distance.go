package core

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Dmean returns the mean Euclidean point distance between two equal-length
// point slices (Definition 2):
//
//	Dmean(S1,S2) = (1/k) Σ_i d(S1[i], S2[i])
//
// It panics if the lengths differ; callers align windows before calling.
func Dmean(a, b []geom.Point) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("core: Dmean on lengths %d and %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return 0
	}
	var sum float64
	for i := range a {
		sum += math.Sqrt(a[i].Dist2(b[i]))
	}
	return sum / float64(len(a))
}

// D returns the sequence distance D(S1,S2) (Definitions 2 and 3): the mean
// distance when the sequences have equal length, otherwise the minimum
// mean distance over every alignment of the shorter sequence slid along
// the longer one:
//
//	D(S1,S2) = min_{j=1..m-k+1} Dmean(S1[1:k], S2[j:j+k-1])   (k ≤ m)
//
// The metric is symmetric in which argument is shorter.
func D(s1, s2 *Sequence) float64 {
	return DPoints(s1.Points, s2.Points)
}

// DPoints is D on raw point slices.
func DPoints(a, b []geom.Point) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.Inf(1)
	}
	short, long := a, b
	if len(short) > len(long) {
		short, long = long, short
	}
	k := len(short)
	best := math.Inf(1)
	for j := 0; j+k <= len(long); j++ {
		if d := Dmean(short, long[j:j+k]); d < best {
			best = d
		}
	}
	return best
}

// BestAlignment returns the offset j (0-based, into the longer sequence)
// minimizing the mean distance, along with that distance. Useful for
// presenting where a query matched.
func BestAlignment(a, b []geom.Point) (offset int, dist float64) {
	if len(a) == 0 || len(b) == 0 {
		return 0, math.Inf(1)
	}
	short, long := a, b
	if len(short) > len(long) {
		short, long = long, short
	}
	k := len(short)
	dist = math.Inf(1)
	for j := 0; j+k <= len(long); j++ {
		if d := Dmean(short, long[j:j+k]); d < dist {
			dist, offset = d, j
		}
	}
	return offset, dist
}

// bestAlignFlat is BestAlignment over columnar point storage (point i of
// a at a[i*d:(i+1)*d]) with early abandoning: while summing an
// alignment's per-point distances, the scan stops as soon as the partial
// mean already exceeds cutoff. Because every per-point term is
// nonnegative, a float64 sum is monotone nondecreasing under further
// additions and division by the positive count preserves order, so an
// abandoned alignment provably has full mean distance > cutoff — any
// alignment with mean ≤ cutoff is summed to completion with exactly
// BestAlignment's arithmetic (same term order, one division). Callers
// that only act on results ≤ cutoff therefore see identical outcomes;
// with cutoff = +Inf the function is BestAlignment verbatim. The returned
// dist is the minimum over non-abandoned alignments (+Inf if all were
// abandoned), which is the true minimum whenever that minimum is ≤ cutoff.
func bestAlignFlat(a, b []float64, d int, cutoff float64) (offset int, dist float64) {
	if len(a) == 0 || len(b) == 0 {
		return 0, math.Inf(1)
	}
	short, long := a, b
	if len(short) > len(long) {
		short, long = long, short
	}
	k := len(short) / d
	nlong := len(long) / d
	fk := float64(k)
	dist = math.Inf(1)
	for j := 0; j+k <= nlong; j++ {
		base := j * d
		var sum float64
		abandoned := false
		for i := 0; i < k; i++ {
			o := i * d
			sum += math.Sqrt(geom.DistSqFlat(short[o:o+d], long[base+o:base+o+d]))
			if sum/fk > cutoff {
				abandoned = true
				break
			}
		}
		if abandoned {
			continue
		}
		if dd := sum / fk; dd < dist {
			dist, offset = dd, j
		}
	}
	return offset, dist
}

// MinPointPairDist returns the minimum Euclidean distance between any pair
// of points drawn one from each slice — the δ of the paper's Lemma 1
// proof. Exported within the package for tests of Observation 1.
func MinPointPairDist(a, b []geom.Point) float64 {
	best := math.Inf(1)
	for _, p := range a {
		for _, q := range b {
			if d2 := p.Dist2(q); d2 < best {
				best = d2
			}
		}
	}
	return math.Sqrt(best)
}
