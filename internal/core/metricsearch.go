package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
)

// Metric search: range and kNN queries whose result sets are defined by
// an exact metric distance (D or DTW) instead of the Dnorm filter bound.
// Each metric pairs its exact distance with an index-level lower bound —
// MetricD rides the stock Dmbr/Dnorm pipeline (Lemmas 1–3), MetricDTW
// the Sakoe–Chiba envelope bounds of dtwlb.go — so both are served
// through the R*-tree with no false dismissals: the indexed result is
// definitionally identical to an exhaustive scan under the same metric
// (see SequentialSearchMetric and the equivalence tests).

// SearchMetric returns every stored sequence whose exact metric distance
// to q is at most eps, ordered by ascending sequence id. Under MetricD
// the result is the Dnorm-filtered candidate set refined to exact
// distances; under MetricDTW candidates are pruned with the envelope
// index bound and LB_Keogh before the exact dynamic program. A nil
// metric means MetricD.
func (db *Database) SearchMetric(q *Sequence, eps float64, m Metric) ([]MetricMatch, SearchStats, error) {
	return db.SearchMetricCtx(context.Background(), q, eps, m)
}

// SearchMetricCtx is SearchMetric honoring a context deadline or
// cancellation, with SearchCtx's check granularity and error contract.
func (db *Database) SearchMetricCtx(ctx context.Context, q *Sequence, eps float64, m Metric) ([]MetricMatch, SearchStats, error) {
	var st SearchStats
	if m == nil {
		m = MetricD{}
	}
	if err := q.Validate(); err != nil {
		return nil, st, err
	}
	if q.Dim() != db.opts.Dim {
		return nil, st, fmt.Errorf("core: query dim %d, database dim %d: %w",
			q.Dim(), db.opts.Dim, geom.ErrDimensionMismatch)
	}
	if eps < 0 {
		return nil, st, fmt.Errorf("core: negative threshold %g", eps)
	}
	ref := db.metricRangeRef(q, eps, m)
	tr := obs.FromContext(ctx)
	if ms, cst, ok := ref.getMetricRange(); ok {
		if tr != nil {
			tr.RecordSpan(obs.SpanFromContext(ctx), "cache-hit", 0, obs.Str("tier", "result"))
		}
		return ms, cst, nil
	}

	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.pg == nil {
		return nil, st, errors.New("core: database closed")
	}
	if err := searchCanceled(ctx); err != nil {
		return nil, st, err
	}
	st.TotalSequences = db.live

	sc := getScratch()
	defer putScratch(sc)
	sc.fillQueryFlat(q)

	var out []MetricMatch
	var err error
	switch mt := m.(type) {
	case MetricDTW:
		out, err = db.dtwRange(ctx, q, eps, mt, sc, &st, tr)
	default:
		out, err = db.dRange(ctx, q, eps, sc, &st, tr)
	}
	if err != nil {
		return nil, st, err
	}
	st.CPUTime = st.Total()
	db.met.RecordSearch(st)
	if _, ok := m.(MetricDTW); ok {
		db.met.RecordDTW(false, st.CandidatesDmbr, st.DTWEnvPruned, st.DTWKeoghPruned, st.DTWEvals)
	}
	ref.putMetricRange(out, st)
	return out, st, nil
}

// dRange is the MetricD range body: the stock three phases, then each
// Dnorm survivor refined to its exact distance D with the flat alignment
// kernel (cutoff +Inf so every distance is exact, bit-identical to the
// scan path). Dnorm ≤ D (Lemma 3) guarantees no sequence with D ≤ ε is
// missing from the phase-3 survivors.
func (db *Database) dRange(ctx context.Context, q *Sequence, eps float64, sc *searchScratch, st *SearchStats, tr *obs.Trace) ([]MetricMatch, error) {
	matches, err := db.rangePhases(ctx, q, eps, sc, st, tr)
	if err != nil {
		return nil, err
	}
	t3 := time.Now()
	dim := q.Dim()
	var out []MetricMatch
	for ci := range matches {
		if ci%cancelCheckEvery == 0 {
			if err := searchCanceled(ctx); err != nil {
				return nil, err
			}
		}
		g := db.seqs[matches[ci].SeqID]
		dist := sc.distanceSeq(MetricD{}, g, dim, math.Inf(1))
		if dist <= eps {
			out = append(out, MetricMatch{SeqID: matches[ci].SeqID, Seq: g.Seq, Dist: dist})
		}
	}
	exact := time.Since(t3)
	st.Phase3 += exact
	if tr != nil {
		tr.RecordSpan(obs.SpanFromContext(ctx), "exact-refine", exact,
			obs.Int("candidates_in", len(matches)),
			obs.Int("matches", len(out)),
			obs.Float("pruned_frac", prunedFrac(len(matches), len(out))))
	}
	return out, nil
}

// dtwRange is the MetricDTW range body. Phase 1 builds the query's
// Sakoe–Chiba envelopes; phase 2 probes the R*-tree with the full query
// bounding rect at ε — valid because every envelope rect is contained in
// the query rect, so MinDist(qRect, MBR) ≤ B1 ≤ DTW and no sequence
// within ε can be missed; phase 3 runs the pruning ladder per candidate:
// the envelope-vs-MBR index bound, then LB_Keogh over raw points, then
// the early-abandoning exact dynamic program. Every bound underestimates
// the normalized DTW distance (see dtwlb.go), so each dismissal is
// provably correct and the survivors are exactly the ε-ball.
func (db *Database) dtwRange(ctx context.Context, q *Sequence, eps float64, mt MetricDTW, sc *searchScratch, st *SearchStats, tr *obs.Trace) ([]MetricMatch, error) {
	d := q.Dim()
	n := q.Len()
	ds := &sc.dtw

	// Phase 1: envelope construction (the DTW analogue of partitioning —
	// the query-side structure all pruning reads).
	t0 := time.Now()
	ds.resetEnv()
	ds.buildEnvelopes(sc.qflat, n, d, mt.Window)
	st.QueryMBRs = 1
	st.Phase1 = time.Since(t0)
	if tr != nil {
		tr.RecordSpan(obs.SpanFromContext(ctx), "envelope", st.Phase1,
			obs.Int("positions", n), obs.Int("window", mt.Window))
	}

	// Phase 2: coarse index filter with the full query bounding rect (the
	// suffix envelope at position 0).
	t1 := time.Now()
	qrect := geom.Rect{L: ds.sufLo[:d], H: ds.sufHi[:d]}
	sc.refs = sc.refs[:0]
	var err error
	sc.refs, err = db.tree.AppendWithinDist(qrect, eps, sc.refs)
	if err != nil {
		return nil, err
	}
	st.IndexEntriesHit = len(sc.refs)
	sc.ids = appendSeqIDs(sc.ids[:0], sc.refs)
	ids := sortDedupUint32(sc.ids)
	st.CandidatesDmbr = len(ids)
	st.Phase2 = time.Since(t1)
	if tr != nil {
		tr.RecordSpan(obs.SpanFromContext(ctx), "filter", st.Phase2,
			obs.Int("candidates_in", st.TotalSequences),
			obs.Int("index_entries", st.IndexEntriesHit),
			obs.Int("candidates_out", st.CandidatesDmbr),
			obs.Float("pruned_frac", prunedFrac(st.TotalSequences, st.CandidatesDmbr)))
	}

	// Phase 3: the pruning ladder, cheapest bound first.
	t2 := time.Now()
	var out []MetricMatch
	for ci, id := range ids {
		if ci%cancelCheckEvery == 0 {
			if err := searchCanceled(ctx); err != nil {
				return nil, err
			}
		}
		g := db.seqs[id]
		if ds.dtwIndexLB(g) > eps {
			st.DTWEnvPruned++
			continue
		}
		if ds.lbKeogh(g, eps) > eps {
			st.DTWKeoghPruned++
			continue
		}
		st.DTWEvals++
		dist := sc.distanceSeq(mt, g, d, eps)
		if dist <= eps {
			out = append(out, MetricMatch{SeqID: id, Seq: g.Seq, Dist: dist})
		}
	}
	st.MatchesDnorm = len(out)
	st.Phase3 = time.Since(t2)
	if tr != nil {
		tr.RecordSpan(obs.SpanFromContext(ctx), "dtw-refine", st.Phase3,
			obs.Int("candidates_in", st.CandidatesDmbr),
			obs.Int("env_pruned", st.DTWEnvPruned),
			obs.Int("keogh_pruned", st.DTWKeoghPruned),
			obs.Int("dtw_evals", st.DTWEvals),
			obs.Int("matches", len(out)),
			obs.Float("pruned_frac", prunedFrac(st.CandidatesDmbr, st.DTWEvals)))
	}
	return out, nil
}

// SearchKNNMetric returns the k stored sequences nearest to q under the
// metric, in nondecreasing distance order. Under MetricD this is exactly
// SearchKNN; under MetricDTW candidates are ranked by the envelope index
// bound and refined best-first with LB_Keogh and early-abandoning exact
// dynamic programs, stopping when the next lower bound exceeds the k-th
// best exact distance. Sequences the window cannot align with the query
// are never results. A nil metric means MetricD.
func (db *Database) SearchKNNMetric(q *Sequence, k int, m Metric) ([]KNNResult, error) {
	return db.SearchKNNMetricBoundedCtx(context.Background(), q, k, math.Inf(1), m)
}

// SearchKNNMetricCtx is SearchKNNMetric honoring a context deadline or
// cancellation.
func (db *Database) SearchKNNMetricCtx(ctx context.Context, q *Sequence, k int, m Metric) ([]KNNResult, error) {
	return db.SearchKNNMetricBoundedCtx(ctx, q, k, math.Inf(1), m)
}

// SearchKNNMetricBoundedCtx is SearchKNNMetricCtx restricted to
// sequences with metric distance ≤ bound, with SearchKNNBounded's
// contract: a scatter-gather caller already holding k results at
// distance w passes bound=w so later shards prune with it, and no
// sequence it skips can re-enter the global top k. Only unbounded
// queries are cached. For DTW results the Offset field is always 0 —
// warping has no single alignment offset.
func (db *Database) SearchKNNMetricBoundedCtx(ctx context.Context, q *Sequence, k int, bound float64, m Metric) ([]KNNResult, error) {
	if m == nil {
		m = MetricD{}
	}
	mt, ok := m.(MetricDTW)
	if !ok {
		return db.SearchKNNBoundedCtx(ctx, q, k, bound)
	}
	t0 := time.Now()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.Dim() != db.opts.Dim {
		return nil, fmt.Errorf("core: query dim %d, database dim %d: %w",
			q.Dim(), db.opts.Dim, geom.ErrDimensionMismatch)
	}
	if k <= 0 {
		return nil, nil
	}
	var ref cacheRef
	tr := obs.FromContext(ctx)
	if math.IsInf(bound, 1) {
		ref = db.metricKNNRef(q, k, m)
		if rs, ok := ref.getKNN(); ok {
			if tr != nil {
				tr.RecordSpan(obs.SpanFromContext(ctx), "cache-hit", 0, obs.Str("tier", "result"))
			}
			return rs, nil
		}
	}

	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.pg == nil {
		return nil, errors.New("core: database closed")
	}

	sc := getScratch()
	defer putScratch(sc)
	sc.fillQueryFlat(q)
	d := q.Dim()
	ds := &sc.dtw
	ds.resetEnv()
	ds.buildEnvelopes(sc.qflat, q.Len(), d, mt.Window)

	// Envelope index bound for every live sequence; sequences the window
	// cannot align (length difference beyond it) are dismissed here.
	sc.heap = sc.heap[:0]
	envPruned := 0
	for id, g := range db.seqs {
		if g == nil {
			continue // removed
		}
		if id%cancelCheckEvery == 0 {
			if err := searchCanceled(ctx); err != nil {
				return nil, err
			}
		}
		lb := ds.dtwIndexLB(g)
		if math.IsInf(lb, 1) {
			envPruned++
			continue
		}
		sc.heap = pushCand(sc.heap, knnCand{id: uint32(id), bound: lb})
	}

	// Refine in bound order; LB_Keogh guards each exact dynamic program.
	candidates := len(sc.heap)
	keoghPruned := 0
	refined := 0
	var out []KNNResult
	worst := bound
	for len(sc.heap) > 0 {
		if refined%cancelCheckEvery == 0 {
			if err := searchCanceled(ctx); err != nil {
				return nil, err
			}
		}
		var c knnCand
		c, sc.heap = popCand(sc.heap)
		if c.bound > worst {
			envPruned++ // this candidate, plus the whole remaining heap below
			break
		}
		g := db.seqs[c.id]
		if ds.lbKeogh(g, worst) > worst {
			keoghPruned++
			continue
		}
		dist := sc.distanceSeq(mt, g, d, worst)
		refined++
		if dist > bound {
			continue
		}
		out = insertKNN(out, KNNResult{SeqID: c.id, Seq: g.Seq, Dist: dist}, k)
		if len(out) == k && out[len(out)-1].Dist < worst {
			worst = out[len(out)-1].Dist
		}
	}
	envPruned += len(sc.heap) // dismissed by the index bound at the break
	took := time.Since(t0)
	if tr != nil {
		tr.RecordSpan(obs.SpanFromContext(ctx), "dtw-knn", took,
			obs.Int("k", k),
			obs.Int("candidates", candidates),
			obs.Int("keogh_pruned", keoghPruned),
			obs.Int("refined", refined),
			obs.Float("pruned_frac", prunedFrac(candidates, refined)))
	}
	db.met.RecordKNN(took, refined, candidates-refined)
	db.met.RecordDTW(true, candidates, envPruned, keoghPruned, refined)
	ref.putKNN(out, k, took)
	return out, nil
}

// SequentialSearchMetric is the exhaustive baseline for metric range
// search: every live sequence's exact metric distance, no index, no
// lower bounds, no early abandoning. It computes each distance with the
// same kernels and arithmetic order as the indexed path, so the indexed
// result must be byte-identical — the no-false-dismissal property is
// directly testable against it.
func (db *Database) SequentialSearchMetric(q *Sequence, eps float64, m Metric) ([]MetricMatch, error) {
	if m == nil {
		m = MetricD{}
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.Dim() != db.opts.Dim {
		return nil, fmt.Errorf("core: query dim %d, database dim %d: %w",
			q.Dim(), db.opts.Dim, geom.ErrDimensionMismatch)
	}
	if eps < 0 {
		return nil, fmt.Errorf("core: negative threshold %g", eps)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.pg == nil {
		return nil, errors.New("core: database closed")
	}
	sc := getScratch()
	defer putScratch(sc)
	sc.fillQueryFlat(q)
	dim := q.Dim()
	var out []MetricMatch
	for id, g := range db.seqs {
		if g == nil {
			continue // removed
		}
		dist := sc.distanceSeq(m, g, dim, math.Inf(1))
		if dist <= eps {
			out = append(out, MetricMatch{SeqID: uint32(id), Seq: g.Seq, Dist: dist})
		}
	}
	return out, nil
}
