package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// buildSegmented constructs a Segmented by hand from (rect, count) specs,
// generating the matching points at each rect's corners so partitions stay
// consistent.
func buildSegmented(specs []struct {
	rect  geom.Rect
	count int
}) *Segmented {
	var pts []geom.Point
	var mbrs []MBRInfo
	start := 0
	for _, sp := range specs {
		for i := 0; i < sp.count; i++ {
			if i%2 == 0 {
				pts = append(pts, sp.rect.L.Clone())
			} else {
				pts = append(pts, sp.rect.H.Clone())
			}
		}
		mbrs = append(mbrs, MBRInfo{Rect: sp.rect.Clone(), Start: start, End: start + sp.count})
		start += sp.count
	}
	return &Segmented{Seq: &Sequence{Points: pts}, MBRs: mbrs}
}

func rect1d(lo, hi float64) geom.Rect {
	return geom.MustRect(geom.Point{lo}, geom.Point{hi})
}

// TestDnormExample2 reproduces the paper's worked Example 2 (Figure 3):
// four data MBRs with counts 4,6,5,5, distances D2 < D1 < D3 < D4 to the
// query MBR, and a 12-point query MBR. The expected answer is
// (6·D2 + 4·D1 + 2·D3) / 12.
func TestDnormExample2(t *testing.T) {
	q := rect1d(0.5, 0.6)
	g := buildSegmented([]struct {
		rect  geom.Rect
		count int
	}{
		{rect1d(0.30, 0.35), 4}, // D1 = 0.15
		{rect1d(0.45, 0.48), 6}, // D2 = 0.02
		{rect1d(0.80, 0.85), 5}, // D3 = 0.20
		{rect1d(0.95, 1.00), 5}, // D4 = 0.35
	})
	const (
		d1, d2, d3 = 0.15, 0.02, 0.20
		qCount     = 12
	)
	res := Dnorm(q, qCount, g, 1) // mbr2 in the paper's 1-based numbering
	want := (6*d2 + 4*d1 + 2*d3) / qCount
	if !almostEqual(res.Dist, want) {
		t.Fatalf("Dnorm = %g, want %g", res.Dist, want)
	}
	// The involved window spans mbr1..mbr3 (indices 0..2): all of the
	// first two MBRs plus the first 2 points of the third (Example 3).
	if res.K != 0 || res.L != 2 {
		t.Errorf("window = [%d,%d], want [0,2]", res.K, res.L)
	}
	if res.PStart != 0 || res.PEnd != 12 {
		t.Errorf("points = [%d,%d), want [0,12): 4+6 full + first 2 of mbr3", res.PStart, res.PEnd)
	}
}

func TestDnormTargetBigEnoughIsPlainDmbr(t *testing.T) {
	q := rect1d(0.5, 0.6)
	g := buildSegmented([]struct {
		rect  geom.Rect
		count int
	}{
		{rect1d(0.30, 0.35), 4},
		{rect1d(0.45, 0.48), 20}, // ≥ qCount: no neighbors absorbed
		{rect1d(0.80, 0.85), 5},
	})
	res := Dnorm(q, 12, g, 1)
	if !almostEqual(res.Dist, 0.02) {
		t.Errorf("Dist = %g, want plain Dmbr 0.02", res.Dist)
	}
	if res.K != 1 || res.L != 1 {
		t.Errorf("window = [%d,%d], want [1,1]", res.K, res.L)
	}
	if res.PStart != 4 || res.PEnd != 24 {
		t.Errorf("points = [%d,%d), want the whole target MBR [4,24)", res.PStart, res.PEnd)
	}
}

func TestDnormSequenceShorterThanQueryMBR(t *testing.T) {
	q := rect1d(0.5, 0.6)
	g := buildSegmented([]struct {
		rect  geom.Rect
		count int
	}{
		{rect1d(0.30, 0.35), 3}, // D = 0.15
		{rect1d(0.45, 0.48), 3}, // D = 0.02
	})
	res := Dnorm(q, 100, g, 0)
	want := (3*0.15 + 3*0.02) / 6 // weighted mean over actual points
	if !almostEqual(res.Dist, want) {
		t.Errorf("Dist = %g, want %g", res.Dist, want)
	}
	if res.PStart != 0 || res.PEnd != 6 {
		t.Errorf("points = [%d,%d), want whole sequence", res.PStart, res.PEnd)
	}
}

func TestDnormAtSequenceEdges(t *testing.T) {
	// Target at the leftmost MBR: only LD (rightward) windows exist.
	q := rect1d(0.5, 0.6)
	g := buildSegmented([]struct {
		rect  geom.Rect
		count int
	}{
		{rect1d(0.40, 0.45), 4}, // D = 0.05
		{rect1d(0.70, 0.75), 4}, // D = 0.10
		{rect1d(0.90, 0.95), 4}, // D = 0.30
	})
	res := Dnorm(q, 6, g, 0)
	want := (4*0.05 + 2*0.10) / 6
	if !almostEqual(res.Dist, want) {
		t.Errorf("left edge Dist = %g, want %g", res.Dist, want)
	}
	// Target at the rightmost MBR: only RD (leftward) windows exist.
	res = Dnorm(q, 6, g, 2)
	want = (4*0.30 + 2*0.10) / 6
	if !almostEqual(res.Dist, want) {
		t.Errorf("right edge Dist = %g, want %g", res.Dist, want)
	}
	if res.PEnd != 12 || res.PStart != 6 {
		t.Errorf("right edge points = [%d,%d), want [6,12)", res.PStart, res.PEnd)
	}
}

func TestDnormIsConvexCombinationOfDmbrs(t *testing.T) {
	// Dnorm must lie between the min and max Dmbr of the sequence's MBRs,
	// for every target index — it is a weighted average by construction.
	rng := rand.New(rand.NewSource(20))
	cfg := DefaultPartitionConfig()
	for trial := 0; trial < 40; trial++ {
		s := randWalkSeq(rng, 20+rng.Intn(200), 3)
		g, err := NewSegmented(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		q := randWalkSeq(rng, 5+rng.Intn(50), 3)
		qr := geom.BoundingRect(q.Points)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, m := range g.MBRs {
			d := qr.MinDist(m.Rect)
			lo = math.Min(lo, d)
			hi = math.Max(hi, d)
		}
		calc := newDnormCalc(qr, q.Len(), g)
		for j := range g.MBRs {
			d := calc.dnorm(j).Dist
			if d < lo-1e-9 || d > hi+1e-9 {
				t.Fatalf("Dnorm(%d) = %g outside [%g,%g]", j, d, lo, hi)
			}
		}
	}
}

// TestLemma3Sandwich verifies the paper's core correctness result on random
// data: min Dmbr ≤ min Dnorm ≤ D(Q,S) for every query/data pair, which is
// exactly what makes the two-phase pruning free of false dismissals.
func TestLemma3Sandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cfg := DefaultPartitionConfig()
	for trial := 0; trial < 80; trial++ {
		var s, q *Sequence
		if trial%3 == 0 {
			s, q = randSeq(rng, 10+rng.Intn(150), 3), randSeq(rng, 5+rng.Intn(80), 3)
		} else {
			s, q = randWalkSeq(rng, 10+rng.Intn(150), 3), randWalkSeq(rng, 5+rng.Intn(80), 3)
		}
		gs, err := NewSegmented(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		gq, err := NewSegmented(q, cfg)
		if err != nil {
			t.Fatal(err)
		}
		minDmbr, minDnorm := math.Inf(1), math.Inf(1)
		for _, qm := range gq.MBRs {
			calc := newDnormCalc(qm.Rect, qm.Count(), gs)
			for j, sm := range gs.MBRs {
				minDmbr = math.Min(minDmbr, qm.Rect.MinDist(sm.Rect))
				minDnorm = math.Min(minDnorm, calc.dnorm(j).Dist)
			}
		}
		dQS := D(q, s)
		if minDmbr > minDnorm+1e-9 {
			t.Fatalf("trial %d: min Dmbr %g > min Dnorm %g", trial, minDmbr, minDnorm)
		}
		if minDnorm > dQS+1e-9 {
			t.Fatalf("trial %d: min Dnorm %g > D(Q,S) %g (false dismissal possible!)",
				trial, minDnorm, dQS)
		}
	}
}

// TestLemma1LowerBound verifies Lemma 1 directly: the smallest MBR distance
// between query and data partitions lower-bounds the sequence distance.
func TestLemma1LowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	cfg := DefaultPartitionConfig()
	for trial := 0; trial < 80; trial++ {
		s := randWalkSeq(rng, 10+rng.Intn(120), 3)
		q := randWalkSeq(rng, 5+rng.Intn(60), 3)
		gs, _ := NewSegmented(s, cfg)
		gq, _ := NewSegmented(q, cfg)
		minDmbr := math.Inf(1)
		for _, qm := range gq.MBRs {
			for _, sm := range gs.MBRs {
				minDmbr = math.Min(minDmbr, qm.Rect.MinDist(sm.Rect))
			}
		}
		if dQS := D(q, s); minDmbr > dQS+1e-9 {
			t.Fatalf("trial %d: min Dmbr %g > D %g", trial, minDmbr, dQS)
		}
	}
}

func TestMinDnormMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cfg := DefaultPartitionConfig()
	s := randWalkSeq(rng, 150, 3)
	g, _ := NewSegmented(s, cfg)
	q := randWalkSeq(rng, 40, 3)
	qr := geom.BoundingRect(q.Points)
	want := math.Inf(1)
	for j := range g.MBRs {
		want = math.Min(want, Dnorm(qr, q.Len(), g, j).Dist)
	}
	if got := MinDnorm(qr, q.Len(), g); !almostEqual(got, want) {
		t.Errorf("MinDnorm = %g, want %g", got, want)
	}
}

// TestSweepMinEqualsExhaustiveMin cross-validates the O(r) window sweep
// used by Search against the per-target Definition 5 evaluation: their
// minima must agree on arbitrary data.
func TestSweepMinEqualsExhaustiveMin(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	cfg := PartitionConfig{QueryExtent: 0.3, MaxPoints: 12}
	for trial := 0; trial < 60; trial++ {
		var s *Sequence
		if trial%2 == 0 {
			s = randWalkSeq(rng, 5+rng.Intn(200), 3)
		} else {
			s = randSeq(rng, 5+rng.Intn(200), 3)
		}
		g, err := NewSegmented(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		qCount := 1 + rng.Intn(60)
		qr := geom.BoundingRect(randWalkSeq(rng, 8, 3).Points)
		calc := newDnormCalc(qr, qCount, g)
		exhaustive := math.Inf(1)
		for j := range g.MBRs {
			exhaustive = math.Min(exhaustive, calc.dnorm(j).Dist)
		}
		swept := calc.sweep(math.Inf(-1), nil)
		if !almostEqual(swept, exhaustive) {
			t.Fatalf("trial %d (qCount=%d, %d MBRs): sweep %g != exhaustive %g",
				trial, qCount, len(g.MBRs), swept, exhaustive)
		}
	}
}

// TestSweepEmitsEveryQualifyingTarget checks that for any target j with
// Dnorm(j) ≤ eps, the sweep emits at least one window covering it — the
// property phase 3's hit detection relies on.
func TestSweepEmitsEveryQualifyingTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	cfg := PartitionConfig{QueryExtent: 0.3, MaxPoints: 10}
	for trial := 0; trial < 40; trial++ {
		s := randWalkSeq(rng, 20+rng.Intn(150), 3)
		g, _ := NewSegmented(s, cfg)
		qCount := 5 + rng.Intn(40)
		qr := geom.BoundingRect(randWalkSeq(rng, 8, 3).Points)
		eps := 0.05 + rng.Float64()*0.4
		calc := newDnormCalc(qr, qCount, g)
		var emitted IntervalSet
		calc.sweep(eps, func(_ float64, pstart, pend int) {
			emitted.Add(PointRange{Start: pstart, End: pend})
		})
		for j := range g.MBRs {
			res := calc.dnorm(j)
			if res.Dist <= eps {
				// The target's own minimal window must be covered by the
				// union of emitted windows.
				if !emitted.Contains(res.PStart) {
					t.Fatalf("trial %d: Dnorm(%d)=%g <= eps %g but window start %d not emitted (%v)",
						trial, j, res.Dist, eps, res.PStart, emitted.String())
				}
			}
		}
	}
}

func TestDnormWindowCoversExactlyQCountPoints(t *testing.T) {
	// Whenever neighbor absorption happens (target smaller than query MBR
	// and the sequence long enough), the involved point range must hold
	// exactly qCount points.
	rng := rand.New(rand.NewSource(24))
	cfg := PartitionConfig{QueryExtent: 0.3, MaxPoints: 16}
	for trial := 0; trial < 40; trial++ {
		s := randWalkSeq(rng, 100+rng.Intn(100), 3)
		g, _ := NewSegmented(s, cfg)
		qCount := 20 + rng.Intn(30)
		qr := geom.BoundingRect(randWalkSeq(rng, 10, 3).Points)
		calc := newDnormCalc(qr, qCount, g)
		for j := range g.MBRs {
			if g.MBRs[j].Count() >= qCount {
				continue
			}
			res := calc.dnorm(j)
			if got := res.PEnd - res.PStart; got != qCount {
				t.Fatalf("window [%d,%d) covers %d points, want %d", res.PStart, res.PEnd, got, qCount)
			}
			if res.PStart < 0 || res.PEnd > s.Len() {
				t.Fatalf("window [%d,%d) outside sequence of %d points", res.PStart, res.PEnd, s.Len())
			}
		}
	}
}
