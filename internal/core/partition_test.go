package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestDefaultPartitionConfig(t *testing.T) {
	cfg := DefaultPartitionConfig()
	if cfg.QueryExtent != 0.3 {
		t.Errorf("QueryExtent = %g, want the paper's 0.3", cfg.QueryExtent)
	}
	if cfg.MaxPoints < 1 {
		t.Errorf("MaxPoints = %d", cfg.MaxPoints)
	}
}

func TestPartitionConfigValidation(t *testing.T) {
	if _, err := Partition(seqFromCoords(1, 2), PartitionConfig{QueryExtent: -1, MaxPoints: 4}); err == nil {
		t.Error("negative QueryExtent accepted")
	}
	if _, err := Partition(seqFromCoords(1, 2), PartitionConfig{QueryExtent: 0.3, MaxPoints: 0}); err == nil {
		t.Error("zero MaxPoints accepted")
	}
	if _, err := Partition(&Sequence{}, DefaultPartitionConfig()); err == nil {
		t.Error("empty sequence accepted")
	}
}

func TestPartitionSinglePoint(t *testing.T) {
	mbrs, err := Partition(seqFromCoords(0.5), DefaultPartitionConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(mbrs) != 1 || mbrs[0].Start != 0 || mbrs[0].End != 1 {
		t.Errorf("single-point partition = %+v", mbrs)
	}
}

func TestPartitionInvariantsOnRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cfg := DefaultPartitionConfig()
	for trial := 0; trial < 60; trial++ {
		var s *Sequence
		if trial%2 == 0 {
			s = randSeq(rng, 1+rng.Intn(300), 3)
		} else {
			s = randWalkSeq(rng, 1+rng.Intn(300), 3)
		}
		g, err := NewSegmented(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.CheckPartition(cfg); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPartitionRespectsMaxPoints(t *testing.T) {
	// A perfectly clustered sequence never increases MCOST, so only the
	// cap forces splits.
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Point{0.5, 0.5, 0.5}
	}
	s := &Sequence{Points: pts}
	cfg := PartitionConfig{QueryExtent: 0.3, MaxPoints: 16}
	mbrs, err := Partition(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for j, m := range mbrs {
		if m.Count() > 16 {
			t.Errorf("MBR %d holds %d points, cap 16", j, m.Count())
		}
	}
	if len(mbrs) != 100/16+1 { // 6 full + 1 partial
		t.Errorf("got %d MBRs, want %d", len(mbrs), 100/16+1)
	}
}

func TestPartitionSplitsOnJumps(t *testing.T) {
	// Two tight clusters far apart must not share an MBR: extending across
	// the jump multiplies every side term and raises the per-point cost.
	var pts []geom.Point
	for i := 0; i < 20; i++ {
		pts = append(pts, geom.Point{0.1 + 0.001*float64(i), 0.1, 0.1})
	}
	for i := 0; i < 20; i++ {
		pts = append(pts, geom.Point{0.9 + 0.001*float64(i), 0.9, 0.9})
	}
	mbrs, err := Partition(&Sequence{Points: pts}, DefaultPartitionConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mbrs {
		if m.Start < 20 && m.End > 20 {
			t.Fatalf("MBR [%d,%d) spans the cluster jump", m.Start, m.End)
		}
	}
	if len(mbrs) < 2 {
		t.Errorf("expected at least 2 MBRs, got %d", len(mbrs))
	}
}

func TestClusteredDataYieldsFewerMBRs(t *testing.T) {
	// Shot-structured (clustered) data should need fewer MBRs than white
	// noise of the same length — this is the structural fact behind the
	// paper's better video results (Section 4.2.2).
	rng := rand.New(rand.NewSource(11))
	n := 256
	noise := randSeq(rng, n, 3)
	clustered := make([]geom.Point, n)
	for i := range clustered {
		shot := i / 32
		base := 0.1 + 0.1*float64(shot%8)
		clustered[i] = geom.Point{
			base + rng.Float64()*0.02,
			base + rng.Float64()*0.02,
			base + rng.Float64()*0.02,
		}
	}
	cfg := DefaultPartitionConfig()
	a, _ := Partition(noise, cfg)
	b, _ := Partition(&Sequence{Points: clustered}, cfg)
	if len(b) >= len(a) {
		t.Errorf("clustered data produced %d MBRs, noise %d; expected fewer", len(b), len(a))
	}
}

func TestMCOST(t *testing.T) {
	cfg := PartitionConfig{QueryExtent: 0.3, MaxPoints: 64}
	r := geom.MustRect(geom.Point{0, 0}, geom.Point{0.2, 0.1})
	// DA = (0.2+0.3)(0.1+0.3) = 0.2; MCOST for 4 points = 0.05
	if got := cfg.mcost(r, 4); !almostEqual(got, 0.05) {
		t.Errorf("mcost = %g, want 0.05", got)
	}
}

func TestPointsIn(t *testing.T) {
	s := seqFromCoords(0.1, 0.11, 0.12, 0.9, 0.91)
	g, err := NewSegmented(s, DefaultPartitionConfig())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for j := range g.MBRs {
		total += len(g.PointsIn(j))
	}
	if total != s.Len() {
		t.Errorf("PointsIn covers %d points, want %d", total, s.Len())
	}
}

func TestPartitionDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := randWalkSeq(rng, 200, 3)
	cfg := DefaultPartitionConfig()
	a, _ := Partition(s, cfg)
	b, _ := Partition(s, cfg)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic partition: %d vs %d MBRs", len(a), len(b))
	}
	for i := range a {
		if !a[i].Rect.Equal(b[i].Rect) || a[i].Start != b[i].Start || a[i].End != b[i].End {
			t.Fatalf("MBR %d differs between runs", i)
		}
	}
}

func TestLargerQueryExtentMergesMore(t *testing.T) {
	// A larger Q_k+ε constant amortizes growth across more points, so the
	// partitioning should produce no more MBRs than a smaller constant.
	rng := rand.New(rand.NewSource(13))
	s := randWalkSeq(rng, 300, 3)
	small, _ := Partition(s, PartitionConfig{QueryExtent: 0.05, MaxPoints: 1 << 30})
	large, _ := Partition(s, PartitionConfig{QueryExtent: 0.9, MaxPoints: 1 << 30})
	if len(large) > len(small) {
		t.Errorf("QueryExtent 0.9 gave %d MBRs, 0.05 gave %d; want monotone", len(large), len(small))
	}
}
