package core

import (
	"fmt"
	"math"
)

// Metric bundles an exact sequence distance with the index-level lower
// bound that makes it searchable through the three-phase pipeline
// without false dismissals — the (distance, lower bound) pairing the
// generic-framework literature argues every filter-and-refine system
// should be generalized over. The existing exact-alignment distance D
// with its Dnorm/Dmbr bound chain (Lemmas 1–3) is the first instance;
// dynamic time warping with Sakoe–Chiba envelope bounds is the second.
//
// The interface is sealed (the fingerprint method is unexported): the
// search kernels dispatch on the two concrete types below, and a metric
// that the kernels don't know could silently break the
// no-false-dismissal contract, so external implementations are not
// accepted.
type Metric interface {
	// Name returns the metric's wire identifier, as accepted by
	// ParseMetric and the -metric flags: "d" or "dtw".
	Name() string
	// fingerprint returns the (id, parameter) pair folded into every
	// query-cache key so results computed under different distance
	// semantics can never alias each other.
	fingerprint() (id byte, param uint64)
}

// MetricD is the paper's exact alignment distance D: the minimum over
// all alignments of the mean per-point Euclidean distance (Definition
// 3). Its index-level lower bound is the Dnorm/Dmbr chain the three-phase
// search already runs, so metric searches under MetricD reuse the stock
// pipeline and refine survivors to exact distances.
type MetricD struct{}

// Name implements Metric.
func (MetricD) Name() string { return "d" }

func (MetricD) fingerprint() (byte, uint64) { return 'D', 0 }

// MetricDTW is dynamic time warping under a Sakoe–Chiba band: the
// minimum total point distance over monotone alignments with
// |i−j| ≤ Window, normalized by the longer length (see DTW). Window < 0
// means unconstrained. Its index-level lower bound is the multidimensional
// envelope bound of dtwIndexLB (never exceeds the DTW distance, so range
// and kNN searches through the index have no false dismissals), with
// LB_Keogh refinement ordering and early abandoning before each exact
// dynamic program.
type MetricDTW struct {
	// Window is the Sakoe–Chiba band half-width; negative means
	// unconstrained. A pair of sequences whose length difference exceeds
	// a nonnegative window admits no alignment and is never a match.
	Window int
}

// Name implements Metric.
func (MetricDTW) Name() string { return "dtw" }

func (m MetricDTW) fingerprint() (byte, uint64) { return 'W', uint64(int64(m.Window)) }

// ParseMetric resolves a -metric flag or HTTP field: "d" (or "") is the
// exact alignment distance, "dtw" is dynamic time warping with the given
// Sakoe–Chiba window. The window is ignored for "d"; for "dtw", -1 means
// unconstrained and anything below -1 is rejected as a likely typo.
func ParseMetric(name string, window int) (Metric, error) {
	switch name {
	case "", "d", "D":
		return MetricD{}, nil
	case "dtw", "DTW":
		if window < -1 {
			return nil, fmt.Errorf("core: invalid DTW window %d (use -1 for unconstrained)", window)
		}
		return MetricDTW{Window: window}, nil
	default:
		return nil, fmt.Errorf("core: unknown metric %q (want d or dtw)", name)
	}
}

// MetricMatch is one sequence matching a metric range search: exact
// metric distance ≤ ε, with the exact distance reported. Unlike Match
// (whose MinDnorm is a lower bound and whose set may include sequences
// with exact D > ε), a metric search's result set is definitionally
// identical to an exhaustive scan under the same metric.
type MetricMatch struct {
	SeqID uint32    // database id of the matching sequence
	Seq   *Sequence // the matching sequence itself
	// Dist is the exact metric distance (D or normalized DTW).
	Dist float64
}

// distanceSeq computes the exact metric distance between the query held
// in sc (segmented + flat) and a stored sequence, using the same kernels
// and arithmetic order on both the indexed and the scan paths so their
// results are bit-identical. +Inf means "no valid alignment" (DTW window
// narrower than the length difference) — never a match.
func (sc *searchScratch) distanceSeq(m Metric, g *Segmented, dim int, cutoff float64) float64 {
	switch mt := m.(type) {
	case MetricD:
		_, dist := bestAlignFlat(sc.qflat, g.Flat, dim, cutoff)
		return dist
	case MetricDTW:
		n := len(sc.qflat) / dim
		mm := len(g.Flat) / dim
		if mt.Window >= 0 && abs(n-mm) > mt.Window {
			return math.Inf(1)
		}
		denom := n
		if mm > denom {
			denom = mm
		}
		sc.dtw.prev = ensureFloats(sc.dtw.prev, mm+1)
		sc.dtw.cur = ensureFloats(sc.dtw.cur, mm+1)
		total := dtwFlat(sc.qflat, n, g.Flat, mm, dim, mt.Window, cutoff*float64(denom), sc.dtw.prev, sc.dtw.cur)
		return total / float64(denom)
	default:
		return math.Inf(1)
	}
}
