package core

// prunedFrac is the fraction of candidates a filter phase eliminated —
// the selectivity the paper's Lemmas 1–3 exist to maximize, attached as a
// span attribute so a retained trace explains its own latency.
func prunedFrac(in, out int) float64 {
	if in <= 0 {
		return 0
	}
	return 1 - float64(out)/float64(in)
}
